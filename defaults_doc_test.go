package pond_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pond"
	"pond/internal/cliutil"
)

var updateDefaultsDoc = flag.Bool("update-defaults-doc", false,
	"rewrite docs/DEFAULTS.md from Defaults() and DefaultNotes()")

// renderDefaultsDoc generates docs/DEFAULTS.md from the single source of
// truth: Defaults() for the values, DefaultNotes() for the conditional
// zero-value meanings, and the cliutil registrations for the pondfleet
// flag table. Reflection over the grouped structs means a new field
// shows up here (and fails TestDefaultsDocCurrent) automatically.
func renderDefaultsDoc() string {
	var b strings.Builder
	b.WriteString("# Fleet configuration defaults\n\n")
	b.WriteString("Generated from `pond.Defaults()` and `pond.DefaultNotes()` — the\n")
	b.WriteString("single source of truth behind the struct godoc, the pondfleet usage\n")
	b.WriteString("text, and this file. Regenerate after changing a default:\n\n")
	b.WriteString("```console\n$ go test . -run TestDefaultsDocCurrent -update-defaults-doc\n```\n\n")

	b.WriteString("## Grouped options (`pond.FleetOpts`)\n\n")
	b.WriteString("| Field | JSON key | Default |\n|---|---|---|\n")
	d := pond.Defaults()
	dv := reflect.ValueOf(d)
	dt := dv.Type()
	for i := 0; i < dt.NumField(); i++ {
		group := dt.Field(i)
		if group.Type.Kind() != reflect.Struct {
			continue // Injections and the deprecated flat fields
		}
		groupKey := strings.Split(group.Tag.Get("json"), ",")[0]
		gv := dv.Field(i)
		gt := gv.Type()
		for j := 0; j < gt.NumField(); j++ {
			f := gt.Field(j)
			key := strings.Split(f.Tag.Get("json"), ",")[0]
			val := fmt.Sprintf("%v", gv.Field(j).Interface())
			if val == "" {
				val = "(empty)"
			}
			fmt.Fprintf(&b, "| `%s.%s` | `%s.%s` | `%s` |\n",
				group.Name, f.Name, groupKey, key, val)
		}
	}

	b.WriteString("\n## Conditional defaults\n\n")
	b.WriteString("Zero values below are not literal — they derive from other fields at\n")
	b.WriteString("run time (`pond.DefaultNotes()`):\n\n")
	for _, n := range pond.DefaultNotes() {
		fmt.Fprintf(&b, "- **`%s`** — %s\n", n.Field, n.Note)
	}

	b.WriteString("\n## pondfleet flags\n\n")
	b.WriteString("The per-group flag registrations in `internal/cliutil` seed their\n")
	b.WriteString("defaults from `Defaults()`, so this table cannot drift from the API:\n\n")
	b.WriteString("| Flag | Default | Meaning |\n|---|---|---|\n")
	fs := flag.NewFlagSet("pondfleet", flag.ContinueOnError)
	opts := pond.Defaults()
	cliutil.RegisterClusterFlags(fs, &opts.Cluster)
	cliutil.RegisterModelFlags(fs, &opts.Model)
	cliutil.RegisterCapacityFlags(fs, &opts.Capacity)
	cliutil.RegisterEngineFlags(fs, &opts.Engine)
	fs.VisitAll(func(f *flag.Flag) {
		def := f.DefValue
		if def == "" {
			def = "(empty)"
		}
		fmt.Fprintf(&b, "| `-%s` | `%s` | %s |\n", f.Name, def, f.Usage)
	})
	return b.String()
}

// TestDefaultsDocCurrent is the currency gate for docs/DEFAULTS.md: the
// committed file must match what the code generates. Run with
// -update-defaults-doc to regenerate after an intentional change.
func TestDefaultsDocCurrent(t *testing.T) {
	path := filepath.Join("docs", "DEFAULTS.md")
	want := renderDefaultsDoc()
	if *updateDefaultsDoc {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-defaults-doc)", err)
	}
	if string(got) != want {
		t.Fatalf("docs/DEFAULTS.md is stale — regenerate with:\n"+
			"  go test . -run TestDefaultsDocCurrent -update-defaults-doc\n"+
			"committed:\n%s\ngenerated:\n%s", got, want)
	}
}
