package pond

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// testFleetOpts is a small grouped configuration used across the
// public-API tests.
func testFleetOpts() FleetOpts {
	return FleetOpts{
		Cluster:  ClusterOpts{Hosts: 4, EMCs: 4, PoolGB: 64, Cells: 2, DurationSec: 300},
		Arrivals: ArrivalOpts{Process: "poisson", RatePerSec: 0.1, MeanLifetimeSec: 150},
		Model:    ModelOpts{Disabled: true},
	}
}

// TestGroupedFlatEquivalence runs the same configuration through the
// grouped fields and through the deprecated flat fields: the shim must
// make them indistinguishable, down to the event-log hash.
func TestGroupedFlatEquivalence(t *testing.T) {
	ctx := context.Background()
	grouped, err := RunFleet(ctx, FleetOpts{
		Cluster:    ClusterOpts{Topology: "sharded", Hosts: 4, EMCs: 4, PoolGB: 64, Cells: 2, DurationSec: 300},
		Arrivals:   ArrivalOpts{Process: "poisson", RatePerSec: 0.1, MeanLifetimeSec: 150},
		Model:      ModelOpts{Disabled: true},
		Injections: mustParseInjections(t, "emc-fail@t=150:emc=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := RunFleet(ctx, FleetOpts{
		Topology: "sharded", Hosts: 4, EMCs: 4, PoolGB: 64, Cells: 2, DurationSec: 300,
		Arrival:            "poisson:rate=0.1:life=150",
		Inject:             "emc-fail@t=150:emc=1",
		DisablePredictions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if grouped.LogSHA256 != flat.LogSHA256 {
		t.Fatalf("grouped and flat configs diverge: %s vs %s", grouped.LogSHA256, flat.LogSHA256)
	}
}

func mustParseInjections(t *testing.T, s string) []Injection {
	t.Helper()
	ins, err := ParseInjections(s)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

// TestFlatGroupedConflict sets a flat field and its grouped counterpart
// to disagreeing values: the shim must refuse rather than silently pick
// one.
func TestFlatGroupedConflict(t *testing.T) {
	cases := []struct {
		name string
		o    FleetOpts
		want string
	}{
		{"hosts", FleetOpts{Hosts: 4, Cluster: ClusterOpts{Hosts: 8}}, "Hosts"},
		{"topology", FleetOpts{Topology: "flat", Cluster: ClusterOpts{Topology: "sharded"}}, "Topology"},
		{"duration", FleetOpts{DurationSec: 100, Cluster: ClusterOpts{DurationSec: 200}}, "DurationSec"},
		{"seed", FleetOpts{Seed: 1, Engine: EngineOpts{Seed: 2}}, "Seed"},
		{"retrain", FleetOpts{RetrainEverySec: 50, Model: ModelOpts{RetrainEverySec: 60}}, "RetrainEverySec"},
		{"arrival", FleetOpts{Arrival: "poisson:rate=0.2:life=100", Arrivals: ArrivalOpts{RatePerSec: 0.3}}, "Arrival"},
		{"inject", FleetOpts{Inject: "emc-fail@t=10", Injections: mustParseInjections(t, "emc-fail@t=20")}, "Inject"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.o.resolved()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("conflicting %s accepted: %v", tc.name, err)
			}
		})
	}
}

// TestFlatGroupedAgreement allows both forms set to the same value —
// callers migrating field by field must not be punished.
func TestFlatGroupedAgreement(t *testing.T) {
	o := FleetOpts{
		Hosts: 4, Cluster: ClusterOpts{Hosts: 4, EMCs: 4},
		Arrival:  "poisson:rate=0.1:life=150",
		Arrivals: ArrivalOpts{Process: "poisson", RatePerSec: 0.1, MeanLifetimeSec: 150},
		Inject:   "emc-fail@t=20", Injections: mustParseInjections(t, "emc-fail@t=20"),
	}
	r, err := o.resolved()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cluster.Hosts != 4 || r.Cluster.EMCs != 4 {
		t.Fatalf("agreement merge lost values: %+v", r.Cluster)
	}
	if r.Hosts != 0 || r.Arrival != "" || r.Inject != "" {
		t.Fatalf("flat fields not cleared after resolution: %+v", r)
	}
}

// TestDefaultsValidate pins that Defaults returns a configuration the
// shared validation accepts as-is, and that the defaults documented
// against PlanEverySec stay conditional (zero here, derived at run
// time).
func TestDefaultsValidate(t *testing.T) {
	d := Defaults()
	if err := d.Validate(); err != nil {
		t.Fatalf("Defaults() does not validate: %v", err)
	}
	if d.Cluster.Hosts == 0 || d.Cluster.EMCs == 0 || d.Arrivals.RatePerSec == 0 {
		t.Fatalf("Defaults() missing values: %+v", d)
	}
	if d.Capacity.PlanEverySec != 0 {
		t.Fatalf("PlanEverySec default must stay conditional (0), got %g", d.Capacity.PlanEverySec)
	}
	notes := DefaultNotes()
	if len(notes) == 0 {
		t.Fatal("DefaultNotes() empty")
	}
	seen := false
	for _, n := range notes {
		if n.Field == "Capacity.PlanEverySec" {
			seen = true
			if !strings.Contains(n.Note, "eighth") {
				t.Fatalf("PlanEverySec note lost the derived default: %q", n.Note)
			}
		}
	}
	if !seen {
		t.Fatal("DefaultNotes() missing Capacity.PlanEverySec")
	}
}

// TestValidateRejects routes a few invalid configurations through the
// one shared validation path.
func TestValidateRejects(t *testing.T) {
	cases := []FleetOpts{
		{Cluster: ClusterOpts{Topology: "bogus"}},
		{Arrival: "bogus"},
		{Capacity: CapacityOpts{PlanEverySec: 100}}, // cadence without elastic
		{Model: ModelOpts{Scope: "galaxy"}},
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Fatalf("case %d validated: %+v", i, o)
		}
	}
}

// TestInjectionJSONRoundTrip pins the wire form: an injection marshals
// as its canonical spec string and unmarshals through the same parser
// the CLI uses.
func TestInjectionJSONRoundTrip(t *testing.T) {
	in, err := ParseInjection("surge@t=300:dur=200:x=3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"surge@t=300:dur=200:x=3"` {
		t.Fatalf("marshal form: %s", b)
	}
	var back Injection
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != in.String() || back.Kind() != "surge" || back.AtSec() != 300 {
		t.Fatalf("round trip lost fields: %s kind=%s at=%g", back, back.Kind(), back.AtSec())
	}
	if err := json.Unmarshal([]byte(`"emc-fail@t=nope"`), &back); err == nil {
		t.Fatal("bad spec unmarshaled")
	}
}

// TestFleetOptsJSONRoundTrip pins the grouped wire form pondserve
// accepts: group keys, snake_case fields, injections as spec strings.
func TestFleetOptsJSONRoundTrip(t *testing.T) {
	body := `{
		"cluster": {"topology": "sharded", "hosts": 4, "emcs": 4, "pool_gb": 64, "cells": 2, "duration_sec": 300},
		"arrival": {"process": "poisson", "rate_per_sec": 0.1, "mean_lifetime_sec": 150},
		"model": {"disabled": true},
		"injections": ["emc-fail@t=150:emc=1"]
	}`
	var o FleetOpts
	if err := json.Unmarshal([]byte(body), &o); err != nil {
		t.Fatal(err)
	}
	if o.Cluster.Hosts != 4 || o.Arrivals.RatePerSec != 0.1 || !o.Model.Disabled {
		t.Fatalf("decoded opts: %+v", o)
	}
	if len(o.Injections) != 1 || o.Injections[0].Kind() != "emc-fail" {
		t.Fatalf("decoded injections: %v", o.Injections)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"injections":["emc-fail@t=150:emc=1"]`) {
		t.Fatalf("re-marshal lost injection spec form: %s", out)
	}
}

// TestStartFleetLiveInjectMatchesRunFleet is the determinism bridge at
// the public API: a live injection through FleetRun.Inject must produce
// the batch RunFleet hash, and Config must return that batch
// configuration.
func TestStartFleetLiveInjectMatchesRunFleet(t *testing.T) {
	ctx := context.Background()
	o := testFleetOpts()
	live, err := ParseInjection("emc-fail@t=200:emc=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		o.Engine.Workers = workers
		fr, err := StartFleet(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := fr.Advance(ctx, 120); err != nil {
			t.Fatal(err)
		}
		if got := fr.Progress(); got.NowSec != 120 || got.Done {
			t.Fatalf("mid-run progress: %+v", got)
		}
		if err := fr.Inject(live); err != nil {
			t.Fatal(err)
		}
		liveRep, err := fr.Finish(ctx)
		if err != nil {
			t.Fatal(err)
		}

		batch := o
		batch.Injections = append([]Injection{}, live)
		batchRep, err := RunFleet(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		if liveRep.LogSHA256 != batchRep.LogSHA256 {
			t.Fatalf("workers=%d: live sha %s != batch sha %s", workers, liveRep.LogSHA256, batchRep.LogSHA256)
		}

		// Config is the checkpoint payload: running it batch reproduces
		// the log.
		ckpt, err := RunFleet(ctx, fr.Config())
		if err != nil {
			t.Fatal(err)
		}
		if ckpt.LogSHA256 != liveRep.LogSHA256 {
			t.Fatalf("Config() does not reproduce the run: %s vs %s", ckpt.LogSHA256, liveRep.LogSHA256)
		}
	}
}

// TestFleetRunDrainEvents checks the streamed lines reassemble into the
// report's event log.
func TestFleetRunDrainEvents(t *testing.T) {
	ctx := context.Background()
	fr, err := StartFleet(ctx, testFleetOpts())
	if err != nil {
		t.Fatal(err)
	}
	var events []FleetLogEvent
	for _, at := range []float64{100, 200} {
		if err := fr.Advance(ctx, at); err != nil {
			t.Fatal(err)
		}
		events = append(events, fr.DrainEvents()...)
	}
	rep, err := fr.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, fr.DrainEvents()...)

	streams := make(map[int][]string)
	for _, e := range events {
		streams[e.Cell] = append(streams[e.Cell], e.Line)
	}
	var b strings.Builder
	for c := 0; c < fr.Config().Cluster.Cells; c++ {
		for _, line := range streams[c] {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	for _, line := range streams[-1] {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if b.String() != rep.EventLog {
		t.Fatalf("drained stream (%d bytes) does not reassemble into the report log (%d bytes)", b.Len(), len(rep.EventLog))
	}
}
