package pond

import (
	"context"
	"fmt"

	"pond/internal/experiments"
)

// ExperimentOptions configures RunExperiments.
type ExperimentOptions struct {
	// Scale selects the trace scale: "quick" (default), "full", "paper"
	// (the paper's 100 clusters x 75 days), or "tiny" (the short test
	// tier's minimal fleet).
	Scale string
	// Figures names the experiments to run (e.g. "2a", "21",
	// "finding10"); empty means every registered experiment.
	Figures []string
	// Workers bounds the engine's worker pool; <= 0 means GOMAXPROCS.
	// Results are byte-identical for every worker count.
	Workers int
	// Seed roots every generation and training stream; 0 means the
	// evaluation's default seed.
	Seed int64
}

// ExperimentResult is one experiment's rendered output.
type ExperimentResult struct {
	Name   string
	Output string
}

// RunExperiments regenerates the paper's figures through the parallel
// simulation engine: every pipeline shards its work (per cluster, per
// model fold, per retrain day) across the worker pool with deterministic
// per-shard RNG, so output depends only on (Scale, Figures, Seed).
// Cancellation is honored between experiments.
func RunExperiments(ctx context.Context, opts ExperimentOptions) ([]ExperimentResult, error) {
	scale := experiments.ScaleQuick
	if opts.Scale != "" {
		var err error
		scale, err = experiments.ParseScale(opts.Scale)
		if err != nil {
			return nil, err
		}
	}
	defs := experiments.Registry()
	if len(opts.Figures) > 0 {
		var err error
		defs, err = experiments.Lookup(opts.Figures)
		if err != nil {
			return nil, err
		}
	}
	var runOpts []experiments.Option
	if opts.Workers > 0 {
		runOpts = append(runOpts, experiments.WithWorkers(opts.Workers))
	}
	if opts.Seed != 0 {
		runOpts = append(runOpts, experiments.WithSeed(opts.Seed))
	}
	out := make([]ExperimentResult, 0, len(defs))
	for _, d := range defs {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("pond: experiments interrupted before %q: %w", d.Name, err)
		}
		out = append(out, ExperimentResult{Name: d.Name, Output: d.Run(scale, runOpts...).String()})
	}
	return out, nil
}
