package pond

import (
	"context"
	"encoding/json"
	"fmt"

	"pond/internal/fleet"
)

// FleetSnapshotVersion is the wire version of FleetSnapshot. A restore
// refuses any other version rather than guessing at field meanings.
const FleetSnapshotVersion = 1

// FleetSnapshot is the serialized state of a paused FleetRun: the
// resolved public configuration (with every live injection appended)
// plus the opaque simulator state — RNG streams, event heaps, running
// VMs, telemetry, pool occupancy, model servers, rollout state, and the
// event-log hash midstates. Restoring one resumes the run exactly where
// it paused: the remaining event log and the final report hash are
// byte-identical to a run that was never interrupted, and the restore
// cost does not depend on how much simulated time had elapsed.
//
// Sim is versioned independently inside the payload; both Version here
// and the payload version must match before a restore proceeds.
type FleetSnapshot struct {
	Version int `json:"version"`
	// Opts is the batch configuration that reproduces this run from
	// scratch — the same value Config returns. A reader that only wants
	// the configuration (or a tool downgrading to a re-run) can use it
	// and ignore Sim.
	Opts FleetOpts `json:"opts"`
	// Sim is the internal fleet.Snapshot, kept opaque so the internal
	// layout can evolve under its own version without breaking this
	// file format.
	Sim json.RawMessage `json:"sim"`
}

// Snapshot captures the paused run's full state. It can be taken at any
// safe point — any return from Advance before Finish — and refuses a
// finished run (checkpoint the report instead).
func (fr *FleetRun) Snapshot() (*FleetSnapshot, error) {
	s, err := fr.r.Snapshot()
	if err != nil {
		return nil, err
	}
	sim, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("pond: encoding snapshot: %w", err)
	}
	return &FleetSnapshot{
		Version: FleetSnapshotVersion,
		Opts:    fr.opts,
		Sim:     sim,
	}, nil
}

// RestoreFleet rebuilds a paused FleetRun from a snapshot in a fresh
// process. The restored run continues from the snapshot's safe point:
// advancing it to the horizon produces exactly the event-log suffix the
// original run would have produced, and the final report hash matches
// the uninterrupted run for any worker count.
func RestoreFleet(ctx context.Context, snap *FleetSnapshot) (*FleetRun, error) {
	if snap == nil {
		return nil, fmt.Errorf("pond: nil snapshot")
	}
	if snap.Version != FleetSnapshotVersion {
		return nil, fmt.Errorf("pond: snapshot version %d, this build reads version %d",
			snap.Version, FleetSnapshotVersion)
	}
	var s fleet.Snapshot
	if err := json.Unmarshal(snap.Sim, &s); err != nil {
		return nil, fmt.Errorf("pond: decoding snapshot: %w", err)
	}
	r, err := fleet.RestoreRunner(ctx, &s)
	if err != nil {
		return nil, err
	}
	return &FleetRun{r: r, opts: snap.Opts}, nil
}

// SetCompactDrained controls whether the run releases drained event-log
// prefixes: once a prefix has been handed out by DrainEvents, its bytes
// are folded into an incremental hash and freed instead of being held
// until Finish. The final report then carries only the undrained tail
// in EventLog, while LogSHA256 and the event count still cover the full
// run. Long-lived daemons that stream the log enable this; batch
// callers that want the complete EventLog leave it off (the default).
func (fr *FleetRun) SetCompactDrained(on bool) { fr.r.SetCompactDrained(on) }

// EventLogSHA256 computes the report hash of a full event log that was
// reassembled from drained events: lines are partitioned back into
// their per-cell and fleet streams, each stream is hashed, and the hash
// manifest is hashed — the same construction FleetReport.LogSHA256
// uses, so a client that drained a complete run can verify it against
// the served report without holding the log in one piece.
func EventLogSHA256(log string, cells int) string {
	return fleet.EventLogSHA256(log, cells)
}
