// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigureN drives the corresponding entry point
// in internal/experiments at quick scale and reports domain-specific
// metrics alongside the usual ns/op, so a `go test -bench=.` run doubles
// as a reproduction report. The cmd/ tools print the full tables.
package pond_test

import (
	"context"
	"testing"

	"pond"
	"pond/internal/cluster"
	"pond/internal/experiments"
	"pond/internal/ml"
	"pond/internal/mlops"
	"pond/internal/pmu"
	"pond/internal/sim"
	"pond/internal/stats"
	"pond/internal/workload"
)

func BenchmarkFigure2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2a(experiments.ScaleQuick)
		if len(r.Buckets) > 0 {
			last := r.Buckets[len(r.Buckets)-1]
			b.ReportMetric(last.MeanStranded, "stranded%@top-bucket")
		}
	}
}

func BenchmarkFigure2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2b(experiments.ScaleQuick)
		b.ReportMetric(float64(len(r.Racks)), "racks")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(experiments.ScaleQuick)
		for _, row := range r.Rows {
			if row.PoolFrac == 0.50 && row.PoolSockets == 32 {
				b.ReportMetric(100-row.RequiredPct, "savings%@50/32")
			}
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4()
		b.ReportMetric(float64(len(r.PerWorkload)), "workloads")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5()
		b.ReportMetric(100*r.Under5Pct182, "under5%@182")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6()
		b.ReportMetric(float64(r.Budgets[1].PCIeLanes), "lanes@16sock")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7()
		b.ReportMetric(r.Paths[2].TotalNanos(), "ns@16sock")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8()
		for _, row := range r.Rows {
			if row.Sockets == 16 {
				b.ReportMetric(row.ReductionPct, "reduction%@16sock")
			}
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9()
		b.ReportMetric(float64(r.FreeGBAfter), "freeGB")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10()
		b.ReportMetric(r.Topology.TotalMemGB(), "guestGB")
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure15()
		b.ReportMetric(r.Rows[0].TrafficPct, "video-traffic%")
	}
}

func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure16()
		b.ReportMetric(r.Rows[7].Summary.Max, "max%@full-spill")
	}
}

func BenchmarkFigure17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure17(4, 2)
		var fp float64
		for _, p := range r.RandomForest {
			if p.InsensitiveFrac == 0.30 {
				fp = 100 * p.FPRate
			}
		}
		b.ReportMetric(fp, "rf-fp%@30li")
	}
}

func BenchmarkFigure18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure18(experiments.ScaleQuick)
		b.ReportMetric(float64(len(r.GBM)+len(r.Fixed)), "points")
	}
}

func BenchmarkFigure19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure19(experiments.ScaleQuick, 14)
		b.ReportMetric(float64(len(r.Days)), "retrains")
	}
}

func BenchmarkFigure20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure20(experiments.ScaleQuick, 4)
		if n := len(r.At182); n > 0 {
			b.ReportMetric(r.At182[n-1].PoolDRAMPct, "pool%@182")
		}
	}
}

func BenchmarkFigure21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure21(experiments.ScaleQuick)
		for _, row := range r.Rows {
			if row.Policy == "Pond@182%" && row.PoolSockets == 16 {
				b.ReportMetric(100-row.RequiredPct, "pond182-savings%@16")
			}
		}
	}
}

func BenchmarkFinding10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Finding10(experiments.ScaleQuick)
		b.ReportMetric(100*r.ZeroRateFrac, "buffer-satisfied%")
	}
}

// Ablation benches (DESIGN.md §4).

func BenchmarkAblationZNUMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationZNUMA()
		b.ReportMetric(r.AdvantageFactor, "znuma-advantage-x")
	}
}

func BenchmarkAblationAsyncRelease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationAsyncRelease(experiments.ScaleQuick)
		b.ReportMetric(100*r.FallbackFrac[0], "fallback%@2%pool")
	}
}

func BenchmarkAblationForestSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationForestSize(2)
		b.ReportMetric(100*r.MeanFP[len(r.MeanFP)-1], "fp%@60trees")
	}
}

// Micro-benchmarks of the hot paths underneath the experiments.

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = 1
	cfg.Days = 25
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		traces := cluster.Generate(cfg)
		b.ReportMetric(float64(len(traces[0].VMs)), "vms")
	}
}

func BenchmarkSchedulePacking(b *testing.B) {
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = 1
	cfg.Days = 25
	traces := cluster.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.BuildSchedule(&traces[0])
		if s.RejectionRate() > 0.1 {
			b.Fatal("rejection rate blew up")
		}
	}
}

func BenchmarkPMUSample(b *testing.B) {
	w, _ := workload.ByName("505.mcf_r")
	r := stats.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pmu.Sample(w, r)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	ws := workload.Catalogue()
	r := stats.NewRand(1)
	X := make([][]float64, 0, len(ws))
	y := make([]float64, 0, len(ws))
	for _, w := range ws {
		X = append(X, pmu.Sample(w, r).Features())
		if w.Slowdown(workload.Ratio182, 1) <= 0.05 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	f := ml.FitForest(X, y, ml.DefaultForestConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProb(X[i%len(X)])
	}
}

func BenchmarkGBMPredict(b *testing.B) {
	r := stats.NewRand(1)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		y[i] = X[i][0]
	}
	m := ml.FitGBM(X, y, ml.DefaultGBMConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%n])
	}
}

func BenchmarkSystemStartStopVM(b *testing.B) {
	cfg := pond.DefaultConfig()
	cfg.UsePredictions = false
	sys, err := pond.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	spec := pond.VMSpec{Cores: 4, MemoryGB: 16, Workload: "redis-ycsb-a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm, err := sys.StartVM(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.StopVM(vm.ID); err != nil {
			b.Fatal(err)
		}
		sys.AdvanceSeconds(1)
	}
}

func BenchmarkCounterAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.CounterAudit(5)
		b.ReportMetric(r.Top[0].Drop, "top-counter-drop")
	}
}

func BenchmarkAblationCoLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationCoLocation()
		b.ReportMetric(r.Rows[len(r.Rows)-1].MeanExtraSlowPct, "extra%@16vms")
	}
}

// BenchmarkRunFleet drives the online fleet simulator end to end —
// arrivals, departures, and all three injection kinds over a sparse
// topology — and reports placement throughput alongside ns/op.
func BenchmarkRunFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := pond.RunFleet(context.Background(), pond.FleetOpts{
			Topology:           "sparse",
			Hosts:              4,
			EMCs:               4,
			PoolGB:             64,
			Cells:              2,
			DurationSec:        600,
			Arrival:            "poisson:rate=0.2:life=200",
			Inject:             "surge@t=100:dur=100:x=3,emc-fail@t=300,host-drain@t=400:host=1",
			DisablePredictions: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Placed), "vms-placed")
	}
}

// BenchmarkRetrainLoop times the mlops hot path — shadow scoring, rolling
// holdout bookkeeping, challenger training, and promotion verdicts — over
// a fixed synthetic stream, the same work the CI benchmark gate regresses.
func BenchmarkRetrainLoop(b *testing.B) {
	cfg := mlops.DefaultConfig()
	cfg.MinTrainRows = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := mlops.SyntheticLoop(512, 64, cfg)
		if q.Retrains == 0 {
			b.Fatal("synthetic loop never retrained")
		}
		b.ReportMetric(float64(q.Retrains), "retrains")
		b.ReportMetric(float64(q.Promotions), "promotions")
	}
}
