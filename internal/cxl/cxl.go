// Package cxl models the CXL interconnect hardware layer of Pond: the
// request flow through a CXL port (paper Figure 1), the additive latency
// composition for each pool size (Figure 7), the comparison between Pond's
// multi-headed EMC design and switch-only fabrics (Figure 8), and the EMC
// ASIC resource budget relative to AMD Genoa's IO die (Figure 6).
//
// The model is deliberately behavioural: every latency is a named stage
// with a nanosecond cost taken from the paper's published assumptions, and
// topologies are built by composing stages. This makes the arithmetic that
// underlies Pond's "small pools only" design decision testable.
package cxl

import (
	"fmt"
	"strings"
)

// Latency assumptions from Figure 7 of the paper, in nanoseconds.
const (
	// CoreLLCFabricNanos is the CPU-side cost of a cache miss reaching
	// the memory subsystem: core, LLC, and on-die fabric.
	CoreLLCFabricNanos = 40.0

	// MCAndDRAMNanos is the memory-controller plus DRAM access cost.
	MCAndDRAMNanos = 45.0

	// PortRoundTripNanos is the measured round-trip latency of one CXL
	// port traversal (Intel Sapphire Rapids measurement cited in §2).
	PortRoundTripNanos = 25.0

	// FlightShortNanos is wire propagation for runs under 500 mm.
	FlightShortNanos = 5.0

	// RetimerPairNanos is the added latency of a retimer pair: about
	// 10 ns in each direction (§4.1).
	RetimerPairNanos = 20.0

	// SwitchARBNanos is switch arbitration plus internal NOC cost; the
	// full switch traversal (ingress port + ARB + egress port) is at
	// least 70 ns (§4.1).
	SwitchARBNanos = 20.0

	// EMCACLNanos is the EMC-side address mapping and permission (ACL)
	// check for the slice ownership table.
	EMCACLNanos = 5.0

	// EMCNOCNanos is the EMC's internal network-on-chip hop from CXL
	// port to the DDR5 memory controller.
	EMCNOCNanos = 10.0

	// RetimerDistanceMM is the trace length above which signal-integrity
	// simulations indicate CXL needs a retimer (§4.1).
	RetimerDistanceMM = 500
)

// Figure 1 request-flow breakdown of the 25 ns port round trip.
const (
	PortPHYNanos         = 4.0                                 // CXL & PCIe PHY
	PortArbMuxNanos      = 2.0                                 // Arb/Mux
	PortLinkLayersNanos  = 19.0                                // transaction & link layers
	LocalDRAMLatencyNano = CoreLLCFabricNanos + MCAndDRAMNanos // 85 ns
)

// Stage is one named component of an access path with its latency cost.
type Stage struct {
	Name  string
	Nanos float64
}

// Path is an ordered latency composition from core to DRAM and back.
type Path struct {
	Name   string
	Stages []Stage
}

// TotalNanos returns the end-to-end latency of the path.
func (p Path) TotalNanos() float64 {
	var total float64
	for _, s := range p.Stages {
		total += s.Nanos
	}
	return total
}

// IncreaseOverLocal returns the path latency as a percentage of the
// NUMA-local baseline (e.g. 182 means a 182% latency level, i.e. 1.82x).
func (p Path) IncreaseOverLocal() float64 {
	return 100 * p.TotalNanos() / LocalDRAMLatencyNano
}

// AddedNanos returns the latency the path adds over NUMA-local DRAM.
func (p Path) AddedNanos() float64 {
	return p.TotalNanos() - LocalDRAMLatencyNano
}

// String renders the path as "name: stage(a) + stage(b) = total ns".
func (p Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", p.Name)
	for i, s := range p.Stages {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%s(%.0f)", s.Name, s.Nanos)
	}
	fmt.Fprintf(&b, " = %.0f ns (%.0f%%)", p.TotalNanos(), p.IncreaseOverLocal())
	return b.String()
}

// LocalPath returns the NUMA-local DRAM access path (85 ns).
func LocalPath() Path {
	return Path{
		Name: "local DRAM",
		Stages: []Stage{
			{"core/LLC/fabric", CoreLLCFabricNanos},
			{"MC & DRAM", MCAndDRAMNanos},
		},
	}
}

// PondPath returns the access path from a CPU socket to pool DRAM for a
// Pond pool of the given socket count, per Figure 7:
//
//	<=8  sockets: direct multi-headed EMC, no retimer      (155 ns, 182%)
//	<=16 sockets: direct multi-headed EMC with retimer     (180 ns, 212%)
//	<=64 sockets: retimer + CXL switch + multi-headed EMC  (280 ns, >318%)
//
// PondPath panics for socket counts outside [2, 64]; the paper does not
// define larger Pond configurations.
func PondPath(sockets int) Path {
	switch {
	case sockets < 2 || sockets > 64:
		panic(fmt.Sprintf("cxl: no Pond topology for %d sockets", sockets))
	case sockets <= 8:
		return Path{
			Name: fmt.Sprintf("%d-socket Pond", sockets),
			Stages: []Stage{
				{"core/LLC/fabric", CoreLLCFabricNanos},
				{"CXL port (CPU)", PortRoundTripNanos},
				{"flight", FlightShortNanos},
				{"CXL port (EMC)", PortRoundTripNanos},
				{"EMC ACL+NOC", EMCACLNanos + EMCNOCNanos},
				{"MC & DRAM", MCAndDRAMNanos},
			},
		}
	case sockets <= 16:
		return Path{
			Name: fmt.Sprintf("%d-socket Pond", sockets),
			Stages: []Stage{
				{"core/LLC/fabric", CoreLLCFabricNanos},
				{"CXL port (CPU)", PortRoundTripNanos},
				{"flight+retimer+flight", FlightShortNanos + RetimerPairNanos + FlightShortNanos},
				{"CXL port (EMC)", PortRoundTripNanos},
				{"EMC ACL+NOC", EMCACLNanos + EMCNOCNanos},
				{"MC & DRAM", MCAndDRAMNanos},
			},
		}
	default:
		return Path{
			Name: fmt.Sprintf("%d-socket Pond", sockets),
			Stages: []Stage{
				{"core/LLC/fabric", CoreLLCFabricNanos},
				{"CXL port (CPU)", PortRoundTripNanos},
				{"flight+retimer+flight", FlightShortNanos + RetimerPairNanos + FlightShortNanos},
				{"CXL port (switch in)", PortRoundTripNanos},
				{"switch ARB+NOC", SwitchARBNanos},
				{"CXL port (switch out)", PortRoundTripNanos},
				{"flight+retimer+flight", FlightShortNanos + RetimerPairNanos + FlightShortNanos},
				{"CXL port (EMC)", PortRoundTripNanos},
				{"EMC ACL+NOC", EMCACLNanos + EMCNOCNanos},
				{"MC & DRAM", MCAndDRAMNanos},
			},
		}
	}
}

// SwitchOnlyPath returns the access path for the alternative design that
// reaches pool memory exclusively through CXL switches in front of
// single-headed memory devices (the comparison baseline of Figure 8).
// Every pool size pays at least one full switch traversal; 16 sockets adds
// a retimer leg, and pools above 16 sockets require a second switch level
// because single-headed devices cannot absorb the fan-out a multi-headed
// EMC provides.
func SwitchOnlyPath(sockets int) Path {
	if sockets < 2 || sockets > 64 {
		panic(fmt.Sprintf("cxl: no switch-only topology for %d sockets", sockets))
	}
	stages := []Stage{
		{"core/LLC/fabric", CoreLLCFabricNanos},
		{"CXL port (CPU)", PortRoundTripNanos},
	}
	if sockets > 8 {
		stages = append(stages, Stage{"flight+retimer+flight", FlightShortNanos + RetimerPairNanos + FlightShortNanos})
	} else {
		stages = append(stages, Stage{"flight", FlightShortNanos})
	}
	stages = append(stages,
		Stage{"CXL port (switch in)", PortRoundTripNanos},
		Stage{"switch ARB+NOC", SwitchARBNanos},
		Stage{"CXL port (switch out)", PortRoundTripNanos},
	)
	if sockets > 16 {
		// A second switch level for the larger fan-outs.
		stages = append(stages,
			Stage{"flight+retimer+flight", FlightShortNanos + RetimerPairNanos + FlightShortNanos},
			Stage{"CXL port (switch2 in)", PortRoundTripNanos},
			Stage{"switch2 ARB+NOC", SwitchARBNanos},
			Stage{"CXL port (switch2 out)", PortRoundTripNanos},
		)
	}
	stages = append(stages,
		Stage{"flight", FlightShortNanos},
		Stage{"CXL port (device)", PortRoundTripNanos},
		Stage{"device NOC", EMCNOCNanos},
		Stage{"MC & DRAM", MCAndDRAMNanos},
	)
	return Path{Name: fmt.Sprintf("%d-socket switch-only", sockets), Stages: stages}
}

// SwitchTraversalNanos is the full cost of one switch hop: ingress port,
// arbitration/NOC, egress port. The paper cites "at least 70 ns".
func SwitchTraversalNanos() float64 {
	return PortRoundTripNanos + SwitchARBNanos + PortRoundTripNanos
}

// PondPathClamped returns the Pond access path for the nearest supported
// pool size: socket counts outside [2, 64] clamp to the boundary instead
// of panicking, for callers sizing arbitrary deployments.
func PondPathClamped(sockets int) Path {
	if sockets < 2 {
		sockets = 2
	}
	if sockets > 64 {
		sockets = 64
	}
	return PondPath(sockets)
}

// PondLatencyRatio returns the pool-vs-local DRAM latency ratio at the
// (clamped) pool size — the SLIT-style distance the control plane and
// guests work with.
func PondLatencyRatio(sockets int) float64 {
	return PondPathClamped(sockets).TotalNanos() / LocalPath().TotalNanos()
}
