package cxl

import (
	"math"
	"strings"
	"testing"
)

func TestLocalPathIs85ns(t *testing.T) {
	if got := LocalPath().TotalNanos(); got != 85 {
		t.Fatalf("local DRAM = %v ns, want 85", got)
	}
}

func TestPond8SocketIs155ns(t *testing.T) {
	p := PondPath(8)
	if got := p.TotalNanos(); got != 155 {
		t.Fatalf("8-socket Pond = %v ns, want 155 (Figure 7)", got)
	}
	if got := p.IncreaseOverLocal(); math.Abs(got-182.35) > 0.1 {
		t.Fatalf("8-socket increase = %v%%, want ~182%%", got)
	}
}

func TestPond16SocketIs180ns(t *testing.T) {
	p := PondPath(16)
	if got := p.TotalNanos(); got != 180 {
		t.Fatalf("16-socket Pond = %v ns, want 180 (Figure 7)", got)
	}
	if got := p.IncreaseOverLocal(); math.Abs(got-211.76) > 0.1 {
		t.Fatalf("16-socket increase = %v%%, want ~212%%", got)
	}
}

func TestPond32SocketExceeds270ns(t *testing.T) {
	for _, sockets := range []int{32, 64} {
		p := PondPath(sockets)
		if got := p.TotalNanos(); got <= 270 {
			t.Fatalf("%d-socket Pond = %v ns, want > 270 (Figure 7)", sockets, got)
		}
		if got := p.IncreaseOverLocal(); got < 318 {
			t.Fatalf("%d-socket increase = %v%%, want >= 318%%", sockets, got)
		}
	}
}

func TestPondAddedLatencySmallPools(t *testing.T) {
	// §1/§4.1: small pools of 8-16 sockets add only 70-90 ns.
	for _, sockets := range []int{2, 4, 8, 16} {
		added := PondPath(sockets).AddedNanos()
		if added < 70 || added > 95 {
			t.Fatalf("%d-socket pool adds %v ns, want within [70,95]", sockets, added)
		}
	}
}

func TestPondPathMonotoneInPoolSize(t *testing.T) {
	prev := 0.0
	for _, sockets := range []int{2, 8, 16, 32, 64} {
		total := PondPath(sockets).TotalNanos()
		if total < prev {
			t.Fatalf("latency decreased at %d sockets: %v < %v", sockets, total, prev)
		}
		prev = total
	}
}

func TestPondPathPanicsOutOfRange(t *testing.T) {
	for _, sockets := range []int{0, 1, 65, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PondPath(%d) did not panic", sockets)
				}
			}()
			PondPath(sockets)
		}()
	}
}

func TestSwitchOnlyPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SwitchOnlyPath(1) did not panic")
		}
	}()
	SwitchOnlyPath(1)
}

func TestSwitchTraversalAtLeast70ns(t *testing.T) {
	if got := SwitchTraversalNanos(); got < 70 {
		t.Fatalf("switch traversal = %v ns, want >= 70 (§4.1)", got)
	}
}

func TestPondBeatsSwitchOnlyByAboutOneThird(t *testing.T) {
	// Figure 8: Pond reduces latency by ~1/3 at 8-16 sockets.
	for _, sockets := range []int{8, 16} {
		pond := PondPath(sockets).TotalNanos()
		sw := SwitchOnlyPath(sockets).TotalNanos()
		reduction := 1 - pond/sw
		if reduction < 0.25 || reduction > 0.45 {
			t.Fatalf("%d sockets: reduction = %.2f, want ~1/3 (pond=%v sw=%v)",
				sockets, reduction, pond, sw)
		}
	}
}

func TestSwitchOnlyAlwaysSlowerThanPond(t *testing.T) {
	for _, sockets := range []int{2, 8, 16, 32, 64} {
		pond := PondPath(sockets).TotalNanos()
		sw := SwitchOnlyPath(sockets).TotalNanos()
		if pond >= sw {
			t.Fatalf("%d sockets: Pond (%v) not faster than switch-only (%v)", sockets, pond, sw)
		}
	}
}

func TestSwitchOnlySecondLevelAbove16(t *testing.T) {
	sw16 := SwitchOnlyPath(16).TotalNanos()
	sw32 := SwitchOnlyPath(32).TotalNanos()
	if sw32 <= sw16 {
		t.Fatalf("32-socket switch-only (%v) should pay a second switch over 16 (%v)", sw32, sw16)
	}
	if sw32-sw16 < SwitchTraversalNanos() {
		t.Fatalf("second switch level adds %v ns, want >= %v", sw32-sw16, SwitchTraversalNanos())
	}
}

func TestPathStringMentionsStagesAndTotal(t *testing.T) {
	s := PondPath(8).String()
	for _, want := range []string{"8-socket Pond", "CXL port", "155", "182"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Path.String() = %q missing %q", s, want)
		}
	}
}

func TestPortBreakdownSumsTo25(t *testing.T) {
	phy, arb, link := PortBreakdownNanos()
	if phy+arb+link != PortRoundTripNanos {
		t.Fatalf("port breakdown %v+%v+%v != %v", phy, arb, link, PortRoundTripNanos)
	}
}

func TestTransactionsNeedNoFaultsOrDMA(t *testing.T) {
	for _, tr := range []Transaction{ReadTransaction(), WriteBackTransaction()} {
		if tr.RequiresPageFault() || tr.RequiresDMA() {
			t.Fatalf("CXL.mem transaction %v should need neither faults nor DMA", tr)
		}
	}
}

func TestTransactionPairs(t *testing.T) {
	if r := ReadTransaction(); r.Request != Req || r.Response != DRS {
		t.Fatalf("read transaction = %+v", r)
	}
	if w := WriteBackTransaction(); w.Request != RwD || w.Response != NDR {
		t.Fatalf("write-back transaction = %+v", w)
	}
}

func TestMessageClassStrings(t *testing.T) {
	cases := map[MessageClass]string{Req: "Req", DRS: "DRS", RwD: "RwD", NDR: "NDR", MessageClass(99): "unknown"}
	for mc, want := range cases {
		if got := mc.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", mc, got, want)
		}
	}
}

func TestEMCBudget8Sockets(t *testing.T) {
	b := EMCBudget(8)
	if b.PCIeLanes != 64 || b.DDR5Channels != 6 || b.IODFraction != 0.5 {
		t.Fatalf("8-socket budget = %+v, want 64 lanes / 6 channels / half IOD (Figure 6)", b)
	}
	if b.Switches != 0 {
		t.Fatalf("8-socket pool should be switchless, got %d switches", b.Switches)
	}
}

func TestEMCBudget16Sockets(t *testing.T) {
	b := EMCBudget(16)
	if b.PCIeLanes != 128 || b.DDR5Channels != 12 || b.IODFraction != 1.0 {
		t.Fatalf("16-socket budget = %+v, want 128 lanes / 12 channels / one IOD (Figure 6)", b)
	}
	if b.PCIeLanes != GenoaIODLanes || b.DDR5Channels != GenoaIODDDR5Channels {
		t.Fatalf("16-socket EMC should match Genoa IOD exactly: %+v", b)
	}
}

func TestEMCBudgetLargePoolsNeedSwitches(t *testing.T) {
	for _, sockets := range []int{32, 64} {
		b := EMCBudget(sockets)
		if b.Switches == 0 {
			t.Fatalf("%d-socket pool should require switches", sockets)
		}
		if b.EMCs < 2 {
			t.Fatalf("%d-socket pool should shard across EMCs, got %d", sockets, b.EMCs)
		}
	}
}

func TestEMCBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EMCBudget(1) did not panic")
		}
	}()
	EMCBudget(1)
}

func TestBudgetString(t *testing.T) {
	s := EMCBudget(16).String()
	if !strings.Contains(s, "16 sockets") || !strings.Contains(s, "128 lanes") {
		t.Fatalf("Budget.String() = %q", s)
	}
}

func TestPortBandwidthMatchesDDR5(t *testing.T) {
	if !PortBandwidthMatchesDDR5(0.2) {
		t.Fatalf("x8 CXL (%v GB/s) should be within 20%% of DDR5-4800 (%v GB/s)",
			CXLx8GBps, DDR5ChannelGBps)
	}
	if PortBandwidthMatchesDDR5(0.01) {
		t.Fatal("1% tolerance should not match; the link is slightly narrower")
	}
}

func TestEmulationBandwidthIsThreeQuartersOfLink(t *testing.T) {
	ratio := EmulatedRemoteGBps / CXLx8GBps
	if math.Abs(ratio-0.75) > 0.2 {
		t.Fatalf("emulated remote bandwidth ratio = %v, want ~3/4 (§6.1)", ratio)
	}
}

func TestFigure7LatencyLevels(t *testing.T) {
	// The two emulation scenarios in the paper: 182% and 222% levels.
	if lvl := PondPath(8).IncreaseOverLocal(); math.Round(lvl) != 182 {
		t.Fatalf("8-socket level = %v, want 182", lvl)
	}
	// The AMD testbed emulates 222% (115 -> 255 ns); Pond's 16-socket
	// topology sits at 212%, between the two studied levels.
	lvl16 := PondPath(16).IncreaseOverLocal()
	if lvl16 < 182 || lvl16 > 222 {
		t.Fatalf("16-socket level = %v, want within [182, 222]", lvl16)
	}
}
