package cxl

import "sort"

// Bandwidth contention model. The paper's provisioning argument (§2)
// sizes one DDR5 channel per x8 CXL port, but a port is still a shared
// resource: several VMs with pool memory behind the same port divide its
// bandwidth. Max-min fairness is the standard model for such link
// sharing — every flow gets its demand if possible, and the link's
// residual capacity is split evenly among the unsatisfied.

// FairShare allocates capacity among the given demands with max-min
// fairness and returns per-demand grants (same order as demands).
// Non-positive demands receive zero.
func FairShare(demands []float64, capacity float64) []float64 {
	grants := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return grants
	}
	// Process demands in ascending order: each either fits under the
	// current fair share or caps at it.
	type item struct {
		idx    int
		demand float64
	}
	items := make([]item, 0, len(demands))
	for i, d := range demands {
		if d > 0 {
			items = append(items, item{idx: i, demand: d})
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].demand < items[b].demand })

	remaining := capacity
	for k, it := range items {
		share := remaining / float64(len(items)-k)
		grant := it.demand
		if grant > share {
			grant = share
		}
		grants[it.idx] = grant
		remaining -= grant
	}
	return grants
}

// ContentionSlowdown converts a bandwidth shortfall into a slowdown
// fraction for a workload whose bandwidth sensitivity is bwSens (the
// workload model's BWSens): granted bandwidth below demand stretches the
// workload's memory phases proportionally, weighted by how
// bandwidth-bound the workload is.
func ContentionSlowdown(demandGBps, grantGBps, bwSens float64) float64 {
	if demandGBps <= 0 || grantGBps >= demandGBps {
		return 0
	}
	if grantGBps <= 0 {
		grantGBps = 1e-9
	}
	shortfall := demandGBps/grantGBps - 1
	s := bwSens * shortfall * 10 // bwSens is calibrated per saturated-link unit
	if s > shortfall {
		// Even a fully bandwidth-bound workload cannot slow more than
		// the stretch of its memory phases.
		s = shortfall
	}
	return s
}

// PortLoad summarizes one CXL port's sharing outcome.
type PortLoad struct {
	CapacityGBps float64
	DemandGBps   float64
	Grants       []float64
}

// Oversubscribed reports whether total demand exceeds the port.
func (p PortLoad) Oversubscribed() bool { return p.DemandGBps > p.CapacityGBps }

// SharePort runs the fairness allocation for one x8 CXL port.
func SharePort(demands []float64) PortLoad {
	var total float64
	for _, d := range demands {
		if d > 0 {
			total += d
		}
	}
	return PortLoad{
		CapacityGBps: CXLx8GBps,
		DemandGBps:   total,
		Grants:       FairShare(demands, CXLx8GBps),
	}
}
