package cxl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQueueDelayZeroAtZeroLoad(t *testing.T) {
	if QueueDelayNanos(0) != 0 || QueueDelayNanos(-1) != 0 {
		t.Fatal("idle port should add no delay")
	}
}

func TestQueueDelayMonotone(t *testing.T) {
	prev := -1.0
	for rho := 0.0; rho < 1.0; rho += 0.05 {
		d := QueueDelayNanos(rho)
		if d < prev {
			t.Fatalf("delay fell at rho=%v", rho)
		}
		prev = d
	}
}

func TestQueueDelayKneeShape(t *testing.T) {
	// Flat at low load, sharp near saturation.
	low := QueueDelayNanos(0.3)
	mid := QueueDelayNanos(0.6)
	high := QueueDelayNanos(0.95)
	if low > 1 {
		t.Fatalf("30%% load adds %v ns; should be negligible", low)
	}
	if high < 10*mid {
		t.Fatalf("no knee: 95%% load (%v) vs 60%% (%v)", high, mid)
	}
}

func TestQueueDelayClampsAtSaturation(t *testing.T) {
	d1 := QueueDelayNanos(1.0)
	d2 := QueueDelayNanos(5.0)
	if math.IsInf(d1, 0) || d1 != d2 {
		t.Fatalf("saturation not clamped: %v vs %v", d1, d2)
	}
}

func TestLoadedLatencyReducesToUnloaded(t *testing.T) {
	p := PondPath(8)
	if LoadedLatency(p, 0) != p.TotalNanos() {
		t.Fatal("zero load must match Figure 7")
	}
}

func TestEffectiveLatencyRatioAtZeroLoad(t *testing.T) {
	if r := EffectiveLatencyRatio(8, 0); math.Abs(r-155.0/85.0) > 1e-9 {
		t.Fatalf("ratio = %v", r)
	}
	if r := EffectiveLatencyRatio(16, 0); math.Abs(r-180.0/85.0) > 1e-9 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestEffectiveLatencyRatioGrowsWithLoad(t *testing.T) {
	if EffectiveLatencyRatio(8, 0.9) <= EffectiveLatencyRatio(8, 0.2) {
		t.Fatal("loaded ratio should exceed lightly loaded")
	}
}

func TestUtilizationFor(t *testing.T) {
	if UtilizationFor(-1) != 0 || UtilizationFor(0) != 0 {
		t.Fatal("non-positive demand should idle")
	}
	if got := UtilizationFor(CXLx8GBps / 2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("half demand = %v", got)
	}
}

func TestSaturationHeadroomInvertsDelay(t *testing.T) {
	// The headroom for a given budget must produce that budget's delay.
	for _, budget := range []float64{1, 5, 20, 70} {
		gbps := SaturationHeadroom(budget)
		rho := UtilizationFor(gbps)
		if got := QueueDelayNanos(rho); math.Abs(got-budget) > 0.5 {
			t.Fatalf("budget %v ns: headroom %v GB/s gives delay %v", budget, gbps, got)
		}
	}
	if SaturationHeadroom(0) != 0 {
		t.Fatal("zero budget should allow no load")
	}
}

func TestKneeUtilizationSensible(t *testing.T) {
	knee := KneeUtilization()
	if knee <= 0.9 || knee >= 1 {
		t.Fatalf("knee = %v; a 70 ns budget on a 2 ns service time sits very close to saturation", knee)
	}
	// At the knee, delay equals one switch traversal.
	if d := QueueDelayNanos(knee); math.Abs(d-SwitchTraversalNanos()) > 1 {
		t.Fatalf("delay at knee = %v, want ~%v", d, SwitchTraversalNanos())
	}
}

func TestBoundedRho(t *testing.T) {
	if BoundedRho(-2) != 0 || BoundedRho(2) != 0.99 || BoundedRho(0.5) != 0.5 {
		t.Fatal("clamp broken")
	}
}

// Property: loaded latency is always >= the unloaded path and finite.
func TestLoadedLatencyProperty(t *testing.T) {
	f := func(rawSockets uint8, rawRho float64) bool {
		sockets := []int{2, 8, 16, 32, 64}[int(rawSockets)%5]
		rho := BoundedRho(math.Mod(math.Abs(rawRho), 2))
		p := PondPath(sockets)
		l := LoadedLatency(p, rho)
		return l >= p.TotalNanos() && !math.IsInf(l, 0) && !math.IsNaN(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
