package cxl

// Figure 1 of the paper walks a CPU cache miss through the CXL.mem
// protocol: the miss becomes a Request (Req) on the CXL port, the device
// answers with a Data Response (DRS); a write-back becomes a Request with
// Data (RwD) answered by a No Data Response (NDR). Neither flow involves
// page faults or DMA — that property is what lets pool memory stay
// statically preallocated (§2). The types here encode that flow so the
// EMC model and tests can speak the same vocabulary.

// MessageClass identifies a CXL.mem transaction type.
type MessageClass int

const (
	// Req is a memory read request (issued on LLC miss).
	Req MessageClass = iota
	// DRS is the data response carrying the missing cache line.
	DRS
	// RwD is a request-with-data (issued on LLC write-back).
	RwD
	// NDR is the no-data response completing a write.
	NDR
)

// String names the message class as the spec does.
func (m MessageClass) String() string {
	switch m {
	case Req:
		return "Req"
	case DRS:
		return "DRS"
	case RwD:
		return "RwD"
	case NDR:
		return "NDR"
	default:
		return "unknown"
	}
}

// Transaction pairs a request with its response class.
type Transaction struct {
	Request  MessageClass
	Response MessageClass
}

// ReadTransaction is the cache-miss flow: Req -> DRS.
func ReadTransaction() Transaction { return Transaction{Request: Req, Response: DRS} }

// WriteBackTransaction is the write-back flow: RwD -> NDR.
func WriteBackTransaction() Transaction { return Transaction{Request: RwD, Response: NDR} }

// RequiresPageFault reports whether the transaction involves a page fault;
// for CXL.mem it never does, which is the core compatibility property of
// Pond with virtualization accelerators (G2).
func (t Transaction) RequiresPageFault() bool { return false }

// RequiresDMA reports whether the transaction involves a DMA; CXL.mem
// transfers are cache-line load/store, never DMA.
func (t Transaction) RequiresDMA() bool { return false }

// PortBreakdownNanos returns the three components of the measured 25 ns
// port round trip from Figure 1: PHY, Arb/Mux, and transaction+link layers.
func PortBreakdownNanos() (phy, arbMux, linkLayers float64) {
	return PortPHYNanos, PortArbMuxNanos, PortLinkLayersNanos
}
