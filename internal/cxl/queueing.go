package cxl

import "math"

// Load-dependent latency. The Figure 7 numbers are unloaded round-trip
// times; under bandwidth pressure, requests also queue at the EMC's CXL
// ports and DDR5 memory controllers. An M/M/1-style waiting-time term
// captures the shape every shared memory channel exhibits: flat until
// ~60% utilization, then a sharp knee toward saturation. Pond's
// provisioning rule (one DDR5 channel per x8 port, §2) exists precisely
// to keep pool ports out of that knee.

// ServiceNanos is the per-cacheline service time at an EMC port. A 64 B
// line at 32 GB/s takes 2 ns of link occupancy.
const ServiceNanos = 2.0

// QueueDelayNanos returns the expected queueing delay at one port at the
// given utilization (0 <= rho < 1). It grows as rho/(1-rho), the M/M/1
// waiting-time shape. Utilizations at or above 1 are clamped just below
// saturation so callers see a large but finite penalty.
func QueueDelayNanos(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho > 0.99 {
		rho = 0.99
	}
	return ServiceNanos * rho / (1 - rho)
}

// LoadedLatency returns the end-to-end pool access latency at the given
// port utilization: the unloaded path plus the queueing term.
func LoadedLatency(p Path, rho float64) float64 {
	return p.TotalNanos() + QueueDelayNanos(rho)
}

// UtilizationFor returns the port utilization implied by an aggregate
// demand against the port's capacity.
func UtilizationFor(demandGBps float64) float64 {
	if demandGBps <= 0 {
		return 0
	}
	return demandGBps / CXLx8GBps
}

// EffectiveLatencyRatio returns the loaded pool-to-local latency ratio
// for a Pond pool of the given size under the given port utilization —
// the quantity the workload slowdown model consumes. At zero load it
// reduces to the Figure 7 ratios (1.82 for 8 sockets, 2.12 for 16).
func EffectiveLatencyRatio(sockets int, rho float64) float64 {
	return LoadedLatency(PondPath(sockets), rho) / LocalDRAMLatencyNano
}

// SaturationHeadroom reports how much more bandwidth (GB/s) the port can
// absorb before the queueing delay exceeds budgetNanos.
func SaturationHeadroom(budgetNanos float64) float64 {
	if budgetNanos <= 0 {
		return 0
	}
	// Invert QueueDelayNanos: rho = d / (d + service).
	rho := budgetNanos / (budgetNanos + ServiceNanos)
	return rho * CXLx8GBps
}

// KneeUtilization is the utilization at which queueing adds as much
// latency as a full switch traversal — the practical ceiling for
// latency-sensitive pools.
func KneeUtilization() float64 {
	target := SwitchTraversalNanos()
	return target / (target + ServiceNanos)
}

// BoundedRho clamps a utilization into [0, 0.99].
func BoundedRho(rho float64) float64 {
	return math.Max(0, math.Min(rho, 0.99))
}
