package cxl

import "fmt"

// Figure 6 compares the EMC's IO requirements with AMD Genoa's IO die
// (IOD): 128 PCIe 5.0 lanes and 12 DDR5 channels on a 397 mm^2 die. The
// budget model expresses an EMC configuration in those units so the
// "16-socket Pond EMC ~= one Genoa IOD" argument is checkable.

// Genoa IOD reference point (§4.1, Figure 6).
const (
	GenoaIODLanes        = 128
	GenoaIODDDR5Channels = 12
	GenoaIODAreaMM2      = 397.0

	// LanesPerHost is the width of each host's CXL link (x8 at PCIe 5.0).
	LanesPerHost = 8

	// HostsPerDDR5Channel reflects the bandwidth match: a x8 CXL port at
	// a 2:1 read:write ratio matches one DDR5-4800 channel (§2), and the
	// Figure 6 configurations provision 6 channels per 8 hosts.
	HostsPerDDR5Channel = 8.0 / 6.0
)

// Bandwidth constants (GB/s) used by the bandwidth model (§2, §6.1).
const (
	// DDR5ChannelGBps is the peak bandwidth of one DDR5-4800 channel.
	DDR5ChannelGBps = 38.4

	// CXLx8GBps is the usable bandwidth of a bidirectional x8 CXL port
	// at PCIe 5.0 speeds with a typical 2:1 read:write ratio.
	CXLx8GBps = 32.0

	// EmulatedRemoteGBps is the cross-socket bandwidth of the paper's
	// emulation testbed, about 3/4 of a CXL x8 link (§6.1).
	EmulatedRemoteGBps = 30.0

	// LocalSocketGBps is the local-socket bandwidth measured on the
	// paper's Intel testbed (§6.1).
	LocalSocketGBps = 80.0
)

// Budget summarizes the hardware cost of providing a pool across the given
// number of CPU sockets.
type Budget struct {
	Sockets      int
	EMCs         int     // external memory controllers required
	Switches     int     // CXL switches required (0 for direct attach)
	PCIeLanes    int     // total host-facing PCIe 5.0 lanes across EMCs
	DDR5Channels int     // total DDR5 channels across EMCs
	IODFraction  float64 // per-EMC silicon relative to one Genoa IOD
	AreaMM2      float64 // per-EMC die-area proxy
}

// String renders the budget as one table row of Figure 6.
func (b Budget) String() string {
	return fmt.Sprintf("%2d sockets: %d EMC(s), %d switch(es), %3d lanes, %2d DDR5 ch, %.2fx IOD (%.0f mm2/EMC)",
		b.Sockets, b.EMCs, b.Switches, b.PCIeLanes, b.DDR5Channels, b.IODFraction, b.AreaMM2)
}

// EMCBudget returns the Figure 6 resource budget for a Pond pool of the
// given socket count. Small pools (<=16 sockets) connect every host
// directly to one multi-headed EMC; larger pools interpose CXL switches so
// each of 4 EMCs serves the fabric through x8 links.
func EMCBudget(sockets int) Budget {
	if sockets < 2 || sockets > 64 {
		panic(fmt.Sprintf("cxl: no EMC budget for %d sockets", sockets))
	}
	switch {
	case sockets <= 8:
		// 8 hosts x8 = 64 lanes, 6 DDR5 channels: about half an IOD.
		return Budget{
			Sockets: sockets, EMCs: 1, Switches: 0,
			PCIeLanes: 8 * LanesPerHost, DDR5Channels: 6,
			IODFraction: 0.5, AreaMM2: GenoaIODAreaMM2 / 2,
		}
	case sockets <= 16:
		// 16 hosts x8 = 128 lanes, 12 DDR5 channels: about one IOD.
		return Budget{
			Sockets: sockets, EMCs: 1, Switches: 0,
			PCIeLanes: 16 * LanesPerHost, DDR5Channels: 12,
			IODFraction: 1.0, AreaMM2: GenoaIODAreaMM2,
		}
	default:
		// Switched configuration: 8 switches fan hosts into 4 EMCs; each
		// EMC exposes 96 lanes toward the switches (4 EMCs w/ x8 links to
		// 8 switches + host side) and keeps 12 DDR5 channels.
		return Budget{
			Sockets: sockets, EMCs: 4, Switches: 8,
			PCIeLanes: 96, DDR5Channels: 12,
			IODFraction: 1.0, AreaMM2: GenoaIODAreaMM2,
		}
	}
}

// PortBandwidthMatchesDDR5 reports whether a x8 CXL port keeps up with a
// DDR5-4800 channel within the given tolerance fraction; the paper's
// provisioning argument depends on this being true within ~20%.
func PortBandwidthMatchesDDR5(tolerance float64) bool {
	diff := DDR5ChannelGBps - CXLx8GBps
	if diff < 0 {
		diff = -diff
	}
	return diff/DDR5ChannelGBps <= tolerance
}
