package cxl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFairShareUndersubscribed(t *testing.T) {
	grants := FairShare([]float64{5, 10, 8}, 32)
	for i, want := range []float64{5, 10, 8} {
		if grants[i] != want {
			t.Fatalf("grant[%d] = %v, want %v", i, grants[i], want)
		}
	}
}

func TestFairShareOversubscribedEven(t *testing.T) {
	grants := FairShare([]float64{20, 20, 20, 20}, 32)
	for i, g := range grants {
		if g != 8 {
			t.Fatalf("grant[%d] = %v, want 8", i, g)
		}
	}
}

func TestFairShareMaxMinProperty(t *testing.T) {
	// Small demands are fully satisfied before large ones cap.
	grants := FairShare([]float64{2, 30, 30}, 32)
	if grants[0] != 2 {
		t.Fatalf("small demand got %v, want 2", grants[0])
	}
	if grants[1] != 15 || grants[2] != 15 {
		t.Fatalf("large demands got %v/%v, want 15 each", grants[1], grants[2])
	}
}

func TestFairShareZeroAndNegativeDemands(t *testing.T) {
	grants := FairShare([]float64{0, -3, 10}, 32)
	if grants[0] != 0 || grants[1] != 0 || grants[2] != 10 {
		t.Fatalf("grants = %v", grants)
	}
}

func TestFairShareEmptyOrNoCapacity(t *testing.T) {
	if got := FairShare(nil, 32); len(got) != 0 {
		t.Fatal("nil demands")
	}
	for _, g := range FairShare([]float64{5}, 0) {
		if g != 0 {
			t.Fatal("zero capacity granted bandwidth")
		}
	}
}

// Property: grants never exceed demand, never exceed capacity in sum,
// and use full capacity when oversubscribed.
func TestFairShareProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		demands := make([]float64, len(raw))
		var total float64
		for i, x := range raw {
			demands[i] = float64(x%400) / 10
			total += demands[i]
		}
		const capacity = 32.0
		grants := FairShare(demands, capacity)
		var sum float64
		for i, g := range grants {
			if g < 0 || g > demands[i]+1e-9 {
				return false
			}
			sum += g
		}
		if sum > capacity+1e-6 {
			return false
		}
		if total > capacity && math.Abs(sum-capacity) > 1e-6 {
			return false // must saturate when oversubscribed
		}
		if total <= capacity && math.Abs(sum-total) > 1e-6 {
			return false // must satisfy everyone when undersubscribed
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestContentionSlowdownZeroWhenSatisfied(t *testing.T) {
	if got := ContentionSlowdown(10, 10, 0.5); got != 0 {
		t.Fatalf("satisfied demand slowed %v", got)
	}
	if got := ContentionSlowdown(0, 0, 0.5); got != 0 {
		t.Fatalf("zero demand slowed %v", got)
	}
}

func TestContentionSlowdownGrowsWithShortfall(t *testing.T) {
	mild := ContentionSlowdown(10, 8, 0.08)
	severe := ContentionSlowdown(10, 4, 0.08)
	if mild <= 0 || severe <= mild {
		t.Fatalf("slowdowns = %v, %v", mild, severe)
	}
}

func TestContentionSlowdownCappedAtStretch(t *testing.T) {
	// A workload cannot slow more than its memory phases stretch.
	got := ContentionSlowdown(10, 5, 1.0)
	if got > 1.0+1e-9 { // demand/grant - 1 = 1.0
		t.Fatalf("slowdown %v exceeds the phase stretch", got)
	}
}

func TestSharePort(t *testing.T) {
	p := SharePort([]float64{10, 10, 20})
	if !p.Oversubscribed() {
		t.Fatal("40 GB/s on a 32 GB/s port should oversubscribe")
	}
	var sum float64
	for _, g := range p.Grants {
		sum += g
	}
	if math.Abs(sum-CXLx8GBps) > 1e-6 {
		t.Fatalf("grants sum %v, want %v", sum, CXLx8GBps)
	}
	q := SharePort([]float64{5, 5})
	if q.Oversubscribed() {
		t.Fatal("10 GB/s should fit")
	}
}
