package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"pond"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// tinyOpts is a fast two-cell run used across the handler tests.
func tinyOpts() map[string]any {
	return map[string]any{
		"cluster": map[string]any{"hosts": 4, "emcs": 4, "pool_gb": 64, "cells": 2, "duration_sec": 300},
		"arrival": map[string]any{"process": "poisson", "rate_per_sec": 0.1, "mean_lifetime_sec": 150},
		"model":   map[string]any{"disabled": true},
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSnapshot(t *testing.T, resp *http.Response) Snapshot {
	t.Helper()
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// waitState polls GET /runs/{id} until the run reaches want.
func waitState(t *testing.T, base, id, want string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		s := decodeSnapshot(t, resp)
		if s.State == want {
			return s
		}
		if s.State == StateFailed {
			t.Fatalf("run %s failed: %s", id, s.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached state %s", id, want)
	return Snapshot{}
}

// TestEndpointsTable drives every endpoint through its error and
// success paths.
func TestEndpointsTable(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()

	t.Run("healthz", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var body struct {
			OK   bool `json:"ok"`
			Runs int  `json:"runs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || !body.OK {
			t.Fatalf("body: %+v err=%v", body, err)
		}
	})

	t.Run("start-bad-json", func(t *testing.T) {
		resp, err := client.Post(ts.URL+"/runs", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var e apiError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("no structured error: %+v err=%v", e, err)
		}
	})

	t.Run("start-unknown-field", func(t *testing.T) {
		resp, err := client.Post(ts.URL+"/runs", "application/json",
			strings.NewReader(`{"opts": {"warp_factor": 9}}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("start-invalid-opts", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/runs", map[string]any{
			"opts": map[string]any{"cluster": map[string]any{"topology": "moebius"}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var e apiError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "topology") {
			t.Fatalf("error does not mention topology: %+v", e)
		}
	})

	t.Run("start-empty-opts", func(t *testing.T) {
		// All-default options: the horizon must come from normalization
		// (the raw config carries duration_sec 0), so the run advances and
		// completes instead of busy-spinning at t=0.
		resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": map[string]any{}})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("start status %d", resp.StatusCode)
		}
		snap := decodeSnapshot(t, resp)
		if snap.Progress.DurationSec <= 0 {
			t.Fatalf("progress horizon %g, want the normalized default", snap.Progress.DurationSec)
		}
		done := waitState(t, ts.URL, snap.ID, StateDone)
		if done.Report == nil || !done.Progress.Done {
			t.Fatalf("defaulted run finished without a report: %+v", done)
		}
	})

	t.Run("start-hold-past-horizon", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts(), "hold_at_sec": []float64{301}})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var e apiError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "horizon") {
			t.Fatalf("error does not mention the horizon: %+v err=%v", e, err)
		}
	})

	t.Run("get-unknown-run", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/runs/r999")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("inject-unknown-run", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/runs/r999/inject", map[string]any{"injection": "emc-fail@t=100"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("events-unknown-run", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/runs/r999/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("run-lifecycle", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts()})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("start status %d", resp.StatusCode)
		}
		snap := decodeSnapshot(t, resp)
		if snap.ID == "" || snap.Config.Cluster.Cells != 2 {
			t.Fatalf("created snapshot: %+v", snap)
		}
		done := waitState(t, ts.URL, snap.ID, StateDone)
		if done.Report == nil || done.Report.LogSHA256 == "" {
			t.Fatalf("done without report: %+v", done)
		}
		if done.Progress.Arrivals == 0 || !done.Progress.Done {
			t.Fatalf("done progress: %+v", done.Progress)
		}

		// List must include the run.
		lresp, err := client.Get(ts.URL + "/runs")
		if err != nil {
			t.Fatal(err)
		}
		defer lresp.Body.Close()
		var list struct {
			Runs []Snapshot `json:"runs"`
		}
		if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range list.Runs {
			found = found || r.ID == snap.ID
		}
		if !found {
			t.Fatalf("run %s missing from list %+v", snap.ID, list.Runs)
		}

		// Injecting into the completed run conflicts.
		iresp := postJSON(t, ts.URL+"/runs/"+snap.ID+"/inject", map[string]any{"injection": "emc-fail@t=290"})
		defer iresp.Body.Close()
		if iresp.StatusCode != http.StatusConflict {
			t.Fatalf("inject-after-completion status %d, want 409", iresp.StatusCode)
		}
		var e apiError
		if err := json.NewDecoder(iresp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("no structured 409 body: %+v err=%v", e, err)
		}

		// Resuming a non-holding run conflicts too.
		rresp := postJSON(t, ts.URL+"/runs/"+snap.ID+"/resume", struct{}{})
		defer rresp.Body.Close()
		if rresp.StatusCode != http.StatusConflict {
			t.Fatalf("resume-non-holding status %d, want 409", rresp.StatusCode)
		}
	})

	t.Run("inject-bad-bodies", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts(), "hold_at_sec": []float64{100}})
		snap := decodeSnapshot(t, resp)
		waitState(t, ts.URL, snap.ID, StateHolding)
		cases := []struct {
			body string
			want string
		}{
			{`{nope`, "bad request body"},
			{`{"injection": "meteor@t=1"}`, "unknown injection"},
			{`{"injection": "emc-fail@t=200:emc=99"}`, "targets EMC"},
			{`{"injection": "emc-fail@t=50"}`, "before the current time"},
			{`{}`, `missing "injection"`},
		}
		for _, tc := range cases {
			iresp, err := client.Post(ts.URL+"/runs/"+snap.ID+"/inject", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var e apiError
			if err := json.NewDecoder(iresp.Body).Decode(&e); err != nil {
				t.Fatalf("body %q: decode: %v", tc.body, err)
			}
			iresp.Body.Close()
			if iresp.StatusCode != http.StatusBadRequest {
				t.Fatalf("body %q: status %d, want 400 (%s)", tc.body, iresp.StatusCode, e.Error)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Fatalf("body %q: error %q does not mention %q", tc.body, e.Error, tc.want)
			}
		}
	})
}

// streamEvents reads the NDJSON stream until EOF, returning the events.
func streamEvents(t *testing.T, url string) []Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// reassemble rebuilds the deterministic event log from streamed events:
// cell streams in cell order, fleet stream (-1) last.
func reassemble(events []Event, cells int) string {
	streams := make(map[int][]string)
	for _, e := range events {
		streams[e.Cell] = append(streams[e.Cell], e.Line)
	}
	var b strings.Builder
	for c := 0; c < cells; c++ {
		for _, line := range streams[c] {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	for _, line := range streams[-1] {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDeterminismBridgeHTTP is the end-to-end acceptance check: POST a
// run with a hold, inject emc-fail live over HTTP, resume, and the
// streamed event log must hash identically to the equivalent batch
// RunFleet with the injection scheduled up front — at workers 1 and 4.
func TestDeterminismBridgeHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	for _, workers := range []int{1, 4} {
		opts := tinyOpts()
		opts["engine"] = map[string]any{"workers": workers}
		resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": opts, "hold_at_sec": []float64{120}})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("start status %d", resp.StatusCode)
		}
		snap := decodeSnapshot(t, resp)
		waitState(t, ts.URL, snap.ID, StateHolding)

		iresp := postJSON(t, ts.URL+"/runs/"+snap.ID+"/inject", map[string]any{"injection": "emc-fail@t=200:emc=1"})
		if iresp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(iresp.Body)
			t.Fatalf("inject status %d: %s", iresp.StatusCode, body)
		}
		iresp.Body.Close()

		rresp := postJSON(t, ts.URL+"/runs/"+snap.ID+"/resume", struct{}{})
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("resume status %d", rresp.StatusCode)
		}
		rresp.Body.Close()

		done := waitState(t, ts.URL, snap.ID, StateDone)
		events := streamEvents(t, ts.URL+"/runs/"+snap.ID+"/events")
		log := reassemble(events, done.Config.Cluster.Cells)
		streamed := pond.EventLogSHA256(log, done.Config.Cluster.Cells)
		if streamed != done.Report.LogSHA256 {
			t.Fatalf("workers=%d: streamed log sha %s != served report sha %s", workers, streamed, done.Report.LogSHA256)
		}

		// The equivalent batch run: same options, injection scheduled.
		var batchOpts pond.FleetOpts
		data, _ := json.Marshal(opts)
		if err := json.Unmarshal(data, &batchOpts); err != nil {
			t.Fatal(err)
		}
		inj, err := pond.ParseInjection("emc-fail@t=200:emc=1")
		if err != nil {
			t.Fatal(err)
		}
		batchOpts.Injections = []pond.Injection{inj}
		batch, err := pond.RunFleet(context.Background(), batchOpts)
		if err != nil {
			t.Fatal(err)
		}
		if streamed != batch.LogSHA256 {
			t.Fatalf("workers=%d: live HTTP sha %s != batch sha %s", workers, streamed, batch.LogSHA256)
		}
	}
}

// TestEventsResumeFromSeq checks ?from=N replays exactly the suffix.
func TestEventsResumeFromSeq(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts()})
	snap := decodeSnapshot(t, resp)
	waitState(t, ts.URL, snap.ID, StateDone)

	all := streamEvents(t, ts.URL+"/runs/"+snap.ID+"/events")
	if len(all) < 4 {
		t.Fatalf("too few events to split: %d", len(all))
	}
	for i, e := range all {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	mid := len(all) / 2
	tail := streamEvents(t, ts.URL+fmt.Sprintf("/runs/%s/events?from=%d", snap.ID, mid))
	if len(tail) != len(all)-mid {
		t.Fatalf("resume length %d, want %d", len(tail), len(all)-mid)
	}
	for i, e := range tail {
		if e != all[mid+i] {
			t.Fatalf("resumed event %d = %+v, want %+v", i, e, all[mid+i])
		}
	}

	badResp, err := http.Get(ts.URL + "/runs/" + snap.ID + "/events?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from status %d, want 400", badResp.StatusCode)
	}
}

// TestEventsStreamLive attaches a streamer while the run is holding and
// checks it follows the run to completion.
func TestEventsStreamLive(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts(), "hold_at_sec": []float64{150}})
	snap := decodeSnapshot(t, resp)
	waitState(t, ts.URL, snap.ID, StateHolding)

	type result struct {
		events []Event
	}
	ch := make(chan result, 1)
	go func() {
		ch <- result{streamEvents(t, ts.URL+"/runs/"+snap.ID+"/events")}
	}()

	// Give the streamer a moment to attach mid-run, then release.
	time.Sleep(50 * time.Millisecond)
	rresp := postJSON(t, ts.URL+"/runs/"+snap.ID+"/resume", struct{}{})
	rresp.Body.Close()
	done := waitState(t, ts.URL, snap.ID, StateDone)

	select {
	case got := <-ch:
		if len(got.events) != done.Events {
			t.Fatalf("live stream saw %d events, run produced %d", len(got.events), done.Events)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("live stream never completed")
	}
}

// TestShutdownParksRunsAndClosesStreams checks graceful shutdown is
// prompt even with a follower attached to a run that would never finish
// on its own: Park returns, the run lands in the parked terminal state,
// the NDJSON stream EOFs, and later injections refuse with 409.
func TestShutdownParksRunsAndClosesStreams(t *testing.T) {
	s, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts(), "hold_at_sec": []float64{150}})
	snap := decodeSnapshot(t, resp)
	waitState(t, ts.URL, snap.ID, StateHolding)

	ch := make(chan []Event, 1)
	go func() {
		ch <- streamEvents(t, ts.URL+"/runs/"+snap.ID+"/events")
	}()
	// Give the streamer a moment to attach and block on the holding run.
	time.Sleep(50 * time.Millisecond)

	parked := make(chan struct{})
	go func() {
		s.Park()
		close(parked)
	}()
	select {
	case <-parked:
	case <-time.After(10 * time.Second):
		t.Fatal("Park never returned with a holding run attached")
	}

	select {
	case evs := <-ch:
		got := waitState(t, ts.URL, snap.ID, StateParked)
		if len(evs) != got.Events {
			t.Fatalf("stream saw %d events, parked run buffered %d", len(evs), got.Events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not close on shutdown")
	}

	iresp := postJSON(t, ts.URL+"/runs/"+snap.ID+"/inject", map[string]any{"injection": "emc-fail@t=200:emc=1"})
	defer iresp.Body.Close()
	if iresp.StatusCode != http.StatusConflict {
		t.Fatalf("inject into parked run: status %d, want 409", iresp.StatusCode)
	}
}

// TestCheckpointRestore shuts a server down while a run is holding and
// checks a fresh server restores the run FROM ITS SNAPSHOT — still
// holding at the same point, with the live injection and the event
// sequence intact — and that releasing it reproduces the identical
// report without re-simulating the elapsed horizon.
func TestCheckpointRestore(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "checkpoint.json")
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	s1, err := New(Config{StatePath: statePath, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp := postJSON(t, ts1.URL+"/runs", map[string]any{"opts": tinyOpts(), "hold_at_sec": []float64{100}})
	snap := decodeSnapshot(t, resp)
	waitState(t, ts1.URL, snap.ID, StateHolding)
	iresp := postJSON(t, ts1.URL+"/runs/"+snap.ID+"/inject", map[string]any{"injection": "emc-fail@t=200:emc=1"})
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d", iresp.StatusCode)
	}
	iresp.Body.Close()
	preShutdown := streamEventsNow(t, ts1.URL+"/runs/"+snap.ID+"/events")
	ts1.Close()
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// The reference: the run's batch config executed directly.
	want, err := pond.RunFleet(context.Background(), mustBatchConfig(t, statePath, snap.ID))
	if err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{StatePath: statePath, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		if err := s2.Shutdown(); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	}()

	// The hold must survive the restart: before the fix, restore dropped
	// the hold points and the run silently sprinted to completion.
	restored := waitState(t, ts2.URL, snap.ID, StateHolding)
	if restored.Progress.NowSec != 100 {
		t.Fatalf("restored run is holding at t=%g, want the checkpointed hold at t=100", restored.Progress.NowSec)
	}
	if got := len(restored.Config.Injections); got != 1 {
		t.Fatalf("restored config lost the live injection: %d injections", got)
	}

	rresp := postJSON(t, ts2.URL+"/runs/"+snap.ID+"/resume", struct{}{})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("resume status %d", rresp.StatusCode)
	}
	rresp.Body.Close()
	done := waitState(t, ts2.URL, snap.ID, StateDone)
	if done.Report.LogSHA256 != want.LogSHA256 {
		t.Fatalf("restored run sha %s != batch sha %s", done.Report.LogSHA256, want.LogSHA256)
	}

	// The event sequence is continuous across the restart: the full
	// stream re-served by the new process extends the pre-shutdown one,
	// and reassembling it reproduces the batch hash.
	events := streamEvents(t, ts2.URL+"/runs/"+snap.ID+"/events")
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d after restore", i, e.Seq)
		}
	}
	for i, e := range preShutdown {
		if events[i] != e {
			t.Fatalf("restored stream rewrote event %d: %+v != %+v", i, events[i], e)
		}
	}
	log := reassemble(events, done.Config.Cluster.Cells)
	if got := pond.EventLogSHA256(log, done.Config.Cluster.Cells); got != want.LogSHA256 {
		t.Fatalf("restored stream sha %s != batch sha %s", got, want.LogSHA256)
	}
}

// streamEventsNow fetches the currently buffered events without
// following the run: it reads ?from=0 and cuts the connection once the
// buffered suffix stalls.
func streamEventsNow(t *testing.T, url string) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	return events
}

// TestCheckpointTerminalRunsSkipResimulation finishes a run, restarts
// the daemon, and checks the run comes back done — report, error state,
// and replay buffer intact — without any live simulation attached.
func TestCheckpointTerminalRunsSkipResimulation(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "checkpoint.json")
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	s1, err := New(Config{StatePath: statePath, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp := postJSON(t, ts1.URL+"/runs", map[string]any{"opts": tinyOpts()})
	snap := decodeSnapshot(t, resp)
	done := waitState(t, ts1.URL, snap.ID, StateDone)
	ts1.Close()
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{StatePath: statePath, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		if err := s2.Shutdown(); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	}()

	// Immediately done — no waiting, nothing to re-simulate.
	r, ok := s2.run(snap.ID)
	if !ok {
		t.Fatalf("run %s missing after restore", snap.ID)
	}
	if r.fr != nil {
		t.Fatal("terminal restored run carries a live simulation")
	}
	got := decodeSnapshot(t, mustGet(t, ts2.URL+"/runs/"+snap.ID))
	if got.State != StateDone {
		t.Fatalf("restored terminal run state %s, want done", got.State)
	}
	if got.Report == nil || got.Report.LogSHA256 != done.Report.LogSHA256 {
		t.Fatalf("restored terminal run report: %+v, want sha %s", got.Report, done.Report.LogSHA256)
	}
	if got.Events != done.Events {
		t.Fatalf("restored terminal run buffers %d events, want %d", got.Events, done.Events)
	}
	if got.Progress != done.Progress {
		t.Fatalf("restored terminal run progress %+v, want %+v", got.Progress, done.Progress)
	}
	events := streamEvents(t, ts2.URL+"/runs/"+snap.ID+"/events")
	if len(events) != done.Events {
		t.Fatalf("restored terminal run replays %d events, want %d", len(events), done.Events)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCheckpointV1LegacyRestore hand-writes a version-1 (unversioned,
// config-only) state file and checks the daemon still restores it by
// re-running the configuration, reproducing the batch report.
func TestCheckpointV1LegacyRestore(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "checkpoint.json")
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	var opts pond.FleetOpts
	data, _ := json.Marshal(tinyOpts())
	if err := json.Unmarshal(data, &opts); err != nil {
		t.Fatal(err)
	}
	v1 := map[string]any{
		"next_id": 1,
		"runs":    []map[string]any{{"id": "r1", "opts": json.RawMessage(data)}},
	}
	fileData, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statePath, fileData, 0o644); err != nil {
		t.Fatal(err)
	}

	want, err := pond.RunFleet(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{StatePath: statePath, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		if err := s.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	done := waitState(t, ts.URL, "r1", StateDone)
	if done.Report.LogSHA256 != want.LogSHA256 {
		t.Fatalf("v1-restored run sha %s != batch sha %s", done.Report.LogSHA256, want.LogSHA256)
	}
}

// mustBatchConfig reads a run's checkpointed options back out of the
// state file.
func mustBatchConfig(t *testing.T, statePath, id string) pond.FleetOpts {
	t.Helper()
	var ck checkpointFile
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(ck.Runs))
	for _, r := range ck.Runs {
		ids = append(ids, r.ID)
		if r.ID == id {
			return r.Opts
		}
	}
	sort.Strings(ids)
	t.Fatalf("run %s not in checkpoint (have %v)", id, ids)
	return pond.FleetOpts{}
}
