package serve

import (
	"net/http"
	"sort"

	"pond"
	"pond/internal/obs"
)

// serverMetrics is the daemon's instrumentation: process-wide counters
// and histograms registered once, plus a collector that walks the run
// registry at scrape time and emits the per-run gauges. Everything here
// observes the control plane only — the simulation below never sees it,
// so metrics can never perturb a run's event log or report.
type serverMetrics struct {
	runsStarted  *obs.Counter
	runsRestored *obs.Counter
	runsEvicted  *obs.Counter
	injections   *obs.Counter
	checkpoints  *obs.Counter

	checkpointBytes   *obs.Gauge
	checkpointSeconds *obs.Histogram

	// phaseSeconds times the engine phases across all runs; one fixed
	// histogram per phase name keeps the label set static.
	phaseSeconds map[string]*obs.Histogram
}

// enginePhases are the phase names FleetRun.SetPhaseHook reports.
var enginePhases = []string{"advance", "retrain", "plan", "finish"}

// initMetrics builds the registry and registers every family plus the
// process and per-run collectors.
func (s *Server) initMetrics() {
	s.obs = obs.NewRegistry()
	obs.RegisterProcessCollector(s.obs)
	m := &serverMetrics{
		runsStarted:       s.obs.Counter("pond_runs_started_total", "Runs started via POST /runs."),
		runsRestored:      s.obs.Counter("pond_runs_restored_total", "Runs rebuilt from the checkpoint at startup."),
		runsEvicted:       s.obs.Counter("pond_runs_evicted_total", "Terminal runs evicted by the retention policy."),
		injections:        s.obs.Counter("pond_injections_total", "Live injections accepted via POST /runs/{id}/inject."),
		checkpoints:       s.obs.Counter("pond_checkpoints_total", "Checkpoint files written."),
		checkpointBytes:   s.obs.Gauge("pond_checkpoint_bytes", "Size of the last checkpoint file written."),
		checkpointSeconds: s.obs.Histogram("pond_checkpoint_seconds", "Wall-clock latency of checkpoint writes.", obs.DefBuckets),
		phaseSeconds:      map[string]*obs.Histogram{},
	}
	for _, ph := range enginePhases {
		m.phaseSeconds[ph] = s.obs.Histogram("pond_phase_seconds", "Wall-clock engine phase durations across runs.", obs.DefBuckets, "phase", ph)
	}
	s.met = m
	s.obs.RegisterCollector(s.collectRuns)
}

// instrument installs the engine phase hook on a live run: each phase's
// wall-clock duration feeds the shared histograms and a structured span
// log. The hook fires on the driver goroutine at safe points; "advance"
// fires once per slice, so it logs at debug while the rarer barrier and
// close-out phases log at info.
func (s *Server) instrument(id string, fr *pond.FleetRun) {
	fr.SetPhaseHook(func(phase string, atSec, seconds float64) {
		if h := s.met.phaseSeconds[phase]; h != nil {
			h.Observe(seconds)
		}
		if phase == "advance" {
			s.log.Debug("phase", "id", id, "phase", phase, "t", atSec, "seconds", seconds)
		} else {
			s.log.Info("phase", "id", id, "phase", phase, "t", atSec, "seconds", seconds)
		}
	})
}

// collectRuns emits the per-run gauge families, one labelled series per
// run, runs in ID order so scrapes are stable.
func (s *Server) collectRuns(w *obs.Writer) {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runID(runs[i].ID) < runID(runs[j].ID) })
	views := make([]gaugeView, len(runs))
	for i, r := range runs {
		views[i] = r.gauges()
	}

	emit := func(name, help string, val func(gaugeView) float64) {
		w.Family(name, "gauge", help)
		for _, v := range views {
			w.Value(name, val(v), "run", v.id)
		}
	}
	emit("pond_run_sim_time_seconds", "Simulated time the run has reached.", func(v gaugeView) float64 { return v.progress.NowSec })
	emit("pond_run_horizon_seconds", "Simulated horizon of the run.", func(v gaugeView) float64 { return v.progress.DurationSec })
	emit("pond_run_live_vms", "Placed, not-yet-departed VMs across the run's cells.", func(v gaugeView) float64 { return float64(v.progress.LiveVMs) })
	emit("pond_run_pool_gb", "Active pool capacity summed across cells.", func(v gaugeView) float64 { return float64(v.progress.PoolGB) })
	emit("pond_run_pool_used_gb", "Pool draw at the last accounting point, summed across cells.", func(v gaugeView) float64 { return v.progress.PoolUsedGB })
	emit("pond_run_fallbacks", "Pool-exhaustion DRAM fallbacks so far.", func(v gaugeView) float64 { return float64(v.progress.Fallbacks) })
	emit("pond_run_qos_violations", "Latency-band QoS violations so far.", func(v gaugeView) float64 { return float64(v.progress.QoSViolations) })
	emit("pond_run_retrains", "Model retrains so far.", func(v gaugeView) float64 { return float64(v.progress.Retrains) })
	emit("pond_run_rollbacks", "Model rollbacks so far.", func(v gaugeView) float64 { return float64(v.progress.Rollbacks) })
	emit("pond_run_events", "Sequenced event-log lines buffered.", func(v gaugeView) float64 { return float64(v.events) })
	emit("pond_run_event_stream_lag", "Buffered event lines not yet delivered to any streamer.", func(v gaugeView) float64 { return float64(v.lag) })
	emit("pond_run_metrics_rows", "Buffered sim-time series rows.", func(v gaugeView) float64 { return float64(v.rows) })
	emit("pond_run_state_age_seconds", "Wall-clock seconds since the run's last state change.", func(v gaugeView) float64 { return v.ageSec })

	w.Family("pond_run_state", "gauge", "Run state as a one-hot series per state label.")
	for _, v := range views {
		for _, st := range []string{StateRunning, StateHolding, StateDone, StateFailed, StateParked} {
			val := 0.0
			if v.state == st {
				val = 1
			}
			w.Value("pond_run_state", val, "run", v.id, "state", st)
		}
	}
}

// MetricsHandler serves the Prometheus text exposition — mounted at
// GET /metrics on the API listener and, when configured, on the admin
// listener next to pprof.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obs.WritePrometheus(w)
	})
}
