package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pond"
	"pond/internal/obs"
)

// Config configures a Server.
type Config struct {
	// StatePath is the checkpoint file Shutdown writes and New restores
	// from; empty disables checkpointing.
	StatePath string
	// SliceSec bounds how much simulated time a run advances per lock
	// hold; 0 derives a per-run slice (1/64 of the horizon) so
	// injections land promptly without slicing tiny runs to dust.
	SliceSec float64
	// Log receives the daemon's structured logs; nil discards them.
	Log *slog.Logger
	// RetainDone caps how many terminal (done or failed) runs the
	// registry keeps: when exceeded, the oldest-finished are evicted.
	// 0 keeps every run. Mid-flight and parked runs are never evicted.
	RetainDone int
	// RetainAge evicts terminal runs whose finish is older than this;
	// 0 disables age-based eviction. Checked when runs finish and start,
	// not on a timer.
	RetainAge time.Duration
}

// Server owns the run registry and implements the pondserve HTTP API:
//
//	POST /runs              start a run (body: {"opts": FleetOpts, "hold_at_sec": [...]})
//	GET  /runs              list runs
//	GET  /runs/{id}         inspect one run (progress, config, report when done)
//	POST /runs/{id}/inject  schedule an injection at the next safe point
//	POST /runs/{id}/resume  release a holding run
//	GET  /runs/{id}/events  stream the event log as NDJSON (?from=seq resumes)
//	GET  /healthz           liveness probe
type Server struct {
	cfg Config
	log *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	obs *obs.Registry
	met *serverMetrics

	mu     sync.Mutex
	runs   map[string]*Run
	nextID int
}

// New builds a Server, restoring any runs checkpointed at
// cfg.StatePath: each restored run re-executes from its checkpointed
// configuration, which the determinism contract guarantees reproduces
// the original event log and report byte for byte.
func New(cfg Config) (*Server, error) {
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{cfg: cfg, log: cfg.Log, ctx: ctx, cancel: cancel, runs: make(map[string]*Run)}
	s.initMetrics()
	if cfg.StatePath != "" {
		if err := s.restore(cfg.StatePath); err != nil {
			cancel()
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the daemon's routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /runs", s.handleStart)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("POST /runs/{id}/inject", s.handleInject)
	mux.HandleFunc("POST /runs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/metrics", s.handleRunMetrics)
	mux.Handle("GET /metrics", s.MetricsHandler())
	return mux
}

// Shutdown parks every run and writes the checkpoint file — the
// in-process equivalent of Park followed by Checkpoint. The HTTP
// listener is the caller's to close.
func (s *Server) Shutdown() error {
	s.Park()
	return s.Checkpoint()
}

// Park stops every run driver and waits for the runs to park at their
// current safe points. Parking is terminal: attached event streams
// close and further injections refuse, so an http.Server drains quickly
// afterwards. The daemon calls Park before http.Server.Shutdown and
// Checkpoint after it, once no handler can race the state file.
func (s *Server) Park() {
	s.cancel()
	s.wg.Wait()
}

// Checkpoint writes the parked registry to the configured state file;
// with checkpointing disabled it is a no-op.
func (s *Server) Checkpoint() error {
	if s.cfg.StatePath == "" {
		return nil
	}
	return s.checkpoint(s.cfg.StatePath)
}

// startRun registers and launches a run. holds are sorted ascending so
// the driver consumes them in time order; a hold past the normalized
// horizon would never be reached, so it is refused up front.
func (s *Server) startRun(opts pond.FleetOpts, holds []float64) (*Run, error) {
	fr, err := pond.StartFleet(s.ctx, opts)
	if err != nil {
		return nil, err
	}
	horizon := fr.Progress().DurationSec
	for _, h := range holds {
		if h > horizon {
			return nil, fmt.Errorf("hold_at_sec %g is past the %gs horizon", h, horizon)
		}
	}
	sort.Float64s(holds)
	// The daemon keeps its own sequenced replay buffer, so the runner's
	// copy of drained log prefixes is redundant — fold them into the
	// incremental report hash and free the bytes.
	fr.SetCompactDrained(true)
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("r%d", s.nextID)
	r := newRun(id, fr, holds)
	s.runs[id] = r
	s.mu.Unlock()

	s.instrument(id, fr)
	s.met.runsStarted.Inc()
	s.evict()
	s.launch(r, horizon)
	s.log.Info("run started", "id", id, "holds", holds)
	return r, nil
}

// launch starts the driver goroutine for a registered run.
func (s *Server) launch(r *Run, horizon float64) {
	slice := s.cfg.SliceSec
	if slice <= 0 {
		slice = horizon / 64
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		r.drive(s.ctx, slice)
		snap := r.Snapshot()
		s.log.Info("run finished", "id", r.ID, "state", snap.State, "events", snap.Events)
		s.evict()
	}()
}

func (s *Server) run(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// apiError is the structured error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.runs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "runs": n})
}

// startRequest is the POST /runs body: the same grouped FleetOpts the
// Go API and the pondfleet flags take, plus optional hold points where
// the run pauses until POST /runs/{id}/resume — the handle a client
// uses to line up a live injection at an exact simulated time.
type startRequest struct {
	Opts      pond.FleetOpts `json:"opts"`
	HoldAtSec []float64      `json:"hold_at_sec,omitempty"`
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return errors.New("request body must be a single JSON object")
	}
	return nil
}

func (s *Server) handleStart(w http.ResponseWriter, req *http.Request) {
	var body startRequest
	if err := decodeJSON(req, &body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := body.Opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	for _, h := range body.HoldAtSec {
		if h < 0 {
			writeError(w, http.StatusBadRequest, "hold_at_sec %g is negative", h)
			return
		}
	}
	r, err := s.startRun(body.Opts, body.HoldAtSec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "start run: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, r.Snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runID(runs[i].ID) < runID(runs[j].ID) })
	out := make([]Snapshot, len(runs))
	for i, r := range runs {
		out[i] = r.Snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

func runID(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "r"))
	return n
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, r.Snapshot())
}

// injectRequest is the POST /runs/{id}/inject body: one injection in
// its canonical spec form, e.g. {"injection": "emc-fail@t=500:emc=1"}
// — the same string the -inject flag takes, parsed and validated by
// the same code.
type injectRequest struct {
	Injection pond.Injection `json:"injection"`
}

func (s *Server) handleInject(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	var body injectRequest
	if err := decodeJSON(req, &body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if body.Injection == (pond.Injection{}) {
		writeError(w, http.StatusBadRequest, `bad request body: missing "injection"`)
		return
	}
	if err := r.Inject(body.Injection); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrCompleted) || errors.Is(err, ErrParked) {
			status = http.StatusConflict
		}
		writeError(w, status, "inject: %v", err)
		return
	}
	s.met.injections.Inc()
	s.log.Info("injection scheduled", "id", r.ID, "injection", body.Injection.String())
	writeJSON(w, http.StatusOK, r.Snapshot())
}

func (s *Server) handleResume(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	if !r.Resume() {
		writeError(w, http.StatusConflict, "run %s is not holding", r.ID)
		return
	}
	writeJSON(w, http.StatusOK, r.Snapshot())
}

// handleEvents streams the run's event log as NDJSON, one Event per
// line, following the run live until it completes. ?from=N resumes
// after a dropped connection: the first line sent has seq >= N.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	from := 0
	if q := req.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from=%q: want a sequence number >= 0", q)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		evs := r.EventsFrom(req.Context(), from)
		if len(evs) == 0 {
			return
		}
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from = evs[len(evs)-1].Seq + 1
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleRunMetrics serves the run's buffered sim-time series (empty
// unless the run was started with engine.metrics_every_sec > 0). The
// default response is one JSON object with the full series; ?follow=1
// streams rows as NDJSON, following the run live until it completes,
// with ?from=N resuming after the row at buffer position N-1.
func (s *Server) handleRunMetrics(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	q := req.URL.Query()
	from := 0
	if v := q.Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from=%q: want a row index >= 0", v)
			return
		}
		from = n
	}
	if q.Get("follow") == "" {
		rows := r.Metrics()
		if from > len(rows) {
			from = len(rows)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"run":  r.ID,
			"rows": rows[from:],
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		rows := r.MetricsFrom(req.Context(), from)
		if len(rows) == 0 {
			return
		}
		for _, e := range rows {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from = rows[len(rows)-1].Seq + 1
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// evict applies the retention policy: with RetainDone set, at most that
// many terminal (done or failed) runs survive, oldest finish evicted
// first; with RetainAge set, terminal runs older than the age go
// regardless of count. Mid-flight, holding, and parked runs are never
// touched — parked runs carry resume state the next process needs.
// Called when a run starts and when one finishes; never on a timer.
func (s *Server) evict() {
	if s.cfg.RetainDone <= 0 && s.cfg.RetainAge <= 0 {
		return
	}
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()

	type done struct {
		r  *Run
		at time.Time
	}
	var terminal []done
	for _, r := range runs {
		r.mu.Lock()
		if (r.state == StateDone || r.state == StateFailed) && !r.finishedAt.IsZero() {
			terminal = append(terminal, done{r: r, at: r.finishedAt})
		}
		r.mu.Unlock()
	}
	sort.Slice(terminal, func(i, j int) bool {
		if !terminal[i].at.Equal(terminal[j].at) {
			return terminal[i].at.Before(terminal[j].at)
		}
		return runID(terminal[i].r.ID) < runID(terminal[j].r.ID)
	})
	var victims []*Run
	keep := len(terminal)
	if s.cfg.RetainDone > 0 && keep > s.cfg.RetainDone {
		for _, d := range terminal[:keep-s.cfg.RetainDone] {
			victims = append(victims, d.r)
		}
		terminal = terminal[keep-s.cfg.RetainDone:]
	}
	if s.cfg.RetainAge > 0 {
		for _, d := range terminal {
			if time.Since(d.at) > s.cfg.RetainAge {
				victims = append(victims, d.r)
			}
		}
	}
	if len(victims) == 0 {
		return
	}
	s.mu.Lock()
	for _, v := range victims {
		// Terminal states never transition back, so the re-check under
		// s.mu only guards against a concurrent evict already deleting it.
		if _, ok := s.runs[v.ID]; ok {
			delete(s.runs, v.ID)
			s.met.runsEvicted.Inc()
			s.log.Info("run evicted", "id", v.ID, "state", v.state)
		}
	}
	s.mu.Unlock()
}

// checkpointVersion is the current state-file format. Version 2 embeds
// each run's full simulator snapshot, replay buffer, and remaining hold
// points, so a restart resumes runs from their parked safe points.
// Version-1 files (no version field) carried only the batch
// configuration; they still restore, by re-running the configuration
// from t=0 under the determinism contract.
const checkpointVersion = 2

// checkpointFile is the persisted daemon state.
type checkpointFile struct {
	Version int             `json:"version"`
	NextID  int             `json:"next_id"`
	Runs    []checkpointRun `json:"runs"`
}

// checkpointRun is one run's persisted state: the
// reproduce-from-scratch configuration (scheduled plus live injections,
// already folded together by FleetRun.Config) plus, in v2, the state
// needed to resume without re-simulation — the pre-park run state, the
// remaining hold points, the sequenced event buffer (so ?from= streams
// survive the restart), and either the simulator snapshot (mid-flight
// runs) or the final report (terminal runs).
type checkpointRun struct {
	ID       string              `json:"id"`
	Opts     pond.FleetOpts      `json:"opts"`
	State    string              `json:"state,omitempty"`
	HoldsAt  []float64           `json:"holds_at,omitempty"`
	Events   []Event             `json:"events,omitempty"`
	Metrics  []pond.MetricsRow   `json:"metrics,omitempty"`
	Snapshot *pond.FleetSnapshot `json:"snapshot,omitempty"`
	Report   *SnapshotReport     `json:"report,omitempty"`
	Error    string              `json:"error,omitempty"`
	Progress *pond.FleetProgress `json:"progress,omitempty"`
}

// checkpointState captures the run for persistence. The run lock keeps
// a straggling inject handler from tearing the persisted state; parked
// runs record the state the park interrupted, so a run parked while
// holding resumes holding at the same point.
func (r *Run) checkpointState() (checkpointRun, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cr := checkpointRun{
		ID:      r.ID,
		Opts:    r.configLocked(),
		State:   r.state,
		HoldsAt: append([]float64(nil), r.holds...),
		Events:  append([]Event(nil), r.events...),
		Metrics: append([]pond.MetricsRow(nil), r.metrics...),
	}
	if r.state == StateParked && r.parkedFrom != "" {
		cr.State = r.parkedFrom
	}
	switch cr.State {
	case StateDone, StateFailed:
		cr.Report = r.report
		if r.err != nil {
			cr.Error = r.err.Error()
		}
		p := r.progressLocked()
		cr.Progress = &p
	default:
		if r.fr == nil {
			return cr, fmt.Errorf("run %s: %s with no live simulation", r.ID, cr.State)
		}
		snap, err := r.fr.Snapshot()
		if err != nil {
			return cr, fmt.Errorf("run %s: snapshot: %w", r.ID, err)
		}
		cr.Snapshot = snap
	}
	return cr, nil
}

// checkpoint writes the parked registry: every run's configuration plus
// the v2 resume state — simulator snapshots for mid-flight runs, final
// reports for terminal ones.
func (s *Server) checkpoint(path string) error {
	t0 := time.Now()
	s.mu.Lock()
	ck := checkpointFile{Version: checkpointVersion, NextID: s.nextID}
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runID(runs[i].ID) < runID(runs[j].ID) })
	for _, r := range runs {
		cr, err := r.checkpointState()
		if err != nil {
			return err
		}
		ck.Runs = append(ck.Runs, cr)
	}
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	secs := time.Since(t0).Seconds()
	s.met.checkpoints.Inc()
	s.met.checkpointBytes.Set(float64(len(data) + 1))
	s.met.checkpointSeconds.Observe(secs)
	s.log.Info("checkpoint written", "path", path, "runs", len(ck.Runs), "bytes", len(data)+1, "seconds", secs)
	return nil
}

// restore rebuilds every checkpointed run under its original ID. A
// missing checkpoint file is a fresh start, not an error. Runs with a
// v2 snapshot resume from their parked safe point in O(state) time;
// terminal runs are rebuilt from their persisted report without any
// simulation; v1 config-only runs re-execute from t=0.
func (s *Server) restore(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		return nil
	}
	if err != nil {
		return err
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return fmt.Errorf("corrupt checkpoint %s: %w", path, err)
	}
	if ck.Version != 0 && ck.Version != checkpointVersion {
		return fmt.Errorf("checkpoint %s: version %d, this build reads versions 1 (unversioned) and %d",
			path, ck.Version, checkpointVersion)
	}
	s.nextID = ck.NextID
	for _, cr := range ck.Runs {
		if err := s.restoreRun(cr); err != nil {
			return fmt.Errorf("restore run %s: %w", cr.ID, err)
		}
	}
	return nil
}

// restoreRun rebuilds one checkpointed run.
func (s *Server) restoreRun(cr checkpointRun) error {
	if cr.State == StateDone || cr.State == StateFailed {
		r := &Run{
			ID:      cr.ID,
			state:   cr.State,
			config:  cr.Opts,
			events:  cr.Events,
			metrics: cr.Metrics,
			report:  cr.Report,
			// The original finish time is not persisted; ageing restored
			// terminal runs from the restore instead of evicting them
			// immediately errs on the side of keeping data.
			stateSince: time.Now(),
			finishedAt: time.Now(),
		}
		if cr.Progress != nil {
			r.progress = *cr.Progress
		}
		if cr.Error != "" {
			r.err = errors.New(cr.Error)
		}
		r.cond = sync.NewCond(&r.mu)
		s.runs[cr.ID] = r
		s.met.runsRestored.Inc()
		s.log.Info("run restored", "id", cr.ID, "state", cr.State)
		return nil
	}
	var fr *pond.FleetRun
	var err error
	if cr.Snapshot != nil {
		fr, err = pond.RestoreFleet(s.ctx, cr.Snapshot)
	} else {
		// v1 config-only checkpoint: the snapshot is missing, so the only
		// way back to the parked point is to re-run the configuration
		// from t=0 — correct under the determinism contract, but paying
		// the full re-simulation the v2 format exists to avoid.
		s.log.Warn("v1 checkpoint has no snapshot; re-running from t=0", "id", cr.ID)
		fr, err = pond.StartFleet(s.ctx, cr.Opts)
	}
	if err != nil {
		return err
	}
	fr.SetCompactDrained(true)
	r := newRun(cr.ID, fr, append([]float64(nil), cr.HoldsAt...))
	r.events = cr.Events
	r.metrics = cr.Metrics
	if cr.State == StateHolding {
		r.state = StateHolding
	}
	s.runs[cr.ID] = r
	s.instrument(cr.ID, fr)
	s.met.runsRestored.Inc()
	// Read the resume point before launch: once the driver goroutine is
	// running, the simulator belongs to it.
	at := fr.Now()
	s.launch(r, fr.Progress().DurationSec)
	s.log.Info("run restored", "id", cr.ID, "state", r.state, "t", at)
	return nil
}
