package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pond"
)

// Config configures a Server.
type Config struct {
	// StatePath is the checkpoint file Shutdown writes and New restores
	// from; empty disables checkpointing.
	StatePath string
	// SliceSec bounds how much simulated time a run advances per lock
	// hold; 0 derives a per-run slice (1/64 of the horizon) so
	// injections land promptly without slicing tiny runs to dust.
	SliceSec float64
	// Log receives the daemon's structured logs; nil discards them.
	Log *slog.Logger
}

// Server owns the run registry and implements the pondserve HTTP API:
//
//	POST /runs              start a run (body: {"opts": FleetOpts, "hold_at_sec": [...]})
//	GET  /runs              list runs
//	GET  /runs/{id}         inspect one run (progress, config, report when done)
//	POST /runs/{id}/inject  schedule an injection at the next safe point
//	POST /runs/{id}/resume  release a holding run
//	GET  /runs/{id}/events  stream the event log as NDJSON (?from=seq resumes)
//	GET  /healthz           liveness probe
type Server struct {
	cfg Config
	log *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	runs   map[string]*Run
	nextID int
}

// New builds a Server, restoring any runs checkpointed at
// cfg.StatePath: each restored run re-executes from its checkpointed
// configuration, which the determinism contract guarantees reproduces
// the original event log and report byte for byte.
func New(cfg Config) (*Server, error) {
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{cfg: cfg, log: cfg.Log, ctx: ctx, cancel: cancel, runs: make(map[string]*Run)}
	if cfg.StatePath != "" {
		if err := s.restore(cfg.StatePath); err != nil {
			cancel()
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the daemon's routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /runs", s.handleStart)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("POST /runs/{id}/inject", s.handleInject)
	mux.HandleFunc("POST /runs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	return mux
}

// Shutdown parks every run and writes the checkpoint file — the
// in-process equivalent of Park followed by Checkpoint. The HTTP
// listener is the caller's to close.
func (s *Server) Shutdown() error {
	s.Park()
	return s.Checkpoint()
}

// Park stops every run driver and waits for the runs to park at their
// current safe points. Parking is terminal: attached event streams
// close and further injections refuse, so an http.Server drains quickly
// afterwards. The daemon calls Park before http.Server.Shutdown and
// Checkpoint after it, once no handler can race the state file.
func (s *Server) Park() {
	s.cancel()
	s.wg.Wait()
}

// Checkpoint writes the parked registry to the configured state file;
// with checkpointing disabled it is a no-op.
func (s *Server) Checkpoint() error {
	if s.cfg.StatePath == "" {
		return nil
	}
	return s.checkpoint(s.cfg.StatePath)
}

// startRun registers and launches a run. holds are sorted ascending so
// the driver consumes them in time order; a hold past the normalized
// horizon would never be reached, so it is refused up front.
func (s *Server) startRun(opts pond.FleetOpts, holds []float64) (*Run, error) {
	fr, err := pond.StartFleet(s.ctx, opts)
	if err != nil {
		return nil, err
	}
	horizon := fr.Progress().DurationSec
	for _, h := range holds {
		if h > horizon {
			return nil, fmt.Errorf("hold_at_sec %g is past the %gs horizon", h, horizon)
		}
	}
	sort.Float64s(holds)
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("r%d", s.nextID)
	r := newRun(id, fr, holds)
	s.runs[id] = r
	s.mu.Unlock()

	slice := s.cfg.SliceSec
	if slice <= 0 {
		slice = horizon / 64
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		r.drive(s.ctx, slice)
		snap := r.Snapshot()
		s.log.Info("run finished", "id", id, "state", snap.State, "events", snap.Events)
	}()
	s.log.Info("run started", "id", id, "holds", holds)
	return r, nil
}

func (s *Server) run(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// apiError is the structured error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.runs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "runs": n})
}

// startRequest is the POST /runs body: the same grouped FleetOpts the
// Go API and the pondfleet flags take, plus optional hold points where
// the run pauses until POST /runs/{id}/resume — the handle a client
// uses to line up a live injection at an exact simulated time.
type startRequest struct {
	Opts      pond.FleetOpts `json:"opts"`
	HoldAtSec []float64      `json:"hold_at_sec,omitempty"`
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return errors.New("request body must be a single JSON object")
	}
	return nil
}

func (s *Server) handleStart(w http.ResponseWriter, req *http.Request) {
	var body startRequest
	if err := decodeJSON(req, &body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := body.Opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	for _, h := range body.HoldAtSec {
		if h < 0 {
			writeError(w, http.StatusBadRequest, "hold_at_sec %g is negative", h)
			return
		}
	}
	r, err := s.startRun(body.Opts, body.HoldAtSec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "start run: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, r.Snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runID(runs[i].ID) < runID(runs[j].ID) })
	out := make([]Snapshot, len(runs))
	for i, r := range runs {
		out[i] = r.Snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

func runID(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "r"))
	return n
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, r.Snapshot())
}

// injectRequest is the POST /runs/{id}/inject body: one injection in
// its canonical spec form, e.g. {"injection": "emc-fail@t=500:emc=1"}
// — the same string the -inject flag takes, parsed and validated by
// the same code.
type injectRequest struct {
	Injection pond.Injection `json:"injection"`
}

func (s *Server) handleInject(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	var body injectRequest
	if err := decodeJSON(req, &body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if body.Injection == (pond.Injection{}) {
		writeError(w, http.StatusBadRequest, `bad request body: missing "injection"`)
		return
	}
	if err := r.Inject(body.Injection); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrCompleted) || errors.Is(err, ErrParked) {
			status = http.StatusConflict
		}
		writeError(w, status, "inject: %v", err)
		return
	}
	s.log.Info("injection scheduled", "id", r.ID, "injection", body.Injection.String())
	writeJSON(w, http.StatusOK, r.Snapshot())
}

func (s *Server) handleResume(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	if !r.Resume() {
		writeError(w, http.StatusConflict, "run %s is not holding", r.ID)
		return
	}
	writeJSON(w, http.StatusOK, r.Snapshot())
}

// handleEvents streams the run's event log as NDJSON, one Event per
// line, following the run live until it completes. ?from=N resumes
// after a dropped connection: the first line sent has seq >= N.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r, ok := s.run(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	from := 0
	if q := req.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from=%q: want a sequence number >= 0", q)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		evs := r.EventsFrom(req.Context(), from)
		if len(evs) == 0 {
			return
		}
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from = evs[len(evs)-1].Seq + 1
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// checkpointFile is the persisted daemon state: each run's
// reproduce-from-scratch configuration (scheduled plus live injections,
// already folded together by FleetRun.Config).
type checkpointFile struct {
	NextID int             `json:"next_id"`
	Runs   []checkpointRun `json:"runs"`
}

type checkpointRun struct {
	ID   string         `json:"id"`
	Opts pond.FleetOpts `json:"opts"`
}

// checkpoint writes the registry's batch configurations. Runs that were
// mid-flight are stored the same way as completed ones: re-running the
// config deterministically reproduces everything up to — and past —
// the point the daemon stopped.
func (s *Server) checkpoint(path string) error {
	s.mu.Lock()
	ck := checkpointFile{NextID: s.nextID}
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runID(runs[i].ID) < runID(runs[j].ID) })
	for _, r := range runs {
		// Config takes the run lock, so a straggling inject handler cannot
		// tear the persisted injection list.
		ck.Runs = append(ck.Runs, checkpointRun{ID: r.ID, Opts: r.Config()})
	}
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	s.log.Info("checkpoint written", "path", path, "runs", len(ck.Runs))
	return nil
}

// restore relaunches every checkpointed run under its original ID. A
// missing checkpoint file is a fresh start, not an error.
func (s *Server) restore(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		return nil
	}
	if err != nil {
		return err
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return fmt.Errorf("corrupt checkpoint %s: %w", path, err)
	}
	s.nextID = ck.NextID
	for _, cr := range ck.Runs {
		fr, err := pond.StartFleet(s.ctx, cr.Opts)
		if err != nil {
			return fmt.Errorf("restore run %s: %w", cr.ID, err)
		}
		r := newRun(cr.ID, fr, nil)
		s.runs[cr.ID] = r
		slice := s.cfg.SliceSec
		if slice <= 0 {
			slice = fr.Progress().DurationSec / 64
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			r.drive(s.ctx, slice)
		}()
		s.log.Info("run restored", "id", cr.ID)
	}
	return nil
}
