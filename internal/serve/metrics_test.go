package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pond"
)

// metricsOpts is tinyOpts with sim-time sampling on: 2 cells, 300s
// horizon, a 50s cadence — 6 samples per cell, 12 rows total.
func metricsOpts() map[string]any {
	o := tinyOpts()
	o["engine"] = map[string]any{"metrics_every_sec": 50}
	return o
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// runMetricsBody is the GET /runs/{id}/metrics response shape.
type runMetricsBody struct {
	Run  string            `json:"run"`
	Rows []pond.MetricsRow `json:"rows"`
}

func getRunMetrics(t *testing.T, base, id string) runMetricsBody {
	t.Helper()
	status, body := getBody(t, base+"/runs/"+id+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /runs/%s/metrics: status %d: %s", id, status, body)
	}
	var out runMetricsBody
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpointLiveGauges is the mid-run acceptance check:
// /metrics serves per-run gauges while the run is in flight — here
// paused at a hold, so the expected sim time is exact — and the
// per-run series endpoint already carries sampled rows.
func TestMetricsEndpointLiveGauges(t *testing.T) {
	_, ts := newTestServer(t)

	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", status)
	}
	for _, want := range []string{
		"# TYPE pond_runs_started_total counter",
		"pond_runs_started_total 0",
		"pond_process_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("initial /metrics missing %q:\n%s", want, body)
		}
	}

	resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": metricsOpts(), "hold_at_sec": []float64{150}})
	snap := decodeSnapshot(t, resp)
	waitState(t, ts.URL, snap.ID, StateHolding)

	_, body = getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"pond_runs_started_total 1",
		`pond_run_sim_time_seconds{run="r1"} 150`,
		`pond_run_horizon_seconds{run="r1"} 300`,
		`pond_run_state{run="r1",state="holding"} 1`,
		`pond_run_state{run="r1",state="running"} 0`,
		`pond_run_live_vms{run="r1"}`,
		`pond_run_event_stream_lag{run="r1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("mid-run /metrics missing %q:\n%s", want, body)
		}
	}

	mid := getRunMetrics(t, ts.URL, snap.ID)
	if len(mid.Rows) == 0 {
		t.Fatal("no sampled rows mid-run")
	}
	for _, row := range mid.Rows {
		if row.TSec > 150 {
			t.Fatalf("mid-run row at t=%g is past the hold at 150", row.TSec)
		}
	}

	if resp := postJSON(t, ts.URL+"/runs/"+snap.ID+"/resume", map[string]any{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d", resp.StatusCode)
	}
	final := waitState(t, ts.URL, snap.ID, StateDone)
	if final.MetricsRows != 12 {
		t.Fatalf("snapshot reports %d metrics rows, want 12", final.MetricsRows)
	}
	if final.StateAgeSec < 0 {
		t.Fatalf("negative state age %g", final.StateAgeSec)
	}

	done := getRunMetrics(t, ts.URL, snap.ID)
	if len(done.Rows) != 12 {
		t.Fatalf("final series has %d rows, want 12", len(done.Rows))
	}
	assertFullSeries(t, done.Rows, 2, 50, 300)
}

// assertFullSeries checks rows form the complete per-cell cadence
// series: every cell sampled at every multiple of every up to horizon,
// in drain order (time-ordered within each cell).
func assertFullSeries(t *testing.T, rows []pond.MetricsRow, cells int, every, horizon float64) {
	t.Helper()
	next := make([]float64, cells)
	for i := range next {
		next[i] = every
	}
	for _, row := range rows {
		if row.Cell < 0 || row.Cell >= cells {
			t.Fatalf("row for unknown cell %d", row.Cell)
		}
		if row.TSec != next[row.Cell] {
			t.Fatalf("cell %d sampled at t=%g, want %g (gap or duplicate)", row.Cell, row.TSec, next[row.Cell])
		}
		next[row.Cell] += every
	}
	for c, n := range next {
		if n != horizon+every {
			t.Fatalf("cell %d series ends before the horizon: next expected sample t=%g", c, n)
		}
	}
}

// TestRunMetricsFollowStreamsNDJSON covers the streaming form: follow
// from mid-series and read rows as NDJSON until the run completes.
func TestRunMetricsFollowStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": metricsOpts()})
	snap := decodeSnapshot(t, resp)

	stream, err := http.Get(ts.URL + "/runs/" + snap.ID + "/metrics?follow=1&from=3")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("follow content type %q", ct)
	}
	var got []MetricsRow
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var row MetricsRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("followed %d rows from seq 3, want 9 of 12", len(got))
	}
	for i, row := range got {
		if row.Seq != 3+i {
			t.Fatalf("row %d has seq %d, want %d", i, row.Seq, 3+i)
		}
	}
	waitState(t, ts.URL, snap.ID, StateDone)
}

// TestRunMetricsSeriesSurvivesRestore is the checkpoint acceptance
// check: park a mid-flight sampled run, restore it from the v2
// checkpoint in a fresh server, and the completed series must replay in
// full — drained rows from the checkpoint metrics buffer, undrained
// ones from the simulator snapshot's rings, the rest sampled live.
func TestRunMetricsSeriesSurvivesRestore(t *testing.T) {
	state := filepath.Join(t.TempDir(), "checkpoint.json")
	log := slog.New(slog.NewTextHandler(io.Discard, nil))

	s1, err := New(Config{StatePath: state, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp := postJSON(t, ts1.URL+"/runs", map[string]any{"opts": metricsOpts(), "hold_at_sec": []float64{150}})
	snap := decodeSnapshot(t, resp)
	waitState(t, ts1.URL, snap.ID, StateHolding)
	ts1.Close()
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{StatePath: state, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		if err := s2.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	// The run parked while holding, so it restores holding at t=150 with
	// its pre-park rows already served.
	mid := getRunMetrics(t, ts2.URL, snap.ID)
	if len(mid.Rows) == 0 {
		t.Fatal("restored run lost its pre-park series rows")
	}
	if resp := postJSON(t, ts2.URL+"/runs/"+snap.ID+"/resume", map[string]any{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume after restore: status %d", resp.StatusCode)
	}
	waitState(t, ts2.URL, snap.ID, StateDone)

	done := getRunMetrics(t, ts2.URL, snap.ID)
	if len(done.Rows) != 12 {
		t.Fatalf("replayed series has %d rows, want 12", len(done.Rows))
	}
	assertFullSeries(t, done.Rows, 2, 50, 300)
}

// TestRetentionEvictsOldestTerminal covers the -retain-done policy:
// with a cap of 1, finishing runs evict the oldest-finished terminal
// runs, while runs that are still holding are never touched.
func TestRetentionEvictsOldestTerminal(t *testing.T) {
	s, err := New(Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil)), RetainDone: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	// A holding run must survive any amount of churn around it.
	resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts(), "hold_at_sec": []float64{150}})
	held := decodeSnapshot(t, resp)
	waitState(t, ts.URL, held.ID, StateHolding)

	var doneIDs []string
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/runs", map[string]any{"opts": tinyOpts()})
		snap := decodeSnapshot(t, resp)
		waitState(t, ts.URL, snap.ID, StateDone)
		doneIDs = append(doneIDs, snap.ID)
	}

	// Eviction runs when each later run finishes; wait for it to settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if status, _ := getBody(t, ts.URL+"/runs/"+doneIDs[0]); status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oldest done run %s was never evicted", doneIDs[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status, _ := getBody(t, ts.URL+"/runs/"+held.ID); status != http.StatusOK {
		t.Fatalf("holding run %s was evicted", held.ID)
	}
	if status, _ := getBody(t, ts.URL+"/runs/"+doneIDs[2]); status != http.StatusOK {
		t.Fatalf("newest done run %s should be retained", doneIDs[2])
	}
	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "pond_runs_evicted_total 2") {
		t.Fatalf("/metrics missing eviction count:\n%s", body)
	}
}
