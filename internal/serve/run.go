// Package serve is pondserve's control plane: it owns a registry of
// live fleet runs, drives each one through the public pond.FleetRun API
// on its own goroutine, and exposes start/inspect/inject/stream over
// HTTP. The simulation layer stays process-agnostic — everything the
// daemon does goes through StartFleet/Advance/Inject/DrainEvents, the
// same calls a batch RunFleet makes internally, so a served run's event
// log is byte-identical to the equivalent batch run.
package serve

import (
	"context"
	"fmt"
	"sync"

	"pond"
)

// Run states. A run is born running (or holding, with a 0 hold),
// advances slice by slice, pauses at each requested hold point until
// resumed, and ends done — or failed if the simulation errors. A daemon
// shutdown parks every unfinished run at its current safe point: parked
// is terminal for this process (streams close, injections refuse), and
// the checkpointed config re-runs the simulation after restart.
const (
	StateRunning = "running"
	StateHolding = "holding"
	StateDone    = "done"
	StateFailed  = "failed"
	StateParked  = "parked"
)

// Event is one sequenced event-log line; Seq numbers are contiguous
// per run from 0, so a client that saw seq N resumes with ?from=N+1.
// Cell is -1 for the fleet pipeline's barrier log.
type Event struct {
	Seq  int    `json:"seq"`
	Cell int    `json:"cell"`
	Line string `json:"line"`
}

// Run is one live simulation owned by the daemon. The mutex serializes
// the driver goroutine and the HTTP handlers; every time the driver
// releases it between Advance slices is a safe point where an injection
// may land — which is exactly the determinism contract FleetRun
// provides.
type Run struct {
	ID string

	mu   sync.Mutex
	cond *sync.Cond // broadcast on new events or a state change

	// fr is nil for a terminal (done/failed) run restored from a v2
	// checkpoint: its config, progress, and report are served from the
	// persisted copies instead of a live simulation.
	fr       *pond.FleetRun
	config   pond.FleetOpts     // serving copy when fr is nil
	progress pond.FleetProgress // serving copy when fr is nil
	horizon  float64            // normalized DurationSec — Config() may carry a 0
	state    string
	// parkedFrom remembers the state a park interrupted (running or
	// holding), so the checkpoint can resume the run holding at the same
	// point instead of silently releasing it.
	parkedFrom string
	holds      []float64 // ascending hold times not yet reached
	events     []Event
	report     *SnapshotReport
	err        error
}

func newRun(id string, fr *pond.FleetRun, holds []float64) *Run {
	r := &Run{ID: id, fr: fr, horizon: fr.Progress().DurationSec, state: StateRunning, holds: holds}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// drive advances the run to completion on the caller's goroutine,
// pausing at each hold point until Resume. sliceSec bounds how long the
// run lock is held at a stretch: smaller slices mean injections land
// sooner, at the cost of more lock round-trips.
func (r *Run) drive(ctx context.Context, sliceSec float64) {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if ctx.Err() != nil {
			r.parkLocked()
			return
		}
		for r.state == StateHolding {
			r.cond.Wait()
			if ctx.Err() != nil {
				r.parkLocked()
				return
			}
		}
		target := r.horizon
		holding := false
		if len(r.holds) > 0 && r.holds[0] <= target {
			target, holding = r.holds[0], true
		}
		next := r.fr.Now() + sliceSec
		if next >= target {
			next = target
		}
		if err := r.fr.Advance(ctx, next); err != nil {
			if ctx.Err() != nil {
				r.parkLocked()
			} else {
				r.fail(err)
			}
			return
		}
		r.drainLocked()
		if next == target && holding {
			r.holds = r.holds[1:]
			r.state = StateHolding
			r.cond.Broadcast()
			continue
		}
		if r.fr.Done() {
			rep, err := r.fr.Finish(ctx)
			if err != nil {
				if ctx.Err() != nil {
					r.parkLocked()
				} else {
					r.fail(err)
				}
				return
			}
			r.drainLocked()
			r.report = snapshotReport(rep)
			r.progress = r.fr.Progress()
			r.state = StateDone
			r.cond.Broadcast()
			return
		}
		// Safe point: let a pending inject or snapshot take the lock.
		r.mu.Unlock()
		r.mu.Lock()
	}
}

// drainLocked moves newly produced log lines into the sequenced event
// buffer and wakes streamers. Callers hold r.mu.
func (r *Run) drainLocked() {
	evs := r.fr.DrainEvents()
	if len(evs) == 0 {
		return
	}
	for _, e := range evs {
		r.events = append(r.events, Event{Seq: len(r.events), Cell: e.Cell, Line: e.Line})
	}
	r.cond.Broadcast()
}

func (r *Run) fail(err error) {
	r.err = err
	r.state = StateFailed
	r.cond.Broadcast()
}

// parkLocked moves an unfinished run to the parked terminal state and
// wakes every waiter, so event streams and hold waits end promptly when
// the daemon shuts down. Callers hold r.mu; done/failed runs stay put.
func (r *Run) parkLocked() {
	if r.state == StateDone || r.state == StateFailed {
		return
	}
	if r.state == StateRunning || r.state == StateHolding {
		r.parkedFrom = r.state
	}
	r.state = StateParked
	r.cond.Broadcast()
}

// terminalLocked reports whether the run will never produce another
// event in this process. Callers hold r.mu.
func (r *Run) terminalLocked() bool {
	return r.state == StateDone || r.state == StateFailed || r.state == StateParked
}

// Inject schedules an injection at the next safe point. A completed run
// refuses with ErrCompleted, a parked one with ErrParked; validation
// failures pass through from the fleet layer.
func (r *Run) Inject(in pond.Injection) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateDone || r.state == StateFailed {
		return ErrCompleted
	}
	if r.state == StateParked {
		return ErrParked
	}
	return r.fr.Inject(in)
}

// Resume releases a holding run. It reports whether the run was
// actually holding.
func (r *Run) Resume() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateHolding {
		return false
	}
	r.state = StateRunning
	r.cond.Broadcast()
	return true
}

// ErrCompleted marks an injection refused because the run already
// reached its horizon.
var ErrCompleted = fmt.Errorf("run completed; injections are closed")

// ErrParked marks an injection refused because the daemon parked the
// run for shutdown.
var ErrParked = fmt.Errorf("run parked for shutdown; injections are closed")

// Config returns the run's reproduce-from-scratch batch configuration
// (live injections folded in) at a safe point.
func (r *Run) Config() pond.FleetOpts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.configLocked()
}

func (r *Run) configLocked() pond.FleetOpts {
	if r.fr == nil {
		return r.config
	}
	return r.fr.Config()
}

func (r *Run) progressLocked() pond.FleetProgress {
	if r.fr == nil {
		return r.progress
	}
	return r.fr.Progress()
}

// Snapshot is the inspectable state GET /runs/{id} serves. Report
// fields are populated once the run is done.
type Snapshot struct {
	ID       string             `json:"id"`
	State    string             `json:"state"`
	Error    string             `json:"error,omitempty"`
	Progress pond.FleetProgress `json:"progress"`
	Events   int                `json:"events"`
	HoldsAt  []float64          `json:"holds_at,omitempty"`
	Config   pond.FleetOpts     `json:"config"`
	Report   *SnapshotReport    `json:"report,omitempty"`
}

// SnapshotReport is the served subset of the final report: the summary,
// the determinism witness, and the planner / rollout / model state.
type SnapshotReport struct {
	Summary          string   `json:"summary"`
	LogSHA256        string   `json:"log_sha256"`
	PlanHistory      []string `json:"plan_history,omitempty"`
	RolloutHistory   []string `json:"rollout_history,omitempty"`
	PromotionHistory []string `json:"promotion_history,omitempty"`
	ChampionVer      int      `json:"champion_ver"`
	Retrains         int      `json:"retrains"`
	Promotions       int      `json:"promotions"`
	Rollbacks        int      `json:"rollbacks"`
	DRAMSavedGB      float64  `json:"dram_saved_gb"`
	FinalPoolGB      int      `json:"final_pool_gb"`
}

// Snapshot captures the run's current state at a safe point.
func (r *Run) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		ID:       r.ID,
		State:    r.state,
		Progress: r.progressLocked(),
		Events:   len(r.events),
		HoldsAt:  append([]float64(nil), r.holds...),
		Config:   r.configLocked(),
	}
	if r.err != nil {
		s.Error = r.err.Error()
	}
	if r.report != nil {
		rep := *r.report
		s.Report = &rep
	}
	return s
}

// snapshotReport extracts the served subset from a full report.
func snapshotReport(rep *pond.FleetReport) *SnapshotReport {
	return &SnapshotReport{
		Summary:          rep.Summary,
		LogSHA256:        rep.LogSHA256,
		PlanHistory:      rep.PlanHistory,
		RolloutHistory:   rep.RolloutHistory,
		PromotionHistory: rep.PromotionHistory,
		ChampionVer:      rep.ChampionVer,
		Retrains:         rep.Retrains,
		Promotions:       rep.Promotions,
		Rollbacks:        rep.Rollbacks,
		DRAMSavedGB:      rep.DRAMSavedGB,
		FinalPoolGB:      rep.FinalPoolGB,
	}
}

// EventsFrom returns the buffered events with Seq >= from. If the run
// is still producing and no new events are buffered, it blocks until
// more arrive, the run ends, or ctx is cancelled; it returns nil only
// when no further events will ever arrive (or the wait was cancelled).
func (r *Run) EventsFrom(ctx context.Context, from int) []Event {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if from < len(r.events) {
			return append([]Event(nil), r.events[from:]...)
		}
		if r.terminalLocked() || ctx.Err() != nil {
			return nil
		}
		r.cond.Wait()
	}
}

// waitDone blocks until the run reaches a terminal state or ctx is
// cancelled.
func (r *Run) waitDone(ctx context.Context) {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.terminalLocked() && ctx.Err() == nil {
		r.cond.Wait()
	}
}
