// Package serve is pondserve's control plane: it owns a registry of
// live fleet runs, drives each one through the public pond.FleetRun API
// on its own goroutine, and exposes start/inspect/inject/stream over
// HTTP. The simulation layer stays process-agnostic — everything the
// daemon does goes through StartFleet/Advance/Inject/DrainEvents, the
// same calls a batch RunFleet makes internally, so a served run's event
// log is byte-identical to the equivalent batch run.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pond"
)

// Run states. A run is born running (or holding, with a 0 hold),
// advances slice by slice, pauses at each requested hold point until
// resumed, and ends done — or failed if the simulation errors. A daemon
// shutdown parks every unfinished run at its current safe point: parked
// is terminal for this process (streams close, injections refuse), and
// the checkpointed config re-runs the simulation after restart.
const (
	StateRunning = "running"
	StateHolding = "holding"
	StateDone    = "done"
	StateFailed  = "failed"
	StateParked  = "parked"
)

// Event is one sequenced event-log line; Seq numbers are contiguous
// per run from 0, so a client that saw seq N resumes with ?from=N+1.
// Cell is -1 for the fleet pipeline's barrier log.
type Event struct {
	Seq  int    `json:"seq"`
	Cell int    `json:"cell"`
	Line string `json:"line"`
}

// Run is one live simulation owned by the daemon. The mutex serializes
// the driver goroutine and the HTTP handlers; every time the driver
// releases it between Advance slices is a safe point where an injection
// may land — which is exactly the determinism contract FleetRun
// provides.
type Run struct {
	ID string

	mu   sync.Mutex
	cond *sync.Cond // broadcast on new events or a state change

	// fr is nil for a terminal (done/failed) run restored from a v2
	// checkpoint: its config, progress, and report are served from the
	// persisted copies instead of a live simulation.
	fr       *pond.FleetRun
	config   pond.FleetOpts     // serving copy when fr is nil
	progress pond.FleetProgress // serving copy when fr is nil
	horizon  float64            // normalized DurationSec — Config() may carry a 0
	state    string
	// parkedFrom remembers the state a park interrupted (running or
	// holding), so the checkpoint can resume the run holding at the same
	// point instead of silently releasing it.
	parkedFrom string
	holds      []float64 // ascending hold times not yet reached
	events     []Event
	report     *SnapshotReport
	err        error

	// metrics is the cumulative sim-time series drained from the run
	// (empty unless the run's Engine.MetricsEverySec is set). Rows are
	// observations only — dropping them could never change the event log
	// — but they persist through checkpoints so GET /runs/{id}/metrics
	// replays the full series after a restart.
	metrics []pond.MetricsRow
	// streamed is the highest event seq + 1 any events streamer has been
	// handed; len(events) - streamed is the event-stream lag gauge.
	streamed int
	// stateSince stamps the last state transition; finishedAt is set once
	// the run goes done or failed and orders retention eviction.
	stateSince time.Time
	finishedAt time.Time
}

func newRun(id string, fr *pond.FleetRun, holds []float64) *Run {
	r := &Run{ID: id, fr: fr, horizon: fr.Progress().DurationSec, state: StateRunning, holds: holds, stateSince: time.Now()}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// setStateLocked transitions the run state, stamping the wall-clock
// transition time and, for done/failed, the finish time retention
// eviction orders by. Callers hold r.mu and broadcast themselves.
func (r *Run) setStateLocked(st string) {
	r.state = st
	r.stateSince = time.Now()
	if (st == StateDone || st == StateFailed) && r.finishedAt.IsZero() {
		r.finishedAt = r.stateSince
	}
}

// drive advances the run to completion on the caller's goroutine,
// pausing at each hold point until Resume. sliceSec bounds how long the
// run lock is held at a stretch: smaller slices mean injections land
// sooner, at the cost of more lock round-trips.
func (r *Run) drive(ctx context.Context, sliceSec float64) {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if ctx.Err() != nil {
			r.parkLocked()
			return
		}
		for r.state == StateHolding {
			r.cond.Wait()
			if ctx.Err() != nil {
				r.parkLocked()
				return
			}
		}
		target := r.horizon
		holding := false
		if len(r.holds) > 0 && r.holds[0] <= target {
			target, holding = r.holds[0], true
		}
		next := r.fr.Now() + sliceSec
		if next >= target {
			next = target
		}
		if err := r.fr.Advance(ctx, next); err != nil {
			if ctx.Err() != nil {
				r.parkLocked()
			} else {
				r.fail(err)
			}
			return
		}
		r.drainLocked()
		if next == target && holding {
			r.holds = r.holds[1:]
			r.setStateLocked(StateHolding)
			r.cond.Broadcast()
			continue
		}
		if r.fr.Done() {
			rep, err := r.fr.Finish(ctx)
			if err != nil {
				if ctx.Err() != nil {
					r.parkLocked()
				} else {
					r.fail(err)
				}
				return
			}
			r.drainLocked()
			r.report = snapshotReport(rep)
			r.progress = r.fr.Progress()
			r.setStateLocked(StateDone)
			r.cond.Broadcast()
			return
		}
		// Safe point: let a pending inject or snapshot take the lock.
		r.mu.Unlock()
		r.mu.Lock()
	}
}

// drainLocked moves newly produced log lines into the sequenced event
// buffer and sampled metrics rows into the series buffer, waking
// streamers of both. Callers hold r.mu.
func (r *Run) drainLocked() {
	rows := r.fr.DrainMetrics()
	evs := r.fr.DrainEvents()
	if len(rows) == 0 && len(evs) == 0 {
		return
	}
	r.metrics = append(r.metrics, rows...)
	for _, e := range evs {
		r.events = append(r.events, Event{Seq: len(r.events), Cell: e.Cell, Line: e.Line})
	}
	r.cond.Broadcast()
}

func (r *Run) fail(err error) {
	r.err = err
	r.setStateLocked(StateFailed)
	r.cond.Broadcast()
}

// parkLocked moves an unfinished run to the parked terminal state and
// wakes every waiter, so event streams and hold waits end promptly when
// the daemon shuts down. Callers hold r.mu; done/failed runs stay put.
func (r *Run) parkLocked() {
	if r.state == StateDone || r.state == StateFailed {
		return
	}
	if r.state == StateRunning || r.state == StateHolding {
		r.parkedFrom = r.state
	}
	r.setStateLocked(StateParked)
	r.cond.Broadcast()
}

// terminalLocked reports whether the run will never produce another
// event in this process. Callers hold r.mu.
func (r *Run) terminalLocked() bool {
	return r.state == StateDone || r.state == StateFailed || r.state == StateParked
}

// Inject schedules an injection at the next safe point. A completed run
// refuses with ErrCompleted, a parked one with ErrParked; validation
// failures pass through from the fleet layer.
func (r *Run) Inject(in pond.Injection) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateDone || r.state == StateFailed {
		return ErrCompleted
	}
	if r.state == StateParked {
		return ErrParked
	}
	return r.fr.Inject(in)
}

// Resume releases a holding run. It reports whether the run was
// actually holding.
func (r *Run) Resume() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateHolding {
		return false
	}
	r.setStateLocked(StateRunning)
	r.cond.Broadcast()
	return true
}

// ErrCompleted marks an injection refused because the run already
// reached its horizon.
var ErrCompleted = fmt.Errorf("run completed; injections are closed")

// ErrParked marks an injection refused because the daemon parked the
// run for shutdown.
var ErrParked = fmt.Errorf("run parked for shutdown; injections are closed")

// Config returns the run's reproduce-from-scratch batch configuration
// (live injections folded in) at a safe point.
func (r *Run) Config() pond.FleetOpts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.configLocked()
}

func (r *Run) configLocked() pond.FleetOpts {
	if r.fr == nil {
		return r.config
	}
	return r.fr.Config()
}

func (r *Run) progressLocked() pond.FleetProgress {
	if r.fr == nil {
		return r.progress
	}
	return r.fr.Progress()
}

// Snapshot is the inspectable state GET /runs/{id} serves — and, per
// element, the GET /runs list, so the list carries each run's live
// sim-time progress and state age without a second round trip. Report
// fields are populated once the run is done.
type Snapshot struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// StateAgeSec is the wall-clock seconds since the last state
	// transition — how long the run has been running/holding/terminal.
	StateAgeSec float64            `json:"state_age_sec"`
	Error       string             `json:"error,omitempty"`
	Progress    pond.FleetProgress `json:"progress"`
	Events      int                `json:"events"`
	// MetricsRows counts the buffered sim-time series rows served by
	// GET /runs/{id}/metrics (0 with sampling off).
	MetricsRows int             `json:"metrics_rows,omitempty"`
	HoldsAt     []float64       `json:"holds_at,omitempty"`
	Config      pond.FleetOpts  `json:"config"`
	Report      *SnapshotReport `json:"report,omitempty"`
}

// SnapshotReport is the served subset of the final report: the summary,
// the determinism witness, and the planner / rollout / model state.
type SnapshotReport struct {
	Summary          string   `json:"summary"`
	LogSHA256        string   `json:"log_sha256"`
	PlanHistory      []string `json:"plan_history,omitempty"`
	RolloutHistory   []string `json:"rollout_history,omitempty"`
	PromotionHistory []string `json:"promotion_history,omitempty"`
	ChampionVer      int      `json:"champion_ver"`
	Retrains         int      `json:"retrains"`
	Promotions       int      `json:"promotions"`
	Rollbacks        int      `json:"rollbacks"`
	DRAMSavedGB      float64  `json:"dram_saved_gb"`
	FinalPoolGB      int      `json:"final_pool_gb"`
}

// Snapshot captures the run's current state at a safe point.
func (r *Run) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		ID:          r.ID,
		State:       r.state,
		StateAgeSec: time.Since(r.stateSince).Seconds(),
		Progress:    r.progressLocked(),
		Events:      len(r.events),
		MetricsRows: len(r.metrics),
		HoldsAt:     append([]float64(nil), r.holds...),
		Config:      r.configLocked(),
	}
	if r.err != nil {
		s.Error = r.err.Error()
	}
	if r.report != nil {
		rep := *r.report
		s.Report = &rep
	}
	return s
}

// snapshotReport extracts the served subset from a full report.
func snapshotReport(rep *pond.FleetReport) *SnapshotReport {
	return &SnapshotReport{
		Summary:          rep.Summary,
		LogSHA256:        rep.LogSHA256,
		PlanHistory:      rep.PlanHistory,
		RolloutHistory:   rep.RolloutHistory,
		PromotionHistory: rep.PromotionHistory,
		ChampionVer:      rep.ChampionVer,
		Retrains:         rep.Retrains,
		Promotions:       rep.Promotions,
		Rollbacks:        rep.Rollbacks,
		DRAMSavedGB:      rep.DRAMSavedGB,
		FinalPoolGB:      rep.FinalPoolGB,
	}
}

// EventsFrom returns the buffered events with Seq >= from. If the run
// is still producing and no new events are buffered, it blocks until
// more arrive, the run ends, or ctx is cancelled; it returns nil only
// when no further events will ever arrive (or the wait was cancelled).
func (r *Run) EventsFrom(ctx context.Context, from int) []Event {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if from < len(r.events) {
			if len(r.events) > r.streamed {
				r.streamed = len(r.events)
			}
			return append([]Event(nil), r.events[from:]...)
		}
		if r.terminalLocked() || ctx.Err() != nil {
			return nil
		}
		r.cond.Wait()
	}
}

// MetricsRow is one streamed sim-time series row with its buffer
// position, so ?from=N resumes a dropped metrics stream the same way
// event streams resume.
type MetricsRow struct {
	Seq int `json:"seq"`
	pond.MetricsRow
}

// MetricsFrom returns the buffered sim-time series rows at positions
// >= from, blocking like EventsFrom when the run is still producing.
func (r *Run) MetricsFrom(ctx context.Context, from int) []MetricsRow {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if from < len(r.metrics) {
			out := make([]MetricsRow, 0, len(r.metrics)-from)
			for i := from; i < len(r.metrics); i++ {
				out = append(out, MetricsRow{Seq: i, MetricsRow: r.metrics[i]})
			}
			return out
		}
		if r.terminalLocked() || ctx.Err() != nil {
			return nil
		}
		r.cond.Wait()
	}
}

// Metrics returns a copy of the full buffered sim-time series.
func (r *Run) Metrics() []pond.MetricsRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]pond.MetricsRow(nil), r.metrics...)
}

// gaugeView is the per-run state the /metrics collector scrapes: one
// consistent read under the run lock, cheap enough for a scrape path.
type gaugeView struct {
	id       string
	state    string
	ageSec   float64
	progress pond.FleetProgress
	events   int
	lag      int
	rows     int
}

func (r *Run) gauges() gaugeView {
	r.mu.Lock()
	defer r.mu.Unlock()
	return gaugeView{
		id:       r.ID,
		state:    r.state,
		ageSec:   time.Since(r.stateSince).Seconds(),
		progress: r.progressLocked(),
		events:   len(r.events),
		lag:      len(r.events) - r.streamed,
		rows:     len(r.metrics),
	}
}

// waitDone blocks until the run reaches a terminal state or ctx is
// cancelled.
func (r *Run) waitDone(ctx context.Context) {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.terminalLocked() && ctx.Err() == nil {
		r.cond.Wait()
	}
}
