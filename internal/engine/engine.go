// Package engine is the parallel deterministic simulation runner behind
// the experiment pipelines. Fleet generation and every figure of the
// paper's evaluation decompose into independent shards (one cluster, one
// model fold, one sweep cell); the engine fans those shards out across a
// work-stealing worker pool and merges results in shard order, so the
// output of a run is byte-identical regardless of worker count or OS
// scheduling.
//
// Determinism contract: each job receives its own RNG whose seed is
// derived as fnv1a(rootSeed, jobIndex) (see stats.ShardSeed). Seeding
// depends only on the job's position in the input slice — never on which
// worker runs it or when — and results are returned indexed by that same
// position. A job must not share mutable state with other jobs; anything
// it returns is merged by the caller in deterministic input order.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"pond/internal/stats"
)

// Job is one unit of deterministic work.
type Job struct {
	// Name labels the job in errors.
	Name string
	// Run computes the job's result. The RNG is exclusively the job's
	// own, seeded from the run's root seed and the job's index.
	Run func(rng *stats.Rand) (any, error)
}

// Options configures a run.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Seed is the root seed every job's stream derives from.
	Seed int64
}

// Workers resolves the configured pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SeedFor returns the seed of shard i under root: fnv1a(root, i).
func SeedFor(root int64, shard int) int64 { return stats.ShardSeed(root, shard) }

// Run executes the jobs across the worker pool and returns their results
// in job order. Errors from individual jobs are joined in job order; a
// failed job leaves a nil slot in the result slice. Run stops launching
// new jobs once ctx is cancelled and reports ctx.Err() joined with any
// job errors collected so far.
func Run(ctx context.Context, jobs []Job, opts Options) ([]any, error) {
	n := len(jobs)
	results := make([]any, n)
	if n == 0 {
		return results, ctx.Err()
	}
	errs := make([]error, n)
	workers := opts.workers()
	if workers > n {
		workers = n
	}

	if workers <= 1 {
		// Serial fast path: same seeds, same merge order, no goroutines.
		for i, job := range jobs {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			results[i], errs[i] = job.Run(stats.NewRand(SeedFor(opts.Seed, i)))
			if errs[i] != nil {
				errs[i] = wrapJobErr(job, errs[i])
			}
		}
		return results, errors.Join(errs...)
	}

	// Work-stealing pool: jobs are sharded round-robin across per-worker
	// deques. A worker drains its own deque from the back (LIFO: cache-warm
	// continuation of its shard) and steals from other deques at the front
	// (FIFO: the victim keeps its most recently pushed work). The job set
	// is static, so a pass over every deque finding nothing means the
	// worker is done.
	deques := make([]deque, workers)
	for i := range jobs {
		w := i % workers
		deques[w].jobs = append(deques[w].jobs, i)
	}
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				idx, ok := deques[self].popBack()
				if !ok {
					// Own deque empty: scan the others for work.
					for off := 1; off < workers && !ok; off++ {
						idx, ok = deques[(self+off)%workers].popFront()
					}
					if !ok {
						return
					}
				}
				job := jobs[idx]
				res, err := job.Run(stats.NewRand(SeedFor(opts.Seed, idx)))
				results[idx] = res
				if err != nil {
					errs[idx] = wrapJobErr(job, err)
				}
			}
		}(w)
	}
	wg.Wait()
	joined := errors.Join(errs...)
	if cancelled.Load() {
		return results, errors.Join(ctx.Err(), joined)
	}
	return results, joined
}

// wrapJobErr attaches the job name to its error.
func wrapJobErr(job Job, err error) error {
	if job.Name == "" {
		return err
	}
	return errors.New(job.Name + ": " + err.Error())
}

// deque is a mutex-guarded double-ended work queue of job indexes.
type deque struct {
	mu   sync.Mutex
	jobs []int
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	idx := d.jobs[len(d.jobs)-1]
	d.jobs = d.jobs[:len(d.jobs)-1]
	return idx, true
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	idx := d.jobs[0]
	d.jobs = d.jobs[1:]
	return idx, true
}

// Map fans fn out over items and returns the per-item results in input
// order. It is the typed convenience wrapper the figure pipelines use:
// one item per cluster (or fold, or sweep cell), one deterministic RNG
// per item.
func Map[T, R any](ctx context.Context, items []T, opts Options, fn func(i int, item T, rng *stats.Rand) (R, error)) ([]R, error) {
	jobs := make([]Job, len(items))
	for i := range items {
		i := i
		jobs[i] = Job{Run: func(rng *stats.Rand) (any, error) {
			return fn(i, items[i], rng)
		}}
	}
	raw, err := Run(ctx, jobs, opts)
	out := make([]R, len(items))
	for i, r := range raw {
		if r != nil {
			out[i] = r.(R)
		}
	}
	return out, err
}
