package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pond/internal/stats"
)

// drawJob returns a job whose result is a tuple of draws from its RNG;
// any cross-job stream sharing or seed drift shows up immediately.
func drawJob(name string) Job {
	return Job{Name: name, Run: func(rng *stats.Rand) (any, error) {
		return [3]float64{rng.Float64(), rng.Float64(), rng.NormFloat64()}, nil
	}}
}

func TestSeedForIsOrderIndependent(t *testing.T) {
	// Same (root, shard) must always map to the same seed, distinct
	// shards to distinct seeds.
	seen := map[int64]int{}
	for shard := 0; shard < 1000; shard++ {
		s := SeedFor(42, shard)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: shards %d and %d both map to %d", prev, shard, s)
		}
		seen[s] = shard
	}
	if SeedFor(42, 7) != SeedFor(42, 7) {
		t.Fatal("SeedFor not a pure function")
	}
	if SeedFor(42, 7) == SeedFor(43, 7) {
		t.Fatal("root seed ignored")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	mkJobs := func() []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = drawJob(fmt.Sprintf("job-%d", i))
		}
		return jobs
	}
	ref, err := Run(context.Background(), mkJobs(), Options{Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 33} {
		got, err := Run(context.Background(), mkJobs(), Options{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("results differ between workers=1 and workers=%d", workers)
		}
	}
	// A different root seed must change the streams.
	other, err := Run(context.Background(), mkJobs(), Options{Workers: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ref, other) {
		t.Fatal("root seed had no effect")
	}
}

func TestRunStealsUnevenWork(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Still runs; stealing just cannot be observed via concurrency.
		t.Log("single-proc box: exercising the stealing path without true parallelism")
	}
	// Front-load all the slow work onto worker 0's deque (indexes 0..3
	// with 4 workers land on workers 0..3 round-robin, so instead make
	// every 4th job slow: they all belong to worker 0).
	const n = 32
	var ran atomic.Int64
	jobs := make([]Job, n)
	for i := range jobs {
		slow := i%4 == 0
		jobs[i] = Job{Run: func(rng *stats.Rand) (any, error) {
			if slow {
				time.Sleep(5 * time.Millisecond)
			}
			ran.Add(1)
			return rng.Int63(), nil
		}}
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d of %d jobs", ran.Load(), n)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("job %d has no result", i)
		}
	}
}

func TestRunJoinsErrorsInJobOrder(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		drawJob("ok-0"),
		{Name: "bad-1", Run: func(*stats.Rand) (any, error) { return nil, boom }},
		drawJob("ok-2"),
		{Name: "bad-3", Run: func(*stats.Rand) (any, error) { return nil, boom }},
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 2, Seed: 1})
	if err == nil {
		t.Fatal("errors swallowed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad-1") || !strings.Contains(msg, "bad-3") {
		t.Fatalf("error missing job names: %v", err)
	}
	if strings.Index(msg, "bad-1") > strings.Index(msg, "bad-3") {
		t.Fatalf("errors not in job order: %v", err)
	}
	if res[0] == nil || res[2] == nil {
		t.Fatal("successful jobs lost their results")
	}
	if res[1] != nil || res[3] != nil {
		t.Fatal("failed jobs produced results")
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Run: func(rng *stats.Rand) (any, error) {
			ran.Add(1)
			return nil, nil
		}}
	}
	_, err := Run(ctx, jobs, Options{Workers: 4, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 16 {
		t.Fatal("cancelled run executed every job")
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if res, err := Run(context.Background(), nil, Options{}); err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v %v", res, err)
	}
	res, err := Run(context.Background(), []Job{drawJob("only")}, Options{Workers: 8, Seed: 5})
	if err != nil || len(res) != 1 || res[0] == nil {
		t.Fatalf("single job run: %v %v", res, err)
	}
}

func TestMapTypedResultsInOrder(t *testing.T) {
	items := []int{10, 20, 30, 40}
	got, err := Map(context.Background(), items, Options{Workers: 3, Seed: 9},
		func(i int, item int, rng *stats.Rand) (string, error) {
			return fmt.Sprintf("%d:%d", i, item), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0:10", "1:20", "2:30", "3:40"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
