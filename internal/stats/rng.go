package stats

import "math"

// Rand is a deterministic pseudo-random source with the handful of
// distributions the trace generator and workload models need. Every
// component of the reproduction receives an explicit *Rand so that
// experiments are replayable bit-for-bit from a seed.
//
// The generator is the vendored port of math/rand's lagged-Fibonacci
// source (laggedfib.go), held by value so one Rand is one allocation and
// every draw is a concrete, inlinable call — math/rand's per-draw Source
// interface dispatch was the single largest cost in the fleet hot path's
// PMU sampler. Streams are bit-identical to math/rand seeded with the
// same seed; TestRandMatchesMathRand enforces that.
//
// Seeding is lazy: the source pays ~2000 LCG steps per seed, and a
// fleet run forks a stream per subsystem whether or not the
// configuration ever draws from it (the pool manager's stream in an
// all-local run, for example). Deferring the seeding to the first draw
// makes unused forks free while leaving every drawn stream
// bit-identical — the seeded state is a pure function of the seed,
// whenever it is computed.
type Rand struct {
	seeded bool
	seed   int64
	lf     laggedFib
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{seed: seed}
}

// src returns the generator, seeding it on first use.
func (r *Rand) src() *laggedFib {
	if !r.seeded {
		r.seeded = true
		r.lf.seed(r.seed)
	}
	return &r.lf
}

// The math/rand-compatible methods. Each matches the stdlib
// implementation exactly — including rejection-loop draw counts and
// panic messages — so the streams line up draw for draw.

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return r.src().int63() }

// Uint64 returns a random 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src().uint64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.src().int31n(int32(n)))
	}
	return int(r.src().int63n(int64(n)))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 { return r.src().float64() }

// NormFloat64 returns a standard normal variate.
func (r *Rand) NormFloat64() float64 { return r.src().normFloat64() }

// ExpFloat64 returns a rate-1 exponential variate.
func (r *Rand) ExpFloat64() float64 { return r.src().expFloat64() }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	return r.PermInto(n, make([]int, n))
}

// Shuffle pseudo-randomizes the order of n elements via swap. It panics
// if n < 0.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("invalid argument to Shuffle")
	}
	rng := r.src()
	i := n - 1
	for ; i > 1<<31-1-1; i-- {
		j := int(rng.int63n(int64(i + 1)))
		swap(i, j)
	}
	for ; i > 0; i-- {
		j := int(rng.int31nLemire(int32(i + 1)))
		swap(i, j)
	}
}

// ShardSeed derives an independent seed for one shard of a partitioned
// computation by hashing (root, shard) with FNV-1a. Unlike Fork, it does
// not consume state from any stream, so shards can be seeded in any order
// — or concurrently — and still receive the same streams. The parallel
// experiment engine relies on this for results that are byte-identical
// regardless of worker count.
func ShardSeed(root int64, shard int) int64 {
	return HashWords(uint64(root), uint64(shard))
}

// HashWords folds 64-bit words into one value with FNV-1a, byte by byte.
// It backs ShardSeed and the serving-layer cache keys — any place that
// needs a deterministic, order-sensitive digest of a few numbers.
func HashWords(words ...uint64) int64 {
	d := NewDigest()
	for _, v := range words {
		d = d.Word(v)
	}
	return d.Sum()
}

// Digest is the streaming form of HashWords: fold words one at a time
// without materializing a slice. NewDigest().Word(a).Word(b).Sum() is
// identical to HashWords(a, b) — hot paths (the serving-layer cache
// keys) use it to build keys with zero allocation.
type Digest uint64

// NewDigest returns the FNV-1a offset basis.
func NewDigest() Digest { return 14695981039346656037 }

// Word folds one 64-bit word into the digest, byte by byte.
func (d Digest) Word(v uint64) Digest {
	const prime64 = 1099511628211
	h := uint64(d)
	for b := 0; b < 8; b++ {
		h ^= (v >> (8 * b)) & 0xff
		h *= prime64
	}
	return Digest(h)
}

// Sum returns the folded value.
func (d Digest) Sum() int64 { return int64(d) }

// Fork derives an independent child stream from the parent. The child's
// seed mixes in the label so different subsystems seeded from one parent
// do not share streams.
func (r *Rand) Fork(label int64) *Rand {
	return NewRand(r.ForkSeed(label))
}

// ForkSeed returns the seed Fork would use for label, consuming one draw
// from the parent. Callers that fan work out across goroutines precompute
// fork seeds serially with this — preserving the exact streams of a
// serial Fork loop — and then seed each shard independently.
func (r *Rand) ForkSeed(label int64) int64 {
	const mix = int64(0x5851F42D4C957F2D) // LCG multiplier; spreads small labels
	return r.Int63() ^ (label * mix)
}

// PermInto writes a pseudo-random permutation of [0, n) into dst,
// growing it as needed, and returns the permutation. It consumes exactly
// the same draws as math/rand's Perm (one Intn per element), so callers
// can swap Perm for PermInto to reuse a scratch buffer without changing
// any downstream stream — the hot training loops rely on this.
func (r *Rand) PermInto(n int, dst []int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	m := dst[:n]
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// LogNormal samples exp(N(mu, sigma^2)); VM lifetimes and memory
// footprints in cloud traces are famously heavy-tailed, and lognormal is
// the standard parametric stand-in.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exponential samples an exponential with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Bounded samples uniformly from [lo, hi).
func (r *Rand) Bounded(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Choice returns a random index in [0, len(weights)) with probability
// proportional to weights. It panics if weights is empty or sums to <= 0.
func (r *Rand) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("stats: Choice requires positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Beta samples a Beta(a, b) variate via two gamma draws. Untouched-memory
// fractions are naturally modeled as beta-distributed per customer.
func (r *Rand) Beta(a, b float64) float64 {
	x := r.gamma(a)
	y := r.gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma samples Gamma(shape, 1) using Marsaglia–Tsang for shape >= 1 and
// the boost transform for shape < 1.
func (r *Rand) gamma(shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Pareto samples a bounded Pareto on [lo, hi] with tail index alpha.
func (r *Rand) Pareto(lo, hi, alpha float64) float64 {
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}
