package stats

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the handful of distributions the trace
// generator and workload models need. Every component of the reproduction
// receives an explicit *Rand so that experiments are replayable
// bit-for-bit from a seed.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// ShardSeed derives an independent seed for one shard of a partitioned
// computation by hashing (root, shard) with FNV-1a. Unlike Fork, it does
// not consume state from any stream, so shards can be seeded in any order
// — or concurrently — and still receive the same streams. The parallel
// experiment engine relies on this for results that are byte-identical
// regardless of worker count.
func ShardSeed(root int64, shard int) int64 {
	return HashWords(uint64(root), uint64(shard))
}

// HashWords folds 64-bit words into one value with FNV-1a, byte by byte.
// It backs ShardSeed and the serving-layer cache keys — any place that
// needs a deterministic, order-sensitive digest of a few numbers.
func HashWords(words ...uint64) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range words {
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= prime64
		}
	}
	return int64(h)
}

// Fork derives an independent child stream from the parent. The child's
// seed mixes in the label so different subsystems seeded from one parent
// do not share streams.
func (r *Rand) Fork(label int64) *Rand {
	return NewRand(r.ForkSeed(label))
}

// ForkSeed returns the seed Fork would use for label, consuming one draw
// from the parent. Callers that fan work out across goroutines precompute
// fork seeds serially with this — preserving the exact streams of a
// serial Fork loop — and then seed each shard independently.
func (r *Rand) ForkSeed(label int64) int64 {
	const mix = int64(0x5851F42D4C957F2D) // LCG multiplier; spreads small labels
	return r.Int63() ^ (label * mix)
}

// LogNormal samples exp(N(mu, sigma^2)); VM lifetimes and memory
// footprints in cloud traces are famously heavy-tailed, and lognormal is
// the standard parametric stand-in.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exponential samples an exponential with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Bounded samples uniformly from [lo, hi).
func (r *Rand) Bounded(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Choice returns a random index in [0, len(weights)) with probability
// proportional to weights. It panics if weights is empty or sums to <= 0.
func (r *Rand) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("stats: Choice requires positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Beta samples a Beta(a, b) variate via two gamma draws. Untouched-memory
// fractions are naturally modeled as beta-distributed per customer.
func (r *Rand) Beta(a, b float64) float64 {
	x := r.gamma(a)
	y := r.gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma samples Gamma(shape, 1) using Marsaglia–Tsang for shape >= 1 and
// the boost transform for shape < 1.
func (r *Rand) gamma(shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Pareto samples a bounded Pareto on [lo, hi] with tail index alpha.
func (r *Rand) Pareto(lo, hi, alpha float64) float64 {
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}
