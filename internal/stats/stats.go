// Package stats provides the small statistical toolkit shared by the Pond
// simulator, workload models, and experiment harness: percentiles, CDFs,
// histograms, running moments, and violin-plot summaries.
//
// All functions are deterministic and allocate at most O(n); quantile
// computation uses linear interpolation between order statistics, matching
// the convention of common plotting toolkits so that the reproduced figures
// line up with the paper's.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It does not modify xs.
// Quantile panics if xs is empty or q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for inputs already sorted ascending.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs.
func Percentile(xs []float64, p float64) float64 {
	return Quantile(xs, p/100)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FractionBelow returns the fraction of xs strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAbove returns the fraction of xs strictly above threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary captures the five-number summary plus mean of a sample, the
// shape reported for each violin/box in the paper's figures.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns the zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		Min:    sorted[0],
		P5:     QuantileSorted(sorted, 0.05),
		P25:    QuantileSorted(sorted, 0.25),
		Median: QuantileSorted(sorted, 0.50),
		P75:    QuantileSorted(sorted, 0.75),
		P95:    QuantileSorted(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary as a single table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p5=%.2f p25=%.2f med=%.2f p75=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.Min, s.P5, s.P25, s.Median, s.P75, s.P95, s.Max)
}

// CDFPoint is one (x, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the empirical CDF of xs as sorted points. Duplicate values
// collapse to the highest cumulative fraction, so the result is a proper
// step function with at most len(xs) points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var points []CDFPoint
	n := float64(len(sorted))
	for i, x := range sorted {
		frac := float64(i+1) / n
		if len(points) > 0 && points[len(points)-1].X == x {
			points[len(points)-1].Frac = frac
			continue
		}
		points = append(points, CDFPoint{X: x, Frac: frac})
	}
	return points
}

// Histogram bins xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin. It returns the
// per-bin counts and the bin edges (nbins+1 values).
func Histogram(xs []float64, lo, hi float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 {
		panic("stats: Histogram requires nbins > 0")
	}
	if hi <= lo {
		panic("stats: Histogram requires hi > lo")
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		bin := int((x - lo) / width)
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return counts, counts2edges(counts, edges)
}

// counts2edges exists only to keep the two return values in one expression;
// it returns edges unchanged.
func counts2edges(_ []int, edges []float64) []float64 { return edges }

// Welford accumulates mean and variance in one pass without storing
// samples; the simulator uses it for long event streams.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Pearson returns the linear correlation coefficient of xs and ys, or 0
// when either side is constant. It panics on length mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the rank correlation of xs and ys — Pearson over
// ranks, with ties sharing their average rank. The workload calibration
// uses it to check that slowdown orderings are preserved across latency
// levels.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

// ranks converts values to average ranks (1-based).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
