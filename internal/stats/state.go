package stats

import "fmt"

// RandState is the serializable state of a Rand: the seed plus, for a
// stream that has already been drawn from, the lagged-Fibonacci register
// verbatim. The register is plain data — restoring it reproduces the
// stream draw-for-draw from exactly where the snapshot was taken. An
// unseeded Rand serializes as just its seed (Vec empty), keeping
// snapshots of runs with unused forks small and preserving the lazy
// seeding on restore.
type RandState struct {
	Seeded bool    `json:"seeded"`
	Seed   int64   `json:"seed"`
	Tap    int     `json:"tap,omitempty"`
	Feed   int     `json:"feed,omitempty"`
	Vec    []int64 `json:"vec,omitempty"`
}

// State captures the Rand's current state for serialization.
func (r *Rand) State() RandState {
	s := RandState{Seeded: r.seeded, Seed: r.seed}
	if r.seeded {
		s.Tap = r.lf.tap
		s.Feed = r.lf.feed
		s.Vec = append([]int64(nil), r.lf.vec[:]...)
	}
	return s
}

// SetState restores a state captured by State, replacing the Rand's
// stream position.
func (r *Rand) SetState(s RandState) error {
	if !s.Seeded {
		*r = Rand{seed: s.Seed}
		return nil
	}
	if len(s.Vec) != rngLen {
		return fmt.Errorf("stats: RandState has %d register words, want %d", len(s.Vec), rngLen)
	}
	if s.Tap < 0 || s.Tap >= rngLen || s.Feed < 0 || s.Feed >= rngLen {
		return fmt.Errorf("stats: RandState tap/feed %d/%d out of range [0,%d)", s.Tap, s.Feed, rngLen)
	}
	r.seeded = true
	r.seed = s.Seed
	r.lf.tap = s.Tap
	r.lf.feed = s.Feed
	copy(r.lf.vec[:], s.Vec)
	return nil
}
