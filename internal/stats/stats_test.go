package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestQuantileMedianOdd(t *testing.T) {
	xs := []float64{5, 1, 3}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
}

func TestQuantileMedianEvenInterpolates(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{9, 2, 7, 4}
	if got := Quantile(xs, 0); got != 2 {
		t.Fatalf("q0 = %v, want 2", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1 = %v, want 9", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty input")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on q > 1")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestPercentileMatchesQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(xs, 95) != Quantile(xs, 0.95) {
		t.Fatal("Percentile(95) != Quantile(0.95)")
	}
}

func TestMeanEmptyIsZero(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %v, want 4", got)
	}
}

func TestVarianceConstantIsZero(t *testing.T) {
	if got := Variance([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("variance = %v, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Population variance of {1,2,3,4} is 1.25.
	if got := Variance([]float64{1, 2, 3, 4}); !almostEqual(got, 1.25, 1e-12) {
		t.Fatalf("variance = %v, want 1.25", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Fatalf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Fatalf("Max = %v", Max(xs))
	}
}

func TestFractionBelowAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 3); got != 0.5 {
		t.Fatalf("FractionBelow = %v, want 0.5", got)
	}
	if got := FractionAbove(xs, 3); got != 0.25 {
		t.Fatalf("FractionAbove = %v, want 0.25", got)
	}
}

func TestSummarizeOrdering(t *testing.T) {
	r := NewRand(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	s := Summarize(xs)
	if !(s.Min <= s.P5 && s.P5 <= s.P25 && s.P25 <= s.Median &&
		s.Median <= s.P75 && s.P75 <= s.P95 && s.P95 <= s.Max) {
		t.Fatalf("summary quantiles out of order: %+v", s)
	}
	if s.N != 1000 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary has N=%d", s.N)
	}
}

func TestCDFMonotone(t *testing.T) {
	xs := []float64{4, 1, 4, 2, 9}
	pts := CDF(xs)
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("CDF X not strictly increasing at %d: %+v", i, pts)
		}
		if pts[i].Frac <= pts[i-1].Frac {
			t.Fatalf("CDF Frac not increasing at %d: %+v", i, pts)
		}
	}
	if last := pts[len(pts)-1]; last.Frac != 1 {
		t.Fatalf("CDF does not end at 1: %+v", last)
	}
}

func TestCDFDuplicatesCollapse(t *testing.T) {
	pts := CDF([]float64{1, 1, 1, 2})
	if len(pts) != 2 {
		t.Fatalf("expected 2 CDF points, got %d", len(pts))
	}
	if pts[0].X != 1 || pts[0].Frac != 0.75 {
		t.Fatalf("duplicate collapse wrong: %+v", pts[0])
	}
}

func TestCDFEmpty(t *testing.T) {
	if pts := CDF(nil); pts != nil {
		t.Fatalf("CDF(nil) = %v", pts)
	}
}

func TestHistogramCountsSum(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9, 1.5, -3, 12}
	counts, edges := Histogram(xs, 0, 1, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram lost samples: %d != %d", total, len(xs))
	}
	if len(edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(edges))
	}
	// Out-of-range values clamp to end bins.
	if counts[0] < 1 || counts[3] < 2 {
		t.Fatalf("clamping failed: %v", counts)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRand(7)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = r.Float64()*10 - 5
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Welford var %v != batch %v", w.Variance(), Variance(xs))
	}
	if w.N() != 500 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.25) != 2.5 {
		t.Fatalf("Lerp = %v", Lerp(0, 10, 0.25))
	}
}

// Property: quantiles of any sample lie within [min, max] and are monotone
// in q.
func TestQuantilePropertyMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(a) / 255
		q2 := float64(b) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1 := Quantile(xs, q1)
		v2 := Quantile(xs, q2)
		lo, hi := Min(xs), Max(xs)
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is always monotone in both coordinates.
func TestCDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].Frac < pts[i-1].Frac {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(42)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forked streams look identical: %d/100 equal draws", same)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1, 2); v <= 0 {
			t.Fatalf("LogNormal returned %v", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(4)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.LogNormal(2, 0.5)
	}
	// Median of lognormal is exp(mu).
	med := Quantile(xs, 0.5)
	if !almostEqual(med, math.Exp(2), 0.3) {
		t.Fatalf("lognormal median %v, want ~%v", med, math.Exp(2))
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(5)
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(r.Exponential(3))
	}
	if !almostEqual(w.Mean(), 3, 0.15) {
		t.Fatalf("exponential mean %v, want ~3", w.Mean())
	}
}

func TestBoundedRange(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 1000; i++ {
		v := r.Bounded(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Bounded out of range: %v", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRand(8)
	hits := 0
	for i := 0; i < 20000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / 20000
	if !almostEqual(rate, 0.3, 0.02) {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewRand(9)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	for i := 0; i < 30000; i++ {
		counts[r.Choice(weights)]++
	}
	if frac := float64(counts[2]) / 30000; !almostEqual(frac, 0.7, 0.02) {
		t.Fatalf("Choice heavy weight frac = %v, want ~0.7", frac)
	}
	if frac := float64(counts[0]) / 30000; !almostEqual(frac, 0.1, 0.02) {
		t.Fatalf("Choice light weight frac = %v, want ~0.1", frac)
	}
}

func TestChoicePanicsOnZeroWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Choice([]float64{0, 0})
}

func TestBetaRange(t *testing.T) {
	r := NewRand(10)
	for i := 0; i < 2000; i++ {
		v := r.Beta(2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of [0,1]: %v", v)
		}
	}
}

func TestBetaMean(t *testing.T) {
	r := NewRand(11)
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(r.Beta(2, 2))
	}
	if !almostEqual(w.Mean(), 0.5, 0.02) {
		t.Fatalf("Beta(2,2) mean = %v, want ~0.5", w.Mean())
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRand(12)
	for i := 0; i < 2000; i++ {
		v := r.Pareto(1, 100, 1.2)
		if v < 1-1e-9 || v > 100+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	r := NewRand(13)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Pareto(1, 1000, 1.1)
	}
	sort.Float64s(xs)
	med := QuantileSorted(xs, 0.5)
	p99 := QuantileSorted(xs, 0.99)
	if p99/med < 10 {
		t.Fatalf("Pareto tail too light: med=%v p99=%v", med, p99)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantIsZero(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("constant Pearson = %v", got)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	// y = x^3 is nonlinear but perfectly rank-correlated.
	xs := []float64{-2, -1, 0, 1, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x * x
	}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestSpearmanHandlesTies(t *testing.T) {
	xs := []float64{1, 1, 2, 3}
	ys := []float64{1, 1, 2, 3}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("tied Spearman = %v, want 1", got)
	}
}

func TestRanksAveraging(t *testing.T) {
	got := ranks([]float64{10, 20, 10})
	// Values 10,10 share ranks 1,2 -> 1.5; 20 gets rank 3.
	if got[0] != 1.5 || got[2] != 1.5 || got[1] != 3 {
		t.Fatalf("ranks = %v", got)
	}
}
