package stats

import (
	"math/rand"
	"testing"
)

// TestRandMatchesMathRand pins the vendored generator to math/rand: for
// several seeds, a long interleaved sequence of every distribution and
// helper must produce bit-identical values to the stdlib seeded the same
// way. This is the contract the golden fleet logs depend on.
func TestRandMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40, -1 << 50, 89482311, 1<<63 - 1} {
		ours := NewRand(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			switch i % 8 {
			case 0:
				if g, w := ours.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d step %d: Int63 = %d, want %d", seed, i, g, w)
				}
			case 1:
				if g, w := ours.Uint64(), ref.Uint64(); g != w {
					t.Fatalf("seed %d step %d: Uint64 = %d, want %d", seed, i, g, w)
				}
			case 2:
				n := i%97 + 1
				if g, w := ours.Intn(n), ref.Intn(n); g != w {
					t.Fatalf("seed %d step %d: Intn(%d) = %d, want %d", seed, i, n, g, w)
				}
			case 3:
				if g, w := ours.Float64(), ref.Float64(); g != w {
					t.Fatalf("seed %d step %d: Float64 = %v, want %v", seed, i, g, w)
				}
			case 4:
				if g, w := ours.NormFloat64(), ref.NormFloat64(); g != w {
					t.Fatalf("seed %d step %d: NormFloat64 = %v, want %v", seed, i, g, w)
				}
			case 5:
				if g, w := ours.ExpFloat64(), ref.ExpFloat64(); g != w {
					t.Fatalf("seed %d step %d: ExpFloat64 = %v, want %v", seed, i, g, w)
				}
			case 6:
				n := i%13 + 1
				g, w := ours.Perm(n), ref.Perm(n)
				for k := range g {
					if g[k] != w[k] {
						t.Fatalf("seed %d step %d: Perm(%d) = %v, want %v", seed, i, n, g, w)
					}
				}
			case 7:
				n := i%29 + 1
				g := make([]int, n)
				w := make([]int, n)
				for k := range g {
					g[k], w[k] = k, k
				}
				ours.Shuffle(n, func(a, b int) { g[a], g[b] = g[b], g[a] })
				ref.Shuffle(n, func(a, b int) { w[a], w[b] = w[b], w[a] })
				for k := range g {
					if g[k] != w[k] {
						t.Fatalf("seed %d step %d: Shuffle(%d) = %v, want %v", seed, i, n, g, w)
					}
				}
			}
		}
	}
}

// TestRandIntnBig exercises the Int63n path (n beyond 31 bits) against
// the stdlib.
func TestRandIntnBig(t *testing.T) {
	ours := NewRand(99)
	ref := rand.New(rand.NewSource(99))
	const n = 1<<40 + 12345
	for i := 0; i < 2000; i++ {
		if g, w := ours.Intn(n), ref.Intn(n); g != w {
			t.Fatalf("step %d: Intn(%d) = %d, want %d", i, n, g, w)
		}
	}
}

func TestRandPanicMessages(t *testing.T) {
	defer func() {
		if r := recover(); r != "invalid argument to Intn" {
			t.Fatalf("Intn(0) panic = %v, want stdlib message", r)
		}
	}()
	NewRand(1).Intn(0)
}

func BenchmarkFloat64(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
