package cluster

import (
	"reflect"
	"testing"

	"pond/internal/stats"
)

// TestGenerateByteIdenticalAcrossWorkerCounts is the fleet-level
// determinism contract: the same seed must yield the same traces no
// matter how many workers generate them.
func TestGenerateByteIdenticalAcrossWorkerCounts(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Clusters = 4
	cfg.Days = 8
	cfg.ServersPerCluster = 6
	cfg.Seed = 99

	cfg.Workers = 1
	serial := Generate(cfg)
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		got := Generate(cfg)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("fleet differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestGenerateRenumbersClusterLocalIDs checks that the parallel path
// reproduces the fleet-wide sequential ID space of the original serial
// generator: VM and customer IDs are contiguous across clusters and every
// VM references a customer of its own cluster.
func TestGenerateRenumbersClusterLocalIDs(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Clusters = 3
	cfg.Days = 6
	cfg.ServersPerCluster = 4
	cfg.Seed = 5
	cfg.Workers = 4

	traces := Generate(cfg)
	var nextVM VMID
	var nextCustomer CustomerID
	for ti, tr := range traces {
		for _, c := range tr.Customers {
			nextCustomer++
			if c.ID != nextCustomer {
				t.Fatalf("cluster %d: customer ID %d, want %d", ti, c.ID, nextCustomer)
			}
		}
		loCust := tr.Customers[0].ID
		hiCust := tr.Customers[len(tr.Customers)-1].ID
		for _, vm := range tr.VMs {
			if vm.Customer < loCust || vm.Customer > hiCust {
				t.Fatalf("cluster %d: VM %d owned by customer %d outside [%d, %d]",
					ti, vm.ID, vm.Customer, loCust, hiCust)
			}
		}
		// VM IDs are assigned in generation order, then the trace is
		// sorted by arrival: the set must be exactly the next len(VMs)
		// IDs.
		seen := make(map[VMID]bool, len(tr.VMs))
		for _, vm := range tr.VMs {
			seen[vm.ID] = true
		}
		for k := 0; k < len(tr.VMs); k++ {
			nextVM++
			if !seen[nextVM] {
				t.Fatalf("cluster %d: VM ID %d missing from the renumbered block", ti, nextVM)
			}
		}
	}
}

// TestGenerateClusterInjectedRNG checks the per-cluster entry point: the
// same injected stream gives the same trace, a different stream a
// different one.
func TestGenerateClusterInjectedRNG(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Days = 4
	cfg.ServersPerCluster = 4
	a := GenerateCluster(cfg, 0, stats.NewRand(11))
	b := GenerateCluster(cfg, 0, stats.NewRand(11))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same injected RNG produced different traces")
	}
	c := GenerateCluster(cfg, 0, stats.NewRand(12))
	if reflect.DeepEqual(a.VMs, c.VMs) {
		t.Fatal("different injected RNG produced identical traces")
	}
	if len(a.VMs) == 0 || a.VMs[0].ID == 0 {
		t.Fatal("cluster-local VM IDs should count from 1")
	}
}
