package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"pond/internal/workload"
)

// Trace serialization: traces can be generated once (expensive at paper
// scale) and replayed by multiple experiments or shared between machines.
// Workloads are serialized by catalogue name and rehydrated on load, so a
// trace file stays small and version-independent of model parameters.

// jsonVM is the wire form of a VMRequest.
type jsonVM struct {
	ID           VMID       `json:"id"`
	Customer     CustomerID `json:"customer"`
	Type         VMType     `json:"type"`
	OS           string     `json:"os"`
	Region       string     `json:"region"`
	WorkloadName string     `json:"workload_name,omitempty"`
	ArrivalSec   float64    `json:"arrival_sec"`
	LifetimeSec  float64    `json:"lifetime_sec"`
	Untouched    float64    `json:"untouched_frac"`
	Workload     string     `json:"workload"`
}

// jsonCustomer is the wire form of a Customer.
type jsonCustomer struct {
	ID            CustomerID `json:"id"`
	OS            string     `json:"os"`
	Region        string     `json:"region"`
	MeanUntouched float64    `json:"mean_untouched"`
	Spread        float64    `json:"spread"`
	Workloads     []string   `json:"workloads"`
	TypeWeights   []float64  `json:"type_weights"`
	FirstParty    bool       `json:"first_party"`
}

// jsonTrace is the wire form of a Trace.
type jsonTrace struct {
	Name      string         `json:"name"`
	Spec      ServerSpec     `json:"spec"`
	Servers   int            `json:"servers"`
	Days      int            `json:"days"`
	ShockDay  int            `json:"shock_day,omitempty"`
	Customers []jsonCustomer `json:"customers"`
	VMs       []jsonVM       `json:"vms"`
}

// WriteJSON encodes traces to w.
func WriteJSON(w io.Writer, traces []Trace) error {
	out := make([]jsonTrace, 0, len(traces))
	for _, tr := range traces {
		jt := jsonTrace{
			Name: tr.Name, Spec: tr.Spec, Servers: tr.Servers,
			Days: tr.Days, ShockDay: tr.ShockDay,
		}
		for _, c := range tr.Customers {
			jc := jsonCustomer{
				ID: c.ID, OS: c.OS, Region: c.Region,
				MeanUntouched: c.MeanUntouched, Spread: c.Spread,
				TypeWeights: c.TypeWeights, FirstParty: c.FirstParty,
			}
			for _, cw := range c.Workloads {
				jc.Workloads = append(jc.Workloads, cw.Name)
			}
			jt.Customers = append(jt.Customers, jc)
		}
		for _, vm := range tr.VMs {
			jt.VMs = append(jt.VMs, jsonVM{
				ID: vm.ID, Customer: vm.Customer, Type: vm.Type,
				OS: vm.OS, Region: vm.Region, WorkloadName: vm.WorkloadName,
				ArrivalSec: vm.ArrivalSec, LifetimeSec: vm.LifetimeSec,
				Untouched: vm.GroundTruth.UntouchedFrac,
				Workload:  vm.GroundTruth.Workload.Name,
			})
		}
		out = append(out, jt)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON decodes traces from r, rehydrating workloads from the
// catalogue. Unknown workload names are an error: the trace belongs to a
// different catalogue version.
func ReadJSON(r io.Reader) ([]Trace, error) {
	var in []jsonTrace
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("cluster: decoding traces: %w", err)
	}
	lookup := func(name string) (workload.Workload, error) {
		w, ok := workload.ByName(name)
		if !ok {
			return workload.Workload{}, fmt.Errorf("cluster: trace references unknown workload %q", name)
		}
		return w, nil
	}
	traces := make([]Trace, 0, len(in))
	for _, jt := range in {
		tr := Trace{
			Name: jt.Name, Spec: jt.Spec, Servers: jt.Servers,
			Days: jt.Days, ShockDay: jt.ShockDay,
		}
		for _, jc := range jt.Customers {
			c := Customer{
				ID: jc.ID, OS: jc.OS, Region: jc.Region,
				MeanUntouched: jc.MeanUntouched, Spread: jc.Spread,
				TypeWeights: jc.TypeWeights, FirstParty: jc.FirstParty,
			}
			for _, name := range jc.Workloads {
				w, err := lookup(name)
				if err != nil {
					return nil, err
				}
				c.Workloads = append(c.Workloads, w)
			}
			tr.Customers = append(tr.Customers, c)
		}
		for _, jv := range jt.VMs {
			w, err := lookup(jv.Workload)
			if err != nil {
				return nil, err
			}
			tr.VMs = append(tr.VMs, VMRequest{
				ID: jv.ID, Customer: jv.Customer, Type: jv.Type,
				OS: jv.OS, Region: jv.Region, WorkloadName: jv.WorkloadName,
				ArrivalSec: jv.ArrivalSec, LifetimeSec: jv.LifetimeSec,
				GroundTruth: VMGroundTruth{
					UntouchedFrac: jv.Untouched,
					Workload:      w,
				},
			})
		}
		traces = append(traces, tr)
	}
	return traces, nil
}
