// Package cluster generates synthetic VM traces that substitute for the
// Azure production dataset of §3.1: 100 clusters observed over 75 days
// with millions of per-VM arrival/departure events carrying time,
// duration, resource demands, and metadata.
//
// The generator is statistical, not a replay: per-cluster parameters (VM
// shape mix, target utilization, customer population) are drawn from
// distributions calibrated so the downstream simulator reproduces the
// paper's stranding, untouched-memory, and pooling-savings figures. Every
// quantity that Pond's prediction models consume — customer identity, VM
// type, guest OS, region, workload name, and per-VM ground-truth untouched
// memory — is generated with the correlations the paper exploits: VMs from
// the same customer behave alike (§4.4, citing Resource Central).
package cluster

import (
	"fmt"

	"pond/internal/workload"
)

// VMID uniquely identifies a VM request across all generated clusters.
type VMID int64

// CustomerID identifies the customer owning a VM; history features key on
// it.
type CustomerID int32

// VMType is a rentable VM shape (cores x memory), mirroring Azure's
// D/E/F-series families with 4, 8, and 2 GB of DRAM per core.
type VMType struct {
	Name     string
	Cores    int
	MemoryGB float64
}

// GBPerCore returns the DRAM-to-core ratio of the shape.
func (t VMType) GBPerCore() float64 { return t.MemoryGB / float64(t.Cores) }

// String renders the shape as "name (c cores, g GB)".
func (t VMType) String() string {
	return fmt.Sprintf("%s (%d cores, %g GB)", t.Name, t.Cores, t.MemoryGB)
}

// VMTypes is the shape catalogue VMs are drawn from. The largest shape
// (16 cores) still fits a single NUMA node of the default server, matching
// the paper's observation that almost all VMs fit one socket.
func VMTypes() []VMType {
	return []VMType{
		{"F2s", 2, 4}, {"F4s", 4, 8}, {"F8s", 8, 16},
		{"D2s", 2, 8}, {"D4s", 4, 16}, {"D8s", 8, 32}, {"D16s", 16, 64},
		{"E2s", 2, 16}, {"E4s", 4, 32}, {"E8s", 8, 64}, {"E16s", 16, 128},
	}
}

// Customer is a tenant with persistent behaviour: a preferred VM shape
// mix, a stable guest OS and region, a small set of workloads, and a
// characteristic untouched-memory level. The untouched-memory prediction
// model works precisely because these are stable across a customer's VMs.
type Customer struct {
	ID     CustomerID
	OS     string
	Region string

	// MeanUntouched is the customer's characteristic fraction of rented
	// memory that is never touched; per-VM draws concentrate around it.
	MeanUntouched float64

	// Spread controls per-VM variation around MeanUntouched (a Beta
	// concentration parameter; higher is tighter).
	Spread float64

	// Workloads are the catalogue entries this customer runs.
	Workloads []workload.Workload

	// TypeWeights is the customer's preference over VMTypes().
	TypeWeights []float64

	// FirstParty customers expose their workload name to the platform
	// (the paper's internal/first-party VMs); third-party VMs are
	// opaque.
	FirstParty bool
}

// VMRequest is one VM arrival with its full metadata and the generator's
// behavioural ground truth. Prediction models must not read the
// GroundTruth fields directly; they only see metadata and telemetry.
type VMRequest struct {
	ID       VMID
	Customer CustomerID
	Type     VMType
	OS       string
	Region   string

	// WorkloadName is set only for first-party VMs ("" for opaque ones).
	WorkloadName string

	// ArrivalSec and LifetimeSec position the VM in simulated time
	// (seconds since trace start).
	ArrivalSec  float64
	LifetimeSec float64

	// GroundTruth holds what really happens inside the opaque VM.
	GroundTruth VMGroundTruth
}

// VMGroundTruth is the generator's hidden per-VM behaviour, observable to
// the platform only through telemetry (access-bit scans, PMU counters).
type VMGroundTruth struct {
	// UntouchedFrac is the fraction of rented memory never touched over
	// the VM's lifetime (§3.2: the fleet median is ~50%).
	UntouchedFrac float64

	// Workload is the application running inside the VM; it defines
	// latency sensitivity and PMU counter behaviour.
	Workload workload.Workload
}

// DepartureSec returns the VM's departure time.
func (v VMRequest) DepartureSec() float64 { return v.ArrivalSec + v.LifetimeSec }

// TouchedGB returns how much of the VM's memory is actually touched.
func (v VMRequest) TouchedGB() float64 {
	return v.Type.MemoryGB * (1 - v.GroundTruth.UntouchedFrac)
}

// ServerSpec describes the homogeneous servers of a cluster.
type ServerSpec struct {
	Sockets      int
	CoresPerSock int
	MemGBPerSock float64
}

// TotalCores returns cores per server.
func (s ServerSpec) TotalCores() int { return s.Sockets * s.CoresPerSock }

// TotalMemGB returns DRAM per server.
func (s ServerSpec) TotalMemGB() float64 { return float64(s.Sockets) * s.MemGBPerSock }

// GBPerCore returns the server's DRAM-to-core ratio.
func (s ServerSpec) GBPerCore() float64 { return s.TotalMemGB() / float64(s.TotalCores()) }

// Trace is the generated history of one cluster.
type Trace struct {
	Name      string
	Spec      ServerSpec
	Servers   int
	Days      int
	Customers []Customer

	// VMs is sorted by ArrivalSec.
	VMs []VMRequest

	// ShockDay is the day index at which the cluster's workload mix
	// changed abruptly (Figure 2b); 0 when no shock was injected.
	ShockDay int
}

// TotalClusterCores returns the cluster's core capacity.
func (t Trace) TotalClusterCores() int { return t.Servers * t.Spec.TotalCores() }

// TotalClusterMemGB returns the cluster's DRAM capacity.
func (t Trace) TotalClusterMemGB() float64 { return float64(t.Servers) * t.Spec.TotalMemGB() }

// CustomerByID returns the customer record for id.
func (t Trace) CustomerByID(id CustomerID) (Customer, bool) {
	for _, c := range t.Customers {
		if c.ID == id {
			return c, true
		}
	}
	return Customer{}, false
}
