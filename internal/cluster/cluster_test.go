package cluster

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"pond/internal/stats"
)

// smallConfig keeps unit tests fast while preserving distributions.
func smallConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Clusters = 6
	cfg.Days = 20
	cfg.ServersPerCluster = 8
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("trace counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].VMs) != len(b[i].VMs) {
			t.Fatalf("cluster %d VM counts differ", i)
		}
		for j := range a[i].VMs {
			if a[i].VMs[j] != b[i].VMs[j] {
				t.Fatalf("cluster %d VM %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	cfg := smallConfig()
	a := Generate(cfg)
	cfg.Seed = 99
	b := Generate(cfg)
	if len(a[0].VMs) == len(b[0].VMs) && len(a[0].VMs) > 0 && a[0].VMs[0] == b[0].VMs[0] {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceShape(t *testing.T) {
	cfg := smallConfig()
	traces := Generate(cfg)
	if len(traces) != cfg.Clusters {
		t.Fatalf("got %d traces, want %d", len(traces), cfg.Clusters)
	}
	for _, tr := range traces {
		if len(tr.VMs) == 0 {
			t.Fatalf("%s: empty trace", tr.Name)
		}
		if len(tr.Customers) != cfg.CustomersPerCluster {
			t.Fatalf("%s: %d customers, want %d", tr.Name, len(tr.Customers), cfg.CustomersPerCluster)
		}
		if tr.Days != cfg.Days || tr.Servers != cfg.ServersPerCluster {
			t.Fatalf("%s: config not propagated", tr.Name)
		}
	}
}

func TestVMsSortedByArrival(t *testing.T) {
	for _, tr := range Generate(smallConfig()) {
		if !sort.SliceIsSorted(tr.VMs, func(i, j int) bool {
			return tr.VMs[i].ArrivalSec < tr.VMs[j].ArrivalSec
		}) {
			t.Fatalf("%s: VMs not sorted by arrival", tr.Name)
		}
	}
}

func TestVMIDsGloballyUnique(t *testing.T) {
	seen := map[VMID]bool{}
	for _, tr := range Generate(smallConfig()) {
		for _, vm := range tr.VMs {
			if seen[vm.ID] {
				t.Fatalf("duplicate VM id %d", vm.ID)
			}
			seen[vm.ID] = true
		}
	}
}

func TestVMsWithinHorizon(t *testing.T) {
	cfg := smallConfig()
	horizon := float64(cfg.Days) * 86400
	for _, tr := range Generate(cfg) {
		for _, vm := range tr.VMs {
			if vm.ArrivalSec < 0 || vm.ArrivalSec >= horizon {
				t.Fatalf("VM %d arrives at %v outside [0, %v)", vm.ID, vm.ArrivalSec, horizon)
			}
			if vm.LifetimeSec < 120 {
				t.Fatalf("VM %d lifetime %v below floor", vm.ID, vm.LifetimeSec)
			}
		}
	}
}

func TestVMMetadataMatchesCustomer(t *testing.T) {
	for _, tr := range Generate(smallConfig()) {
		for _, vm := range tr.VMs {
			c, ok := tr.CustomerByID(vm.Customer)
			if !ok {
				t.Fatalf("VM %d has unknown customer %d", vm.ID, vm.Customer)
			}
			if vm.OS != c.OS || vm.Region != c.Region {
				t.Fatalf("VM %d metadata differs from customer", vm.ID)
			}
			if c.FirstParty && vm.WorkloadName == "" {
				t.Fatalf("first-party VM %d lacks workload name", vm.ID)
			}
			if !c.FirstParty && vm.WorkloadName != "" {
				t.Fatalf("opaque VM %d leaks workload name", vm.ID)
			}
		}
	}
}

func TestUntouchedFractionMedianNearHalf(t *testing.T) {
	// §3.2: about 50% of VMs touch less than 50% of their memory.
	var untouched []float64
	for _, tr := range Generate(DefaultGenConfig()) {
		for _, vm := range tr.VMs {
			untouched = append(untouched, vm.GroundTruth.UntouchedFrac)
		}
	}
	med := stats.Quantile(untouched, 0.5)
	if math.Abs(med-0.5) > 0.08 {
		t.Fatalf("fleet median untouched = %v, want ~0.5 (§3.2)", med)
	}
}

func TestEveryClusterHasUntouchedMemory(t *testing.T) {
	// §3.2: even the least-untouched cluster has >50% of VMs with more
	// than 20% untouched memory.
	for _, tr := range Generate(DefaultGenConfig()) {
		n, over20 := 0, 0
		for _, vm := range tr.VMs {
			n++
			if vm.GroundTruth.UntouchedFrac > 0.20 {
				over20++
			}
		}
		if frac := float64(over20) / float64(n); frac < 0.5 {
			t.Fatalf("%s: only %.2f of VMs have >20%% untouched, want > 0.5", tr.Name, frac)
		}
	}
}

func TestCustomerUntouchedIsPredictive(t *testing.T) {
	// VMs of the same customer must cluster around the customer mean;
	// that correlation is what the GBM model learns.
	traces := Generate(smallConfig())
	var withinVar, globalVar stats.Welford
	perCustomer := map[CustomerID][]float64{}
	var all []float64
	for _, tr := range traces {
		for _, vm := range tr.VMs {
			perCustomer[vm.Customer] = append(perCustomer[vm.Customer], vm.GroundTruth.UntouchedFrac)
			all = append(all, vm.GroundTruth.UntouchedFrac)
		}
	}
	for _, xs := range perCustomer {
		if len(xs) < 5 {
			continue
		}
		m := stats.Mean(xs)
		for _, x := range xs {
			withinVar.Add((x - m) * (x - m))
		}
	}
	gm := stats.Mean(all)
	for _, x := range all {
		globalVar.Add((x - gm) * (x - gm))
	}
	if withinVar.Mean() >= globalVar.Mean()/2 {
		t.Fatalf("within-customer variance %v not much below global %v; history would not predict",
			withinVar.Mean(), globalVar.Mean())
	}
}

func TestLifetimesHeavyTailed(t *testing.T) {
	var lives []float64
	for _, tr := range Generate(smallConfig()) {
		for _, vm := range tr.VMs {
			lives = append(lives, vm.LifetimeSec)
		}
	}
	med := stats.Quantile(lives, 0.5)
	p99 := stats.Quantile(lives, 0.99)
	if p99/med < 5 {
		t.Fatalf("lifetime tail too light: median %v, p99 %v", med, p99)
	}
}

func TestShockFractionRespected(t *testing.T) {
	cfg := DefaultGenConfig()
	traces := Generate(cfg)
	shocked := 0
	for _, tr := range traces {
		if tr.ShockDay > 0 {
			shocked++
			lo, hi := int(0.40*float64(cfg.Days)), int(0.56*float64(cfg.Days))
			if tr.ShockDay < lo || tr.ShockDay > hi {
				t.Fatalf("%s: shock day %d outside [%d,%d]", tr.Name, tr.ShockDay, lo, hi)
			}
		}
	}
	frac := float64(shocked) / float64(len(traces))
	if math.Abs(frac-cfg.ShockFraction) > 0.25 {
		t.Fatalf("shocked fraction %v, want ~%v", frac, cfg.ShockFraction)
	}
	if shocked == 0 {
		t.Fatal("no shocked clusters; Figure 2b needs at least one")
	}
}

func TestShockChangesMix(t *testing.T) {
	// After the shock day, the arriving mix leans core-heavy: mean
	// GB/core of arrivals should drop.
	cfg := DefaultGenConfig()
	for _, tr := range Generate(cfg) {
		if tr.ShockDay == 0 {
			continue
		}
		var before, after stats.Welford
		cut := float64(tr.ShockDay) * 86400
		for _, vm := range tr.VMs {
			if vm.ArrivalSec < cut {
				before.Add(vm.Type.GBPerCore())
			} else {
				after.Add(vm.Type.GBPerCore())
			}
		}
		if before.N() < 100 || after.N() < 100 {
			continue
		}
		if after.Mean() >= before.Mean() {
			t.Fatalf("%s: GB/core after shock (%v) not below before (%v)",
				tr.Name, after.Mean(), before.Mean())
		}
		return // one verified cluster suffices
	}
	t.Skip("no shocked cluster with enough samples")
}

func TestConcurrencyNearTarget(t *testing.T) {
	// Check Little's-law sizing: peak concurrent core demand should be
	// in the right ballpark relative to capacity (between 40% and 130%;
	// the scheduler will cap at 100%).
	for _, tr := range Generate(smallConfig()) {
		type ev struct {
			t     float64
			cores int
		}
		var evs []ev
		for _, vm := range tr.VMs {
			evs = append(evs, ev{vm.ArrivalSec, vm.Type.Cores})
			evs = append(evs, ev{vm.DepartureSec(), -vm.Type.Cores})
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
		cur, peak := 0, 0
		for _, e := range evs {
			cur += e.cores
			if cur > peak {
				peak = cur
			}
		}
		ratio := float64(peak) / float64(tr.TotalClusterCores())
		if ratio < 0.4 || ratio > 1.9 {
			t.Fatalf("%s: peak demand ratio %v outside [0.4, 1.9]", tr.Name, ratio)
		}
	}
}

func TestVMTypesFitOneNUMANode(t *testing.T) {
	spec := DefaultGenConfig().Spec
	for _, vt := range VMTypes() {
		if vt.Cores > spec.CoresPerSock {
			t.Errorf("%s: %d cores exceed one socket (%d)", vt.Name, vt.Cores, spec.CoresPerSock)
		}
		if vt.MemoryGB > spec.MemGBPerSock {
			t.Errorf("%s: %g GB exceeds one socket (%g)", vt.Name, vt.MemoryGB, spec.MemGBPerSock)
		}
	}
}

func TestServerSpecAccessors(t *testing.T) {
	s := ServerSpec{Sockets: 2, CoresPerSock: 24, MemGBPerSock: 192}
	if s.TotalCores() != 48 || s.TotalMemGB() != 384 || s.GBPerCore() != 8 {
		t.Fatalf("spec accessors wrong: %d %g %g", s.TotalCores(), s.TotalMemGB(), s.GBPerCore())
	}
}

func TestVMTypeAccessors(t *testing.T) {
	vt := VMType{"D4s", 4, 16}
	if vt.GBPerCore() != 4 {
		t.Fatalf("GBPerCore = %v", vt.GBPerCore())
	}
	if vt.String() != "D4s (4 cores, 16 GB)" {
		t.Fatalf("String = %q", vt.String())
	}
}

func TestTouchedGB(t *testing.T) {
	vm := VMRequest{
		Type:        VMType{"D4s", 4, 16},
		GroundTruth: VMGroundTruth{UntouchedFrac: 0.25},
	}
	if vm.TouchedGB() != 12 {
		t.Fatalf("TouchedGB = %v, want 12", vm.TouchedGB())
	}
}

func TestCustomerByIDMissing(t *testing.T) {
	tr := Trace{}
	if _, ok := tr.CustomerByID(42); ok {
		t.Fatal("found customer in empty trace")
	}
}

func TestFirstPartyFractionRoughlyRespected(t *testing.T) {
	cfg := DefaultGenConfig()
	traces := Generate(cfg)
	n, fp := 0, 0
	for _, tr := range traces {
		for _, c := range tr.Customers {
			n++
			if c.FirstParty {
				fp++
			}
		}
	}
	frac := float64(fp) / float64(n)
	if math.Abs(frac-cfg.FirstPartyFraction) > 0.1 {
		t.Fatalf("first-party fraction %v, want ~%v", frac, cfg.FirstPartyFraction)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Clusters = 2
	cfg.Days = 5
	traces := Generate(cfg)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, traces); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(traces) {
		t.Fatalf("traces = %d, want %d", len(got), len(traces))
	}
	for i := range traces {
		a, b := traces[i], got[i]
		if a.Name != b.Name || a.Servers != b.Servers || a.Days != b.Days || a.ShockDay != b.ShockDay {
			t.Fatalf("trace header differs: %+v vs %+v", a.Name, b.Name)
		}
		if len(a.VMs) != len(b.VMs) {
			t.Fatalf("VM counts differ: %d vs %d", len(a.VMs), len(b.VMs))
		}
		for j := range a.VMs {
			if a.VMs[j] != b.VMs[j] {
				t.Fatalf("VM %d differs after round trip:\n%+v\n%+v", j, a.VMs[j], b.VMs[j])
			}
		}
		if len(a.Customers) != len(b.Customers) {
			t.Fatal("customer counts differ")
		}
		for j := range a.Customers {
			ca, cb := a.Customers[j], b.Customers[j]
			if ca.ID != cb.ID || ca.MeanUntouched != cb.MeanUntouched || len(ca.Workloads) != len(cb.Workloads) {
				t.Fatalf("customer %d differs", j)
			}
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadJSONRejectsUnknownWorkload(t *testing.T) {
	payload := `[{"name":"c","spec":{"Sockets":2,"CoresPerSock":24,"MemGBPerSock":192},` +
		`"servers":1,"days":1,"customers":[],` +
		`"vms":[{"id":1,"customer":1,"type":{"Name":"D2s","Cores":2,"MemoryGB":8},` +
		`"arrival_sec":0,"lifetime_sec":100,"untouched_frac":0.5,"workload":"no-such"}]}]`
	if _, err := ReadJSON(strings.NewReader(payload)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAnalyzeSummary(t *testing.T) {
	cfg := smallConfig()
	tr := Generate(cfg)[0]
	a := Analyze(&tr)
	if a.VMs != len(tr.VMs) {
		t.Fatalf("VMs = %d", a.VMs)
	}
	if a.MixGBPerCore < 2 || a.MixGBPerCore > 8.5 {
		t.Fatalf("mix ratio = %v implausible", a.MixGBPerCore)
	}
	if a.LifetimeP95H < a.LifetimeP50H {
		t.Fatal("lifetime percentiles out of order")
	}
	if a.UntouchedP50 < 0.2 || a.UntouchedP50 > 0.8 {
		t.Fatalf("untouched p50 = %v", a.UntouchedP50)
	}
	if a.CoreDemandPeakFrac <= 0 {
		t.Fatal("no core demand")
	}
	total := 0
	for _, n := range a.ShapeCounts {
		total += n
	}
	if total != a.VMs {
		t.Fatalf("shape counts sum to %d, want %d", total, a.VMs)
	}
	if a.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	tr := Trace{Name: "empty"}
	a := Analyze(&tr)
	if a.VMs != 0 {
		t.Fatal("phantom VMs")
	}
}
