package cluster

import (
	"fmt"
	"sort"
	"strings"

	"pond/internal/stats"
)

// Analysis summarizes a trace's statistical properties — the quantities
// §3 of the paper characterizes for the production fleet. The trace
// tools print it, and calibration tests assert on it.
type Analysis struct {
	Name string
	VMs  int

	// MixGBPerCore is the core-weighted DRAM:core ratio of arrivals.
	MixGBPerCore float64

	// Lifetime percentiles in hours.
	LifetimeP50H, LifetimeP95H float64

	// Untouched-memory distribution (§3.2).
	UntouchedP50, UntouchedMean float64
	FracOver20PctUntouched      float64

	// CoreDemandPeakFrac is peak concurrent core demand over capacity.
	CoreDemandPeakFrac float64

	// ShapeCounts is the arrival count per VM type name.
	ShapeCounts map[string]int
}

// Analyze computes the summary for one trace.
func Analyze(tr *Trace) Analysis {
	a := Analysis{Name: tr.Name, VMs: len(tr.VMs), ShapeCounts: map[string]int{}}
	if len(tr.VMs) == 0 {
		return a
	}
	var cores, mem float64
	var lifetimes, untouched []float64
	over20 := 0
	type ev struct {
		t float64
		c int
	}
	events := make([]ev, 0, 2*len(tr.VMs))
	for _, vm := range tr.VMs {
		cores += float64(vm.Type.Cores)
		mem += vm.Type.MemoryGB
		lifetimes = append(lifetimes, vm.LifetimeSec/3600)
		untouched = append(untouched, vm.GroundTruth.UntouchedFrac)
		if vm.GroundTruth.UntouchedFrac > 0.20 {
			over20++
		}
		a.ShapeCounts[vm.Type.Name]++
		events = append(events, ev{vm.ArrivalSec, vm.Type.Cores}, ev{vm.DepartureSec(), -vm.Type.Cores})
	}
	a.MixGBPerCore = mem / cores
	a.LifetimeP50H = stats.Quantile(lifetimes, 0.5)
	a.LifetimeP95H = stats.Quantile(lifetimes, 0.95)
	a.UntouchedP50 = stats.Quantile(untouched, 0.5)
	a.UntouchedMean = stats.Mean(untouched)
	a.FracOver20PctUntouched = float64(over20) / float64(len(tr.VMs))

	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.c
		if cur > peak {
			peak = cur
		}
	}
	a.CoreDemandPeakFrac = float64(peak) / float64(tr.TotalClusterCores())
	return a
}

// String renders the analysis as a compact block.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d VMs, mix %.2f GB/core, lifetime p50 %.1fh p95 %.1fh\n",
		a.Name, a.VMs, a.MixGBPerCore, a.LifetimeP50H, a.LifetimeP95H)
	fmt.Fprintf(&b, "  untouched: p50 %.0f%%, mean %.0f%%, >20%%: %.0f%% of VMs\n",
		100*a.UntouchedP50, 100*a.UntouchedMean, 100*a.FracOver20PctUntouched)
	fmt.Fprintf(&b, "  peak core demand: %.0f%% of capacity\n", 100*a.CoreDemandPeakFrac)
	names := make([]string, 0, len(a.ShapeCounts))
	for n := range a.ShapeCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("  shapes:")
	for _, n := range names {
		fmt.Fprintf(&b, " %s:%d", n, a.ShapeCounts[n])
	}
	return b.String()
}
