package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pond/internal/engine"
	"pond/internal/stats"
	"pond/internal/workload"
)

// GenConfig parameterizes trace generation. The defaults produce a
// downscaled fleet whose distributions match the paper's production
// dataset; the cmd/ tools can dial the scale up to the full 100 clusters.
type GenConfig struct {
	Clusters          int
	Days              int
	ServersPerCluster int
	Spec              ServerSpec

	// MeanLifetimeHours is the mean VM lifetime (heavy-tailed around
	// this mean).
	MeanLifetimeHours float64

	// CustomersPerCluster sizes each cluster's tenant population.
	CustomersPerCluster int

	// ShockFraction is the fraction of clusters that experience a
	// sudden workload-mix change mid-trace (Figure 2b).
	ShockFraction float64

	// FirstPartyFraction is the fraction of customers whose workload
	// names are visible to the platform.
	FirstPartyFraction float64

	Seed int64

	// Workers bounds how many clusters generate concurrently; <= 0 means
	// GOMAXPROCS. The generated fleet is byte-identical for every worker
	// count (each cluster has its own seed and ID space).
	Workers int
}

// DefaultGenConfig returns the downscaled default: 24 clusters of 16
// dual-socket servers over 75 days. The per-cluster utilization targets
// span 60-95% scheduled cores so Figure 2a's buckets are all populated.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Clusters:          24,
		Days:              75,
		ServersPerCluster: 16,
		Spec: ServerSpec{
			Sockets:      2,
			CoresPerSock: 24,
			MemGBPerSock: 192,
		},
		MeanLifetimeHours:   20,
		CustomersPerCluster: 32,
		ShockFraction:       0.25,
		FirstPartyFraction:  0.35,
		Seed:                1,
	}
}

// Generate produces the full set of cluster traces for the configuration.
//
// Clusters generate in parallel across cfg.Workers goroutines. Per-cluster
// seeds are precomputed serially from the root stream (the same draws a
// serial Fork loop would make), each cluster generates against its own
// injected RNG with cluster-local IDs, and a deterministic renumbering
// pass restores the fleet-wide sequential IDs — so the result is
// byte-identical to serial generation regardless of worker count.
func Generate(cfg GenConfig) []Trace {
	root := stats.NewRand(cfg.Seed)
	seeds := make([]int64, cfg.Clusters)
	for i := range seeds {
		seeds[i] = root.ForkSeed(int64(i + 1))
	}
	traces, err := engine.Map(context.Background(), seeds,
		engine.Options{Workers: cfg.Workers, Seed: cfg.Seed},
		func(i int, seed int64, _ *stats.Rand) (Trace, error) {
			return GenerateCluster(cfg, i, stats.NewRand(seed)), nil
		})
	if err != nil {
		panic("cluster: " + err.Error()) // unreachable: jobs cannot fail
	}

	// Renumber cluster-local IDs into the fleet-wide sequence, exactly as
	// shared counters would have assigned them serially.
	var vmOff VMID
	var custOff CustomerID
	for ti := range traces {
		tr := &traces[ti]
		for i := range tr.Customers {
			tr.Customers[i].ID += custOff
		}
		for i := range tr.VMs {
			tr.VMs[i].ID += vmOff
			tr.VMs[i].Customer += custOff
		}
		vmOff += VMID(len(tr.VMs))
		custOff += CustomerID(len(tr.Customers))
	}
	return traces
}

// regions and OSes for metadata features.
var (
	regions = []string{"us-east", "us-west", "eu-west", "eu-north", "asia-east", "asia-south"}
	oses    = []string{"linux", "windows"}
)

// GenerateCluster generates the trace of a single cluster against an
// injected RNG. IDs are cluster-local (counting from 1); Generate
// renumbers them into the fleet-wide sequence.
func GenerateCluster(cfg GenConfig, idx int, r *stats.Rand) Trace {
	var nextVM VMID
	var nextCustomer CustomerID
	tr := Trace{
		Name:    fmt.Sprintf("cluster-%03d", idx),
		Spec:    cfg.Spec,
		Servers: cfg.ServersPerCluster,
		Days:    cfg.Days,
	}

	// Per-cluster utilization target: clusters span the 60-95% core
	// allocation range of Figure 2a. A mild ramp over the trace plus
	// weekly seasonality gives each cluster a spread of daily points.
	baseUtil := r.Bounded(0.58, 0.88)
	rampPerDay := r.Bounded(0, 0.0025)

	// Shock (Figure 2b): a sudden change in the arriving VM mix around
	// day 36 that strands more memory.
	shock := r.Bernoulli(cfg.ShockFraction)
	if shock {
		// Mid-trace, like the paper's day ~36 of 75.
		tr.ShockDay = int(float64(cfg.Days) * r.Bounded(0.40, 0.56))
	}

	// Customer population with Zipf-like activity weights.
	customers := make([]Customer, cfg.CustomersPerCluster)
	weights := make([]float64, cfg.CustomersPerCluster)
	catalogue := workload.Catalogue()
	for c := range customers {
		nextCustomer++
		customers[c] = makeCustomer(nextCustomer, r, catalogue, cfg.FirstPartyFraction)
		weights[c] = r.Pareto(1, 50, 1.1)
	}
	tr.Customers = customers

	// Per-cluster VM shape mix. Stranding is driven by the gap between
	// the server's DRAM:core ratio (8 GB/core here) and the arriving
	// mix's ratio: a matched cluster strands almost nothing even when
	// full, a core-heavy cluster strands a lot. Each cluster draws a
	// target mix ratio near — but usually below — the server ratio,
	// which reproduces Figure 2a's mean curve with its long upper tail.
	types := VMTypes()
	targetRatio := r.Bounded(6.2, 8.0)
	mix := mixForRatio(types, targetRatio, r)
	shockMix := mix
	if shock {
		// The workload change shifts arrivals toward core-heavy shapes,
		// dropping the mix ratio and stranding more memory (Figure 2b).
		shockMix = mixForRatio(types, targetRatio-r.Bounded(1.5, 2.5), r)
	}

	// Arrival process: Little's law sizing toward the utilization
	// target. Mean cores per VM under the mix is computed to convert
	// target concurrent cores into a concurrent VM count.
	meanLifeSec := cfg.MeanLifetimeHours * 3600
	horizonSec := float64(cfg.Days) * 86400
	totalCores := float64(tr.TotalClusterCores())

	meanCores := func(m []float64) float64 {
		var wsum, csum float64
		for i, t := range types {
			wsum += m[i]
			csum += m[i] * float64(t.Cores)
		}
		return csum / wsum
	}

	// Arrivals come as deployments: a customer spawns a burst of similar
	// VMs at once (scale sets, multi-instance services). Bursts make
	// per-server load episodic — different sockets peak at different
	// times — which is the source of the imbalance that pooling
	// recovers (§2 "Reducing stranding").
	const meanBurst = 3.0
	now := 0.0
	for now < horizonSec {
		day := int(now / 86400)
		m := mix
		if shock && day >= tr.ShockDay {
			m = shockMix
		}
		util := baseUtil + rampPerDay*float64(day) + 0.03*seasonality(now)
		util = stats.Clamp(util, 0.4, 0.97)
		targetConcurrentVMs := util * totalCores / meanCores(m)
		rate := targetConcurrentVMs / meanLifeSec / meanBurst // bursts per second
		now += r.Exponential(1 / rate)
		if now >= horizonSec {
			break
		}
		cust := customers[r.Choice(weights)]
		vt := pickType(types, m, cust.TypeWeights, r)
		burst := 1 + r.Intn(int(2*meanBurst-1)) // uniform 1..5, mean 3
		// The deployment's VMs share a base lifetime: they tend to be
		// torn down together.
		baseLife := 0.0
		for b := 0; b < burst; b++ {
			at := now + float64(b)*30
			if at >= horizonSec {
				break
			}
			nextVM++
			vm := makeVM(nextVM, cust, vt, at, meanLifeSec, r)
			if b == 0 {
				baseLife = vm.LifetimeSec
			} else {
				vm.LifetimeSec = baseLife * r.Bounded(0.85, 1.15)
				if vm.LifetimeSec < 120 {
					vm.LifetimeSec = 120
				}
			}
			tr.VMs = append(tr.VMs, vm)
		}
	}
	sort.Slice(tr.VMs, func(i, j int) bool { return tr.VMs[i].ArrivalSec < tr.VMs[j].ArrivalSec })
	return tr
}

// mixForRatio builds per-type weights whose core-weighted DRAM:core ratio
// matches the target: a bisection over the blend between a core-heavy
// profile (F/D series) and a memory-heavy one (E series), with per-type
// jitter so clusters with equal ratios still differ in composition.
func mixForRatio(types []VMType, target float64, r *stats.Rand) []float64 {
	jitter := make([]float64, len(types))
	for i := range jitter {
		jitter[i] = r.Bounded(0.7, 1.3)
	}
	build := func(x float64) []float64 {
		m := make([]float64, len(types))
		for i, t := range types {
			switch {
			case t.GBPerCore() <= 2:
				m[i] = 0.4 * (1 - x) * jitter[i]
			case t.GBPerCore() <= 4:
				m[i] = (1 - x) * jitter[i]
			default:
				m[i] = 1.5 * x * jitter[i]
			}
			// Small shapes dominate cloud VM counts; weighting down the
			// big shapes keeps per-socket populations in the dozens, as
			// in production, instead of a couple of giant VMs.
			m[i] /= float64(t.Cores)
		}
		return m
	}
	ratio := func(m []float64) float64 {
		var cores, mem float64
		for i, t := range types {
			cores += m[i] * float64(t.Cores)
			mem += m[i] * t.MemoryGB
		}
		return mem / cores
	}
	lo, hi := 0.001, 0.999
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if ratio(build(mid)) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return build((lo + hi) / 2)
}

// seasonality is a weekly triangle wave in [-1, 1], spreading each
// cluster's daily utilization points across a band.
func seasonality(sec float64) float64 {
	const week = 7 * 86400
	x := sec / week
	frac := x - float64(int(x))
	if frac < 0.5 {
		return 4*frac - 1
	}
	return 3 - 4*frac
}

func makeCustomer(id CustomerID, r *stats.Rand, catalogue []workload.Workload, firstPartyFrac float64) Customer {
	// Customer untouched-memory behaviour: the fleet median untouched
	// fraction must be ~50% (§3.2), with wide per-customer variation.
	mean := r.Beta(1.45, 1.45)
	nWorkloads := 1 + r.Intn(3)
	ws := make([]workload.Workload, nWorkloads)
	for i := range ws {
		ws[i] = catalogue[r.Intn(len(catalogue))]
	}
	tw := make([]float64, len(VMTypes()))
	for i := range tw {
		tw[i] = r.Bounded(0.05, 1)
	}
	return Customer{
		ID:            id,
		OS:            oses[r.Choice([]float64{0.72, 0.28})],
		Region:        regions[r.Intn(len(regions))],
		MeanUntouched: mean,
		Spread:        r.Bounded(14, 30),
		Workloads:     ws,
		TypeWeights:   tw,
		FirstParty:    r.Bernoulli(firstPartyFrac),
	}
}

func pickType(types []VMType, clusterMix, custWeights []float64, r *stats.Rand) VMType {
	combined := make([]float64, len(types))
	for i := range combined {
		combined[i] = clusterMix[i] * custWeights[i]
	}
	return types[r.Choice(combined)]
}

func makeVM(id VMID, cust Customer, vt VMType, arrival, meanLifeSec float64, r *stats.Rand) VMRequest {
	// Lifetimes: lognormal with the configured mean; heavy upper tail.
	// For LogNormal(mu, sigma), mean = exp(mu + sigma^2/2).
	const sigma = 1.6
	mu := math.Log(meanLifeSec) - sigma*sigma/2
	life := r.LogNormal(mu, sigma)
	if life < 120 {
		life = 120 // two-minute floor: even failed VMs live briefly
	}

	// Per-VM untouched fraction concentrates around the customer mean.
	a := cust.MeanUntouched * cust.Spread
	b := (1 - cust.MeanUntouched) * cust.Spread
	untouched := r.Beta(clampPos(a), clampPos(b))

	w := cust.Workloads[r.Intn(len(cust.Workloads))]
	name := ""
	if cust.FirstParty {
		name = w.Name
	}
	return VMRequest{
		ID:           id,
		Customer:     cust.ID,
		Type:         vt,
		OS:           cust.OS,
		Region:       cust.Region,
		WorkloadName: name,
		ArrivalSec:   arrival,
		LifetimeSec:  life,
		GroundTruth: VMGroundTruth{
			UntouchedFrac: untouched,
			Workload:      w,
		},
	}
}

func clampPos(x float64) float64 {
	if x < 0.05 {
		return 0.05
	}
	return x
}
