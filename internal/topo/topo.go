// Package topo models how hosts of a Pond deployment attach to external
// memory controllers. The paper evaluates one flat pool group — every
// socket reaches every EMC (§4.1, pool sizes of 8-64 sockets) — but the
// connectivity graph is a real design axis: it trades stranding reduction
// (more hosts sharing more EMCs multiplex better, §2) against failure
// blast radius (an EMC failure takes down every VM with slices on it,
// §4.2) and CXL port budget per EMC. Octopus-style designs make the graph
// sparse: small pods of hosts share small sets of EMCs, with neighbouring
// pods overlapping so capacity can still shift toward demand.
//
// Three named topologies cover the space:
//
//   - flat: every host connects to every EMC (the paper's pool group).
//     Maximum multiplexing, maximum blast radius.
//   - sharded: hosts are partitioned and each partition owns exactly one
//     EMC. Minimum blast radius, no cross-partition multiplexing.
//   - sparse: each host connects to a sliding window of Degree EMCs, so
//     adjacent pods overlap on shared devices (Octopus-style pods).
//
// The topology is purely a connectivity constraint: the Pool Manager
// consults it when choosing which EMC serves an add_capacity call, and
// the fleet simulator uses it for blast-radius accounting.
package topo

import (
	"fmt"
	"sort"
	"strings"
)

// Topology names understood by Build.
const (
	Flat    = "flat"
	Sharded = "sharded"
	Sparse  = "sparse"
)

// Names lists the supported topology names.
func Names() []string { return []string{Flat, Sharded, Sparse} }

// Topology is an immutable host-to-EMC connectivity graph.
type Topology struct {
	name  string
	hosts int
	emcs  int
	// conn[h] is the ascending list of EMC indices host h reaches.
	conn [][]int
	// hostsFor[e] is the ascending list of hosts attached to EMC e.
	hostsFor [][]int
}

// Build constructs a named topology. An empty name means flat. degree is
// only meaningful for sparse (connections per host; <= 0 defaults to 2
// and is clamped to the EMC count).
func Build(name string, hosts, emcs, degree int) (*Topology, error) {
	if hosts <= 0 || emcs <= 0 {
		return nil, fmt.Errorf("topo: need positive hosts and EMCs, got %d hosts x %d EMCs", hosts, emcs)
	}
	switch strings.TrimSpace(strings.ToLower(name)) {
	case "", Flat:
		return build(Flat, hosts, emcs, func(h int) []int {
			all := make([]int, emcs)
			for e := range all {
				all[e] = e
			}
			return all
		}), nil
	case Sharded:
		// Contiguous partition: host h owns EMC h*emcs/hosts. With more
		// EMCs than hosts the trailing EMCs go unused by construction, so
		// reject the shape instead of silently stranding pool capacity.
		if emcs > hosts {
			return nil, fmt.Errorf("topo: sharded needs hosts >= EMCs, got %d hosts x %d EMCs", hosts, emcs)
		}
		return build(Sharded, hosts, emcs, func(h int) []int {
			return []int{h * emcs / hosts}
		}), nil
	case Sparse:
		if degree <= 0 {
			degree = 2
		}
		if degree > emcs {
			degree = emcs
		}
		d := degree
		t := build(Sparse, hosts, emcs, func(h int) []int {
			// Sliding window: the host's pod anchors at EMC
			// h*emcs/hosts and spans d consecutive devices (mod emcs),
			// so adjacent pods share EMCs — the overlap that lets
			// capacity shift between pods.
			base := h * emcs / hosts
			w := make([]int, d)
			for j := 0; j < d; j++ {
				w[j] = (base + j) % emcs
			}
			sort.Ints(w)
			return w
		})
		// With few hosts, wide EMC counts, and a small degree the
		// windows can skip devices entirely; reject the shape instead of
		// silently stranding the unreachable pool capacity.
		for e := 0; e < emcs; e++ {
			if len(t.hostsFor[e]) == 0 {
				return nil, fmt.Errorf("topo: sparse %d hosts x %d EMCs at degree %d leaves EMC %d unreachable; raise the degree",
					hosts, emcs, d, e)
			}
		}
		return t, nil
	default:
		return nil, fmt.Errorf("topo: unknown topology %q (want %s)", name, strings.Join(Names(), ", "))
	}
}

// build materializes the graph from a per-host connectivity function.
func build(name string, hosts, emcs int, emcsFor func(h int) []int) *Topology {
	t := &Topology{
		name:     name,
		hosts:    hosts,
		emcs:     emcs,
		conn:     make([][]int, hosts),
		hostsFor: make([][]int, emcs),
	}
	for h := 0; h < hosts; h++ {
		t.conn[h] = emcsFor(h)
		for _, e := range t.conn[h] {
			t.hostsFor[e] = append(t.hostsFor[e], h)
		}
	}
	return t
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// Hosts returns the host count.
func (t *Topology) Hosts() int { return t.hosts }

// EMCs returns the EMC count.
func (t *Topology) EMCs() int { return t.emcs }

// EMCsFor returns the EMC indices host h reaches (ascending). The slice
// is shared; callers must not mutate it.
func (t *Topology) EMCsFor(h int) []int {
	if h < 0 || h >= t.hosts {
		return nil
	}
	return t.conn[h]
}

// HostsFor returns the hosts attached to EMC e (ascending). The slice is
// shared; callers must not mutate it.
func (t *Topology) HostsFor(e int) []int {
	if e < 0 || e >= t.emcs {
		return nil
	}
	return t.hostsFor[e]
}

// Conn returns a copy of the full host-to-EMC connectivity, indexable by
// host. The Pool Manager consumes this form.
func (t *Topology) Conn() [][]int {
	out := make([][]int, len(t.conn))
	for h, c := range t.conn {
		out[h] = append([]int(nil), c...)
	}
	return out
}

// Degree returns the number of EMCs host h reaches.
func (t *Topology) Degree(h int) int { return len(t.EMCsFor(h)) }

// BlastRadiusHosts returns how many hosts an EMC failure can reach.
func (t *Topology) BlastRadiusHosts(e int) int { return len(t.HostsFor(e)) }

// MaxBlastRadiusFrac returns the worst-case fraction of the fleet's hosts
// a single EMC failure touches — the §4.2 isolation metric the sparse
// topologies exist to shrink.
func (t *Topology) MaxBlastRadiusFrac() float64 {
	max := 0
	for e := 0; e < t.emcs; e++ {
		if n := t.BlastRadiusHosts(e); n > max {
			max = n
		}
	}
	return float64(max) / float64(t.hosts)
}

// Describe renders a one-line summary.
func (t *Topology) Describe() string {
	return fmt.Sprintf("%s: %d hosts x %d EMCs, degree %d, max blast radius %.0f%% of hosts",
		t.name, t.hosts, t.emcs, t.Degree(0), 100*t.MaxBlastRadiusFrac())
}
