package topo

import "testing"

func TestFlat(t *testing.T) {
	tp, err := Build("flat", 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 8; h++ {
		if got := tp.Degree(h); got != 4 {
			t.Fatalf("flat host %d degree = %d, want 4", h, got)
		}
	}
	for e := 0; e < 4; e++ {
		if got := tp.BlastRadiusHosts(e); got != 8 {
			t.Fatalf("flat EMC %d blast radius = %d hosts, want 8", e, got)
		}
	}
	if frac := tp.MaxBlastRadiusFrac(); frac != 1 {
		t.Fatalf("flat max blast radius = %v, want 1", frac)
	}
}

func TestEmptyNameMeansFlat(t *testing.T) {
	tp, err := Build("", 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name() != Flat {
		t.Fatalf("empty name built %q, want flat", tp.Name())
	}
}

func TestSharded(t *testing.T) {
	tp, err := Build("sharded", 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 8; h++ {
		emcs := tp.EMCsFor(h)
		if len(emcs) != 1 {
			t.Fatalf("sharded host %d reaches %v, want exactly one EMC", h, emcs)
		}
		if want := h * 4 / 8; emcs[0] != want {
			t.Fatalf("sharded host %d -> EMC %d, want %d", h, emcs[0], want)
		}
	}
	// Every EMC serves exactly hosts/emcs hosts; blast radius is 1/EMCs.
	for e := 0; e < 4; e++ {
		if got := tp.BlastRadiusHosts(e); got != 2 {
			t.Fatalf("sharded EMC %d blast radius = %d, want 2", e, got)
		}
	}
	if frac := tp.MaxBlastRadiusFrac(); frac != 0.25 {
		t.Fatalf("sharded max blast radius = %v, want 0.25", frac)
	}
}

func TestShardedRejectsMoreEMCsThanHosts(t *testing.T) {
	if _, err := Build("sharded", 2, 4, 0); err == nil {
		t.Fatal("sharded with EMCs > hosts should fail")
	}
}

func TestSparse(t *testing.T) {
	tp, err := Build("sparse", 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for h := 0; h < 8; h++ {
		emcs := tp.EMCsFor(h)
		if len(emcs) != 2 {
			t.Fatalf("sparse host %d degree = %d, want 2", h, len(emcs))
		}
		for _, e := range emcs {
			seen[e] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("sparse connectivity reaches %d EMCs, want all 4", len(seen))
	}
	// Blast radius sits strictly between sharded (1/EMCs) and flat (1).
	frac := tp.MaxBlastRadiusFrac()
	if frac <= 0.25 || frac >= 1 {
		t.Fatalf("sparse max blast radius = %v, want in (0.25, 1)", frac)
	}
	// Adjacent pods overlap: hosts 1 and 2 (different anchor EMCs) share
	// at least one device.
	share := false
	for _, a := range tp.EMCsFor(1) {
		for _, b := range tp.EMCsFor(3) {
			if a == b {
				share = true
			}
		}
	}
	if !share {
		t.Fatal("sparse pods should overlap on shared EMCs")
	}
}

func TestSparseDegreeClamp(t *testing.T) {
	tp, err := Build("sparse", 4, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Degree(0) != 2 {
		t.Fatalf("degree should clamp to EMC count, got %d", tp.Degree(0))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("ring", 4, 2, 0); err == nil {
		t.Fatal("unknown topology should fail")
	}
	if _, err := Build("flat", 0, 2, 0); err == nil {
		t.Fatal("zero hosts should fail")
	}
	if _, err := Build("flat", 2, 0, 0); err == nil {
		t.Fatal("zero EMCs should fail")
	}
}

func TestConnIsACopy(t *testing.T) {
	tp, _ := Build("flat", 2, 2, 0)
	conn := tp.Conn()
	conn[0][0] = 99
	if tp.EMCsFor(0)[0] == 99 {
		t.Fatal("Conn must return a copy, not the internal slices")
	}
}

func TestOutOfRangeQueries(t *testing.T) {
	tp, _ := Build("flat", 2, 2, 0)
	if tp.EMCsFor(-1) != nil || tp.EMCsFor(2) != nil {
		t.Fatal("out-of-range host should return nil")
	}
	if tp.HostsFor(-1) != nil || tp.HostsFor(2) != nil {
		t.Fatal("out-of-range EMC should return nil")
	}
}

func TestSparseRejectsUnreachableEMCs(t *testing.T) {
	// 2 hosts x 8 EMCs at degree 2: windows {0,1} and {4,5} leave EMCs
	// 2,3,6,7 wired to nobody — the shape must be rejected, not strand
	// pool capacity silently.
	if _, err := Build("sparse", 2, 8, 2); err == nil {
		t.Fatal("sparse shape with unreachable EMCs should fail")
	}
	// Raising the degree makes it legal again.
	if _, err := Build("sparse", 2, 8, 4); err != nil {
		t.Fatalf("full-coverage sparse shape rejected: %v", err)
	}
}
