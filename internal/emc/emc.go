// Package emc is a behavioural model of Pond's external memory controller
// ASIC (§4.1): a multi-headed CXL device exposing its entire DRAM capacity
// to every connected host through per-port HDM decoders, with ownership
// enforced at 1 GB slice granularity by an on-chip permission table.
//
// The model captures the properties the paper argues for:
//
//   - Each slice is assigned to at most one host at a time; hosts are
//     explicitly notified of changes (§4.2).
//   - The permission table is tiny: tracking 1024 slices across 64 hosts
//     takes 768 bytes of EMC state.
//   - A request whose requestor does not own the cacheline's slice is a
//     fatal memory error, never silent data exposure.
//   - EMC failures only affect VMs with memory on that EMC (blast
//     radius, §4.2 "Failure management").
package emc

import (
	"errors"
	"fmt"
	"sync"
)

// SliceGB is the granularity of pool memory assignment (§4.1).
const SliceGB = 1

// HostID identifies one CXL head (a connected CPU socket).
type HostID int

// Unowned marks a slice that belongs to the free pool.
const Unowned HostID = -1

// Retired marks a slice decommissioned by an elastic-pool shrink: it is
// not assignable, serves no accesses, and does not count toward
// capacity. Slice IDs stay stable across retire/grow cycles so in-flight
// SliceRefs never dangle; a later Grow re-activates retired slices
// before minting new ones.
const Retired HostID = -2

// SliceID indexes a 1 GB slice within one EMC.
type SliceID int

// FatalMemoryError is the outcome of an access-permission violation: the
// EMC terminates the access with a fatal (uncorrectable) memory error
// rather than serving data the requestor does not own.
type FatalMemoryError struct {
	Device string
	Slice  SliceID
	Owner  HostID // Unowned if the slice is free
	Access HostID
}

// Error implements the error interface.
func (e *FatalMemoryError) Error() string {
	return fmt.Sprintf("emc %s: fatal memory error: host %d accessed slice %d owned by %d",
		e.Device, e.Access, e.Slice, e.Owner)
}

// ErrDeviceFailed is returned for any operation on a failed EMC.
var ErrDeviceFailed = errors.New("emc: device failed")

// ErrSliceBusy is returned when assigning a slice that another host owns.
var ErrSliceBusy = errors.New("emc: slice owned by another host")

// ErrNotOwner is returned when releasing a slice the host does not own.
var ErrNotOwner = errors.New("emc: slice not owned by releasing host")

// ErrNoFreeSlice is returned when the device has no unassigned slices.
var ErrNoFreeSlice = errors.New("emc: no free slice")

// Device is one multi-headed EMC.
type Device struct {
	mu     sync.Mutex
	name   string
	heads  int
	owner  []HostID // per-slice owner
	failed bool

	// assignments counts slice (re)assignments for telemetry.
	assignments int64
}

// NewDevice creates an EMC with the given capacity (GB, one slice per GB)
// and number of CXL heads. It panics on non-positive sizes, mirroring a
// mis-specified hardware SKU.
func NewDevice(name string, capacityGB, heads int) *Device {
	if capacityGB <= 0 || heads <= 0 {
		panic(fmt.Sprintf("emc: invalid device %q: %d GB, %d heads", name, capacityGB, heads))
	}
	owner := make([]HostID, capacityGB/SliceGB)
	for i := range owner {
		owner[i] = Unowned
	}
	return &Device{name: name, heads: heads, owner: owner}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Heads returns the number of CXL ports (connectable hosts).
func (d *Device) Heads() int { return d.heads }

// CapacityGB returns the device's active capacity: physical slices minus
// the ones retired by an elastic-pool shrink.
func (d *Device) CapacityGB() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, o := range d.owner {
		if o != Retired {
			n++
		}
	}
	return n * SliceGB
}

// Slices returns the number of physical slices, retired ones included —
// the ID space, not the active capacity.
func (d *Device) Slices() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.owner)
}

// validHost checks that h is one of the device's heads.
func (d *Device) validHost(h HostID) error {
	if h < 0 || int(h) >= d.heads {
		return fmt.Errorf("emc %s: host %d not connected (device has %d heads)", d.name, h, d.heads)
	}
	return nil
}

// Assign gives slice s to host h, as triggered by the Pool Manager's
// add_capacity flow. Assigning a slice the host already owns is
// idempotent; assigning a slice owned by another host fails with
// ErrSliceBusy — the EMC never silently reassigns live memory.
func (d *Device) Assign(s SliceID, h HostID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if err := d.validHost(h); err != nil {
		return err
	}
	if s < 0 || int(s) >= len(d.owner) {
		return fmt.Errorf("emc %s: slice %d out of range", d.name, s)
	}
	switch d.owner[s] {
	case h:
		return nil
	case Unowned:
		d.owner[s] = h
		d.assignments++
		return nil
	case Retired:
		return fmt.Errorf("emc %s: slice %d is retired", d.name, s)
	default:
		return fmt.Errorf("%w: slice %d owned by host %d", ErrSliceBusy, s, d.owner[s])
	}
}

// AssignAny assigns n free slices to host h and returns them.
// It assigns nothing if fewer than n slices are free.
func (d *Device) AssignAny(n int, h HostID) ([]SliceID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return nil, ErrDeviceFailed
	}
	if err := d.validHost(h); err != nil {
		return nil, err
	}
	var free []SliceID
	for i, o := range d.owner {
		if o == Unowned {
			free = append(free, SliceID(i))
			if len(free) == n {
				break
			}
		}
	}
	if len(free) < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNoFreeSlice, n, len(free))
	}
	for _, s := range free {
		d.owner[s] = h
		d.assignments++
	}
	return free, nil
}

// Release returns slice s from host h to the free pool (the Pool
// Manager's release_capacity flow). Only the owner may release.
func (d *Device) Release(s SliceID, h HostID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if s < 0 || int(s) >= len(d.owner) {
		return fmt.Errorf("emc %s: slice %d out of range", d.name, s)
	}
	if d.owner[s] != h {
		return fmt.Errorf("%w: slice %d owned by %d, released by %d", ErrNotOwner, s, d.owner[s], h)
	}
	d.owner[s] = Unowned
	return nil
}

// Owner returns the current owner of slice s (Unowned if free).
func (d *Device) Owner(s SliceID) HostID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s < 0 || int(s) >= len(d.owner) {
		return Unowned
	}
	return d.owner[s]
}

// Access models a CXL.mem request from host h to slice s: the EMC checks
// whether requestor and owner match and returns a FatalMemoryError
// otherwise (§4.1 "Disallowed accesses result in fatal memory errors").
func (d *Device) Access(s SliceID, h HostID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if s < 0 || int(s) >= len(d.owner) {
		return &FatalMemoryError{Device: d.name, Slice: s, Owner: Unowned, Access: h}
	}
	if d.owner[s] != h {
		return &FatalMemoryError{Device: d.name, Slice: s, Owner: d.owner[s], Access: h}
	}
	return nil
}

// FreeSlices returns the number of assignable slices: unassigned ones on
// a healthy device, zero after a failure (a dead EMC serves nothing, so
// counting its slices as free would misroute capacity planning).
func (d *Device) FreeSlices() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0
	}
	n := 0
	for _, o := range d.owner {
		if o == Unowned {
			n++
		}
	}
	return n
}

// OwnedBy returns all slices currently assigned to host h.
func (d *Device) OwnedBy(h HostID) []SliceID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []SliceID
	for i, o := range d.owner {
		if o == h {
			out = append(out, SliceID(i))
		}
	}
	return out
}

// ForceReleaseAll reclaims every slice owned by a host, returning the
// freed slices. This is the host-failure path of §4.2: "CPU/host failures
// are isolated and associated pool memory is reallocated to other hosts".
// The dead host cannot run the offline protocol, so the Pool Manager
// resets the permission-table entries directly.
func (d *Device) ForceReleaseAll(h HostID) []SliceID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var freed []SliceID
	if d.failed {
		return nil
	}
	for i, o := range d.owner {
		if o == h {
			d.owner[i] = Unowned
			freed = append(freed, SliceID(i))
		}
	}
	return freed
}

// Grow adds gb of active capacity: retired slices are re-activated first
// (lowest IDs first, keeping the ID space compact), then fresh slices are
// appended. This is the elastic-pool grow path — in hardware terms,
// re-enabling decommissioned DIMM ranks before installing new ones.
func (d *Device) Grow(gb int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if gb <= 0 {
		return fmt.Errorf("emc %s: non-positive grow %d GB", d.name, gb)
	}
	need := gb / SliceGB
	for i := 0; i < len(d.owner) && need > 0; i++ {
		if d.owner[i] == Retired {
			d.owner[i] = Unowned
			need--
		}
	}
	for ; need > 0; need-- {
		d.owner = append(d.owner, Unowned)
	}
	return nil
}

// Retire decommissions up to n free slices (highest IDs first, so fresh
// growth is unwound before original capacity) and returns how many were
// actually retired. Only Unowned slices are eligible: slices assigned to
// a host — in use or draining through offline — are never revoked, which
// is what makes an elastic shrink safe for live VMs. A failed device
// retires nothing (its slices are already gone with it).
func (d *Device) Retire(n int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed || n <= 0 {
		return 0
	}
	retired := 0
	for i := len(d.owner) - 1; i >= 0 && retired < n; i-- {
		if d.owner[i] == Unowned {
			d.owner[i] = Retired
			retired++
		}
	}
	return retired
}

// RetiredSlices returns the number of retired (decommissioned) slices.
func (d *Device) RetiredSlices() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, o := range d.owner {
		if o == Retired {
			n++
		}
	}
	return n
}

// Fail marks the device failed: every subsequent operation errors, which
// the host side surfaces as memory loss for exactly the VMs with slices
// on this EMC.
func (d *Device) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Recover clears the failure (e.g. after blade replacement); ownership
// state is reset because DRAM contents did not survive. Retired slices
// stay retired — decommissioning is a capacity decision, not a DRAM one.
func (d *Device) Recover() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = false
	for i := range d.owner {
		if d.owner[i] != Retired {
			d.owner[i] = Unowned
		}
	}
}

// Failed reports the failure state.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// Assignments returns the total number of slice assignments performed.
func (d *Device) Assignments() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.assignments
}

// PermissionTableBytes returns the size of the on-EMC ownership state:
// one owner entry per slice, each wide enough to number all heads. The
// paper's example — 1024 slices (1 TB), 64 hosts (6 bits) — comes to 768
// bytes.
func (d *Device) PermissionTableBytes() int {
	bits := bitsFor(d.heads)
	return (len(d.owner)*bits + 7) / 8
}

// bitsFor returns the number of bits needed to number n distinct hosts.
func bitsFor(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}
