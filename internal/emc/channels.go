package emc

import "fmt"

// DDR5 channel interleaving inside the EMC. The device's memory
// controllers (6 channels on an 8-socket EMC, 12 on a 16-socket one,
// Figure 6) serve cachelines interleaved at a fixed granule so a single
// host's sequential stream spreads across all channels — the same reason
// server memory controllers interleave. The mapper also lets tests verify
// that one misbehaving channel (RAS isolation, §4.1) affects a bounded,
// identifiable address slice.

// InterleaveGranuleBytes is the per-channel striping unit (a common
// 256-byte granule: four cachelines per channel before moving on).
const InterleaveGranuleBytes = 256

// ChannelMap describes the EMC's internal address-to-channel layout.
type ChannelMap struct {
	Channels int
}

// NewChannelMap validates and builds a map.
func NewChannelMap(channels int) ChannelMap {
	if channels <= 0 {
		panic(fmt.Sprintf("emc: invalid channel count %d", channels))
	}
	return ChannelMap{Channels: channels}
}

// ChannelFor returns the DDR5 channel serving the given device byte
// address.
func (m ChannelMap) ChannelFor(addr uint64) int {
	return int((addr / InterleaveGranuleBytes) % uint64(m.Channels))
}

// SliceChannels returns how many distinct channels a 1 GB slice touches —
// always all of them, which is why Pond interleaves only *within* the EMC
// and never across EMCs (blast radius, §4.2).
func (m ChannelMap) SliceChannels(s SliceID) int {
	granules := uint64(SliceGB) << 30 / InterleaveGranuleBytes
	if granules >= uint64(m.Channels) {
		return m.Channels
	}
	return int(granules)
}

// ChannelShare returns the fraction of the device's aggregate bandwidth
// one stream gets among activeStreams concurrent streams. Because every
// stream stripes over all channels, sharing is uniform at any
// concurrency — the property that makes per-VM pool bandwidth predictable
// without channel-affinity placement.
func (m ChannelMap) ChannelShare(activeStreams int) float64 {
	if activeStreams <= 0 {
		return 0
	}
	return 1 / float64(activeStreams)
}

// FailChannelBlastGB returns how much of a capacityGB device is affected
// when one channel's DRAM fails: with full interleaving, every slice
// touches the failed channel, so the whole device is affected — the
// reason EMC-level failures, not channel-level ones, define Pond's blast
// radius unit.
func (m ChannelMap) FailChannelBlastGB(capacityGB int) int {
	return capacityGB
}
