package emc

import (
	"errors"
	"fmt"
	"sync"
)

// DCD implements the inband alternative to Pond's out-of-band Pool
// Manager bus (§4.2): CXL 3.0's Dynamic Capacity Device flow, where
// capacity changes travel as device events on the CXL link itself and
// the host accepts or releases extents in protocol messages. The paper
// notes this "would maintain the same functionality" — which the
// equivalence tests in this package check.
//
// Protocol shape (CXL 3.0 §9.13, simplified to slice granularity):
//
//	device --> host : AddCapacityEvent(extent)     (host must Accept)
//	host --> device : AcceptExtent(extent)
//	host --> device : ReleaseExtent(extent)        (device confirms)
type DCD struct {
	mu  sync.Mutex
	dev *Device

	// pending holds offered-but-unaccepted extents per host.
	pending map[HostID][]SliceID
}

// EventKind labels DCD events delivered to hosts.
type EventKind int

// DCD event kinds.
const (
	// EventAddCapacity offers an extent to the host.
	EventAddCapacity EventKind = iota
	// EventReleaseConfirm acknowledges a host-initiated release.
	EventReleaseConfirm
)

// Event is one inband capacity event.
type Event struct {
	Kind  EventKind
	Slice SliceID
}

// ErrNotOffered is returned when a host accepts an extent that was never
// offered to it.
var ErrNotOffered = errors.New("emc: extent not offered to host")

// NewDCD wraps a device with the inband capacity protocol.
func NewDCD(dev *Device) *DCD {
	return &DCD{dev: dev, pending: make(map[HostID][]SliceID)}
}

// Offer assigns n free slices to the host at the device and queues
// add-capacity events. The capacity is owned by the host immediately
// (accesses are legal) but the host's memory manager only uses it after
// Accept — mirroring the offered/accepted extent states of the spec.
func (d *DCD) Offer(h HostID, n int) ([]Event, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	slices, err := d.dev.AssignAny(n, h)
	if err != nil {
		return nil, err
	}
	events := make([]Event, len(slices))
	for i, s := range slices {
		d.pending[h] = append(d.pending[h], s)
		events[i] = Event{Kind: EventAddCapacity, Slice: s}
	}
	return events, nil
}

// Accept completes the add-capacity handshake for one extent.
func (d *DCD) Accept(h HostID, s SliceID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	queue := d.pending[h]
	for i, ps := range queue {
		if ps == s {
			d.pending[h] = append(queue[:i], queue[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: host %d, slice %d", ErrNotOffered, h, s)
}

// Release returns an extent to the device's free pool and emits the
// confirmation event. Unaccepted (still pending) extents may also be
// released; their offer is dropped.
func (d *DCD) Release(h HostID, s SliceID) (Event, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.dev.Release(s, h); err != nil {
		return Event{}, err
	}
	queue := d.pending[h]
	for i, ps := range queue {
		if ps == s {
			d.pending[h] = append(queue[:i], queue[i+1:]...)
			break
		}
	}
	return Event{Kind: EventReleaseConfirm, Slice: s}, nil
}

// PendingFor returns extents offered to a host and not yet accepted.
func (d *DCD) PendingFor(h HostID) []SliceID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]SliceID(nil), d.pending[h]...)
}

// Device returns the underlying device (for access checks).
func (d *DCD) Device() *Device { return d.dev }
