package emc

import "fmt"

// Request walking: the end-to-end journey of one CXL.mem access through
// the EMC (Figure 1 meets §4.1). A host-physical address goes through the
// host's HDM decoder to a slice, the permission table validates the
// requestor, and the interleaver picks the DDR5 channel. This composes
// the pieces modeled individually elsewhere so integration tests can walk
// real addresses through the whole device.

// RequestResult reports one walked access.
type RequestResult struct {
	Slice   SliceID
	Channel int
}

// RequestWalker binds a host's decoder to a device and its channel map.
type RequestWalker struct {
	dev      *Device
	hdm      *HDMDecoder
	channels ChannelMap
}

// NewRequestWalker wires the three components for one host.
func NewRequestWalker(dev *Device, hdm *HDMDecoder, channels ChannelMap) *RequestWalker {
	if hdm == nil || dev == nil {
		panic("emc: request walker needs a device and decoder")
	}
	return &RequestWalker{dev: dev, hdm: hdm, channels: channels}
}

// Walk validates and routes an access by the decoder's host to the given
// host-physical address. It returns the slice and channel the access
// lands on, a FatalMemoryError for permission violations, or a decode
// error for addresses outside the device window.
func (rw *RequestWalker) Walk(addr uint64) (RequestResult, error) {
	slice, ok := rw.hdm.SliceForAddr(addr)
	if !ok {
		return RequestResult{}, fmt.Errorf("emc: address %#x outside device window", addr)
	}
	if !rw.hdm.IsOnline(slice) {
		return RequestResult{}, fmt.Errorf("emc: slice %d offline on host %d", slice, rw.hdm.Host)
	}
	if err := rw.dev.Access(slice, rw.hdm.Host); err != nil {
		return RequestResult{}, err
	}
	// Channel selection uses the device-relative offset.
	off := addr - rw.hdm.BaseAddr
	return RequestResult{Slice: slice, Channel: rw.channels.ChannelFor(off)}, nil
}
