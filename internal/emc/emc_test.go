package emc

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newTestDevice() *Device { return NewDevice("emc0", 64, 16) }

func TestNewDevicePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDevice("bad", 0, 8)
}

func TestDeviceAccessors(t *testing.T) {
	d := newTestDevice()
	if d.Name() != "emc0" || d.CapacityGB() != 64 || d.Heads() != 16 || d.Slices() != 64 {
		t.Fatalf("accessors wrong: %s %d %d %d", d.Name(), d.CapacityGB(), d.Heads(), d.Slices())
	}
	if d.FreeSlices() != 64 {
		t.Fatalf("new device free slices = %d", d.FreeSlices())
	}
}

func TestAssignAndOwner(t *testing.T) {
	d := newTestDevice()
	if err := d.Assign(3, 2); err != nil {
		t.Fatal(err)
	}
	if got := d.Owner(3); got != 2 {
		t.Fatalf("owner = %d, want 2", got)
	}
	if d.FreeSlices() != 63 {
		t.Fatalf("free = %d, want 63", d.FreeSlices())
	}
}

func TestAssignIdempotentForSameHost(t *testing.T) {
	d := newTestDevice()
	if err := d.Assign(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Assign(3, 2); err != nil {
		t.Fatalf("re-assign to same host should be idempotent: %v", err)
	}
}

func TestAssignConflictFails(t *testing.T) {
	d := newTestDevice()
	if err := d.Assign(3, 2); err != nil {
		t.Fatal(err)
	}
	err := d.Assign(3, 5)
	if !errors.Is(err, ErrSliceBusy) {
		t.Fatalf("conflicting assign = %v, want ErrSliceBusy", err)
	}
	if d.Owner(3) != 2 {
		t.Fatal("conflict mutated ownership")
	}
}

func TestAssignValidation(t *testing.T) {
	d := newTestDevice()
	if err := d.Assign(999, 0); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
	if err := d.Assign(0, 99); err == nil {
		t.Fatal("unconnected host accepted")
	}
	if err := d.Assign(0, -2); err == nil {
		t.Fatal("negative host accepted")
	}
}

func TestAssignAny(t *testing.T) {
	d := newTestDevice()
	slices, err := d.AssignAny(5, 1)
	if err != nil || len(slices) != 5 {
		t.Fatalf("AssignAny = %v, %v", slices, err)
	}
	for _, s := range slices {
		if d.Owner(s) != 1 {
			t.Fatalf("slice %d owner = %d", s, d.Owner(s))
		}
	}
	if d.FreeSlices() != 59 {
		t.Fatalf("free = %d", d.FreeSlices())
	}
}

func TestAssignAnyInsufficientIsAtomic(t *testing.T) {
	d := NewDevice("small", 4, 8)
	if _, err := d.AssignAny(3, 0); err != nil {
		t.Fatal(err)
	}
	_, err := d.AssignAny(2, 1)
	if !errors.Is(err, ErrNoFreeSlice) {
		t.Fatalf("err = %v, want ErrNoFreeSlice", err)
	}
	// The single free slice must not have been taken.
	if d.FreeSlices() != 1 {
		t.Fatalf("partial assignment leaked: free = %d", d.FreeSlices())
	}
}

func TestReleaseRequiresOwner(t *testing.T) {
	d := newTestDevice()
	if err := d.Assign(7, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(7, 5); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign release = %v, want ErrNotOwner", err)
	}
	if err := d.Release(7, 4); err != nil {
		t.Fatalf("owner release failed: %v", err)
	}
	if d.Owner(7) != Unowned {
		t.Fatal("slice not returned to pool")
	}
}

func TestReleaseOutOfRange(t *testing.T) {
	d := newTestDevice()
	if err := d.Release(999, 0); err == nil {
		t.Fatal("out-of-range release accepted")
	}
}

func TestAccessPermissionCheck(t *testing.T) {
	d := newTestDevice()
	if err := d.Assign(9, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Access(9, 3); err != nil {
		t.Fatalf("owner access failed: %v", err)
	}
	err := d.Access(9, 4)
	var fatal *FatalMemoryError
	if !errors.As(err, &fatal) {
		t.Fatalf("foreign access = %v, want FatalMemoryError", err)
	}
	if fatal.Owner != 3 || fatal.Access != 4 || fatal.Slice != 9 {
		t.Fatalf("fatal error fields wrong: %+v", fatal)
	}
	if !strings.Contains(fatal.Error(), "fatal memory error") {
		t.Fatalf("error text = %q", fatal.Error())
	}
}

func TestAccessUnownedSliceIsFatal(t *testing.T) {
	d := newTestDevice()
	var fatal *FatalMemoryError
	if err := d.Access(0, 0); !errors.As(err, &fatal) {
		t.Fatalf("access to unowned slice = %v, want fatal", err)
	}
}

func TestOwnedBy(t *testing.T) {
	d := newTestDevice()
	d.Assign(1, 2)
	d.Assign(5, 2)
	d.Assign(6, 3)
	got := d.OwnedBy(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("OwnedBy = %v", got)
	}
}

func TestFailureBlastRadius(t *testing.T) {
	// EMC failures affect only that EMC; a sibling device keeps working.
	d1 := NewDevice("emc0", 16, 8)
	d2 := NewDevice("emc1", 16, 8)
	d1.Assign(0, 1)
	d2.Assign(0, 1)
	d1.Fail()
	if !d1.Failed() {
		t.Fatal("d1 should be failed")
	}
	if err := d1.Access(0, 1); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("access on failed device = %v", err)
	}
	if _, err := d1.AssignAny(1, 0); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("assign on failed device = %v", err)
	}
	if err := d2.Access(0, 1); err != nil {
		t.Fatalf("sibling device affected by failure: %v", err)
	}
}

func TestRecoverResetsOwnership(t *testing.T) {
	d := newTestDevice()
	d.Assign(0, 1)
	d.Fail()
	d.Recover()
	if d.Failed() {
		t.Fatal("still failed after recover")
	}
	if d.Owner(0) != Unowned {
		t.Fatal("ownership survived recovery; DRAM contents do not")
	}
}

func TestPermissionTableBytesPaperExample(t *testing.T) {
	// §4.1: 1024 slices, 64 hosts (6 bits) => 768 bytes.
	d := NewDevice("big", 1024, 64)
	if got := d.PermissionTableBytes(); got != 768 {
		t.Fatalf("permission table = %d bytes, want 768", got)
	}
}

func TestPermissionTableSmall(t *testing.T) {
	d := NewDevice("tiny", 8, 2)
	if got := d.PermissionTableBytes(); got != 1 {
		t.Fatalf("8 slices x 1 bit = %d bytes, want 1", got)
	}
}

func TestAssignmentsCounter(t *testing.T) {
	d := newTestDevice()
	d.Assign(0, 1)
	d.Assign(0, 1) // idempotent, not counted
	d.AssignAny(2, 2)
	if got := d.Assignments(); got != 3 {
		t.Fatalf("assignments = %d, want 3", got)
	}
}

func TestConcurrentAssignNoDoubleOwnership(t *testing.T) {
	d := NewDevice("emc0", 128, 16)
	var wg sync.WaitGroup
	owners := make([][]SliceID, 16)
	for h := 0; h < 16; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			s, err := d.AssignAny(8, HostID(h))
			if err != nil {
				t.Errorf("host %d: %v", h, err)
				return
			}
			owners[h] = s
		}(h)
	}
	wg.Wait()
	seen := map[SliceID]int{}
	for h, ss := range owners {
		for _, s := range ss {
			if prev, dup := seen[s]; dup {
				t.Fatalf("slice %d assigned to hosts %d and %d", s, prev, h)
			}
			seen[s] = h
		}
	}
	if len(seen) != 128 {
		t.Fatalf("assigned %d slices, want 128", len(seen))
	}
}

// Property: any interleaving of assigns/releases keeps the invariant
// that each slice has at most one owner and free count is consistent.
func TestOwnershipInvariantProperty(t *testing.T) {
	f := func(ops []struct {
		Slice uint8
		Host  uint8
		Rel   bool
	}) bool {
		d := NewDevice("prop", 32, 8)
		owned := map[SliceID]HostID{}
		for _, op := range ops {
			s := SliceID(op.Slice % 32)
			h := HostID(op.Host % 8)
			if op.Rel {
				if d.Release(s, h) == nil {
					delete(owned, s)
				}
			} else {
				if d.Assign(s, h) == nil {
					owned[s] = h
				}
			}
		}
		for s, h := range owned {
			if d.Owner(s) != h {
				return false
			}
		}
		return d.FreeSlices() == 32-len(owned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHDMDecoderAddressing(t *testing.T) {
	d := newTestDevice()
	hd := NewHDMDecoder(2, d, 1<<40)
	if hd.SizeGB != 64 {
		t.Fatalf("window size = %d", hd.SizeGB)
	}
	addr := hd.SliceAddr(3)
	if addr != 1<<40+3<<30 {
		t.Fatalf("slice 3 addr = %#x", addr)
	}
	s, ok := hd.SliceForAddr(addr + 123)
	if !ok || s != 3 {
		t.Fatalf("reverse map = %d, %v", s, ok)
	}
	if _, ok := hd.SliceForAddr(1 << 39); ok {
		t.Fatal("address below window mapped")
	}
	if _, ok := hd.SliceForAddr(1<<40 + 64<<30); ok {
		t.Fatal("address above window mapped")
	}
}

func TestHDMOnlineOffline(t *testing.T) {
	d := newTestDevice()
	hd := NewHDMDecoder(0, d, 0)
	if hd.IsOnline(1) {
		t.Fatal("slices must start offline (§4.2)")
	}
	if err := hd.Online(1); err != nil {
		t.Fatal(err)
	}
	if !hd.IsOnline(1) || hd.OnlineGB() != 1 {
		t.Fatal("online state wrong")
	}
	if err := hd.Offline(1); err != nil {
		t.Fatal(err)
	}
	if err := hd.Offline(1); err == nil {
		t.Fatal("double offline should error")
	}
	if err := hd.Online(9999); err == nil {
		t.Fatal("online outside window should error")
	}
	if hd.IsOnline(9999) {
		t.Fatal("out-of-window slice reported online")
	}
}

func TestChannelMapRoundRobin(t *testing.T) {
	m := NewChannelMap(6)
	// Consecutive granules hit consecutive channels.
	for g := 0; g < 12; g++ {
		addr := uint64(g) * InterleaveGranuleBytes
		if got := m.ChannelFor(addr); got != g%6 {
			t.Fatalf("granule %d -> channel %d, want %d", g, got, g%6)
		}
	}
	// Addresses within one granule share a channel.
	if m.ChannelFor(0) != m.ChannelFor(InterleaveGranuleBytes-1) {
		t.Fatal("granule split across channels")
	}
}

func TestChannelMapPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChannelMap(0)
}

func TestSliceTouchesAllChannels(t *testing.T) {
	for _, ch := range []int{6, 12} {
		m := NewChannelMap(ch)
		if got := m.SliceChannels(0); got != ch {
			t.Fatalf("%d-channel slice spread = %d", ch, got)
		}
	}
}

func TestChannelShare(t *testing.T) {
	m := NewChannelMap(6)
	if m.ChannelShare(0) != 0 {
		t.Fatal("zero streams")
	}
	if m.ChannelShare(1) != 1 {
		t.Fatal("single stream should get the device")
	}
	if m.ChannelShare(12) != 1.0/12 {
		t.Fatal("contended share wrong")
	}
}

func TestFailChannelBlastIsWholeDevice(t *testing.T) {
	m := NewChannelMap(12)
	if got := m.FailChannelBlastGB(1024); got != 1024 {
		t.Fatalf("channel failure blast = %d GB, want full device", got)
	}
}

func TestFreeSlicesZeroAfterFailure(t *testing.T) {
	d := NewDevice("emc0", 8, 2)
	if d.FreeSlices() != 8 {
		t.Fatalf("FreeSlices = %d, want 8", d.FreeSlices())
	}
	d.Fail()
	if d.FreeSlices() != 0 {
		t.Fatalf("failed device reports %d free slices, want 0", d.FreeSlices())
	}
	d.Recover()
	if d.FreeSlices() != 8 {
		t.Fatalf("recovered device reports %d free slices, want 8", d.FreeSlices())
	}
}

func TestGrowAndRetire(t *testing.T) {
	d := NewDevice("emc0", 8, 4)

	// Retire is capped by the free slices and never touches owned ones.
	slices, err := d.AssignAny(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Retire(100); got != 5 {
		t.Fatalf("retired %d, want the 5 free slices", got)
	}
	if d.CapacityGB() != 3 || d.FreeSlices() != 0 || d.RetiredSlices() != 5 {
		t.Fatalf("after retire: cap=%d free=%d retired=%d", d.CapacityGB(), d.FreeSlices(), d.RetiredSlices())
	}
	for _, s := range slices {
		if d.Owner(s) != 1 {
			t.Fatalf("retire revoked owned slice %d", s)
		}
	}

	// Assigning a retired slice is an error, not a silent grant.
	var retired SliceID = -1
	for s := SliceID(0); int(s) < d.Slices(); s++ {
		if d.Owner(s) == Retired {
			retired = s
			break
		}
	}
	if retired < 0 {
		t.Fatal("no retired slice found")
	}
	if err := d.Assign(retired, 2); err == nil {
		t.Fatal("assigning a retired slice should fail")
	}
	if err := d.Access(retired, 2); err == nil {
		t.Fatal("accessing a retired slice should fail")
	}

	// Grow re-activates retired slices before minting new ones: the
	// physical slice count is unchanged until the retired pool is spent.
	if err := d.Grow(3); err != nil {
		t.Fatal(err)
	}
	if d.Slices() != 8 || d.CapacityGB() != 6 || d.RetiredSlices() != 2 {
		t.Fatalf("after grow 3: physical=%d cap=%d retired=%d", d.Slices(), d.CapacityGB(), d.RetiredSlices())
	}
	if err := d.Grow(4); err != nil {
		t.Fatal(err)
	}
	if d.Slices() != 10 || d.CapacityGB() != 10 || d.RetiredSlices() != 0 {
		t.Fatalf("after grow 4: physical=%d cap=%d retired=%d", d.Slices(), d.CapacityGB(), d.RetiredSlices())
	}

	// Failed devices neither grow nor retire.
	d.Fail()
	if err := d.Grow(1); err == nil {
		t.Fatal("growing a failed device should fail")
	}
	if got := d.Retire(1); got != 0 {
		t.Fatalf("failed device retired %d slices", got)
	}
}

func TestRecoverPreservesRetirement(t *testing.T) {
	d := NewDevice("emc0", 4, 2)
	if got := d.Retire(2); got != 2 {
		t.Fatalf("retired %d", got)
	}
	d.Fail()
	d.Recover()
	if d.CapacityGB() != 2 || d.RetiredSlices() != 2 {
		t.Fatalf("recover resurrected retired capacity: cap=%d retired=%d", d.CapacityGB(), d.RetiredSlices())
	}
	if d.FreeSlices() != 2 {
		t.Fatalf("free = %d after recover", d.FreeSlices())
	}
}
