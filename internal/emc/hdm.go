package emc

import "fmt"

// HDMDecoder models the Host-managed Device Memory decoder each host
// programs at boot (§4.2): the EMC exposes its entire capacity on each
// port, and the host maps that range into its physical address space,
// initially offline/"not enabled". Slice onlining then toggles 1 GB
// sub-ranges hot-pluggable.
type HDMDecoder struct {
	Host     HostID
	Device   string
	BaseAddr uint64 // host-physical base of the device window
	SizeGB   int
	enabled  []bool // per-slice online state as seen by the host
}

// NewHDMDecoder programs a decoder for the device window. All slices
// start offline, matching "hosts program each EMC's address range but
// treat them initially as offline". The window spans the *physical*
// slice ID space — retired slices stay addressable but are never
// onlined — so a decoder programmed after an elastic shrink can still
// reach live high-ID slices (capacity is not contiguous once mid-range
// slices retire).
func NewHDMDecoder(h HostID, d *Device, baseAddr uint64) *HDMDecoder {
	return &HDMDecoder{
		Host:     h,
		Device:   d.Name(),
		BaseAddr: baseAddr,
		SizeGB:   d.Slices() * SliceGB,
		enabled:  make([]bool, d.Slices()),
	}
}

// SliceAddr returns the host-physical base address of slice s.
func (hd *HDMDecoder) SliceAddr(s SliceID) uint64 {
	return hd.BaseAddr + uint64(s)*uint64(SliceGB)<<30
}

// SliceForAddr maps a host-physical address back to a slice id, or
// (-1, false) when the address is outside the device window.
func (hd *HDMDecoder) SliceForAddr(addr uint64) (SliceID, bool) {
	if addr < hd.BaseAddr {
		return -1, false
	}
	off := (addr - hd.BaseAddr) >> 30
	if off >= uint64(hd.SizeGB/SliceGB) {
		return -1, false
	}
	return SliceID(off), true
}

// Online marks slice s usable by the host's memory manager (the
// add_capacity interrupt path).
func (hd *HDMDecoder) Online(s SliceID) error {
	if int(s) < 0 || int(s) >= len(hd.enabled) {
		return fmt.Errorf("hdm: slice %d outside device window", s)
	}
	hd.enabled[s] = true
	return nil
}

// Offline removes slice s from the host's usable memory (the
// release_capacity path). Offlining an already-offline slice is an error:
// it indicates the driver and Pool Manager disagree about ownership.
func (hd *HDMDecoder) Offline(s SliceID) error {
	if int(s) < 0 || int(s) >= len(hd.enabled) {
		return fmt.Errorf("hdm: slice %d outside device window", s)
	}
	if !hd.enabled[s] {
		return fmt.Errorf("hdm: slice %d already offline", s)
	}
	hd.enabled[s] = false
	return nil
}

// IsOnline reports whether the host currently has slice s online.
func (hd *HDMDecoder) IsOnline(s SliceID) bool {
	if int(s) < 0 || int(s) >= len(hd.enabled) {
		return false
	}
	return hd.enabled[s]
}

// OnlineGB returns the amount of device memory this host has online.
func (hd *HDMDecoder) OnlineGB() int {
	n := 0
	for _, e := range hd.enabled {
		if e {
			n++
		}
	}
	return n * SliceGB
}
