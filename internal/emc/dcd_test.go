package emc

import (
	"errors"
	"testing"
)

func TestDCDOfferAcceptFlow(t *testing.T) {
	dev := NewDevice("emc0", 16, 4)
	dcd := NewDCD(dev)
	events, err := dcd.Offer(1, 2)
	if err != nil || len(events) != 2 {
		t.Fatalf("offer = %v, %v", events, err)
	}
	for _, e := range events {
		if e.Kind != EventAddCapacity {
			t.Fatalf("event kind = %v", e.Kind)
		}
		// Ownership is already enforced at the device.
		if dev.Owner(e.Slice) != 1 {
			t.Fatalf("offered slice %d not owned by host", e.Slice)
		}
	}
	if got := dcd.PendingFor(1); len(got) != 2 {
		t.Fatalf("pending = %v", got)
	}
	if err := dcd.Accept(1, events[0].Slice); err != nil {
		t.Fatal(err)
	}
	if got := dcd.PendingFor(1); len(got) != 1 {
		t.Fatalf("pending after accept = %v", got)
	}
}

func TestDCDAcceptUnoffered(t *testing.T) {
	dcd := NewDCD(NewDevice("emc0", 16, 4))
	if err := dcd.Accept(1, 3); !errors.Is(err, ErrNotOffered) {
		t.Fatalf("err = %v, want ErrNotOffered", err)
	}
}

func TestDCDReleaseFlow(t *testing.T) {
	dev := NewDevice("emc0", 16, 4)
	dcd := NewDCD(dev)
	events, _ := dcd.Offer(2, 1)
	s := events[0].Slice
	dcd.Accept(2, s)
	ev, err := dcd.Release(2, s)
	if err != nil || ev.Kind != EventReleaseConfirm {
		t.Fatalf("release = %v, %v", ev, err)
	}
	if dev.Owner(s) != Unowned {
		t.Fatal("slice not freed at device")
	}
}

func TestDCDReleasePendingExtent(t *testing.T) {
	dev := NewDevice("emc0", 16, 4)
	dcd := NewDCD(dev)
	events, _ := dcd.Offer(2, 1)
	s := events[0].Slice
	// Release without accepting: the offer is dropped too.
	if _, err := dcd.Release(2, s); err != nil {
		t.Fatal(err)
	}
	if got := dcd.PendingFor(2); len(got) != 0 {
		t.Fatalf("pending after release = %v", got)
	}
}

func TestDCDReleaseForeignSlice(t *testing.T) {
	dev := NewDevice("emc0", 16, 4)
	dcd := NewDCD(dev)
	events, _ := dcd.Offer(1, 1)
	if _, err := dcd.Release(2, events[0].Slice); err == nil {
		t.Fatal("foreign release accepted")
	}
}

func TestDCDOfferExhausted(t *testing.T) {
	dcd := NewDCD(NewDevice("emc0", 2, 4))
	if _, err := dcd.Offer(0, 3); !errors.Is(err, ErrNoFreeSlice) {
		t.Fatalf("err = %v", err)
	}
}

// TestDCDEquivalentToPoolManagerPath verifies the paper's claim that the
// inband DCD flow "maintains the same functionality" as the out-of-band
// Pool Manager bus: the same sequence of capacity changes yields the same
// device ownership state.
func TestDCDEquivalentToPoolManagerPath(t *testing.T) {
	oob := NewDevice("oob", 8, 2) // out-of-band path: direct Assign/Release
	ib := NewDevice("ib", 8, 2)   // inband path: DCD protocol
	dcd := NewDCD(ib)

	// Host 0 obtains 2 GB, host 1 obtains 1 GB, host 0 releases one.
	s0, err := oob.AssignAny(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oob.AssignAny(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := oob.Release(s0[0], 0); err != nil {
		t.Fatal(err)
	}

	ev0, err := dcd.Offer(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ev0 {
		if err := dcd.Accept(0, e.Slice); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dcd.Offer(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := dcd.Release(0, ev0[0].Slice); err != nil {
		t.Fatal(err)
	}

	if oob.FreeSlices() != ib.FreeSlices() {
		t.Fatalf("free slices differ: oob %d, inband %d", oob.FreeSlices(), ib.FreeSlices())
	}
	if len(oob.OwnedBy(0)) != len(ib.OwnedBy(0)) || len(oob.OwnedBy(1)) != len(ib.OwnedBy(1)) {
		t.Fatal("per-host ownership differs between paths")
	}
}

func TestRequestWalkerEndToEnd(t *testing.T) {
	dev := NewDevice("emc0", 8, 4)
	hdm := NewHDMDecoder(2, dev, 1<<40)
	rw := NewRequestWalker(dev, hdm, NewChannelMap(6))

	// Assign and online slice 3 for host 2.
	if err := dev.Assign(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := hdm.Online(3); err != nil {
		t.Fatal(err)
	}
	addr := hdm.SliceAddr(3) + 4096
	res, err := rw.Walk(addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slice != 3 {
		t.Fatalf("walked to slice %d", res.Slice)
	}
	if res.Channel < 0 || res.Channel >= 6 {
		t.Fatalf("channel %d out of range", res.Channel)
	}
	// Consecutive granules rotate channels.
	res2, err := rw.Walk(addr + InterleaveGranuleBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Channel == res.Channel {
		t.Fatal("interleaving not applied")
	}
}

func TestRequestWalkerRejections(t *testing.T) {
	dev := NewDevice("emc0", 8, 4)
	hdm := NewHDMDecoder(2, dev, 1<<40)
	rw := NewRequestWalker(dev, hdm, NewChannelMap(6))

	// Outside the window.
	if _, err := rw.Walk(1 << 39); err == nil {
		t.Fatal("out-of-window access accepted")
	}
	// In the window, but offline.
	if _, err := rw.Walk(hdm.SliceAddr(0)); err == nil {
		t.Fatal("offline slice access accepted")
	}
	// Online but owned by another host: fatal memory error.
	if err := dev.Assign(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := hdm.Online(1); err != nil {
		t.Fatal(err)
	}
	var fatal *FatalMemoryError
	if _, err := rw.Walk(hdm.SliceAddr(1)); !errors.As(err, &fatal) {
		t.Fatalf("foreign access = %v, want fatal memory error", err)
	}
}
