package emc

import "fmt"

// State is the serializable dynamic state of a Device: the per-slice
// permission table (retired slices included — the ID space must survive
// a snapshot so in-flight SliceRefs keep resolving), the failure flag,
// and the assignment counter. Name and head count are configuration and
// are rebuilt by the restoring caller, not carried here.
type State struct {
	Owner       []HostID `json:"owner"`
	Failed      bool     `json:"failed,omitempty"`
	Assignments int64    `json:"assignments,omitempty"`
}

// State captures the device's current state for serialization.
func (d *Device) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return State{
		Owner:       append([]HostID(nil), d.owner...),
		Failed:      d.failed,
		Assignments: d.assignments,
	}
}

// SetState restores a state captured by State, replacing the permission
// table wholesale (the snapshot's slice count wins: grows and retires
// may have resized the ID space since construction).
func (d *Device) SetState(s State) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(s.Owner) == 0 {
		return fmt.Errorf("emc %s: state has no slices", d.name)
	}
	for i, o := range s.Owner {
		if o != Unowned && o != Retired && (o < 0 || int(o) >= d.heads) {
			return fmt.Errorf("emc %s: state slice %d owned by invalid host %d (%d heads)", d.name, i, o, d.heads)
		}
	}
	d.owner = append(d.owner[:0], s.Owner...)
	d.failed = s.Failed
	d.assignments = s.Assignments
	return nil
}
