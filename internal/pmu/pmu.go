// Package pmu emulates the core performance-measurement-unit telemetry
// Pond gathers for opaque VMs (§4.2, Figure 12). Pond uses the top-down
// method for analysis (TMA): pipeline-slot decompositions such as
// memory-bound and DRAM-bound, plus LLC misses per instruction, memory
// bandwidth, and memory-level parallelism, over a set of 200 hardware
// counters as supported by current Intel processors (§5).
//
// The real system reads these counters from hardware; this reproduction
// synthesizes them from the workload model with measurement noise, so the
// downstream prediction models face the same statistical problem the paper
// describes: counters correlate with CXL-latency sensitivity but
// imperfectly (Finding 4), and 190+ of the 200 counters carry little or no
// signal.
package pmu

import (
	"fmt"

	"pond/internal/stats"
	"pond/internal/workload"
)

// NumCounters is the size of the counter set (§5: "a set of 200 hardware
// counters as supported by current Intel processors").
const NumCounters = 200

// Indices of the named, informative counters within a Vector. The
// remainder (GenericBase..NumCounters-1) are generic event counters.
const (
	BackendBound   = iota // TMA level-1: backend-bound pipeline slots
	MemoryBound           // TMA level-2: memory-bound slots
	DRAMBound             // TMA level-3: DRAM-latency-bound slots
	StoreBound            // TMA level-3: store-bound slots
	LLCMPI                // last-level-cache misses per kilo-instruction
	BandwidthGBps         // DRAM bandwidth consumption
	MemParallelism        // outstanding-miss parallelism (MLP)
	FrontendBound         // TMA level-1: frontend-bound slots
	Retiring              // TMA level-1: retiring slots
	IPC                   // instructions per cycle
	GenericBase           // first generic counter index
)

// Vector is one sample of all 200 counters for a VM.
type Vector [NumCounters]float64

// CounterName returns the name of counter i.
func CounterName(i int) string {
	names := [...]string{
		BackendBound:   "tma_backend_bound",
		MemoryBound:    "tma_memory_bound",
		DRAMBound:      "tma_dram_bound",
		StoreBound:     "tma_store_bound",
		LLCMPI:         "llc_mpki",
		BandwidthGBps:  "dram_bw_gbps",
		MemParallelism: "mem_parallelism",
		FrontendBound:  "tma_frontend_bound",
		Retiring:       "tma_retiring",
		IPC:            "ipc",
	}
	if i < GenericBase {
		return names[i]
	}
	if i < NumCounters {
		return fmt.Sprintf("generic_event_%03d", i-GenericBase)
	}
	panic(fmt.Sprintf("pmu: counter index %d out of range", i))
}

// CounterNames returns all 200 counter names in index order.
func CounterNames() []string {
	out := make([]string, NumCounters)
	for i := range out {
		out[i] = CounterName(i)
	}
	return out
}

// SampleCost is the measured overhead of reading the full counter set
// once: about 1 ms per sample at a 1 Hz cadence (§5), i.e. ~0.1% — the
// "no measurable overhead" claim.
const (
	SampleCostMillis   = 1.0
	SamplePeriodMillis = 1000.0
)

// OverheadFraction returns the CPU fraction consumed by counter sampling.
func OverheadFraction() float64 { return SampleCostMillis / SamplePeriodMillis }

// Sample synthesizes one counter vector for a VM running the given
// workload. Each call draws fresh measurement noise from r, so repeated
// samples of the same workload differ the way 1-second hardware samples
// do. The informative counters derive from the workload's TMA fractions;
// generic counters are weak mixtures of the informative ones plus noise.
func Sample(w workload.Workload, r *stats.Rand) Vector {
	var v Vector
	SampleInto(&v, w, r)
	return v
}

// SampleInto writes one counter vector into v, drawing exactly the same
// noise stream as Sample. Hot loops (the fleet event loop samples twice
// per admission) pass a reused per-cell vector so the 200-counter sample
// never touches the heap.
func SampleInto(vp *Vector, w workload.Workload, r *stats.Rand) {
	v := vp
	noisy := func(x, sigma float64) float64 {
		return stats.Clamp(x*(1+sigma*r.NormFloat64()), 0, 1)
	}
	v[DRAMBound] = noisy(w.DRAMBoundFrac(), 0.10)
	v[StoreBound] = noisy(w.StoreBoundFrac(), 0.10)
	v[MemoryBound] = noisy(w.MemoryBoundFrac(), 0.08)
	v[BackendBound] = noisy(w.BackendBoundFrac(), 0.08)
	v[FrontendBound] = noisy(0.12, 0.3)
	v[Retiring] = stats.Clamp(1-v[BackendBound]-v[FrontendBound], 0, 1)
	v[LLCMPI] = stats.Clamp(30*w.DRAMBoundFrac()/(0.5+0.25*w.MLP)*(1+0.15*r.NormFloat64()), 0, 100)
	v[BandwidthGBps] = stats.Clamp(w.BandwidthDemandGBps()*(1+0.1*r.NormFloat64()), 0, 120)
	v[MemParallelism] = stats.Clamp(w.MLP*(1+0.1*r.NormFloat64()), 0.5, 10)
	v[IPC] = stats.Clamp(2.2*(1-0.8*w.BackendBoundFrac())*(1+0.08*r.NormFloat64()), 0.05, 4)

	// Generic counters: a deterministic per-index mixture of the
	// informative signals, mostly drowned in noise. A handful carry a
	// little real signal so a forest can find them; most are useless,
	// which is what makes a 200-feature model realistic. The mix weights
	// are pure functions of the index, precomputed once into mixDram /
	// mixBW; the loop body keeps the original expression shape so every
	// counter value is bit-identical to the pre-table code.
	dram := v[DRAMBound]
	bw := v[BandwidthGBps]
	for i := GenericBase; i < NumCounters; i++ {
		signal := mixDram[i]*dram + mixBW[i]*bw/120
		v[i] = stats.Clamp(0.2*signal+0.9*r.Float64(), 0, 1)
	}
}

// mixDram and mixBW cache mixWeight(i, 0) and mixWeight(i, 1) for every
// generic counter: recomputing the hash 380 times per sample dominated
// the fleet hot path's flat profile.
var mixDram, mixBW [NumCounters]float64

func init() {
	for i := GenericBase; i < NumCounters; i++ {
		mixDram[i] = mixWeight(i, 0)
		mixBW[i] = mixWeight(i, 1)
	}
}

// mixWeight returns a small deterministic weight in [0, 0.3) for generic
// counter i and signal s, so counter semantics are stable across samples.
func mixWeight(i, s int) float64 {
	h := uint64(i*2654435761) ^ uint64(s*40503)
	h ^= h >> 13
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 7
	return float64(h%1000) / 1000 * 0.3
}

// MeanVector averages several samples of the same workload; the QoS
// monitor consumes means over its observation window.
func MeanVector(samples []Vector) Vector {
	var out Vector
	if len(samples) == 0 {
		return out
	}
	for _, s := range samples {
		for i := range out {
			out[i] += s[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(samples))
	}
	return out
}

// Features flattens the vector to a []float64 for the ML layer.
func (v Vector) Features() []float64 {
	out := make([]float64, NumCounters)
	copy(out, v[:])
	return out
}
