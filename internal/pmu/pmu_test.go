package pmu

import (
	"strings"
	"testing"

	"pond/internal/stats"
	"pond/internal/workload"
)

func TestCounterNamesCount(t *testing.T) {
	names := CounterNames()
	if len(names) != NumCounters {
		t.Fatalf("len(CounterNames()) = %d, want %d", len(names), NumCounters)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
}

func TestNamedCounters(t *testing.T) {
	if CounterName(DRAMBound) != "tma_dram_bound" {
		t.Fatalf("DRAMBound name = %q", CounterName(DRAMBound))
	}
	if CounterName(MemoryBound) != "tma_memory_bound" {
		t.Fatalf("MemoryBound name = %q", CounterName(MemoryBound))
	}
	if !strings.HasPrefix(CounterName(GenericBase), "generic_event_") {
		t.Fatalf("generic name = %q", CounterName(GenericBase))
	}
}

func TestCounterNamePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CounterName(NumCounters)
}

func TestSampleDeterministicGivenSeed(t *testing.T) {
	w, _ := workload.ByName("505.mcf_r")
	a := Sample(w, stats.NewRand(1))
	b := Sample(w, stats.NewRand(1))
	if a != b {
		t.Fatal("same seed produced different samples")
	}
}

func TestSampleVariesAcrossDraws(t *testing.T) {
	w, _ := workload.ByName("505.mcf_r")
	r := stats.NewRand(1)
	a := Sample(w, r)
	b := Sample(w, r)
	if a == b {
		t.Fatal("independent samples are identical; measurement noise missing")
	}
}

func TestSampleTracksWorkloadDRAMBound(t *testing.T) {
	r := stats.NewRand(2)
	mcf, _ := workload.ByName("505.mcf_r")     // heavily DRAM-bound
	leela, _ := workload.ByName("541.leela_r") // compute-bound
	var mcfSum, leelaSum float64
	for i := 0; i < 50; i++ {
		mcfSum += Sample(mcf, r)[DRAMBound]
		leelaSum += Sample(leela, r)[DRAMBound]
	}
	if mcfSum <= leelaSum*5 {
		t.Fatalf("mcf DRAM-bound (%v) should dwarf leela's (%v)", mcfSum/50, leelaSum/50)
	}
}

func TestSampleFractionsBounded(t *testing.T) {
	r := stats.NewRand(3)
	for _, w := range workload.Catalogue() {
		v := Sample(w, r)
		for _, idx := range []int{BackendBound, MemoryBound, DRAMBound, StoreBound, FrontendBound, Retiring} {
			if v[idx] < 0 || v[idx] > 1 {
				t.Fatalf("%s: counter %s = %v outside [0,1]", w.Name, CounterName(idx), v[idx])
			}
		}
		if v[BandwidthGBps] < 0 || v[BandwidthGBps] > 120 {
			t.Fatalf("%s: bandwidth %v implausible", w.Name, v[BandwidthGBps])
		}
	}
}

func TestDeceptiveWorkloadHidesFromDRAMBound(t *testing.T) {
	// Finding 4: VoltDB YCSB-C slows >20% but reports tiny DRAM-bound.
	w, ok := workload.ByName("voltdb-ycsb-c")
	if !ok {
		t.Fatal("missing deceptive workload")
	}
	r := stats.NewRand(4)
	var db, sb float64
	for i := 0; i < 50; i++ {
		v := Sample(w, r)
		db += v[DRAMBound]
		sb += v[StoreBound]
	}
	db, sb = db/50, sb/50
	if db > 0.06 {
		t.Fatalf("deceptive workload mean DRAM-bound = %v, want < 0.06", db)
	}
	if sb < 0.1 {
		t.Fatalf("deceptive workload store-bound = %v should carry the signal", sb)
	}
}

func TestBandwidthCounterSeparatesBWBoundWorkloads(t *testing.T) {
	r := stats.NewRand(5)
	lbm, _ := workload.ByName("519.lbm_r")     // bandwidth-bound
	leela, _ := workload.ByName("541.leela_r") // compute-bound
	var lbmBW, leelaBW float64
	for i := 0; i < 50; i++ {
		lbmBW += Sample(lbm, r)[BandwidthGBps]
		leelaBW += Sample(leela, r)[BandwidthGBps]
	}
	if lbmBW <= leelaBW*2 {
		t.Fatalf("lbm bandwidth (%v) should dominate leela (%v)", lbmBW/50, leelaBW/50)
	}
}

func TestGenericCountersMostlyNoise(t *testing.T) {
	// The generic counters must not leak strong signal: correlate each
	// against the workload's true sensitivity and require most to be
	// weak.
	ws := workload.Catalogue()
	r := stats.NewRand(6)
	n := len(ws)
	sens := make([]float64, n)
	samples := make([]Vector, n)
	for i, w := range ws {
		sens[i] = w.Slowdown(workload.Ratio182, 1)
		samples[i] = Sample(w, r)
	}
	strong := 0
	for c := GenericBase; c < NumCounters; c++ {
		xs := make([]float64, n)
		for i := range samples {
			xs[i] = samples[i][c]
		}
		if corr := correlation(xs, sens); corr > 0.5 {
			strong++
		}
	}
	if strong > (NumCounters-GenericBase)/4 {
		t.Fatalf("%d generic counters strongly correlated; they should be mostly noise", strong)
	}
}

func TestMeanVector(t *testing.T) {
	var a, b Vector
	a[DRAMBound], b[DRAMBound] = 0.2, 0.4
	m := MeanVector([]Vector{a, b})
	if diff := m[DRAMBound] - 0.3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean = %v, want 0.3", m[DRAMBound])
	}
	var zero Vector
	if MeanVector(nil) != zero {
		t.Fatal("MeanVector(nil) should be zero")
	}
}

func TestFeaturesCopies(t *testing.T) {
	var v Vector
	v[0] = 1
	f := v.Features()
	if len(f) != NumCounters || f[0] != 1 {
		t.Fatalf("Features() = len %d, f[0]=%v", len(f), f[0])
	}
	f[0] = 99
	if v[0] != 1 {
		t.Fatal("Features aliases the vector")
	}
}

func TestOverheadIsNegligible(t *testing.T) {
	if OverheadFraction() > 0.002 {
		t.Fatalf("sampling overhead %v should be ~0.1%% (§5)", OverheadFraction())
	}
}

func correlation(xs, ys []float64) float64 {
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (sqrtf(sxx) * sqrtf(syy))
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations suffice for test purposes.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
