package experiments

import (
	"fmt"

	"pond/internal/cluster"
	"pond/internal/cxl"
	"pond/internal/emc"
	"pond/internal/guest"
	"pond/internal/host"
	"pond/internal/pool"
	"pond/internal/stats"
	"pond/internal/workload"
)

// Figure6Result is the EMC resource-budget comparison against AMD Genoa's
// IO die.
type Figure6Result struct {
	Budgets []cxl.Budget
}

// Figure6 computes the EMC budget for the paper's pool sizes.
func Figure6() Figure6Result {
	var r Figure6Result
	for _, sockets := range []int{8, 16, 32, 64} {
		r.Budgets = append(r.Budgets, cxl.EMCBudget(sockets))
	}
	return r
}

// String renders the Figure 6 table.
func (r Figure6Result) String() string {
	var t table
	t.title("Figure 6: EMC budget vs AMD Genoa IOD (128 lanes, 12 DDR5 ch, 397 mm2)")
	for _, b := range r.Budgets {
		t.row("%s", b)
	}
	return t.String()
}

// Figure7Result is the latency breakdown per pool size.
type Figure7Result struct {
	Paths []cxl.Path
}

// Figure7 composes the access paths of Figure 7.
func Figure7() Figure7Result {
	r := Figure7Result{Paths: []cxl.Path{cxl.LocalPath()}}
	for _, sockets := range []int{8, 16, 32, 64} {
		r.Paths = append(r.Paths, cxl.PondPath(sockets))
	}
	return r
}

// String renders each path with its stage breakdown.
func (r Figure7Result) String() string {
	var t table
	t.title("Figure 7: pool size and latency tradeoffs")
	for _, p := range r.Paths {
		t.row("%s", p)
	}
	return t.String()
}

// Figure8Row compares Pond against the switch-only design at one size.
type Figure8Row struct {
	Sockets      int
	PondNanos    float64
	SwitchNanos  float64
	ReductionPct float64
}

// Figure8Result is the latency comparison series.
type Figure8Result struct {
	Rows []Figure8Row
}

// Figure8 evaluates both designs across pool sizes.
func Figure8() Figure8Result {
	var r Figure8Result
	for _, sockets := range []int{2, 8, 16, 32, 64} {
		pond := cxl.PondPath(sockets).TotalNanos()
		sw := cxl.SwitchOnlyPath(sockets).TotalNanos()
		r.Rows = append(r.Rows, Figure8Row{
			Sockets:      sockets,
			PondNanos:    pond,
			SwitchNanos:  sw,
			ReductionPct: 100 * (1 - pond/sw),
		})
	}
	return r
}

// String renders the Figure 8 series.
func (r Figure8Result) String() string {
	var t table
	t.title("Figure 8: pool access latency, Pond multi-headed EMC vs switches only")
	t.row("%-8s %12s %14s %10s", "sockets", "Pond [ns]", "switch-only", "reduction")
	for _, row := range r.Rows {
		t.row("%-8d %12.0f %14.0f %9.0f%%", row.Sockets, row.PondNanos, row.SwitchNanos, row.ReductionPct)
	}
	return t.String()
}

// Figure9Event is one line of the pool-management walkthrough.
type Figure9Event struct {
	T    int
	What string
}

// Figure9Result is the Figure 9 event trace.
type Figure9Result struct {
	Events []Figure9Event
	// FreeGBAfter is the pool's free capacity at the end.
	FreeGBAfter int
}

// Figure9 re-enacts the paper's pool-management example: two hosts share
// one EMC; VM2 departs and its slice is released asynchronously; a new VM
// arrives on host 2 and receives capacity before it starts.
func Figure9() Figure9Result {
	var r Figure9Result
	log := func(t int, format string, args ...any) {
		r.Events = append(r.Events, Figure9Event{T: t, What: fmt.Sprintf(format, args...)})
	}
	device := emc.NewDevice("EMC1", 8, 2)
	pm := pool.NewManager([]*emc.Device{device}, stats.NewRand(DefaultSeed))

	// t=0: hosts map local and EMC memory at boot; slices x,y assigned.
	res1, err := pm.AddCapacity(0, 1, 0)
	must(err)
	log(0, "hosts map EMC memory at boot; slice %v online on H1 (used by VM1)", res1.Slices[0].Slice)
	res2, err := pm.AddCapacity(0, 1, 0)
	must(err)
	log(0, "slice %v online on H1 (used by VM2)", res2.Slices[0].Slice)

	// t=1: VM2 leaves; H1 releases capacity asynchronously.
	pm.ReleaseCapacity(0, res2.Slices, 1)
	log(1, "VM2 leaves; release_capacity(H1, y) queued (offline takes 10-100 ms/GB)")

	// t=2: release completes; slice back in the pool.
	log(2, "offline complete; pool free = %d GB", pm.FreeGB(2))

	// t=3: new VM needs 1 GB of pool memory on host 2.
	res3, err := pm.AddCapacity(1, 1, 3)
	must(err)
	log(3, "add_capacity(H2, %v): onlined in %.0f us, before the VM starts",
		res3.Slices[0].Slice, res3.OnlineLatencySec*1e6)

	// t=4: VM3 runs on H2 with the reassigned slice.
	if device.Owner(res3.Slices[0].Slice) != 1 {
		panic("experiments: figure 9 slice not owned by H2")
	}
	log(4, "VM3 running on H2; slice ownership enforced by EMC permission table")
	r.FreeGBAfter = pm.FreeGB(4)
	return r
}

// String renders the walkthrough.
func (r Figure9Result) String() string {
	var t table
	t.title("Figure 9: pool management example (asynchronous release)")
	for _, e := range r.Events {
		t.row("t=%d  %s", e.T, e.What)
	}
	t.row("pool free at end: %d GB", r.FreeGBAfter)
	return t.String()
}

// Figure10Result is the guest-visible zNUMA topology.
type Figure10Result struct {
	Topology host.Topology
}

// Figure10 builds the topology of a VM with 24 GB local and 8 GB zNUMA at
// the 182% latency level, as a Linux guest would report it.
func Figure10() Figure10Result {
	h := host.New(0, cluster.ServerSpec{Sockets: 2, CoresPerSock: 24, MemGBPerSock: 192},
		host.Config{PoolLatencyRatio: 1.82})
	h.AddPoolCapacity(8)
	vm := cluster.VMRequest{
		ID:   1,
		Type: cluster.VMType{Name: "D8s_v3", Cores: 8, MemoryGB: 32},
	}
	p, err := h.PlaceVM(vm, 24, 8, nil)
	must(err)
	return Figure10Result{Topology: p.Topology}
}

// String renders the numactl-style view of Figure 10.
func (r Figure10Result) String() string {
	var t table
	t.title("Figure 10: zNUMA as seen from a Linux VM")
	t.row("%s", r.Topology)
	return t.String()
}

// ZNUMAAblationResult compares zNUMA (local-preferred) against the
// uniform interleaving of prior work (DESIGN.md ablation 2).
type ZNUMAAblationResult struct {
	Workload        string
	ZNUMATrafficPct float64
	InterleavedPct  float64
	AdvantageFactor float64
}

// AblationZNUMA runs the placement-policy ablation on the video workload
// with a correctly sized local node.
func AblationZNUMA() ZNUMAAblationResult {
	ws := workloadVideo()
	local := ws.FootprintGB * 1.2
	poolGB := ws.FootprintGB * 0.5

	topo := host.NewTopology(8, local, poolGB, 1.82)
	mm := guest.Boot(topo, guest.LocalPreferred)
	st, err := mm.RunWorkload(ws, ws.FootprintGB)
	must(err)

	mi := guest.Boot(topo, guest.Interleaved)
	sti, err := mi.RunWorkload(ws, ws.FootprintGB)
	must(err)

	return ZNUMAAblationResult{
		Workload:        ws.Name,
		ZNUMATrafficPct: 100 * st.ZNUMAFrac,
		InterleavedPct:  100 * sti.ZNUMAFrac,
		AdvantageFactor: sti.ZNUMAFrac / st.ZNUMAFrac,
	}
}

// String renders the ablation.
func (r ZNUMAAblationResult) String() string {
	var t table
	t.title("Ablation: zNUMA vs uniform interleaving")
	t.row("%-14s zNUMA traffic %.3f%%  interleaved %.1f%%  advantage %.0fx",
		r.Workload, r.ZNUMATrafficPct, r.InterleavedPct, r.AdvantageFactor)
	return t.String()
}

func must(err error) {
	if err != nil {
		panic("experiments: " + err.Error())
	}
}

// CoLocationRow is one co-location level's outcome.
type CoLocationRow struct {
	VMs              int
	PortUtilization  float64
	MeanExtraSlowPct float64
	P95ExtraSlowPct  float64
	QueueDelayNanos  float64
}

// CoLocationResult is the port-contention ablation: how many pool-backed
// VMs can share one x8 CXL port before bandwidth sharing and queueing
// visibly stretch them. This extends the paper's provisioning argument
// (§2: one DDR5 channel per x8 port) to the oversubscribed regime.
type CoLocationResult struct {
	Rows []CoLocationRow
}

// AblationCoLocation samples random pool-backed VM sets of growing size
// on one port and measures the extra slowdown from fair-share bandwidth
// plus queueing delay.
func AblationCoLocation() CoLocationResult {
	r := stats.NewRand(DefaultSeed)
	catalogue := workload.Catalogue()
	var out CoLocationResult
	for _, n := range []int{1, 2, 4, 8, 16} {
		const trials = 40
		var extras []float64
		var utilSum, delaySum float64
		for trial := 0; trial < trials; trial++ {
			demands := make([]float64, n)
			ws := make([]workload.Workload, n)
			for i := 0; i < n; i++ {
				ws[i] = catalogue[r.Intn(len(catalogue))]
				// Each VM keeps ~30% of its memory on the pool.
				demands[i] = ws[i].PoolBandwidthGBps(0.3)
			}
			load := cxl.SharePort(demands)
			rho := cxl.BoundedRho(load.DemandGBps / load.CapacityGBps)
			delay := cxl.QueueDelayNanos(rho)
			utilSum += rho
			delaySum += delay
			for i := 0; i < n; i++ {
				bw := cxl.ContentionSlowdown(demands[i], load.Grants[i], ws[i].BWSens)
				// Queueing stretches the latency ratio; reuse the
				// workload's latency sensitivity against the bump.
				lat := ws[i].LatSens * (delay / cxl.LocalDRAMLatencyNano) * 0.3
				extras = append(extras, 100*(bw+lat))
			}
		}
		sum := stats.Summarize(extras)
		out.Rows = append(out.Rows, CoLocationRow{
			VMs:              n,
			PortUtilization:  utilSum / trials,
			MeanExtraSlowPct: sum.Mean,
			P95ExtraSlowPct:  sum.P95,
			QueueDelayNanos:  delaySum / trials,
		})
	}
	return out
}

// String renders the co-location table.
func (r CoLocationResult) String() string {
	var t table
	t.title("Ablation: pool-backed VMs sharing one x8 CXL port")
	t.row("%-6s %12s %14s %12s %12s", "VMs", "port util", "queue delay", "mean extra", "p95 extra")
	for _, row := range r.Rows {
		t.row("%-6d %11.0f%% %11.1f ns %11.2f%% %11.2f%%",
			row.VMs, 100*row.PortUtilization, row.QueueDelayNanos,
			row.MeanExtraSlowPct, row.P95ExtraSlowPct)
	}
	return t.String()
}
