package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pond/internal/cluster"
	"pond/internal/sim"
	"pond/internal/stats"
)

// Definition is one runnable experiment: a name, what it reproduces, and
// an entry point normalized to (Scale, ...Option). Experiments that take
// extra parameters (folds, retrain cadence) pick scale-appropriate
// defaults here.
type Definition struct {
	Name        string
	Description string
	// Slow marks the experiments that dominate wall-clock (model
	// training at fleet scale).
	Slow bool
	Run  func(scale Scale, opts ...Option) fmt.Stringer
}

// Registry lists every experiment of the reproduction in presentation
// order.
func Registry() []Definition {
	return []Definition{
		{Name: "2a", Description: "stranding vs scheduled cores", Run: func(s Scale, o ...Option) fmt.Stringer { return Figure2a(s, o...) }},
		{Name: "2b", Description: "stranding over time (8 racks)", Run: func(s Scale, o ...Option) fmt.Stringer { return Figure2b(s, o...) }},
		{Name: "3", Description: "required DRAM vs pool size", Run: func(s Scale, o ...Option) fmt.Stringer { return Figure3(s, o...) }},
		{Name: "4", Description: "slowdown by workload class", Run: func(Scale, ...Option) fmt.Stringer { return Figure4() }},
		{Name: "5", Description: "slowdown CDF under CXL latency", Run: func(Scale, ...Option) fmt.Stringer { return Figure5() }},
		{Name: "6", Description: "EMC resource budget", Run: func(Scale, ...Option) fmt.Stringer { return Figure6() }},
		{Name: "7", Description: "pool size and latency tradeoffs", Run: func(Scale, ...Option) fmt.Stringer { return Figure7() }},
		{Name: "8", Description: "EMC vs switch-only latency", Run: func(Scale, ...Option) fmt.Stringer { return Figure8() }},
		{Name: "9", Description: "pool management walkthrough", Run: func(Scale, ...Option) fmt.Stringer { return Figure9() }},
		{Name: "10", Description: "zNUMA guest topology", Run: func(Scale, ...Option) fmt.Stringer { return Figure10() }},
		{Name: "15", Description: "zNUMA traffic, internal workloads", Run: func(Scale, ...Option) fmt.Stringer { return Figure15() }},
		{Name: "16", Description: "slowdown vs spilled fraction", Run: func(Scale, ...Option) fmt.Stringer { return Figure16() }},
		{Name: "17", Description: "latency-insensitivity models", Slow: true, Run: func(s Scale, o ...Option) fmt.Stringer {
			return Figure17(foldsFor(s), samplesFor(s), o...)
		}},
		{Name: "18", Description: "untouched-memory model curve", Slow: true, Run: func(s Scale, o ...Option) fmt.Stringer { return Figure18(s, o...) }},
		{Name: "19", Description: "UM model in production (rolling)", Slow: true, Run: func(s Scale, o ...Option) fmt.Stringer {
			return Figure19(s, retrainFor(s), o...)
		}},
		{Name: "20", Description: "combined-model frontier", Slow: true, Run: func(s Scale, o ...Option) fmt.Stringer {
			return Figure20(s, frontierFoldsFor(s), o...)
		}},
		{Name: "21", Description: "end-to-end memory savings", Slow: true, Run: func(s Scale, o ...Option) fmt.Stringer { return Figure21(s, o...) }},
		{Name: "finding10", Description: "offlining speed at VM starts", Run: func(s Scale, o ...Option) fmt.Stringer { return Finding10(s, o...) }},
		{Name: "ablation-async", Description: "pool headroom vs blocked starts", Run: func(s Scale, o ...Option) fmt.Stringer { return AblationAsyncRelease(s, o...) }},
		{Name: "ablation-znuma", Description: "zNUMA vs interleaving", Run: func(Scale, ...Option) fmt.Stringer { return AblationZNUMA() }},
		{Name: "ablation-forest", Description: "forest size vs false positives", Run: func(Scale, ...Option) fmt.Stringer { return AblationForestSize(0) }},
		{Name: "ablation-colo", Description: "VMs sharing one CXL port", Run: func(Scale, ...Option) fmt.Stringer { return AblationCoLocation() }},
		{Name: "counter-audit", Description: "insensitivity counter ranking", Slow: true, Run: func(Scale, ...Option) fmt.Stringer { return CounterAudit(0) }},
	}
}

// foldsFor picks the Figure 17 cross-validation folds for a scale.
func foldsFor(s Scale) int {
	switch s {
	case ScaleQuick:
		return 6
	case ScalePaper:
		return 100
	default:
		return 20
	}
}

// samplesFor picks the Figure 17 samples-per-workload for a scale.
func samplesFor(s Scale) int {
	if s == ScaleQuick {
		return 2
	}
	return 3
}

// retrainFor picks the Figure 19 retrain cadence for a scale.
func retrainFor(s Scale) int {
	if s == ScaleQuick {
		return 14
	}
	return 7
}

// frontierFoldsFor picks the Figure 20 folds for a scale.
func frontierFoldsFor(s Scale) int {
	if s == ScaleQuick {
		return 4
	}
	return 20
}

// Lookup resolves comma-style experiment names against the registry.
func Lookup(names []string) ([]Definition, error) {
	reg := Registry()
	byName := make(map[string]Definition, len(reg))
	for _, d := range reg {
		byName[d.Name] = d
	}
	var out []Definition
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		d, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", n)
		}
		out = append(out, d)
	}
	return out, nil
}

// ParseScale maps a flag value to a Scale. The single-letter aliases
// S/M/L come from the sweep syntax.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quick", "s", "small":
		return ScaleQuick, nil
	case "full", "m", "medium":
		return ScaleFull, nil
	case "paper", "l", "large":
		return ScalePaper, nil
	case "tiny":
		return ScaleTiny, nil
	default:
		// Includes "": a silent default here would let a stray comma in
		// a -sweep expression schedule a fleet the user never asked for.
		return ScaleFull, fmt.Errorf("experiments: unknown scale %q (want quick, full, paper, or tiny)", s)
	}
}

// SweepSpec is a scenario matrix: the cross product of trace scales and
// allocation policies, every cell evaluated under the same engine run.
type SweepSpec struct {
	Scales   []Scale
	Policies []string
}

// sweepPolicies maps policy names to the uniform pool fraction each VM
// receives.
var sweepPolicies = map[string]float64{
	"pooled": 0.30, // the paper's mid-range pool provision
	"static": 0.15, // the Figure 21 strawman
	"none":   0,    // no pooling baseline
}

// ParseSweep parses a scenario-matrix expression like
//
//	scale=quick,full x policy=pooled,static
//
// Dimensions may appear in either order; scales accept the S/M/L
// aliases.
func ParseSweep(expr string) (SweepSpec, error) {
	var spec SweepSpec
	for _, part := range strings.Split(expr, "x") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, vals, ok := strings.Cut(part, "=")
		if !ok {
			return spec, fmt.Errorf("experiments: sweep dimension %q is not key=v1,v2", part)
		}
		switch strings.TrimSpace(strings.ToLower(key)) {
		case "scale":
			for _, v := range strings.Split(vals, ",") {
				sc, err := ParseScale(v)
				if err != nil {
					return spec, err
				}
				spec.Scales = append(spec.Scales, sc)
			}
		case "policy":
			for _, v := range strings.Split(vals, ",") {
				v = strings.TrimSpace(strings.ToLower(v))
				if _, ok := sweepPolicies[v]; !ok {
					return spec, fmt.Errorf("experiments: unknown policy %q (want pooled, static, or none)", v)
				}
				spec.Policies = append(spec.Policies, v)
			}
		default:
			return spec, fmt.Errorf("experiments: unknown sweep dimension %q (want scale or policy)", key)
		}
	}
	if len(spec.Scales) == 0 {
		spec.Scales = []Scale{ScaleQuick}
	}
	if len(spec.Policies) == 0 {
		spec.Policies = []string{"pooled", "static"}
	}
	return spec, nil
}

// SweepCell is one scenario of the matrix: a fleet at one scale packed
// once, provisioned under one policy.
type SweepCell struct {
	Scale           Scale
	Policy          string
	PoolSockets     int
	RequiredPct     float64
	SavingsPct      float64
	MeanStrandedPct float64
	VMs             int
}

// SweepResult is the evaluated scenario matrix.
type SweepResult struct {
	Cells []SweepCell
}

// RunSweep evaluates the scenario matrix. Each scale's fleet generates
// and packs once (fanned out per cluster); each (scale, policy) cell then
// computes its 16-socket pool requirement on its own engine shard. The
// serial experiment pipeline could never afford this cross product — the
// sweep exists because the engine makes cells embarrassingly parallel.
func RunSweep(spec SweepSpec, opts ...Option) SweepResult {
	rc := newRunConfig(opts)
	const poolSockets = 16

	var out SweepResult
	for _, scale := range spec.Scales {
		cfg := scale.genConfig(rc)
		traces := cluster.Generate(cfg)
		schedules := fanOut(rc, traces, func(i int, _ cluster.Trace, _ *stats.Rand) sim.Schedule {
			return sim.BuildSchedule(&traces[i])
		})
		series := fanOut(rc, schedules, func(i int, s sim.Schedule, _ *stats.Rand) []sim.StrandingSample {
			return sim.StrandingSeries(s)
		})
		var strandSum float64
		var strandN, vms int
		for i := range series {
			for _, s := range series[i] {
				strandSum += 100 * s.StrandedMemFrac
				strandN++
			}
			vms += len(traces[i].VMs)
		}
		meanStranded := 0.0
		if strandN > 0 {
			meanStranded = strandSum / float64(strandN)
		}

		cells := fanOut(rc, spec.Policies, func(_ int, policy string, _ *stats.Rand) SweepCell {
			frac := sweepPolicies[policy]
			var agg sim.Requirement
			for i := range schedules {
				agg.Add(sim.RequiredDRAM(schedules[i], poolSockets, sim.UniformPlan(len(traces[i].VMs), frac)))
			}
			return SweepCell{
				Scale:           scale,
				Policy:          policy,
				PoolSockets:     poolSockets,
				RequiredPct:     agg.RequiredPct(),
				SavingsPct:      agg.SavingsPct(),
				MeanStrandedPct: meanStranded,
				VMs:             vms,
			}
		})
		out.Cells = append(out.Cells, cells...)
	}
	return out
}

// String renders the matrix.
func (r SweepResult) String() string {
	var t table
	t.title("Scenario sweep: required DRAM at 16-socket pools")
	t.row("%-8s %-8s %10s %10s %10s %10s", "scale", "policy", "VMs", "stranded", "required", "savings")
	for _, c := range r.Cells {
		t.row("%-8s %-8s %10d %9.1f%% %9.1f%% %9.1f%%",
			c.Scale, c.Policy, c.VMs, c.MeanStrandedPct, c.RequiredPct, c.SavingsPct)
	}
	return t.String()
}

// SweepPolicyNames lists the accepted sweep policies.
func SweepPolicyNames() []string {
	names := make([]string, 0, len(sweepPolicies))
	for n := range sweepPolicies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
