package experiments

import (
	"pond/internal/guest"
	"pond/internal/host"
	"pond/internal/stats"
	"pond/internal/workload"
)

// workloadVideo fetches the Figure 15 video workload.
func workloadVideo() workload.Workload {
	w, ok := workload.ByName("P1-video")
	if !ok {
		panic("experiments: video workload missing")
	}
	return w
}

// Figure4Row summarizes one workload class at one latency level.
type Figure4Row struct {
	Class     workload.Class
	N         int
	MinPct    float64
	MedianPct float64
	MaxPct    float64
	Under5Pct int // workloads below 5% slowdown
	Over25Pct int // workloads above 25% slowdown
}

// Figure4Result is the per-class slowdown summary at both latency levels.
type Figure4Result struct {
	Ratio182 []Figure4Row
	Ratio222 []Figure4Row
	// PerWorkload carries the raw series for plotting (name, class,
	// slowdown at both levels).
	PerWorkload []Figure4Workload
}

// Figure4Workload is one bar of Figure 4.
type Figure4Workload struct {
	Name        string
	Class       workload.Class
	Slowdown182 float64
	Slowdown222 float64
}

// Figure4 evaluates all 158 workloads fully pool-backed at both levels.
func Figure4() Figure4Result {
	var r Figure4Result
	for _, w := range workload.Catalogue() {
		r.PerWorkload = append(r.PerWorkload, Figure4Workload{
			Name:        w.Name,
			Class:       w.Class,
			Slowdown182: w.SlowdownPct(workload.Ratio182, 1),
			Slowdown222: w.SlowdownPct(workload.Ratio222, 1),
		})
	}
	r.Ratio182 = classRows(workload.Ratio182)
	r.Ratio222 = classRows(workload.Ratio222)
	return r
}

func classRows(ratio float64) []Figure4Row {
	var rows []Figure4Row
	for _, c := range workload.Classes() {
		ws := workload.ByClass(c)
		var xs []float64
		row := Figure4Row{Class: c, N: len(ws)}
		for _, w := range ws {
			s := w.SlowdownPct(ratio, 1)
			xs = append(xs, s)
			if s < 5 {
				row.Under5Pct++
			}
			if s > 25 {
				row.Over25Pct++
			}
		}
		sum := stats.Summarize(xs)
		row.MinPct, row.MedianPct, row.MaxPct = sum.Min, sum.Median, sum.Max
		rows = append(rows, row)
	}
	return rows
}

// String renders the per-class table at both levels.
func (r Figure4Result) String() string {
	var t table
	t.title("Figure 4: slowdown under 182%/222% memory latency, by workload class")
	t.row("%-15s %3s | %23s | %23s", "class", "n", "182% min/med/max <5 >25", "222% min/med/max <5 >25")
	for i := range r.Ratio182 {
		a, b := r.Ratio182[i], r.Ratio222[i]
		t.row("%-15s %3d | %5.1f %5.1f %5.1f %2d %2d | %5.1f %5.1f %5.1f %2d %2d",
			a.Class, a.N,
			a.MinPct, a.MedianPct, a.MaxPct, a.Under5Pct, a.Over25Pct,
			b.MinPct, b.MedianPct, b.MaxPct, b.Under5Pct, b.Over25Pct)
	}
	return t.String()
}

// Figure5Result is the slowdown CDF at both levels with the paper's
// headline buckets.
type Figure5Result struct {
	CDF182 []stats.CDFPoint
	CDF222 []stats.CDFPoint

	Under1Pct182, Under5Pct182, Over25Pct182 float64
	Under1Pct222, Under5Pct222, Over25Pct222 float64
	Outliers222                              int
	MaxPct222                                float64
}

// Figure5 computes the CDFs of Figure 5.
func Figure5() Figure5Result {
	var s182, s222 []float64
	for _, w := range workload.Catalogue() {
		s182 = append(s182, w.SlowdownPct(workload.Ratio182, 1))
		s222 = append(s222, w.SlowdownPct(workload.Ratio222, 1))
	}
	r := Figure5Result{
		CDF182:       stats.CDF(s182),
		CDF222:       stats.CDF(s222),
		Under1Pct182: stats.FractionBelow(s182, 1),
		Under5Pct182: stats.FractionBelow(s182, 5),
		Over25Pct182: stats.FractionAbove(s182, 25),
		Under1Pct222: stats.FractionBelow(s222, 1),
		Under5Pct222: stats.FractionBelow(s222, 5),
		Over25Pct222: stats.FractionAbove(s222, 25),
		MaxPct222:    stats.Max(s222),
	}
	for _, x := range s222 {
		if x > 100 {
			r.Outliers222++
		}
	}
	return r
}

// String renders the Figure 5 headline numbers.
func (r Figure5Result) String() string {
	var t table
	t.title("Figure 5: CDF of slowdowns under CXL latency")
	t.row("182%%: <1%%: %4.1f%%   <5%%: %4.1f%%   >25%%: %4.1f%%",
		100*r.Under1Pct182, 100*r.Under5Pct182, 100*r.Over25Pct182)
	t.row("222%%: <1%%: %4.1f%%   <5%%: %4.1f%%   >25%%: %4.1f%%   outliers>100%%: %d (max %.0f%%)",
		100*r.Under1Pct222, 100*r.Under5Pct222, 100*r.Over25Pct222, r.Outliers222, r.MaxPct222)
	return t.String()
}

// Figure15Row is one internal workload's zNUMA traffic measurement.
type Figure15Row struct {
	Workload     string
	TrafficPct   float64
	UntouchedGB  float64
	BitmapPages  int
	TouchedPages int
}

// Figure15Result is the production zNUMA-effectiveness experiment.
type Figure15Result struct {
	Rows []Figure15Row
}

// Figure15 runs the four internal workloads on correctly sized zNUMA
// topologies (the local vNUMA node covers the footprint) and measures
// traffic to the zNUMA node plus the access-bit picture the hypervisor
// sees after its scans.
func Figure15() Figure15Result {
	var r Figure15Result
	for _, w := range workload.InternalWorkloads() {
		localGB := w.FootprintGB * 1.25
		poolGB := w.FootprintGB * 0.5
		topo := host.NewTopology(8, localGB, poolGB, 1.82)
		mm := guest.Boot(topo, guest.LocalPreferred)
		st, err := mm.RunWorkload(w, w.FootprintGB)
		must(err)

		// Hypervisor view: access bits over the VM's memory after the
		// workload touched its footprint.
		pt := host.NewPageTable(localGB + poolGB)
		pt.TouchRange(0, w.FootprintGB)
		r.Rows = append(r.Rows, Figure15Row{
			Workload:     w.Name,
			TrafficPct:   100 * st.ZNUMAFrac,
			UntouchedGB:  (localGB + poolGB) - w.FootprintGB,
			BitmapPages:  pt.Pages(),
			TouchedPages: int(float64(pt.Pages()) * (1 - pt.UntouchedFrac())),
		})
	}
	return r
}

// String renders the Figure 15 table.
func (r Figure15Result) String() string {
	var t table
	t.title("Figure 15: traffic to zNUMA under correct untouched-memory prediction")
	t.row("%-14s %10s %12s %16s", "workload", "traffic", "untouched", "access bitmap")
	for _, row := range r.Rows {
		t.row("%-14s %9.2f%% %9.0f GB %8d/%d pages",
			row.Workload, row.TrafficPct, row.UntouchedGB, row.TouchedPages, row.BitmapPages)
	}
	return t.String()
}

// Figure16Row is the slowdown distribution at one zNUMA sizing.
type Figure16Row struct {
	Label     string
	SpillFrac float64
	Summary   stats.Summary
}

// Figure16Result is the spill sensitivity study.
type Figure16Result struct {
	Rows []Figure16Row
}

// Figure16 reruns all 158 workloads under the paper's seven zNUMA sizes:
// all-local, correctly sized (0% spilled), and 10-100% of the footprint
// spilled. Run-to-run variation is modeled as a small noise term, as in
// the paper's violin plots.
func Figure16() Figure16Result {
	r := stats.NewRand(DefaultSeed)
	configs := []struct {
		label string
		spill float64
		local bool
	}{
		{"all local", 0, true},
		{"0% spilled", 0, false},
		{"10%", 0.10, false},
		{"20%", 0.20, false},
		{"40%", 0.40, false},
		{"60%", 0.60, false},
		{"75%", 0.75, false},
		{"100%", 1.00, false},
	}
	var out Figure16Result
	for _, cfg := range configs {
		var xs []float64
		for _, w := range workload.Catalogue() {
			var slow float64
			if cfg.local {
				slow = 0
			} else {
				slow = w.SpillSlowdown(workload.Ratio182, cfg.spill)
			}
			// Run-to-run variation: ±0.5% measurement noise.
			slow += 0.005 * r.NormFloat64()
			xs = append(xs, 100*slow)
		}
		out.Rows = append(out.Rows, Figure16Row{
			Label:     cfg.label,
			SpillFrac: cfg.spill,
			Summary:   stats.Summarize(xs),
		})
	}
	return out
}

// String renders the violin summaries.
func (r Figure16Result) String() string {
	var t table
	t.title("Figure 16: slowdown under different pool allocations (182% latency)")
	t.row("%-12s %8s %8s %8s %8s", "zNUMA size", "p25", "median", "p75", "max")
	for _, row := range r.Rows {
		t.row("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%",
			row.Label, row.Summary.P25, row.Summary.Median, row.Summary.P75, row.Summary.Max)
	}
	return t.String()
}
