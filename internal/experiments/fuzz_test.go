package experiments

import "testing"

// FuzzParseSweep guards the -sweep scenario-matrix parser: malformed
// expressions must error, never panic, and accepted matrices must hold
// only known scales and policies (no silent coercion). Seeds run on
// every `go test`; the CI fuzz job explores further.
func FuzzParseSweep(f *testing.F) {
	for _, seed := range []string{
		"",
		"scale=S,M,L x policy=pooled,static",
		"scale=quick,full x policy=pooled,static",
		"policy=none",
		"scale=tiny",
		"scale=bogus",
		"policy=bogus",
		"flavor=mild",
		"scale=",
		"scale",
		"x",
		"x x x",
		"scale=S x scale=M",
		"scale=S,,M",
		"policy=pooled x policy=static",
		"SCALE=S",
		" scale = s ",
	} {
		f.Add(seed)
	}
	valid := map[Scale]bool{ScaleTiny: true, ScaleQuick: true, ScaleFull: true, ScalePaper: true}
	f.Fuzz(func(t *testing.T, expr string) {
		spec, err := ParseSweep(expr)
		if err != nil {
			return
		}
		if len(spec.Scales) == 0 || len(spec.Policies) == 0 {
			t.Fatalf("accepted %q with an empty dimension: %+v", expr, spec)
		}
		for _, sc := range spec.Scales {
			if !valid[sc] {
				t.Fatalf("accepted unknown scale %v from %q", sc, expr)
			}
		}
		for _, p := range spec.Policies {
			if p != "pooled" && p != "static" && p != "none" {
				t.Fatalf("accepted unknown policy %q from %q", p, expr)
			}
		}
	})
}
