// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §6). Each FigureN function returns a structured result
// with a String method that prints the same rows or series the paper
// reports; the cmd/ tools and the repository's benchmarks are thin
// wrappers around these entry points.
//
// Scale: every trace-driven experiment takes a Scale that controls how
// many clusters and days the synthetic fleet spans. ScaleQuick keeps unit
// tests and benchmarks fast; ScalePaper approximates the paper's 100
// clusters x 75 days.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"pond/internal/cluster"
	"pond/internal/engine"
	"pond/internal/stats"
)

// DefaultSeed is the fleet-wide default seed; every experiment derives
// its own stream from it, so the whole evaluation is reproducible.
const DefaultSeed = 42

// RunConfig carries the cross-cutting knobs of an experiment run. Every
// figure pipeline shards its work (per cluster, per fold, per retrain
// day) over the engine's worker pool; Workers bounds that pool and Seed
// roots every derived stream. Results are byte-identical for any worker
// count.
type RunConfig struct {
	// Workers bounds pipeline parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Seed roots all generation and training streams (DefaultSeed when
	// unset through options).
	Seed int64
}

// Option tunes how an experiment pipeline runs.
type Option func(*RunConfig)

// WithWorkers bounds the worker pool (1 forces serial execution).
func WithWorkers(n int) Option { return func(rc *RunConfig) { rc.Workers = n } }

// WithSeed replaces DefaultSeed as the root of every derived stream.
func WithSeed(seed int64) Option { return func(rc *RunConfig) { rc.Seed = seed } }

// newRunConfig folds options over the defaults.
func newRunConfig(opts []Option) RunConfig {
	rc := RunConfig{Seed: DefaultSeed}
	for _, o := range opts {
		o(&rc)
	}
	return rc
}

// genConfig returns the scale's generator configuration under rc.
func (s Scale) genConfig(rc RunConfig) cluster.GenConfig {
	cfg := s.GenConfig()
	cfg.Seed = rc.Seed
	cfg.Workers = rc.Workers
	return cfg
}

// fanOut runs fn over every item on the engine's worker pool and returns
// the results in item order — the deterministic fan-out/merge primitive
// behind each figure pipeline. fn must not mutate state shared across
// items; the rng it receives is the item's own fnv(seed, i)-derived
// stream.
func fanOut[T, R any](rc RunConfig, items []T, fn func(i int, item T, rng *stats.Rand) R) []R {
	out, err := engine.Map(context.Background(), items,
		engine.Options{Workers: rc.Workers, Seed: rc.Seed},
		func(i int, item T, rng *stats.Rand) (R, error) {
			return fn(i, item, rng), nil
		})
	if err != nil {
		panic("experiments: " + err.Error()) // unreachable: jobs cannot fail
	}
	return out
}

// Scale selects the size of trace-driven experiments.
type Scale int

// Available scales.
const (
	// ScaleQuick: a handful of clusters, enough for shape checks.
	ScaleQuick Scale = iota
	// ScaleFull: the default evaluation scale (fraction of the paper's
	// fleet, same distributions).
	ScaleFull
	// ScalePaper: 100 clusters over 75 days, as in the paper. Slow.
	ScalePaper
	// ScaleTiny: the smallest fleet that still exercises every pipeline
	// stage; the determinism tests and `go test -short` run at it.
	ScaleTiny
)

// GenConfig returns the trace-generator configuration for the scale.
func (s Scale) GenConfig() cluster.GenConfig {
	cfg := cluster.DefaultGenConfig()
	cfg.Seed = DefaultSeed
	switch s {
	case ScaleTiny:
		cfg.Clusters = 2
		cfg.Days = 12
		cfg.ServersPerCluster = 6
	case ScaleQuick:
		cfg.Clusters = 6
		cfg.Days = 25
		cfg.ServersPerCluster = 12
	case ScalePaper:
		cfg.Clusters = 100
		cfg.Days = 75
		cfg.ServersPerCluster = 16
	default: // ScaleFull
		cfg.Clusters = 24
		cfg.Days = 75
		cfg.ServersPerCluster = 16
	}
	return cfg
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleQuick:
		return "quick"
	case ScalePaper:
		return "paper"
	default:
		return "full"
	}
}

// table is a tiny fixed-width text-table builder shared by the result
// renderers.
type table struct {
	b strings.Builder
}

func (t *table) title(s string) {
	t.b.WriteString(s)
	t.b.WriteString("\n")
	t.b.WriteString(strings.Repeat("-", len(s)))
	t.b.WriteString("\n")
}

func (t *table) row(format string, args ...any) {
	fmt.Fprintf(&t.b, format, args...)
	t.b.WriteString("\n")
}

func (t *table) String() string { return t.b.String() }
