// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §6). Each FigureN function returns a structured result
// with a String method that prints the same rows or series the paper
// reports; the cmd/ tools and the repository's benchmarks are thin
// wrappers around these entry points.
//
// Scale: every trace-driven experiment takes a Scale that controls how
// many clusters and days the synthetic fleet spans. ScaleQuick keeps unit
// tests and benchmarks fast; ScalePaper approximates the paper's 100
// clusters x 75 days.
package experiments

import (
	"fmt"
	"strings"

	"pond/internal/cluster"
)

// DefaultSeed is the fleet-wide default seed; every experiment derives
// its own stream from it, so the whole evaluation is reproducible.
const DefaultSeed = 42

// Scale selects the size of trace-driven experiments.
type Scale int

// Available scales.
const (
	// ScaleQuick: a handful of clusters, enough for shape checks.
	ScaleQuick Scale = iota
	// ScaleFull: the default evaluation scale (fraction of the paper's
	// fleet, same distributions).
	ScaleFull
	// ScalePaper: 100 clusters over 75 days, as in the paper. Slow.
	ScalePaper
)

// GenConfig returns the trace-generator configuration for the scale.
func (s Scale) GenConfig() cluster.GenConfig {
	cfg := cluster.DefaultGenConfig()
	cfg.Seed = DefaultSeed
	switch s {
	case ScaleQuick:
		cfg.Clusters = 6
		cfg.Days = 25
		cfg.ServersPerCluster = 12
	case ScalePaper:
		cfg.Clusters = 100
		cfg.Days = 75
		cfg.ServersPerCluster = 16
	default: // ScaleFull
		cfg.Clusters = 24
		cfg.Days = 75
		cfg.ServersPerCluster = 16
	}
	return cfg
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScalePaper:
		return "paper"
	default:
		return "full"
	}
}

// table is a tiny fixed-width text-table builder shared by the result
// renderers.
type table struct {
	b strings.Builder
}

func (t *table) title(s string) {
	t.b.WriteString(s)
	t.b.WriteString("\n")
	t.b.WriteString(strings.Repeat("-", len(s)))
	t.b.WriteString("\n")
}

func (t *table) row(format string, args ...any) {
	fmt.Fprintf(&t.b, format, args...)
	t.b.WriteString("\n")
}

func (t *table) String() string { return t.b.String() }
