package experiments

import (
	"math"
	"strings"
	"testing"

	"pond/internal/predict"
)

func TestScaleConfigs(t *testing.T) {
	if ScaleQuick.GenConfig().Clusters >= ScaleFull.GenConfig().Clusters {
		t.Fatal("quick scale should be smaller than full")
	}
	if ScalePaper.GenConfig().Clusters != 100 || ScalePaper.GenConfig().Days != 75 {
		t.Fatal("paper scale must match the paper's dataset")
	}
	for _, s := range []Scale{ScaleQuick, ScaleFull, ScalePaper} {
		if s.String() == "" {
			t.Fatal("scale name empty")
		}
	}
}

func TestFigure2aShape(t *testing.T) {
	r := Figure2a(ScaleQuick)
	if len(r.Buckets) < 4 {
		t.Fatalf("only %d buckets", len(r.Buckets))
	}
	lo, hi := r.Buckets[0], r.Buckets[len(r.Buckets)-1]
	if hi.MeanStranded <= lo.MeanStranded {
		t.Errorf("stranding not growing with utilization: %.1f%% -> %.1f%%",
			lo.MeanStranded, hi.MeanStranded)
	}
	// §3.1 headline magnitudes: single-digit means at moderate
	// utilization, p95 tail well above the mean.
	for _, b := range r.Buckets {
		if b.ScheduledPct == 75 && (b.MeanStranded < 2 || b.MeanStranded > 12) {
			t.Errorf("mean stranding at 75%% = %.1f%%, want single digits (§3.1)", b.MeanStranded)
		}
		if b.P95Stranded < b.MeanStranded {
			t.Errorf("bucket %d%%: p95 below mean", b.ScheduledPct)
		}
	}
	if !strings.Contains(r.String(), "Figure 2a") {
		t.Error("missing title")
	}
}

func TestFigure2bIncludesShockedRack(t *testing.T) {
	r := Figure2b(ScaleQuick)
	if len(r.Racks) == 0 || len(r.Racks) > 8 {
		t.Fatalf("racks = %d", len(r.Racks))
	}
	if r.Racks[0].ShockDay == 0 {
		t.Error("shocked racks should sort first")
	}
	// The shocked rack's stranding must rise after the shock.
	rack := r.Racks[0]
	pre, post := 0.0, 0.0
	for d, v := range rack.Stranded {
		if d < rack.ShockDay {
			pre += v
		} else {
			post += v
		}
	}
	pre /= float64(rack.ShockDay)
	post /= float64(len(rack.Stranded) - rack.ShockDay)
	if post <= pre {
		t.Errorf("shock did not raise stranding: %.1f%% -> %.1f%%", pre, post)
	}
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3(ScaleQuick)
	if len(r.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(r.Rows))
	}
	req := map[[2]int]float64{}
	for _, row := range r.Rows {
		req[[2]int{int(row.PoolFrac * 100), row.PoolSockets}] = row.RequiredPct
	}
	// Bigger pools and bigger fractions require less DRAM.
	if !(req[[2]int{50, 8}] < req[[2]int{50, 2}] && req[[2]int{50, 32}] < req[[2]int{50, 8}]) {
		t.Errorf("required DRAM not falling with pool size: %v", req)
	}
	if !(req[[2]int{50, 16}] < req[[2]int{30, 16}] && req[[2]int{30, 16}] < req[[2]int{10, 16}]) {
		t.Errorf("required DRAM not falling with pool fraction: %v", req)
	}
	// Diminishing returns: 8->32 improves more than 32->64.
	if (req[[2]int{50, 8}] - req[[2]int{50, 32}]) < (req[[2]int{50, 32}] - req[[2]int{50, 64}]) {
		t.Errorf("no diminishing returns: %v", req)
	}
	// 50% at 32 sockets: ~10% savings (paper: 12%).
	if s := 100 - req[[2]int{50, 32}]; s < 5 || s > 18 {
		t.Errorf("50%%@32 savings = %.1f%%, want ~10%%", s)
	}
}

func TestFigure4Renders(t *testing.T) {
	r := Figure4()
	if len(r.PerWorkload) != 158 {
		t.Fatalf("workloads = %d", len(r.PerWorkload))
	}
	if len(r.Ratio182) != 9 || len(r.Ratio222) != 9 {
		t.Fatalf("class rows = %d/%d", len(r.Ratio182), len(r.Ratio222))
	}
	s := r.String()
	for _, want := range []string{"GAPBS", "Proprietary", "SPLASH2x"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFigure5HeadlineNumbers(t *testing.T) {
	r := Figure5()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"<1% at 182", r.Under1Pct182, 0.26},
		{"<5% at 182", r.Under5Pct182, 0.43},
		{">25% at 182", r.Over25Pct182, 0.21},
		{"<1% at 222", r.Under1Pct222, 0.23},
		{">25% at 222", r.Over25Pct222, 0.37},
	}
	for _, c := range checks {
		if c.got < c.want-0.05 || c.got > c.want+0.05 {
			t.Errorf("%s = %.3f, want %.2f±0.05", c.name, c.got, c.want)
		}
	}
	if r.Outliers222 != 3 {
		t.Errorf("outliers = %d, want 3", r.Outliers222)
	}
}

func TestFigure6MatchesGenoaAt16(t *testing.T) {
	r := Figure6()
	for _, b := range r.Budgets {
		if b.Sockets == 16 && (b.PCIeLanes != 128 || b.DDR5Channels != 12) {
			t.Errorf("16-socket budget = %+v", b)
		}
	}
	if !strings.Contains(r.String(), "Genoa") {
		t.Error("missing reference point")
	}
}

func TestFigure7LatencyLevels(t *testing.T) {
	r := Figure7()
	if r.Paths[0].TotalNanos() != 85 {
		t.Errorf("local = %v ns", r.Paths[0].TotalNanos())
	}
	if r.Paths[1].TotalNanos() != 155 || r.Paths[2].TotalNanos() != 180 {
		t.Errorf("8/16-socket = %v/%v ns", r.Paths[1].TotalNanos(), r.Paths[2].TotalNanos())
	}
}

func TestFigure8ReductionAroundOneThird(t *testing.T) {
	r := Figure8()
	for _, row := range r.Rows {
		if row.Sockets == 8 || row.Sockets == 16 {
			if row.ReductionPct < 25 || row.ReductionPct > 45 {
				t.Errorf("%d sockets reduction = %.0f%%, want ~33%%", row.Sockets, row.ReductionPct)
			}
		}
	}
}

func TestFigure9Walkthrough(t *testing.T) {
	r := Figure9()
	if len(r.Events) < 5 {
		t.Fatalf("events = %d", len(r.Events))
	}
	if r.Events[0].T != 0 || r.Events[len(r.Events)-1].T != 4 {
		t.Errorf("walkthrough should span t=0..4")
	}
	// One slice stays with VM1, one moved to H2: 6 of 8 GB free.
	if r.FreeGBAfter != 6 {
		t.Errorf("free = %d GB, want 6", r.FreeGBAfter)
	}
}

func TestFigure10TopologyRendering(t *testing.T) {
	r := Figure10()
	s := r.String()
	for _, want := range []string{"available: 2 nodes", "node 1 cpus:\n", "node distances"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if _, hasZ := r.Topology.ZNUMANode(); !hasZ {
		t.Error("no zNUMA node in Figure 10 topology")
	}
}

func TestFigure15TrafficBand(t *testing.T) {
	r := Figure15()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Figure 15: 0.06% - 0.38%.
		if row.TrafficPct < 0.05 || row.TrafficPct > 0.4 {
			t.Errorf("%s traffic = %.3f%%, want within [0.06, 0.38]", row.Workload, row.TrafficPct)
		}
		if row.TouchedPages <= 0 || row.TouchedPages > row.BitmapPages {
			t.Errorf("%s bitmap inconsistent", row.Workload)
		}
	}
}

func TestFigure16SpillProgression(t *testing.T) {
	r := Figure16()
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Correct prediction ≈ all-local (medians within noise).
	if diff := r.Rows[1].Summary.Median - r.Rows[0].Summary.Median; diff > 1 {
		t.Errorf("0%%-spill median %.2f far above all-local %.2f",
			r.Rows[1].Summary.Median, r.Rows[0].Summary.Median)
	}
	// Slowdown grows with spill.
	for i := 2; i < len(r.Rows); i++ {
		if r.Rows[i].Summary.P75 < r.Rows[i-1].Summary.P75-1 {
			t.Errorf("p75 fell from %s to %s", r.Rows[i-1].Label, r.Rows[i].Label)
		}
	}
	// Full spill: worst workloads ~50%+ (paper: up to 50% at 100%).
	if max := r.Rows[7].Summary.Max; max < 40 {
		t.Errorf("max slowdown at full spill = %.1f%%, want >= 40%%", max)
	}
}

func TestFigure17ModelOrdering(t *testing.T) {
	r := Figure17(4, 2)
	var rf, db, mb float64
	for i := range r.RandomForest {
		rf += r.RandomForest[i].FPRate
		db += r.DRAMBound[i].FPRate
		mb += r.MemoryBound[i].FPRate
	}
	if rf > db || db > mb {
		t.Errorf("model ordering violated: RF %.4f, DRAM %.4f, mem %.4f", rf, db, mb)
	}
}

func TestFigure18GBMBeatsFixed(t *testing.T) {
	r := Figure18(ScaleQuick)
	gbm := opNear(r.GBM, 0.20)
	fixed := opNear(r.Fixed, 0.20)
	if gbm >= fixed {
		t.Errorf("GBM OP %.4f not below fixed %.4f at 20%% UM", gbm, fixed)
	}
	if fixed/maxf(gbm, 0.002) < 3 {
		t.Errorf("GBM advantage %.1fx, want >= 3x (paper: 5x)", fixed/maxf(gbm, 0.002))
	}
}

func TestFigure19TracksTarget(t *testing.T) {
	// The rolling retrain is the most expensive figure; -short runs it on
	// the tiny fleet with a sparser cadence (noisier eval windows, hence
	// the looser overprediction bound).
	scale, retrain, opBound := ScaleQuick, 14, 12.0
	if testing.Short() {
		scale, retrain, opBound = ScaleTiny, 28, 20.0
	}
	r := Figure19(scale, retrain)
	if len(r.Days) < 3 {
		t.Fatalf("days = %d", len(r.Days))
	}
	for _, d := range r.Days {
		if d.OPPct > opBound {
			t.Errorf("day %d OP = %.1f%%, far above target", d.Day, d.OPPct)
		}
		if d.AvgUMPct < 5 || d.AvgUMPct > 60 {
			t.Errorf("day %d avg UM = %.1f%% implausible", d.Day, d.AvgUMPct)
		}
	}
}

func TestFigure20FrontierMonotone(t *testing.T) {
	r := Figure20(ScaleQuick, 4)
	if len(r.At182) < 3 || len(r.At222) < 3 {
		t.Fatalf("frontier sizes %d/%d", len(r.At182), len(r.At222))
	}
	for i := 1; i < len(r.At182); i++ {
		if r.At182[i].PoolDRAMPct < r.At182[i-1].PoolDRAMPct-1e-9 {
			t.Error("182 frontier not monotone")
		}
	}
	// At matched misprediction budgets the 182% level admits at least
	// as much pool DRAM as 222% (Finding 8).
	if r.At182[len(r.At182)-1].PoolDRAMPct < r.At222[len(r.At222)-1].PoolDRAMPct-3 {
		t.Errorf("182%% frontier (%.1f%%) below 222%% (%.1f%%)",
			r.At182[len(r.At182)-1].PoolDRAMPct, r.At222[len(r.At222)-1].PoolDRAMPct)
	}
}

func TestFigure21PolicyOrdering(t *testing.T) {
	if testing.Short() {
		// Tiny fleets are too noisy for the policy-ordering assertions;
		// -short only checks the end-to-end pipeline shape.
		r := Figure21(ScaleTiny)
		if len(r.Rows) != 15 {
			t.Fatalf("rows = %d, want 15", len(r.Rows))
		}
		if r.Pond182Stats.VMs == 0 || r.Pond222Stats.VMs == 0 {
			t.Fatal("pipelines planned no VMs")
		}
		return
	}
	r := Figure21(ScaleQuick)
	req := map[string]map[int]float64{}
	for _, row := range r.Rows {
		if req[row.Policy] == nil {
			req[row.Policy] = map[int]float64{}
		}
		req[row.Policy][row.PoolSockets] = row.RequiredPct
	}
	// Finding 9 at 16 sockets: Pond@182 saves most, then Pond@222, then
	// static.
	p182 := req["Pond@182%"][16]
	p222 := req["Pond@222%"][16]
	static := req["Static 15%"][16]
	if !(p182 < p222 && p222 < static+0.5) {
		t.Errorf("policy ordering at 16 sockets: Pond@182 %.1f, Pond@222 %.1f, static %.1f",
			p182, p222, static)
	}
	if s := 100 - p182; s < 3 || s > 15 {
		t.Errorf("Pond@182 savings at 16 sockets = %.1f%%, want mid single digits+", s)
	}
	// Savings grow with pool size for Pond.
	if req["Pond@182%"][32] > req["Pond@182%"][8] {
		t.Error("Pond savings not growing with pool size")
	}
	// The pipeline respects the misprediction budget (TP=98% + 1% QoS).
	if r.Pond182Stats.MispredictFrac() > 0.03 {
		t.Errorf("mispredictions = %.3f, want <= 0.03", r.Pond182Stats.MispredictFrac())
	}
	if r.Pond222Stats.MispredictFrac() > 0.03 {
		t.Errorf("222 mispredictions = %.3f", r.Pond222Stats.MispredictFrac())
	}
}

func TestFinding10BufferSatisfied(t *testing.T) {
	r := Finding10(ScaleQuick)
	if r.Starts < 500 {
		t.Fatalf("starts = %d, too few to judge", r.Starts)
	}
	// Finding 10: offlining below 1 GB/s for 99.99% of starts, 10 GB/s
	// for 99.999%.
	if r.P9999RateGBs > 1 {
		t.Errorf("p99.99 required offline rate = %.2f GB/s, want < 1", r.P9999RateGBs)
	}
	if r.P99999RateGBs > 10 {
		t.Errorf("p99.999 = %.2f GB/s, want < 10", r.P99999RateGBs)
	}
}

func TestAblationZNUMA(t *testing.T) {
	r := AblationZNUMA()
	if r.AdvantageFactor < 10 {
		t.Errorf("zNUMA advantage = %.0fx, want >= 10x", r.AdvantageFactor)
	}
}

func TestAblationAsyncRelease(t *testing.T) {
	r := AblationAsyncRelease(ScaleQuick)
	if len(r.BufferFactor) != 4 {
		t.Fatalf("rows = %d", len(r.BufferFactor))
	}
	// Tighter pools must not reduce fallbacks.
	if r.FallbackFrac[0] < r.FallbackFrac[len(r.FallbackFrac)-1] {
		t.Error("fallbacks should grow as the pool shrinks")
	}
}

func TestAblationForestSize(t *testing.T) {
	r := AblationForestSize(2)
	if len(r.Trees) != 3 {
		t.Fatalf("points = %d", len(r.Trees))
	}
	// More trees should not be dramatically worse.
	if r.MeanFP[2] > r.MeanFP[0]+0.05 {
		t.Errorf("60 trees FP %.3f much worse than 5 trees %.3f", r.MeanFP[2], r.MeanFP[0])
	}
}

// opNear returns the overprediction rate of the curve point whose
// average untouched memory is closest to target.
func opNear(pts []predict.UMPoint, target float64) float64 {
	best, bestDist := 1.0, math.Inf(1)
	for _, p := range pts {
		if d := math.Abs(p.AvgUM - target); d < bestDist {
			bestDist = d
			best = p.OPRate
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestCounterAuditRanksDRAMBoundFirst(t *testing.T) {
	r := CounterAudit(5)
	if len(r.Top) != 5 {
		t.Fatalf("top = %d", len(r.Top))
	}
	// Finding 5: DRAM-bound carries the most signal.
	if r.Top[0].Counter != "tma_dram_bound" && r.Top[0].Counter != "llc_mpki" {
		t.Errorf("top counter = %s, want a DRAM-latency signal", r.Top[0].Counter)
	}
	if !strings.Contains(r.String(), "tma_dram_bound") {
		t.Error("rendering missing dram-bound")
	}
}

func TestAblationCoLocationKnee(t *testing.T) {
	r := AblationCoLocation()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Extra slowdown must grow with co-location and be negligible for a
	// single VM (the provisioning argument of §2).
	if r.Rows[0].MeanExtraSlowPct > 1 {
		t.Errorf("single VM extra slowdown = %.2f%%, want ~0", r.Rows[0].MeanExtraSlowPct)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MeanExtraSlowPct < r.Rows[i-1].MeanExtraSlowPct-0.5 {
			t.Errorf("extra slowdown fell from %d to %d VMs", r.Rows[i-1].VMs, r.Rows[i].VMs)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	if last.MeanExtraSlowPct < 10 {
		t.Errorf("16 VMs on one port slow only %.1f%%; oversubscription should hurt", last.MeanExtraSlowPct)
	}
	if last.PortUtilization <= r.Rows[0].PortUtilization {
		t.Error("utilization should grow with co-location")
	}
}
