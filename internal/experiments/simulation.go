package experiments

import (
	"sort"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/emc"
	"pond/internal/pool"
	"pond/internal/predict"
	"pond/internal/sim"
	"pond/internal/stats"
	"pond/internal/workload"
)

// Figure2aResult is the stranding-vs-utilization analysis.
type Figure2aResult struct {
	Buckets  []sim.UtilBucket
	Clusters int
	Days     int
}

// Figure2a generates the fleet, packs every cluster, and buckets the
// cluster-day stranding observations by scheduled-core percentage. Each
// cluster packs on its own engine shard; the bucket merge runs serially
// in cluster order.
func Figure2a(scale Scale, opts ...Option) Figure2aResult {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	traces := cluster.Generate(cfg)
	series := fanOut(rc, traces, func(i int, _ cluster.Trace, _ *stats.Rand) []sim.StrandingSample {
		return sim.StrandingSeries(sim.BuildSchedule(&traces[i]))
	})
	return Figure2aResult{
		Buckets:  sim.BucketStranding(series),
		Clusters: cfg.Clusters,
		Days:     cfg.Days,
	}
}

// String renders the Figure 2a table.
func (r Figure2aResult) String() string {
	var t table
	t.title("Figure 2a: stranding vs scheduled CPU cores")
	t.row("(%d clusters x %d days)", r.Clusters, r.Days)
	t.row("%-10s %6s %8s %8s %8s %8s", "scheduled", "days", "mean", "p5", "p95", "max")
	for _, b := range r.Buckets {
		t.row("%8d%% %6d %7.1f%% %7.1f%% %7.1f%% %7.1f%%",
			b.ScheduledPct, b.N, b.MeanStranded, b.P5Stranded, b.P95Stranded, b.MaxStranded)
	}
	return t.String()
}

// Figure2bRack is one rack's daily stranding series.
type Figure2bRack struct {
	Name     string
	ShockDay int
	Stranded []float64 // percent per day
}

// Figure2bResult is the stranding-over-time view.
type Figure2bResult struct {
	Racks []Figure2bRack
}

// Figure2b picks 8 racks (clusters), preferring ones with a workload
// shock, and reports their daily stranding. Racks pack in parallel.
func Figure2b(scale Scale, opts ...Option) Figure2bResult {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	traces := cluster.Generate(cfg)
	sort.SliceStable(traces, func(i, j int) bool {
		return traces[i].ShockDay > traces[j].ShockDay
	})
	if len(traces) > 8 {
		traces = traces[:8]
	}
	racks := fanOut(rc, traces, func(i int, _ cluster.Trace, _ *stats.Rand) Figure2bRack {
		samples := sim.StrandingSeries(sim.BuildSchedule(&traces[i]))
		rack := Figure2bRack{Name: traces[i].Name, ShockDay: traces[i].ShockDay}
		for _, s := range samples {
			rack.Stranded = append(rack.Stranded, 100*s.StrandedMemFrac)
		}
		return rack
	})
	return Figure2bResult{Racks: racks}
}

// String renders a compact weekly view per rack.
func (r Figure2bResult) String() string {
	var t table
	t.title("Figure 2b: stranding over time (8 racks, weekly means)")
	for _, rack := range r.Racks {
		weeks := ""
		for w := 0; w+7 <= len(rack.Stranded); w += 7 {
			weeks += sprintf(" %5.1f", stats.Mean(rack.Stranded[w:w+7]))
		}
		shock := ""
		if rack.ShockDay > 0 {
			shock = sprintf("  (shock day %d)", rack.ShockDay)
		}
		t.row("%-12s%s%s", rack.Name, weeks, shock)
	}
	return t.String()
}

// Figure3Row is required DRAM for one (pool size, fixed fraction) cell.
type Figure3Row struct {
	PoolSockets int
	PoolFrac    float64
	RequiredPct float64
}

// Figure3Result is the pool-size impact table.
type Figure3Result struct {
	Rows []Figure3Row
}

// Figure3 computes required DRAM across pool sizes at fixed 10/30/50%
// pool allocations. Packing fans out per cluster; each (fraction, pool
// size) cell of the table is then its own engine shard aggregating the
// clusters in deterministic order.
func Figure3(scale Scale, opts ...Option) Figure3Result {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	traces := cluster.Generate(cfg)
	schedules := fanOut(rc, traces, func(i int, _ cluster.Trace, _ *stats.Rand) sim.Schedule {
		return sim.BuildSchedule(&traces[i])
	})
	type cell struct {
		frac float64
		k    int
	}
	var cells []cell
	for _, frac := range []float64{0.10, 0.30, 0.50} {
		for _, k := range []int{2, 8, 16, 32, 64} {
			cells = append(cells, cell{frac: frac, k: k})
		}
	}
	rows := fanOut(rc, cells, func(_ int, c cell, _ *stats.Rand) Figure3Row {
		var agg sim.Requirement
		for i := range schedules {
			plan := sim.UniformPlan(len(traces[i].VMs), c.frac)
			agg.Add(sim.RequiredDRAM(schedules[i], c.k, plan))
		}
		return Figure3Row{PoolSockets: c.k, PoolFrac: c.frac, RequiredPct: agg.RequiredPct()}
	})
	return Figure3Result{Rows: rows}
}

// String renders the Figure 3 table.
func (r Figure3Result) String() string {
	var t table
	t.title("Figure 3: required DRAM vs pool size at fixed pool percentages")
	t.row("%-10s %8s %12s", "pool frac", "sockets", "required")
	for _, row := range r.Rows {
		t.row("%9.0f%% %8d %11.1f%%", 100*row.PoolFrac, row.PoolSockets, row.RequiredPct)
	}
	return t.String()
}

// Figure21Row is one policy's required DRAM at one pool size.
type Figure21Row struct {
	Policy      string
	PoolSockets int
	RequiredPct float64
}

// Figure21Result is the end-to-end savings evaluation.
type Figure21Result struct {
	Rows []Figure21Row
	// Stats per policy (aggregated over clusters).
	Pond182Stats core.PlanStats
	Pond222Stats core.PlanStats
}

// trainedPipeline builds a Pond pipeline whose models were trained on an
// independent fleet (different seed), choosing the Eq. (1) operating
// point for PDM=5%, TP=98%.
// umTraining is the latency-level-independent half of pipeline training:
// the training fleet, its dataset, and the untouched-memory GBM. Both
// latency levels share one instance (the UM model does not depend on the
// pool ratio), halving Figure 21's training cost.
type umTraining struct {
	days int
	ds   predict.UMDataset
	gbm  *predict.GBMUntouched
}

func trainUM(scale Scale, rc RunConfig) umTraining {
	trainCfg := scale.genConfig(rc)
	trainCfg.Seed = rc.Seed + 1000
	trainTraces := cluster.Generate(trainCfg)
	ds := predict.BuildUMDataset(trainTraces)
	return umTraining{
		days: trainCfg.Days,
		ds:   ds,
		gbm:  predict.TrainGBMUntouched(ds.X, ds.TrueUntouched, 0.05, rc.Seed),
	}
}

func trainedPipeline(um umTraining, ratio float64, rc RunConfig) *core.Pipeline {
	ds, gbm := um.ds, um.gbm

	// Sensitivity model and curves for the optimizer.
	sensDS := predict.BuildSensitivityDataset(ratio, 0.05, 3, rc.Seed)
	rf := predict.TrainForest(sensDS.X, sensDS.Insensitive, rc.Seed)
	sensCurve := predict.SensitivityCurve(predict.KindRandomForest, ratio, 0.05, 6, 2, rc.Seed)

	// UM curve with margins tracked so the chosen point is realizable.
	// Serial on purpose: trainedPipeline already runs inside an engine
	// shard (one per latency ratio), and a nested fan-out would exceed
	// the configured Workers bound.
	margins := predict.DefaultMargins()
	eval := ds.Eval(ds.SplitAtDay(um.days*2/3), ds.Len())
	umPoints := make([]predict.UMPoint, len(margins))
	for i, m := range margins {
		umPoints[i] = eval.Evaluate(gbm.WithMargin(m))
	}

	exceed := predict.ExceedProbGivenSpill(ratio, 0.05, predict.TypicalOverpredictionSpill)
	choice, ok := predict.Optimize(sensCurve, umPoints, 0.98, exceed, 0.01)
	cfg := core.DefaultConfig()
	cfg.Ratio = ratio
	chosenUM := gbm
	if ok {
		cfg.InsensScoreThreshold = predict.ThresholdForLabelRate(
			predict.DatasetScores(rf, sensDS), choice.Sens.InsensitiveFrac)
		for i, p := range umPoints {
			if p == choice.UM {
				chosenUM = gbm.WithMargin(margins[i])
				break
			}
		}
	}
	return core.NewPipeline(cfg, rf, chosenUM, nil)
}

// Figure21 runs the full pipeline — trace generation, packing, model
// training, scheduling decisions, QoS mitigation — and reports required
// DRAM versus pool size for Pond at both latency levels and the static
// 15% strawman.
func Figure21(scale Scale, opts ...Option) Figure21Result {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	traces := cluster.Generate(cfg)
	schedules := fanOut(rc, traces, func(i int, _ cluster.Trace, _ *stats.Rand) sim.Schedule {
		return sim.BuildSchedule(&traces[i])
	})

	// The UM model is shared; the two latency levels then train their
	// sensitivity models on independent shards.
	um := trainUM(scale, rc)
	pipes := fanOut(rc, []float64{workload.Ratio182, workload.Ratio222},
		func(_ int, ratio float64, _ *stats.Rand) *core.Pipeline {
			return trainedPipeline(um, ratio, rc)
		})
	pond182, pond222 := pipes[0], pipes[1]

	// Per-cluster planning RNG seeds are drawn serially from the root
	// stream (the exact draws the serial Fork loop made), then the
	// control-plane replay of each cluster fans out.
	r := stats.NewRand(rc.Seed + 7)
	type planSeeds struct{ s182, s222 int64 }
	seeds := make([]planSeeds, len(traces))
	for i := range traces {
		seeds[i] = planSeeds{s182: r.ForkSeed(int64(i)), s222: r.ForkSeed(int64(i + 1000))}
	}
	type planned struct {
		p182, p222 sim.SplitPlan
		s182, s222 core.PlanStats
	}
	plannedByCluster := fanOut(rc, seeds, func(i int, s planSeeds, _ *stats.Rand) planned {
		var p planned
		p.p182, p.s182 = pond182.PlanTrace(&traces[i], stats.NewRand(s.s182))
		p.p222, p.s222 = pond222.PlanTrace(&traces[i], stats.NewRand(s.s222))
		return p
	})

	type policy struct {
		name  string
		plans []sim.SplitPlan
		stats *core.PlanStats
	}
	policies := []policy{
		{name: "Pond@182%", stats: &core.PlanStats{}},
		{name: "Pond@222%", stats: &core.PlanStats{}},
		{name: "Static 15%"},
	}
	for i, p := range plannedByCluster {
		addStats(policies[0].stats, p.s182)
		addStats(policies[1].stats, p.s222)
		policies[0].plans = append(policies[0].plans, p.p182)
		policies[1].plans = append(policies[1].plans, p.p222)
		policies[2].plans = append(policies[2].plans, sim.UniformPlan(len(traces[i].VMs), 0.15))
	}

	// One shard per (pool size, policy) cell of the table.
	type cell struct {
		k   int
		pol int
	}
	var cells []cell
	for _, k := range []int{2, 8, 16, 32, 64} {
		for pol := range policies {
			cells = append(cells, cell{k: k, pol: pol})
		}
	}
	rows := fanOut(rc, cells, func(_ int, c cell, _ *stats.Rand) Figure21Row {
		var agg sim.Requirement
		for i := range schedules {
			agg.Add(sim.RequiredDRAM(schedules[i], c.k, policies[c.pol].plans[i]))
		}
		return Figure21Row{
			Policy:      policies[c.pol].name,
			PoolSockets: c.k,
			RequiredPct: agg.RequiredPct(),
		}
	})

	out := Figure21Result{Rows: rows}
	out.Pond182Stats = *policies[0].stats
	out.Pond222Stats = *policies[1].stats
	return out
}

func addStats(dst *core.PlanStats, s core.PlanStats) {
	w := float64(dst.VMs)
	dst.PoolGBShare = (dst.PoolGBShare*w + s.PoolGBShare*float64(s.VMs)) / (w + float64(s.VMs))
	dst.VMs += s.VMs
	dst.AllPoolN += s.AllPoolN
	dst.ZNUMAN += s.ZNUMAN
	dst.AllLocalN += s.AllLocalN
	dst.ExceedPDMN += s.ExceedPDMN
	dst.MitigatedN += s.MitigatedN
}

// String renders the Figure 21 table.
func (r Figure21Result) String() string {
	var t table
	t.title("Figure 21: memory savings under performance constraints (PDM=5%, TP=98%)")
	t.row("%-12s %10s %12s", "policy", "sockets", "required")
	for _, row := range r.Rows {
		t.row("%-12s %10d %11.1f%%", row.Policy, row.PoolSockets, row.RequiredPct)
	}
	t.row("Pond@182%% pipeline: %s", r.Pond182Stats)
	t.row("Pond@222%% pipeline: %s", r.Pond222Stats)
	return t.String()
}

// Finding10Result is the offlining-rate distribution across VM starts.
type Finding10Result struct {
	Starts        int
	ZeroRateFrac  float64
	P9999RateGBs  float64
	P99999RateGBs float64
	MaxRateGBs    float64
}

// Finding10 drives a Pool Manager with a trace-derived start/stop load
// (static 30% pool allocations) and measures the offline throughput each
// VM start depended on.
func Finding10(scale Scale, opts ...Option) Finding10Result {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	cfg.Clusters = 1
	tr := cluster.Generate(cfg)[0]

	// Pool sized like a 16-socket Pond group with a ~30% provision.
	poolGB := int(tr.TotalClusterMemGB() * 0.30)
	device := emc.NewDevice("emc0", poolGB, 64)
	pm := pool.NewManager([]*emc.Device{device}, stats.NewRand(rc.Seed))

	type lease struct {
		end  float64
		host emc.HostID
		refs []pool.SliceRef
	}
	var live []lease
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		now := vm.ArrivalSec
		// Expire departed leases first (asynchronous release).
		keep := live[:0]
		for _, l := range live {
			if l.end <= now {
				pm.ReleaseCapacity(l.host, l.refs, l.end)
			} else {
				keep = append(keep, l)
			}
		}
		live = keep
		gb := int(vm.Type.MemoryGB * 0.30)
		if gb == 0 {
			continue
		}
		h := emc.HostID(i % 64)
		res, err := pm.AddCapacity(h, gb, now)
		if err != nil {
			continue // pool exhausted; VM falls back to all-local
		}
		live = append(live, lease{end: vm.DepartureSec(), host: h, refs: res.Slices})
	}

	rates := pm.StartRates()
	sort.Float64s(rates)
	zero := 0
	for _, x := range rates {
		if x == 0 {
			zero++
		}
	}
	r := Finding10Result{Starts: len(rates)}
	if len(rates) > 0 {
		r.ZeroRateFrac = float64(zero) / float64(len(rates))
		r.P9999RateGBs = stats.QuantileSorted(rates, 0.9999)
		r.P99999RateGBs = stats.QuantileSorted(rates, 0.99999)
		r.MaxRateGBs = rates[len(rates)-1]
	}
	return r
}

// String renders the Finding 10 summary.
func (r Finding10Result) String() string {
	var t table
	t.title("Finding 10: offlining speed required by VM starts")
	t.row("starts=%d  buffer-satisfied=%.3f%%  p99.99=%.2f GB/s  p99.999=%.2f GB/s  max=%.2f GB/s",
		r.Starts, 100*r.ZeroRateFrac, r.P9999RateGBs, r.P99999RateGBs, r.MaxRateGBs)
	return t.String()
}

// AblationAsyncReleaseResult compares VM starts under different pool
// headroom levels, quantifying why the asynchronous-release buffer
// matters: an undersized pool forces starts to fall back to all-local
// memory (no savings) or wait for offlining.
type AblationAsyncReleaseResult struct {
	BufferFactor []float64
	WaitFrac     []float64 // fraction of starts that had to wait on offlining
	FallbackFrac []float64 // fraction of starts that found the pool exhausted
}

// AblationAsyncRelease shrinks the pool from comfortable to tight and
// measures how often VM starts block on offlining. The headroom levels
// replay independently, one engine shard each.
func AblationAsyncRelease(scale Scale, opts ...Option) AblationAsyncReleaseResult {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	cfg.Clusters = 1
	tr := cluster.Generate(cfg)[0]

	factors := []float64{0.02, 0.05, 0.10, 0.30}
	type outcome struct{ waitFrac, fallbackFrac float64 }
	outcomes := fanOut(rc, factors, func(_ int, factor float64, _ *stats.Rand) outcome {
		poolGB := int(tr.TotalClusterMemGB() * factor)
		device := emc.NewDevice("emc0", poolGB, 64)
		pm := pool.NewManager([]*emc.Device{device}, stats.NewRand(rc.Seed))
		type lease struct {
			end  float64
			host emc.HostID
			refs []pool.SliceRef
		}
		var live []lease
		waited, fallback, total := 0, 0, 0
		for i := range tr.VMs {
			vm := &tr.VMs[i]
			now := vm.ArrivalSec
			keep := live[:0]
			for _, l := range live {
				if l.end <= now {
					pm.ReleaseCapacity(l.host, l.refs, l.end)
				} else {
					keep = append(keep, l)
				}
			}
			live = keep
			gb := int(vm.Type.MemoryGB * 0.30)
			if gb == 0 {
				continue
			}
			total++
			h := emc.HostID(i % 64)
			res, err := pm.AddCapacity(h, gb, now)
			if err != nil {
				fallback++ // pool exhausted: the VM runs all-local
				continue
			}
			if res.WaitedSec > 0 {
				waited++
			}
			live = append(live, lease{end: vm.DepartureSec(), host: h, refs: res.Slices})
		}
		if total == 0 {
			total = 1
		}
		return outcome{
			waitFrac:     float64(waited) / float64(total),
			fallbackFrac: float64(fallback) / float64(total),
		}
	})

	var r AblationAsyncReleaseResult
	for i, o := range outcomes {
		r.BufferFactor = append(r.BufferFactor, factors[i])
		r.WaitFrac = append(r.WaitFrac, o.waitFrac)
		r.FallbackFrac = append(r.FallbackFrac, o.fallbackFrac)
	}
	return r
}

// String renders the ablation.
func (r AblationAsyncReleaseResult) String() string {
	var t table
	t.title("Ablation: pool headroom vs VM starts blocked or turned away")
	for i := range r.BufferFactor {
		t.row("pool = %4.0f%% of cluster DRAM: %.3f%% waited on offlining, %.2f%% pool-exhausted",
			100*r.BufferFactor[i], 100*r.WaitFrac[i], 100*r.FallbackFrac[i])
	}
	return t.String()
}

func sprintf(format string, args ...any) string {
	var t table
	t.row(format, args...)
	s := t.String()
	return s[:len(s)-1]
}
