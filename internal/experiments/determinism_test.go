package experiments

import (
	"fmt"
	"testing"
)

// determinismCase tables one engine-backed figure pipeline as a closure
// from options to rendered output. Byte-identical String() output across
// runs and across worker counts is the engine's core contract (the
// paper's evaluation must be reproducible bit-for-bit from a seed).
type determinismCase struct {
	name string
	// heavy pipelines (fleet-scale model training) run at ScaleTiny and
	// skip the redundant third run; the tiny fleet still drives every
	// pipeline stage.
	heavy bool
	run   func(opts ...Option) fmt.Stringer
}

func determinismCases(short bool) []determinismCase {
	cases := []determinismCase{
		{name: "Figure2a", run: func(o ...Option) fmt.Stringer { return Figure2a(ScaleQuick, o...) }},
		{name: "Figure2b", run: func(o ...Option) fmt.Stringer { return Figure2b(ScaleQuick, o...) }},
		{name: "Figure3", run: func(o ...Option) fmt.Stringer { return Figure3(ScaleQuick, o...) }},
		{name: "Finding10", run: func(o ...Option) fmt.Stringer { return Finding10(ScaleQuick, o...) }},
		{name: "AblationAsyncRelease", run: func(o ...Option) fmt.Stringer { return AblationAsyncRelease(ScaleQuick, o...) }},
		{name: "Sweep", run: func(o ...Option) fmt.Stringer {
			return RunSweep(SweepSpec{Scales: []Scale{ScaleQuick}, Policies: []string{"pooled", "static"}}, o...)
		}},
	}
	if !short {
		cases = append(cases, []determinismCase{
			{name: "Figure17", heavy: true, run: func(o ...Option) fmt.Stringer { return Figure17(2, 1, o...) }},
			{name: "Figure18", heavy: true, run: func(o ...Option) fmt.Stringer { return Figure18(ScaleTiny, o...) }},
			{name: "Figure19", heavy: true, run: func(o ...Option) fmt.Stringer { return Figure19(ScaleTiny, 28, o...) }},
			{name: "Figure20", heavy: true, run: func(o ...Option) fmt.Stringer { return Figure20(ScaleTiny, 2, o...) }},
			{name: "Figure21", heavy: true, run: func(o ...Option) fmt.Stringer { return Figure21(ScaleTiny, o...) }},
		}...)
	}
	return cases
}

// TestFiguresByteIdentical asserts the two halves of the determinism
// contract for every engine-backed figure: the same seed renders the same
// bytes across independent runs, and across workers=1 vs workers=8.
func TestFiguresByteIdentical(t *testing.T) {
	for _, tc := range determinismCases(testing.Short()) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.run(WithWorkers(1)).String()
			parallel := tc.run(WithWorkers(8)).String()
			if serial == "" {
				t.Fatalf("%s rendered empty output", tc.name)
			}
			if serial != parallel {
				t.Errorf("%s output differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s",
					tc.name, serial, parallel)
			}
			if tc.heavy {
				// The two runs above already prove rerun stability.
				return
			}
			again := tc.run(WithWorkers(1)).String()
			if serial != again {
				t.Errorf("%s output differs between two identical runs:\n--- run 1\n%s\n--- run 2\n%s",
					tc.name, serial, again)
			}
		})
	}
}

// TestSeedChangesOutput guards against a seed that is silently ignored.
func TestSeedChangesOutput(t *testing.T) {
	a := Figure2a(ScaleQuick).String()
	b := Figure2a(ScaleQuick, WithSeed(DefaultSeed+1)).String()
	if a == b {
		t.Fatal("different seeds rendered identical fleets")
	}
	c := Figure2a(ScaleQuick, WithSeed(DefaultSeed)).String()
	if a != c {
		t.Fatal("explicit default seed differs from implicit default")
	}
}

// TestSweepParsing covers the scenario-matrix syntax.
func TestSweepParsing(t *testing.T) {
	spec, err := ParseSweep("scale=S,M,L x policy=pooled,static")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Scales) != 3 || spec.Scales[0] != ScaleQuick || spec.Scales[2] != ScalePaper {
		t.Fatalf("scales = %v", spec.Scales)
	}
	if len(spec.Policies) != 2 {
		t.Fatalf("policies = %v", spec.Policies)
	}
	if _, err := ParseSweep("scale=bogus"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if _, err := ParseSweep("policy=bogus"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := ParseSweep("flavor=mild"); err == nil {
		t.Fatal("bad dimension accepted")
	}
	def, err := ParseSweep("")
	if err != nil || len(def.Scales) == 0 || len(def.Policies) == 0 {
		t.Fatalf("empty sweep should default: %v %v", def, err)
	}
}

// TestSweepOrdering sanity-checks the matrix economics: more pooling must
// not require more DRAM.
func TestSweepOrdering(t *testing.T) {
	r := RunSweep(SweepSpec{Scales: []Scale{ScaleQuick}, Policies: []string{"pooled", "static", "none"}})
	if len(r.Cells) != 3 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	pooled, static, none := r.Cells[0], r.Cells[1], r.Cells[2]
	if !(pooled.RequiredPct <= static.RequiredPct && static.RequiredPct <= none.RequiredPct) {
		t.Errorf("required DRAM ordering violated: pooled %.1f, static %.1f, none %.1f",
			pooled.RequiredPct, static.RequiredPct, none.RequiredPct)
	}
	if none.RequiredPct != 100 {
		t.Errorf("no-pooling baseline = %.1f%%, want 100%%", none.RequiredPct)
	}
	if pooled.VMs == 0 || pooled.MeanStrandedPct <= 0 {
		t.Errorf("sweep cell missing fleet stats: %+v", pooled)
	}
}

// TestRegistryLookup covers the shared experiment registry.
func TestRegistryLookup(t *testing.T) {
	reg := Registry()
	if len(reg) < 20 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, d := range reg {
		if d.Name == "" || d.Run == nil {
			t.Fatalf("malformed definition %+v", d)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate experiment %q", d.Name)
		}
		seen[d.Name] = true
	}
	defs, err := Lookup([]string{"2a", " 21 ", "finding10"})
	if err != nil || len(defs) != 3 {
		t.Fatalf("lookup: %v %v", defs, err)
	}
	if _, err := Lookup([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestParseScale covers the scale aliases.
func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"quick": ScaleQuick, "S": ScaleQuick, "small": ScaleQuick,
		"full": ScaleFull, "M": ScaleFull,
		"paper": ScalePaper, "L": ScalePaper,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}
