package experiments

import (
	"sort"

	"pond/internal/cluster"
	"pond/internal/ml"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/workload"
)

// Figure17Result carries the model curves of Figure 17, plus the
// logistic-regression baseline this reproduction adds.
type Figure17Result struct {
	RandomForest []predict.SensPoint
	DRAMBound    []predict.SensPoint
	MemoryBound  []predict.SensPoint
	Logistic     []predict.SensPoint
	Folds        int
}

// Figure17 evaluates the latency-insensitivity models at PDM=5% under the
// 182% latency level with workload-level cross validation. The paper uses
// 100 folds; benchmarks may pass fewer. The four model families
// cross-validate on independent engine shards.
func Figure17(folds, samplesPerWorkload int, opts ...Option) Figure17Result {
	rc := newRunConfig(opts)
	if folds <= 0 {
		folds = 100
	}
	if samplesPerWorkload <= 0 {
		samplesPerWorkload = 3
	}
	const pdm = 0.05
	kinds := []predict.ModelKind{
		predict.KindRandomForest, predict.KindDRAMBound,
		predict.KindMemoryBound, predict.KindLogistic,
	}
	curves := fanOut(rc, kinds, func(_ int, kind predict.ModelKind, _ *stats.Rand) []predict.SensPoint {
		return predict.SensitivityCurve(kind, workload.Ratio182, pdm, folds, samplesPerWorkload, rc.Seed)
	})
	return Figure17Result{
		RandomForest: curves[0],
		DRAMBound:    curves[1],
		MemoryBound:  curves[2],
		Logistic:     curves[3],
		Folds:        folds,
	}
}

// String renders the three curves side by side.
func (r Figure17Result) String() string {
	var t table
	t.title("Figure 17: latency-insensitivity model (FP rate vs % labeled insensitive)")
	t.row("%-12s %14s %12s %12s %12s", "insensitive", "RandomForest", "DRAM-bound", "mem-bound", "logistic")
	for i := range r.RandomForest {
		t.row("%10.0f%% %13.2f%% %11.2f%% %11.2f%% %11.2f%%",
			100*r.RandomForest[i].InsensitiveFrac,
			100*r.RandomForest[i].FPRate,
			100*r.DRAMBound[i].FPRate,
			100*r.MemoryBound[i].FPRate,
			100*r.Logistic[i].FPRate)
	}
	return t.String()
}

// Figure18Result carries the untouched-memory model curves.
type Figure18Result struct {
	GBM   []predict.UMPoint
	Fixed []predict.UMPoint
}

// Figure18 trains the quantile GBM on the first part of a synthetic fleet
// and compares its overprediction/untouched-memory tradeoff against the
// fixed-fraction strawman on the held-out remainder.
func Figure18(scale Scale, opts ...Option) Figure18Result {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	ds := predict.BuildUMDataset(cluster.Generate(cfg))
	cut := ds.SplitAtDay(cfg.Days * 2 / 3)
	m := predict.TrainGBMUntouched(ds.X[:cut], ds.TrueUntouched[:cut], 0.05, rc.Seed)
	eval := ds.Eval(cut, ds.Len())
	// Each margin of the GBM curve evaluates on its own engine shard; the
	// fixed-fraction strawman is cheap enough to stay serial.
	gbmPoints := fanOut(rc, predict.DefaultMargins(), func(_ int, margin float64, _ *stats.Rand) predict.UMPoint {
		return eval.Evaluate(m.WithMargin(margin))
	})
	// Render ascending by average untouched memory, like eval.Curve does.
	sort.Slice(gbmPoints, func(i, j int) bool { return gbmPoints[i].AvgUM < gbmPoints[j].AvgUM })
	return Figure18Result{
		GBM:   gbmPoints,
		Fixed: eval.FixedCurve([]float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50}),
	}
}

// String renders the two curves.
func (r Figure18Result) String() string {
	var t table
	t.title("Figure 18: untouched-memory model (overpredictions vs average untouched)")
	t.row("GBM (1GB-aligned):")
	for _, p := range r.GBM {
		t.row("  avg untouched %5.1f%%  overpredictions %5.2f%%", 100*p.AvgUM, 100*p.OPRate)
	}
	t.row("Fixed amount / VM:")
	for _, p := range r.Fixed {
		t.row("  avg untouched %5.1f%%  overpredictions %5.2f%%", 100*p.AvgUM, 100*p.OPRate)
	}
	return t.String()
}

// Figure19Day is one day of the production-style rolling evaluation.
type Figure19Day struct {
	Day      int
	AvgUMPct float64
	OPPct    float64
}

// Figure19Result is the untouched-memory model in "production": nightly
// retraining on trailing data, evaluated on the next day's arrivals.
type Figure19Result struct {
	Days     []Figure19Day
	TargetOP float64
}

// Figure19 runs the rolling evaluation over the first 110 days of a
// synthetic 2022 (the trace is extended to 110 days). Retraining happens
// every retrainEvery days on all data seen so far.
func Figure19(scale Scale, retrainEvery int, opts ...Option) Figure19Result {
	rc := newRunConfig(opts)
	cfg := scale.genConfig(rc)
	cfg.Days = 110
	if retrainEvery <= 0 {
		retrainEvery = 7
	}
	ds := predict.BuildUMDataset(cluster.Generate(cfg))

	r := Figure19Result{TargetOP: 0.04}
	warmup := 14
	var days []int
	for day := warmup; day < cfg.Days; day += retrainEvery {
		days = append(days, day)
	}
	// Every retrain is independent — each trains on its own trailing
	// prefix and evaluates on the following window — so the nightly
	// pipeline fans out across retrain days.
	points := fanOut(rc, days, func(_ int, day int, _ *stats.Rand) *Figure19Day {
		trainEnd := ds.SplitAtDay(day)
		if trainEnd < 200 {
			return nil
		}
		model := predict.TrainGBMUntouched(ds.X[:trainEnd], ds.TrueUntouched[:trainEnd], r.TargetOP, rc.Seed+int64(day))
		evalEnd := ds.SplitAtDay(day + retrainEvery)
		if evalEnd <= trainEnd {
			return nil
		}
		p := ds.Eval(trainEnd, evalEnd).Evaluate(model)
		return &Figure19Day{Day: day, AvgUMPct: 100 * p.AvgUM, OPPct: 100 * p.OPRate}
	})
	for _, p := range points {
		if p != nil {
			r.Days = append(r.Days, *p)
		}
	}
	return r
}

// String renders the rolling series.
func (r Figure19Result) String() string {
	var t table
	t.title("Figure 19: untouched-memory model in production (rolling retrain)")
	t.row("%-6s %14s %16s (target OP %.0f%%)", "day", "avg untouched", "overpredictions", 100*r.TargetOP)
	for _, d := range r.Days {
		t.row("%-6d %13.1f%% %15.2f%%", d.Day, d.AvgUMPct, d.OPPct)
	}
	return t.String()
}

// Figure20Point is one point of the combined-model frontier.
type Figure20Point struct {
	PoolDRAMPct   float64
	MispredictPct float64
}

// Figure20Result carries the frontier at both latency levels.
type Figure20Result struct {
	At182 []Figure20Point
	At222 []Figure20Point
}

// Figure20 solves Eq. (1) across misprediction budgets at both levels,
// producing the tradeoff between average pool DRAM and scheduling
// mispredictions.
func Figure20(scale Scale, folds int, opts ...Option) Figure20Result {
	rc := newRunConfig(opts)
	if folds <= 0 {
		folds = 20
	}
	cfg := scale.genConfig(rc)
	ds := predict.BuildUMDataset(cluster.Generate(cfg))
	cut := ds.SplitAtDay(cfg.Days * 2 / 3)
	gbm := predict.TrainGBMUntouched(ds.X[:cut], ds.TrueUntouched[:cut], 0.05, rc.Seed)
	umCurve := ds.Eval(cut, ds.Len()).Curve(gbm, predict.DefaultMargins())

	budgets := []float64{0.002, 0.005, 0.01, 0.015, 0.02, 0.03, 0.04, 0.05}
	// The two latency levels solve Eq. (1) independently: one shard each.
	frontiers := fanOut(rc, []float64{workload.Ratio182, workload.Ratio222},
		func(_ int, ratio float64, _ *stats.Rand) []Figure20Point {
			sens := predict.SensitivityCurve(predict.KindRandomForest, ratio, 0.05, folds, 2, rc.Seed)
			exceed := predict.ExceedProbGivenSpill(ratio, 0.05, predict.TypicalOverpredictionSpill)
			var out []Figure20Point
			for _, c := range predict.Frontier(sens, umCurve, exceed, budgets) {
				out = append(out, Figure20Point{
					PoolDRAMPct:   100 * c.PoolFrac,
					MispredictPct: 100 * c.MispredictFrac,
				})
			}
			return out
		})
	return Figure20Result{At182: frontiers[0], At222: frontiers[1]}
}

// String renders both frontiers.
func (r Figure20Result) String() string {
	var t table
	t.title("Figure 20: combined model (mispredictions vs average pool DRAM)")
	t.row("at 182%% (142ns):")
	for _, p := range r.At182 {
		t.row("  pool DRAM %5.1f%%  slowdown>PDM %5.2f%%", p.PoolDRAMPct, p.MispredictPct)
	}
	t.row("at 222%% (255ns):")
	for _, p := range r.At222 {
		t.row("  pool DRAM %5.1f%%  slowdown>PDM %5.2f%%", p.PoolDRAMPct, p.MispredictPct)
	}
	return t.String()
}

// AblationForestSize compares forest sizes on the Figure 17 task (the
// "RandomForest vs thresholds" ablation extended to capacity).
type AblationForestSizeResult struct {
	Trees  []int
	MeanFP []float64
}

// AblationForestSize sweeps ensemble sizes at a fixed operating point.
func AblationForestSize(folds int) AblationForestSizeResult {
	if folds <= 0 {
		folds = 6
	}
	ds := predict.BuildSensitivityDataset(workload.Ratio182, 0.05, 2, DefaultSeed)
	var r AblationForestSizeResult
	for _, nTrees := range []int{5, 20, 60} {
		cfg := ml.DefaultForestConfig()
		cfg.NTrees = nTrees
		cfg.Seed = DefaultSeed
		f := ml.FitForest(ds.X, ds.Insensitive, cfg)
		scores := make([]float64, len(ds.X))
		for i := range ds.X {
			scores[i] = f.PredictProb(ds.X[i])
		}
		thr := predict.ThresholdForLabelRate(scores, 0.3)
		fp := 0
		for i, s := range scores {
			if s >= thr && ds.Sensitive[i] {
				fp++
			}
		}
		r.Trees = append(r.Trees, nTrees)
		r.MeanFP = append(r.MeanFP, float64(fp)/float64(len(scores)))
	}
	return r
}

// String renders the sweep.
func (r AblationForestSizeResult) String() string {
	var t table
	t.title("Ablation: forest size vs false positives at 30% labeled insensitive")
	for i := range r.Trees {
		t.row("%3d trees: FP %.2f%%", r.Trees[i], 100*r.MeanFP[i])
	}
	return t.String()
}

// CounterAuditResult validates the Figure 12 model design: the trained
// insensitivity forest must draw its signal from the TMA memory-hierarchy
// counters, not the ~190 generic events.
type CounterAuditResult struct {
	Top []predict.CounterImportance
}

// CounterAudit trains the forest on offline runs and ranks its counters
// by permutation importance.
func CounterAudit(topK int) CounterAuditResult {
	if topK <= 0 {
		topK = 8
	}
	ds := predict.BuildSensitivityDataset(workload.Ratio182, 0.05, 3, DefaultSeed)
	m := predict.TrainForest(ds.X, ds.Insensitive, DefaultSeed)
	return CounterAuditResult{Top: predict.TopCounters(m, ds, topK, DefaultSeed)}
}

// String renders the counter ranking.
func (r CounterAuditResult) String() string {
	var t table
	t.title("Counter audit: permutation importance of the insensitivity forest (Figure 12)")
	for i, c := range r.Top {
		t.row("%2d. %-22s accuracy drop %.3f", i+1, c.Counter, c.Drop)
	}
	return t.String()
}
