package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"strings"
	"time"

	"pond/internal/engine"
	"pond/internal/mlops/fleetpipeline"
	"pond/internal/predict"
	"pond/internal/stats"
)

// Runner is the incremental form of Run: the same fleet simulation,
// advanced one bounded time slice at a time under caller control. Every
// return from Advance is a safe point — all cells sit at the same
// simulated time with no event mid-flight — where the caller may drain
// the event log, snapshot progress, or add an injection before
// resuming. pondserve drives its live runs through a Runner; Run itself
// drives barriered configurations through one, so there is a single
// implementation of the barrier loop.
//
// Determinism contract: a run advanced through any sequence of Advance
// slices, with any live injections added along the way, produces an
// event log byte-identical to a one-shot batch Run whose injection list
// carries the live injections appended in the order they were added.
// The banded event sequence numbers (see fleet.go) and the
// regenerate-from-seed arrival machinery are what make that hold.
//
// A Runner is not safe for concurrent use; callers serialize access.
type Runner struct {
	o         Options
	insens    predict.Insensitivity
	threshold float64
	eopts     engine.Options

	sims        []*cellSim
	fleetScoped bool
	fp          *fleetpipeline.Manager
	barriers    []barrier
	nextBarrier int

	now      float64
	done     bool
	fleetLog strings.Builder
	// marks and fleetMark are the per-stream byte offsets DrainEvents
	// has consumed up to.
	marks     []int
	fleetMark int

	// compact, when set, folds drained log prefixes into per-stream
	// SHA-256 midstates instead of retaining them (see SetCompactDrained).
	compact        bool
	fleetDigest    hash.Hash
	fleetCompacted int

	// phase, when set, receives wall-clock spans of the run's phases
	// (see SetPhaseHook). Wall time is measured only when a hook is
	// installed, so the default path never calls time.Now.
	phase PhaseFunc

	rep *Report
}

// PhaseFunc receives one completed phase span: the phase name
// ("advance" for a parallel cell epoch, "retrain" and "plan" for the
// serial barriers, "finish" for the serial close-out), the simulated
// time the phase completed at, and its wall-clock duration in seconds.
type PhaseFunc func(phase string, atSec, seconds float64)

// SetPhaseHook installs a wall-clock span listener. The hook observes
// execution, never simulation: it runs on the Advance caller's
// goroutine at phase boundaries and cannot alter any simulated
// outcome. nil removes the hook.
func (r *Runner) SetPhaseHook(fn PhaseFunc) { r.phase = fn }

// timePhase reports one span to the hook when installed.
func (r *Runner) timePhase(name string, atSec float64, start time.Time) {
	if r.phase != nil {
		r.phase(name, atSec, time.Since(start).Seconds())
	}
}

// NewRunner builds a paused fleet run at t=0. The options pass through
// the same normalization and validation as Run.
func NewRunner(ctx context.Context, o Options) (*Runner, error) {
	o, err := normalize(o)
	if err != nil {
		return nil, err
	}
	insens, threshold := trainInsens(o)
	return newRunner(ctx, o, insens, threshold)
}

// newRunner wires the cells (and the fleet pipeline, under fleet scope)
// for already-normalized options.
func newRunner(ctx context.Context, o Options, insens predict.Insensitivity, threshold float64) (*Runner, error) {
	r := &Runner{
		o:           o,
		insens:      insens,
		threshold:   threshold,
		eopts:       engine.Options{Workers: o.Workers, Seed: o.Seed},
		fleetScoped: o.ModelScope == ScopeFleet && o.RetrainEverySec > 0,
	}
	sims, err := engine.Map(ctx, cellIndices(o.Cells), r.eopts,
		func(i int, _ int, rng *stats.Rand) (*cellSim, error) {
			return newCellSim(i, o, insens, threshold, rng)
		})
	if err != nil {
		return nil, err
	}
	r.sims = sims
	r.marks = make([]int, len(sims))
	if r.fleetScoped {
		r.fp = fleetpipeline.NewManager(fleetpipeline.Config{
			Cells:          o.Cells,
			CanaryFraction: o.CanaryFraction,
			BakeWindowSec:  o.BakeWindowSec,
			MinTrainRows:   o.MinTrainRows,
			HoldoutWindow:  o.HoldoutWindow,
			PromoteMargin:  o.PromoteMargin,
			Seed:           o.Seed,
		}, predict.HistoryQuantileUM{})
		rcfg := r.fp.Config()
		for _, sim := range sims {
			sim.col = fleetpipeline.NewCollector(sim.cell, predict.HistoryQuantileUM{}, insens,
				sim.ratio, o.PDM, rcfg.OverPenalty, rcfg.HoldoutWindow)
			sim.pipe.SetShadowHook(sim.col.ObserveDecision)
			sim.res.ServedVersions = []int{0}
		}
	}
	r.barriers = barrierSchedule(o, r.fleetScoped)
	return r, nil
}

// Now returns the current simulated time — the safe point the run is
// paused at.
func (r *Runner) Now() float64 { return r.now }

// Done reports whether the run has reached its horizon. A done run
// accepts no further injections; Finish returns its report.
func (r *Runner) Done() bool { return r.done }

// Options returns the normalized configuration, with every live
// injection appended — the exact batch options that reproduce this
// run's event log from scratch.
func (r *Runner) Options() Options { return r.o }

// Advance runs every cell forward to simulated time t (clamped to the
// horizon), processing retrain and planning barriers crossed on the
// way: cells advance one inter-barrier epoch at a time on the parallel
// engine, then each barrier runs serially in cell order — the same
// schedule a batch run follows, so slicing the horizon differently
// changes no log byte. Reaching the horizon processes the final events
// inclusively and marks the run done.
func (r *Runner) Advance(ctx context.Context, t float64) error {
	if r.done {
		return nil
	}
	if t < r.now {
		// Clamp: time is monotonic. Advancing to the past is a no-op, not
		// a rewind of the reported clock (which would also corrupt the
		// AddInjection not-in-the-past validation).
		t = r.now
	}
	if t > r.o.DurationSec {
		t = r.o.DurationSec
	}
	for {
		next, final := t, false
		if r.nextBarrier < len(r.barriers) && r.barriers[r.nextBarrier].t <= t {
			next = r.barriers[r.nextBarrier].t
		}
		if next >= r.o.DurationSec {
			next, final = r.o.DurationSec, true
		}
		var t0 time.Time
		if r.phase != nil {
			t0 = time.Now()
		}
		if err := r.advanceCells(ctx, next, final); err != nil {
			return err
		}
		r.timePhase("advance", next, t0)
		r.now = next
		if final {
			r.done = true
			return nil
		}
		if r.nextBarrier < len(r.barriers) && r.barriers[r.nextBarrier].t == next {
			if err := r.processBarrier(r.barriers[r.nextBarrier]); err != nil {
				return err
			}
			r.nextBarrier++
		}
		if next == t {
			return nil
		}
	}
}

// advanceCells runs every cell to t on the engine pool. Cell state is
// strictly per-cell, so the fan-out is race-free and the per-cell logs
// depend only on (options, cell, seed).
func (r *Runner) advanceCells(ctx context.Context, t float64, final bool) error {
	_, err := engine.Map(ctx, r.sims, r.eopts,
		func(_ int, s *cellSim, _ *stats.Rand) (struct{}, error) {
			return struct{}{}, s.runUntil(t, final)
		})
	return err
}

// processBarrier runs one barrier serially in cell order: retrain
// barriers pool the cells' telemetry into the fleet pipeline and
// re-pin, planning barriers let each cell's capacity controller resize
// its pool.
func (r *Runner) processBarrier(b barrier) error {
	var t0 time.Time
	if b.retrain {
		if r.phase != nil {
			t0 = time.Now()
		}
		rows := make([][]fleetpipeline.Row, len(r.sims))
		obs := make([][]fleetpipeline.Obs, len(r.sims))
		for i, s := range r.sims {
			rows[i], obs[i] = s.col.Drain()
		}
		events, err := r.fp.Tick(b.t, rows, obs)
		if err != nil {
			return err
		}
		for _, e := range events {
			fmt.Fprintf(&r.fleetLog, "[fleet t=%.3f] %s\n", b.t, e)
		}
		for i, s := range r.sims {
			s.applyPin(r.fp.AssignmentFor(i), b.t)
		}
		r.timePhase("retrain", b.t, t0)
	}
	if b.plan {
		if r.phase != nil {
			t0 = time.Now()
		}
		for _, s := range r.sims {
			s.planTick(b.t)
		}
		r.timePhase("plan", b.t, t0)
	}
	return nil
}

// AddInjection schedules an injection into the paused run. It must fire
// at or after the current simulated time and passes the same
// ValidateInjection rules as a batch-scheduled one. The injection lands
// in every cell with the banded sequence number a batch run listing it
// at the same index would have used, and drift/surge injections
// regenerate the affected arrival streams from their stored fork seeds
// — which together keep the remaining event log byte-identical to that
// batch run's.
func (r *Runner) AddInjection(in Injection) error {
	if r.done {
		return fmt.Errorf("fleet: injection %s refused: run completed at t=%gs", in, r.now)
	}
	if in.AtSec < r.now {
		return fmt.Errorf("fleet: injection %s fires before the current time %gs", in, r.now)
	}
	if err := ValidateInjection(in, r.o); err != nil {
		return err
	}
	for _, s := range r.sims {
		s.liveInject(in, r.now)
	}
	// Full-slice append, mirroring liveInject: the original list may
	// share its backing array with the caller's options.
	n := len(r.o.Injections)
	r.o.Injections = append(r.o.Injections[:n:n], in)
	return nil
}

// Finish advances to the horizon if the run is not there yet, closes
// out every cell serially in cell order, and assembles the merged
// report. It is idempotent: later calls return the same report.
func (r *Runner) Finish(ctx context.Context) (*Report, error) {
	if r.rep != nil {
		return r.rep, nil
	}
	if err := r.Advance(ctx, r.o.DurationSec); err != nil {
		return nil, err
	}
	var t0 time.Time
	if r.phase != nil {
		t0 = time.Now()
	}
	defer r.timePhase("finish", r.o.DurationSec, t0)
	results := make([]CellResult, len(r.sims))
	for i, s := range r.sims {
		res, err := s.finish()
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	if r.fleetScoped {
		fmt.Fprintf(&r.fleetLog, "[fleet t=%.3f] fleetpipeline summary retrains=%d promotions=%d rollbacks=%d demotions=%d holds=%d champion-ver=%d\n",
			r.o.DurationSec, r.fp.Counts().Retrains, r.fp.Counts().Promotions, r.fp.Counts().Rollbacks,
			r.fp.Counts().Demotions, r.fp.Counts().Holds, r.fp.ChampionVer())
	}
	fleetTail := r.fleetLog.String()
	fleetSHA := ""
	if r.fleetDigest != nil {
		// The compacted prefix lives only in the midstate; absorbing the
		// tail completes the stream hash. Finish caches its report, so the
		// midstate is consumed exactly once.
		io.WriteString(r.fleetDigest, fleetTail)
		fleetSHA = hex.EncodeToString(r.fleetDigest.Sum(nil))
	}
	rep, err := assembleReport(r.o, results, fleetTail, fleetSHA, r.fleetCompacted, r.fp)
	if err != nil {
		return nil, err
	}
	r.rep = rep
	return rep, nil
}

// Progress is a point-in-time snapshot of a run's aggregate counters,
// taken at a safe point.
type Progress struct {
	NowSec      float64 `json:"now_sec"`
	DurationSec float64 `json:"duration_sec"`
	Done        bool    `json:"done"`

	Arrivals int `json:"arrivals"`
	Placed   int `json:"placed"`
	Rejected int `json:"rejected"`
	Departed int `json:"departed"`
	// Injections counts scheduled plus live-added injections.
	Injections int `json:"injections"`

	// Live occupancy at the safe point: placed-not-departed VMs, active
	// pool capacity, and the pool draw at the last accounted event.
	LiveVMs    int     `json:"live_vms"`
	PoolGB     int     `json:"pool_gb"`
	PoolUsedGB float64 `json:"pool_used_gb"`
	// Fallbacks counts pool-exhaustion downgrades so far; QoSViolations
	// departures whose slowdown exceeded the PDM.
	Fallbacks     int `json:"fallbacks"`
	QoSViolations int `json:"qos_violations"`
	// Retrains and Rollbacks count model-lifecycle events so far: cell
	// scope sums the per-cell managers, fleet scope reads the release
	// train (rollbacks are fleet-scope only).
	Retrains  int `json:"retrains"`
	Rollbacks int `json:"rollbacks"`
}

// Progress snapshots the run's aggregate lifecycle counters.
func (r *Runner) Progress() Progress {
	p := Progress{NowSec: r.now, DurationSec: r.o.DurationSec, Done: r.done,
		Injections: len(r.o.Injections)}
	for _, s := range r.sims {
		p.Arrivals += s.res.Arrivals
		p.Placed += s.res.Placed
		p.Rejected += s.res.Rejected
		p.Departed += s.res.Departed
		p.LiveVMs += len(s.running)
		p.PoolGB += s.poolGB
		p.PoolUsedGB += s.lastPoolUsed
		p.QoSViolations += s.res.QoSViolations
		p.Fallbacks += int(s.sched.Fallbacks())
		if s.mgr != nil {
			p.Retrains += s.mgr.Quality().Retrains
		}
	}
	if r.fp != nil {
		counts := r.fp.Counts()
		p.Retrains, p.Rollbacks = counts.Retrains, counts.Rollbacks
	}
	return p
}

// LogEvent is one complete event-log line drained from a run's streams;
// Cell is -1 for the fleet pipeline's barrier log. The deterministic
// EventLog is the concatenation of the cell streams in cell order
// followed by the fleet stream, each line newline-terminated — clients
// regroup drained events by cell to reconstruct and hash it.
type LogEvent struct {
	Cell int
	Line string
}

// SetCompactDrained controls drained-prefix compaction. When on, every
// DrainEvents call folds the bytes it has handed out into per-stream
// SHA-256 midstates and releases them from memory, so a long-running
// attended run holds only its undrained tail instead of the whole-run
// log. The final report's per-stream hashes — and therefore LogSHA256 —
// are unchanged, but its EventLog carries only the retained tails (its
// Events counter still covers the full run). Off by default: batch runs
// and tests rely on Report.EventLog being the complete log.
func (r *Runner) SetCompactDrained(on bool) { r.compact = on }

// DrainEvents returns the log lines appended since the previous drain:
// cells in cell order, the fleet log last. Only complete lines are
// returned (without their trailing newline); anything mid-line stays
// for the next drain. Under SetCompactDrained the returned bytes are
// also absorbed into the per-stream digests and dropped from memory.
func (r *Runner) DrainEvents() []LogEvent {
	var out []LogEvent
	for i, s := range r.sims {
		out, r.marks[i] = drainLines(out, i, s.log.String(), r.marks[i])
		if r.compact {
			r.marks[i] = s.compactLog(r.marks[i])
		}
	}
	out, r.fleetMark = drainLines(out, -1, r.fleetLog.String(), r.fleetMark)
	if r.compact {
		r.fleetDigest, r.fleetCompacted, r.fleetMark =
			compactStream(&r.fleetLog, r.fleetDigest, r.fleetCompacted, r.fleetMark)
	}
	return out
}

// compactStream absorbs b's first mark bytes into the stream digest,
// keeps only the tail, and returns the updated digest, compacted line
// count, and tail-relative mark.
func compactStream(b *strings.Builder, d hash.Hash, lines, mark int) (hash.Hash, int, int) {
	if mark == 0 {
		return d, lines, mark
	}
	full := b.String()
	if d == nil {
		d = sha256.New()
	}
	io.WriteString(d, full[:mark])
	lines += strings.Count(full[:mark], "\n")
	tail := full[mark:]
	b.Reset()
	b.WriteString(tail)
	return d, lines, 0
}

// drainLines appends the complete lines of full[mark:] to out and
// returns the advanced mark.
func drainLines(out []LogEvent, cell int, full string, mark int) ([]LogEvent, int) {
	for mark < len(full) {
		nl := strings.IndexByte(full[mark:], '\n')
		if nl < 0 {
			break
		}
		out = append(out, LogEvent{Cell: cell, Line: full[mark : mark+nl]})
		mark += nl + 1
	}
	return out, mark
}
