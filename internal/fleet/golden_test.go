package fleet

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden event logs under testdata/golden from the current code")

// goldenCases are three fixed fleet configurations — one per topology,
// one injection each, the third exercising the fleet-scoped release
// train — whose full event logs are committed under testdata/golden.
// The determinism tests elsewhere only compare worker counts against
// each other; these pin the absolute byte stream across commits, so a
// change that shifts every worker count identically (an RNG reorder, a
// log-format drift, a scheduling change) still fails loudly.
func goldenCases() map[string]Options {
	flat := testOptions()
	flat.Predictions = true
	flat.Injections = mustParseInjections("emc-fail@t=200")

	sharded := testOptions()
	sharded.Topology = "sharded"
	sharded.Injections = mustParseInjections("host-drain@t=300:host=1")

	sparse := testOptions()
	sparse.Topology = "sparse"
	sparse.Predictions = true
	sparse.DurationSec = 800
	sparse.Arrival.RatePerSec = 0.2
	sparse.RetrainEverySec = 200
	sparse.MinTrainRows = 16
	sparse.ModelScope = ScopeFleet
	sparse.Injections = mustParseInjections("surge@t=100:dur=100:x=3")

	// The elastic-pool control plane: planning barriers resize the pool
	// against observed demand while a manual resize and a drift land
	// mid-run.
	elastic := testOptions()
	elastic.Predictions = true
	elastic.Arrival.RatePerSec = 0.2
	elastic.ElasticPool = true
	elastic.PlanEverySec = 100
	elastic.Injections = mustParseInjections("resize@t=150:emc=1:slices=-8,drift@t=250:mag=0.5")

	return map[string]Options{
		"flat-emc-fail":      flat,
		"sharded-host-drain": sharded,
		"sparse-surge-fleet": sparse,
		"flat-elastic":       elastic,
	}
}

func mustParseInjections(s string) []Injection {
	inj, err := ParseInjections(s)
	if err != nil {
		panic(err)
	}
	return inj
}

func TestGoldenEventLogs(t *testing.T) {
	for name, o := range goldenCases() {
		name, o := name, o
		t.Run(name, func(t *testing.T) {
			rep, err := Run(context.Background(), o)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".log")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(rep.EventLog), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden log %s rewritten (%d lines, sha256=%s)",
					path, strings.Count(rep.EventLog, "\n"), rep.LogSHA256)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden log (generate with `go test ./internal/fleet -run Golden -update-golden`): %v", err)
			}
			// Recompute the stream-manifest hash from the committed log —
			// the same partition-and-hash the report performs — so the
			// golden file keeps pinning the exact bytes.
			wantSHA := EventLogSHA256(string(want), rep.Options.Cells)
			if rep.LogSHA256 == wantSHA {
				return
			}
			// Determinism broke (or the behaviour intentionally changed):
			// point straight at the first divergent line instead of only
			// printing two hashes.
			gotLines := strings.Split(rep.EventLog, "\n")
			wantLines := strings.Split(string(want), "\n")
			line, gotL, wantL := firstDiff(gotLines, wantLines)
			t.Fatalf("event log diverged from golden %s at line %d:\n  got:  %s\n  want: %s\n"+
				"(%d vs %d lines; sha256 %s vs committed %s)\n"+
				"If this change is intentional, refresh with: go test ./internal/fleet -run Golden -update-golden",
				path, line, gotL, wantL, len(gotLines), len(wantLines),
				rep.LogSHA256, wantSHA)
		})
	}
}

// firstDiff returns the 1-based line number and both sides of the first
// divergence.
func firstDiff(got, want []string) (int, string, string) {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return i + 1, got[i], want[i]
		}
	}
	g, w := "<end of log>", "<end of log>"
	if n < len(got) {
		g = got[n]
	}
	if n < len(want) {
		w = want[n]
	}
	return n + 1, g, w
}

// TestGoldenLogsCoverEveryTopology keeps the case table honest: one
// golden per topology, so a new topology shows up here as a failure.
func TestGoldenLogsCoverEveryTopology(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range goldenCases() {
		seen[o.Topology] = true
	}
	for _, want := range []string{"flat", "sharded", "sparse"} {
		if !seen[want] {
			t.Errorf("no golden case covers topology %q", want)
		}
	}
}
