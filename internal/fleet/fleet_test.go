package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"pond/internal/mlops/fleetpipeline"
)

// testOptions returns a small fleet that exercises every event kind in a
// few hundred milliseconds of wall clock.
func testOptions() Options {
	o := DefaultOptions()
	o.Cells = 3
	o.Hosts = 4
	o.EMCs = 4
	o.PoolGB = 64
	o.DurationSec = 400
	o.Arrival = ArrivalModel{Kind: ArrivalPoisson, RatePerSec: 0.1, MeanLifetimeSec: 200}
	o.Predictions = false // skip forest training in the fast tier
	return o
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base := testOptions()
	inj, err := ParseInjections("surge@t=50:dur=100:x=3,emc-fail@t=200,host-drain@t=300:host=1")
	if err != nil {
		t.Fatal(err)
	}
	base.Injections = inj

	var logs []string
	var hashes []string
	for _, workers := range []int{1, 3, 8} {
		o := base
		o.Workers = workers
		rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		logs = append(logs, rep.EventLog)
		hashes = append(hashes, rep.LogSHA256)
	}
	for i := 1; i < len(logs); i++ {
		if logs[i] != logs[0] {
			t.Fatalf("event log differs between worker counts 1 and %d", []int{1, 3, 8}[i])
		}
		if hashes[i] != hashes[0] {
			t.Fatalf("log hash differs between worker counts")
		}
	}
	if len(logs[0]) == 0 {
		t.Fatal("empty event log")
	}
}

func TestRunSeedChangesLog(t *testing.T) {
	o := testOptions()
	a, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Seed = 99
	b, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogSHA256 == b.LogSHA256 {
		t.Fatal("different seeds produced identical event logs")
	}
}

func TestInjectionsAppearInLog(t *testing.T) {
	o := testOptions()
	var err error
	o.Injections, err = ParseInjections("emc-fail@t=100:emc=2,host-drain@t=150:host=0,surge@t=10:dur=50:x=4")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"inject emc-fail emc=2 blast-hosts=",
		"inject host-drain host=0 migrated=",
		"inject surge x=4 dur=50",
	} {
		if !strings.Contains(rep.EventLog, want) {
			t.Fatalf("event log missing %q", want)
		}
	}
	// Surge must actually raise the arrival count versus no injection.
	o2 := testOptions()
	base, err := Run(context.Background(), o2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals <= base.Arrivals {
		t.Fatalf("surge did not add arrivals: %d vs %d", rep.Arrivals, base.Arrivals)
	}
}

func TestEMCFailBoundsBlastRadiusByTopology(t *testing.T) {
	// Under sharded, EMC 0 serves exactly hosts 0..Hosts/EMCs-1; the
	// blast-hosts count in the log must reflect that, not the full fleet.
	o := testOptions()
	o.Topology = "sharded"
	var err error
	o.Injections, err = ParseInjections("emc-fail@t=200")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.EventLog, "inject emc-fail emc=0 blast-hosts=1 ") {
		t.Fatalf("sharded 4x4 blast radius should be 1 host; log: %s",
			grepLine(rep.EventLog, "emc-fail"))
	}
}

func TestTraceArrivals(t *testing.T) {
	o := testOptions()
	o.Arrival = ArrivalModel{Kind: ArrivalTrace}
	o.DurationSec = 2000
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals == 0 {
		t.Fatal("trace arrivals produced no VMs")
	}
	if rep.Placed == 0 {
		t.Fatal("trace arrivals placed no VMs")
	}
}

func TestTopologiesDifferInOutcome(t *testing.T) {
	// Flat and sharded connectivity must produce different pool behaviour
	// for the same stream once pool memory is scarce.
	o := testOptions()
	o.Predictions = true
	o.PoolGB = 16
	o.Arrival.RatePerSec = 0.2
	flat, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Topology = "sharded"
	sharded, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if flat.LogSHA256 == sharded.LogSHA256 {
		t.Fatal("flat and sharded topologies produced identical event logs")
	}
}

func TestNormalizeRejectsBadOptions(t *testing.T) {
	o := DefaultOptions()
	o.Topology = "moebius"
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("unknown topology should fail")
	}

	o = DefaultOptions()
	o.Injections = []Injection{{Kind: InjectEMCFail, AtSec: 1, EMC: 99}}
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("out-of-range EMC injection should fail")
	}

	o = DefaultOptions()
	o.Injections = []Injection{{Kind: InjectHostDrain, AtSec: 1, Host: 99}}
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("out-of-range host injection should fail")
	}
}

func grepLine(log, substr string) string {
	for _, l := range strings.Split(log, "\n") {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}

func TestParseArrival(t *testing.T) {
	m, err := ParseArrival("poisson:rate=0.5:life=120")
	if err != nil {
		t.Fatal(err)
	}
	if m.RatePerSec != 0.5 || m.MeanLifetimeSec != 120 {
		t.Fatalf("parsed %+v", m)
	}
	if m2, err := ParseArrival(""); err != nil || m2 != DefaultArrival() {
		t.Fatalf("empty spec should be the default, got %+v (%v)", m2, err)
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := ParseArrival("poisson:rate=-1"); err == nil {
		t.Fatal("negative rate should fail")
	}
	if _, err := ParseArrival("poisson:burst=3"); err == nil {
		t.Fatal("unknown parameter should fail")
	}
	if _, err := ParseArrival("trace:rate=1"); err == nil {
		t.Fatal("trace with parameters should fail")
	}
}

func TestParseInjections(t *testing.T) {
	ins, err := ParseInjections("emc-fail@t=500, host-drain@t=800:host=2, surge@t=300:dur=200:x=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("parsed %d injections", len(ins))
	}
	if ins[0].Kind != InjectEMCFail || ins[0].AtSec != 500 || ins[0].EMC != 0 {
		t.Fatalf("emc-fail parsed as %+v", ins[0])
	}
	if ins[1].Host != 2 {
		t.Fatalf("host-drain parsed as %+v", ins[1])
	}
	if ins[2].DurSec != 200 || ins[2].Factor != 3 {
		t.Fatalf("surge parsed as %+v", ins[2])
	}
	for _, bad := range []string{
		"meteor@t=1", "emc-fail", "emc-fail@500", "emc-fail@t=abc",
		"surge@t=1:x=0.5", "emc-fail@t=1:emc=-1", "emc-fail@t=1:zap=2",
	} {
		if _, err := ParseInjections(bad); err == nil {
			t.Fatalf("spec %q should fail to parse", bad)
		}
	}
	if ins, err := ParseInjections(""); err != nil || ins != nil {
		t.Fatal("empty spec should parse to nil")
	}
}

func TestInjectionBeyondHorizonRejected(t *testing.T) {
	o := testOptions()
	var err error
	o.Injections, err = ParseInjections("emc-fail@t=500")
	if err != nil {
		t.Fatal(err)
	}
	o.DurationSec = 400
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("injection after the horizon should be rejected")
	}
}

func TestEMCFailStopsServingCapacity(t *testing.T) {
	// After the failure the dead EMC must contribute nothing: with all
	// pool capacity on one EMC under sharded-per-host connectivity is
	// overkill; just assert the run completes and blast VMs were lost
	// while later placements still succeed.
	o := testOptions()
	o.Predictions = true
	var err error
	o.Injections, err = ParseInjections("emc-fail@t=100")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placed == 0 || rep.Departed == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
}

func TestNormalizeRejectsNegativeInjectionTargets(t *testing.T) {
	o := testOptions()
	o.Injections = []Injection{{Kind: InjectEMCFail, AtSec: 1, EMC: -1}}
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("negative EMC index should fail, not panic mid-run")
	}
	o = testOptions()
	o.Injections = []Injection{{Kind: InjectHostDrain, AtSec: 1, Host: -1}}
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("negative host index should fail")
	}
}

func TestNormalizeKeepsPartialArrival(t *testing.T) {
	// Setting only RatePerSec (Kind left empty) must not be silently
	// reset to the default rate.
	o := testOptions()
	o.Arrival = ArrivalModel{RatePerSec: 0.3}
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Options.Arrival; got.Kind != ArrivalPoisson || got.RatePerSec != 0.3 {
		t.Fatalf("normalized arrival = %+v, want poisson at rate 0.3", got)
	}
}

// retrainOptions is the drift scenario used by the retraining tests: a
// mid-run tenant-population shift with the lifecycle loop enabled.
func retrainOptions() Options {
	o := DefaultOptions()
	o.Cells = 2
	o.Hosts = 4
	o.EMCs = 4
	o.PoolGB = 128
	o.DurationSec = 6000
	o.Seed = 2
	o.Arrival = ArrivalModel{Kind: ArrivalPoisson, RatePerSec: 0.15, MeanLifetimeSec: 300}
	o.Predictions = true
	o.RetrainEverySec = 400
	inj, err := ParseInjections("drift@t=2500:mag=0.6")
	if err != nil {
		panic(err)
	}
	o.Injections = inj
	return o
}

func TestRetrainDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("retrain determinism needs the full horizon; covered in the full tier")
	}
	base := retrainOptions()
	base.DurationSec = 3000
	base.Injections[0].AtSec = 1500

	var logs, hashes []string
	for _, workers := range []int{1, 3, 8} {
		o := base
		o.Workers = workers
		rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		logs = append(logs, rep.EventLog)
		hashes = append(hashes, rep.LogSHA256)
	}
	for i := 1; i < len(logs); i++ {
		if logs[i] != logs[0] || hashes[i] != hashes[0] {
			t.Fatalf("retrain-enabled event log differs between worker counts 1 and %d", []int{1, 3, 8}[i])
		}
	}
	// Promotion events are part of the deterministic log.
	for _, want := range []string{"mlops um retrain", "mlops um promote", "inject drift mag=0.6"} {
		if !strings.Contains(logs[0], want) {
			t.Fatalf("event log missing %q", want)
		}
	}
}

func TestDriftRetrainingBeatsFrozenModels(t *testing.T) {
	if testing.Short() {
		t.Skip("drift A/B needs the full horizon; covered in the full tier")
	}
	o := retrainOptions()
	frozen := o
	frozen.RetrainEverySec = 0
	fr, err := Run(context.Background(), frozen)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Promotions == 0 {
		t.Fatal("no promotions happened; the lifecycle never engaged")
	}
	// End-of-run prediction error must be strictly better with
	// retraining: the frozen champion is stale after the drift.
	if lr.PredErrFinal >= fr.PredErrFinal {
		t.Fatalf("retrained end-of-run prediction error %.4f not better than frozen %.4f",
			lr.PredErrFinal, fr.PredErrFinal)
	}
	// And the operational metrics must not regress: QoS strictly no
	// worse, stranding within measurement noise (stranded GB counts free
	// local memory behind exhausted cores, so small pool-share changes
	// move it by fractions of a percent in either direction).
	if lr.QoSViolations > fr.QoSViolations {
		t.Fatalf("retraining worsened QoS: %d vs %d violations", lr.QoSViolations, fr.QoSViolations)
	}
	if lr.Rejected > fr.Rejected {
		t.Fatalf("retraining worsened admission: %d vs %d rejections", lr.Rejected, fr.Rejected)
	}
	if lr.AvgStrandedGB > fr.AvgStrandedGB*1.01 {
		t.Fatalf("retraining worsened stranding beyond noise: %.2f vs %.2f GB",
			lr.AvgStrandedGB, fr.AvgStrandedGB)
	}
	// The report must surface the lifecycle.
	if lr.Retrains == 0 || len(lr.Lifecycle) == 0 {
		t.Fatalf("lifecycle missing from report: %+v", lr.Lifecycle)
	}
}

func TestDriftInjectionShiftsArrivals(t *testing.T) {
	o := testOptions()
	base, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Injections, err = ParseInjections("drift@t=200:mag=0.8")
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(drifted.EventLog, "inject drift mag=0.8") {
		t.Fatal("drift injection missing from event log")
	}
	if base.LogSHA256 == drifted.LogSHA256 {
		t.Fatal("drift did not change the event stream")
	}
}

func TestDriftAppliesToTraceArrivals(t *testing.T) {
	o := testOptions()
	o.Arrival = ArrivalModel{Kind: ArrivalTrace}
	o.DurationSec = 2000
	base, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Injections, err = ParseInjections("drift@t=1000:mag=0.7")
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if base.LogSHA256 == drifted.LogSHA256 {
		t.Fatal("drift did not alter the trace-derived stream")
	}
}

func TestRetrainRequiresPredictions(t *testing.T) {
	o := testOptions() // Predictions: false
	o.RetrainEverySec = 100
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("retraining without predictions should be rejected")
	}
	o = testOptions()
	o.Predictions = true
	o.RetrainEverySec = -5
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("negative retrain interval should be rejected")
	}
	o = testOptions()
	o.Predictions = true
	o.RetrainEverySec = 100
	o.PromoteMargin = 1.5
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("promotion margin >= 1 should be rejected")
	}
}

func TestCaptureModelsDumpsSnapshots(t *testing.T) {
	o := testOptions()
	o.Predictions = true
	o.DurationSec = 800
	o.Arrival.RatePerSec = 0.2
	o.RetrainEverySec = 200
	o.MinTrainRows = 16
	o.CaptureModels = true
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ModelDumps) != o.Cells {
		t.Fatalf("got %d model dumps for %d cells", len(rep.ModelDumps), o.Cells)
	}
	var snaps []map[string]any
	if err := json.Unmarshal(rep.ModelDumps[0], &snaps); err != nil {
		t.Fatalf("cell dump is not valid JSON: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("cell dump holds no models")
	}
	if snaps[0]["role"] != "champion" {
		t.Fatalf("first snapshot is %v, want the champion", snaps[0]["role"])
	}
}

// fleetScopeOptions is the staged-rollout scenario shared by the fleet
// acceptance tests: four cells with the central pipeline retraining at a
// 400 s cadence.
func fleetScopeOptions() Options {
	o := DefaultOptions()
	o.Cells = 4
	o.Hosts = 4
	o.EMCs = 4
	o.PoolGB = 128
	o.DurationSec = 6000
	o.Seed = 2
	o.Arrival = ArrivalModel{Kind: ArrivalPoisson, RatePerSec: 0.15, MeanLifetimeSec: 300}
	o.Predictions = true
	o.RetrainEverySec = 400
	o.ModelScope = ScopeFleet
	return o
}

func TestStagedRolloutContainsBadChallengerUnderRegionalDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("staged-rollout acceptance needs the full horizon; covered in the full tier")
	}
	// Regional drift hits only cells 2-3: challengers trained after
	// t=2500 learn from a corpus polluted by the drifted region, and the
	// canary bake on (undrifted) cell 0 must catch the bad ones.
	base := fleetScopeOptions()
	var err error
	base.Injections, err = ParseInjections("drift@t=2500:cells=2-3:mag=0.9")
	if err != nil {
		t.Fatal(err)
	}

	var reps []*Report
	for _, workers := range []int{1, 4, 8} {
		o := base
		o.Workers = workers
		rep, rerr := Run(context.Background(), o)
		if rerr != nil {
			t.Fatalf("workers=%d: %v", workers, rerr)
		}
		reps = append(reps, rep)
	}
	// The event log — stage transitions included — and the rollout
	// history are byte-identical for every worker count.
	for i := 1; i < len(reps); i++ {
		if reps[i].EventLog != reps[0].EventLog || reps[i].LogSHA256 != reps[0].LogSHA256 {
			t.Fatalf("fleet-scoped event log differs between worker counts 1 and %d", []int{1, 4, 8}[i])
		}
		if len(reps[i].Rollout) != len(reps[0].Rollout) {
			t.Fatal("rollout history length differs between worker counts")
		}
		for j := range reps[i].Rollout {
			if reps[i].Rollout[j] != reps[0].Rollout[j] {
				t.Fatalf("rollout history differs at step %d between worker counts", j)
			}
		}
	}
	rep := reps[0]

	// The canary bake must have rolled back at least one challenger
	// trained during the partial-fleet regime (after the drift).
	trainedAt := map[int]float64{}
	for _, e := range rep.Rollout {
		if e.Kind == fleetpipeline.EventRetrain {
			trainedAt[e.Ver] = e.AtSec
		}
	}
	var rolledBack []int
	postDriftRollback := false
	for _, e := range rep.Rollout {
		if e.Kind == fleetpipeline.EventRollback {
			rolledBack = append(rolledBack, e.Ver)
			if trainedAt[e.Ver] >= 2500 {
				postDriftRollback = true
			}
		}
	}
	if len(rolledBack) == 0 {
		t.Fatal("no challenger was ever rolled back")
	}
	if !postDriftRollback {
		t.Fatalf("no rollback of a challenger trained during the drifted regime; rollbacks: %v, trained at: %v",
			rolledBack, trainedAt)
	}

	// Containment: zero non-canary cells ever served a rolled-back
	// release. Canary sets are the lowest cell indices, so every cell
	// beyond the canary fraction must have served promoted versions only.
	canary := map[int]bool{}
	for _, e := range rep.Rollout {
		if e.Kind == fleetpipeline.EventCanaryStart {
			for c := e.CanaryLo; c <= e.CanaryHi; c++ {
				canary[c] = true
			}
		}
	}
	bad := map[int]bool{}
	for _, v := range rolledBack {
		bad[v] = true
	}
	for _, c := range rep.Cells {
		if canary[c.Cell] {
			continue
		}
		for _, v := range c.ServedVersions {
			if bad[v] {
				t.Fatalf("non-canary cell %d served rolled-back release %d (served %v)", c.Cell, v, c.ServedVersions)
			}
		}
	}
	// And the containment must be visible in the event log itself: pin
	// lines for rolled-back versions appear only under canary cells.
	for _, v := range rolledBack {
		for _, line := range strings.Split(rep.EventLog, "\n") {
			if !strings.Contains(line, fmt.Sprintf("fleetpipeline pin ver=%d ", v)) {
				continue
			}
			isCanaryLine := false
			for c := range canary {
				if strings.HasPrefix(line, fmt.Sprintf("[c%d ", c)) {
					isCanaryLine = true
				}
			}
			if !isCanaryLine {
				t.Fatalf("rolled-back release %d pinned outside the canary set: %s", v, line)
			}
		}
	}
}

func TestFleetScopeNoWorseThanCellScopeUnderUniformDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-vs-cell A/B needs the full horizon; covered in the full tier")
	}
	inj, err := ParseInjections("drift@t=2500:mag=0.6")
	if err != nil {
		t.Fatal(err)
	}
	cell := fleetScopeOptions()
	cell.ModelScope = ScopeCell
	cell.Injections = inj
	cr, err := Run(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	fl := fleetScopeOptions()
	fl.Injections = inj
	fr, err := Run(context.Background(), fl)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Promotions == 0 {
		t.Fatal("the release train never promoted; the fleet pipeline never engaged")
	}
	// Pooling telemetry across cells gives the fleet champion more
	// post-drift rows than any single cell sees: end-of-run prediction
	// error must be no worse than the per-cell lifecycle's.
	if fr.PredErrFinal > cr.PredErrFinal {
		t.Fatalf("fleet-scoped end-of-run prediction error %.4f worse than cell-scoped %.4f",
			fr.PredErrFinal, cr.PredErrFinal)
	}
	if fr.PredErrMean > cr.PredErrMean {
		t.Fatalf("fleet-scoped whole-run prediction error %.4f worse than cell-scoped %.4f",
			fr.PredErrMean, cr.PredErrMean)
	}
	// Admission must not regress either.
	if fr.Rejected > cr.Rejected {
		t.Fatalf("fleet scope worsened admission: %d vs %d rejections", fr.Rejected, cr.Rejected)
	}
}

func TestFleetScopeSmoke(t *testing.T) {
	// Short-tier sanity: the barrier loop runs, pins appear in the log,
	// and the fleet summary line lands at the end of the event log.
	o := testOptions()
	o.Predictions = true
	o.DurationSec = 800
	o.Arrival.RatePerSec = 0.2
	o.RetrainEverySec = 200
	o.MinTrainRows = 16
	o.ModelScope = ScopeFleet
	o.CaptureModels = true
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retrains == 0 {
		t.Fatal("fleet pipeline never trained")
	}
	if !strings.Contains(rep.EventLog, "fleetpipeline retrain ver=1") ||
		!strings.Contains(rep.EventLog, "fleetpipeline pin ver=1 role=canary") {
		t.Fatalf("fleet log missing rollout markers:\n%s", grepLine(rep.EventLog, "fleetpipeline"))
	}
	if !strings.Contains(rep.EventLog, "[fleet t=800.000] fleetpipeline summary") {
		t.Fatal("fleet summary line missing")
	}
	// One release-train dump, not one per cell.
	if len(rep.ModelDumps) != 1 {
		t.Fatalf("got %d model dumps, want 1 release-train dump", len(rep.ModelDumps))
	}
	var snaps []map[string]any
	if err := json.Unmarshal(rep.ModelDumps[0], &snaps); err != nil || len(snaps) == 0 {
		t.Fatalf("release-train dump unreadable: %v", err)
	}
	if snaps[0]["role"] != "champion" || snaps[0]["cell"] != float64(-1) {
		t.Fatalf("first snapshot = %v, want the fleet champion (cell -1)", snaps[0])
	}
	// Every cell starts on the bootstrap release.
	for _, c := range rep.Cells {
		if len(c.ServedVersions) == 0 || c.ServedVersions[0] != 0 {
			t.Fatalf("cell %d served versions %v, want bootstrap first", c.Cell, c.ServedVersions)
		}
	}
}

func TestFleetScopeValidation(t *testing.T) {
	o := testOptions() // Predictions: false
	o.ModelScope = ScopeFleet
	o.Predictions = true
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("fleet scope without retraining should be rejected")
	}
	o = testOptions()
	o.Predictions = true
	o.RetrainEverySec = 100
	o.ModelScope = "galaxy"
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("unknown model scope should be rejected")
	}
	o = testOptions()
	o.Predictions = true
	o.RetrainEverySec = 100
	o.ModelScope = ScopeFleet
	o.CanaryFraction = 1.5
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("canary fraction > 1 should be rejected")
	}
	o = testOptions()
	o.Predictions = true
	o.RetrainEverySec = 100
	o.ModelScope = ScopeFleet
	o.BakeWindowSec = -1
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("negative bake window should be rejected")
	}
	// Rollout knobs under cell scope are a configuration mistake.
	o = testOptions()
	o.Predictions = true
	o.RetrainEverySec = 100
	o.CanaryFraction = 0.5
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("canary fraction under cell scope should be rejected")
	}
}

func TestRegionalDriftOnlyShiftsTargetCells(t *testing.T) {
	// A drift hitting cells 1-2 must change those cells' streams and
	// leave cells 0's arrivals untouched. Predictions are on so the
	// shifted ground truth actually reaches the decision log.
	o := testOptions()
	o.Predictions = true
	base, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Injections, err = ParseInjections("drift@t=200:cells=1-2:mag=0.8")
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(drifted.EventLog, "inject drift mag=0.8 cells=1-2 applied=false") {
		t.Fatal("out-of-range cell missing the applied=false marker")
	}
	if !strings.Contains(drifted.EventLog, "inject drift mag=0.8 cells=1-2 applied=true") {
		t.Fatal("in-range cell missing the applied=true marker")
	}
	// Cell 0 is out of range: its arrival stream is unchanged (only the
	// injection marker line differs).
	strip := func(log string) string {
		var keep []string
		for _, l := range strings.Split(log, "\n") {
			if !strings.Contains(l, "inject drift") {
				keep = append(keep, l)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(base.Cells[0].Log) != strip(drifted.Cells[0].Log) {
		t.Fatal("regional drift changed an out-of-range cell's stream")
	}
	if strip(base.Cells[1].Log) == strip(drifted.Cells[1].Log) {
		t.Fatal("regional drift did not change an in-range cell's stream")
	}
	// Beyond-range validation.
	o.Injections, err = ParseInjections("drift@t=200:cells=2-9:mag=0.8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("cell range beyond the fleet should be rejected")
	}
}

func TestParseRegionalDrift(t *testing.T) {
	ins, err := ParseInjections("drift@t=2000:cells=2-3:mag=0.6")
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].CellLo != 2 || ins[0].CellHi != 3 || ins[0].Mag != 0.6 {
		t.Fatalf("regional drift parsed as %+v", ins[0])
	}
	if got := ins[0].String(); got != "drift@t=2000:cells=2-3:mag=0.6" {
		t.Fatalf("regional drift renders as %q", got)
	}
	// Round trip.
	again, err := ParseInjections(ins[0].String())
	if err != nil || again[0] != ins[0] {
		t.Fatalf("regional drift did not round-trip: %+v (%v)", again, err)
	}
	// Single-cell form.
	ins, err = ParseInjections("drift@t=100:cells=1")
	if err != nil || ins[0].CellLo != 1 || ins[0].CellHi != 1 {
		t.Fatalf("single-cell drift parsed as %+v (%v)", ins, err)
	}
	// Fleet-wide drift keeps the legacy render and the all-cells
	// sentinel.
	ins, err = ParseInjections("drift@t=100")
	if err != nil || ins[0].CellHi >= 0 || !ins[0].AppliesTo(7) {
		t.Fatalf("fleet-wide drift parsed as %+v (%v)", ins, err)
	}
	for _, bad := range []string{
		"drift@t=1:cells=", "drift@t=1:cells=a", "drift@t=1:cells=3-1",
		"drift@t=1:cells=-1-2", "drift@t=1:cells=1-", "emc-fail@t=1:cells=0-1",
		"surge@t=1:cells=0", "drift@t=1:cells=1-2-3",
	} {
		if _, err := ParseInjections(bad); err == nil {
			t.Fatalf("spec %q should fail to parse", bad)
		}
	}
}

func TestParseTopologies(t *testing.T) {
	names, err := ParseTopologies("flat, sharded,sparse")
	if err != nil || len(names) != 3 || names[1] != "sharded" {
		t.Fatalf("parsed %v (%v)", names, err)
	}
	for _, bad := range []string{"", "flat,", ",flat", "flat,,sparse", "moebius", "flat sharded"} {
		if _, err := ParseTopologies(bad); err == nil {
			t.Fatalf("topology list %q should fail to parse", bad)
		}
	}
}

func TestParseDriftInjection(t *testing.T) {
	ins, err := ParseInjections("drift@t=2000:mag=0.6")
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Kind != InjectDrift || ins[0].AtSec != 2000 || ins[0].Mag != 0.6 {
		t.Fatalf("drift parsed as %+v", ins[0])
	}
	if ins[0].String() != "drift@t=2000:mag=0.6" {
		t.Fatalf("drift renders as %q", ins[0].String())
	}
	if ins, err := ParseInjections("drift@t=100"); err != nil || ins[0].Mag != 0.5 {
		t.Fatalf("default drift magnitude = %+v (%v)", ins, err)
	}
	for _, bad := range []string{"drift@t=1:mag=0", "drift@t=1:mag=1.5", "drift@t=1:mag=-1"} {
		if _, err := ParseInjections(bad); err == nil {
			t.Fatalf("spec %q should fail to parse", bad)
		}
	}
}

func TestParseResizeInjection(t *testing.T) {
	ins, err := ParseInjections("resize@t=500:emc=1:slices=-8")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Kind != InjectResize || ins[0].EMC != 1 || ins[0].Slices != -8 {
		t.Fatalf("parsed %+v", ins)
	}
	// String() round-trips, the explicit plus sign included.
	if s := ins[0].String(); s != "resize@t=500:emc=1:slices=-8" {
		t.Fatalf("String() = %q", s)
	}
	grow, err := ParseInjections("resize@t=1:slices=+16")
	if err != nil || grow[0].Slices != 16 {
		t.Fatalf("grow spec parsed as %+v (%v)", grow, err)
	}
	if again, err := ParseInjections(grow[0].String()); err != nil || again[0] != grow[0] {
		t.Fatalf("grow spec did not round-trip via %q: %+v (%v)", grow[0].String(), again, err)
	}
	for _, bad := range []string{
		"resize@t=1",                             // missing slices
		"resize@t=1:slices=0",                    // zero delta
		"resize@t=1:slices=1.5",                  // non-integer
		"resize@t=1:dur=5:slices=4",              // inapplicable param
		"resize@t=1:mag=0.5",                     // inapplicable param
		"resize@t=1:host=2:slices=4",             // inapplicable param
		"resize@t=1:cells=0:slices=4",            // inapplicable param
		"resize@t=1:emc=-1:slices=4",             // negative target
		"resize@t=1:slices=-9223372036854775808", // negation would overflow
		"resize@t=1:slices=2000000",              // beyond MaxResizeSlices
	} {
		if _, err := ParseInjections(bad); err == nil {
			t.Fatalf("spec %q should fail to parse", bad)
		}
	}
}

func TestElasticValidation(t *testing.T) {
	// Elastic knobs without the elastic pool are rejected.
	o := testOptions()
	o.PlanEverySec = 100
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("plan cadence without the elastic pool should fail")
	}
	o = testOptions()
	o.TargetQoS = 0.05
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("QoS target without the elastic pool should fail")
	}
	// A cadence beyond the horizon never fires.
	o = testOptions()
	o.ElasticPool = true
	o.PlanEverySec = o.DurationSec
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("plan cadence at the horizon should fail")
	}
	// Out-of-domain QoS target.
	o = testOptions()
	o.ElasticPool = true
	o.TargetQoS = 1.5
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("QoS target above 1 should fail")
	}
	// Resize injections validate the EMC range and the delta.
	o = testOptions()
	o.Injections = []Injection{{Kind: InjectResize, AtSec: 1, EMC: 99, Slices: 4, CellHi: -1}}
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("out-of-range resize EMC should fail")
	}
	o = testOptions()
	o.Injections = []Injection{{Kind: InjectResize, AtSec: 1, EMC: 0, Slices: 0, CellHi: -1}}
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("zero-slice resize should fail")
	}
}

func TestResizeInjectionChangesPool(t *testing.T) {
	o := testOptions()
	var err error
	o.Injections, err = ParseInjections("resize@t=100:emc=1:slices=+8,resize@t=200:emc=2:slices=-4")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"inject resize emc=1 slices=+8 applied=+8",
		"inject resize emc=2 slices=-4 applied=-4",
	} {
		if !strings.Contains(rep.EventLog, want) {
			t.Fatalf("event log missing %q:\n%s", want, grepLine(rep.EventLog, "resize"))
		}
	}
	// Net +4 GB per cell at run end, and the summary reflects it.
	wantPool := (o.PoolGB + 4) * o.Cells
	if rep.FinalPoolGB != wantPool {
		t.Fatalf("final pool %d GB, want %d", rep.FinalPoolGB, wantPool)
	}
	// Growth above static provisioning reads as negative savings.
	if rep.DRAMSavedGB >= 0 {
		t.Fatalf("net growth should read as negative savings, got %.2f", rep.DRAMSavedGB)
	}
	if !strings.Contains(rep.EventLog, "elastic summary") {
		t.Fatal("resized run missing the elastic summary line")
	}
}

func TestElasticPoolSmokeAndDeterminism(t *testing.T) {
	base := testOptions()
	base.Predictions = true
	base.Arrival.RatePerSec = 0.2
	base.ElasticPool = true
	base.PlanEverySec = 100

	var reps []*Report
	for _, workers := range []int{1, 3, 8} {
		o := base
		o.Workers = workers
		rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reps = append(reps, rep)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i].EventLog != reps[0].EventLog || reps[i].LogSHA256 != reps[0].LogSHA256 {
			t.Fatalf("elastic event log differs between worker counts 1 and %d", []int{1, 3, 8}[i])
		}
	}
	rep := reps[0]
	if len(rep.PlanHistory) == 0 {
		t.Fatal("elastic run produced no planning decisions")
	}
	if !strings.Contains(rep.EventLog, "plan pool=") {
		t.Fatal("plan decisions missing from the event log")
	}
	// The default pool is grossly oversized for this stream: the
	// controller must have shrunk it and banked savings.
	if rep.FinalPoolGB >= base.PoolGB*base.Cells {
		t.Fatalf("final pool %d GB did not shrink below static %d", rep.FinalPoolGB, base.PoolGB*base.Cells)
	}
	if rep.DRAMSavedGB <= 0 {
		t.Fatalf("no DRAM saved: %.2f", rep.DRAMSavedGB)
	}
	// Plan history agrees with the per-cell plans.
	n := 0
	for _, c := range rep.Cells {
		n += len(c.Plans)
	}
	if n != len(rep.PlanHistory) {
		t.Fatalf("plan history has %d entries, cells carry %d", len(rep.PlanHistory), n)
	}
	// The whole-run demand distribution rides along for the offline
	// planner.
	for _, c := range rep.Cells {
		if c.Demand == nil || c.Demand.TotalSec() <= 0 {
			t.Fatalf("cell %d missing its demand distribution", c.Cell)
		}
	}
}

// TestElasticPlannerSavesDRAMAtNoWorseQoS is the capacity-loop
// acceptance test: on a drift-free trace workload the planner-driven
// elastic pool must bank strictly positive DRAM savings versus the
// static baseline while violating QoS and rejecting VMs no more often —
// Pond's §7 right-sizing claim, reproduced end to end in the online
// loop. The elastic event log must also be byte-identical for every
// worker count.
func TestElasticPlannerSavesDRAMAtNoWorseQoS(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity acceptance needs the full horizon; covered in the full tier")
	}
	base := testOptions()
	base.Predictions = true
	base.Arrival = ArrivalModel{Kind: ArrivalTrace}
	base.DurationSec = 2000
	base.PoolGB = 128

	static, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	elastic := base
	elastic.ElasticPool = true
	elastic.PlanEverySec = 250
	elastic.TargetQoS = 0.01

	var reps []*Report
	for _, workers := range []int{1, 4, 8} {
		o := elastic
		o.Workers = workers
		rep, rerr := Run(context.Background(), o)
		if rerr != nil {
			t.Fatalf("workers=%d: %v", workers, rerr)
		}
		reps = append(reps, rep)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i].EventLog != reps[0].EventLog || reps[i].LogSHA256 != reps[0].LogSHA256 {
			t.Fatalf("elastic event log differs between worker counts 1 and %d", []int{1, 4, 8}[i])
		}
	}
	rep := reps[0]

	if rep.DRAMSavedGB <= 0 {
		t.Fatalf("elastic pool saved no DRAM: %.2f GB", rep.DRAMSavedGB)
	}
	if rep.QoSViolations > static.QoSViolations {
		t.Fatalf("elastic pool worsened QoS: %d violations vs static %d",
			rep.QoSViolations, static.QoSViolations)
	}
	if rep.Rejected > static.Rejected {
		t.Fatalf("elastic pool worsened admission: %d rejections vs static %d",
			rep.Rejected, static.Rejected)
	}
	if rep.FinalPoolGB >= base.PoolGB*base.Cells {
		t.Fatalf("final pool %d GB not below static %d", rep.FinalPoolGB, base.PoolGB*base.Cells)
	}
}

func TestIndivisiblePoolBanksNoPhantomSavings(t *testing.T) {
	// 130 GB across 4 EMCs provisions 128 GB (the per-EMC share rounds
	// down); the savings baseline must be what was provisioned, not the
	// requested figure — a static run saves exactly nothing.
	o := testOptions()
	o.PoolGB = 130
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DRAMSavedGB != 0 {
		t.Fatalf("static run banked %.2f GB of phantom savings", rep.DRAMSavedGB)
	}
	if rep.FinalPoolGB != 128*o.Cells {
		t.Fatalf("final pool %d GB, want the provisioned %d", rep.FinalPoolGB, 128*o.Cells)
	}
	if strings.Contains(rep.EventLog, "elastic summary") {
		t.Fatal("static run emitted an elastic summary line")
	}
}
