package fleet

import (
	"context"
	"math"
	"testing"

	"pond/internal/stats"
)

// metricsTestOptions is a small fleet with the full control plane on —
// predictions, retraining, injections — so the determinism bridge is
// tested against the busiest code paths, not a quiet baseline.
func metricsTestOptions(t *testing.T) Options {
	t.Helper()
	o := testOptions()
	o.Predictions = true
	o.RetrainEverySec = 100
	inj, err := ParseInjections("surge@t=50:dur=100:x=3,emc-fail@t=200")
	if err != nil {
		t.Fatal(err)
	}
	o.Injections = inj
	return o
}

// TestMetricsOnOffLogIdentity is the tentpole's hard requirement: the
// event log and its hash are byte-identical with sampling on or off, at
// multiple worker counts, under retraining and injections.
func TestMetricsOnOffLogIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		off := metricsTestOptions(t)
		off.Workers = workers
		repOff, err := Run(context.Background(), off)
		if err != nil {
			t.Fatalf("workers=%d off: %v", workers, err)
		}

		on := metricsTestOptions(t)
		on.Workers = workers
		on.MetricsEverySec = 7 // deliberately not a divisor of the horizon
		repOn, err := Run(context.Background(), on)
		if err != nil {
			t.Fatalf("workers=%d on: %v", workers, err)
		}

		if repOn.EventLog != repOff.EventLog {
			t.Fatalf("workers=%d: event log differs with metrics on", workers)
		}
		if repOn.LogSHA256 != repOff.LogSHA256 {
			t.Fatalf("workers=%d: log hash differs with metrics on", workers)
		}

		rows := 0
		sawPredErr := false
		for _, c := range repOn.Cells {
			for _, row := range c.Series {
				rows++
				if r := row.TSec / 7; r != math.Trunc(r) {
					t.Fatalf("sample at t=%g is not on the 7s cadence", row.TSec)
				}
				if row.TSec <= 0 || row.TSec > on.DurationSec {
					t.Fatalf("sample at t=%g outside (0, %g]", row.TSec, on.DurationSec)
				}
				if row.PredErrEWMA > 0 {
					sawPredErr = true
				}
			}
			if len(c.Series) == 0 {
				t.Fatalf("cell %d sampled no rows", c.Cell)
			}
		}
		if rows == 0 {
			t.Fatal("metrics on produced no series rows")
		}
		if !sawPredErr {
			t.Fatal("no sampled row carries a prediction-error EWMA despite predictions being on")
		}
	}
}

// TestMetricsSeriesSliceIndependent checks the companion invariant: the
// sampled series itself — not just the log — is identical whether the
// horizon runs in one shot or in ragged Advance slices.
func TestMetricsSeriesSliceIndependent(t *testing.T) {
	o := metricsTestOptions(t)
	o.MetricsEverySec = 7

	batch, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	var drained []MetricsRow
	for _, at := range []float64{13.7, 14, 99.99, 100, 256.5, 399.2} {
		if err := r.Advance(ctx, at); err != nil {
			t.Fatalf("advance to %g: %v", at, err)
		}
		drained = append(drained, r.DrainMetrics()...)
	}
	if _, err := r.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	drained = append(drained, r.DrainMetrics()...)

	byCell := make(map[int][]MetricsRow)
	for _, row := range drained {
		byCell[row.Cell] = append(byCell[row.Cell], row)
	}
	for _, c := range batch.Cells {
		got := byCell[c.Cell]
		if len(got) != len(c.Series) {
			t.Fatalf("cell %d: sliced run drained %d rows, batch sampled %d", c.Cell, len(got), len(c.Series))
		}
		for i := range got {
			if got[i] != c.Series[i] {
				t.Fatalf("cell %d row %d differs:\nsliced: %+v\nbatch:  %+v", c.Cell, i, got[i], c.Series[i])
			}
		}
	}
}

// TestMetricsRingOverflowKeepsLatest exercises the bounded-ring path: a
// run that outproduces its ring keeps the newest rows and counts the
// overwritten ones.
func TestMetricsRingOverflowKeepsLatest(t *testing.T) {
	saved := maxMetricsRing
	maxMetricsRing = 4
	defer func() { maxMetricsRing = saved }()

	o := testOptions()
	o.Cells = 1
	o.MetricsEverySec = 10 // 40 samples over the 400s horizon, ring of 4
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if len(c.Series) != 4 {
		t.Fatalf("ring of 4 yielded %d rows", len(c.Series))
	}
	if c.MetricsDropped != 36 {
		t.Fatalf("dropped = %d, want 36", c.MetricsDropped)
	}
	for i, want := range []float64{370, 380, 390, 400} {
		if c.Series[i].TSec != want {
			t.Fatalf("row %d at t=%g, want the newest rows ending at the horizon (%g)", i, c.Series[i].TSec, want)
		}
	}
}

// TestMetricsSnapshotRoundTrip proves the series survives
// checkpoint/restore: rows not yet drained ride inside the snapshot,
// and the restored run continues sampling on the same cadence so the
// combined series — and the event log — match an uninterrupted run.
func TestMetricsSnapshotRoundTrip(t *testing.T) {
	o := metricsTestOptions(t)
	o.MetricsEverySec = 7
	ctx := context.Background()

	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(ctx, 150); err != nil {
		t.Fatal(err)
	}
	// Deliberately do NOT drain: the snapshot must carry the ring rows.
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreRunner(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}

	finishAndDrain := func(run *Runner) ([]MetricsRow, string) {
		t.Helper()
		rows := run.DrainMetrics()
		rep, err := run.Finish(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, run.DrainMetrics()...)
		return rows, rep.LogSHA256
	}
	origRows, origSHA := finishAndDrain(r)
	restRows, restSHA := finishAndDrain(restored)

	if origSHA != restSHA {
		t.Fatalf("restored run log hash %s != original %s", restSHA, origSHA)
	}
	if len(origRows) != len(restRows) {
		t.Fatalf("restored run drained %d rows, original %d", len(restRows), len(origRows))
	}
	for i := range origRows {
		if origRows[i] != restRows[i] {
			t.Fatalf("row %d differs after restore:\noriginal: %+v\nrestored: %+v", i, origRows[i], restRows[i])
		}
	}
	if len(origRows) == 0 {
		t.Fatal("round trip exercised no rows")
	}
}

// TestWarmedCellSteadyStateAllocsWithMetrics re-runs the zero-alloc
// steady-state bound with sampling on at a 1s cadence: rows land in the
// preallocated ring, so the budget is identical to the metrics-off
// test. A regression that allocates per sample trips this immediately.
func TestWarmedCellSteadyStateAllocsWithMetrics(t *testing.T) {
	o := testOptions()
	o.Cells = 1
	o.DurationSec = 2000
	o.Arrival = ArrivalModel{Kind: ArrivalPoisson, RatePerSec: 0.2, MeanLifetimeSec: 200}
	o.MetricsEverySec = 1

	sim, err := newCellSim(0, o, nil, 0, stats.NewRand(o.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.runUntil(1000, false); err != nil {
		t.Fatal(err)
	}

	now := 1000.0
	avg := testing.AllocsPerRun(100, func() {
		now += 5
		if err := sim.runUntil(now, false); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("avg allocs per 5s slice with sampling: %.2f", avg)
	if avg > 8 {
		t.Fatalf("steady-state allocations = %.1f per 5s slice with sampling on, want ~0", avg)
	}
}
