package fleet

// Per-run sim-time metrics: when Options.MetricsEverySec > 0, every
// cell samples a compact row of its live state at each multiple of the
// cadence into a preallocated ring. Sampling is determinism-safe by
// construction — it only *reads* sim state (occupancy, pool draw,
// queue depth), never calls account() or touches an RNG, so the event
// log and report hashes are byte-identical with metrics on or off.
// Sample times are computed as k*cadence with an integer k, so the
// series is independent of how the horizon is sliced into Advance
// epochs, and the ring index round-trips through snapshots exactly.

// MetricsRow is one sampled point of a cell's sim-time series.
type MetricsRow struct {
	// Cell is the sampling cell; TSec the simulated sample time.
	Cell int     `json:"cell"`
	TSec float64 `json:"t_sec"`
	// LiveVMs is the count of placed, not-yet-departed VMs.
	LiveVMs int `json:"live_vms"`
	// PoolUsedGB / PoolFreeGB split the cell's active pool capacity.
	PoolUsedGB float64 `json:"pool_used_gb"`
	PoolFreeGB float64 `json:"pool_free_gb"`
	// PendingEvents is the cell event-queue depth.
	PendingEvents int `json:"pending_events"`
	// PredErrEWMA is the exponentially-weighted mean absolute error of
	// the pool-placement prediction against ground-truth untouched
	// memory, updated at each departure (0 without predictions).
	PredErrEWMA float64 `json:"pred_err_ewma"`
}

// maxMetricsRing caps the per-cell ring so a huge horizon with a tiny
// cadence cannot balloon memory; rows past the cap overwrite oldest
// and are counted in CellResult.MetricsDropped. A var, not a const, so
// tests can shrink it to exercise the overflow path.
var maxMetricsRing = 8192

// predErrAlpha is the EWMA smoothing factor of the pred-err series.
const predErrAlpha = 0.05

// metricsRingCap sizes a cell's ring: every expected sample plus slack,
// bounded by maxMetricsRing. Serially drained runs (pondserve, the
// -metrics NDJSON writer) never approach the cap; one-shot batch runs
// keep the most recent maxMetricsRing rows.
func metricsRingCap(durationSec, everySec float64) int {
	n := int(durationSec/everySec) + 2
	if n > maxMetricsRing {
		n = maxMetricsRing
	}
	return n
}

// sampleMetricsUpTo emits every pending sample with time < limit — and
// == limit when inclusive — in time order. Call sites mirror runUntil's
// event-boundary rules (see there), which is what makes the series
// independent of horizon slicing.
func (c *cellSim) sampleMetricsUpTo(limit float64, inclusive bool) {
	if c.metricsEvery <= 0 {
		return
	}
	for {
		s := float64(c.sampleK) * c.metricsEvery
		if s > limit || (!inclusive && s == limit) {
			return
		}
		c.sampleMetrics(s)
		c.sampleK++
	}
}

// sampleMetrics reads the cell's live state into one ring row. Strictly
// read-only over sim state: the host scan mirrors account()'s pool-use
// arithmetic without advancing any integral.
func (c *cellSim) sampleMetrics(at float64) {
	poolUsed := 0.0
	for _, h := range c.hosts {
		poolUsed += h.OnlinePoolGB() - h.FreePoolGB()
	}
	free := float64(c.poolGB) - poolUsed
	if free < 0 {
		free = 0
	}
	row := MetricsRow{
		Cell:          c.cell,
		TSec:          at,
		LiveVMs:       len(c.running),
		PoolUsedGB:    poolUsed,
		PoolFreeGB:    free,
		PendingEvents: len(c.q),
		PredErrEWMA:   c.predErrEWMA,
	}
	if c.ringLen == len(c.ring) {
		// Full: overwrite the oldest row and count the loss.
		c.ring[c.ringStart] = row
		c.ringStart = (c.ringStart + 1) % len(c.ring)
		c.ringDropped++
		return
	}
	c.ring[(c.ringStart+c.ringLen)%len(c.ring)] = row
	c.ringLen++
}

// drainMetricsInto appends the ring's rows in sample order and empties
// it. The Runner calls this serially in cell order at safe points.
func (c *cellSim) drainMetricsInto(out []MetricsRow) []MetricsRow {
	for i := 0; i < c.ringLen; i++ {
		out = append(out, c.ring[(c.ringStart+i)%len(c.ring)])
	}
	c.ringStart, c.ringLen = 0, 0
	return out
}

// observePredErr folds one departure's absolute prediction error into
// the EWMA: the decision's pool fraction is the untouched-memory
// prediction that placed the VM, the ground truth is what the VM
// actually touched. Only runs when sampling is on — the EWMA feeds the
// metrics series and nothing else, so the simulation's own outputs are
// identical either way.
func (c *cellSim) observePredErr(rv *runningVM) {
	if c.metricsEvery <= 0 {
		return
	}
	pred := 0.0
	if mem := rv.vm.Type.MemoryGB; mem > 0 {
		pred = rv.dec.PoolGB / mem
	}
	e := pred - rv.vm.GroundTruth.UntouchedFrac
	if e < 0 {
		e = -e
	}
	if c.predErrN == 0 {
		c.predErrEWMA = e
	} else {
		c.predErrEWMA += predErrAlpha * (e - c.predErrEWMA)
	}
	c.predErrN++
}

// DrainMetrics returns the sim-time metrics rows sampled since the
// previous drain, cells in cell order, each cell's rows in time order.
// Like DrainEvents it must be called at a safe point; drained rows are
// released from the rings. With MetricsEverySec unset it returns nil.
func (r *Runner) DrainMetrics() []MetricsRow {
	if r.o.MetricsEverySec <= 0 {
		return nil
	}
	var out []MetricsRow
	for _, s := range r.sims {
		out = s.drainMetricsInto(out)
	}
	return out
}
