package fleet

import (
	"context"
	"crypto/sha256"
	"encoding"
	"fmt"
	"hash"
	"sort"
	"strings"

	"pond/internal/capacity"
	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/emc"
	"pond/internal/host"
	"pond/internal/mlops"
	"pond/internal/mlops/fleetpipeline"
	"pond/internal/pool"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/telemetry"
)

// SnapshotVersion is the wire version of Snapshot. Bump it on any
// incompatible change; RestoreRunner refuses other versions.
const SnapshotVersion = 1

// Snapshot is the complete serializable state of a Runner paused at a
// safe point. Restoring it in a fresh process yields a Runner whose
// remaining event log — and final report hash — are byte-identical to
// the uninterrupted run, for any worker count, at a cost independent of
// how much simulated time had already elapsed: nothing is re-simulated.
//
// The capture rule: dynamic state that affects future events or the
// final report is carried (RNG vectors, the event heap verbatim,
// occupancy, accumulated telemetry and models, accounting integrals,
// log digests); anything derivable from the normalized Options is
// rebuilt (topology, arrival streams from their fork seeds, the trained
// bootstrap insensitivity model), and pure caches (serving-score memos,
// scratch freelists) restore empty — a miss recomputes the identical
// value.
type Snapshot struct {
	Version     int     `json:"version"`
	Options     Options `json:"options"`
	NowSec      float64 `json:"now_sec"`
	NextBarrier int     `json:"next_barrier"`
	Done        bool    `json:"done"`
	Compact     bool    `json:"compact,omitempty"`

	FleetLog LogStream                   `json:"fleet_log"`
	Pipeline *fleetpipeline.ManagerState `json:"pipeline,omitempty"`
	Cells    []CellState                 `json:"cells"`
}

// LogStream is one event-log stream: the retained tail, the drain mark
// into it, and — under compaction — the SHA-256 midstate of the
// released prefix with its line count.
type LogStream struct {
	Tail      string `json:"tail,omitempty"`
	Mark      int    `json:"mark,omitempty"`
	Digest    []byte `json:"digest,omitempty"`
	Compacted int    `json:"compacted,omitempty"`
}

// EventState is one pending event of a cell's queue. The heap's backing
// array is carried verbatim (it already satisfies the heap invariant),
// so restore is a straight copy.
type EventState struct {
	At   float64      `json:"at"`
	Seq  int          `json:"seq"`
	Kind int          `json:"kind"`
	Idx  int          `json:"idx,omitempty"`
	VM   cluster.VMID `json:"vm,omitempty"`
}

// RunningVMState is one placed VM still in flight.
type RunningVMState struct {
	VM   cluster.VMRequest `json:"vm"`
	Host int               `json:"host"`
	Dec  core.Decision     `json:"dec"`
}

// CellState is one cell's dynamic state.
type CellState struct {
	Cell     int             `json:"cell"`
	ArrSeed  int64           `json:"arr_seed"`
	PlaceRNG stats.RandState `json:"place_rng"`

	Heap    []EventState     `json:"heap,omitempty"`
	Seq     int              `json:"seq"`
	Running []RunningVMState `json:"running,omitempty"`
	Log     LogStream        `json:"log"`

	EMCs  []emc.State         `json:"emcs"`
	Pool  pool.State          `json:"pool"`
	Hosts []host.State        `json:"hosts"`
	Store telemetry.State     `json:"store"`
	Sched core.SchedulerState `json:"sched"`

	Server    *predict.ServerState          `json:"server,omitempty"`
	PinnedVer int                           `json:"pinned_ver,omitempty"`
	Mlops     *mlops.State                  `json:"mlops,omitempty"`
	Collector *fleetpipeline.CollectorState `json:"collector,omitempty"`

	// Sim-time metrics state (MetricsEverySec > 0; all omitted
	// otherwise): the next sample index, the undrained ring rows in
	// sample order, the cumulative overflow count, and the pred-err
	// EWMA with its observation count. Carrying these keeps the series
	// of a restored run byte-identical to an uninterrupted one.
	SampleK        int          `json:"sample_k,omitempty"`
	MetricsRows    []MetricsRow `json:"metrics_rows,omitempty"`
	MetricsDropped int          `json:"metrics_dropped,omitempty"`
	PredErrEWMA    float64      `json:"pred_err_ewma,omitempty"`
	PredErrN       int          `json:"pred_err_n,omitempty"`

	PlacedGB      float64              `json:"placed_gb"`
	PlacedPoolGB  float64              `json:"placed_pool_gb"`
	LastT         float64              `json:"last_t"`
	UtilSec       float64              `json:"util_sec"`
	StrandedGBSec float64              `json:"stranded_gb_sec"`
	LastPoolUsed  float64              `json:"last_pool_used"`
	AttemptGB     int                  `json:"attempt_gb,omitempty"`
	PoolGB        int                  `json:"pool_gb"`
	SavedGBSec    float64              `json:"saved_gb_sec"`
	LastFallbacks int64                `json:"last_fallbacks,omitempty"`
	DemandEpoch   capacity.DemandState `json:"demand_epoch"`
	DemandTotal   capacity.DemandState `json:"demand_total"`

	Result CellResult `json:"result"`
}

// logStream captures a builder-backed stream with its drain mark and
// optional digest midstate.
func logStream(full string, mark int, d hash.Hash, compacted int) (LogStream, error) {
	s := LogStream{Tail: full, Mark: mark, Compacted: compacted}
	if d != nil {
		b, err := d.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			return s, fmt.Errorf("fleet: log digest: %w", err)
		}
		s.Digest = b
	}
	return s, nil
}

// restoreLogStream loads a captured stream back into the builder and
// returns the rebuilt digest (nil when none was captured).
func restoreLogStream(b *strings.Builder, s LogStream) (hash.Hash, error) {
	if s.Mark < 0 || s.Mark > len(s.Tail) {
		return nil, fmt.Errorf("fleet: log drain mark %d outside %d-byte tail", s.Mark, len(s.Tail))
	}
	b.Reset()
	b.WriteString(s.Tail)
	if s.Digest == nil {
		return nil, nil
	}
	d := sha256.New()
	if err := d.(encoding.BinaryUnmarshaler).UnmarshalBinary(s.Digest); err != nil {
		return nil, fmt.Errorf("fleet: log digest: %w", err)
	}
	return d, nil
}

// Snapshot captures the paused run's complete state. It must be called
// at a safe point (any return from Advance) and refuses a run that has
// already assembled its report: Finish consumes the log digests.
func (r *Runner) Snapshot() (*Snapshot, error) {
	if r.rep != nil {
		return nil, fmt.Errorf("fleet: snapshot refused: run already finished")
	}
	s := &Snapshot{
		Version:     SnapshotVersion,
		Options:     r.o,
		NowSec:      r.now,
		NextBarrier: r.nextBarrier,
		Done:        r.done,
		Compact:     r.compact,
	}
	var err error
	if s.FleetLog, err = logStream(r.fleetLog.String(), r.fleetMark, r.fleetDigest, r.fleetCompacted); err != nil {
		return nil, err
	}
	if r.fp != nil {
		ms, merr := r.fp.State()
		if merr != nil {
			return nil, merr
		}
		s.Pipeline = &ms
	}
	s.Cells = make([]CellState, len(r.sims))
	for i, sim := range r.sims {
		if s.Cells[i], err = sim.state(r.marks[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// state captures one cell's dynamic state; mark is the Runner's drain
// offset into this cell's log.
func (c *cellSim) state(mark int) (CellState, error) {
	cs := CellState{
		Cell:     c.cell,
		ArrSeed:  c.arrSeed,
		PlaceRNG: c.rPlace.State(),
		Seq:      c.seq,

		Sched:     c.sched.State(),
		Store:     c.store.State(),
		Pool:      c.manager.State(),
		PinnedVer: c.pinnedVer,

		SampleK:        c.sampleK,
		MetricsDropped: c.ringDropped,
		PredErrEWMA:    c.predErrEWMA,
		PredErrN:       c.predErrN,

		PlacedGB:      c.placedGB,
		PlacedPoolGB:  c.placedPoolGB,
		LastT:         c.lastT,
		UtilSec:       c.utilSec,
		StrandedGBSec: c.strandedGBSec,
		LastPoolUsed:  c.lastPoolUsed,
		AttemptGB:     c.attemptGB,
		PoolGB:        c.poolGB,
		SavedGBSec:    c.savedGBSec,
		LastFallbacks: c.lastFallbacks,
		DemandEpoch:   c.demandEpoch.State(),
		DemandTotal:   c.demandTotal.State(),

		Result: c.res,
	}
	var err error
	if cs.Log, err = logStream(c.log.String(), mark, c.logDigest, c.compacted); err != nil {
		return cs, err
	}
	if c.ringLen > 0 {
		cs.MetricsRows = c.ring[:0:0]
		for i := 0; i < c.ringLen; i++ {
			cs.MetricsRows = append(cs.MetricsRows, c.ring[(c.ringStart+i)%len(c.ring)])
		}
	}
	cs.Heap = make([]EventState, len(c.q))
	for i, ev := range c.q {
		cs.Heap[i] = EventState{At: ev.at, Seq: ev.seq, Kind: ev.kind, Idx: ev.idx, VM: ev.vm}
	}
	ids := make([]cluster.VMID, 0, len(c.running))
	for id := range c.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rv := c.running[id]
		cs.Running = append(cs.Running, RunningVMState{VM: rv.vm, Host: rv.host, Dec: rv.dec})
	}
	cs.EMCs = make([]emc.State, len(c.devices))
	for i, d := range c.devices {
		cs.EMCs[i] = d.State()
	}
	cs.Hosts = make([]host.State, len(c.hosts))
	for i, h := range c.hosts {
		cs.Hosts[i] = h.State()
	}
	if c.srv != nil {
		st := c.srv.State()
		cs.Server = &st
	}
	if c.mgr != nil {
		ms, merr := c.mgr.State()
		if merr != nil {
			return cs, fmt.Errorf("cell %d: %w", c.cell, merr)
		}
		cs.Mlops = &ms
	}
	if c.col != nil {
		col := c.col.State()
		cs.Collector = &col
	}
	return cs, nil
}

// RestoreRunner rebuilds a paused Runner from a snapshot, in O(snapshot
// size): the static wiring is reconstructed from the options exactly as
// NewRunner does, then every cell's dynamic state is overwritten — no
// simulated time is replayed. The restored run continues byte-for-byte
// where the snapshot left off.
func RestoreRunner(ctx context.Context, s *Snapshot) (*Runner, error) {
	if s == nil {
		return nil, fmt.Errorf("fleet: nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("fleet: snapshot version %d not supported (want %d)", s.Version, SnapshotVersion)
	}
	o, err := normalize(s.Options)
	if err != nil {
		return nil, fmt.Errorf("fleet: snapshot options: %w", err)
	}
	insens, threshold := trainInsens(o)
	r, err := newRunner(ctx, o, insens, threshold)
	if err != nil {
		return nil, err
	}
	if len(s.Cells) != len(r.sims) {
		return nil, fmt.Errorf("fleet: snapshot has %d cells, options build %d", len(s.Cells), len(r.sims))
	}
	if s.NextBarrier < 0 || s.NextBarrier > len(r.barriers) {
		return nil, fmt.Errorf("fleet: snapshot barrier cursor %d outside the %d-barrier schedule", s.NextBarrier, len(r.barriers))
	}
	r.now = s.NowSec
	r.nextBarrier = s.NextBarrier
	r.done = s.Done
	r.compact = s.Compact
	if r.fleetDigest, err = restoreLogStream(&r.fleetLog, s.FleetLog); err != nil {
		return nil, err
	}
	r.fleetMark = s.FleetLog.Mark
	r.fleetCompacted = s.FleetLog.Compacted
	if s.Pipeline != nil {
		if r.fp == nil {
			return nil, fmt.Errorf("fleet: snapshot carries a release train but options are not fleet-scoped")
		}
		if err := r.fp.SetState(*s.Pipeline); err != nil {
			return nil, err
		}
	} else if r.fp != nil {
		return nil, fmt.Errorf("fleet: fleet-scoped options but snapshot carries no release train")
	}
	for i := range r.sims {
		if err := r.sims[i].restoreState(s.Cells[i], r.fp); err != nil {
			return nil, err
		}
		r.marks[i] = s.Cells[i].Log.Mark
	}
	return r, nil
}

// restoreState overwrites the freshly built cell with the snapshot's
// dynamic state. fp is the restored release train under fleet scope.
func (c *cellSim) restoreState(cs CellState, fp *fleetpipeline.Manager) error {
	if cs.Cell != c.cell {
		return fmt.Errorf("cell %d: snapshot state is for cell %d", c.cell, cs.Cell)
	}
	if cs.ArrSeed != c.arrSeed {
		// The arrival fork seed is derived, not installed; a mismatch
		// means the rebuilt RNG tree diverged from the snapshotting
		// process and nothing downstream can be trusted.
		return fmt.Errorf("cell %d: arrival seed mismatch: snapshot %d, rebuilt %d", c.cell, cs.ArrSeed, c.arrSeed)
	}
	if err := c.rPlace.SetState(cs.PlaceRNG); err != nil {
		return fmt.Errorf("cell %d: placement rng: %w", c.cell, err)
	}

	c.q = c.q[:0]
	for _, es := range cs.Heap {
		c.q = append(c.q, event{at: es.At, seq: es.Seq, kind: es.Kind, idx: es.Idx, vm: es.VM})
	}
	c.seq = cs.Seq
	c.running = make(map[cluster.VMID]*runningVM, len(cs.Running))
	for _, rs := range cs.Running {
		if rs.Host < 0 || rs.Host >= len(c.hosts) {
			return fmt.Errorf("cell %d: snapshot places running vm %d on host %d of %d", c.cell, rs.VM.ID, rs.Host, len(c.hosts))
		}
		c.running[rs.VM.ID] = &runningVM{vm: rs.VM, host: rs.Host, dec: rs.Dec}
	}
	var err error
	if c.logDigest, err = restoreLogStream(&c.log, cs.Log); err != nil {
		return fmt.Errorf("cell %d: %w", c.cell, err)
	}
	c.compacted = cs.Log.Compacted

	if len(cs.EMCs) != len(c.devices) {
		return fmt.Errorf("cell %d: snapshot has %d EMCs, options build %d", c.cell, len(cs.EMCs), len(c.devices))
	}
	for i, d := range c.devices {
		if err := d.SetState(cs.EMCs[i]); err != nil {
			return fmt.Errorf("cell %d: emc %d: %w", c.cell, i, err)
		}
	}
	if err := c.manager.SetState(cs.Pool); err != nil {
		return fmt.Errorf("cell %d: %w", c.cell, err)
	}
	if len(cs.Hosts) != len(c.hosts) {
		return fmt.Errorf("cell %d: snapshot has %d hosts, options build %d", c.cell, len(cs.Hosts), len(c.hosts))
	}
	for i, h := range c.hosts {
		if err := h.SetState(cs.Hosts[i]); err != nil {
			return fmt.Errorf("cell %d: %w", c.cell, err)
		}
	}
	if err := c.store.SetState(cs.Store); err != nil {
		return fmt.Errorf("cell %d: telemetry: %w", c.cell, err)
	}
	if err := c.sched.SetState(cs.Sched); err != nil {
		return fmt.Errorf("cell %d: %w", c.cell, err)
	}

	// Model planes. The mlops restore re-pushes the serving insensitivity
	// threshold into the pipeline; the server is re-pinned to the restored
	// champions under its snapshotted generation, then its counters are
	// restored (caches rebuild empty — a miss recomputes the same score).
	if (c.mgr != nil) != (cs.Mlops != nil) {
		return fmt.Errorf("cell %d: snapshot and options disagree on the cell-scoped model lifecycle", c.cell)
	}
	if c.mgr != nil {
		if err := c.mgr.SetState(*cs.Mlops); err != nil {
			return fmt.Errorf("cell %d: mlops: %w", c.cell, err)
		}
	}
	if (c.col != nil) != (cs.Collector != nil) {
		return fmt.Errorf("cell %d: snapshot and options disagree on the fleet-pipeline collector", c.cell)
	}
	if c.col != nil {
		a, aerr := fp.AssignmentForServeVer(cs.Collector.ServeVer)
		if aerr != nil {
			return fmt.Errorf("cell %d: %w", c.cell, aerr)
		}
		c.col.Install(a)
		if err := c.col.SetState(*cs.Collector); err != nil {
			return err
		}
		if c.srv != nil && cs.Server != nil {
			c.srv.Pin(cs.Server.Generation, c.insens, a.Serve)
		}
	}
	if (c.srv != nil) != (cs.Server != nil) {
		return fmt.Errorf("cell %d: snapshot and options disagree on the inference server", c.cell)
	}
	if c.srv != nil {
		if c.mgr != nil {
			ins, _, um := c.mgr.ServingModels()
			if ins == nil {
				ins = c.insens
			}
			c.srv.Pin(cs.Server.Generation, ins, um)
		}
		c.srv.SetState(*cs.Server)
	}
	c.pinnedVer = cs.PinnedVer

	if len(cs.MetricsRows) > 0 && c.metricsEvery <= 0 {
		return fmt.Errorf("cell %d: snapshot carries metrics rows but options disable sampling", c.cell)
	}
	if c.metricsEvery > 0 {
		if len(cs.MetricsRows) > len(c.ring) {
			return fmt.Errorf("cell %d: snapshot carries %d metrics rows, ring holds %d", c.cell, len(cs.MetricsRows), len(c.ring))
		}
		c.ringStart, c.ringLen = 0, len(cs.MetricsRows)
		copy(c.ring, cs.MetricsRows)
		if cs.SampleK > 0 {
			c.sampleK = cs.SampleK
		}
		c.ringDropped = cs.MetricsDropped
		c.predErrEWMA = cs.PredErrEWMA
		c.predErrN = cs.PredErrN
	}
	c.placedGB = cs.PlacedGB
	c.placedPoolGB = cs.PlacedPoolGB
	c.lastT = cs.LastT
	c.utilSec = cs.UtilSec
	c.strandedGBSec = cs.StrandedGBSec
	c.lastPoolUsed = cs.LastPoolUsed
	c.attemptGB = cs.AttemptGB
	c.poolGB = cs.PoolGB
	c.savedGBSec = cs.SavedGBSec
	c.lastFallbacks = cs.LastFallbacks
	c.demandEpoch.SetState(cs.DemandEpoch)
	c.demandTotal.SetState(cs.DemandTotal)
	c.res = cs.Result
	return nil
}
