package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"pond/internal/cluster"
	"pond/internal/stats"
	"pond/internal/workload"
)

// Arrival model kinds.
const (
	ArrivalPoisson = "poisson"
	ArrivalTrace   = "trace"
)

// ArrivalModel describes the VM arrival process of one cell.
type ArrivalModel struct {
	// Kind is "poisson" (memoryless arrivals with exponential lifetimes)
	// or "trace" (interarrivals, shapes, and lifetimes derived from the
	// internal/cluster generator — bursty deployments, customer
	// correlations, workload shocks).
	Kind string

	// RatePerSec is the Poisson arrival rate (VMs per second).
	RatePerSec float64

	// MeanLifetimeSec is the mean exponential VM lifetime under poisson.
	MeanLifetimeSec float64
}

// DefaultArrival returns the default Poisson process: one VM every 20
// simulated seconds, mean lifetime 600 s.
func DefaultArrival() ArrivalModel {
	return ArrivalModel{Kind: ArrivalPoisson, RatePerSec: 0.05, MeanLifetimeSec: 600}
}

// ParseArrival parses an arrival spec:
//
//	poisson
//	poisson:rate=0.05
//	poisson:rate=0.05:life=600
//	trace
func ParseArrival(s string) (ArrivalModel, error) {
	m := DefaultArrival()
	s = strings.TrimSpace(s)
	if s == "" {
		return m, nil
	}
	parts := strings.Split(s, ":")
	switch parts[0] {
	case ArrivalPoisson:
		m.Kind = ArrivalPoisson
	case ArrivalTrace:
		m.Kind = ArrivalTrace
	default:
		return m, fmt.Errorf("fleet: unknown arrival model %q (want poisson or trace)", parts[0])
	}
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return m, fmt.Errorf("fleet: arrival parameter %q is not key=value", p)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || math.IsInf(f, 0) || math.IsNaN(f) {
			return m, fmt.Errorf("fleet: arrival parameter %s=%q must be a positive number", k, v)
		}
		switch k {
		case "rate":
			m.RatePerSec = f
		case "life":
			m.MeanLifetimeSec = f
		default:
			return m, fmt.Errorf("fleet: unknown arrival parameter %q (want rate, life)", k)
		}
	}
	if m.Kind == ArrivalTrace && len(parts) > 1 {
		return m, fmt.Errorf("fleet: trace arrivals take no parameters")
	}
	return m, nil
}

// String renders the model as a parseable spec.
func (m ArrivalModel) String() string {
	if m.Kind == ArrivalTrace {
		return ArrivalTrace
	}
	return fmt.Sprintf("%s:rate=%g:life=%g", ArrivalPoisson, m.RatePerSec, m.MeanLifetimeSec)
}

// synthCustomers builds a small tenant population for the Poisson stream,
// with the same per-customer behavioural stability the trace generator
// provides (workload set, untouched-memory level, first-party flag) so
// the prediction pipeline's history features have something to learn.
func synthCustomers(n int, r *stats.Rand) []cluster.Customer {
	catalogue := catalogueCache
	out := make([]cluster.Customer, n)
	for i := range out {
		nw := 1 + r.Intn(3)
		ws := make([]workload.Workload, nw)
		for j := range ws {
			ws[j] = catalogue[r.Intn(len(catalogue))]
		}
		out[i] = cluster.Customer{
			ID:            cluster.CustomerID(i + 1),
			OS:            "linux",
			Region:        "local",
			MeanUntouched: r.Beta(1.45, 1.45),
			Spread:        r.Bounded(14, 30),
			Workloads:     ws,
			FirstParty:    r.Bernoulli(0.35),
		}
	}
	return out
}

// expectedArrivals estimates the Poisson stream length (base process
// plus surge extras, ~10% headroom) so the arrival slice is allocated
// once. Only capacity — never content — depends on the estimate.
func expectedArrivals(o Options) int {
	n := o.Arrival.RatePerSec * o.DurationSec
	for _, inj := range o.Injections {
		if inj.Kind == InjectSurge && inj.Factor > 1 {
			n += o.Arrival.RatePerSec * (inj.Factor - 1) * inj.DurSec
		}
	}
	return int(n+n/10) + 16
}

// catalogueCache avoids re-copying the 158-workload catalogue on every
// tenant-population build; the fleet generator only reads it.
var catalogueCache = workload.Catalogue()

// vmTypes and vmTypeWeights cache the type catalogue and its arrival
// mix: the weights depend only on the (fixed) catalogue, so rebuilding
// them per drawn VM was pure allocation churn in stream generation.
var vmTypes = cluster.VMTypes()

var vmTypeWeights = func() []float64 {
	weights := make([]float64, len(vmTypes))
	for i, t := range vmTypes {
		// Small shapes dominate cloud VM counts, as in the generator.
		weights[i] = 1 / float64(t.Cores)
	}
	return weights
}()

// drawVM samples one VM request from a customer at the given time.
func drawVM(cust cluster.Customer, at, meanLifeSec float64, r *stats.Rand) cluster.VMRequest {
	vt := vmTypes[r.Choice(vmTypeWeights)]
	w := cust.Workloads[r.Intn(len(cust.Workloads))]
	a := cust.MeanUntouched * cust.Spread
	b := (1 - cust.MeanUntouched) * cust.Spread
	if a < 0.05 {
		a = 0.05
	}
	if b < 0.05 {
		b = 0.05
	}
	life := r.Exponential(meanLifeSec)
	if life < 60 {
		life = 60
	}
	name := ""
	if cust.FirstParty {
		name = w.Name
	}
	return cluster.VMRequest{
		Customer:     cust.ID,
		Type:         vt,
		OS:           cust.OS,
		Region:       cust.Region,
		WorkloadName: name,
		ArrivalSec:   at,
		LifetimeSec:  life,
		GroundTruth: cluster.VMGroundTruth{
			UntouchedFrac: r.Beta(a, b),
			Workload:      w,
		},
	}
}

// driftPopulation applies one drift injection to a tenant population:
// every customer's mean untouched fraction moves mag of the way toward
// its complement, and with probability mag the customer's workload set
// is replaced with a fresh draw from the catalogue. Customer IDs (and
// thus their telemetry history) persist across the shift, which is
// exactly what makes pre-drift models stale rather than merely
// uninformed.
func driftPopulation(pop []cluster.Customer, mag float64, r *stats.Rand) []cluster.Customer {
	catalogue := catalogueCache
	out := make([]cluster.Customer, len(pop))
	for i, c := range pop {
		c.MeanUntouched = stats.Clamp(c.MeanUntouched*(1-mag)+(1-c.MeanUntouched)*mag, 0.02, 0.98)
		if r.Bernoulli(mag) {
			nw := 1 + r.Intn(3)
			ws := make([]workload.Workload, nw)
			for j := range ws {
				ws[j] = catalogue[r.Intn(len(catalogue))]
			}
			c.Workloads = ws
		}
		out[i] = c
	}
	return out
}

// Labels of the drift-transform RNG streams. Their seeds are keyed to
// the arrival seed with stats.HashWords rather than drawn from the
// parent stream: a parent draw's position would depend on whether any
// drift exists, so adding a first drift would shift every later
// sub-stream's seed — including surge streams whose pre-drift extras
// were already simulated. Keyed seeds make each sub-stream independent
// of which other injections are present, the property the Runner's
// live-injection regeneration relies on.
const (
	driftForkLabel      = 6
	driftTraceForkLabel = 7
)

// driftEpochs precomputes the tenant population for each drift epoch:
// epochs[0] is the initial population, epochs[k] the population after
// the k-th drift injection hitting this cell (times returned alongside,
// ascending). Regional drifts (cells=a-b) leave out-of-range cells'
// populations untouched — their streams never see the shift.
func driftEpochs(initial []cluster.Customer, injections []Injection, cell int, rd *stats.Rand) (times []float64, epochs [][]cluster.Customer) {
	epochs = [][]cluster.Customer{initial}
	var drifts []Injection
	for _, in := range injections {
		if in.Kind == InjectDrift && in.AppliesTo(cell) {
			drifts = append(drifts, in)
		}
	}
	if len(drifts) == 0 {
		return nil, epochs
	}
	sort.SliceStable(drifts, func(i, j int) bool { return drifts[i].AtSec < drifts[j].AtSec })
	for _, d := range drifts {
		times = append(times, d.AtSec)
		epochs = append(epochs, driftPopulation(epochs[len(epochs)-1], d.Mag, rd))
	}
	return times, epochs
}

// populationAt picks the epoch population live at time t.
func populationAt(t float64, times []float64, epochs [][]cluster.Customer) []cluster.Customer {
	i := 0
	for i < len(times) && t >= times[i] {
		i++
	}
	return epochs[i]
}

// generateArrivals produces the cell's full arrival stream: the base
// process (Poisson or trace-derived) plus any surge-injection extras,
// time-sorted and renumbered chronologically, with drift injections
// shifting the tenant population mid-stream. The stream is a pure
// function of (options, cell, seed): all randomness comes from forks of
// the seed in a fixed order, with drift-transform forks keyed to the
// seed directly (see driftForkLabel) so the presence of one injection
// never perturbs another injection's sub-stream.
func generateArrivals(o Options, cell int, seed int64) []cluster.VMRequest {
	r := stats.NewRand(seed)
	var vms []cluster.VMRequest
	var customers []cluster.Customer
	var driftTimes []float64
	var epochs [][]cluster.Customer
	baseRate := o.Arrival.RatePerSec
	isTrace := o.Arrival.Kind == ArrivalTrace

	switch o.Arrival.Kind {
	case ArrivalTrace:
		gen := cluster.DefaultGenConfig()
		gen.ServersPerCluster = o.Hosts
		gen.Days = int(math.Ceil(o.DurationSec / 86400))
		if gen.Days < 1 {
			gen.Days = 1
		}
		gen.Spec = cluster.ServerSpec{Sockets: 2, CoresPerSock: o.CoresPerSocket, MemGBPerSock: o.MemGBPerSocket}
		tr := cluster.GenerateCluster(gen, cell, r.Fork(1))
		customers = tr.Customers
		for _, vm := range tr.VMs {
			if vm.ArrivalSec < o.DurationSec {
				vms = append(vms, vm)
			}
		}
		if n := len(vms); n > 0 {
			baseRate = float64(n) / o.DurationSec
		}
		epochs = [][]cluster.Customer{customers}
	default: // poisson
		rArr := r.Fork(1)
		customers = synthCustomers(32, rArr)
		driftTimes, epochs = driftEpochs(customers, o.Injections, cell,
			stats.NewRand(stats.HashWords(uint64(seed), driftForkLabel)))
		// Presize for the expected stream (surge extras included below
		// share the slice); capacity never affects the drawn contents.
		vms = make([]cluster.VMRequest, 0, expectedArrivals(o))
		for t := rArr.Exponential(1 / o.Arrival.RatePerSec); t < o.DurationSec; t += rArr.Exponential(1 / o.Arrival.RatePerSec) {
			pop := populationAt(t, driftTimes, epochs)
			cust := pop[rArr.Intn(len(pop))]
			vms = append(vms, drawVM(cust, t, o.Arrival.MeanLifetimeSec, rArr))
		}
	}

	// Surge injections add an extra Poisson stream at (factor-1) x the
	// base rate over their window, drawn from the tenant population live
	// at each extra arrival's time (pre-drift before a drift point,
	// post-drift after it).
	meanLife := o.Arrival.MeanLifetimeSec
	if meanLife <= 0 {
		meanLife = DefaultArrival().MeanLifetimeSec
	}
	for i, inj := range o.Injections {
		if inj.Kind != InjectSurge || len(customers) == 0 {
			continue
		}
		extraRate := baseRate * (inj.Factor - 1)
		if extraRate <= 0 {
			continue
		}
		rs := r.Fork(int64(100 + i))
		end := inj.AtSec + inj.DurSec
		if end > o.DurationSec {
			end = o.DurationSec
		}
		for t := inj.AtSec + rs.Exponential(1/extraRate); t < end; t += rs.Exponential(1 / extraRate) {
			pop := populationAt(t, driftTimes, epochs)
			cust := pop[rs.Intn(len(pop))]
			vms = append(vms, drawVM(cust, t, meanLife, rs))
		}
	}

	if isTrace {
		// Trace streams are pre-generated, so drift transforms the
		// ground truth of VMs arriving after each drift point instead of
		// the population that draws them. Applied after surge extras so
		// they drift too.
		vms = driftTraceVMs(vms, o.Injections, cell,
			stats.NewRand(stats.HashWords(uint64(seed), driftTraceForkLabel)))
	}

	// Concrete-type stable sort: a stable sort's output is uniquely
	// determined by the comparator and input order, so replacing
	// sort.SliceStable (reflect-based swaps of a large struct) with
	// sort.Stable over byArrival changes no stream or golden byte.
	sort.Stable(byArrival(vms))
	for i := range vms {
		vms[i].ID = cluster.VMID(i + 1)
	}
	return vms
}

// byArrival stable-sorts VM requests by arrival time.
type byArrival []cluster.VMRequest

func (s byArrival) Len() int           { return len(s) }
func (s byArrival) Less(a, b int) bool { return s[a].ArrivalSec < s[b].ArrivalSec }
func (s byArrival) Swap(a, b int)      { s[a], s[b] = s[b], s[a] }

// driftTraceVMs applies drift injections to a trace-derived stream: each
// drift flips the untouched-memory behaviour of VMs arriving after it
// (mag of the way toward the complement) and reassigns a mag fraction of
// their workloads. Regional drifts skip out-of-range cells.
func driftTraceVMs(vms []cluster.VMRequest, injections []Injection, cell int, rd *stats.Rand) []cluster.VMRequest {
	var drifts []Injection
	for _, in := range injections {
		if in.Kind == InjectDrift && in.AppliesTo(cell) {
			drifts = append(drifts, in)
		}
	}
	if len(drifts) == 0 {
		return vms
	}
	sort.SliceStable(drifts, func(i, j int) bool { return drifts[i].AtSec < drifts[j].AtSec })
	catalogue := catalogueCache
	for _, d := range drifts {
		for i := range vms {
			if vms[i].ArrivalSec < d.AtSec {
				continue
			}
			uf := vms[i].GroundTruth.UntouchedFrac
			vms[i].GroundTruth.UntouchedFrac = stats.Clamp(uf*(1-d.Mag)+(1-uf)*d.Mag, 0, 1)
			if rd.Bernoulli(d.Mag) {
				vms[i].GroundTruth.Workload = catalogue[rd.Intn(len(catalogue))]
			}
		}
	}
	return vms
}
