// Package fleet is the online, event-driven counterpart to the offline
// trace replays of internal/sim. Where the figure pipelines compute a
// placement once and measure it, fleet drives a live deployment the way
// §4 and §7 describe the production system: VMs arrive and depart
// continuously, every admission flows through the prediction/QoS control
// plane (internal/predict, internal/core), the Pool Manager onlines and
// drains slices in simulated time, and operational scenarios — EMC
// failures with topology-bounded blast radius, host drains, load surges —
// are injected mid-run.
//
// A run is a set of independent cells (pool groups), each simulated by a
// sequential discrete-event loop and fanned out across the parallel
// engine of internal/engine. Each cell's RNG derives from the root seed
// and the cell index alone, and cell results merge in cell order, so the
// full event log — and therefore its hash — is byte-identical for any
// worker count.
//
// Model retraining runs at one of two scopes. Cell scope (the default)
// gives every cell its own champion/challenger lifecycle
// (internal/mlops). Fleet scope is the §5 central pipeline: cells
// synchronize at every retrain boundary, their telemetry pools into one
// corpus, and a single fleet release train deploys through staged canary
// rollout (internal/mlops/fleetpipeline) — cells stay embarrassingly
// parallel between barriers, and the barrier itself is processed
// serially in cell order, so determinism is preserved.
package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"pond/internal/capacity"
	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/cxl"
	"pond/internal/emc"
	"pond/internal/engine"
	"pond/internal/host"
	"pond/internal/mlops"
	"pond/internal/mlops/fleetpipeline"
	"pond/internal/pmu"
	"pond/internal/pool"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/telemetry"
	"pond/internal/topo"
)

// Model-retraining scopes.
const (
	// ScopeCell: every cell runs its own champion/challenger lifecycle
	// (the PR-3 behaviour, and the default).
	ScopeCell = "cell"
	// ScopeFleet: one central pipeline pools telemetry across cells and
	// deploys a single release train through staged canary rollout (§5).
	ScopeFleet = "fleet"
)

// Options configures a fleet run. The zero value of any field falls back
// to the corresponding DefaultOptions value.
type Options struct {
	// Topology names the host-to-EMC graph of every cell: flat, sharded,
	// or sparse (see internal/topo).
	Topology string
	// PodDegree is the per-host EMC count under sparse.
	PodDegree int

	// Hosts, EMCs, and PoolGB size each cell's pool group.
	Hosts  int
	EMCs   int
	PoolGB int

	// CoresPerSocket and MemGBPerSocket shape each dual-socket host.
	CoresPerSocket int
	MemGBPerSocket float64

	// Cells is the number of independent pool groups; each is one
	// engine shard.
	Cells int

	// DurationSec is the simulated horizon of each cell.
	DurationSec float64

	// Arrival is the VM arrival process.
	Arrival ArrivalModel

	// Injections are the scheduled scenario events, applied to every
	// cell (regional drifts restrict themselves to their cell range).
	Injections []Injection

	// Predictions enables the ML scheduling pipeline; when false every
	// VM is all-local (the no-pooling baseline).
	Predictions bool

	// RetrainEverySec > 0 turns on the online model-lifecycle loop:
	// models retrain from live telemetry at this cadence. Requires
	// Predictions.
	RetrainEverySec float64
	// ModelScope selects where retraining happens: ScopeCell (default)
	// or ScopeFleet (pooled telemetry, staged cross-cell rollout).
	ModelScope string
	// CanaryFraction is the fraction of cells a fleet-scoped release
	// reaches first (rounded up to at least one cell; 0 means the
	// default 0.25). Fleet scope only.
	CanaryFraction float64
	// BakeWindowSec is how long a fleet-scoped canary bakes before its
	// promote-or-rollback verdict (0 means twice the retrain cadence).
	// Fleet scope only.
	BakeWindowSec float64
	// PromoteMargin is the fractional loss improvement required to
	// promote a challenger (or demote a regressed champion); zero means
	// the mlops default.
	PromoteMargin float64
	// HoldoutWindow is the rolling comparison window in completed VMs;
	// zero means the mlops default.
	HoldoutWindow int
	// MinTrainRows is the minimum completed VMs before a challenger is
	// trained; zero means the mlops default.
	MinTrainRows int
	// CaptureModels dumps the versioned model snapshots into the report
	// (per cell under ScopeCell, the release train under ScopeFleet).
	CaptureModels bool

	// ElasticPool turns on the online capacity controller: at every
	// PlanEverySec barrier each cell re-plans its pool size from the
	// demand observed since the previous barrier and grows or shrinks the
	// EMCs through the Pool Manager's elastic APIs (shrinks retire only
	// free slices — live VMs are never stranded).
	ElasticPool bool
	// PlanEverySec is the planning-barrier cadence (0 means an eighth of
	// the horizon). Elastic pool only.
	PlanEverySec float64
	// TargetQoS is the tolerated fraction of time pool demand may exceed
	// capacity — the controller's and the offline planner's sizing target
	// (0 means the 0.01 default). Elastic pool only.
	TargetQoS float64

	// PDM and TP are the QoS knobs (§5).
	PDM float64
	TP  float64

	// MetricsEverySec > 0 samples each cell's sim-time metrics series
	// (live VMs, pool used/free, queue depth, pred-err EWMA) at this
	// simulated cadence into a preallocated per-cell ring, drained via
	// Runner.DrainMetrics and surfaced in CellResult.Series. Sampling
	// reads sim state only: the event log and report hashes are
	// byte-identical with metrics on or off. 0 disables sampling.
	MetricsEverySec float64

	// Workers bounds the engine pool; <= 0 means GOMAXPROCS. Results
	// are byte-identical for every value.
	Workers int
	// Seed roots every cell's RNG stream.
	Seed int64
}

// DefaultOptions returns the default fleet: four 8-host cells with four
// 128 GB EMCs each, Poisson arrivals, predictions on.
func DefaultOptions() Options {
	return Options{
		Topology:       topo.Flat,
		PodDegree:      2,
		Hosts:          8,
		EMCs:           4,
		PoolGB:         512,
		CoresPerSocket: 24,
		MemGBPerSocket: 192,
		Cells:          4,
		DurationSec:    1000,
		Arrival:        DefaultArrival(),
		Predictions:    true,
		ModelScope:     ScopeCell,
		PDM:            0.05,
		TP:             0.98,
		Seed:           1,
	}
}

// normalize fills zero fields from the defaults and validates the rest.
func normalize(o Options) (Options, error) {
	d := DefaultOptions()
	if o.Topology == "" {
		o.Topology = d.Topology
	}
	if o.PodDegree <= 0 {
		o.PodDegree = d.PodDegree
	}
	if o.Hosts <= 0 {
		o.Hosts = d.Hosts
	}
	if o.EMCs <= 0 {
		o.EMCs = d.EMCs
	}
	if o.PoolGB <= 0 {
		o.PoolGB = d.PoolGB
	}
	if o.CoresPerSocket <= 0 {
		o.CoresPerSocket = d.CoresPerSocket
	}
	if o.MemGBPerSocket <= 0 {
		o.MemGBPerSocket = d.MemGBPerSocket
	}
	if o.Cells <= 0 {
		o.Cells = d.Cells
	}
	if o.DurationSec <= 0 {
		o.DurationSec = d.DurationSec
	}
	if o.Arrival.Kind == "" {
		o.Arrival.Kind = d.Arrival.Kind
	}
	if o.Arrival.RatePerSec <= 0 {
		o.Arrival.RatePerSec = d.Arrival.RatePerSec
	}
	if o.Arrival.MeanLifetimeSec <= 0 {
		o.Arrival.MeanLifetimeSec = d.Arrival.MeanLifetimeSec
	}
	if o.PDM <= 0 {
		o.PDM = d.PDM
	}
	if o.TP <= 0 {
		o.TP = d.TP
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.ModelScope == "" {
		o.ModelScope = ScopeCell
	}
	if o.PoolGB < o.EMCs {
		return o, fmt.Errorf("fleet: pool of %d GB cannot shard across %d EMCs", o.PoolGB, o.EMCs)
	}
	if o.RetrainEverySec < 0 || math.IsNaN(o.RetrainEverySec) || math.IsInf(o.RetrainEverySec, 0) {
		return o, fmt.Errorf("fleet: retrain interval %gs must be a finite number >= 0", o.RetrainEverySec)
	}
	if o.RetrainEverySec > 0 && !o.Predictions {
		return o, fmt.Errorf("fleet: retraining requires predictions")
	}
	if o.CaptureModels && !o.Predictions {
		return o, fmt.Errorf("fleet: capturing models requires predictions")
	}
	if !(o.PromoteMargin >= 0 && o.PromoteMargin < 1) { // rejects NaN too
		return o, fmt.Errorf("fleet: promotion margin %g must be in [0, 1)", o.PromoteMargin)
	}
	if o.HoldoutWindow < 0 || o.MinTrainRows < 0 {
		return o, fmt.Errorf("fleet: holdout window and min train rows must be >= 0")
	}
	switch o.ModelScope {
	case ScopeCell:
		// Rollout knobs are fleet-scope-only; a non-zero value under cell
		// scope is a configuration mistake, not something to ignore.
		if o.CanaryFraction != 0 || o.BakeWindowSec != 0 {
			return o, fmt.Errorf("fleet: canary fraction and bake window require model scope %q", ScopeFleet)
		}
	case ScopeFleet:
		if o.RetrainEverySec <= 0 {
			return o, fmt.Errorf("fleet: model scope %q requires a retrain cadence", ScopeFleet)
		}
		if o.CanaryFraction == 0 {
			o.CanaryFraction = 0.25
		}
		if !(o.CanaryFraction > 0 && o.CanaryFraction <= 1) { // rejects NaN too
			return o, fmt.Errorf("fleet: canary fraction %g must be in (0, 1]", o.CanaryFraction)
		}
		if o.BakeWindowSec < 0 || math.IsNaN(o.BakeWindowSec) || math.IsInf(o.BakeWindowSec, 0) {
			return o, fmt.Errorf("fleet: bake window %gs must be a finite number >= 0", o.BakeWindowSec)
		}
		if o.BakeWindowSec == 0 {
			o.BakeWindowSec = 2 * o.RetrainEverySec
		}
	default:
		return o, fmt.Errorf("fleet: unknown model scope %q (want %s or %s)", o.ModelScope, ScopeCell, ScopeFleet)
	}
	if o.MetricsEverySec < 0 || math.IsNaN(o.MetricsEverySec) || math.IsInf(o.MetricsEverySec, 0) {
		return o, fmt.Errorf("fleet: metrics cadence %gs must be a finite number >= 0", o.MetricsEverySec)
	}
	if !o.ElasticPool && (o.PlanEverySec != 0 || o.TargetQoS != 0) {
		// Elastic knobs without the elastic pool are a configuration
		// mistake, not something to ignore (same discipline as canary/bake
		// under cell scope).
		return o, fmt.Errorf("fleet: plan cadence and QoS target require the elastic pool")
	}
	if o.ElasticPool {
		if o.PlanEverySec < 0 || math.IsNaN(o.PlanEverySec) || math.IsInf(o.PlanEverySec, 0) {
			return o, fmt.Errorf("fleet: plan cadence %gs must be a finite number >= 0", o.PlanEverySec)
		}
		if o.PlanEverySec == 0 {
			o.PlanEverySec = o.DurationSec / 8
		}
		if o.PlanEverySec >= o.DurationSec {
			return o, fmt.Errorf("fleet: plan cadence %gs never fires within the %gs horizon", o.PlanEverySec, o.DurationSec)
		}
		if o.TargetQoS == 0 {
			o.TargetQoS = 0.01
		}
		if !(o.TargetQoS > 0 && o.TargetQoS < 1) { // rejects NaN too
			return o, fmt.Errorf("fleet: QoS target %g must be in (0, 1)", o.TargetQoS)
		}
	}
	if _, err := topo.Build(o.Topology, o.Hosts, o.EMCs, o.PodDegree); err != nil {
		return o, err
	}
	for _, in := range o.Injections {
		if err := ValidateInjection(in, o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// NormalizeOptions fills zero fields from the defaults and validates the
// rest — the single validation path shared by Run, the Runner, and the
// public pond facade (flag parsing and serve request bodies both land
// here).
func NormalizeOptions(o Options) (Options, error) { return normalize(o) }

// ValidateInjection checks one injection against the sized fleet. It is
// shared by Options normalization and the Runner's live-injection path,
// so a scenario POSTed into a running simulation meets exactly the same
// rules as one scheduled from the command line.
func ValidateInjection(in Injection, o Options) error {
	if (in.Kind == InjectEMCFail || in.Kind == InjectResize) && (in.EMC < 0 || in.EMC >= o.EMCs) {
		return fmt.Errorf("fleet: injection %s targets EMC %d of %d", in, in.EMC, o.EMCs)
	}
	if in.Kind == InjectResize && (in.Slices == 0 || in.Slices < -MaxResizeSlices || in.Slices > MaxResizeSlices) {
		return fmt.Errorf("fleet: injection %s must resize by a non-zero count of at most %d slices", in, MaxResizeSlices)
	}
	if in.Kind == InjectHostDrain && (in.Host < 0 || in.Host >= o.Hosts) {
		return fmt.Errorf("fleet: injection %s targets host %d of %d", in, in.Host, o.Hosts)
	}
	if in.Kind == InjectDrift && in.CellHi >= 0 {
		if in.CellLo < 0 || in.CellLo > in.CellHi {
			return fmt.Errorf("fleet: injection %s has an empty cell range", in)
		}
		if in.CellHi >= o.Cells {
			return fmt.Errorf("fleet: injection %s targets cell %d of %d", in, in.CellHi, o.Cells)
		}
	}
	if in.AtSec > o.DurationSec {
		// Refuse rather than silently never firing: the caller asked
		// for a scenario the horizon cannot contain.
		return fmt.Errorf("fleet: injection %s fires after the %gs horizon", in, o.DurationSec)
	}
	return nil
}

// CellResult is one cell's outcome.
type CellResult struct {
	Cell int

	Arrivals int
	Placed   int
	Rejected int
	Departed int
	// BlastVMs counts VMs lost to EMC failures.
	BlastVMs int
	// Migrated counts VMs moved off draining hosts.
	Migrated int

	// QoSViolations counts departed VMs whose realized slowdown exceeded
	// the PDM; Mitigations counts those the QoS monitor reconfigured.
	QoSViolations int
	Mitigations   int

	// AvgCoreUtil is the time-weighted scheduled-core fraction.
	AvgCoreUtil float64
	// AvgStrandedGB is the time-weighted stranded local memory (§2).
	AvgStrandedGB float64
	// PeakPoolUsedGB is the maximum pool memory in use at any event.
	PeakPoolUsedGB float64
	// PoolShare is the GB-weighted share of placed memory on the pool.
	PoolShare float64

	// Capacity loop (the pool stays at the static size unless the
	// elastic controller or a resize injection ran).
	//
	// FinalPoolGB is the cell's active pool capacity at run end;
	// DRAMSavedGB the time-averaged capacity the cell ran below the
	// static pool (negative if it grew past it); Fallbacks the
	// pool-exhaustion downgrades to all-local.
	FinalPoolGB int
	DRAMSavedGB float64
	Fallbacks   int
	// Plans is the cell's planning-barrier history.
	Plans []capacity.PlanEvent
	// Demand is the whole-run time-weighted pool-demand distribution —
	// the offline planner's (and cmd/pondplan's) telemetry input.
	Demand *capacity.Demand
	// UntouchedP50/P90 summarize the cell's observed untouched-memory
	// outcome distribution (zero without predictions).
	UntouchedP50, UntouchedP90 float64

	// Model lifecycle (zero unless retraining ran).
	Retrains, Promotions, Demotions int
	// UMChampVer / InsensChampVer are the serving model versions at the
	// end of the run. Under fleet scope UMChampVer is the release version
	// pinned on this cell's request path.
	UMChampVer, InsensChampVer int
	// ServedVersions lists every release version this cell ever served,
	// in pin order (fleet scope; starts at the bootstrap version 0). A
	// rolled-back release appears only on the cells that served its
	// canary.
	ServedVersions []int
	// PredErrMean is the serving untouched-memory model's mean
	// asymmetric prediction loss over all completed VMs; PredErrFinal
	// the same over the final rolling window.
	PredErrMean, PredErrFinal float64
	// InsensErrMean is the serving insensitivity model's mean score
	// error against ground-truth labels.
	InsensErrMean float64
	// Lifecycle is the cell's retrain/promote/demote history (cell
	// scope).
	Lifecycle []mlops.Event
	// ModelDump holds the versioned model snapshots (CaptureModels under
	// cell scope).
	ModelDump json.RawMessage

	// Series is the cell's sim-time metrics series (MetricsEverySec > 0)
	// — the full series for a one-shot run, or only the undrained tail
	// when the Runner drained rows along the way. MetricsDropped counts
	// rows lost to ring overflow (0 for serially drained runs).
	Series         []MetricsRow
	MetricsDropped int

	// Log is the cell's event log — the full stream, or only its
	// undrained tail when the Runner ran with drained-prefix compaction.
	Log string
	// LogSHA is the hex SHA-256 of the cell's complete event-log stream,
	// compacted prefix included. Compacted counts the lines that were
	// folded into the digest and released (0 without compaction).
	LogSHA    string
	Compacted int
}

// Report is the merged outcome of a fleet run.
type Report struct {
	Options      Options
	TopologyDesc string
	Cells        []CellResult

	Arrivals, Placed, Rejected, Departed int
	BlastVMs, Migrated                   int
	QoSViolations, Mitigations           int
	AvgCoreUtil                          float64
	AvgStrandedGB                        float64
	PeakPoolUsedGB                       float64
	PoolShare                            float64

	// Capacity loop, aggregated across cells: FinalPoolGB sums the
	// cells' end-of-run pools, DRAMSavedGB their time-averaged savings
	// versus static provisioning, Fallbacks the pool-exhaustion
	// downgrades; PlanHistory is every planning decision in cell order.
	FinalPoolGB int
	DRAMSavedGB float64
	Fallbacks   int
	PlanHistory []capacity.PlanEvent

	// Model lifecycle, aggregated across cells (zero unless retraining
	// ran). Under fleet scope the counters describe the release train:
	// retrains, fleet-wide promotions, canary rollbacks, demotions.
	Retrains, Promotions, Demotions int
	Rollbacks                       int
	// PredErrMean / PredErrFinal are cell means of the serving
	// untouched-memory model's asymmetric loss (whole run / final
	// window); InsensErrMean likewise for the insensitivity score.
	PredErrMean, PredErrFinal float64
	InsensErrMean             float64
	// Lifecycle is every cell's retrain/promote/demote history in cell
	// order (cell scope).
	Lifecycle []mlops.Event
	// Rollout is the fleet release train's stage-transition history
	// (fleet scope): retrain, canary-start, hold, promote, rollback,
	// demote — deterministic and byte-identical for any worker count.
	Rollout []fleetpipeline.Event
	// ChampionVer is the fleet champion release at run end (fleet scope).
	ChampionVer int
	// ModelDumps is one versioned-model snapshot document per cell
	// (CaptureModels; a single release-train document under fleet
	// scope).
	ModelDumps []json.RawMessage

	// EventLog is the concatenation of all cell logs in cell order,
	// followed by the fleet pipeline's barrier log under fleet scope.
	// Under drained-prefix compaction it carries only the retained tails;
	// Events always counts the full run's log lines.
	EventLog string
	Events   int
	// LogSHA256 is the determinism witness: the SHA-256 of the stream
	// manifest — one hex SHA-256 line per cell stream in cell order, then
	// one for the fleet stream (always present, even when empty). Hashing
	// per stream is what lets drained prefixes be folded into running
	// digests and released without changing the final hash; recompute it
	// from a full log with EventLogSHA256.
	LogSHA256 string
}

// String renders a one-screen summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: topology=%s cells=%d hosts=%d emcs=%d pool=%dGB arrival=%s duration=%gs seed=%d\n",
		r.Options.Topology, r.Options.Cells, r.Options.Hosts, r.Options.EMCs, r.Options.PoolGB,
		r.Options.Arrival, r.Options.DurationSec, r.Options.Seed)
	fmt.Fprintf(&b, "  %s\n", r.TopologyDesc)
	fmt.Fprintf(&b, "  arrivals=%d placed=%d rejected=%d departed=%d blast-vms=%d migrated=%d\n",
		r.Arrivals, r.Placed, r.Rejected, r.Departed, r.BlastVMs, r.Migrated)
	fmt.Fprintf(&b, "  core-util=%.1f%% stranded=%.1fGB peak-pool-used=%.0fGB pool-share=%.1f%% qos-violations=%d mitigated=%d\n",
		100*r.AvgCoreUtil, r.AvgStrandedGB, r.PeakPoolUsedGB, 100*r.PoolShare, r.QoSViolations, r.Mitigations)
	if r.Options.ElasticPool {
		fmt.Fprintf(&b, "  elastic: plan-every=%gs target-qos=%.2f%% plans=%d final-pool=%dGB dram-saved=%.1fGB fallbacks=%d\n",
			r.Options.PlanEverySec, 100*r.Options.TargetQoS, len(r.PlanHistory),
			r.FinalPoolGB, r.DRAMSavedGB, r.Fallbacks)
	}
	if r.Options.RetrainEverySec > 0 && r.Options.ModelScope == ScopeFleet {
		fmt.Fprintf(&b, "  fleet-mlops: scope=fleet canary=%.2f bake=%gs retrains=%d promotions=%d rollbacks=%d demotions=%d champion-ver=%d pred-err=%.4f pred-err-final=%.4f insens-err=%.4f\n",
			r.Options.CanaryFraction, r.Options.BakeWindowSec,
			r.Retrains, r.Promotions, r.Rollbacks, r.Demotions, r.ChampionVer,
			r.PredErrMean, r.PredErrFinal, r.InsensErrMean)
	} else if r.Options.RetrainEverySec > 0 {
		fmt.Fprintf(&b, "  mlops: retrains=%d promotions=%d demotions=%d pred-err=%.4f pred-err-final=%.4f insens-err=%.4f\n",
			r.Retrains, r.Promotions, r.Demotions, r.PredErrMean, r.PredErrFinal, r.InsensErrMean)
	}
	fmt.Fprintf(&b, "  event-log: %d events, sha256=%s", r.Events, r.LogSHA256)
	return b.String()
}

// Run executes the fleet simulation. Cells fan out across the engine
// worker pool; the report — including the full event log and its hash —
// is byte-identical for every worker count.
func Run(ctx context.Context, o Options) (*Report, error) {
	o, err := normalize(o)
	if err != nil {
		return nil, err
	}
	insens, threshold := trainInsens(o)

	// Barriered configurations (fleet-scoped retraining, elastic pool)
	// go through the Runner — the one implementation of the barrier
	// loop, shared with pondserve's live runs. Everything else takes the
	// one-shot fast path: each cell is built, run to the horizon, and
	// finished inside a single engine job with no intermediate state.
	if (o.ModelScope == ScopeFleet && o.RetrainEverySec > 0) || o.ElasticPool {
		r, rerr := newRunner(ctx, o, insens, threshold)
		if rerr != nil {
			return nil, rerr
		}
		return r.Finish(ctx)
	}

	results, err := engine.Map(ctx, cellIndices(o.Cells),
		engine.Options{Workers: o.Workers, Seed: o.Seed},
		func(i int, _ int, rng *stats.Rand) (CellResult, error) {
			sim, serr := newCellSim(i, o, insens, threshold, rng)
			if serr != nil {
				return CellResult{Cell: i}, serr
			}
			if serr := sim.runUntil(o.DurationSec, true); serr != nil {
				return sim.res, serr
			}
			return sim.finish()
		})
	if err != nil {
		return nil, err
	}
	return assembleReport(o, results, "", "", 0, nil)
}

// trainInsens trains the shared insensitivity model once per run;
// scoring is read-only, so every cell shares it. The threshold targets
// the paper's ~30% label rate. Without predictions there is no model.
func trainInsens(o Options) (predict.Insensitivity, float64) {
	if !o.Predictions {
		return nil, 0
	}
	ratio := cxl.PondLatencyRatio(o.Hosts * 2)
	ds := predict.BuildSensitivityDataset(ratio, o.PDM, 3, o.Seed)
	rf := predict.TrainForest(ds.X, ds.Insensitive, o.Seed)
	threshold := predict.ThresholdForLabelRate(predict.DatasetScores(rf, ds), 0.30)
	return rf, threshold
}

// assembleReport merges the per-cell results — and the fleet pipeline's
// log and release-train counters, when one ran — into the final report,
// concatenates the (retained) event log in cell order, and hashes the
// stream manifest. fleetSHA is the fleet stream's precomputed hex hash
// when the Runner compacted it ("" means hash fleetLog here), and
// fleetCompacted its folded-away line count.
func assembleReport(o Options, results []CellResult, fleetLog, fleetSHA string, fleetCompacted int, fp *fleetpipeline.Manager) (*Report, error) {
	rep := &Report{Options: o, Cells: results}
	tp, _ := topo.Build(o.Topology, o.Hosts, o.EMCs, o.PodDegree)
	rep.TopologyDesc = tp.Describe()
	var log strings.Builder
	logLen := 0
	for _, c := range results {
		logLen += len(c.Log)
	}
	log.Grow(logLen + len(fleetLog))
	for _, c := range results {
		rep.Arrivals += c.Arrivals
		rep.Placed += c.Placed
		rep.Rejected += c.Rejected
		rep.Departed += c.Departed
		rep.BlastVMs += c.BlastVMs
		rep.Migrated += c.Migrated
		rep.QoSViolations += c.QoSViolations
		rep.Mitigations += c.Mitigations
		rep.Retrains += c.Retrains
		rep.Promotions += c.Promotions
		rep.Demotions += c.Demotions
		rep.AvgCoreUtil += c.AvgCoreUtil / float64(len(results))
		rep.AvgStrandedGB += c.AvgStrandedGB / float64(len(results))
		rep.PoolShare += c.PoolShare / float64(len(results))
		rep.PredErrMean += c.PredErrMean / float64(len(results))
		rep.PredErrFinal += c.PredErrFinal / float64(len(results))
		rep.InsensErrMean += c.InsensErrMean / float64(len(results))
		if c.PeakPoolUsedGB > rep.PeakPoolUsedGB {
			rep.PeakPoolUsedGB = c.PeakPoolUsedGB
		}
		rep.FinalPoolGB += c.FinalPoolGB
		rep.DRAMSavedGB += c.DRAMSavedGB
		rep.Fallbacks += c.Fallbacks
		rep.PlanHistory = append(rep.PlanHistory, c.Plans...)
		rep.Lifecycle = append(rep.Lifecycle, c.Lifecycle...)
		if c.ModelDump != nil {
			rep.ModelDumps = append(rep.ModelDumps, c.ModelDump)
		}
		log.WriteString(c.Log)
	}
	if fp != nil {
		counts := fp.Counts()
		rep.Retrains = counts.Retrains
		rep.Promotions = counts.Promotions
		rep.Demotions = counts.Demotions
		rep.Rollbacks = counts.Rollbacks
		rep.Rollout = fp.Events()
		rep.ChampionVer = fp.ChampionVer()
		if o.CaptureModels {
			dump, derr := fp.SnapshotJSON()
			if derr != nil {
				return nil, fmt.Errorf("fleet: release-train snapshot: %w", derr)
			}
			rep.ModelDumps = append(rep.ModelDumps, dump)
		}
		log.WriteString(fleetLog)
	}
	rep.EventLog = log.String()
	rep.Events = strings.Count(rep.EventLog, "\n") + fleetCompacted
	for _, c := range results {
		rep.Events += c.Compacted
	}
	// The manifest hashes each stream separately: one line per cell in
	// cell order, then the fleet stream. Cells finished without a running
	// digest fall back to hashing their full log here (the one-shot path
	// and synthetic test results).
	var manifest strings.Builder
	for _, c := range results {
		sha := c.LogSHA
		if sha == "" {
			sha = streamSHA256(c.Log)
		}
		manifest.WriteString(sha)
		manifest.WriteByte('\n')
	}
	if fleetSHA == "" {
		fleetSHA = streamSHA256(fleetLog)
	}
	manifest.WriteString(fleetSHA)
	manifest.WriteByte('\n')
	rep.LogSHA256 = streamSHA256(manifest.String())
	return rep, nil
}

// streamSHA256 hashes a string without the []byte copy.
func streamSHA256(s string) string {
	h := sha256.New()
	io.WriteString(h, s)
	return hex.EncodeToString(h.Sum(nil))
}

// EventLogSHA256 recomputes a report's LogSHA256 from a complete event
// log and the run's cell count: lines are partitioned back into their
// per-cell streams (by the "[c<N> " prefix; everything else — the
// "[fleet " lines — is the fleet stream), each stream is hashed, and
// the manifest of stream hashes (cells in cell order, fleet last,
// always present) is hashed. External verifiers — golden tests, the
// serve client's drained-stream reassembly, CI smoke checks — use it to
// prove a reassembled log matches the report hash byte for byte.
func EventLogSHA256(log string, cells int) string {
	cellH := make([]hash.Hash, cells)
	for i := range cellH {
		cellH[i] = sha256.New()
	}
	fleetH := sha256.New()
	for len(log) > 0 {
		line := log
		if nl := strings.IndexByte(log, '\n'); nl >= 0 {
			line, log = log[:nl+1], log[nl+1:]
		} else {
			log = ""
		}
		h := fleetH
		if strings.HasPrefix(line, "[c") {
			if cell, ok := parseCellPrefix(line[2:]); ok && cell < cells {
				h = cellH[cell]
			}
		}
		io.WriteString(h, line)
	}
	var manifest strings.Builder
	for _, h := range cellH {
		manifest.WriteString(hex.EncodeToString(h.Sum(nil)))
		manifest.WriteByte('\n')
	}
	manifest.WriteString(hex.EncodeToString(fleetH.Sum(nil)))
	manifest.WriteByte('\n')
	return streamSHA256(manifest.String())
}

// parseCellPrefix reads the decimal cell index terminating at the space
// of a "[c<N> t=..." line prefix (already stripped of "[c").
func parseCellPrefix(s string) (int, bool) {
	n, i := 0, 0
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		n = n*10 + int(s[i]-'0')
	}
	if i == 0 || i >= len(s) || s[i] != ' ' {
		return 0, false
	}
	return n, true
}

// cellIndices returns [0, n).
func cellIndices(n int) []int {
	cells := make([]int, n)
	for i := range cells {
		cells[i] = i
	}
	return cells
}

// barrier is one synchronization point of the barriered run: every cell
// advances to t, then the barrier work runs serially in cell order.
type barrier struct {
	t             float64
	retrain, plan bool
}

// barrierSchedule merges the retrain ticks (fleet model scope) and the
// planning ticks (elastic pool) into one ascending schedule. Times are
// computed as exact multiples of their cadence, so coincident barriers
// merge instead of firing twice.
func barrierSchedule(o Options, fleetScoped bool) []barrier {
	var bs []barrier
	add := func(t float64, retrain, plan bool) {
		for i := range bs {
			if bs[i].t == t {
				bs[i].retrain = bs[i].retrain || retrain
				bs[i].plan = bs[i].plan || plan
				return
			}
		}
		bs = append(bs, barrier{t: t, retrain: retrain, plan: plan})
	}
	if fleetScoped {
		for k := 1; ; k++ {
			t := float64(k) * o.RetrainEverySec
			if t >= o.DurationSec {
				break
			}
			add(t, true, false)
		}
	}
	if o.ElasticPool {
		for k := 1; ; k++ {
			t := float64(k) * o.PlanEverySec
			if t >= o.DurationSec {
				break
			}
			add(t, false, true)
		}
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].t < bs[j].t })
	return bs
}

// Event kinds of the cell loop.
const (
	evArrive = iota
	evDepart
	evInject
	evRetrain
)

// event is one entry of the cell's time-ordered queue.
type event struct {
	at   float64
	seq  int // banded tie-break (see the seq* bands below)
	kind int
	idx  int          // arrival or injection index
	vm   cluster.VMID // departing VM
}

// Sequence-number bands. Events at equal times pop in band order, and
// within a band in index order — exactly the order the old push-counter
// scheme produced (arrivals, then injections, then retrain ticks, then
// runtime-pushed departures). Making the bands explicit instead of
// implicit in push order is what lets a live injection, added mid-run
// through the Runner, land with the same sequence number it would have
// had if it had been scheduled from the start: the pop order — and
// therefore the event log — is byte-identical to the equivalent batch
// run.
const (
	seqInjectBand  = 1 << 40 // injections: seqInjectBand + injection index
	seqRetrainBand = 2 << 40 // cell-scoped retrain ticks: + tick index
	seqRuntimeBand = 3 << 40 // events pushed while running: + push counter
)

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq).
// (at, seq) is a strict total order — seq is unique per cell — so the
// minimum is always unique and the pop sequence is fully determined by
// the comparison alone, independent of the heap's internal layout. The
// methods avoid container/heap's interface boxing: pushing and popping
// an event allocates nothing once the backing array is grown.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// popMin removes and returns the minimum event.
func (h *eventHeap) popMin() event {
	q := *h
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	q[:n].down(0)
	return ev
}

// runningVM tracks one placed VM during the loop.
type runningVM struct {
	vm   cluster.VMRequest
	host int
	dec  core.Decision
}

// observer is the model-lifecycle listener a cell drives from its event
// loop: the cell-scoped mlops.Manager or the fleet pipeline's Collector.
type observer interface {
	ObserveOutcome(vm cluster.VMRequest, counters pmu.Vector, haveCounters bool)
	ForgetVM(id cluster.VMID)
}

// cellSim is one pool group's resumable discrete-event simulation.
// Everything is sequential and driven by RNGs forked from the injected
// cell RNG, so the cell's log depends only on (options, cell index,
// seed) — never on worker count or on how the horizon is sliced into
// epochs by the fleet-scoped barrier loop.
type cellSim struct {
	cell int
	o    Options

	tp      *topo.Topology
	devices []*emc.Device
	manager *pool.Manager
	spec    cluster.ServerSpec
	hosts   []*host.Host
	store   *telemetry.Store
	pipe    *core.Pipeline
	sched   *core.ClusterScheduler
	srv     *predict.Server
	insens  predict.Insensitivity
	ratio   float64

	// mgr drives cell-scoped retraining; col is the fleet pipeline's
	// collector under fleet scope. At most one is non-nil.
	mgr *mlops.Manager
	col *fleetpipeline.Collector
	// pinnedVer is the release version on the request path (fleet scope).
	pinnedVer int

	arrivals []cluster.VMRequest
	// arrSeed is the seed of the arrival-stream RNG fork, kept so a live
	// drift or surge injection can regenerate the stream bit-identically
	// to a batch run that had the injection from the start.
	arrSeed int64
	rPlace  *stats.Rand
	q       eventHeap
	seq     int
	running map[cluster.VMID]*runningVM
	log     strings.Builder
	// logDigest is the SHA-256 midstate of the log prefix the Runner
	// compacted away (nil until compaction first fires, so the default
	// path allocates nothing); compacted counts the folded lines.
	logDigest hash.Hash
	compacted int

	// Hot-path scratch, all scoped to this cell (cells are sequential,
	// so reuse is race-free and deterministic): lbuf renders log lines,
	// ctrBuf receives PMU samples handed to Decide (the pipeline and its
	// shadow hooks read the counters synchronously and never retain the
	// pointer), featBuf backs the UMFeatures vector (observers copy it),
	// and rvFree recycles runningVM records across departures.
	lbuf    []byte
	ctrBuf  pmu.Vector
	featBuf []float64
	rvFree  []*runningVM

	totalCores             float64
	placedGB, placedPoolGB float64
	lastT                  float64
	utilSec, strandedGBSec float64

	// Capacity loop: ctrl is the elastic controller (nil when off);
	// demandEpoch the distribution since the last planning barrier,
	// demandTotal the whole-run one; staticPoolGB is the capacity
	// actually provisioned at build time (o.PoolGB rounded down to the
	// per-EMC share — the savings baseline); poolGB caches the manager's
	// active capacity so per-event accounting never rescans devices;
	// savedGBSec integrates (static - actual) capacity over time;
	// lastFallbacks marks the scheduler's fallback counter at the last
	// barrier.
	ctrl          *capacity.Controller
	demandEpoch   *capacity.Demand
	demandTotal   *capacity.Demand
	staticPoolGB  int
	poolGB        int
	savedGBSec    float64
	lastFallbacks int64
	// lastPoolUsed is the pool draw at the last accounting point;
	// attemptGB the epoch's largest draw that wanted to happen (in-use
	// plus a failed request) — the censored-demand signal.
	lastPoolUsed float64
	attemptGB    int

	// Sim-time metrics sampling (see metrics.go; all zero when
	// MetricsEverySec is 0): metricsEvery is the cadence, sampleK the
	// index of the next sample (sample k fires at k*cadence), ring the
	// preallocated row buffer with its start/len cursor, ringDropped the
	// overflow count, and predErrEWMA/predErrN the departure-fed
	// prediction-error average the rows carry.
	metricsEvery float64
	sampleK      int
	ring         []MetricsRow
	ringStart    int
	ringLen      int
	ringDropped  int
	predErrEWMA  float64
	predErrN     int

	res CellResult
}

// newCellSim builds the cell's deployment: topology, devices, manager,
// hosts, control plane — the same wiring as pond.NewSystem.
func newCellSim(cell int, o Options, insens predict.Insensitivity, threshold float64, r *stats.Rand) (*cellSim, error) {
	c := &cellSim{cell: cell, o: o, insens: insens, res: CellResult{Cell: cell}}

	tp, err := topo.Build(o.Topology, o.Hosts, o.EMCs, o.PodDegree)
	if err != nil {
		return nil, err
	}
	c.tp = tp
	perEMC := o.PoolGB / o.EMCs
	c.devices = make([]*emc.Device, o.EMCs)
	for i := range c.devices {
		c.devices[i] = emc.NewDevice(fmt.Sprintf("c%d-emc%d", cell, i), perEMC, o.Hosts)
	}
	c.manager = pool.NewManagerTopo(c.devices, tp.Conn(), r.Fork(2))
	c.spec = cluster.ServerSpec{Sockets: 2, CoresPerSock: o.CoresPerSocket, MemGBPerSock: o.MemGBPerSocket}
	c.ratio = cxl.PondLatencyRatio(o.Hosts * 2)
	c.hosts = make([]*host.Host, o.Hosts)
	for i := range c.hosts {
		// The fleet loop never boots guests from placements, so the
		// per-VM guest topology is skipped (see host.Config).
		c.hosts[i] = host.New(emc.HostID(i), c.spec, host.Config{PoolLatencyRatio: c.ratio, SkipGuestTopology: true})
	}
	c.store = telemetry.NewStore()
	pcfg := core.DefaultConfig()
	pcfg.Ratio = c.ratio
	pcfg.PDM = o.PDM
	pcfg.TP = o.TP
	pcfg.InsensScoreThreshold = threshold
	var um predict.Untouched
	if o.Predictions {
		um = predict.HistoryQuantileUM{}
	}
	c.pipe = core.NewPipeline(pcfg, insens, um, c.store)
	c.sched = core.NewClusterScheduler(c.hosts, c.manager)

	// With predictions on, inference flows through the serving layer
	// (§5). Under cell scope the mlops manager shadow-scores every
	// decision — with retraining disabled it runs monitor-only, so frozen
	// and retrained fleets report the same prediction-error metrics.
	// Under fleet scope the barrier loop attaches a fleetpipeline
	// Collector instead, after construction.
	if o.Predictions {
		c.srv = predict.NewServer(insens, um)
		c.pipe.UseServer(c.srv)
		if o.ModelScope != ScopeFleet {
			mcfg := mlops.DefaultConfig()
			mcfg.PromoteMargin = o.PromoteMargin
			if o.HoldoutWindow > 0 {
				mcfg.HoldoutWindow = o.HoldoutWindow
			}
			if o.MinTrainRows > 0 {
				mcfg.MinTrainRows = o.MinTrainRows
			}
			mcfg.Seed = stats.ShardSeed(o.Seed, cell)
			c.mgr = mlops.NewManager(mcfg, cell, c.srv, insens, threshold, um,
				c.ratio, o.PDM, c.pipe.SetInsensThreshold)
			c.pipe.SetShadowHook(c.mgr.ObserveDecision)
		}
	}

	// ForkSeed consumes exactly the one parent draw Fork(3) used to, so
	// the arrival stream is unchanged — but keeping the seed lets a live
	// injection regenerate the stream later (see regenerateArrivals).
	c.arrSeed = r.ForkSeed(3)
	c.arrivals = generateArrivals(o, cell, c.arrSeed)
	c.res.Arrivals = len(c.arrivals)
	c.rPlace = r.Fork(4)

	// Seed the queue: arrivals in time order, then injections, then the
	// cell-scoped retrain ticks (fleet scope drives barriers externally).
	// Presize the heap for every arrival plus its departure so steady
	// state never regrows it, and the log for the expected line volume.
	c.q = make(eventHeap, 0, 2*len(c.arrivals)+len(o.Injections)+8)
	c.log.Grow(96 * (2*len(c.arrivals) + 16))
	for i := range c.arrivals {
		c.pushSeq(event{at: c.arrivals[i].ArrivalSec, kind: evArrive, idx: i}, i)
	}
	for i, inj := range o.Injections {
		c.pushSeq(event{at: inj.AtSec, kind: evInject, idx: i}, seqInjectBand+i)
	}
	if c.mgr != nil && o.RetrainEverySec > 0 {
		k := 0
		for t := o.RetrainEverySec; t <= o.DurationSec; t += o.RetrainEverySec {
			c.pushSeq(event{at: t, kind: evRetrain}, seqRetrainBand+k)
			k++
		}
	}

	c.running = make(map[cluster.VMID]*runningVM)
	c.totalCores = float64(o.Hosts * c.spec.TotalCores())

	c.demandEpoch = capacity.NewDemand()
	c.demandTotal = capacity.NewDemand()
	// perEMC rounds down, so the provisioned capacity — not o.PoolGB —
	// is the savings baseline; using the requested figure would bank
	// phantom savings whenever PoolGB does not divide across the EMCs.
	c.staticPoolGB = perEMC * o.EMCs
	c.poolGB = c.staticPoolGB
	if o.ElasticPool {
		// Floor at one slice per EMC so no topology pod ever goes dark.
		c.ctrl = capacity.NewController(capacity.ControllerConfig{
			TargetQoS: o.TargetQoS,
			SliceGB:   emc.SliceGB,
			MinPoolGB: o.EMCs * emc.SliceGB,
		})
	}
	if o.MetricsEverySec > 0 {
		// The ring is preallocated here so steady-state sampling writes
		// into existing rows and never allocates (sample 1 fires at the
		// cadence, not at t=0 — an all-zero row says nothing).
		c.metricsEvery = o.MetricsEverySec
		c.sampleK = 1
		c.ring = make([]MetricsRow, metricsRingCap(o.DurationSec, o.MetricsEverySec))
	}
	return c, nil
}

// newRunningVM takes a record from the cell freelist, or allocates one.
func (c *cellSim) newRunningVM() *runningVM {
	if n := len(c.rvFree); n > 0 {
		rv := c.rvFree[n-1]
		c.rvFree = c.rvFree[:n-1]
		return rv
	}
	return &runningVM{}
}

// freeRunningVM recycles a record after its last read. The caller must
// not touch rv afterwards.
func (c *cellSim) freeRunningVM(rv *runningVM) {
	c.rvFree = append(c.rvFree, rv)
}

// observer returns the active lifecycle listener, nil when none.
func (c *cellSim) observer() observer {
	if c.mgr != nil {
		return c.mgr
	}
	if c.col != nil {
		return c.col
	}
	return nil
}

// push enqueues an event generated while the loop runs (departures,
// failure re-arms) in the runtime band: after every same-time seeded
// event, in push order among themselves — the order the old plain
// counter produced.
func (c *cellSim) push(ev event) {
	c.pushSeq(ev, seqRuntimeBand+c.seq)
	c.seq++
}

// pushSeq enqueues an event with an explicit banded sequence number.
func (c *cellSim) pushSeq(ev event, seq int) {
	ev.seq = seq
	c.q = append(c.q, ev)
	c.q.up(len(c.q) - 1)
}

// liveInject schedules an injection added mid-run through the Runner.
// The injection is appended to the cell's own copy of the injection
// list — index order is the determinism contract: the equivalent batch
// run lists live injections after the scheduled ones, in the order they
// were added — and enqueued with the exact banded sequence number a
// batch-scheduled injection at that index would have carried. Drift and
// surge are baked into the pre-generated arrival stream, so those two
// kinds also regenerate it.
func (c *cellSim) liveInject(in Injection, now float64) {
	idx := len(c.o.Injections)
	// Full-slice append: the seeded Options share one backing array
	// across every cell's copy, so an in-place grow from one cell could
	// be observed by another. Forcing a fresh allocation keeps each
	// cell's list independent.
	c.o.Injections = append(c.o.Injections[:idx:idx], in)
	c.pushSeq(event{at: in.AtSec, kind: evInject, idx: idx}, seqInjectBand+idx)
	if in.Kind == InjectDrift || in.Kind == InjectSurge {
		c.regenerateArrivals(now)
	}
}

// regenerateArrivals rebuilds the arrival stream from the stored fork
// seed after a live drift or surge changed the injection list. Because
// generateArrivals is a pure function of (options, cell, seed), the
// regenerated stream is exactly what a batch run with the same
// injections would have drawn — and its pre-now prefix is unchanged,
// since drift and surge only alter draws at or after their firing time
// and a live injection cannot fire in the past. Every event already
// processed therefore keeps its bytes; only the pending arrival events
// need replacing.
func (c *cellSim) regenerateArrivals(now float64) {
	c.arrivals = generateArrivals(c.o, c.cell, c.arrSeed)
	c.res.Arrivals = len(c.arrivals)
	// Drop the stale pending arrivals, re-add those still due with their
	// band-0 sequence numbers, and re-establish the heap invariant. The
	// pop order depends only on the (at, seq) comparison — a strict
	// total order — so a heapified queue pops the same sequence a batch
	// run's incremental pushes would.
	q := c.q[:0]
	for _, ev := range c.q {
		if ev.kind != evArrive {
			q = append(q, ev)
		}
	}
	for i := range c.arrivals {
		if c.arrivals[i].ArrivalSec >= now {
			q = append(q, event{at: c.arrivals[i].ArrivalSec, seq: i, kind: evArrive, idx: i})
		}
	}
	c.q = q
	for i := len(c.q)/2 - 1; i >= 0; i-- {
		c.q.down(i)
	}
}

// compactLog folds the drained log prefix (the first mark bytes) into
// the cell's stream digest and keeps only the tail, returning the
// tail-relative drain mark. Called by the Runner under SetCompactDrained.
func (c *cellSim) compactLog(mark int) int {
	c.logDigest, c.compacted, mark = compactStream(&c.log, c.logDigest, c.compacted, mark)
	return mark
}

// logf renders one cold-path log line through fmt. Hot-path events
// (arrive, depart, reject, qos-violation) use the append-based helpers
// below instead, which produce byte-identical output without boxing
// arguments or allocating.
func (c *cellSim) logf(at float64, format string, args ...any) {
	fmt.Fprintf(&c.log, "[c%d t=%.3f] ", c.cell, at)
	fmt.Fprintf(&c.log, format, args...)
	c.log.WriteByte('\n')
}

// logPrefix appends the shared "[c%d t=%.3f] " prefix to the line
// scratch buffer and returns it. strconv.AppendFloat with 'f'/3 renders
// exactly what fmt's %.3f does, and AppendInt exactly what %d does, so
// the zero-alloc helpers below reproduce logf's bytes bit for bit — the
// golden event logs pin this equivalence.
func (c *cellSim) logPrefix(at float64) []byte {
	b := append(c.lbuf[:0], "[c"...)
	b = strconv.AppendInt(b, int64(c.cell), 10)
	b = append(b, " t="...)
	b = appendFixed3(b, at)
	return append(b, "] "...)
}

// logLine commits a rendered line to the cell log, keeping the grown
// scratch buffer for the next event.
func (c *cellSim) logLine(b []byte) {
	b = append(b, '\n')
	c.log.Write(b)
	c.lbuf = b[:0]
}

// logArrive renders "arrive vm=%d cust=%d type=%s decision=%s host=%d
// local=%g pool=%g".
func (c *cellSim) logArrive(at float64, vm *cluster.VMRequest, kind core.DecisionKind, hostIdx int, localGB, poolGB float64) {
	b := c.logPrefix(at)
	b = append(b, "arrive vm="...)
	b = strconv.AppendInt(b, int64(vm.ID), 10)
	b = append(b, " cust="...)
	b = strconv.AppendInt(b, int64(vm.Customer), 10)
	b = append(b, " type="...)
	b = append(b, vm.Type.Name...)
	b = append(b, " decision="...)
	b = append(b, kind.String()...)
	b = append(b, " host="...)
	b = strconv.AppendInt(b, int64(hostIdx), 10)
	b = append(b, " local="...)
	b = strconv.AppendFloat(b, localGB, 'g', -1, 64)
	b = append(b, " pool="...)
	b = strconv.AppendFloat(b, poolGB, 'g', -1, 64)
	c.logLine(b)
}

// logDepart renders "depart vm=%d host=%d".
func (c *cellSim) logDepart(at float64, id cluster.VMID, hostIdx int) {
	b := c.logPrefix(at)
	b = append(b, "depart vm="...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " host="...)
	b = strconv.AppendInt(b, int64(hostIdx), 10)
	c.logLine(b)
}

// logReject renders "reject vm=%d type=%s cores=%d mem=%g".
func (c *cellSim) logReject(at float64, vm *cluster.VMRequest) {
	b := c.logPrefix(at)
	b = append(b, "reject vm="...)
	b = strconv.AppendInt(b, int64(vm.ID), 10)
	b = append(b, " type="...)
	b = append(b, vm.Type.Name...)
	b = append(b, " cores="...)
	b = strconv.AppendInt(b, int64(vm.Type.Cores), 10)
	b = append(b, " mem="...)
	b = strconv.AppendFloat(b, vm.Type.MemoryGB, 'g', -1, 64)
	c.logLine(b)
}

// logQoS renders "qos-violation vm=%d decision=%s slowdown=%.3f".
func (c *cellSim) logQoS(at float64, id cluster.VMID, kind core.DecisionKind, slowdown float64) {
	b := c.logPrefix(at)
	b = append(b, "qos-violation vm="...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " decision="...)
	b = append(b, kind.String()...)
	b = append(b, " slowdown="...)
	b = appendFixed3(b, slowdown)
	c.logLine(b)
}

// account integrates the time-weighted utilization metrics up to now.
func (c *cellSim) account(now float64) {
	dt := now - c.lastT
	if dt <= 0 {
		return
	}
	freeCores, stranded, poolUsed := 0, 0.0, 0.0
	for _, h := range c.hosts {
		freeCores += h.FreeCores()
		stranded += h.StrandedGB()
		poolUsed += h.OnlinePoolGB() - h.FreePoolGB()
	}
	c.lastPoolUsed = poolUsed
	c.utilSec += dt * (c.totalCores - float64(freeCores)) / c.totalCores
	c.strandedGBSec += dt * stranded
	c.demandEpoch.Observe(dt, poolUsed)
	c.demandTotal.Observe(dt, poolUsed)
	c.savedGBSec += dt * float64(c.staticPoolGB-c.poolGB)
	if poolUsed > c.res.PeakPoolUsedGB {
		c.res.PeakPoolUsedGB = poolUsed
	}
	c.lastT = now
}

// applyPin installs a fleet-pipeline barrier assignment: the collector's
// shadow slots always, and — when the serving release changed — the
// cell's inference server is re-pinned to the new generation and the
// change is logged in the cell's own stream.
func (c *cellSim) applyPin(a fleetpipeline.Assignment, now float64) {
	c.col.Install(a)
	if a.ServeVer == c.pinnedVer {
		return
	}
	c.pipe.Server().Pin(a.ServeVer, c.insens, a.Serve)
	c.pinnedVer = a.ServeVer
	c.res.ServedVersions = append(c.res.ServedVersions, a.ServeVer)
	c.logf(now, "fleetpipeline pin ver=%d role=%s", a.ServeVer, a.Role)
}

// planTick runs one elastic-pool planning barrier: the demand observed
// since the previous barrier becomes a pool-size target and the Pool
// Manager grows or shrinks toward it (shrinks retire free slices only —
// live and draining capacity is never revoked). The decision is pure
// arithmetic over cell-local state and is logged into the cell's own
// stream, so the event log stays byte-identical for any worker count.
func (c *cellSim) planTick(now float64) {
	c.account(now)
	cur := c.manager.PoolGB()
	total := c.sched.Fallbacks()
	fallbacks := int(total - c.lastFallbacks)
	c.lastFallbacks = total
	target := c.ctrl.Target(c.demandEpoch, c.manager.AssignedGB(now), fallbacks, c.attemptGB, cur)
	ev := capacity.PlanEvent{
		Cell:        c.cell,
		AtSec:       now,
		PoolGB:      cur,
		TargetGB:    target,
		PeakGB:      c.demandEpoch.PeakGB(),
		QGB:         c.demandEpoch.QuantileGB(1 - c.o.TargetQoS),
		Fallbacks:   fallbacks,
		AttemptedGB: c.attemptGB,
	}
	switch {
	case target > cur:
		ev.GrewGB = c.manager.Grow(target - cur)
	case target < cur:
		ev.ShrunkGB = c.manager.Shrink(cur-target, now)
	}
	c.poolGB = c.manager.PoolGB()
	ev.NewPoolGB = c.poolGB
	c.res.Plans = append(c.res.Plans, ev)
	c.demandEpoch.Reset()
	c.attemptGB = 0
	c.logf(now, "%s", ev)
}

// runUntil processes events strictly before tEnd; with final set it
// also takes events at exactly tEnd — the horizon boundary is inclusive,
// barrier boundaries are not (a barrier's effects apply before anything
// stamped at or after it).
func (c *cellSim) runUntil(tEnd float64, final bool) error {
	o := c.o
	for len(c.q) > 0 {
		if next := c.q[0].at; next > tEnd || (!final && next == tEnd) {
			break
		}
		// Emit metric samples due at or before the next event, before it
		// mutates anything: a row stamped at an event's exact time shows
		// the pre-event state. Inclusive here, exclusive at non-final
		// slice ends (the tail call below), so the series is independent
		// of how the horizon is sliced — a barrier's effects land before
		// any row stamped at or after it, mirroring the event rule.
		c.sampleMetricsUpTo(c.q[0].at, true)
		ev := c.q.popMin()
		c.account(ev.at)
		now := ev.at
		switch ev.kind {
		case evArrive:
			vm := c.arrivals[ev.idx]
			w := vm.GroundTruth.Workload

			// Admission through the Figure 13 control plane: history
			// counters when the customer has completed VMs before. The
			// counter vector and feature slice are per-cell scratch —
			// Decide and its shadow hooks consume them synchronously.
			var counters *pmu.Vector
			hist := c.store.CustomerHistory(vm.Customer, now+1, predict.HistoryWindowSec)
			if hist.Count > 0 {
				pmu.SampleInto(&c.ctrBuf, w, c.rPlace)
				counters = &c.ctrBuf
			}
			c.featBuf = predict.UMFeaturesInto(c.featBuf[:0], vm, hist)
			d := c.pipe.Decide(vm, counters, c.featBuf)
			pr, perr := c.sched.Place(vm, d, now)
			if perr != nil {
				c.res.Rejected++
				if obsv := c.observer(); obsv != nil {
					obsv.ForgetVM(vm.ID)
				}
				c.logReject(now, &c.arrivals[ev.idx])
				continue
			}
			if pr.FellBackToLocal {
				// Record the draw the pool could not serve: demand above
				// capacity is invisible to the usage telemetry, so the
				// capacity controller needs the attempted size to grow past.
				if a := int(c.lastPoolUsed + d.PoolGB + 0.5); a > c.attemptGB {
					c.attemptGB = a
				}
				d = core.Decision{Kind: core.AllLocal, LocalGB: vm.Type.MemoryGB}
			}
			pmu.SampleInto(&c.ctrBuf, w, c.rPlace)
			c.store.RecordSample(vm.ID, c.ctrBuf)
			c.res.Placed++
			c.placedGB += vm.Type.MemoryGB
			c.placedPoolGB += pr.Placement.PoolGB
			rv := c.newRunningVM()
			rv.vm, rv.host, rv.dec = vm, pr.HostIndex, d
			c.running[vm.ID] = rv
			c.push(event{at: now + vm.LifetimeSec, kind: evDepart, vm: vm.ID})
			c.logArrive(now, &c.arrivals[ev.idx], d.Kind, pr.HostIndex, pr.Placement.LocalGB, pr.Placement.PoolGB)

		case evDepart:
			st, ok := c.running[ev.vm]
			if !ok {
				continue // lost to an earlier EMC failure
			}
			delete(c.running, ev.vm)
			p, rerr := c.sched.Release(st.host, ev.vm, now)
			if rerr != nil {
				return fmt.Errorf("cell %d: release vm %d: %w", c.cell, ev.vm, rerr)
			}
			c.store.RecordOutcome(p.VM.Customer, now, p.VM.GroundTruth.UntouchedFrac)
			if o.Predictions {
				// Departure is when the QoS monitor's verdict is final:
				// ground truth turns the decision into an outcome, and
				// flagged customers skip the all-pool path from now on.
				out := c.pipe.Evaluate(st.vm, st.dec)
				if out.ExceedsPDM {
					c.res.QoSViolations++
					c.logQoS(now, ev.vm, st.dec.Kind, out.SlowdownFrac)
				}
				if out.Mitigated {
					c.res.Mitigations++
				}
				c.observePredErr(st)
			}
			if obsv := c.observer(); obsv != nil {
				mc, okc := c.store.MeanCounters(ev.vm)
				obsv.ObserveOutcome(st.vm, mc, okc)
			}
			c.store.ForgetVM(ev.vm)
			c.res.Departed++
			hostIdx := st.host
			c.freeRunningVM(st)
			c.hosts[hostIdx].RecyclePlacement(p)
			c.logDepart(now, ev.vm, hostIdx)

		case evInject:
			inj := o.Injections[ev.idx]
			switch inj.Kind {
			case InjectEMCFail:
				c.devices[inj.EMC].Fail()
				// Blast radius: every running VM with slices on the dead
				// device, released in id order.
				var blast []cluster.VMID
				for id, st := range c.running {
					for _, ref := range hostSlices(c.hosts[st.host], id) {
						if ref.EMC == inj.EMC {
							blast = append(blast, id)
							break
						}
					}
				}
				sort.Slice(blast, func(i, j int) bool { return blast[i] < blast[j] })
				lostGB := 0.0
				for _, id := range blast {
					st := c.running[id]
					delete(c.running, id)
					p, rerr := c.hosts[st.host].ReleaseVM(id)
					if rerr != nil {
						return fmt.Errorf("cell %d: blast release vm %d: %w", c.cell, id, rerr)
					}
					lostGB += p.VM.Type.MemoryGB
					// Slices on the failed device are gone; survivors on
					// other EMCs drain back through the manager.
					var alive []pool.SliceRef
					for _, ref := range p.Slices {
						if ref.EMC != inj.EMC {
							alive = append(alive, ref)
						}
					}
					if err := c.hosts[st.host].RemovePoolCapacity(float64(len(p.Slices))); err != nil {
						return fmt.Errorf("cell %d: blast offline vm %d: %w", c.cell, id, err)
					}
					if len(alive) > 0 {
						c.manager.ReleaseCapacity(emc.HostID(st.host), alive, now)
					}
					c.store.ForgetVM(id)
					if obsv := c.observer(); obsv != nil {
						obsv.ForgetVM(id)
					}
					c.hosts[st.host].RecyclePlacement(p)
					c.freeRunningVM(st)
				}
				c.res.BlastVMs += len(blast)
				c.logf(now, "inject emc-fail emc=%d blast-hosts=%d blast-vms=%d lost-gb=%g",
					inj.EMC, c.tp.BlastRadiusHosts(inj.EMC), len(blast), lostGB)

			case InjectHostDrain:
				migrations, remaining, derr := c.sched.DrainHost(inj.Host, now)
				if derr != nil {
					return derr
				}
				for _, m := range migrations {
					if st, ok := c.running[m.VM]; ok {
						st.host = m.Target
					}
				}
				c.res.Migrated += len(migrations)
				c.logf(now, "inject host-drain host=%d migrated=%d remaining=%d", inj.Host, len(migrations), len(remaining))

			case InjectSurge:
				c.logf(now, "inject surge x=%g dur=%g", inj.Factor, inj.DurSec)

			case InjectResize:
				applied := 0
				if inj.Slices > 0 {
					if gerr := c.manager.GrowEMC(inj.EMC, inj.Slices*emc.SliceGB); gerr == nil {
						applied = inj.Slices
					} // a failed EMC grows nothing; applied stays 0
				} else {
					gb, serr := c.manager.ShrinkEMC(inj.EMC, -inj.Slices*emc.SliceGB, now)
					if serr != nil {
						return fmt.Errorf("cell %d: resize: %w", c.cell, serr)
					}
					applied = -gb / emc.SliceGB
				}
				c.poolGB = c.manager.PoolGB()
				c.logf(now, "inject resize emc=%d slices=%+d applied=%+d pool=%d",
					inj.EMC, inj.Slices, applied, c.poolGB)

			case InjectDrift:
				// The population shift itself happened in the arrival
				// stream; this marks the moment in the event log —
				// regional drifts record whether this cell is in range.
				if inj.CellHi >= 0 {
					c.logf(now, "inject drift mag=%g cells=%d-%d applied=%t",
						inj.Mag, inj.CellLo, inj.CellHi, inj.AppliesTo(c.cell))
				} else {
					c.logf(now, "inject drift mag=%g", inj.Mag)
				}
			}

		case evRetrain:
			for _, le := range c.mgr.Tick(now) {
				c.logf(now, "%s", le)
			}
		}
	}
	c.sampleMetricsUpTo(tEnd, final)
	return nil
}

// finish integrates the tail accounting, renders the summary lines, and
// returns the cell's result.
func (c *cellSim) finish() (CellResult, error) {
	o := c.o
	c.account(o.DurationSec)

	if o.DurationSec > 0 {
		c.res.AvgCoreUtil = c.utilSec / o.DurationSec
		c.res.AvgStrandedGB = c.strandedGBSec / o.DurationSec
	}
	if c.placedGB > 0 {
		c.res.PoolShare = c.placedPoolGB / c.placedGB
	}
	if c.mgr != nil {
		q := c.mgr.Quality()
		c.res.Retrains, c.res.Promotions, c.res.Demotions = q.Retrains, q.Promotions, q.Demotions
		c.res.UMChampVer, c.res.InsensChampVer = q.UMChampVer, q.InsensChampVer
		c.res.PredErrMean, c.res.PredErrFinal = q.UMLossMean, q.UMLossFinal
		c.res.InsensErrMean = q.InsensLossMean
		c.res.Lifecycle = c.mgr.Events()
		if o.CaptureModels {
			dump, derr := c.mgr.SnapshotJSON()
			if derr != nil {
				return c.res, fmt.Errorf("cell %d: model snapshot: %w", c.cell, derr)
			}
			c.res.ModelDump = dump
		}
		c.logf(o.DurationSec, "mlops summary retrains=%d promotions=%d demotions=%d um-ver=%d insens-ver=%d pred-err=%.4f pred-err-final=%.4f insens-err=%.4f",
			q.Retrains, q.Promotions, q.Demotions, q.UMChampVer, q.InsensChampVer,
			q.UMLossMean, q.UMLossFinal, q.InsensLossMean)
	}
	if c.col != nil {
		q := c.col.Quality()
		c.res.UMChampVer = q.ServeVer
		c.res.PredErrMean, c.res.PredErrFinal = q.ServeLossMean, q.ServeLossFinal
		c.res.InsensErrMean = q.InsensLossMean
		c.logf(o.DurationSec, "fleetpipeline cell summary serve-ver=%d pred-err=%.4f pred-err-final=%.4f insens-err=%.4f",
			q.ServeVer, q.ServeLossMean, q.ServeLossFinal, q.InsensLossMean)
	}
	c.res.FinalPoolGB = c.poolGB
	if o.DurationSec > 0 {
		c.res.DRAMSavedGB = c.savedGBSec / o.DurationSec
	}
	if c.ringLen > 0 {
		c.res.Series = c.drainMetricsInto(c.res.Series)
	}
	c.res.MetricsDropped = c.ringDropped
	c.res.Fallbacks = int(c.sched.Fallbacks())
	c.res.Demand = c.demandTotal
	if qs := c.store.UntouchedQuantiles(0.5, 0.9); qs != nil {
		c.res.UntouchedP50, c.res.UntouchedP90 = qs[0], qs[1]
	}
	if o.ElasticPool || c.poolGB != c.staticPoolGB {
		c.logf(o.DurationSec, "elastic summary plans=%d final-pool=%d dram-saved=%.2f fallbacks=%d",
			len(c.res.Plans), c.poolGB, c.res.DRAMSavedGB, c.res.Fallbacks)
	}
	c.logf(o.DurationSec, "summary arrivals=%d placed=%d rejected=%d departed=%d blast-vms=%d migrated=%d qos=%d util=%.3f stranded=%.3f pool-share=%.4f",
		c.res.Arrivals, c.res.Placed, c.res.Rejected, c.res.Departed, c.res.BlastVMs, c.res.Migrated,
		c.res.QoSViolations, c.res.AvgCoreUtil, c.res.AvgStrandedGB, c.res.PoolShare)
	c.res.Log = c.log.String()
	if c.logDigest != nil {
		// Complete the stream hash from the midstate; the prefix bytes it
		// absorbed are gone, so res.Log is just the tail.
		io.WriteString(c.logDigest, c.res.Log)
		c.res.LogSHA = hex.EncodeToString(c.logDigest.Sum(nil))
	} else {
		c.res.LogSHA = streamSHA256(c.res.Log)
	}
	c.res.Compacted = c.compacted
	return c.res, nil
}

// hostSlices returns a VM's pool slices on its host (nil when unknown).
func hostSlices(h *host.Host, id cluster.VMID) []pool.SliceRef {
	if p, ok := h.Placement(id); ok {
		return p.Slices
	}
	return nil
}
