// Package fleet is the online, event-driven counterpart to the offline
// trace replays of internal/sim. Where the figure pipelines compute a
// placement once and measure it, fleet drives a live deployment the way
// §4 and §7 describe the production system: VMs arrive and depart
// continuously, every admission flows through the prediction/QoS control
// plane (internal/predict, internal/core), the Pool Manager onlines and
// drains slices in simulated time, and operational scenarios — EMC
// failures with topology-bounded blast radius, host drains, load surges —
// are injected mid-run.
//
// A run is a set of independent cells (pool groups), each simulated by a
// sequential discrete-event loop and fanned out across the parallel
// engine of internal/engine. Each cell's RNG derives from the root seed
// and the cell index alone, and cell results merge in cell order, so the
// full event log — and therefore its hash — is byte-identical for any
// worker count.
package fleet

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/cxl"
	"pond/internal/emc"
	"pond/internal/engine"
	"pond/internal/host"
	"pond/internal/mlops"
	"pond/internal/pmu"
	"pond/internal/pool"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/telemetry"
	"pond/internal/topo"
)

// Options configures a fleet run. The zero value of any field falls back
// to the corresponding DefaultOptions value.
type Options struct {
	// Topology names the host-to-EMC graph of every cell: flat, sharded,
	// or sparse (see internal/topo).
	Topology string
	// PodDegree is the per-host EMC count under sparse.
	PodDegree int

	// Hosts, EMCs, and PoolGB size each cell's pool group.
	Hosts  int
	EMCs   int
	PoolGB int

	// CoresPerSocket and MemGBPerSocket shape each dual-socket host.
	CoresPerSocket int
	MemGBPerSocket float64

	// Cells is the number of independent pool groups; each is one
	// engine shard.
	Cells int

	// DurationSec is the simulated horizon of each cell.
	DurationSec float64

	// Arrival is the VM arrival process.
	Arrival ArrivalModel

	// Injections are the scheduled scenario events, applied to every
	// cell.
	Injections []Injection

	// Predictions enables the ML scheduling pipeline; when false every
	// VM is all-local (the no-pooling baseline).
	Predictions bool

	// RetrainEverySec > 0 turns on the online model-lifecycle loop
	// (internal/mlops): every cell retrains challenger models from its
	// live telemetry at this cadence, shadow-scores them against the
	// serving champions, and hot-swaps on proven improvement. Requires
	// Predictions.
	RetrainEverySec float64
	// PromoteMargin is the fractional loss improvement required to
	// promote a challenger (or demote a regressed champion); zero means
	// the mlops default.
	PromoteMargin float64
	// HoldoutWindow is the rolling comparison window in completed VMs;
	// zero means the mlops default.
	HoldoutWindow int
	// MinTrainRows is the minimum completed VMs before a challenger is
	// trained; zero means the mlops default.
	MinTrainRows int
	// CaptureModels dumps every cell's versioned model snapshots into
	// the report.
	CaptureModels bool

	// PDM and TP are the QoS knobs (§5).
	PDM float64
	TP  float64

	// Workers bounds the engine pool; <= 0 means GOMAXPROCS. Results
	// are byte-identical for every value.
	Workers int
	// Seed roots every cell's RNG stream.
	Seed int64
}

// DefaultOptions returns the default fleet: four 8-host cells with four
// 128 GB EMCs each, Poisson arrivals, predictions on.
func DefaultOptions() Options {
	return Options{
		Topology:       topo.Flat,
		PodDegree:      2,
		Hosts:          8,
		EMCs:           4,
		PoolGB:         512,
		CoresPerSocket: 24,
		MemGBPerSocket: 192,
		Cells:          4,
		DurationSec:    1000,
		Arrival:        DefaultArrival(),
		Predictions:    true,
		PDM:            0.05,
		TP:             0.98,
		Seed:           1,
	}
}

// normalize fills zero fields from the defaults and validates the rest.
func normalize(o Options) (Options, error) {
	d := DefaultOptions()
	if o.Topology == "" {
		o.Topology = d.Topology
	}
	if o.PodDegree <= 0 {
		o.PodDegree = d.PodDegree
	}
	if o.Hosts <= 0 {
		o.Hosts = d.Hosts
	}
	if o.EMCs <= 0 {
		o.EMCs = d.EMCs
	}
	if o.PoolGB <= 0 {
		o.PoolGB = d.PoolGB
	}
	if o.CoresPerSocket <= 0 {
		o.CoresPerSocket = d.CoresPerSocket
	}
	if o.MemGBPerSocket <= 0 {
		o.MemGBPerSocket = d.MemGBPerSocket
	}
	if o.Cells <= 0 {
		o.Cells = d.Cells
	}
	if o.DurationSec <= 0 {
		o.DurationSec = d.DurationSec
	}
	if o.Arrival.Kind == "" {
		o.Arrival.Kind = d.Arrival.Kind
	}
	if o.Arrival.RatePerSec <= 0 {
		o.Arrival.RatePerSec = d.Arrival.RatePerSec
	}
	if o.Arrival.MeanLifetimeSec <= 0 {
		o.Arrival.MeanLifetimeSec = d.Arrival.MeanLifetimeSec
	}
	if o.PDM <= 0 {
		o.PDM = d.PDM
	}
	if o.TP <= 0 {
		o.TP = d.TP
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.PoolGB < o.EMCs {
		return o, fmt.Errorf("fleet: pool of %d GB cannot shard across %d EMCs", o.PoolGB, o.EMCs)
	}
	if o.RetrainEverySec < 0 || math.IsNaN(o.RetrainEverySec) || math.IsInf(o.RetrainEverySec, 0) {
		return o, fmt.Errorf("fleet: retrain interval %gs must be a finite number >= 0", o.RetrainEverySec)
	}
	if o.RetrainEverySec > 0 && !o.Predictions {
		return o, fmt.Errorf("fleet: retraining requires predictions")
	}
	if o.CaptureModels && !o.Predictions {
		return o, fmt.Errorf("fleet: capturing models requires predictions")
	}
	if !(o.PromoteMargin >= 0 && o.PromoteMargin < 1) { // rejects NaN too
		return o, fmt.Errorf("fleet: promotion margin %g must be in [0, 1)", o.PromoteMargin)
	}
	if o.HoldoutWindow < 0 || o.MinTrainRows < 0 {
		return o, fmt.Errorf("fleet: holdout window and min train rows must be >= 0")
	}
	if _, err := topo.Build(o.Topology, o.Hosts, o.EMCs, o.PodDegree); err != nil {
		return o, err
	}
	for _, in := range o.Injections {
		if in.Kind == InjectEMCFail && (in.EMC < 0 || in.EMC >= o.EMCs) {
			return o, fmt.Errorf("fleet: injection %s targets EMC %d of %d", in, in.EMC, o.EMCs)
		}
		if in.Kind == InjectHostDrain && (in.Host < 0 || in.Host >= o.Hosts) {
			return o, fmt.Errorf("fleet: injection %s targets host %d of %d", in, in.Host, o.Hosts)
		}
		if in.AtSec > o.DurationSec {
			// Refuse rather than silently never firing: the caller asked
			// for a scenario the horizon cannot contain.
			return o, fmt.Errorf("fleet: injection %s fires after the %gs horizon", in, o.DurationSec)
		}
	}
	return o, nil
}

// CellResult is one cell's outcome.
type CellResult struct {
	Cell int

	Arrivals int
	Placed   int
	Rejected int
	Departed int
	// BlastVMs counts VMs lost to EMC failures.
	BlastVMs int
	// Migrated counts VMs moved off draining hosts.
	Migrated int

	// QoSViolations counts departed VMs whose realized slowdown exceeded
	// the PDM; Mitigations counts those the QoS monitor reconfigured.
	QoSViolations int
	Mitigations   int

	// AvgCoreUtil is the time-weighted scheduled-core fraction.
	AvgCoreUtil float64
	// AvgStrandedGB is the time-weighted stranded local memory (§2).
	AvgStrandedGB float64
	// PeakPoolUsedGB is the maximum pool memory in use at any event.
	PeakPoolUsedGB float64
	// PoolShare is the GB-weighted share of placed memory on the pool.
	PoolShare float64

	// Model lifecycle (zero unless retraining ran).
	Retrains, Promotions, Demotions int
	// UMChampVer / InsensChampVer are the serving model versions at the
	// end of the run.
	UMChampVer, InsensChampVer int
	// PredErrMean is the serving untouched-memory model's mean
	// asymmetric prediction loss over all completed VMs; PredErrFinal
	// the same over the final rolling window.
	PredErrMean, PredErrFinal float64
	// InsensErrMean is the serving insensitivity model's mean score
	// error against ground-truth labels.
	InsensErrMean float64
	// Lifecycle is the cell's retrain/promote/demote history.
	Lifecycle []mlops.Event
	// ModelDump holds the versioned model snapshots (CaptureModels).
	ModelDump json.RawMessage

	// Log is the cell's event log.
	Log string
}

// Report is the merged outcome of a fleet run.
type Report struct {
	Options      Options
	TopologyDesc string
	Cells        []CellResult

	Arrivals, Placed, Rejected, Departed int
	BlastVMs, Migrated                   int
	QoSViolations, Mitigations           int
	AvgCoreUtil                          float64
	AvgStrandedGB                        float64
	PeakPoolUsedGB                       float64
	PoolShare                            float64

	// Model lifecycle, aggregated across cells (zero unless retraining
	// ran).
	Retrains, Promotions, Demotions int
	// PredErrMean / PredErrFinal are cell means of the serving
	// untouched-memory model's asymmetric loss (whole run / final
	// window); InsensErrMean likewise for the insensitivity score.
	PredErrMean, PredErrFinal float64
	InsensErrMean             float64
	// Lifecycle is every cell's retrain/promote/demote history in cell
	// order.
	Lifecycle []mlops.Event
	// ModelDumps is one versioned-model snapshot document per cell
	// (CaptureModels).
	ModelDumps []json.RawMessage

	// EventLog is the concatenation of all cell logs in cell order;
	// LogSHA256 is its hash — the determinism witness.
	EventLog  string
	LogSHA256 string
}

// String renders a one-screen summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: topology=%s cells=%d hosts=%d emcs=%d pool=%dGB arrival=%s duration=%gs seed=%d\n",
		r.Options.Topology, r.Options.Cells, r.Options.Hosts, r.Options.EMCs, r.Options.PoolGB,
		r.Options.Arrival, r.Options.DurationSec, r.Options.Seed)
	fmt.Fprintf(&b, "  %s\n", r.TopologyDesc)
	fmt.Fprintf(&b, "  arrivals=%d placed=%d rejected=%d departed=%d blast-vms=%d migrated=%d\n",
		r.Arrivals, r.Placed, r.Rejected, r.Departed, r.BlastVMs, r.Migrated)
	fmt.Fprintf(&b, "  core-util=%.1f%% stranded=%.1fGB peak-pool-used=%.0fGB pool-share=%.1f%% qos-violations=%d mitigated=%d\n",
		100*r.AvgCoreUtil, r.AvgStrandedGB, r.PeakPoolUsedGB, 100*r.PoolShare, r.QoSViolations, r.Mitigations)
	if r.Options.RetrainEverySec > 0 {
		fmt.Fprintf(&b, "  mlops: retrains=%d promotions=%d demotions=%d pred-err=%.4f pred-err-final=%.4f insens-err=%.4f\n",
			r.Retrains, r.Promotions, r.Demotions, r.PredErrMean, r.PredErrFinal, r.InsensErrMean)
	}
	fmt.Fprintf(&b, "  event-log: %d events, sha256=%s", strings.Count(r.EventLog, "\n"), r.LogSHA256)
	return b.String()
}

// Run executes the fleet simulation. Cells fan out across the engine
// worker pool; the report — including the full event log and its hash —
// is byte-identical for every worker count.
func Run(ctx context.Context, o Options) (*Report, error) {
	o, err := normalize(o)
	if err != nil {
		return nil, err
	}

	// Train the insensitivity model once; scoring is read-only, so every
	// cell shares it. The threshold targets the paper's ~30% label rate.
	var insens predict.Insensitivity
	threshold := 0.0
	if o.Predictions {
		ratio := cxl.PondLatencyRatio(o.Hosts * 2)
		ds := predict.BuildSensitivityDataset(ratio, o.PDM, 3, o.Seed)
		rf := predict.TrainForest(ds.X, ds.Insensitive, o.Seed)
		threshold = predict.ThresholdForLabelRate(predict.DatasetScores(rf, ds), 0.30)
		insens = rf
	}

	cells := make([]int, o.Cells)
	for i := range cells {
		cells[i] = i
	}
	results, err := engine.Map(ctx, cells, engine.Options{Workers: o.Workers, Seed: o.Seed},
		func(i int, _ int, rng *stats.Rand) (CellResult, error) {
			return runCell(i, o, insens, threshold, rng)
		})
	if err != nil {
		return nil, err
	}

	rep := &Report{Options: o, Cells: results}
	tp, _ := topo.Build(o.Topology, o.Hosts, o.EMCs, o.PodDegree)
	rep.TopologyDesc = tp.Describe()
	var log strings.Builder
	for _, c := range results {
		rep.Arrivals += c.Arrivals
		rep.Placed += c.Placed
		rep.Rejected += c.Rejected
		rep.Departed += c.Departed
		rep.BlastVMs += c.BlastVMs
		rep.Migrated += c.Migrated
		rep.QoSViolations += c.QoSViolations
		rep.Mitigations += c.Mitigations
		rep.Retrains += c.Retrains
		rep.Promotions += c.Promotions
		rep.Demotions += c.Demotions
		rep.AvgCoreUtil += c.AvgCoreUtil / float64(len(results))
		rep.AvgStrandedGB += c.AvgStrandedGB / float64(len(results))
		rep.PoolShare += c.PoolShare / float64(len(results))
		rep.PredErrMean += c.PredErrMean / float64(len(results))
		rep.PredErrFinal += c.PredErrFinal / float64(len(results))
		rep.InsensErrMean += c.InsensErrMean / float64(len(results))
		if c.PeakPoolUsedGB > rep.PeakPoolUsedGB {
			rep.PeakPoolUsedGB = c.PeakPoolUsedGB
		}
		rep.Lifecycle = append(rep.Lifecycle, c.Lifecycle...)
		if c.ModelDump != nil {
			rep.ModelDumps = append(rep.ModelDumps, c.ModelDump)
		}
		log.WriteString(c.Log)
	}
	rep.EventLog = log.String()
	sum := sha256.Sum256([]byte(rep.EventLog))
	rep.LogSHA256 = hex.EncodeToString(sum[:])
	return rep, nil
}

// Event kinds of the cell loop.
const (
	evArrive = iota
	evDepart
	evInject
	evRetrain
)

// event is one entry of the cell's time-ordered queue.
type event struct {
	at   float64
	seq  int // push order; breaks time ties deterministically
	kind int
	idx  int          // arrival or injection index
	vm   cluster.VMID // departing VM
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// runningVM tracks one placed VM during the loop.
type runningVM struct {
	vm   cluster.VMRequest
	host int
	dec  core.Decision
}

// runCell simulates one pool group over the full horizon. Everything is
// sequential and driven by the injected RNG, so the cell's log depends
// only on (options, cell index, seed).
func runCell(cell int, o Options, insens predict.Insensitivity, threshold float64, r *stats.Rand) (CellResult, error) {
	res := CellResult{Cell: cell}

	// Build the cell's deployment: topology, devices, manager, hosts,
	// control plane — the same wiring as pond.NewSystem.
	tp, err := topo.Build(o.Topology, o.Hosts, o.EMCs, o.PodDegree)
	if err != nil {
		return res, err
	}
	perEMC := o.PoolGB / o.EMCs
	devices := make([]*emc.Device, o.EMCs)
	for i := range devices {
		devices[i] = emc.NewDevice(fmt.Sprintf("c%d-emc%d", cell, i), perEMC, o.Hosts)
	}
	manager := pool.NewManagerTopo(devices, tp.Conn(), r.Fork(2))
	spec := cluster.ServerSpec{Sockets: 2, CoresPerSock: o.CoresPerSocket, MemGBPerSock: o.MemGBPerSocket}
	ratio := cxl.PondLatencyRatio(o.Hosts * 2)
	hosts := make([]*host.Host, o.Hosts)
	for i := range hosts {
		hosts[i] = host.New(emc.HostID(i), spec, host.Config{PoolLatencyRatio: ratio})
	}
	store := telemetry.NewStore()
	pcfg := core.DefaultConfig()
	pcfg.Ratio = ratio
	pcfg.PDM = o.PDM
	pcfg.TP = o.TP
	pcfg.InsensScoreThreshold = threshold
	var um predict.Untouched
	if o.Predictions {
		um = predict.HistoryQuantileUM{}
	}
	pipe := core.NewPipeline(pcfg, insens, um, store)
	sched := core.NewClusterScheduler(hosts, manager)

	// With predictions on, inference flows through the serving layer
	// (§5) and the mlops manager shadow-scores every decision — with
	// retraining disabled it runs monitor-only, so frozen and retrained
	// fleets report the same prediction-error metrics. Retrain ticks are
	// what the lifecycle adds on top.
	var mgr *mlops.Manager
	if o.Predictions {
		srv := predict.NewServer(insens, um)
		pipe.UseServer(srv)
		mcfg := mlops.DefaultConfig()
		mcfg.PromoteMargin = o.PromoteMargin
		if o.HoldoutWindow > 0 {
			mcfg.HoldoutWindow = o.HoldoutWindow
		}
		if o.MinTrainRows > 0 {
			mcfg.MinTrainRows = o.MinTrainRows
		}
		mcfg.Seed = stats.ShardSeed(o.Seed, cell)
		mgr = mlops.NewManager(mcfg, cell, srv, insens, threshold, um,
			ratio, o.PDM, pipe.SetInsensThreshold)
		pipe.SetShadowHook(mgr.ObserveDecision)
	}

	arrivals := generateArrivals(o, cell, r.Fork(3))
	res.Arrivals = len(arrivals)
	rPlace := r.Fork(4)

	// Seed the queue: arrivals in time order, then injections.
	var q eventHeap
	seq := 0
	push := func(ev event) {
		ev.seq = seq
		seq++
		heap.Push(&q, ev)
	}
	for i := range arrivals {
		push(event{at: arrivals[i].ArrivalSec, kind: evArrive, idx: i})
	}
	for i, inj := range o.Injections {
		push(event{at: inj.AtSec, kind: evInject, idx: i})
	}
	if mgr != nil && o.RetrainEverySec > 0 {
		for t := o.RetrainEverySec; t <= o.DurationSec; t += o.RetrainEverySec {
			push(event{at: t, kind: evRetrain})
		}
	}

	running := make(map[cluster.VMID]*runningVM)
	var log strings.Builder
	logf := func(at float64, format string, args ...any) {
		fmt.Fprintf(&log, "[c%d t=%.3f] ", cell, at)
		fmt.Fprintf(&log, format, args...)
		log.WriteByte('\n')
	}

	totalCores := float64(o.Hosts * spec.TotalCores())
	var placedGB, placedPoolGB float64
	lastT := 0.0
	var utilSec, strandedGBSec float64
	account := func(now float64) {
		dt := now - lastT
		if dt <= 0 {
			return
		}
		freeCores, stranded, poolUsed := 0, 0.0, 0.0
		for _, h := range hosts {
			freeCores += h.FreeCores()
			stranded += h.StrandedGB()
			poolUsed += h.OnlinePoolGB() - h.FreePoolGB()
		}
		utilSec += dt * (totalCores - float64(freeCores)) / totalCores
		strandedGBSec += dt * stranded
		if poolUsed > res.PeakPoolUsedGB {
			res.PeakPoolUsedGB = poolUsed
		}
		lastT = now
	}

	for q.Len() > 0 {
		ev := heap.Pop(&q).(event)
		if ev.at > o.DurationSec {
			break
		}
		account(ev.at)
		now := ev.at
		switch ev.kind {
		case evArrive:
			vm := arrivals[ev.idx]
			w := vm.GroundTruth.Workload

			// Admission through the Figure 13 control plane: history
			// counters when the customer has completed VMs before.
			var counters *pmu.Vector
			hist := store.CustomerHistory(vm.Customer, now+1, predict.HistoryWindowSec)
			if hist.Count > 0 {
				v := pmu.Sample(w, rPlace)
				counters = &v
			}
			d := pipe.Decide(vm, counters, predict.UMFeatures(vm, hist))
			pr, perr := sched.Place(vm, d, now)
			if perr != nil {
				res.Rejected++
				if mgr != nil {
					mgr.ForgetVM(vm.ID)
				}
				logf(now, "reject vm=%d type=%s cores=%d mem=%g", vm.ID, vm.Type.Name, vm.Type.Cores, vm.Type.MemoryGB)
				continue
			}
			if pr.FellBackToLocal {
				d = core.Decision{Kind: core.AllLocal, LocalGB: vm.Type.MemoryGB}
			}
			store.RecordSample(vm.ID, pmu.Sample(w, rPlace))
			res.Placed++
			placedGB += vm.Type.MemoryGB
			placedPoolGB += pr.Placement.PoolGB
			running[vm.ID] = &runningVM{vm: vm, host: pr.HostIndex, dec: d}
			push(event{at: now + vm.LifetimeSec, kind: evDepart, vm: vm.ID})
			logf(now, "arrive vm=%d cust=%d type=%s decision=%s host=%d local=%g pool=%g",
				vm.ID, vm.Customer, vm.Type.Name, d.Kind, pr.HostIndex, pr.Placement.LocalGB, pr.Placement.PoolGB)

		case evDepart:
			st, ok := running[ev.vm]
			if !ok {
				continue // lost to an earlier EMC failure
			}
			delete(running, ev.vm)
			p, rerr := sched.Release(st.host, ev.vm, now)
			if rerr != nil {
				return res, fmt.Errorf("cell %d: release vm %d: %w", cell, ev.vm, rerr)
			}
			store.RecordOutcome(p.VM.Customer, now, p.VM.GroundTruth.UntouchedFrac)
			if o.Predictions {
				// Departure is when the QoS monitor's verdict is final:
				// ground truth turns the decision into an outcome, and
				// flagged customers skip the all-pool path from now on.
				out := pipe.Evaluate(st.vm, st.dec)
				if out.ExceedsPDM {
					res.QoSViolations++
					logf(now, "qos-violation vm=%d decision=%s slowdown=%.3f", ev.vm, st.dec.Kind, out.SlowdownFrac)
				}
				if out.Mitigated {
					res.Mitigations++
				}
			}
			if mgr != nil {
				mc, okc := store.MeanCounters(ev.vm)
				mgr.ObserveOutcome(st.vm, mc, okc)
			}
			store.ForgetVM(ev.vm)
			res.Departed++
			logf(now, "depart vm=%d host=%d", ev.vm, st.host)

		case evInject:
			inj := o.Injections[ev.idx]
			switch inj.Kind {
			case InjectEMCFail:
				devices[inj.EMC].Fail()
				// Blast radius: every running VM with slices on the dead
				// device, released in id order.
				var blast []cluster.VMID
				for id, st := range running {
					for _, ref := range hostSlices(hosts[st.host], id) {
						if ref.EMC == inj.EMC {
							blast = append(blast, id)
							break
						}
					}
				}
				sort.Slice(blast, func(i, j int) bool { return blast[i] < blast[j] })
				lostGB := 0.0
				for _, id := range blast {
					st := running[id]
					delete(running, id)
					p, rerr := hosts[st.host].ReleaseVM(id)
					if rerr != nil {
						return res, fmt.Errorf("cell %d: blast release vm %d: %w", cell, id, rerr)
					}
					lostGB += p.VM.Type.MemoryGB
					// Slices on the failed device are gone; survivors on
					// other EMCs drain back through the manager.
					var alive []pool.SliceRef
					for _, ref := range p.Slices {
						if ref.EMC != inj.EMC {
							alive = append(alive, ref)
						}
					}
					if err := hosts[st.host].RemovePoolCapacity(float64(len(p.Slices))); err != nil {
						return res, fmt.Errorf("cell %d: blast offline vm %d: %w", cell, id, err)
					}
					if len(alive) > 0 {
						manager.ReleaseCapacity(emc.HostID(st.host), alive, now)
					}
					store.ForgetVM(id)
					if mgr != nil {
						mgr.ForgetVM(id)
					}
				}
				res.BlastVMs += len(blast)
				logf(now, "inject emc-fail emc=%d blast-hosts=%d blast-vms=%d lost-gb=%g",
					inj.EMC, tp.BlastRadiusHosts(inj.EMC), len(blast), lostGB)

			case InjectHostDrain:
				migrations, remaining, derr := sched.DrainHost(inj.Host, now)
				if derr != nil {
					return res, derr
				}
				for _, m := range migrations {
					if st, ok := running[m.VM]; ok {
						st.host = m.Target
					}
				}
				res.Migrated += len(migrations)
				logf(now, "inject host-drain host=%d migrated=%d remaining=%d", inj.Host, len(migrations), len(remaining))

			case InjectSurge:
				logf(now, "inject surge x=%g dur=%g", inj.Factor, inj.DurSec)

			case InjectDrift:
				// The population shift itself happened in the arrival
				// stream; this marks the moment in the event log.
				logf(now, "inject drift mag=%g", inj.Mag)
			}

		case evRetrain:
			for _, le := range mgr.Tick(now) {
				logf(now, "%s", le)
			}
		}
	}
	account(o.DurationSec)

	if o.DurationSec > 0 {
		res.AvgCoreUtil = utilSec / o.DurationSec
		res.AvgStrandedGB = strandedGBSec / o.DurationSec
	}
	if placedGB > 0 {
		res.PoolShare = placedPoolGB / placedGB
	}
	if mgr != nil {
		q := mgr.Quality()
		res.Retrains, res.Promotions, res.Demotions = q.Retrains, q.Promotions, q.Demotions
		res.UMChampVer, res.InsensChampVer = q.UMChampVer, q.InsensChampVer
		res.PredErrMean, res.PredErrFinal = q.UMLossMean, q.UMLossFinal
		res.InsensErrMean = q.InsensLossMean
		res.Lifecycle = mgr.Events()
		if o.CaptureModels {
			dump, derr := mgr.SnapshotJSON()
			if derr != nil {
				return res, fmt.Errorf("cell %d: model snapshot: %w", cell, derr)
			}
			res.ModelDump = dump
		}
		logf(o.DurationSec, "mlops summary retrains=%d promotions=%d demotions=%d um-ver=%d insens-ver=%d pred-err=%.4f pred-err-final=%.4f insens-err=%.4f",
			q.Retrains, q.Promotions, q.Demotions, q.UMChampVer, q.InsensChampVer,
			q.UMLossMean, q.UMLossFinal, q.InsensLossMean)
	}
	logf(o.DurationSec, "summary arrivals=%d placed=%d rejected=%d departed=%d blast-vms=%d migrated=%d qos=%d util=%.3f stranded=%.3f pool-share=%.4f",
		res.Arrivals, res.Placed, res.Rejected, res.Departed, res.BlastVMs, res.Migrated,
		res.QoSViolations, res.AvgCoreUtil, res.AvgStrandedGB, res.PoolShare)
	res.Log = log.String()
	return res, nil
}

// hostSlices returns a VM's pool slices on its host (nil when unknown).
func hostSlices(h *host.Host, id cluster.VMID) []pool.SliceRef {
	if p, ok := h.Placement(id); ok {
		return p.Slices
	}
	return nil
}
