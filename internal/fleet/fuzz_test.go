package fleet

import (
	"math"
	"strings"
	"testing"
)

// Fuzz targets for the user-facing spec parsers. The checked-in seeds
// (f.Add plus testdata/fuzz corpora) run on every ordinary `go test`;
// the CI fuzz job additionally explores for a bounded time. The
// contract under fuzzing: malformed specs must error — never panic —
// and accepted specs must land inside their documented domains (no
// silent clamping) and round-trip through String().

func FuzzParseInjections(f *testing.F) {
	for _, seed := range []string{
		"emc-fail@t=500",
		"emc-fail@t=500:emc=1",
		"host-drain@t=800:host=2",
		"surge@t=300:dur=200:x=3",
		"drift@t=2000:mag=0.6",
		"drift@t=2000:cells=2-3:mag=0.6",
		"drift@t=100:cells=1",
		"emc-fail@t=500, host-drain@t=800:host=2, surge@t=300:dur=200:x=3",
		"",
		"meteor@t=1",
		"emc-fail",
		"emc-fail@t=-1",
		"emc-fail@t=NaN",
		"emc-fail@t=Inf",
		"surge@t=1:x=0.5",
		"drift@t=1:mag=2",
		"drift@t=1:cells=3-1",
		"drift@t=1:cells=1-2-3",
		"drift@t=1:cells=-1",
		"emc-fail@t=1:cells=0-1",
		"emc-fail@t=1:emc=99999999999999999999",
		"drift@t=1e308:mag=0.5",
		"surge@t=0:dur=0:x=1.0000001",
		"@t=1",
		"emc-fail@",
		"emc-fail@t=1:",
		"emc-fail@t=1:=2",
		"resize@t=500:emc=1:slices=-8",
		"resize@t=500:emc=0:slices=+16",
		"resize@t=500:emc=0:slices=16",
		"resize@t=1",
		"resize@t=1:slices=0",
		"resize@t=1:slices=1.5",
		"resize@t=1:emc=-1:slices=4",
		"resize@t=1:dur=5:slices=4",
		"resize@t=1:mag=0.5",
		"resize@t=1:host=2:slices=4",
		"resize@t=1:cells=0-1:slices=4",
		"resize@t=1:slices=99999999999999999999",
		"resize@t=1:slices=-9223372036854775808",
		"resize@t=1:emc=0:slices=2000000",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		ins, err := ParseInjections(spec)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		for _, in := range ins {
			// Accepted values must be inside the documented domains —
			// rejecting is fine, silently clamping is not.
			if in.AtSec < 0 || math.IsNaN(in.AtSec) || math.IsInf(in.AtSec, 0) {
				t.Fatalf("accepted injection %q with t=%v", spec, in.AtSec)
			}
			switch in.Kind {
			case InjectEMCFail, InjectHostDrain, InjectSurge, InjectDrift, InjectResize:
			default:
				t.Fatalf("accepted unknown kind %q from %q", in.Kind, spec)
			}
			if in.EMC < 0 || in.Host < 0 {
				t.Fatalf("accepted negative target from %q: %+v", spec, in)
			}
			if in.Kind == InjectSurge && (in.Factor <= 1 || in.DurSec < 0) {
				t.Fatalf("accepted out-of-domain surge from %q: %+v", spec, in)
			}
			if in.Kind == InjectDrift {
				if in.Mag <= 0 || in.Mag > 1 {
					t.Fatalf("accepted out-of-domain drift magnitude from %q: %+v", spec, in)
				}
				if in.CellHi >= 0 && (in.CellLo < 0 || in.CellLo > in.CellHi) {
					t.Fatalf("accepted empty cell range from %q: %+v", spec, in)
				}
			}
			if in.Kind == InjectResize && (in.Slices == 0 || in.Slices < -MaxResizeSlices || in.Slices > MaxResizeSlices) {
				t.Fatalf("accepted out-of-domain resize from %q: %+v", spec, in)
			}
			// String() must render a spec that parses back to the same
			// injection.
			again, rerr := ParseInjections(in.String())
			if rerr != nil {
				t.Fatalf("rendered spec %q does not re-parse: %v", in.String(), rerr)
			}
			if len(again) != 1 || again[0] != in {
				t.Fatalf("injection %+v did not round-trip via %q: %+v", in, in.String(), again)
			}
		}
	})
}

func FuzzParseArrival(f *testing.F) {
	for _, seed := range []string{
		"", "poisson", "poisson:rate=0.05", "poisson:rate=0.05:life=600",
		"trace", "trace:rate=1", "uniform", "poisson:rate=-1", "poisson:rate=0",
		"poisson:burst=3", "poisson:rate=", "poisson:rate", "poisson:rate=Inf",
		"poisson:rate=NaN", "poisson::life=1", "poisson:rate=1e308:life=1e-308",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseArrival(spec)
		if err != nil {
			return
		}
		if m.Kind != ArrivalPoisson && m.Kind != ArrivalTrace {
			t.Fatalf("accepted unknown arrival kind %q from %q", m.Kind, spec)
		}
		if m.RatePerSec <= 0 || m.MeanLifetimeSec <= 0 ||
			math.IsInf(m.RatePerSec, 0) || math.IsNaN(m.RatePerSec) ||
			math.IsInf(m.MeanLifetimeSec, 0) || math.IsNaN(m.MeanLifetimeSec) {
			t.Fatalf("accepted out-of-domain arrival from %q: %+v", spec, m)
		}
		// Round trip.
		again, rerr := ParseArrival(m.String())
		if rerr != nil || again != m {
			t.Fatalf("arrival %+v did not round-trip via %q: %+v (%v)", m, m.String(), again, rerr)
		}
	})
}

func FuzzParseTopologies(f *testing.F) {
	for _, seed := range []string{
		"flat", "flat,sharded,sparse", "flat, sharded", "", ",", "flat,",
		",flat", "flat,,sparse", "moebius", "FLAT", "flat sharded", "flat;sharded",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, list string) {
		names, err := ParseTopologies(list)
		if err != nil {
			return
		}
		if len(names) == 0 {
			t.Fatalf("accepted %q as an empty topology list", list)
		}
		for _, n := range names {
			if n != "flat" && n != "sharded" && n != "sparse" {
				t.Fatalf("accepted unknown topology %q from %q", n, list)
			}
			if strings.TrimSpace(n) != n || n == "" {
				t.Fatalf("returned unnormalized topology %q from %q", n, list)
			}
		}
	})
}
