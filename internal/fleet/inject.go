package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pond/internal/topo"
)

// Injection kinds.
const (
	// InjectEMCFail fails one EMC at t: its slices are gone, every VM
	// with memory on it is lost (the §4.2 blast radius), and the device
	// serves no further capacity.
	InjectEMCFail = "emc-fail"
	// InjectHostDrain puts one host into maintenance drain at t: no new
	// placements, resident VMs live-migrate to all-local placements where
	// capacity allows.
	InjectHostDrain = "host-drain"
	// InjectSurge multiplies the arrival rate by Factor over [t, t+dur].
	InjectSurge = "surge"
	// InjectDrift shifts the tenant population at t: customers'
	// untouched-memory behaviour moves toward its complement and a Mag
	// fraction of them switch workload sets, so models trained on
	// pre-drift telemetry go stale — the scenario online retraining is
	// for.
	InjectDrift = "drift"
	// InjectResize grows (slices > 0) or shrinks (slices < 0) one EMC's
	// active capacity mid-run through the Pool Manager's elastic APIs —
	// the manual counterpart of the capacity controller's planned
	// resizes. A shrink retires only free slices, so the applied delta
	// can fall short of the request.
	InjectResize = "resize"
)

// MaxResizeSlices bounds a single resize injection's magnitude (1 PB of
// 1 GB slices): larger requests are deployment-spec typos, and an
// unbounded grow would materialize the slice table for whatever number
// parses — rejected at parse time, per the parsers' no-runtime-surprise
// discipline.
const MaxResizeSlices = 1 << 20

// Injection is one scheduled scenario event.
type Injection struct {
	Kind  string
	AtSec float64

	// EMC is the target device for emc-fail (default 0).
	EMC int
	// Host is the target host for host-drain (default 0).
	Host int
	// DurSec and Factor shape a surge (defaults 200 s, 2x).
	DurSec float64
	Factor float64
	// Mag is the drift magnitude in (0, 1] (default 0.5): how far each
	// customer's untouched-memory mean moves and the probability that a
	// customer's workload set is replaced.
	Mag float64
	// CellLo..CellHi is the inclusive cell range a drift hits
	// (regionally-correlated workload shifts; parsed from cells=a-b).
	// CellHi < 0 — the parser default — means every cell. A hand-built
	// Injection must set CellHi to -1 (or any negative) for fleet-wide
	// drift; the zero value targets cell 0 alone.
	CellLo, CellHi int
	// Slices is the signed capacity delta of a resize (non-zero; parsed
	// from slices=±N).
	Slices int
}

// AppliesTo reports whether a drift injection hits the given cell.
// Non-drift injections hit every cell.
func (in Injection) AppliesTo(cell int) bool {
	if in.Kind != InjectDrift || in.CellHi < 0 {
		return true
	}
	return cell >= in.CellLo && cell <= in.CellHi
}

// String renders the injection as a parseable spec.
func (in Injection) String() string {
	switch in.Kind {
	case InjectEMCFail:
		return fmt.Sprintf("%s@t=%g:emc=%d", in.Kind, in.AtSec, in.EMC)
	case InjectHostDrain:
		return fmt.Sprintf("%s@t=%g:host=%d", in.Kind, in.AtSec, in.Host)
	case InjectSurge:
		return fmt.Sprintf("%s@t=%g:dur=%g:x=%g", in.Kind, in.AtSec, in.DurSec, in.Factor)
	case InjectDrift:
		if in.CellHi >= 0 {
			return fmt.Sprintf("%s@t=%g:cells=%d-%d:mag=%g", in.Kind, in.AtSec, in.CellLo, in.CellHi, in.Mag)
		}
		return fmt.Sprintf("%s@t=%g:mag=%g", in.Kind, in.AtSec, in.Mag)
	case InjectResize:
		return fmt.Sprintf("%s@t=%g:emc=%d:slices=%+d", in.Kind, in.AtSec, in.EMC, in.Slices)
	default:
		return in.Kind
	}
}

// ParseInjections parses a comma-separated injection list:
//
//	emc-fail@t=500
//	emc-fail@t=500:emc=1
//	host-drain@t=800:host=2
//	surge@t=300:dur=200:x=3
//	drift@t=2000:mag=0.6
//	drift@t=2000:cells=2-3:mag=0.6
//	resize@t=500:emc=1:slices=-8
func ParseInjections(s string) ([]Injection, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Injection
	for _, spec := range strings.Split(s, ",") {
		in, err := parseInjection(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// ParseInjection parses a single injection spec — one element of the
// comma-separated ParseInjections grammar. It is the entry point for
// callers that handle injections one at a time, like pondserve's
// live-injection bodies; ParseInjections loops over it.
func ParseInjection(spec string) (Injection, error) {
	return parseInjection(strings.TrimSpace(spec))
}

func parseInjection(spec string) (Injection, error) {
	kind, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return Injection{}, fmt.Errorf("fleet: injection %q needs kind@t=SEC", spec)
	}
	in := Injection{Kind: kind, AtSec: -1, DurSec: 200, Factor: 2, Mag: 0.5, CellLo: 0, CellHi: -1}
	// Parameters valid per kind; a parameter on the wrong kind would
	// parse, render nowhere in String(), and silently do nothing — so it
	// is rejected instead.
	allowed, ok := map[string]string{
		InjectEMCFail:   "t,emc",
		InjectHostDrain: "t,host",
		InjectSurge:     "t,dur,x",
		InjectDrift:     "t,mag,cells",
		InjectResize:    "t,emc,slices",
	}[kind]
	if !ok {
		return in, fmt.Errorf("fleet: unknown injection kind %q (want %s, %s, %s, %s, %s)",
			kind, InjectEMCFail, InjectHostDrain, InjectSurge, InjectDrift, InjectResize)
	}
	for _, p := range strings.Split(rest, ":") {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return in, fmt.Errorf("fleet: injection parameter %q is not key=value", p)
		}
		valid := false
		for _, a := range strings.Split(allowed, ",") {
			if k == a {
				valid = true
				break
			}
		}
		if !valid {
			return in, fmt.Errorf("fleet: %s takes parameters %s, not %q", kind, allowed, k)
		}
		switch k {
		case "t", "dur", "x", "mag":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
				return in, fmt.Errorf("fleet: injection parameter %s=%q must be a non-negative number", k, v)
			}
			switch k {
			case "t":
				in.AtSec = f
			case "dur":
				in.DurSec = f
			case "x":
				in.Factor = f
			case "mag":
				in.Mag = f
			}
		case "emc", "host":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return in, fmt.Errorf("fleet: injection parameter %s=%q must be a non-negative integer", k, v)
			}
			if k == "emc" {
				in.EMC = n
			} else {
				in.Host = n
			}
		case "slices":
			n, err := strconv.Atoi(v)
			if err != nil || n == 0 || n < -MaxResizeSlices || n > MaxResizeSlices {
				return in, fmt.Errorf("fleet: injection parameter slices=%q must be a non-zero integer in [-%d, %d]",
					v, MaxResizeSlices, MaxResizeSlices)
			}
			in.Slices = n
		case "cells":
			lo, hi, err := parseCellRange(v)
			if err != nil {
				return in, err
			}
			in.CellLo, in.CellHi = lo, hi
		default:
			return in, fmt.Errorf("fleet: unknown injection parameter %q", k)
		}
	}
	if in.AtSec < 0 {
		return in, fmt.Errorf("fleet: injection %q is missing t=SEC", spec)
	}
	if in.Kind == InjectSurge && in.Factor <= 1 {
		return in, fmt.Errorf("fleet: surge factor x=%g must exceed 1", in.Factor)
	}
	if in.Kind == InjectDrift && (in.Mag <= 0 || in.Mag > 1) {
		return in, fmt.Errorf("fleet: drift magnitude mag=%g must be in (0, 1]", in.Mag)
	}
	if in.Kind == InjectResize && in.Slices == 0 {
		return in, fmt.Errorf("fleet: resize injection %q is missing slices=±N", spec)
	}
	return in, nil
}

// parseCellRange parses "a-b" (inclusive) or a single "a" into a cell
// range. The upper bound against the fleet's cell count is checked by
// Options normalization, which knows it.
func parseCellRange(v string) (lo, hi int, err error) {
	loS, hiS, dashed := strings.Cut(v, "-")
	if !dashed {
		hiS = loS
	}
	lo, err = strconv.Atoi(loS)
	if err != nil || lo < 0 {
		return 0, 0, fmt.Errorf("fleet: cells=%q must be a-b or a with non-negative integers", v)
	}
	hi, err = strconv.Atoi(hiS)
	if err != nil || hi < 0 {
		return 0, 0, fmt.Errorf("fleet: cells=%q must be a-b or a with non-negative integers", v)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("fleet: cells=%q is an empty range", v)
	}
	return lo, hi, nil
}

// ParseTopologies parses a comma-separated topology list as the
// pondfleet -topology flag takes it. Every entry must name a known
// topology; empty entries (a stray comma) are rejected rather than
// silently running the default topology an extra time.
func ParseTopologies(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("fleet: empty topology list")
	}
	known := topo.Names()
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		ok := false
		for _, k := range known {
			if name == k {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("fleet: unknown topology %q (want %s)", name, strings.Join(known, ", "))
		}
		out = append(out, name)
	}
	return out, nil
}
