package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Injection kinds.
const (
	// InjectEMCFail fails one EMC at t: its slices are gone, every VM
	// with memory on it is lost (the §4.2 blast radius), and the device
	// serves no further capacity.
	InjectEMCFail = "emc-fail"
	// InjectHostDrain puts one host into maintenance drain at t: no new
	// placements, resident VMs live-migrate to all-local placements where
	// capacity allows.
	InjectHostDrain = "host-drain"
	// InjectSurge multiplies the arrival rate by Factor over [t, t+dur].
	InjectSurge = "surge"
	// InjectDrift shifts the tenant population at t: customers'
	// untouched-memory behaviour moves toward its complement and a Mag
	// fraction of them switch workload sets, so models trained on
	// pre-drift telemetry go stale — the scenario online retraining is
	// for.
	InjectDrift = "drift"
)

// Injection is one scheduled scenario event.
type Injection struct {
	Kind  string
	AtSec float64

	// EMC is the target device for emc-fail (default 0).
	EMC int
	// Host is the target host for host-drain (default 0).
	Host int
	// DurSec and Factor shape a surge (defaults 200 s, 2x).
	DurSec float64
	Factor float64
	// Mag is the drift magnitude in (0, 1] (default 0.5): how far each
	// customer's untouched-memory mean moves and the probability that a
	// customer's workload set is replaced.
	Mag float64
}

// String renders the injection as a parseable spec.
func (in Injection) String() string {
	switch in.Kind {
	case InjectEMCFail:
		return fmt.Sprintf("%s@t=%g:emc=%d", in.Kind, in.AtSec, in.EMC)
	case InjectHostDrain:
		return fmt.Sprintf("%s@t=%g:host=%d", in.Kind, in.AtSec, in.Host)
	case InjectSurge:
		return fmt.Sprintf("%s@t=%g:dur=%g:x=%g", in.Kind, in.AtSec, in.DurSec, in.Factor)
	case InjectDrift:
		return fmt.Sprintf("%s@t=%g:mag=%g", in.Kind, in.AtSec, in.Mag)
	default:
		return in.Kind
	}
}

// ParseInjections parses a comma-separated injection list:
//
//	emc-fail@t=500
//	emc-fail@t=500:emc=1
//	host-drain@t=800:host=2
//	surge@t=300:dur=200:x=3
//	drift@t=2000:mag=0.6
func ParseInjections(s string) ([]Injection, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Injection
	for _, spec := range strings.Split(s, ",") {
		in, err := parseInjection(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

func parseInjection(spec string) (Injection, error) {
	kind, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return Injection{}, fmt.Errorf("fleet: injection %q needs kind@t=SEC", spec)
	}
	in := Injection{Kind: kind, AtSec: -1, DurSec: 200, Factor: 2, Mag: 0.5}
	switch kind {
	case InjectEMCFail, InjectHostDrain, InjectSurge, InjectDrift:
	default:
		return in, fmt.Errorf("fleet: unknown injection kind %q (want %s, %s, %s, %s)",
			kind, InjectEMCFail, InjectHostDrain, InjectSurge, InjectDrift)
	}
	for _, p := range strings.Split(rest, ":") {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return in, fmt.Errorf("fleet: injection parameter %q is not key=value", p)
		}
		switch k {
		case "t", "dur", "x", "mag":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
				return in, fmt.Errorf("fleet: injection parameter %s=%q must be a non-negative number", k, v)
			}
			switch k {
			case "t":
				in.AtSec = f
			case "dur":
				in.DurSec = f
			case "x":
				in.Factor = f
			case "mag":
				in.Mag = f
			}
		case "emc", "host":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return in, fmt.Errorf("fleet: injection parameter %s=%q must be a non-negative integer", k, v)
			}
			if k == "emc" {
				in.EMC = n
			} else {
				in.Host = n
			}
		default:
			return in, fmt.Errorf("fleet: unknown injection parameter %q", k)
		}
	}
	if in.AtSec < 0 {
		return in, fmt.Errorf("fleet: injection %q is missing t=SEC", spec)
	}
	if in.Kind == InjectSurge && in.Factor <= 1 {
		return in, fmt.Errorf("fleet: surge factor x=%g must exceed 1", in.Factor)
	}
	if in.Kind == InjectDrift && (in.Mag <= 0 || in.Mag > 1) {
		return in, fmt.Errorf("fleet: drift magnitude mag=%g must be in (0, 1]", in.Mag)
	}
	return in, nil
}
