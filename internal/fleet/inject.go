package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Injection kinds.
const (
	// InjectEMCFail fails one EMC at t: its slices are gone, every VM
	// with memory on it is lost (the §4.2 blast radius), and the device
	// serves no further capacity.
	InjectEMCFail = "emc-fail"
	// InjectHostDrain puts one host into maintenance drain at t: no new
	// placements, resident VMs live-migrate to all-local placements where
	// capacity allows.
	InjectHostDrain = "host-drain"
	// InjectSurge multiplies the arrival rate by Factor over [t, t+dur].
	InjectSurge = "surge"
)

// Injection is one scheduled scenario event.
type Injection struct {
	Kind  string
	AtSec float64

	// EMC is the target device for emc-fail (default 0).
	EMC int
	// Host is the target host for host-drain (default 0).
	Host int
	// DurSec and Factor shape a surge (defaults 200 s, 2x).
	DurSec float64
	Factor float64
}

// String renders the injection as a parseable spec.
func (in Injection) String() string {
	switch in.Kind {
	case InjectEMCFail:
		return fmt.Sprintf("%s@t=%g:emc=%d", in.Kind, in.AtSec, in.EMC)
	case InjectHostDrain:
		return fmt.Sprintf("%s@t=%g:host=%d", in.Kind, in.AtSec, in.Host)
	case InjectSurge:
		return fmt.Sprintf("%s@t=%g:dur=%g:x=%g", in.Kind, in.AtSec, in.DurSec, in.Factor)
	default:
		return in.Kind
	}
}

// ParseInjections parses a comma-separated injection list:
//
//	emc-fail@t=500
//	emc-fail@t=500:emc=1
//	host-drain@t=800:host=2
//	surge@t=300:dur=200:x=3
func ParseInjections(s string) ([]Injection, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Injection
	for _, spec := range strings.Split(s, ",") {
		in, err := parseInjection(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

func parseInjection(spec string) (Injection, error) {
	kind, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return Injection{}, fmt.Errorf("fleet: injection %q needs kind@t=SEC", spec)
	}
	in := Injection{Kind: kind, AtSec: -1, DurSec: 200, Factor: 2}
	switch kind {
	case InjectEMCFail, InjectHostDrain, InjectSurge:
	default:
		return in, fmt.Errorf("fleet: unknown injection kind %q (want %s, %s, %s)",
			kind, InjectEMCFail, InjectHostDrain, InjectSurge)
	}
	for _, p := range strings.Split(rest, ":") {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return in, fmt.Errorf("fleet: injection parameter %q is not key=value", p)
		}
		switch k {
		case "t", "dur", "x":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
				return in, fmt.Errorf("fleet: injection parameter %s=%q must be a non-negative number", k, v)
			}
			switch k {
			case "t":
				in.AtSec = f
			case "dur":
				in.DurSec = f
			case "x":
				in.Factor = f
			}
		case "emc", "host":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return in, fmt.Errorf("fleet: injection parameter %s=%q must be a non-negative integer", k, v)
			}
			if k == "emc" {
				in.EMC = n
			} else {
				in.Host = n
			}
		default:
			return in, fmt.Errorf("fleet: unknown injection parameter %q", k)
		}
	}
	if in.AtSec < 0 {
		return in, fmt.Errorf("fleet: injection %q is missing t=SEC", spec)
	}
	if in.Kind == InjectSurge && in.Factor <= 1 {
		return in, fmt.Errorf("fleet: surge factor x=%g must exceed 1", in.Factor)
	}
	return in, nil
}
