package fleet

import (
	"context"
	"strings"
	"testing"
)

// runnerLog drives o through a Runner: advance to each pause point in
// turn, add the paired injection live, then finish. It returns the
// report and the event log reassembled from the drained stream — which
// must equal the report's own log byte for byte.
func runnerLog(t *testing.T, o Options, pauses []float64, live []Injection) *Report {
	t.Helper()
	ctx := context.Background()
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	var events []LogEvent
	for i, at := range pauses {
		if err := r.Advance(ctx, at); err != nil {
			t.Fatalf("advance to %g: %v", at, err)
		}
		events = append(events, r.DrainEvents()...)
		if i < len(live) {
			if err := r.AddInjection(live[i]); err != nil {
				t.Fatalf("live inject %s at t=%g: %v", live[i], at, err)
			}
		}
	}
	rep, err := r.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, r.DrainEvents()...)

	// Reassemble the cell-major log from the tagged stream the way a
	// pondserve client would: group lines by cell, cells ascending, the
	// fleet stream (-1) last.
	streams := make(map[int][]string)
	for _, e := range events {
		streams[e.Cell] = append(streams[e.Cell], e.Line)
	}
	var b strings.Builder
	for c := 0; c < rep.Options.Cells; c++ {
		for _, line := range streams[c] {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	for _, line := range streams[-1] {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if b.String() != rep.EventLog {
		t.Fatalf("drained stream does not reassemble into the report log:\nstream %d bytes, report %d bytes", b.Len(), len(rep.EventLog))
	}
	return rep
}

// batchEquivalent runs the one-shot Run with the live injections
// appended to the scheduled list — the batch configuration the Runner
// contract promises to match byte for byte.
func batchEquivalent(t *testing.T, o Options, live []Injection) *Report {
	t.Helper()
	o.Injections = append(append([]Injection{}, o.Injections...), live...)
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunnerLiveInjectionMatchesBatch is the determinism bridge at the
// fleet layer: every injection kind, added live at a mid-run safe
// point, must yield the event log of the equivalent batch run — at
// worker counts 1 and 4.
func TestRunnerLiveInjectionMatchesBatch(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*Options)
		pause float64
		spec  string
	}{
		{"emc-fail", nil, 150, "emc-fail@t=250:emc=1"},
		{"host-drain", nil, 100, "host-drain@t=300:host=2"},
		{"resize", nil, 200, "resize@t=260:emc=0:slices=-4"},
		// Drift and surge are baked into the pre-generated arrival
		// stream: the live path must regenerate it from the stored seed.
		{"drift", nil, 120, "drift@t=220:mag=0.7"},
		{"surge", nil, 90, "surge@t=150:dur=120:x=3"},
		{"drift-regional", nil, 120, "drift@t=220:cells=1-2:mag=0.6"},
		{"drift-trace", func(o *Options) {
			o.Arrival = ArrivalModel{Kind: ArrivalTrace}
		}, 120, "drift@t=220:mag=0.7"},
		{"surge-elastic", func(o *Options) {
			o.ElasticPool = true
			o.PlanEverySec = 100
		}, 130, "surge@t=170:dur=100:x=3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := testOptions()
			if tc.tweak != nil {
				tc.tweak(&o)
			}
			in, err := ParseInjection(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			var want *Report
			for _, workers := range []int{1, 4} {
				o.Workers = workers
				got := runnerLog(t, o, []float64{tc.pause}, []Injection{in})
				batch := batchEquivalent(t, o, []Injection{in})
				if got.EventLog != batch.EventLog {
					t.Fatalf("workers=%d: live log differs from batch log\nlive:  %d bytes sha=%s\nbatch: %d bytes sha=%s",
						workers, len(got.EventLog), got.LogSHA256, len(batch.EventLog), batch.LogSHA256)
				}
				if want == nil {
					want = got
				} else if got.LogSHA256 != want.LogSHA256 {
					t.Fatalf("live log differs between worker counts")
				}
			}
			if !strings.Contains(want.EventLog, "inject "+in.Kind) {
				t.Fatalf("log does not show the live injection %s", in)
			}
		})
	}
}

// TestRunnerLiveInjectionOnScheduled stacks a live injection on top of
// a batch-scheduled one: indices shift by the scheduled prefix, and the
// equivalent batch run appends the live injection after it.
func TestRunnerLiveInjectionOnScheduled(t *testing.T) {
	o := testOptions()
	var err error
	o.Injections, err = ParseInjections("surge@t=50:dur=80:x=2.5,emc-fail@t=350")
	if err != nil {
		t.Fatal(err)
	}
	live, err := ParseInjection("drift@t=200:mag=0.5")
	if err != nil {
		t.Fatal(err)
	}
	got := runnerLog(t, o, []float64{140}, []Injection{live})
	batch := batchEquivalent(t, o, []Injection{live})
	if got.EventLog != batch.EventLog {
		t.Fatalf("live-on-scheduled log differs from batch (live sha=%s batch sha=%s)", got.LogSHA256, batch.LogSHA256)
	}
}

// TestRunnerSlicingChangesNoBytes re-runs a plain config under many
// pause points and no injections: slicing the horizon must be
// invisible, including for barriered configurations.
func TestRunnerSlicingChangesNoBytes(t *testing.T) {
	for _, elastic := range []bool{false, true} {
		o := testOptions()
		if elastic {
			o.ElasticPool = true
			o.PlanEverySec = 70
		}
		batch, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		got := runnerLog(t, o, []float64{33, 90, 91, 250, 399}, nil)
		if got.EventLog != batch.EventLog {
			t.Fatalf("elastic=%t: sliced runner log differs from batch", elastic)
		}
	}
}

// TestRunnerAddInjectionValidation exercises the live-injection rules:
// no firing in the past, no injections after completion, and the shared
// ValidateInjection checks.
func TestRunnerAddInjectionValidation(t *testing.T) {
	ctx := context.Background()
	o := testOptions()
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(ctx, 200); err != nil {
		t.Fatal(err)
	}
	past := Injection{Kind: InjectEMCFail, AtSec: 100}
	if err := r.AddInjection(past); err == nil || !strings.Contains(err.Error(), "before the current time") {
		t.Fatalf("past injection accepted: %v", err)
	}
	bad := Injection{Kind: InjectEMCFail, AtSec: 300, EMC: 99}
	if err := r.AddInjection(bad); err == nil || !strings.Contains(err.Error(), "targets EMC") {
		t.Fatalf("out-of-range EMC accepted: %v", err)
	}
	beyond := Injection{Kind: InjectEMCFail, AtSec: o.DurationSec + 1}
	if err := r.AddInjection(beyond); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("beyond-horizon injection accepted: %v", err)
	}
	if _, err := r.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("finished runner not done")
	}
	after := Injection{Kind: InjectEMCFail, AtSec: 395}
	if err := r.AddInjection(after); err == nil || !strings.Contains(err.Error(), "completed") {
		t.Fatalf("post-completion injection accepted: %v", err)
	}
}

// TestRunnerProgress checks the safe-point snapshot advances with the
// clock and the counters move.
func TestRunnerProgress(t *testing.T) {
	ctx := context.Background()
	o := testOptions()
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Progress()
	if p.NowSec != 0 || p.Done || p.Arrivals == 0 {
		t.Fatalf("fresh runner progress: %+v", p)
	}
	if err := r.Advance(ctx, 200); err != nil {
		t.Fatal(err)
	}
	mid := r.Progress()
	if mid.NowSec != 200 || mid.Placed == 0 {
		t.Fatalf("mid-run progress: %+v", mid)
	}
	if _, err := r.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	end := r.Progress()
	if !end.Done || end.NowSec != o.DurationSec {
		t.Fatalf("end progress: %+v", end)
	}
	if end.Departed <= mid.Departed {
		t.Fatalf("departures did not advance: mid=%d end=%d", mid.Departed, end.Departed)
	}
}
