package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// snapshotCases are the configurations the round-trip tests cover: the
// plain cell-scoped path, the barriered fleet-scope release train, and
// the elastic pool — every subsystem a snapshot must carry.
func snapshotCases() map[string]Options {
	plain := testOptions()
	plain.Predictions = true
	plain.RetrainEverySec = 100
	plain.MinTrainRows = 16
	plain.Injections = mustParseInjections("emc-fail@t=200")

	fleetScope := testOptions()
	fleetScope.Predictions = true
	fleetScope.Arrival.RatePerSec = 0.2
	fleetScope.RetrainEverySec = 100
	fleetScope.MinTrainRows = 16
	fleetScope.ModelScope = ScopeFleet
	fleetScope.Injections = mustParseInjections("surge@t=100:dur=100:x=3")

	elastic := testOptions()
	elastic.Predictions = true
	elastic.Arrival.RatePerSec = 0.2
	elastic.ElasticPool = true
	elastic.PlanEverySec = 100
	elastic.Injections = mustParseInjections("resize@t=150:emc=1:slices=-8,drift@t=250:mag=0.5")

	return map[string]Options{
		"cell-scope":  plain,
		"fleet-scope": fleetScope,
		"elastic":     elastic,
	}
}

// TestSnapshotRestoreMatchesUninterrupted is the tentpole's correctness
// bar: snapshot at a mid-run safe point, restore in a fresh Runner
// (through the JSON wire form, as a fresh process would), and the
// remaining event log plus the final report hash must be byte-identical
// to the uninterrupted batch run — for worker counts 1 and 4.
func TestSnapshotRestoreMatchesUninterrupted(t *testing.T) {
	for name, o := range snapshotCases() {
		for _, workers := range []int{1, 4} {
			o := o
			o.Workers = workers
			t.Run(name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				t.Parallel()
				ctx := context.Background()
				batch, err := Run(ctx, o)
				if err != nil {
					t.Fatal(err)
				}

				r, err := NewRunner(ctx, o)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Advance(ctx, 170); err != nil {
					t.Fatal(err)
				}
				drained := r.DrainEvents()
				prefix := ""
				// Reassemble the drained prefix per stream for the byte check
				// below: cells in cell order, fleet last — report layout.
				perCell := make([]string, o.Cells)
				fleetPart := ""
				for _, ev := range drained {
					if ev.Cell < 0 {
						fleetPart += ev.Line + "\n"
					} else {
						perCell[ev.Cell] += ev.Line + "\n"
					}
				}
				for _, s := range perCell {
					prefix += s
				}
				prefix += fleetPart

				snap, err := r.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				wire, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var loaded Snapshot
				if err := json.Unmarshal(wire, &loaded); err != nil {
					t.Fatal(err)
				}

				restored, err := RestoreRunner(ctx, &loaded)
				if err != nil {
					t.Fatal(err)
				}
				if restored.Now() != r.Now() {
					t.Fatalf("restored clock %g, want %g", restored.Now(), r.Now())
				}
				rep, err := restored.Finish(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if rep.LogSHA256 != batch.LogSHA256 {
					gotLines := splitLines(rep.EventLog)
					wantLines := splitLines(batch.EventLog)
					line, g, w := firstDiff(gotLines, wantLines)
					t.Fatalf("restored run hash %s, batch %s; first divergence at line %d:\n  got:  %s\n  want: %s",
						rep.LogSHA256, batch.LogSHA256, line, g, w)
				}
				if rep.EventLog != batch.EventLog {
					t.Fatalf("restored EventLog differs from batch (%d vs %d bytes)", len(rep.EventLog), len(batch.EventLog))
				}
				if rep.Events != batch.Events {
					t.Fatalf("restored Events=%d, batch %d", rep.Events, batch.Events)
				}

				// The remaining log after the snapshot point must be exactly
				// the batch log minus the drained prefix, stream by stream.
				restored2, err := RestoreRunner(ctx, snap)
				if err != nil {
					t.Fatal(err)
				}
				if err := restored2.Advance(ctx, o.DurationSec); err != nil {
					t.Fatal(err)
				}
				rest := restored2.DrainEvents()
				perCell2 := make([]string, o.Cells)
				fleet2 := ""
				for _, ev := range rest {
					if ev.Cell < 0 {
						fleet2 += ev.Line + "\n"
					} else {
						perCell2[ev.Cell] += ev.Line + "\n"
					}
				}
				if _, err := restored2.Finish(ctx); err != nil {
					t.Fatal(err)
				}
				final := restored2.DrainEvents()
				for _, ev := range final {
					if ev.Cell < 0 {
						fleet2 += ev.Line + "\n"
					} else {
						perCell2[ev.Cell] += ev.Line + "\n"
					}
				}
				full := ""
				for i := range perCell2 {
					full += perCell[i] + perCell2[i]
				}
				full += fleetPart + fleet2
				if full != batch.EventLog {
					t.Fatalf("drained-prefix + restored-remainder reassembly differs from batch log (%d vs %d bytes)",
						len(full), len(batch.EventLog))
				}
			})
		}
	}
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

// TestSnapshotRefusedAfterFinish pins the safe-point contract: a
// finished run cannot be snapshotted.
func TestSnapshotRefusedAfterFinish(t *testing.T) {
	o := testOptions()
	ctx := context.Background()
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(); err == nil {
		t.Fatal("snapshot of a finished run succeeded")
	}
}

// TestRestoreRejectsVersionAndShape pins the validation surface.
func TestRestoreRejectsVersionAndShape(t *testing.T) {
	o := testOptions()
	ctx := context.Background()
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(ctx, 50); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := *snap
	bad.Version = SnapshotVersion + 1
	if _, err := RestoreRunner(ctx, &bad); err == nil {
		t.Fatal("wrong snapshot version accepted")
	}
	bad = *snap
	bad.Cells = snap.Cells[:1]
	if _, err := RestoreRunner(ctx, &bad); err == nil {
		t.Fatal("truncated cell list accepted")
	}
	if _, err := RestoreRunner(ctx, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

// TestAdvanceClampsToNow is the monotonic-clock regression test:
// advancing to the past neither rewinds the clock nor perturbs the run.
func TestAdvanceClampsToNow(t *testing.T) {
	o := testOptions()
	ctx := context.Background()
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(ctx, 200); err != nil {
		t.Fatal(err)
	}
	if r.Now() != 200 {
		t.Fatalf("Now() = %g, want 200", r.Now())
	}
	if err := r.Advance(ctx, 50); err != nil {
		t.Fatal(err)
	}
	if r.Now() != 200 {
		t.Fatalf("Now() after Advance(50) = %g, want 200 (clock went backwards)", r.Now())
	}
	// An injection at a time after the true clock but before a bogus
	// rewound one must still be accepted.
	if err := r.AddInjection(Injection{Kind: InjectSurge, AtSec: 250, DurSec: 50, Factor: 2}); err != nil {
		t.Fatalf("injection at t=250 refused after Advance(50): %v", err)
	}
	rep, err := r.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	batchOpts := r.Options()
	batch, err := Run(ctx, batchOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LogSHA256 != batch.LogSHA256 {
		t.Fatalf("clamped run hash %s differs from batch %s", rep.LogSHA256, batch.LogSHA256)
	}
}

// TestCompactDrainedPreservesHash pins the compaction satellite: with
// drained-prefix compaction on, the runner releases drained bytes but
// the final report hash, event count, and the drained-stream reassembly
// all still match the uncompacted batch run.
func TestCompactDrainedPreservesHash(t *testing.T) {
	o := testOptions()
	o.Predictions = true
	o.Injections = mustParseInjections("emc-fail@t=200")
	ctx := context.Background()
	batch, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}

	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCompactDrained(true)
	perCell := make([]string, o.Cells)
	fleetPart := ""
	drain := func() {
		for _, ev := range r.DrainEvents() {
			if ev.Cell < 0 {
				fleetPart += ev.Line + "\n"
			} else {
				perCell[ev.Cell] += ev.Line + "\n"
			}
		}
	}
	for _, tAt := range []float64{33, 90, 91, 250, 399} {
		if err := r.Advance(ctx, tAt); err != nil {
			t.Fatal(err)
		}
		drain()
	}
	rep, err := r.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	drain()
	if rep.LogSHA256 != batch.LogSHA256 {
		t.Fatalf("compacted run hash %s, batch %s", rep.LogSHA256, batch.LogSHA256)
	}
	if rep.Events != batch.Events {
		t.Fatalf("compacted Events=%d, batch %d", rep.Events, batch.Events)
	}
	if len(rep.EventLog) >= len(batch.EventLog) {
		t.Fatalf("compaction retained the whole log (%d bytes, batch %d)", len(rep.EventLog), len(batch.EventLog))
	}
	full := ""
	for i := range perCell {
		full += perCell[i]
	}
	full += fleetPart
	if full != batch.EventLog {
		t.Fatalf("drained reassembly differs from batch log (%d vs %d bytes)", len(full), len(batch.EventLog))
	}
	if got := EventLogSHA256(full, o.Cells); got != batch.LogSHA256 {
		t.Fatalf("EventLogSHA256(reassembly) = %s, want %s", got, batch.LogSHA256)
	}
}

// TestSnapshotOfCompactedRunRestores covers the interaction of the two
// new mechanisms: a snapshot taken mid-run with compaction on carries
// the digest midstates, and the restored run still finishes with the
// batch hash.
func TestSnapshotOfCompactedRunRestores(t *testing.T) {
	o := testOptions()
	o.Predictions = true
	ctx := context.Background()
	batch, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCompactDrained(true)
	if err := r.Advance(ctx, 180); err != nil {
		t.Fatal(err)
	}
	r.DrainEvents()
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(wire, &loaded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreRunner(ctx, &loaded)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := restored.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LogSHA256 != batch.LogSHA256 {
		t.Fatalf("restored compacted run hash %s, batch %s", rep.LogSHA256, batch.LogSHA256)
	}
}

// BenchmarkRestoreRunner pins the O(state) restore claim: rebuilding a
// runner from a snapshot taken deep into a long horizon costs the same
// as from one taken early, because restore rebuilds live state instead
// of replaying elapsed simulated time. Run both pause depths and
// compare: the deep restore must not scale with the elapsed horizon.
func BenchmarkRestoreRunner(b *testing.B) {
	for _, pause := range []float64{1000, 18000} {
		b.Run(fmt.Sprintf("pause=%g", pause), func(b *testing.B) {
			o := testOptions()
			o.DurationSec = 20000
			ctx := context.Background()
			r, err := NewRunner(ctx, o)
			if err != nil {
				b.Fatal(err)
			}
			r.SetCompactDrained(true)
			if err := r.Advance(ctx, pause); err != nil {
				b.Fatal(err)
			}
			r.DrainEvents()
			snap, err := r.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			wire, err := json.Marshal(snap)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(wire)), "snapshot-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var s Snapshot
				if err := json.Unmarshal(wire, &s); err != nil {
					b.Fatal(err)
				}
				if _, err := RestoreRunner(ctx, &s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
