package fleet

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// TestAppendFixed3MatchesStrconv differentially checks the fast %.3f
// formatter against strconv over the value shapes the event log emits —
// plus adversarial edges: exact thousandth ties, subnormals, huge and
// tiny magnitudes, negatives, and specials.
func TestAppendFixed3MatchesStrconv(t *testing.T) {
	check := func(v float64) {
		t.Helper()
		got := string(appendFixed3(nil, v))
		want := string(strconv.AppendFloat(nil, v, 'f', 3, 64))
		if got != want {
			t.Fatalf("appendFixed3(%v) = %q, want %q (bits %#016x)", v, got, want, math.Float64bits(v))
		}
	}

	fixed := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 0.0005, 0.0015, 0.0025,
		0.001499999999, 600, 86400, 1e6, 1e15, 1e16, 1e18, 1e300,
		-3.14159, 1.0005, 2.0005, 123.4565, 123.4575,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		5e-324, 1e-10, 0.49999999999999994,
	}
	for _, v := range fixed {
		check(v)
	}
	// Exact representable ties: k/2 and k/8 land on binary halves after
	// scaling by 1000 for many k, exercising the ties-to-even branch.
	for k := 0; k < 4096; k++ {
		check(float64(k) / 2)
		check(float64(k) / 8)
		check(float64(k) / 1024)
	}

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		check(r.Float64() * 1e6)                // sim-time range
		check(r.Float64() * 10)                 // slowdown range
		check(r.NormFloat64())                  // signed, near zero
		check(math.Float64frombits(r.Uint64())) // arbitrary bit patterns
	}
}

func BenchmarkAppendFixed3(b *testing.B) {
	b.ReportAllocs()
	buf := make([]byte, 0, 32)
	v := 123.456
	for i := 0; i < b.N; i++ {
		buf = appendFixed3(buf[:0], v)
		v += 0.618
		if v > 600 {
			v -= 600
		}
	}
}
