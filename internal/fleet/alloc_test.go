package fleet

import (
	"testing"

	"pond/internal/stats"
)

// TestWarmedCellSteadyStateAllocs pins the tentpole claim behind the
// zero-alloc hot path: once a cell has churned long enough for its
// freelists (runningVM records, placements, telemetry sample buffers)
// and scratch buffers (log line, counter vector, feature slice) to warm
// up, advancing simulated time allocates essentially nothing per event.
//
// The measured loop covers arrivals, departures, QoS monitoring, and
// accounting. The only allowed residue is amortized container growth —
// the event log and per-customer histories genuinely accumulate — so
// the budget is a handful of allocations per *simulated second* (tens
// of events), not per event. Before the hot-path work this figure was
// in the thousands; a regression that boxes events or reallocates
// buffers per admission trips the bound immediately.
func TestWarmedCellSteadyStateAllocs(t *testing.T) {
	o := testOptions()
	o.Cells = 1
	o.DurationSec = 2000
	o.Arrival = ArrivalModel{Kind: ArrivalPoisson, RatePerSec: 0.2, MeanLifetimeSec: 200}

	sim, err := newCellSim(0, o, nil, 0, stats.NewRand(o.Seed))
	if err != nil {
		t.Fatal(err)
	}
	// Warm: churn through several mean lifetimes so the population — and
	// with it every freelist — has reached steady state.
	if err := sim.runUntil(1000, false); err != nil {
		t.Fatal(err)
	}

	now := 1000.0
	avg := testing.AllocsPerRun(100, func() {
		now += 5
		if err := sim.runUntil(now, false); err != nil {
			t.Fatal(err)
		}
	})
	// 5 simulated seconds ≈ one arrival and one departure on average.
	// Zero-alloc steady state with amortized-growth slack: anything
	// above a few allocs per run means a per-event allocation came back.
	t.Logf("avg allocs per 5s slice: %.2f", avg)
	if avg > 8 {
		t.Fatalf("steady-state allocations = %.1f per 5s slice, want ~0 (amortized growth only)", avg)
	}
}
