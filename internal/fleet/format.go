package fleet

import (
	"math"
	"strconv"
)

// appendFixed3 appends v formatted exactly as strconv.AppendFloat(dst,
// v, 'f', 3, 64) — and therefore exactly as fmt's %.3f — but without
// strconv's big-decimal slow path, which dominated the event loop's
// logging cost. The golden event logs pin the byte-for-byte equivalence;
// TestAppendFixed3MatchesStrconv checks it differentially.
//
// The fast path covers non-negative finite values whose thousandths fit
// in a uint64: v*1000 is computed exactly as mantissa*1000 (a 53-bit by
// 10-bit product, exact in uint64) scaled by the binary exponent, then
// rounded to nearest with ties to even on the true binary value — the
// same correct rounding strconv implements in decimal. Everything else
// (negatives, NaN, Inf, huge magnitudes) falls back to strconv.
func appendFixed3(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	if bits>>63 != 0 {
		// Negative or negative zero: rare in sim logs, not worth a path.
		return strconv.AppendFloat(dst, v, 'f', 3, 64)
	}
	exp := int(bits >> 52) // sign bit already known zero
	mant := bits & (1<<52 - 1)
	if exp == 0x7ff {
		return strconv.AppendFloat(dst, v, 'f', 3, 64) // +Inf or NaN
	}
	if exp == 0 {
		exp = 1 // subnormal: value = mant * 2^(1-1075)
	} else {
		mant |= 1 << 52
	}
	e := exp - 1075 // v = mant * 2^e

	// milli = v*1000 = (mant*1000) * 2^e, exact: mant < 2^53, 1000 < 2^10.
	m := mant * 1000
	var ip uint64 // floor(milli)
	rnd := -1     // fractional part of milli vs 1/2: -1 below, 0 equal, 1 above
	switch {
	case e >= 0:
		if e > 10 || m>>(63-e) != 0 {
			return strconv.AppendFloat(dst, v, 'f', 3, 64) // too large
		}
		ip = m << e // exact integer, fraction zero
	case e <= -64:
		// m < 2^63 <= 2^(-e), so milli < 1 and its fraction is below
		// one half (m < 2^(-e-1)); the result is floor 0 → "0.000".
		ip = 0
	default:
		s := uint(-e)
		ip = m >> s
		rem := m & (1<<s - 1)
		half := uint64(1) << (s - 1)
		switch {
		case rem > half:
			rnd = 1
		case rem == half:
			rnd = 0
		}
	}
	if rnd > 0 || (rnd == 0 && ip&1 == 1) {
		ip++
	}

	dst = strconv.AppendUint(dst, ip/1000, 10)
	f := ip % 1000
	return append(dst, '.', byte('0'+f/100), byte('0'+f/10%10), byte('0'+f%10))
}
