// Package telemetry is Pond's distributed telemetry database (§4.2, §5):
// per-VM core-PMU counter samples recorded once per second by the
// hypervisor, per-VM untouched-memory outcomes gathered from access-bit
// scans at VM departure, and the per-customer aggregations that feed the
// prediction models' features (Figure 14's "percentiles of memory usage
// in previous VMs by same customer").
package telemetry

import (
	"sort"
	"sync"

	"pond/internal/cluster"
	"pond/internal/pmu"
	"pond/internal/stats"
)

// maxSamplesPerVM bounds per-VM counter retention (a day of 1 Hz samples
// in production; much smaller here since the models consume means).
const maxSamplesPerVM = 256

// untouchedRecord is one completed VM's outcome.
type untouchedRecord struct {
	endSec    float64
	untouched float64 // fraction of rented memory never touched
}

// histWindow memoizes one customer's last computed history: as long as
// a later query selects the same record span [lo, hi), the percentiles
// are unchanged and the sort is skipped.
type histWindow struct {
	lo, hi int
	h      History
}

// maxFreeSampleBufs bounds the recycled sample-buffer freelist; buffers
// beyond it are dropped to the garbage collector.
const maxFreeSampleBufs = 256

// Store is the in-memory stand-in for the central telemetry database.
// It is safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	samples   map[cluster.VMID][]pmu.Vector
	history   map[cluster.CustomerID][]untouchedRecord
	sensitive map[cluster.CustomerID]bool // QoS-confirmed latency sensitivity

	// Hot-path reuse, all guarded by mu. sampleFree recycles departed
	// VMs' sample buffers into the next RecordSample; histUnsorted marks
	// customers whose outcomes arrived out of endSec order (offline
	// replays), disabling the binary-search window; histCache memoizes
	// the last percentile window per customer; histScratch is the sort
	// buffer for window fractions.
	sampleFree   [][]pmu.Vector
	histUnsorted map[cluster.CustomerID]bool
	histCache    map[cluster.CustomerID]histWindow
	histScratch  []float64
}

// NewStore creates an empty telemetry store.
func NewStore() *Store {
	return &Store{
		samples:      make(map[cluster.VMID][]pmu.Vector),
		sampleFree:   make([][]pmu.Vector, 0, maxFreeSampleBufs),
		history:      make(map[cluster.CustomerID][]untouchedRecord),
		sensitive:    make(map[cluster.CustomerID]bool),
		histUnsorted: make(map[cluster.CustomerID]bool),
		histCache:    make(map[cluster.CustomerID]histWindow),
	}
}

// RecordSample appends a 1 Hz PMU sample for a running VM. First samples
// land in buffers recycled from departed VMs, so a churning fleet
// reaches a steady state where sampling allocates nothing.
func (s *Store) RecordSample(id cluster.VMID, v pmu.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.samples[id]
	if !ok {
		if n := len(s.sampleFree); n > 0 {
			buf = s.sampleFree[n-1][:0]
			s.sampleFree = s.sampleFree[:n-1]
		} else {
			// Admission records two samples; start at capacity 2 so a
			// fresh VM never pays the 1→2 growth copy of a 1.6 KB vector.
			buf = make([]pmu.Vector, 0, 2)
		}
	}
	if len(buf) >= maxSamplesPerVM {
		copy(buf, buf[1:])
		buf = buf[:len(buf)-1]
	}
	s.samples[id] = append(buf, v)
}

// MeanCounters returns the mean counter vector for a VM, if any samples
// exist.
func (s *Store) MeanCounters(id cluster.VMID) (pmu.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := s.samples[id]
	if len(buf) == 0 {
		return pmu.Vector{}, false
	}
	return pmu.MeanVector(buf), true
}

// ForgetVM drops a departed VM's samples (after outcome extraction) and
// recycles the buffer for a future VM's first sample.
func (s *Store) ForgetVM(id cluster.VMID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.samples[id]
	if !ok {
		return
	}
	delete(s.samples, id)
	if cap(buf) > 0 && len(s.sampleFree) < maxFreeSampleBufs {
		s.sampleFree = append(s.sampleFree, buf[:0])
	}
}

// RecordOutcome stores a completed VM's minimum untouched-memory fraction
// (the label of Figure 14).
func (s *Store) RecordOutcome(c cluster.CustomerID, endSec, untouchedFrac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.history[c]
	if recs == nil {
		// Most customers accumulate a handful of outcomes quickly; start
		// at capacity 8 so the steady churn of departures does not pay a
		// growth reallocation per power of two per customer.
		recs = make([]untouchedRecord, 0, 8)
	} else if n := len(recs); n > 0 && endSec < recs[n-1].endSec {
		// Out-of-order outcome (offline trace replays): this customer's
		// windows fall back to the full scan from here on.
		s.histUnsorted[c] = true
	}
	s.history[c] = append(recs, untouchedRecord{endSec: endSec, untouched: untouchedFrac})
}

// MarkSensitive records that QoS monitoring found this customer's
// workload latency-sensitive; the scheduler consults this history first
// (§4.4 "retaining a history of VMs that have been latency sensitive").
func (s *Store) MarkSensitive(c cluster.CustomerID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sensitive[c] = true
}

// KnownSensitive reports whether the customer was ever QoS-flagged.
func (s *Store) KnownSensitive(c cluster.CustomerID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sensitive[c]
}

// History summarizes a customer's untouched-memory record in a trailing
// window: the 0/25/50/75/100th percentiles Figure 14 lists as the
// untouched-memory model's most important features.
type History struct {
	Count                   int
	P0, P25, P50, P75, P100 float64
}

// HasHistory reports whether enough prior VMs exist to trust the
// percentiles. The paper finds ~80% of VMs have sufficient history.
func (h History) HasHistory() bool { return h.Count >= 3 }

// CustomerHistory aggregates the customer's outcomes from the window
// [beforeSec - windowSec, beforeSec). Using only strictly earlier records
// keeps training causal: the nightly model never sees the future.
//
// The online path (every fleet admission calls this) is allocation-free:
// records appended in time order are window-selected by binary search,
// the percentile sort reuses a store-level scratch buffer, and a window
// identical to the customer's previous query returns the memoized
// result. Customers with out-of-order outcomes take the original scan.
func (s *Store) CustomerHistory(c cluster.CustomerID, beforeSec, windowSec float64) History {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.history[c]
	xs := s.histScratch[:0]
	lo, hi := 0, 0
	if !s.histUnsorted[c] {
		// Records are endSec-ascending: the window is the contiguous
		// span [lo, hi) with lo the first record >= beforeSec-windowSec
		// and hi the first record >= beforeSec.
		from := beforeSec - windowSec
		lo = sort.Search(len(recs), func(i int) bool { return recs[i].endSec >= from })
		hi = sort.Search(len(recs), func(i int) bool { return recs[i].endSec >= beforeSec })
		if hi <= lo {
			return History{}
		}
		if w, ok := s.histCache[c]; ok && w.lo == lo && w.hi == hi {
			return w.h
		}
		for _, rec := range recs[lo:hi] {
			xs = append(xs, rec.untouched)
		}
	} else {
		for _, rec := range recs {
			if rec.endSec < beforeSec && rec.endSec >= beforeSec-windowSec {
				xs = append(xs, rec.untouched)
			}
		}
		if len(xs) == 0 {
			s.histScratch = xs
			return History{}
		}
	}
	sort.Float64s(xs)
	h := History{
		Count: len(xs),
		P0:    xs[0],
		P25:   stats.QuantileSorted(xs, 0.25),
		P50:   stats.QuantileSorted(xs, 0.50),
		P75:   stats.QuantileSorted(xs, 0.75),
		P100:  xs[len(xs)-1],
	}
	s.histScratch = xs
	if !s.histUnsorted[c] {
		s.histCache[c] = histWindow{lo: lo, hi: hi, h: h}
	}
	return h
}

// UntouchedQuantiles pools every recorded outcome across customers and
// returns the requested quantiles of the fleet's untouched-memory
// distribution — the provisioning input behind Pond's §2 argument that
// untouched (and stranded) memory is what a right-sized pool absorbs.
// It returns nil when no outcomes exist.
func (s *Store) UntouchedQuantiles(qs ...float64) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, recs := range s.history {
		total += len(recs)
	}
	xs := make([]float64, 0, total)
	for _, recs := range s.history {
		for _, rec := range recs {
			xs = append(xs, rec.untouched)
		}
	}
	if len(xs) == 0 {
		return nil
	}
	sort.Float64s(xs)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = stats.QuantileSorted(xs, q)
	}
	return out
}

// Customers returns all customers with recorded outcomes.
func (s *Store) Customers() []cluster.CustomerID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]cluster.CustomerID, 0, len(s.history))
	for c := range s.history {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OutcomeCount returns the number of outcomes stored for a customer.
func (s *Store) OutcomeCount(c cluster.CustomerID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history[c])
}
