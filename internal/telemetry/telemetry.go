// Package telemetry is Pond's distributed telemetry database (§4.2, §5):
// per-VM core-PMU counter samples recorded once per second by the
// hypervisor, per-VM untouched-memory outcomes gathered from access-bit
// scans at VM departure, and the per-customer aggregations that feed the
// prediction models' features (Figure 14's "percentiles of memory usage
// in previous VMs by same customer").
package telemetry

import (
	"sort"
	"sync"

	"pond/internal/cluster"
	"pond/internal/pmu"
	"pond/internal/stats"
)

// maxSamplesPerVM bounds per-VM counter retention (a day of 1 Hz samples
// in production; much smaller here since the models consume means).
const maxSamplesPerVM = 256

// untouchedRecord is one completed VM's outcome.
type untouchedRecord struct {
	endSec    float64
	untouched float64 // fraction of rented memory never touched
}

// Store is the in-memory stand-in for the central telemetry database.
// It is safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	samples   map[cluster.VMID][]pmu.Vector
	history   map[cluster.CustomerID][]untouchedRecord
	sensitive map[cluster.CustomerID]bool // QoS-confirmed latency sensitivity
}

// NewStore creates an empty telemetry store.
func NewStore() *Store {
	return &Store{
		samples:   make(map[cluster.VMID][]pmu.Vector),
		history:   make(map[cluster.CustomerID][]untouchedRecord),
		sensitive: make(map[cluster.CustomerID]bool),
	}
}

// RecordSample appends a 1 Hz PMU sample for a running VM.
func (s *Store) RecordSample(id cluster.VMID, v pmu.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := s.samples[id]
	if len(buf) >= maxSamplesPerVM {
		copy(buf, buf[1:])
		buf = buf[:len(buf)-1]
	}
	s.samples[id] = append(buf, v)
}

// MeanCounters returns the mean counter vector for a VM, if any samples
// exist.
func (s *Store) MeanCounters(id cluster.VMID) (pmu.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := s.samples[id]
	if len(buf) == 0 {
		return pmu.Vector{}, false
	}
	return pmu.MeanVector(buf), true
}

// ForgetVM drops a departed VM's samples (after outcome extraction).
func (s *Store) ForgetVM(id cluster.VMID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.samples, id)
}

// RecordOutcome stores a completed VM's minimum untouched-memory fraction
// (the label of Figure 14).
func (s *Store) RecordOutcome(c cluster.CustomerID, endSec, untouchedFrac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history[c] = append(s.history[c], untouchedRecord{endSec: endSec, untouched: untouchedFrac})
}

// MarkSensitive records that QoS monitoring found this customer's
// workload latency-sensitive; the scheduler consults this history first
// (§4.4 "retaining a history of VMs that have been latency sensitive").
func (s *Store) MarkSensitive(c cluster.CustomerID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sensitive[c] = true
}

// KnownSensitive reports whether the customer was ever QoS-flagged.
func (s *Store) KnownSensitive(c cluster.CustomerID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sensitive[c]
}

// History summarizes a customer's untouched-memory record in a trailing
// window: the 0/25/50/75/100th percentiles Figure 14 lists as the
// untouched-memory model's most important features.
type History struct {
	Count                   int
	P0, P25, P50, P75, P100 float64
}

// HasHistory reports whether enough prior VMs exist to trust the
// percentiles. The paper finds ~80% of VMs have sufficient history.
func (h History) HasHistory() bool { return h.Count >= 3 }

// CustomerHistory aggregates the customer's outcomes from the window
// [beforeSec - windowSec, beforeSec). Using only strictly earlier records
// keeps training causal: the nightly model never sees the future.
func (s *Store) CustomerHistory(c cluster.CustomerID, beforeSec, windowSec float64) History {
	s.mu.Lock()
	defer s.mu.Unlock()
	var xs []float64
	for _, rec := range s.history[c] {
		if rec.endSec < beforeSec && rec.endSec >= beforeSec-windowSec {
			xs = append(xs, rec.untouched)
		}
	}
	if len(xs) == 0 {
		return History{}
	}
	sort.Float64s(xs)
	return History{
		Count: len(xs),
		P0:    xs[0],
		P25:   stats.QuantileSorted(xs, 0.25),
		P50:   stats.QuantileSorted(xs, 0.50),
		P75:   stats.QuantileSorted(xs, 0.75),
		P100:  xs[len(xs)-1],
	}
}

// UntouchedQuantiles pools every recorded outcome across customers and
// returns the requested quantiles of the fleet's untouched-memory
// distribution — the provisioning input behind Pond's §2 argument that
// untouched (and stranded) memory is what a right-sized pool absorbs.
// It returns nil when no outcomes exist.
func (s *Store) UntouchedQuantiles(qs ...float64) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var xs []float64
	for _, recs := range s.history {
		for _, rec := range recs {
			xs = append(xs, rec.untouched)
		}
	}
	if len(xs) == 0 {
		return nil
	}
	sort.Float64s(xs)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = stats.QuantileSorted(xs, q)
	}
	return out
}

// Customers returns all customers with recorded outcomes.
func (s *Store) Customers() []cluster.CustomerID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]cluster.CustomerID, 0, len(s.history))
	for c := range s.history {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OutcomeCount returns the number of outcomes stored for a customer.
func (s *Store) OutcomeCount(c cluster.CustomerID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history[c])
}
