package telemetry

import (
	"sync"
	"testing"

	"pond/internal/pmu"
)

func TestRecordAndMeanCounters(t *testing.T) {
	s := NewStore()
	var a, b pmu.Vector
	a[pmu.DRAMBound], b[pmu.DRAMBound] = 0.2, 0.4
	s.RecordSample(1, a)
	s.RecordSample(1, b)
	m, ok := s.MeanCounters(1)
	if !ok {
		t.Fatal("no mean for sampled VM")
	}
	if diff := m[pmu.DRAMBound] - 0.3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean = %v", m[pmu.DRAMBound])
	}
}

func TestMeanCountersMissing(t *testing.T) {
	s := NewStore()
	if _, ok := s.MeanCounters(42); ok {
		t.Fatal("mean for unsampled VM")
	}
}

func TestSampleRetentionBounded(t *testing.T) {
	s := NewStore()
	var v pmu.Vector
	for i := 0; i < maxSamplesPerVM+50; i++ {
		s.RecordSample(1, v)
	}
	if n := len(s.samples[1]); n > maxSamplesPerVM {
		t.Fatalf("retained %d samples, cap %d", n, maxSamplesPerVM)
	}
}

func TestForgetVM(t *testing.T) {
	s := NewStore()
	s.RecordSample(1, pmu.Vector{})
	s.ForgetVM(1)
	if _, ok := s.MeanCounters(1); ok {
		t.Fatal("samples survived ForgetVM")
	}
}

func TestCustomerHistoryPercentiles(t *testing.T) {
	s := NewStore()
	for i, u := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		s.RecordOutcome(7, float64(i), u)
	}
	h := s.CustomerHistory(7, 100, 1000)
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.P0 != 0.1 || h.P100 != 0.5 || h.P50 != 0.3 {
		t.Fatalf("percentiles wrong: %+v", h)
	}
	if !h.HasHistory() {
		t.Fatal("5 records should count as history")
	}
}

func TestCustomerHistoryCausality(t *testing.T) {
	s := NewStore()
	s.RecordOutcome(7, 50, 0.2)
	s.RecordOutcome(7, 150, 0.9) // in the future relative to query
	h := s.CustomerHistory(7, 100, 1000)
	if h.Count != 1 || h.P100 != 0.2 {
		t.Fatalf("future outcome leaked into history: %+v", h)
	}
}

func TestCustomerHistoryWindow(t *testing.T) {
	s := NewStore()
	s.RecordOutcome(7, 10, 0.2) // too old for a 50s window at t=100
	s.RecordOutcome(7, 80, 0.6)
	h := s.CustomerHistory(7, 100, 50)
	if h.Count != 1 || h.P0 != 0.6 {
		t.Fatalf("window not applied: %+v", h)
	}
}

func TestCustomerHistoryEmpty(t *testing.T) {
	s := NewStore()
	h := s.CustomerHistory(9, 100, 100)
	if h.Count != 0 || h.HasHistory() {
		t.Fatalf("empty history = %+v", h)
	}
}

func TestSensitiveFlag(t *testing.T) {
	s := NewStore()
	if s.KnownSensitive(3) {
		t.Fatal("fresh customer flagged")
	}
	s.MarkSensitive(3)
	if !s.KnownSensitive(3) {
		t.Fatal("flag lost")
	}
}

func TestCustomersSorted(t *testing.T) {
	s := NewStore()
	s.RecordOutcome(9, 0, 0.5)
	s.RecordOutcome(2, 0, 0.5)
	s.RecordOutcome(5, 0, 0.5)
	got := s.Customers()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("customers = %v", got)
	}
}

func TestOutcomeCount(t *testing.T) {
	s := NewStore()
	s.RecordOutcome(1, 0, 0.5)
	s.RecordOutcome(1, 1, 0.6)
	if s.OutcomeCount(1) != 2 || s.OutcomeCount(2) != 0 {
		t.Fatal("outcome counts wrong")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.RecordSample(1, pmu.Vector{})
				s.RecordOutcome(3, float64(i), 0.5)
				s.MeanCounters(1)
				s.CustomerHistory(3, 1e9, 1e9)
			}
		}(g)
	}
	wg.Wait()
	if s.OutcomeCount(3) != 1600 {
		t.Fatalf("outcomes = %d, want 1600", s.OutcomeCount(3))
	}
}
