package telemetry

import (
	"sort"

	"pond/internal/cluster"
	"pond/internal/pmu"
)

// VMSamplesState is one running VM's retained counter samples.
type VMSamplesState struct {
	ID      cluster.VMID `json:"id"`
	Samples []pmu.Vector `json:"samples"`
}

// OutcomeState is one completed VM's untouched-memory outcome.
type OutcomeState struct {
	EndSec    float64 `json:"end_sec"`
	Untouched float64 `json:"untouched"`
}

// CustomerState is one customer's outcome history, in recorded order
// (which is what the sorted/unsorted window logic depends on).
type CustomerState struct {
	ID       cluster.CustomerID `json:"id"`
	Outcomes []OutcomeState     `json:"outcomes"`
	Unsorted bool               `json:"unsorted,omitempty"`
}

// State is the serializable state of the telemetry Store: per-VM counter
// samples, per-customer outcome histories with their unsorted flags, and
// the QoS-sensitivity set. Slices are keyed deterministically (sorted by
// ID) so the encoding is stable; the memo caches and buffer freelists
// are rebuilt empty on restore.
type State struct {
	VMs       []VMSamplesState     `json:"vms,omitempty"`
	Customers []CustomerState      `json:"customers,omitempty"`
	Sensitive []cluster.CustomerID `json:"sensitive,omitempty"`
}

// State captures the store's current contents for serialization.
func (s *Store) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st State

	vmIDs := make([]cluster.VMID, 0, len(s.samples))
	for id := range s.samples {
		vmIDs = append(vmIDs, id)
	}
	sort.Slice(vmIDs, func(i, j int) bool { return vmIDs[i] < vmIDs[j] })
	for _, id := range vmIDs {
		st.VMs = append(st.VMs, VMSamplesState{
			ID:      id,
			Samples: append([]pmu.Vector(nil), s.samples[id]...),
		})
	}

	custIDs := make([]cluster.CustomerID, 0, len(s.history))
	for c := range s.history {
		custIDs = append(custIDs, c)
	}
	sort.Slice(custIDs, func(i, j int) bool { return custIDs[i] < custIDs[j] })
	for _, c := range custIDs {
		cs := CustomerState{ID: c, Unsorted: s.histUnsorted[c]}
		for _, rec := range s.history[c] {
			cs.Outcomes = append(cs.Outcomes, OutcomeState{EndSec: rec.endSec, Untouched: rec.untouched})
		}
		st.Customers = append(st.Customers, cs)
	}

	for c := range s.sensitive {
		st.Sensitive = append(st.Sensitive, c)
	}
	sort.Slice(st.Sensitive, func(i, j int) bool { return st.Sensitive[i] < st.Sensitive[j] })
	return st
}

// SetState restores a state captured by State, replacing the store's
// contents.
func (s *Store) SetState(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = make(map[cluster.VMID][]pmu.Vector, len(st.VMs))
	for _, vs := range st.VMs {
		s.samples[vs.ID] = append([]pmu.Vector(nil), vs.Samples...)
	}
	s.history = make(map[cluster.CustomerID][]untouchedRecord, len(st.Customers))
	s.histUnsorted = make(map[cluster.CustomerID]bool)
	for _, cs := range st.Customers {
		recs := make([]untouchedRecord, 0, len(cs.Outcomes))
		for _, o := range cs.Outcomes {
			recs = append(recs, untouchedRecord{endSec: o.EndSec, untouched: o.Untouched})
		}
		s.history[cs.ID] = recs
		if cs.Unsorted {
			s.histUnsorted[cs.ID] = true
		}
	}
	s.sensitive = make(map[cluster.CustomerID]bool, len(st.Sensitive))
	for _, c := range st.Sensitive {
		s.sensitive[c] = true
	}
	s.sampleFree = s.sampleFree[:0]
	s.histCache = make(map[cluster.CustomerID]histWindow)
	s.histScratch = nil
	return nil
}
