package telemetry

import (
	"testing"

	"pond/internal/cluster"
	"pond/internal/pmu"
)

// BenchmarkTelemetryCapture measures the steady-state per-VM telemetry
// cycle the fleet event loop drives at every admission and departure:
// record two 1 Hz samples, read the mean, record the departure outcome,
// query the customer's history window, and forget the VM. After warmup
// the store recycles departed VMs' sample buffers and memoizes history
// windows, so the cycle settles near zero allocations.
func BenchmarkTelemetryCapture(b *testing.B) {
	s := NewStore()
	var v pmu.Vector
	for i := range v {
		v[i] = float64(i) / 200
	}
	// Warm the freelists and the customer's history the way a running
	// fleet does.
	for i := 0; i < 64; i++ {
		id := cluster.VMID(i)
		s.RecordSample(id, v)
		s.RecordOutcome(7, float64(i), 0.4)
		s.ForgetVM(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cluster.VMID(1000 + i%64)
		s.RecordSample(id, v)
		s.RecordSample(id, v)
		if _, ok := s.MeanCounters(id); !ok {
			b.Fatal("no samples recorded")
		}
		s.RecordOutcome(7, float64(100+i), 0.4)
		s.CustomerHistory(7, float64(100+i), 64)
		s.ForgetVM(id)
	}
}
