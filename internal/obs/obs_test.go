package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestIncrementAllocsZero pins the hot-path contract: counter, gauge,
// and histogram updates allocate nothing. An instrument site inside the
// simulation's event loop must never pressure the GC — the fleet
// benchgate's alloc budget (2% tolerance) depends on it.
func TestIncrementAllocsZero(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "test")
	g := r.Gauge("t_gauge", "test")
	h := r.Histogram("t_hist", "test", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42.5) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(0.5) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.03) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "test")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "test", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_sum 5.555`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionFormat checks the text format end to end: HELP/TYPE
// headers once per family, labeled series under one header, collectors
// appended, stable ordering.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pond_requests_total", "Requests served.", "method", "get").Add(3)
	r.Counter("pond_requests_total", "Requests served.", "method", "post").Add(1)
	r.Gauge("pond_temp", "A gauge.").Set(36.6)
	r.RegisterCollector(func(w *Writer) {
		w.Family("pond_dyn", TypeGauge, "Dynamic per-run series.")
		w.Value("pond_dyn", 1, "run", "r1")
		w.Value("pond_dyn", 2, "run", "r2")
	})
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	if strings.Count(out, "# HELP pond_requests_total") != 1 {
		t.Fatalf("family header should appear once:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE pond_requests_total counter",
		`pond_requests_total{method="get"} 3`,
		`pond_requests_total{method="post"} 1`,
		"pond_temp 36.6",
		"# TYPE pond_dyn gauge",
		`pond_dyn{run="r1"} 1`,
		`pond_dyn{run="r2"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Two scrapes render identically (stable ordering).
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b2.String() != out {
		t.Fatal("exposition not stable across scrapes")
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := renderLabels([]string{"k", `a"b\c` + "\n"}); got != `{k="a\"b\\c\n"}` {
		t.Fatalf("escaped labels = %s", got)
	}
}

func TestProcessCollector(t *testing.T) {
	r := NewRegistry()
	RegisterProcessCollector(r)
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, want := range []string{"pond_process_goroutines", "pond_process_heap_bytes", "pond_process_uptime_seconds"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("process collector missing %s:\n%s", want, b.String())
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "test")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "test")
}

// TestConcurrentScrapeAndIncrement exercises the lock-free instruments
// under -race: scrapes interleave with increments from many goroutines.
func TestConcurrentScrapeAndIncrement(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "test")
	g := r.Gauge("race_gauge", "test")
	h := r.Histogram("race_seconds", "test", nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 1000)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		var b strings.Builder
		r.WritePrometheus(&b)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if g.Value() != 4000 {
		t.Fatalf("gauge = %g, want 4000", g.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}
