// Package obs is the fleet's observability layer: a small metrics
// registry (counters, gauges, fixed-bucket histograms) with Prometheus
// text exposition, built for a determinism-sensitive simulator.
//
// Two constraints shape the design. First, instrument sites sit on the
// simulation hot path, so every increment is a single atomic operation:
// no locks, no map lookups, no heap allocations, no RNG draws — the
// allocs-per-op tests pin this. Second, the simulation's determinism
// contract (event logs byte-identical for any worker count, with
// observability on or off) means metrics must only ever *read* sim
// state; nothing in this package feeds back into simulated behaviour.
// All the cost of rendering — label formatting, float printing — is
// paid at scrape time, on the HTTP handler's goroutine, never at the
// instrument site.
//
// Registration is startup-time and mutex-guarded; instruments are
// immutable after creation and safe for concurrent use. Collectors
// cover the dynamic tail (per-run gauges whose label sets change as
// runs come and go): a collector is a callback invoked at scrape time
// under no registry lock beyond its own registration slot.
package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric types in the Prometheus exposition format.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing counter. Inc and Add are
// single atomic adds: lock-free and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and ignored).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as IEEE
// bits in a uint64 so Set is a single atomic store.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta via a CAS loop; allocation-free.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observe walks the
// (small, immutable) upper-bound slice and lands one atomic add plus a
// CAS on the float sum: lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets are the default histogram bounds (seconds), matching the
// conventional Prometheus latency spread.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric is one registered instrument with its prerendered label set.
type metric struct {
	name   string
	help   string
	typ    string
	labels string // prerendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds registered instruments and scrape-time collectors.
// Registration locks; reads of registered instruments never do.
type Registry struct {
	mu         sync.Mutex
	metrics    []*metric
	seen       map[string]string // name -> type, for cross-registration consistency
	collectors []func(w *Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]string)}
}

// register validates and appends one instrument. Metrics sharing a name
// must share a type (they form one family, distinguished by labels);
// duplicate (name, labels) pairs are a programming error.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.seen[m.name]; ok && t != m.typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", m.name, t, m.typ))
	}
	for _, prev := range r.metrics {
		if prev.name == m.name && prev.labels == m.labels {
			panic(fmt.Sprintf("obs: duplicate metric %q%s", m.name, m.labels))
		}
	}
	r.seen[m.name] = m.typ
	r.metrics = append(r.metrics, m)
}

// renderLabels turns key/value pairs into a canonical `{k="v",...}`
// string, sorted by key so the exposition is stable.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: label pairs must come in key/value couples")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter registers and returns a counter. labels are optional
// key/value pairs fixed at registration.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: TypeCounter, labels: renderLabels(labels), c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: TypeGauge, labels: renderLabels(labels), g: g})
	return g
}

// Histogram registers and returns a histogram over the given ascending
// upper bounds (nil means DefBuckets). The bounds slice is copied.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), buckets: make([]atomic.Uint64, len(bounds))}
	r.register(&metric{name: name, help: help, typ: TypeHistogram, labels: renderLabels(labels), h: h})
	return h
}

// RegisterCollector adds a scrape-time callback for dynamic series —
// gauges whose label sets change at runtime (per-run metrics). The
// callback runs on the scraping goroutine; allocation there is fine.
func (r *Registry) RegisterCollector(fn func(w *Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Writer renders exposition-format lines for collectors.
type Writer struct {
	w        io.Writer
	lastName string
}

// Family emits the # HELP / # TYPE header for a metric family. Calling
// it again for the same consecutive name is a no-op, so collectors can
// emit one family header per run loop iteration without duplicates.
func (w *Writer) Family(name, typ, help string) {
	if name == w.lastName {
		return
	}
	w.lastName = name
	fmt.Fprintf(w.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Value emits one sample line; labels are optional key/value pairs.
func (w *Writer) Value(name string, v float64, labels ...string) {
	fmt.Fprintf(w.w, "%s%s %s\n", name, renderLabels(labels), formatFloat(v))
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered instrument, then every
// collector, in the text exposition format (version 0.0.4). Instruments
// sharing a name render under one family header.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	collectors := append([]func(w *Writer){}, r.collectors...)
	r.mu.Unlock()

	// Group by family: stable-sort by name, preserving registration
	// order within a family so label permutations stay put.
	sort.SliceStable(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	ww := &Writer{w: w}
	for _, m := range metrics {
		ww.Family(m.name, m.typ, m.help)
		switch m.typ {
		case TypeCounter:
			fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.c.Value())
		case TypeGauge:
			fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, formatFloat(m.g.Value()))
		case TypeHistogram:
			writeHistogram(w, m)
		}
	}
	for _, fn := range collectors {
		fn(ww)
	}
}

// writeHistogram renders the cumulative buckets, sum, and count.
func writeHistogram(w io.Writer, m *metric) {
	h := m.h
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLE(m.labels, formatFloat(ub)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLE(m.labels, "+Inf"), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, h.Count())
}

// withLE merges the le bucket label into a prerendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// RegisterProcessCollector adds the standard process-level series:
// goroutines, heap bytes, total allocated bytes, GC cycles, and uptime.
// runtime.ReadMemStats stops the world briefly — acceptable at scrape
// time, which is why this is a collector and not a polled gauge.
func RegisterProcessCollector(r *Registry) {
	start := time.Now()
	r.RegisterCollector(func(w *Writer) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.Family("pond_process_goroutines", TypeGauge, "Current number of goroutines.")
		w.Value("pond_process_goroutines", float64(runtime.NumGoroutine()))
		w.Family("pond_process_heap_bytes", TypeGauge, "Bytes of allocated heap objects.")
		w.Value("pond_process_heap_bytes", float64(ms.HeapAlloc))
		w.Family("pond_process_alloc_bytes_total", TypeCounter, "Cumulative bytes allocated for heap objects.")
		w.Value("pond_process_alloc_bytes_total", float64(ms.TotalAlloc))
		w.Family("pond_process_gc_cycles_total", TypeCounter, "Completed GC cycles.")
		w.Value("pond_process_gc_cycles_total", float64(ms.NumGC))
		w.Family("pond_process_uptime_seconds", TypeGauge, "Seconds since the process collector was registered.")
		w.Value("pond_process_uptime_seconds", time.Since(start).Seconds())
	})
}
