// Package workload models the 158 cloud workloads the paper evaluates
// (§3.3, §6.1) and their sensitivity to pool-memory latency.
//
// The paper measured each workload on two-socket servers with one socket's
// cores disabled, so that "remote" memory emulates CXL at a 182% (Intel,
// 78→142 ns) or 222% (AMD, 115→255 ns) latency level. We do not have that
// hardware; instead each workload carries an analytic performance model
// whose parameters are calibrated so the *distribution* of slowdowns
// matches the published Figures 4 and 5, while preserving the qualitative
// structure the paper emphasizes: graph processing (GAPBS) is the most
// affected class, Azure's proprietary workloads the least (they are
// NUMA-aware), and within-class variance exceeds across-class variance.
//
// The model: a workload that serves a fraction f of its memory accesses
// from pool DRAM at a latency ratio R (R = pool latency / local latency)
// slows down by
//
//	slowdown(R, f) = LatSens·(R−1)·f + BWSens·f
//
// LatSens aggregates DRAM-stall fraction and memory-level parallelism;
// BWSens is the additional penalty for workloads that saturate the
// narrower CXL link. Both are per-workload constants in the catalogue.
package workload

import (
	"fmt"
	"math"
)

// Class identifies the benchmark suite a workload belongs to, matching the
// eight groups on the x-axis of Figure 4.
type Class int

// Workload classes in Figure 4's left-to-right order.
const (
	Proprietary Class = iota // Azure production workloads P1..P13
	Redis                    // Redis under YCSB A-F
	VoltDB                   // VoltDB under YCSB A-F
	Spark                    // HiBench Spark workloads
	GAPBS                    // GAP benchmark suite kernels x graphs
	TPCH                     // TPC-H queries on MySQL
	SPECCPU                  // SPEC CPU 2017
	PARSEC                   // PARSEC 3.0
	SPLASH2x                 // SPLASH-2x
)

var classNames = [...]string{
	Proprietary: "Proprietary",
	Redis:       "Redis",
	VoltDB:      "VoltDB",
	Spark:       "Spark",
	GAPBS:       "GAPBS",
	TPCH:        "TPC-H",
	SPECCPU:     "SPEC CPU 2017",
	PARSEC:      "PARSEC",
	SPLASH2x:    "SPLASH2x",
}

// String names the class as the paper does.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classes lists all workload classes in Figure 4 order.
func Classes() []Class {
	return []Class{Proprietary, Redis, VoltDB, Spark, GAPBS, TPCH, SPECCPU, PARSEC, SPLASH2x}
}

// Workload is one of the 158 evaluated applications with the calibrated
// parameters of its performance model.
type Workload struct {
	Name  string
	Class Class

	// FootprintGB is the resident memory footprint of the workload.
	FootprintGB float64

	// LatSens is the slowdown fraction incurred per unit of latency
	// ratio increase when all accesses are remote. A workload with
	// LatSens 0.3 slows by 0.3·(R−1) when fully pool-backed.
	LatSens float64

	// BWSens is the additive slowdown fraction when all traffic crosses
	// the narrower CXL link (bandwidth-bound workloads only).
	BWSens float64

	// StoreSens is the portion of LatSens attributable to store/
	// serialization stalls. It is invisible to the DRAM-bound TMA
	// counter — the mechanism behind the paper's Finding 4, where
	// workloads slow >20% at ~2% measured DRAM-boundedness.
	StoreSens float64

	// MLP is the workload's memory-level parallelism (1 = serial
	// pointer chasing, 8 = fully overlapped streaming). Higher MLP
	// hides latency, lowering the TMA stall fractions the PMU reports
	// for a given LatSens.
	MLP float64

	// Skew is the spill-curve exponent: when a fraction p of the
	// footprint spills to the zNUMA node, the fraction of accesses
	// served remotely is p^Skew. Skew < 1 models hot data that the
	// guest allocated late and therefore spilled first (the "immediate
	// impact" of Figure 16).
	Skew float64

	// NUMAAware marks workloads with explicit placement optimizations
	// (Azure's proprietary services, §3.3).
	NUMAAware bool

	// MetadataTraffic is the fraction of accesses that land on the
	// zNUMA node even with a perfectly sized local node, due to per-node
	// guest OS allocator metadata (Figure 15's 0.06–0.38%).
	MetadataTraffic float64
}

// Latency ratios of the paper's two emulation scenarios.
const (
	// Ratio182 is the Intel testbed level: 142 ns remote / 78 ns local.
	Ratio182 = 142.0 / 78.0
	// Ratio222 is the AMD testbed level: 255 ns remote / 115 ns local.
	Ratio222 = 255.0 / 115.0
)

// Slowdown returns the fractional slowdown (0.05 = 5%) of the workload
// when a fraction remoteFrac of its memory accesses are served from pool
// DRAM at the given latency ratio. Slowdown is 0 when remoteFrac is 0 and
// grows linearly in both the latency excess and the remote fraction.
func (w Workload) Slowdown(latencyRatio, remoteFrac float64) float64 {
	if latencyRatio < 1 {
		panic(fmt.Sprintf("workload: latency ratio %v < 1", latencyRatio))
	}
	if remoteFrac < 0 || remoteFrac > 1 {
		panic(fmt.Sprintf("workload: remote fraction %v outside [0,1]", remoteFrac))
	}
	return w.LatSens*(latencyRatio-1)*remoteFrac + w.BWSens*remoteFrac
}

// SlowdownPct is Slowdown expressed in percent.
func (w Workload) SlowdownPct(latencyRatio, remoteFrac float64) float64 {
	return 100 * w.Slowdown(latencyRatio, remoteFrac)
}

// SpillSlowdown returns the fractional slowdown when a fraction spillFrac
// of the workload's footprint resides on the zNUMA node (Figure 16's
// overprediction scenario). The access fraction hitting the spilled pages
// follows the workload's skew curve, plus the constant metadata traffic.
func (w Workload) SpillSlowdown(latencyRatio, spillFrac float64) float64 {
	if spillFrac < 0 || spillFrac > 1 {
		panic(fmt.Sprintf("workload: spill fraction %v outside [0,1]", spillFrac))
	}
	remote := w.RemoteAccessFraction(spillFrac)
	return w.Slowdown(latencyRatio, remote)
}

// RemoteAccessFraction maps a spilled-footprint fraction to the fraction
// of memory accesses served remotely.
func (w Workload) RemoteAccessFraction(spillFrac float64) float64 {
	if spillFrac <= 0 {
		return math.Min(w.MetadataTraffic, 1)
	}
	f := math.Pow(spillFrac, w.Skew) + w.MetadataTraffic
	return math.Min(f, 1)
}

// ampFactor converts between the latency-sensitivity the workload
// exhibits and the stall fractions its PMU counters report: high
// memory-level parallelism hides latency, so a streaming workload shows
// large stall counters relative to its real CXL sensitivity, while a
// pointer chaser is hurt more than its counters suggest.
func (w Workload) ampFactor() float64 {
	amp := 1.6 - 0.12*w.MLP
	if amp < 0.6 {
		amp = 0.6
	}
	return amp
}

// DRAMBoundFrac returns the TMA "DRAM-bound" pipeline-slot fraction the
// PMU would report for this workload: the latency-visible part of its
// sensitivity, discounted by memory-level parallelism. Store-driven
// sensitivity is excluded — that is what makes single-counter heuristics
// imperfect (Finding 4).
func (w Workload) DRAMBoundFrac() float64 {
	db := (w.LatSens - w.StoreSens) / w.ampFactor()
	return clamp01(db)
}

// StoreBoundFrac returns the TMA "store-bound" fraction.
func (w Workload) StoreBoundFrac() float64 {
	return clamp01(w.StoreSens / w.ampFactor())
}

// MemoryBoundFrac returns the TMA "memory-bound" fraction: DRAM-bound plus
// store-bound plus a cache-bound component that does not respond to CXL
// latency (it inflates the memory-bound heuristic's false positives).
func (w Workload) MemoryBoundFrac() float64 {
	cacheBound := 0.04 + 0.25*w.BWSens + 0.02*w.MLP
	return clamp01(w.DRAMBoundFrac() + w.StoreBoundFrac() + cacheBound)
}

// BackendBoundFrac returns the TMA "backend-bound" fraction (a superset of
// memory-bound that includes core-execution stalls).
func (w Workload) BackendBoundFrac() float64 {
	return clamp01(w.MemoryBoundFrac() + 0.10)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// BandwidthDemandGBps estimates the workload's steady-state DRAM
// bandwidth demand: a base stream plus terms for bandwidth-bound phases
// and outstanding-miss traffic. The PMU's dram_bw_gbps counter samples
// this quantity with noise, and the CXL port-sharing model consumes it
// for co-location analysis.
func (w Workload) BandwidthDemandGBps() float64 {
	return 8 + 400*w.BWSens + 12*w.DRAMBoundFrac()*w.MLP
}

// PoolBandwidthGBps returns the share of the workload's bandwidth demand
// that crosses the CXL link when a fraction remoteFrac of its accesses
// are served from pool memory.
func (w Workload) PoolBandwidthGBps(remoteFrac float64) float64 {
	return w.BandwidthDemandGBps() * clamp01(remoteFrac)
}

// String renders the workload as "name (class)".
func (w Workload) String() string {
	return fmt.Sprintf("%s (%s)", w.Name, w.Class)
}
