package workload

import (
	"math"

	"pond/internal/stats"
)

// Access-pattern generation. The hypervisor's access-bit scans (§4.2,
// Figure 15) observe which pages a workload touches; this generator
// produces the per-page stream those scans see. Page popularity follows
// a Zipf law whose skew derives from the workload's spill-curve exponent:
// a workload whose accesses concentrate on recently allocated pages
// (Skew < 1) has a hot set, while Skew ≈ 1 approaches uniform access.

// AccessTrace draws n page indices over a footprint of pages using the
// workload's access skew. Page 0 is the hottest.
func (w Workload) AccessTrace(pages, n int, r *stats.Rand) []int {
	if pages <= 0 || n <= 0 {
		return nil
	}
	// Zipf parameter from spill skew: Skew 0.5 (strong hot set) maps to
	// s ~ 1.2; Skew 1.0 (uniform) maps to s ~ 0.4.
	s := 2.0 - 1.6*w.Skew
	if s < 0.1 {
		s = 0.1
	}
	weights := zipfWeights(pages, s)
	out := make([]int, n)
	for i := range out {
		out[i] = r.Choice(weights)
	}
	return out
}

// TouchedPagesFrac returns the expected fraction of the footprint's pages
// touched after n accesses under the workload's popularity curve:
// 1 - Π(1-p_i)^n evaluated per page.
func (w Workload) TouchedPagesFrac(pages, n int) float64 {
	if pages <= 0 || n <= 0 {
		return 0
	}
	s := 2.0 - 1.6*w.Skew
	if s < 0.1 {
		s = 0.1
	}
	weights := zipfWeights(pages, s)
	var total float64
	for _, p := range weights {
		total += p
	}
	touched := 0.0
	for _, p := range weights {
		touched += 1 - math.Pow(1-p/total, float64(n))
	}
	return touched / float64(pages)
}

// zipfWeights returns unnormalized Zipf(s) weights for ranks 1..n.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}
