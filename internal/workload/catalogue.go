package workload

import "fmt"

// The catalogue lists all 158 workloads of §6.1 with calibrated model
// parameters. Calibration targets (validated by calibration_test.go):
//
//	182% latency: 26% of workloads <1% slowdown, 43% <5%, 21% >25%
//	222% latency: 23% <1%, 37% <5%, 37% >25%, exactly 3 outliers >100%
//	             (max ≈124%)
//	Every class spans <5% and >25% at 182% except SPLASH2x (§3.3).
//	Proprietary: 6 of 13 <1%, 2 ≈5%, rest 10–28% (NUMA-aware).
//
// The helper mk keeps each entry on one line: footprint GB, latency
// sensitivity, bandwidth sensitivity, store-driven share of sensitivity,
// memory-level parallelism, and spill skew.

func mk(name string, class Class, fpGB, lat, bw, store, mlp, skew float64) Workload {
	return Workload{
		Name: name, Class: class, FootprintGB: fpGB,
		LatSens: lat, BWSens: bw, StoreSens: store, MLP: mlp, Skew: skew,
		NUMAAware:       class == Proprietary,
		MetadataTraffic: 0.0015,
	}
}

var catalogue = buildCatalogue()

func buildCatalogue() []Workload {
	var ws []Workload
	add := func(list ...Workload) { ws = append(ws, list...) }

	// Azure proprietary workloads P1-P13 (§3.3): NUMA-aware, with data
	// placement optimizations; 6 see no noticeable impact, 2 see ~5%,
	// the rest 10-28%. P1-P4 double as the four internal services of
	// the zNUMA production experiment (Figure 15) and carry its
	// measured zNUMA traffic fractions.
	p := func(name string, fp, lat float64) Workload {
		return mk(name, Proprietary, fp, lat, 0, 0, 3, 0.75)
	}
	p1 := p("P1-video", 64, 0.004)
	p1.MetadataTraffic = 0.0025 // Figure 15: Video 0.25%
	p2 := p("P2-database", 128, 0.005)
	p2.MetadataTraffic = 0.0006 // Figure 15: Database 0.06%
	p3 := p("P3-kvstore", 48, 0.006)
	p3.MetadataTraffic = 0.0011 // Figure 15: KV store 0.11%
	p4 := p("P4-analytics", 96, 0.008)
	p4.MetadataTraffic = 0.0038 // Figure 15: Analytics 0.38%
	add(p1, p2, p3, p4,
		p("P5-web", 32, 0.010),
		p("P6-cache", 24, 0.011),
		p("P7-search", 80, 0.055),
		p("P8-mlserve", 40, 0.058),
		p("P9-stream", 56, 0.13),
		p("P10-batch", 72, 0.21),
		p("P11-index", 64, 0.22),
		p("P12-olap", 112, 0.28),
	)
	p13 := p("P13-graph", 88, 0.33)
	p13.BWSens = 0.01
	add(p13)

	// Redis under YCSB A-F: single-threaded KV serving, low MLP,
	// uniform key access (linear spill curve).
	r := func(name string, fp, lat float64) Workload {
		return mk(name, Redis, fp, lat, 0, 0, 2, 1.0)
	}
	add(
		r("redis-ycsb-a", 16, 0.21),
		r("redis-ycsb-b", 16, 0.24),
		r("redis-ycsb-c", 16, 0.32),
		r("redis-ycsb-d", 16, 0.10),
		r("redis-ycsb-e", 24, 0.0078),
		r("redis-ycsb-f", 16, 0.055),
	)

	// VoltDB under YCSB A-F: in-memory SQL OLTP. YCSB-C on VoltDB is
	// one of the "deceptive" workloads: its sensitivity is dominated by
	// store/serialization stalls that the DRAM-bound counter misses
	// (Finding 4).
	v := func(name string, fp, lat, store float64) Workload {
		return mk(name, VoltDB, fp, lat, 0, store, 2, 1.0)
	}
	add(
		v("voltdb-ycsb-a", 32, 0.26, 0),
		v("voltdb-ycsb-b", 32, 0.31, 0),
		v("voltdb-ycsb-c", 32, 0.38, 0.342),
		v("voltdb-ycsb-d", 32, 0.12, 0),
		v("voltdb-ycsb-e", 48, 0.03, 0),
		v("voltdb-ycsb-f", 32, 0.007, 0),
	)

	// Spark (HiBench): JVM analytics, high MLP, several bandwidth-bound
	// shuffles. nweight is the second deceptive workload.
	s := func(name string, fp, lat, bw, store float64) Workload {
		return mk(name, Spark, fp, lat, bw, store, 5, 0.85)
	}
	add(
		s("spark-wordcount", 40, 0.006, 0, 0),
		s("spark-sort", 64, 0.06, 0.05, 0),
		s("spark-terasort", 96, 0.08, 0.07, 0),
		s("spark-pagerank", 80, 0.22, 0.05, 0),
		s("spark-kmeans", 48, 0.0078, 0, 0),
		s("spark-bayes", 40, 0.05, 0.01, 0),
		s("spark-als", 56, 0.03, 0, 0),
		s("spark-lr", 48, 0.008, 0, 0),
		s("spark-svm", 48, 0.035, 0, 0),
		s("spark-nweight", 72, 0.30, 0.06, 0.27),
		s("spark-websearch", 64, 0.21, 0.02, 0),
	)

	// GAPBS: six kernels by five graphs. Road networks have small
	// working sets (low sensitivity); social/synthetic graphs (twitter,
	// kron, urand) are dominated by irregular pointer chasing with MLP
	// near 1.5, producing the worst slowdowns of the study, including
	// the three >100% outliers at the 222% level. PageRank is
	// bandwidth- rather than latency-dominated. Graph data is allocated
	// after the runtime's own structures, so overpredicted zNUMA spill
	// hits hot data first: skew 0.5.
	g := func(kernel, graph string, fp, lat, bw, mlp float64) Workload {
		return mk("gapbs-"+kernel+"-"+graph, GAPBS, fp, lat, bw, 0, mlp, 0.5)
	}
	add(
		g("bc", "twitter", 18, 0.52, 0, 1.5),
		g("bc", "web", 30, 0.38, 0, 1.5),
		g("bc", "road", 1, 0.05, 0, 2),
		g("bc", "kron", 16, 0.58, 0, 1.5),
		g("bc", "urand", 16, 1.01, 0.005, 1.2),
		g("bfs", "twitter", 18, 0.45, 0, 1.5),
		g("bfs", "web", 30, 0.30, 0, 1.5),
		g("bfs", "road", 1, 0.04, 0, 2),
		g("bfs", "kron", 16, 0.50, 0, 1.5),
		g("bfs", "urand", 16, 0.84, 0, 1.2),
		g("cc", "twitter", 18, 0.35, 0, 2),
		g("cc", "web", 30, 0.24, 0, 2),
		g("cc", "road", 1, 0.025, 0, 2.5),
		g("cc", "kron", 16, 0.40, 0, 2),
		g("cc", "urand", 16, 0.46, 0, 2),
		g("pr", "twitter", 18, 0.28, 0.08, 6),
		g("pr", "web", 30, 0.22, 0.06, 6),
		g("pr", "road", 1, 0.19, 0.02, 6),
		g("pr", "kron", 16, 0.32, 0.08, 6),
		g("pr", "urand", 16, 0.36, 0.09, 6),
		g("sssp", "twitter", 18, 0.48, 0, 1.5),
		g("sssp", "web", 30, 0.33, 0, 1.5),
		g("sssp", "road", 1, 0.09, 0, 2),
		g("sssp", "kron", 16, 0.86, 0, 1.2),
		g("sssp", "urand", 16, 0.60, 0, 1.5),
		g("tc", "twitter", 18, 0.012, 0, 3),
		g("tc", "web", 30, 0.008, 0, 3),
		g("tc", "road", 1, 0.004, 0, 3),
		g("tc", "kron", 16, 0.04, 0, 3),
		g("tc", "urand", 16, 0.21, 0, 2.5),
	)

	// TPC-H on MySQL, 22 queries at scale factor ~30: scan- and
	// join-heavy, moderate MLP. Q21 is the third deceptive workload
	// (store-stall dominated four-way join).
	q := func(n int, fp, lat, bw, store float64) Workload {
		return mk(tpchName(n), TPCH, fp, lat, bw, store, 4, 0.9)
	}
	add(
		q(1, 24, 0.14, 0.03, 0),
		q(2, 8, 0.05, 0, 0),
		q(3, 24, 0.12, 0.02, 0),
		q(4, 16, 0.09, 0, 0),
		q(5, 24, 0.16, 0.02, 0),
		q(6, 24, 0.04, 0.005, 0),
		q(7, 24, 0.21, 0, 0),
		q(8, 24, 0.22, 0, 0),
		q(9, 32, 0.31, 0.02, 0),
		q(10, 24, 0.13, 0, 0),
		q(11, 8, 0.0078, 0, 0),
		q(12, 16, 0.06, 0, 0),
		q(13, 16, 0.22, 0, 0),
		q(14, 16, 0.08, 0, 0),
		q(15, 16, 0.07, 0, 0),
		q(16, 8, 0.025, 0, 0),
		q(17, 24, 0.26, 0, 0),
		q(18, 32, 0.33, 0, 0),
		q(19, 16, 0.10, 0, 0),
		q(20, 16, 0.008, 0, 0),
		q(21, 32, 0.38, 0.01, 0.342),
		q(22, 8, 0.006, 0, 0),
	)

	// SPEC CPU 2017, all 43 benchmarks. The memory-sensitive trio
	// (mcf, omnetpp, xalancbmk) and the bandwidth-bound FP codes
	// (bwaves, lbm, fotonik3d, roms, pop2, cactuBSSN) carry the
	// sensitivity; the rest are compute-bound.
	c := func(name string, fp, lat, bw, mlp float64) Workload {
		return mk(name, SPECCPU, fp, lat, bw, 0, mlp, 0.8)
	}
	add(
		// SPECrate 2017 Integer.
		c("500.perlbench_r", 2, 0.007, 0, 4),
		c("502.gcc_r", 9, 0.06, 0, 4),
		c("505.mcf_r", 4, 0.42, 0, 2),
		c("520.omnetpp_r", 1, 0.36, 0, 2),
		c("523.xalancbmk_r", 1, 0.30, 0, 3),
		c("525.x264_r", 1, 0.005, 0, 5),
		c("531.deepsjeng_r", 7, 0.012, 0, 4),
		c("541.leela_r", 1, 0.006, 0, 4),
		c("548.exchange2_r", 1, 0.003, 0, 4),
		c("557.xz_r", 16, 0.11, 0, 3),
		// SPECrate 2017 Floating Point.
		c("503.bwaves_r", 12, 0.10, 0.06, 6),
		c("507.cactuBSSN_r", 7, 0.13, 0.03, 5),
		c("508.namd_r", 1, 0.006, 0, 5),
		c("510.parest_r", 2, 0.09, 0, 4),
		c("511.povray_r", 1, 0.003, 0, 5),
		c("519.lbm_r", 3, 0.16, 0.09, 7),
		c("521.wrf_r", 1, 0.07, 0.02, 5),
		c("526.blender_r", 1, 0.008, 0, 5),
		c("527.cam4_r", 1, 0.045, 0.005, 5),
		c("538.imagick_r", 1, 0.004, 0, 5),
		c("544.nab_r", 1, 0.007, 0, 5),
		c("549.fotonik3d_r", 10, 0.19, 0.07, 6),
		c("554.roms_r", 10, 0.12, 0.04, 6),
		// SPECspeed 2017 Integer.
		c("600.perlbench_s", 2, 0.0078, 0, 4),
		c("602.gcc_s", 13, 0.08, 0, 4),
		c("605.mcf_s", 16, 0.48, 0, 2),
		c("620.omnetpp_s", 1, 0.40, 0, 2),
		c("623.xalancbmk_s", 1, 0.33, 0, 3),
		c("625.x264_s", 16, 0.006, 0, 5),
		c("631.deepsjeng_s", 16, 0.015, 0, 4),
		c("641.leela_s", 1, 0.007, 0, 4),
		c("648.exchange2_s", 1, 0.004, 0, 4),
		c("657.xz_s", 16, 0.13, 0, 3),
		// SPECspeed 2017 Floating Point.
		c("603.bwaves_s", 12, 0.15, 0.08, 6),
		c("607.cactuBSSN_s", 7, 0.15, 0.04, 5),
		c("619.lbm_s", 4, 0.19, 0.12, 7),
		c("621.wrf_s", 1, 0.08, 0.03, 5),
		c("627.cam4_s", 1, 0.06, 0.02, 5),
		c("628.pop2_s", 2, 0.09, 0.04, 6),
		c("638.imagick_s", 1, 0.005, 0, 5),
		c("644.nab_s", 1, 0.008, 0, 5),
		c("649.fotonik3d_s", 10, 0.22, 0.09, 6),
		c("654.roms_s", 10, 0.14, 0.05, 6),
	)

	// PARSEC 3.0: mostly mild; canneal (pointer chasing over a large
	// netlist) and streamcluster (bandwidth-bound) are the exceptions.
	pa := func(name string, fp, lat, bw, mlp float64) Workload {
		return mk("parsec-"+name, PARSEC, fp, lat, bw, 0, mlp, 0.9)
	}
	add(
		pa("blackscholes", 1, 0.004, 0, 4),
		pa("bodytrack", 1, 0.008, 0, 4),
		pa("canneal", 16, 0.38, 0, 1.5),
		pa("dedup", 8, 0.10, 0, 3),
		pa("facesim", 4, 0.055, 0, 4),
		pa("ferret", 2, 0.05, 0, 3),
		pa("fluidanimate", 4, 0.06, 0, 4),
		pa("freqmine", 2, 0.04, 0, 3),
		pa("raytrace", 2, 0.015, 0, 4),
		pa("streamcluster", 8, 0.30, 0.07, 6),
		pa("swaptions", 1, 0.003, 0, 4),
		pa("vips", 2, 0.02, 0, 4),
		pa("x264", 1, 0.006, 0, 5),
	)

	// SPLASH-2x: the one class with no >25% workload at the 182% level
	// (§3.3). The ocean/fft/radix kernels are bandwidth-leaning.
	sp := func(name string, fp, lat, bw, mlp float64) Workload {
		return mk("splash2x-"+name, SPLASH2x, fp, lat, bw, 0, mlp, 0.9)
	}
	add(
		sp("barnes", 4, 0.10, 0, 3),
		sp("cholesky", 2, 0.05, 0, 4),
		sp("fft", 8, 0.20, 0.02, 6),
		sp("fmm", 4, 0.04, 0, 3),
		sp("lu_cb", 2, 0.06, 0, 4),
		sp("lu_ncb", 2, 0.09, 0, 4),
		sp("ocean_cp", 16, 0.20, 0.03, 6),
		sp("ocean_ncp", 16, 0.24, 0.03, 6),
		sp("radiosity", 2, 0.007, 0, 3),
		sp("radix", 8, 0.18, 0.04, 6),
		sp("raytrace", 2, 0.0078, 0, 4),
		sp("volrend", 1, 0.02, 0, 4),
		sp("water_nsquared", 1, 0.005, 0, 4),
		sp("water_spatial", 1, 0.008, 0, 4),
	)

	return ws
}

func tpchName(n int) string { return fmt.Sprintf("tpch-q%02d", n) }

// Catalogue returns all 158 workloads. The returned slice is a copy, so
// callers may reorder or mutate it freely.
func Catalogue() []Workload {
	return append([]Workload(nil), catalogue...)
}

// ByClass returns the workloads of one class, in catalogue order.
func ByClass(c Class) []Workload {
	var out []Workload
	for _, w := range catalogue {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range catalogue {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// InternalWorkloads returns the four Azure internal services used in the
// production zNUMA experiment (Figure 15): video conferencing, database,
// KV store, and business analytics.
func InternalWorkloads() []Workload {
	names := []string{"P1-video", "P2-database", "P3-kvstore", "P4-analytics"}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, ok := ByName(n)
		if !ok {
			panic("workload: internal workload missing: " + n)
		}
		out = append(out, w)
	}
	return out
}
