package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pond/internal/stats"
)

// statsRand and statsSpearman keep the stats dependency localized.
func statsRand(seed int64) *stats.Rand { return stats.NewRand(seed) }

func statsSpearman(a, b []float64) float64 { return stats.Spearman(a, b) }

func TestCatalogueHas158Workloads(t *testing.T) {
	if got := len(Catalogue()); got != 158 {
		t.Fatalf("catalogue has %d workloads, want 158 (§6.1)", got)
	}
}

func TestCatalogueNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Catalogue() {
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestCatalogueClassCounts(t *testing.T) {
	want := map[Class]int{
		Proprietary: 13, // P1..P13
		Redis:       6,  // YCSB A-F
		VoltDB:      6,  // YCSB A-F
		Spark:       11, // HiBench
		GAPBS:       30, // 6 kernels x 5 graphs
		TPCH:        22, // queries 1-22
		SPECCPU:     43, // full SPEC CPU 2017
		PARSEC:      13,
		SPLASH2x:    14,
	}
	got := map[Class]int{}
	for _, w := range Catalogue() {
		got[w.Class]++
	}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("class %v has %d workloads, want %d", c, got[c], n)
		}
	}
}

func TestCatalogueReturnsCopy(t *testing.T) {
	a := Catalogue()
	a[0].Name = "mutated"
	if Catalogue()[0].Name == "mutated" {
		t.Fatal("Catalogue exposes internal state")
	}
}

func TestByClassMatchesCatalogue(t *testing.T) {
	total := 0
	for _, c := range Classes() {
		ws := ByClass(c)
		for _, w := range ws {
			if w.Class != c {
				t.Fatalf("ByClass(%v) returned %v", c, w)
			}
		}
		total += len(ws)
	}
	if total != 158 {
		t.Fatalf("classes sum to %d workloads, want 158", total)
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("505.mcf_r")
	if !ok || w.Class != SPECCPU {
		t.Fatalf("ByName(505.mcf_r) = %v, %v", w, ok)
	}
	if _, ok := ByName("no-such-workload"); ok {
		t.Fatal("ByName found a nonexistent workload")
	}
}

func TestInternalWorkloadsMatchFigure15(t *testing.T) {
	ws := InternalWorkloads()
	if len(ws) != 4 {
		t.Fatalf("internal workloads = %d, want 4", len(ws))
	}
	want := map[string]float64{
		"P1-video":     0.0025,
		"P2-database":  0.0006,
		"P3-kvstore":   0.0011,
		"P4-analytics": 0.0038,
	}
	for _, w := range ws {
		if want[w.Name] != w.MetadataTraffic {
			t.Errorf("%s metadata traffic = %v, want %v", w.Name, w.MetadataTraffic, want[w.Name])
		}
	}
}

func TestSlowdownZeroWhenLocal(t *testing.T) {
	for _, w := range Catalogue() {
		if got := w.Slowdown(Ratio222, 0); got != 0 {
			t.Fatalf("%s: slowdown with 0 remote = %v", w.Name, got)
		}
	}
}

func TestSlowdownZeroAtUnitRatio(t *testing.T) {
	w, _ := ByName("505.mcf_r")
	if got := w.Slowdown(1.0, 1.0); got != 0 {
		t.Fatalf("slowdown at ratio 1.0 = %v (bandwidth term should be 0 here)", got)
	}
}

func TestSlowdownZeroAtUnitRatioBandwidthBound(t *testing.T) {
	// Bandwidth-bound workloads still pay BWSens at ratio 1 because the
	// link, not the latency, is the bottleneck.
	w, _ := ByName("519.lbm_r")
	if got := w.Slowdown(1.0, 1.0); got != w.BWSens {
		t.Fatalf("lbm at ratio 1 = %v, want BWSens %v", got, w.BWSens)
	}
}

func TestSlowdownPanicsOnBadRatio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ratio < 1")
		}
	}()
	Catalogue()[0].Slowdown(0.9, 1)
}

func TestSlowdownPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for fraction > 1")
		}
	}()
	Catalogue()[0].Slowdown(1.5, 1.5)
}

func TestSlowdownMonotoneInLatency(t *testing.T) {
	for _, w := range Catalogue() {
		if w.Slowdown(Ratio222, 1) < w.Slowdown(Ratio182, 1) {
			t.Fatalf("%s: slowdown not monotone in latency", w.Name)
		}
	}
}

func TestSlowdownMonotoneInRemoteFraction(t *testing.T) {
	for _, w := range Catalogue() {
		prev := -1.0
		for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
			s := w.Slowdown(Ratio182, f)
			if s < prev {
				t.Fatalf("%s: slowdown not monotone in remote fraction", w.Name)
			}
			prev = s
		}
	}
}

func TestSpillSlowdownMonotone(t *testing.T) {
	for _, w := range Catalogue() {
		prev := -1.0
		for _, p := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.75, 1} {
			s := w.SpillSlowdown(Ratio182, p)
			if s < prev-1e-12 {
				t.Fatalf("%s: spill slowdown not monotone at %v", w.Name, p)
			}
			prev = s
		}
	}
}

func TestSpillZeroIsMetadataOnly(t *testing.T) {
	w, _ := ByName("P1-video")
	if got := w.RemoteAccessFraction(0); got != w.MetadataTraffic {
		t.Fatalf("zero spill remote fraction = %v, want metadata %v", got, w.MetadataTraffic)
	}
}

func TestSpillFullIsCapped(t *testing.T) {
	for _, w := range Catalogue() {
		if got := w.RemoteAccessFraction(1); got > 1 {
			t.Fatalf("%s: remote fraction %v > 1", w.Name, got)
		}
	}
}

func TestSpillImmediateImpactForSkewedWorkloads(t *testing.T) {
	// GAPBS skew 0.5: spilling 20% of the footprint exposes ~45% of
	// accesses — the "immediate impact" of Figure 16.
	w, _ := ByName("gapbs-bc-twitter")
	if got := w.RemoteAccessFraction(0.2); got < 0.4 {
		t.Fatalf("skewed workload remote fraction at 20%% spill = %v, want > 0.4", got)
	}
}

func TestFigure16SevereSpillRange(t *testing.T) {
	// Figure 16: some workloads slow 30-35% with 20-75% spilled and up
	// to ~50% when fully pool-backed (at the 182% level).
	found := false
	for _, w := range Catalogue() {
		s20 := w.SpillSlowdown(Ratio182, 0.2)
		s100 := w.SpillSlowdown(Ratio182, 1.0)
		if s20 >= 0.25 && s100 >= 0.45 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no workload shows the severe spill profile of Figure 16")
	}
}

func TestTMAFractionsWithinUnitInterval(t *testing.T) {
	for _, w := range Catalogue() {
		for name, v := range map[string]float64{
			"dram":    w.DRAMBoundFrac(),
			"store":   w.StoreBoundFrac(),
			"memory":  w.MemoryBoundFrac(),
			"backend": w.BackendBoundFrac(),
		} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: %s-bound fraction %v outside [0,1]", w.Name, name, v)
			}
		}
	}
}

func TestTMAHierarchy(t *testing.T) {
	// backend >= memory >= dram, per the TMA decomposition.
	for _, w := range Catalogue() {
		if w.MemoryBoundFrac() < w.DRAMBoundFrac()-1e-12 {
			t.Fatalf("%s: memory-bound < DRAM-bound", w.Name)
		}
		if w.BackendBoundFrac() < w.MemoryBoundFrac()-1e-12 {
			t.Fatalf("%s: backend-bound < memory-bound", w.Name)
		}
	}
}

func TestDeceptiveWorkloadsExist(t *testing.T) {
	// Finding 4: multiple workloads exceed 20% slowdown with only ~2-4%
	// DRAM-boundedness. These defeat the single-counter heuristics.
	n := 0
	for _, w := range Catalogue() {
		if w.SlowdownPct(Ratio182, 1) > 20 && w.DRAMBoundFrac() < 0.05 {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("found %d deceptive workloads, want >= 2 (Finding 4)", n)
	}
}

func TestProprietaryAreNUMAAware(t *testing.T) {
	for _, w := range Catalogue() {
		if (w.Class == Proprietary) != w.NUMAAware {
			t.Fatalf("%s: NUMAAware flag inconsistent with class", w.Name)
		}
	}
}

func TestParametersPlausible(t *testing.T) {
	for _, w := range Catalogue() {
		if w.FootprintGB <= 0 || w.FootprintGB > 256 {
			t.Errorf("%s: footprint %v GB implausible", w.Name, w.FootprintGB)
		}
		if w.LatSens < 0 || w.LatSens > 1.1 {
			t.Errorf("%s: LatSens %v implausible", w.Name, w.LatSens)
		}
		if w.StoreSens > w.LatSens {
			t.Errorf("%s: StoreSens %v exceeds LatSens %v", w.Name, w.StoreSens, w.LatSens)
		}
		if w.MLP < 1 || w.MLP > 8 {
			t.Errorf("%s: MLP %v outside [1,8]", w.Name, w.MLP)
		}
		if w.Skew < 0.3 || w.Skew > 1.5 {
			t.Errorf("%s: Skew %v implausible", w.Name, w.Skew)
		}
	}
}

func TestClassStringNames(t *testing.T) {
	if GAPBS.String() != "GAPBS" || TPCH.String() != "TPC-H" {
		t.Fatal("class names wrong")
	}
	if !strings.HasPrefix(Class(42).String(), "Class(") {
		t.Fatal("unknown class should render as Class(n)")
	}
}

func TestWorkloadString(t *testing.T) {
	w, _ := ByName("redis-ycsb-a")
	if got := w.String(); got != "redis-ycsb-a (Redis)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRatioConstants(t *testing.T) {
	if math.Abs(Ratio182-1.82) > 0.01 {
		t.Fatalf("Ratio182 = %v", Ratio182)
	}
	if math.Abs(Ratio222-2.217) > 0.01 {
		t.Fatalf("Ratio222 = %v", Ratio222)
	}
}

// Property: slowdown is linear in remote fraction, so half the fraction
// gives half the slowdown.
func TestSlowdownLinearityProperty(t *testing.T) {
	ws := Catalogue()
	f := func(i uint16, frac float64) bool {
		w := ws[int(i)%len(ws)]
		frac = math.Mod(math.Abs(frac), 1)
		if math.IsNaN(frac) {
			return true
		}
		full := w.Slowdown(Ratio182, frac)
		half := w.Slowdown(Ratio182, frac/2)
		return math.Abs(full-2*half) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: remote access fraction is within [0,1] for any spill fraction.
func TestRemoteAccessFractionBoundedProperty(t *testing.T) {
	ws := Catalogue()
	f := func(i uint16, spill float64) bool {
		w := ws[int(i)%len(ws)]
		spill = math.Mod(math.Abs(spill), 1)
		if math.IsNaN(spill) {
			return true
		}
		got := w.RemoteAccessFraction(spill)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessTraceBounds(t *testing.T) {
	w, _ := ByName("gapbs-bc-twitter")
	r := statsRand(1)
	trace := w.AccessTrace(100, 500, r)
	if len(trace) != 500 {
		t.Fatalf("trace length = %d", len(trace))
	}
	for _, p := range trace {
		if p < 0 || p >= 100 {
			t.Fatalf("page %d out of range", p)
		}
	}
	if w.AccessTrace(0, 10, r) != nil || w.AccessTrace(10, 0, r) != nil {
		t.Fatal("degenerate traces should be nil")
	}
}

func TestAccessTraceSkewConcentrates(t *testing.T) {
	// A skewed workload (GAPBS, Skew 0.5) concentrates accesses on hot
	// pages far more than a uniform one (Redis, Skew 1.0).
	skewed, _ := ByName("gapbs-bc-twitter")
	uniform, _ := ByName("redis-ycsb-a")
	r := statsRand(2)
	hot := func(w Workload) float64 {
		trace := w.AccessTrace(100, 4000, r)
		n := 0
		for _, p := range trace {
			if p < 10 {
				n++
			}
		}
		return float64(n) / float64(len(trace))
	}
	hs, hu := hot(skewed), hot(uniform)
	if hs < hu+0.15 {
		t.Fatalf("skewed hot share %.2f not above uniform %.2f", hs, hu)
	}
}

func TestTouchedPagesFracMonotone(t *testing.T) {
	w, _ := ByName("P2-database")
	prev := 0.0
	for _, n := range []int{10, 100, 1000, 10000} {
		frac := w.TouchedPagesFrac(200, n)
		if frac < prev || frac > 1 {
			t.Fatalf("touched frac %v at n=%d (prev %v)", frac, n, prev)
		}
		prev = frac
	}
	if w.TouchedPagesFrac(0, 10) != 0 {
		t.Fatal("degenerate input")
	}
}

func TestSlowdownRankPreservedAcrossLatencies(t *testing.T) {
	// §3.3: workloads performing well at 182% also perform well at 222%
	// — the orderings should correlate almost perfectly.
	var s182, s222 []float64
	for _, w := range Catalogue() {
		s182 = append(s182, w.Slowdown(Ratio182, 1))
		s222 = append(s222, w.Slowdown(Ratio222, 1))
	}
	if rho := statsSpearman(s182, s222); rho < 0.98 {
		t.Fatalf("rank correlation = %v, want ~1", rho)
	}
}

func TestGAPBSGridComplete(t *testing.T) {
	kernels := []string{"bc", "bfs", "cc", "pr", "sssp", "tc"}
	graphs := []string{"twitter", "web", "road", "kron", "urand"}
	for _, k := range kernels {
		for _, g := range graphs {
			name := "gapbs-" + k + "-" + g
			if _, ok := ByName(name); !ok {
				t.Errorf("missing GAPBS entry %s", name)
			}
		}
	}
}

func TestTPCHQueriesComplete(t *testing.T) {
	for q := 1; q <= 22; q++ {
		name := tpchName(q)
		w, ok := ByName(name)
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if w.Class != TPCH {
			t.Errorf("%s in class %v", name, w.Class)
		}
	}
}

func TestSPECHasBothRateAndSpeed(t *testing.T) {
	rate, speed := 0, 0
	for _, w := range ByClass(SPECCPU) {
		if strings.HasSuffix(w.Name, "_r") {
			rate++
		}
		if strings.HasSuffix(w.Name, "_s") {
			speed++
		}
	}
	if rate != 23 || speed != 20 {
		t.Errorf("SPEC split = %d rate / %d speed, want 23/20", rate, speed)
	}
}
