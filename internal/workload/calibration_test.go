package workload

import "testing"

// These tests pin the catalogue to the published slowdown distribution of
// Figures 4 and 5. Tolerances are a few percentage points: the paper
// reports rounded bucket fractions, and the reproduction validates shape,
// not Azure's exact hardware numbers.

func slowdownsPct(ratio float64) []float64 {
	var out []float64
	for _, w := range Catalogue() {
		out = append(out, w.SlowdownPct(ratio, 1))
	}
	return out
}

func fracWithin(xs []float64, lo, hi float64) float64 {
	n := 0
	for _, x := range xs {
		if x >= lo && x < hi {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func TestFigure4BucketsAt182(t *testing.T) {
	xs := slowdownsPct(Ratio182)
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"<1%", fracWithin(xs, -1, 1), 0.26, 0.05},
		{"<5% cumulative", fracWithin(xs, -1, 5), 0.43, 0.05},
		{">25%", fracWithin(xs, 25, 1e9), 0.21, 0.05},
	}
	for _, c := range cases {
		if c.got < c.want-c.tol || c.got > c.want+c.tol {
			t.Errorf("182%%: fraction %s = %.3f, want %.2f±%.2f (Figure 4)", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestFigure4BucketsAt222(t *testing.T) {
	xs := slowdownsPct(Ratio222)
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"<1%", fracWithin(xs, -1, 1), 0.23, 0.05},
		{"<5% cumulative", fracWithin(xs, -1, 5), 0.37, 0.05},
		{">25%", fracWithin(xs, 25, 1e9), 0.37, 0.05},
	}
	for _, c := range cases {
		if c.got < c.want-c.tol || c.got > c.want+c.tol {
			t.Errorf("222%%: fraction %s = %.3f, want %.2f±%.2f (Figure 4)", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestFigure5OutliersAt222(t *testing.T) {
	// Figure 5: exactly three outliers above 100% slowdown at the 222%
	// level, with a maximum of ~124%.
	xs := slowdownsPct(Ratio222)
	outliers := 0
	max := 0.0
	for _, x := range xs {
		if x > 100 {
			outliers++
		}
		if x > max {
			max = x
		}
	}
	if outliers != 3 {
		t.Errorf("outliers >100%% at 222%% = %d, want 3 (Figure 5)", outliers)
	}
	if max < 110 || max > 130 {
		t.Errorf("max slowdown at 222%% = %.1f%%, want ~124%% (Figure 5)", max)
	}
}

func TestFigure4NoOutliersAbove100At182(t *testing.T) {
	for _, w := range Catalogue() {
		if w.SlowdownPct(Ratio182, 1) > 100 {
			t.Errorf("%s exceeds 100%% at the 182%% level; Figure 4 tops out below that", w.Name)
		}
	}
}

func TestEveryClassSpansTheRangeExceptSPLASH2x(t *testing.T) {
	// §3.3: every class has at least one workload <5% and one >25% at
	// the 182% level — except SPLASH2x, which never exceeds 25%.
	for _, c := range Classes() {
		var low, high bool
		for _, w := range ByClass(c) {
			s := w.SlowdownPct(Ratio182, 1)
			if s < 5 {
				low = true
			}
			if s > 25 {
				high = true
			}
		}
		if !low {
			t.Errorf("class %v has no workload under 5%% slowdown", c)
		}
		if c == SPLASH2x {
			if high {
				t.Errorf("SPLASH2x should have no workload above 25%% at 182%% (§3.3)")
			}
			continue
		}
		if !high {
			t.Errorf("class %v has no workload above 25%% slowdown", c)
		}
	}
}

func TestGAPBSIsWorstClass(t *testing.T) {
	classMean := func(c Class) float64 {
		var sum float64
		ws := ByClass(c)
		for _, w := range ws {
			sum += w.SlowdownPct(Ratio182, 1)
		}
		return sum / float64(len(ws))
	}
	gapbs := classMean(GAPBS)
	for _, c := range Classes() {
		if c == GAPBS {
			continue
		}
		if classMean(c) >= gapbs {
			t.Errorf("class %v mean slowdown %.1f >= GAPBS %.1f; GAPBS should be worst (§3.3)",
				c, classMean(c), gapbs)
		}
	}
}

func TestProprietaryDistribution(t *testing.T) {
	// §3.3: of the 13 production workloads, 6 see <1%, 2 see ~5%, and
	// the remaining 5 are impacted by 10-28%.
	var under1, around5, heavy int
	for _, w := range ByClass(Proprietary) {
		s := w.SlowdownPct(Ratio182, 1)
		switch {
		case s < 1:
			under1++
		case s >= 3 && s <= 7:
			around5++
		case s >= 9 && s <= 29:
			heavy++
		}
	}
	if under1 != 6 || around5 != 2 || heavy != 5 {
		t.Errorf("proprietary split = %d/%d/%d, want 6 (<1%%) / 2 (~5%%) / 5 (10-28%%)",
			under1, around5, heavy)
	}
}

func TestWithinClassVarianceExceedsAcrossClass(t *testing.T) {
	// §3.3: variability within each workload class is typically much
	// higher than across classes. Compare the GAPBS within-class spread
	// to the spread of class means.
	var classMeans []float64
	for _, c := range Classes() {
		ws := ByClass(c)
		var sum float64
		for _, w := range ws {
			sum += w.SlowdownPct(Ratio182, 1)
		}
		classMeans = append(classMeans, sum/float64(len(ws)))
	}
	meanSpread := maxOf(classMeans) - minOf(classMeans)

	gap := ByClass(GAPBS)
	var gapS []float64
	for _, w := range gap {
		gapS = append(gapS, w.SlowdownPct(Ratio182, 1))
	}
	gapSpread := maxOf(gapS) - minOf(gapS)
	if gapSpread <= meanSpread {
		t.Errorf("GAPBS within-class spread %.1f <= across-class spread %.1f", gapSpread, meanSpread)
	}
}

func TestHigherLatencyMagnifiesSlowdowns(t *testing.T) {
	// §3.3: workloads performing well at 182% also perform well at
	// 222%; badly-hit workloads get hit harder. Check order is largely
	// preserved: the slowdown at 222% must be >= the one at 182% and
	// scale by the latency excess ratio for latency-driven workloads.
	for _, w := range Catalogue() {
		s182 := w.Slowdown(Ratio182, 1)
		s222 := w.Slowdown(Ratio222, 1)
		if s222 < s182 {
			t.Fatalf("%s: 222%% slowdown below 182%% slowdown", w.Name)
		}
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
