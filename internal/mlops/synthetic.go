package mlops

import (
	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/pmu"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/workload"
)

// SyntheticLoop drives a standalone Manager through n (decision,
// outcome) pairs with a retrain tick every tickEvery outcomes — the
// retrain hot path (shadow scoring, window bookkeeping, challenger
// training, promotion verdicts) without the surrounding fleet loop.
// BenchmarkRetrainLoop and the CI benchmark gate time exactly this; the
// work is fixed and deterministic for a given (n, tickEvery, cfg.Seed).
func SyntheticLoop(n, tickEvery int, cfg Config) Quality {
	cfg = cfg.withDefaults()
	srv := predict.NewServer(nil, predict.HistoryQuantileUM{})
	m := NewManager(cfg, 0, srv, nil, 0, predict.HistoryQuantileUM{}, 1.82, 0.05, nil)
	r := stats.NewRand(cfg.Seed)
	catalogue := workload.Catalogue()
	types := cluster.VMTypes()
	for i := 0; i < n; i++ {
		w := catalogue[i%len(catalogue)]
		base := 0.2 + 0.6*float64(i%8)/8
		uf := stats.Clamp(base+r.Bounded(-0.05, 0.05), 0, 1)
		vm := cluster.VMRequest{
			ID:       cluster.VMID(i + 1),
			Customer: cluster.CustomerID(1 + i%16),
			Type:     types[i%len(types)],
			GroundTruth: cluster.VMGroundTruth{
				UntouchedFrac: uf,
				Workload:      w,
			},
		}
		feats := []float64{
			vm.Type.MemoryGB, float64(vm.Type.Cores), vm.Type.GBPerCore(),
			1, 1, float64(i % 64), 5, base - 0.1, base, base, base + 0.05, base + 0.1,
		}
		m.ObserveDecision(vm, nil, feats, core.Decision{})
		m.ObserveOutcome(vm, pmu.Sample(w, r), true)
		if (i+1)%tickEvery == 0 {
			m.Tick(float64(i + 1))
		}
	}
	return m.Quality()
}
