package mlops

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"pond/internal/cluster"
	"pond/internal/ml"
	"pond/internal/pmu"
	"pond/internal/predict"
)

// Whole-lifecycle state serialization: where Snapshot dumps the live
// models for auditing, State captures everything a Manager holds — both
// families' contender slots, rolling holdout windows, pending shadow
// scores, training buffers, and the event history — so a paused fleet
// run can be restored without replaying the simulated time that
// produced the models.

// ObsState is one completed VM's shadow-scoring result.
type ObsState struct {
	ChampVer  int     `json:"champ_ver"`
	ChallVer  int     `json:"chall_ver"`
	FbVer     int     `json:"fb_ver"`
	ChampLoss float64 `json:"champ_loss"`
	ChallLoss float64 `json:"chall_loss"`
	FbLoss    float64 `json:"fb_loss"`
}

// LifecycleState is one family's version bookkeeping and rolling window.
type LifecycleState struct {
	ChampVer     int        `json:"champ_ver"`
	ChallVer     int        `json:"chall_ver"`
	FbVer        int        `json:"fb_ver"`
	NextVer      int        `json:"next_ver"`
	Window       []ObsState `json:"window,omitempty"`
	SumChampLoss float64    `json:"sum_champ_loss,omitempty"`
	Outcomes     int        `json:"outcomes,omitempty"`
}

// PendingState is one in-flight VM's untouched-memory shadow scores.
type PendingState struct {
	VM       cluster.VMID `json:"vm"`
	Feats    []float64    `json:"feats"`
	Champ    float64      `json:"champ"`
	Chall    float64      `json:"chall"`
	Fb       float64      `json:"fb"`
	ChampVer int          `json:"champ_ver"`
	ChallVer int          `json:"chall_ver"`
	FbVer    int          `json:"fb_ver"`
}

// UMModelState is one untouched-memory slot's wire form. Margin is
// carried beside the ensemble because the GBM export does not include
// it.
type UMModelState struct {
	Model  json.RawMessage `json:"model"`
	Margin float64         `json:"margin,omitempty"`
}

// InsModelState is one insensitivity slot's wire form with its serving
// threshold.
type InsModelState struct {
	Model     json.RawMessage `json:"model"`
	Threshold float64         `json:"threshold"`
}

// State is the full serializable state of a Manager.
type State struct {
	UMChamp *UMModelState  `json:"um_champ,omitempty"`
	UMChall *UMModelState  `json:"um_chall,omitempty"`
	UMFb    *UMModelState  `json:"um_fb,omitempty"`
	UMLC    LifecycleState `json:"um_lc"`
	Pending []PendingState `json:"pending,omitempty"`
	UMX     [][]float64    `json:"um_x,omitempty"`
	UMY     []float64      `json:"um_y,omitempty"`
	UMMeta  []trainMeta    `json:"um_meta,omitempty"`

	InsChamp *InsModelState `json:"ins_champ,omitempty"`
	InsChall *InsModelState `json:"ins_chall,omitempty"`
	InsFb    *InsModelState `json:"ins_fb,omitempty"`
	InsLC    LifecycleState `json:"ins_lc"`
	InsX     [][]float64    `json:"ins_x,omitempty"`
	InsY     []float64      `json:"ins_y,omitempty"`
	InsMeta  []trainMeta    `json:"ins_meta,omitempty"`

	Events []Event `json:"events,omitempty"`
}

func lifecycleState(lc lifecycle) LifecycleState {
	s := LifecycleState{
		ChampVer: lc.champVer, ChallVer: lc.challVer, FbVer: lc.fbVer, NextVer: lc.nextVer,
		SumChampLoss: lc.sumChampLoss, Outcomes: lc.outcomes,
	}
	for _, o := range lc.window {
		s.Window = append(s.Window, ObsState{
			ChampVer: o.champVer, ChallVer: o.challVer, FbVer: o.fbVer,
			ChampLoss: o.champLoss, ChallLoss: o.challLoss, FbLoss: o.fbLoss,
		})
	}
	return s
}

func setLifecycle(lc *lifecycle, s LifecycleState, family string) {
	lc.family = family
	lc.champVer, lc.challVer, lc.fbVer, lc.nextVer = s.ChampVer, s.ChallVer, s.FbVer, s.NextVer
	lc.window = nil
	for _, o := range s.Window {
		lc.window = append(lc.window, obs{
			champVer: o.ChampVer, challVer: o.ChallVer, fbVer: o.FbVer,
			champLoss: o.ChampLoss, challLoss: o.ChallLoss, fbLoss: o.FbLoss,
		})
	}
	lc.sumChampLoss = s.SumChampLoss
	lc.outcomes = s.Outcomes
}

func metaList(m map[int]trainMeta) []trainMeta {
	out := make([]trainMeta, 0, len(m))
	for _, tm := range m {
		out = append(out, tm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ver < out[j].Ver })
	return out
}

func umModelState(u predict.Untouched) (*UMModelState, error) {
	if u == nil {
		return nil, nil
	}
	if f, ok := u.(predict.FixedUntouched); ok {
		// marshalUM keeps only the heuristic's name; Frac must ride along.
		raw, err := json.Marshal(map[string]any{"kind": "heuristic", "name": f.Name(), "frac": f.Frac})
		if err != nil {
			return nil, err
		}
		return &UMModelState{Model: raw}, nil
	}
	raw, err := marshalUM(u)
	if err != nil {
		return nil, err
	}
	s := &UMModelState{Model: raw}
	if g, ok := u.(*predict.GBMUntouched); ok {
		s.Margin = g.Margin
	}
	return s, nil
}

func insModelState(i predict.Insensitivity, thr float64) (*InsModelState, error) {
	if i == nil {
		return nil, nil
	}
	raw, err := marshalInsens(i)
	if err != nil {
		return nil, err
	}
	return &InsModelState{Model: raw, Threshold: thr}, nil
}

// UMState exports an untouched-memory model slot in the state wire
// form; the fleet pipeline reuses it for its release-train state.
func UMState(u predict.Untouched) (*UMModelState, error) { return umModelState(u) }

// LoadUMState rebuilds an untouched-memory model from its wire form,
// heuristics included (LoadUM only handles trained ensembles).
func LoadUMState(s *UMModelState) (predict.Untouched, error) {
	if s == nil {
		return nil, nil
	}
	var probe struct {
		Kind string  `json:"kind"`
		Name string  `json:"name"`
		Frac float64 `json:"frac"`
	}
	if err := json.Unmarshal(s.Model, &probe); err != nil {
		return nil, fmt.Errorf("mlops: um model state: %w", err)
	}
	switch probe.Kind {
	case "gbm":
		g, err := ml.ImportGBM(bytes.NewReader(s.Model))
		if err != nil {
			return nil, err
		}
		m := predict.WrapGBMUntouched(g)
		m.Margin = s.Margin
		return m, nil
	case "heuristic":
		switch probe.Name {
		case "history-quantile":
			return predict.HistoryQuantileUM{}, nil
		case "Fixed":
			return predict.FixedUntouched{Frac: probe.Frac}, nil
		}
	}
	return nil, fmt.Errorf("mlops: cannot rebuild um model kind %q name %q", probe.Kind, probe.Name)
}

// LoadInsensState rebuilds an insensitivity model from its wire form.
func LoadInsensState(s *InsModelState) (predict.Insensitivity, error) {
	if s == nil {
		return nil, nil
	}
	var probe struct {
		Kind string `json:"kind"`
		Name string `json:"name"`
	}
	if err := json.Unmarshal(s.Model, &probe); err != nil {
		return nil, fmt.Errorf("mlops: insens model state: %w", err)
	}
	switch probe.Kind {
	case "forest":
		f, err := ml.ImportForest(bytes.NewReader(s.Model))
		if err != nil {
			return nil, err
		}
		return predict.WrapForestModel(f), nil
	case "heuristic":
		switch probe.Name {
		case "Memory-Bound":
			return predict.CounterThreshold{Counter: pmu.MemoryBound}, nil
		case "DRAM-Bound":
			return predict.CounterThreshold{Counter: pmu.DRAMBound}, nil
		}
	}
	return nil, fmt.Errorf("mlops: cannot rebuild insens model kind %q name %q", probe.Kind, probe.Name)
}

// State captures the manager's full state for serialization.
func (m *Manager) State() (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s State
	var err error
	if s.UMChamp, err = umModelState(m.umChamp); err != nil {
		return State{}, err
	}
	if s.UMChall, err = umModelState(m.umChall); err != nil {
		return State{}, err
	}
	if s.UMFb, err = umModelState(m.umFb); err != nil {
		return State{}, err
	}
	s.UMLC = lifecycleState(m.umLC)

	ids := make([]cluster.VMID, 0, len(m.umPending))
	for id := range m.umPending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := m.umPending[id]
		s.Pending = append(s.Pending, PendingState{
			VM: id, Feats: append([]float64(nil), p.feats...),
			Champ: p.champ, Chall: p.chall, Fb: p.fb,
			ChampVer: p.champVer, ChallVer: p.challVer, FbVer: p.fbVer,
		})
	}
	for _, x := range m.umX {
		s.UMX = append(s.UMX, append([]float64(nil), x...))
	}
	s.UMY = append([]float64(nil), m.umY...)
	s.UMMeta = metaList(m.umMeta)

	if s.InsChamp, err = insModelState(m.insChamp, m.insChampThr); err != nil {
		return State{}, err
	}
	if s.InsChall, err = insModelState(m.insChall, m.insChallThr); err != nil {
		return State{}, err
	}
	if s.InsFb, err = insModelState(m.insFb, m.insFbThr); err != nil {
		return State{}, err
	}
	s.InsLC = lifecycleState(m.insLC)
	for _, x := range m.insX {
		s.InsX = append(s.InsX, append([]float64(nil), x...))
	}
	s.InsY = append([]float64(nil), m.insY...)
	s.InsMeta = metaList(m.insMeta)

	s.Events = append([]Event(nil), m.events...)
	return s, nil
}

// SetState restores a state captured by State onto a freshly built
// manager (same config, cell, server wiring). It rebuilds every model
// slot from its wire form and re-installs the serving pair — models and
// insensitivity threshold — without disturbing the serving generation,
// which the caller restores separately on the predict.Server.
func (m *Manager) SetState(s State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	if m.umChamp, err = LoadUMState(s.UMChamp); err != nil {
		return err
	}
	if m.umChall, err = LoadUMState(s.UMChall); err != nil {
		return err
	}
	if m.umFb, err = LoadUMState(s.UMFb); err != nil {
		return err
	}
	setLifecycle(&m.umLC, s.UMLC, FamilyUM)

	m.umPending = make(map[cluster.VMID]umPending, len(s.Pending))
	for _, p := range s.Pending {
		m.umPending[p.VM] = umPending{
			feats: append([]float64(nil), p.Feats...),
			champ: p.Champ, chall: p.Chall, fb: p.Fb,
			champVer: p.ChampVer, challVer: p.ChallVer, fbVer: p.FbVer,
		}
	}
	m.umX = nil
	for _, x := range s.UMX {
		m.umX = append(m.umX, append([]float64(nil), x...))
	}
	m.umY = append([]float64(nil), s.UMY...)
	m.umMeta = make(map[int]trainMeta, len(s.UMMeta))
	for _, tm := range s.UMMeta {
		m.umMeta[tm.Ver] = tm
	}

	if m.insChamp, err = LoadInsensState(s.InsChamp); err != nil {
		return err
	}
	if m.insChall, err = LoadInsensState(s.InsChall); err != nil {
		return err
	}
	if m.insFb, err = LoadInsensState(s.InsFb); err != nil {
		return err
	}
	m.insChampThr, m.insChallThr, m.insFbThr = 0, 0, 0
	if s.InsChamp != nil {
		m.insChampThr = s.InsChamp.Threshold
	}
	if s.InsChall != nil {
		m.insChallThr = s.InsChall.Threshold
	}
	if s.InsFb != nil {
		m.insFbThr = s.InsFb.Threshold
	}
	setLifecycle(&m.insLC, s.InsLC, FamilyInsens)
	m.insX = nil
	for _, x := range s.InsX {
		m.insX = append(m.insX, append([]float64(nil), x...))
	}
	m.insY = append([]float64(nil), s.InsY...)
	m.insMeta = make(map[int]trainMeta, len(s.InsMeta))
	for _, tm := range s.InsMeta {
		m.insMeta[tm.Ver] = tm
	}

	m.events = append([]Event(nil), s.Events...)
	m.pushThresholdLocked()
	return nil
}

// ServingModels returns the current champions (and the insensitivity
// serving threshold) so a restoring caller can re-pin the inference
// server.
func (m *Manager) ServingModels() (predict.Insensitivity, float64, predict.Untouched) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.insChamp, m.insChampThr, m.umChamp
}
