package mlops

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pond/internal/ml"
	"pond/internal/predict"
)

// Versioned model snapshots. The paper's pipeline exports retrained
// models (to ONNX) before the serving system picks them up (§5);
// ml/serialize.go plays the ONNX role here, and the snapshot adds the
// lifecycle metadata — version, role, training provenance, serving
// threshold — that makes a dump auditable.

// ModelSnapshot is one model in a lifecycle dump.
type ModelSnapshot struct {
	Cell   int    `json:"cell"`
	Family string `json:"family"` // um | insens
	Role   string `json:"role"`   // champion | challenger | fallback
	Ver    int    `json:"version"`
	Name   string `json:"name"`
	// TrainedAtSec and Rows are zero for version 0 (the bootstrap model,
	// trained offline or purely heuristic).
	TrainedAtSec float64 `json:"trained_at_sec,omitempty"`
	Rows         int     `json:"rows,omitempty"`
	// Threshold is the insensitivity serving threshold (insens only).
	Threshold float64 `json:"threshold,omitempty"`
	// Model is the ml/serialize wire form; {"kind":"heuristic",...} for
	// models with no tree ensemble underneath.
	Model json.RawMessage `json:"model"`
}

// Snapshot dumps every live model with its lifecycle metadata, champion
// first, in a deterministic order.
func (m *Manager) Snapshot() ([]ModelSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []ModelSnapshot
	add := func(family, role string, ver int, name string, thr float64, raw json.RawMessage) {
		s := ModelSnapshot{Cell: m.cell, Family: family, Role: role, Ver: ver, Name: name, Threshold: thr, Model: raw}
		meta, ok := m.umMeta[ver]
		if family == FamilyInsens {
			meta, ok = m.insMeta[ver]
		}
		if ok {
			s.TrainedAtSec = meta.AtSec
			s.Rows = meta.Rows
		}
		out = append(out, s)
	}

	umSlots := []struct {
		role  string
		model predict.Untouched
		ver   int
	}{
		{"champion", m.umChamp, m.umLC.champVer},
		{"challenger", m.umChall, m.umLC.challVer},
		{"fallback", m.umFb, m.umLC.fbVer},
	}
	for _, s := range umSlots {
		if s.model == nil {
			continue
		}
		raw, err := marshalUM(s.model)
		if err != nil {
			return nil, err
		}
		add(FamilyUM, s.role, s.ver, s.model.Name(), 0, raw)
	}

	insSlots := []struct {
		role  string
		model predict.Insensitivity
		ver   int
		thr   float64
	}{
		{"champion", m.insChamp, m.insLC.champVer, m.insChampThr},
		{"challenger", m.insChall, m.insLC.challVer, m.insChallThr},
		{"fallback", m.insFb, m.insLC.fbVer, m.insFbThr},
	}
	for _, s := range insSlots {
		if s.model == nil {
			continue
		}
		raw, err := marshalInsens(s.model)
		if err != nil {
			return nil, err
		}
		add(FamilyInsens, s.role, s.ver, s.model.Name(), s.thr, raw)
	}
	return out, nil
}

// SnapshotJSON renders the dump as one JSON document.
func (m *Manager) SnapshotJSON() (json.RawMessage, error) {
	snaps, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(snaps, "", "  ")
}

// MarshalUM exports an untouched-memory model in the snapshot wire form;
// the fleet pipeline reuses it for its release-train dumps.
func MarshalUM(u predict.Untouched) (json.RawMessage, error) { return marshalUM(u) }

func marshalUM(u predict.Untouched) (json.RawMessage, error) {
	if g, ok := u.(*predict.GBMUntouched); ok {
		var buf bytes.Buffer
		if err := ml.ExportGBM(&buf, g.GBM()); err != nil {
			return nil, fmt.Errorf("mlops: exporting %s: %w", u.Name(), err)
		}
		return bytes.TrimSpace(buf.Bytes()), nil
	}
	return json.Marshal(map[string]string{"kind": "heuristic", "name": u.Name()})
}

func marshalInsens(i predict.Insensitivity) (json.RawMessage, error) {
	if f, ok := i.(*predict.ForestModel); ok {
		var buf bytes.Buffer
		if err := ml.ExportForest(&buf, f.Forest()); err != nil {
			return nil, fmt.Errorf("mlops: exporting %s: %w", i.Name(), err)
		}
		return bytes.TrimSpace(buf.Bytes()), nil
	}
	return json.Marshal(map[string]string{"kind": "heuristic", "name": i.Name()})
}

// LoadUM rebuilds an untouched-memory model from a snapshot's wire form —
// the serving-side half of the export path.
func LoadUM(s ModelSnapshot) (predict.Untouched, error) {
	if s.Family != FamilyUM {
		return nil, fmt.Errorf("mlops: snapshot family %q is not %s", s.Family, FamilyUM)
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(s.Model, &probe); err != nil {
		return nil, fmt.Errorf("mlops: snapshot model: %w", err)
	}
	if probe.Kind == "gbm" {
		g, err := ml.ImportGBM(bytes.NewReader(s.Model))
		if err != nil {
			return nil, err
		}
		return predict.WrapGBMUntouched(g), nil
	}
	return nil, fmt.Errorf("mlops: cannot rebuild %q model %q", s.Family, probe.Kind)
}
