package mlops

import (
	"math"
	"strings"
	"sync"
	"testing"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/pmu"
	"pond/internal/predict"
	"pond/internal/workload"
)

func coreDecision() core.Decision { return core.Decision{} }

// testVM builds a VM whose ground-truth untouched fraction is known.
func testVM(id int, untouched float64) cluster.VMRequest {
	w := workload.Catalogue()[id%4]
	return cluster.VMRequest{
		ID:       cluster.VMID(id),
		Customer: cluster.CustomerID(1 + id%8),
		Type:     cluster.VMTypes()[0],
		GroundTruth: cluster.VMGroundTruth{
			UntouchedFrac: untouched,
			Workload:      w,
		},
	}
}

// feats is a fixed-size feature vector whose first entry tracks the
// label, so a trained GBM can actually learn the mapping.
func feats(label float64) []float64 {
	return []float64{label, 1, 2, 3}
}

func testConfig() Config {
	c := DefaultConfig()
	c.MinTrainRows = 16
	c.MinHoldout = 8
	c.HoldoutWindow = 32
	return c
}

// drive feeds n (decision, outcome) pairs with the given untouched
// fraction through the manager.
func drive(m *Manager, startID, n int, untouched float64) {
	for i := 0; i < n; i++ {
		vm := testVM(startID+i, untouched)
		m.ObserveDecision(vm, nil, feats(untouched), coreDecision())
		m.ObserveOutcome(vm, pmu.Vector{}, false)
	}
}

func TestUMLossAsymmetric(t *testing.T) {
	if got := UMLoss(0.8, 0.5, 3); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("overprediction loss = %v", got)
	}
	if got := UMLoss(0.2, 0.5, 3); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("underprediction loss = %v", got)
	}
	if UMLoss(0.5, 0.5, 3) != 0 {
		t.Fatal("exact prediction should cost nothing")
	}
}

func TestChallengerPromotionAndDemotion(t *testing.T) {
	srv := predict.NewServer(nil, predict.FixedUntouched{Frac: 0})
	m := NewManager(testConfig(), 0, srv, nil, 0, predict.FixedUntouched{Frac: 0}, 1.82, 0.05, nil)

	// Phase 1: the bootstrap champion predicts 0 while the truth is a
	// learnable 0.6 — a trained challenger must get promoted.
	drive(m, 0, 24, 0.6)
	ev := m.Tick(100) // trains ver 1
	if len(ev) != 1 || ev[0].Kind != EventRetrain || ev[0].Ver != 1 {
		t.Fatalf("first tick events = %v", ev)
	}
	drive(m, 100, 24, 0.6)
	ev = m.Tick(200)
	if len(ev) == 0 || ev[0].Kind != EventPromote || ev[0].Family != FamilyUM {
		t.Fatalf("expected promotion, got %v", ev)
	}
	q := m.Quality()
	if q.UMChampVer != 1 || q.Promotions != 1 {
		t.Fatalf("quality after promotion = %+v", q)
	}

	// The serving layer must now predict ~0.6 (hot-swapped model).
	frac, err := srv.PredictUntouched(42, feats(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.3 {
		t.Fatalf("server still serves the old champion: %v", frac)
	}

	// Phase 2: the world flips to 0 untouched. The fallback (Fixed 0) is
	// now perfect while the promoted champion overpredicts, so the next
	// verdict demotes.
	drive(m, 200, 24, 0)
	ev = m.Tick(300)
	demoted := false
	for _, e := range ev {
		if e.Kind == EventDemote && e.Family == FamilyUM {
			demoted = true
			if e.Ver != 0 {
				t.Fatalf("demotion restored ver %d, want 0", e.Ver)
			}
		}
	}
	if !demoted {
		t.Fatalf("expected demotion, got %v", ev)
	}
	if q := m.Quality(); q.UMChampVer != 0 || q.Demotions != 1 {
		t.Fatalf("quality after demotion = %+v", q)
	}
}

func TestNoPromotionWithoutHoldout(t *testing.T) {
	srv := predict.NewServer(nil, predict.FixedUntouched{Frac: 0})
	m := NewManager(testConfig(), 0, srv, nil, 0, predict.FixedUntouched{Frac: 0}, 1.82, 0.05, nil)
	drive(m, 0, 24, 0.6)
	m.Tick(100) // trains ver 1
	// No shadow observations for the challenger yet: next tick must not
	// promote, and must not replace the unjudged challenger either.
	ev := m.Tick(200)
	for _, e := range ev {
		if e.Kind != EventRetrain || e.Family != FamilyInsens {
			t.Fatalf("unexpected event before holdout filled: %v", e)
		}
	}
	if q := m.Quality(); q.UMChampVer != 0 {
		t.Fatalf("champion changed without holdout: %+v", q)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	srv := predict.NewServer(nil, predict.FixedUntouched{Frac: 0})
	m := NewManager(testConfig(), 3, srv, nil, 0, predict.FixedUntouched{Frac: 0}, 1.82, 0.05, nil)
	drive(m, 0, 24, 0.6)
	m.Tick(100)
	snaps, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var chall *ModelSnapshot
	for i := range snaps {
		if snaps[i].Cell != 3 {
			t.Fatalf("snapshot cell = %d", snaps[i].Cell)
		}
		if snaps[i].Family == FamilyUM && snaps[i].Role == "challenger" {
			chall = &snaps[i]
		}
	}
	if chall == nil || chall.Ver != 1 || chall.Rows != 24 || chall.TrainedAtSec != 100 {
		t.Fatalf("challenger snapshot = %+v", chall)
	}
	rebuilt, err := LoadUM(*chall)
	if err != nil {
		t.Fatal(err)
	}
	x := feats(0.6)
	if got, want := rebuilt.PredictUntouchedFrac(x), m.umChall.PredictUntouchedFrac(x); got != want {
		t.Fatalf("rebuilt model predicts %v, original %v", got, want)
	}
}

func TestLifecycleEventsDeterministic(t *testing.T) {
	run := func() string {
		srv := predict.NewServer(nil, predict.FixedUntouched{Frac: 0})
		m := NewManager(testConfig(), 0, srv, nil, 0, predict.FixedUntouched{Frac: 0}, 1.82, 0.05, nil)
		var sb strings.Builder
		for round := 0; round < 4; round++ {
			drive(m, round*32, 32, 0.4)
			for _, e := range m.Tick(float64(100 * (round + 1))) {
				sb.WriteString(e.String())
				sb.WriteByte('\n')
			}
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("lifecycle events differ between identical runs:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "retrain") {
		t.Fatal("no retrain events produced")
	}
}

// TestConcurrentScoringDuringSwap hammers the manager (and through it
// predict.Server.Swap) from concurrent goroutines; run under -race this
// is the swap-safety stress test.
func TestConcurrentScoringDuringSwap(t *testing.T) {
	srv := predict.NewServer(predict.CounterThreshold{Counter: pmu.DRAMBound}, predict.FixedUntouched{Frac: 0})
	m := NewManager(testConfig(), 0, srv, predict.CounterThreshold{Counter: pmu.DRAMBound}, 0.5,
		predict.FixedUntouched{Frac: 0}, 1.82, 0.05, nil)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := g*1000 + i
				vm := testVM(id, 0.5)
				m.ObserveDecision(vm, nil, feats(0.5), coreDecision())
				if _, err := srv.PredictUntouched(int64(id), feats(0.5)); err != nil {
					t.Error(err)
					return
				}
				if _, err := srv.ScoreInsensitivity(int64(id), pmu.Vector{}); err != nil {
					t.Error(err)
					return
				}
				m.ObserveOutcome(vm, pmu.Vector{}, true)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			m.Tick(float64(i))
		}
	}()
	wg.Wait()
}
