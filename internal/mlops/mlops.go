// Package mlops closes Pond's model-lifecycle loop (§4.4, §5): the
// production system retrains its untouched-memory and latency-
// insensitivity models periodically on fleet telemetry and rolls a new
// model out only after it beats the serving one in an A/B comparison.
//
// A Manager owns one cell's lifecycle. The serving ("champion") models
// live in a predict.Server on the VM request path; every placement
// decision is additionally shadow-scored by the latest retrained
// ("challenger") model and — after a promotion — by the previous champion
// kept as a fallback. When a VM departs, its ground-truth outcome turns
// those shadow scores into per-model losses on a rolling holdout window.
// At each retrain tick the Manager:
//
//  1. demotes the champion back to the fallback if the fallback's rolling
//     loss beats the champion's by the promotion margin (regression
//     after a bad rollout),
//  2. otherwise promotes the challenger via Server.Swap when its rolling
//     loss beats the champion's by the margin,
//  3. trains a fresh challenger from the cell's accumulated
//     (features, outcome) rows once enough have been observed.
//
// Everything is deterministic: training seeds derive from the configured
// seed and the model version, buffers are append-ordered, and no map is
// ever iterated, so the lifecycle event stream is byte-identical for any
// worker count when driven from the fleet's discrete-event loop.
package mlops

import (
	"fmt"
	"sync"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/pmu"
	"pond/internal/predict"
)

// Config tunes the lifecycle loop. Zero fields fall back to
// DefaultConfig values.
type Config struct {
	// MinTrainRows is the minimum number of completed VMs before a
	// challenger is trained.
	MinTrainRows int
	// MaxTrainRows caps the training buffer; the most recent rows are
	// kept so models track workload drift instead of ancient history.
	MaxTrainRows int
	// HoldoutWindow is the rolling window (completed VMs) over which
	// champion and challenger losses are compared.
	HoldoutWindow int
	// MinHoldout is the minimum number of decisions both contenders
	// shadow-scored before a promotion or demotion verdict.
	MinHoldout int
	// PromoteMargin is the fractional loss improvement a challenger must
	// show over the champion to be promoted (and a fallback to force a
	// demotion): promote when chall < champ * (1 - PromoteMargin).
	PromoteMargin float64
	// OverPenalty weights overprediction in the untouched-memory loss:
	// predicting memory untouched that the VM then touches causes spills
	// and QoS violations, while underprediction only forgoes pool
	// savings. The matching training quantile is 1/(1+OverPenalty).
	OverPenalty float64
	// LabelRate is the target labeled-insensitive fraction used to pick
	// each insensitivity challenger's serving threshold.
	LabelRate float64
	// Seed roots every challenger's training RNG.
	Seed int64
}

// DefaultConfig returns the lifecycle defaults used by the fleet loop.
func DefaultConfig() Config {
	return Config{
		MinTrainRows:  48,
		MaxTrainRows:  512,
		HoldoutWindow: 64,
		MinHoldout:    24,
		PromoteMargin: 0.05,
		OverPenalty:   3,
		LabelRate:     0.30,
		Seed:          1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MinTrainRows <= 0 {
		c.MinTrainRows = d.MinTrainRows
	}
	if c.MaxTrainRows <= 0 {
		c.MaxTrainRows = d.MaxTrainRows
	}
	if c.HoldoutWindow <= 0 {
		c.HoldoutWindow = d.HoldoutWindow
	}
	if c.MinHoldout <= 0 {
		c.MinHoldout = d.MinHoldout
	}
	if c.PromoteMargin <= 0 {
		c.PromoteMargin = d.PromoteMargin
	}
	if c.OverPenalty <= 0 {
		c.OverPenalty = d.OverPenalty
	}
	if c.LabelRate <= 0 {
		c.LabelRate = d.LabelRate
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// UMLoss is the asymmetric untouched-memory prediction loss:
// overpredicting (promising pool-backed memory the VM then touches)
// costs overPenalty per GB-fraction, underpredicting costs 1.
func UMLoss(pred, label, overPenalty float64) float64 {
	if pred > label {
		return overPenalty * (pred - label)
	}
	return label - pred
}

// Lifecycle event kinds.
const (
	EventRetrain = "retrain"
	EventPromote = "promote"
	EventDemote  = "demote"
)

// Model families under lifecycle management.
const (
	FamilyUM     = "um"
	FamilyInsens = "insens"
)

// Event is one lifecycle action, in event-log order.
type Event struct {
	Cell   int     `json:"cell"`
	AtSec  float64 `json:"at_sec"`
	Family string  `json:"family"`
	Kind   string  `json:"kind"`
	// Ver is the version acted on: the trained challenger for retrain,
	// the newly serving champion for promote/demote.
	Ver int `json:"version"`
	// Rows is the training-set size (retrain only).
	Rows int `json:"rows,omitempty"`
	// ChampLoss and ChallLoss are the rolling holdout losses that decided
	// a promotion or demotion, over N shared decisions.
	ChampLoss float64 `json:"champ_loss,omitempty"`
	ChallLoss float64 `json:"chall_loss,omitempty"`
	N         int     `json:"n,omitempty"`
}

// String renders the event as one deterministic log line (no cell/time
// prefix; the fleet loop adds its own).
func (e Event) String() string {
	switch e.Kind {
	case EventRetrain:
		return fmt.Sprintf("mlops %s retrain ver=%d rows=%d", e.Family, e.Ver, e.Rows)
	default:
		return fmt.Sprintf("mlops %s %s ver=%d loss=%.4f champ-loss=%.4f n=%d",
			e.Family, e.Kind, e.Ver, e.ChallLoss, e.ChampLoss, e.N)
	}
}

// obs is one completed VM's shadow-scoring result for one family.
type obs struct {
	champVer, challVer, fbVer    int
	champLoss, challLoss, fbLoss float64
}

// lifecycle tracks one model family's contenders by version and rolling
// losses. Version 0 is the bootstrap champion (offline model or
// heuristic); each trained challenger gets the next version.
type lifecycle struct {
	family                    string
	champVer, challVer, fbVer int // -1 = slot empty
	nextVer                   int

	window []obs // rolling, capped at HoldoutWindow

	sumChampLoss float64 // over every outcome, whichever champion served
	outcomes     int
}

func newLifecycle(family string) lifecycle {
	return lifecycle{family: family, champVer: 0, challVer: -1, fbVer: -1, nextVer: 1}
}

// observe appends one outcome. The caller stamps the obs with the
// versions that actually produced each prediction — for untouched-memory
// those are the versions live at admission, which may differ from the
// current ones when a retrain or promotion tick fell inside the VM's
// lifetime.
func (lc *lifecycle) observe(o obs, windowCap int) {
	lc.window = appendCapped(lc.window, o, windowCap)
	lc.sumChampLoss += o.champLoss
	lc.outcomes++
}

// pairLoss computes mean losses over window entries where the current
// champion and the given contender slot were both shadow-scored live.
func (lc *lifecycle) pairLoss(contender string) (champ, other float64, n int) {
	for _, o := range lc.window {
		if o.champVer != lc.champVer {
			continue
		}
		switch contender {
		case "chall":
			if lc.challVer < 0 || o.challVer != lc.challVer {
				continue
			}
			other += o.challLoss
		case "fb":
			if lc.fbVer < 0 || o.fbVer != lc.fbVer {
				continue
			}
			other += o.fbLoss
		}
		champ += o.champLoss
		n++
	}
	if n > 0 {
		champ /= float64(n)
		other /= float64(n)
	}
	return champ, other, n
}

// champWindowLoss is the mean champion loss over the rolling window,
// whatever versions served — the "current serving quality" metric.
func (lc *lifecycle) champWindowLoss() float64 {
	if len(lc.window) == 0 {
		return 0
	}
	var sum float64
	for _, o := range lc.window {
		sum += o.champLoss
	}
	return sum / float64(len(lc.window))
}

func (lc *lifecycle) champMeanLoss() float64 {
	if lc.outcomes == 0 {
		return 0
	}
	return lc.sumChampLoss / float64(lc.outcomes)
}

// challObs counts window entries shadow-scored by the current
// (champion, challenger) pair: a fresh challenger must earn MinHoldout
// of these before it is judged or replaced.
func (lc *lifecycle) challObs() int {
	_, _, n := lc.pairLoss("chall")
	return n
}

// umPending holds a placed VM's shadow predictions until departure,
// together with the model versions that produced them — losses must be
// attributed to the versions that predicted, not whichever models happen
// to be live when the VM departs.
type umPending struct {
	feats                     []float64
	champ, chall, fb          float64
	champVer, challVer, fbVer int
}

// trainMeta records how a version was produced, for snapshots.
type trainMeta struct {
	Ver   int     `json:"version"`
	AtSec float64 `json:"trained_at_sec"`
	Rows  int     `json:"rows"`
}

// Manager runs one cell's model lifecycle. It is safe for concurrent
// use; the fleet loop drives it sequentially for determinism.
type Manager struct {
	mu  sync.Mutex
	cfg Config

	srv *predict.Server
	// onThreshold installs a newly promoted insensitivity model's serving
	// threshold into the scheduling pipeline.
	onThreshold func(float64)

	ratio, pdm float64

	// Untouched-memory family.
	umChamp, umChall, umFb predict.Untouched
	umLC                   lifecycle
	umPending              map[cluster.VMID]umPending
	umX                    [][]float64
	umY                    []float64
	umMeta                 map[int]trainMeta

	// Latency-insensitivity family.
	insChamp, insChall, insFb          predict.Insensitivity
	insChampThr, insChallThr, insFbThr float64
	insLC                              lifecycle
	insX                               [][]float64
	insY                               []float64
	insMeta                            map[int]trainMeta

	events []Event
	cell   int
}

// NewManager builds a cell's lifecycle around the serving stack: srv is
// the inference server on the request path (hot-swapped on promotion),
// insens/umChamp are the bootstrap champions already installed in it,
// insensThreshold their serving threshold, and ratio/pdm the QoS
// parameters that label insensitivity outcomes. onThreshold (may be nil)
// is invoked with the new threshold whenever the insensitivity champion
// changes.
func NewManager(cfg Config, cell int, srv *predict.Server, insens predict.Insensitivity,
	insensThreshold float64, umChamp predict.Untouched, ratio, pdm float64,
	onThreshold func(float64)) *Manager {
	return &Manager{
		cfg:         cfg.withDefaults(),
		cell:        cell,
		srv:         srv,
		onThreshold: onThreshold,
		ratio:       ratio,
		pdm:         pdm,
		umChamp:     umChamp,
		umLC:        newLifecycle(FamilyUM),
		umPending:   make(map[cluster.VMID]umPending),
		umMeta:      make(map[int]trainMeta),
		insChamp:    insens,
		insChampThr: insensThreshold,
		insLC:       newLifecycle(FamilyInsens),
		insMeta:     make(map[int]trainMeta),
	}
}

// ObserveDecision shadow-scores one admission with every live contender.
// It satisfies core.ShadowHook, so the fleet loop registers it directly
// on the scheduling pipeline.
func (m *Manager) ObserveDecision(vm cluster.VMRequest, counters *pmu.Vector, umFeatures []float64, _ core.Decision) {
	if umFeatures == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	feats := append([]float64(nil), umFeatures...)
	p := umPending{feats: feats, champVer: -1, challVer: -1, fbVer: -1}
	if m.umChamp != nil {
		p.champ = m.umChamp.PredictUntouchedFrac(feats)
		p.champVer = m.umLC.champVer
	}
	if m.umChall != nil {
		p.chall = m.umChall.PredictUntouchedFrac(feats)
		p.challVer = m.umLC.challVer
	}
	if m.umFb != nil {
		p.fb = m.umFb.PredictUntouchedFrac(feats)
		p.fbVer = m.umLC.fbVer
	}
	m.umPending[vm.ID] = p
}

// ObserveOutcome records a departed VM's ground truth: the untouched
// fraction closes the pending untouched-memory shadow scores, and the
// workload's all-pool slowdown labels the insensitivity contenders on
// the VM's mean telemetry counters.
func (m *Manager) ObserveOutcome(vm cluster.VMRequest, counters pmu.Vector, haveCounters bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	if p, ok := m.umPending[vm.ID]; ok {
		delete(m.umPending, vm.ID)
		label := vm.GroundTruth.UntouchedFrac
		o := obs{champVer: p.champVer, challVer: p.challVer, fbVer: p.fbVer,
			champLoss: UMLoss(p.champ, label, m.cfg.OverPenalty)}
		if p.challVer >= 0 {
			o.challLoss = UMLoss(p.chall, label, m.cfg.OverPenalty)
		}
		if p.fbVer >= 0 {
			o.fbLoss = UMLoss(p.fb, label, m.cfg.OverPenalty)
		}
		m.umLC.observe(o, m.cfg.HoldoutWindow)
		m.umX = appendCapped(m.umX, p.feats, m.cfg.MaxTrainRows)
		m.umY = appendCapped(m.umY, label, m.cfg.MaxTrainRows)
	}

	if haveCounters && vm.GroundTruth.Workload.Name != "" {
		label := 0.0
		if vm.GroundTruth.Workload.Slowdown(m.ratio, 1) <= m.pdm {
			label = 1
		}
		// The insensitivity loss reuses the asymmetric shape: scoring a
		// sensitive workload high risks an all-pool QoS violation
		// (weighted OverPenalty), scoring an insensitive one low only
		// forgoes pooling. Unlike the UM family, scoring happens here at
		// departure, so the versions live right now are the ones that
		// predicted.
		o := obs{champVer: m.insLC.champVer, challVer: m.insLC.challVer, fbVer: m.insLC.fbVer}
		if m.insChamp != nil {
			o.champLoss = UMLoss(m.insChamp.Score(counters), label, m.cfg.OverPenalty)
		}
		if m.insChall != nil {
			o.challLoss = UMLoss(m.insChall.Score(counters), label, m.cfg.OverPenalty)
		}
		if m.insFb != nil {
			o.fbLoss = UMLoss(m.insFb.Score(counters), label, m.cfg.OverPenalty)
		}
		m.insLC.observe(o, m.cfg.HoldoutWindow)
		m.insX = appendCapped(m.insX, counters.Features(), m.cfg.MaxTrainRows)
		m.insY = appendCapped(m.insY, label, m.cfg.MaxTrainRows)
	}
}

// ForgetVM drops a VM's pending shadow scores — rejected admissions and
// VMs lost to failures never produce an outcome.
func (m *Manager) ForgetVM(id cluster.VMID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.umPending, id)
}

// Tick runs one retrain event: demotion check, promotion check, then
// challenger training. It returns the lifecycle events it produced, in
// order, for the caller's event log.
func (m *Manager) Tick(nowSec float64) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	out = append(out, m.tickUM(nowSec)...)
	out = append(out, m.tickInsens(nowSec)...)
	m.events = append(m.events, out...)
	return out
}

func (m *Manager) tickUM(now float64) []Event {
	var out []Event

	// Demote a regressed rollout back to its predecessor.
	if m.umFb != nil {
		if champ, fb, n := m.umLC.pairLoss("fb"); n >= m.cfg.MinHoldout && fb < champ*(1-m.cfg.PromoteMargin) {
			m.umChamp, m.umFb = m.umFb, nil
			m.umLC.champVer, m.umLC.fbVer = m.umLC.fbVer, -1
			m.swapLocked()
			out = append(out, m.event(now, FamilyUM, EventDemote, m.umLC.champVer, 0, champ, fb, n))
		}
	}

	// Promote a proven challenger.
	if len(out) == 0 && m.umChall != nil {
		if champ, chall, n := m.umLC.pairLoss("chall"); n >= m.cfg.MinHoldout && chall < champ*(1-m.cfg.PromoteMargin) {
			m.umFb, m.umChamp, m.umChall = m.umChamp, m.umChall, nil
			m.umLC.fbVer, m.umLC.champVer, m.umLC.challVer = m.umLC.champVer, m.umLC.challVer, -1
			m.swapLocked()
			out = append(out, m.event(now, FamilyUM, EventPromote, m.umLC.champVer, 0, champ, chall, n))
		}
	}

	// Train a fresh challenger once the current one has had its shot.
	if len(m.umX) >= m.cfg.MinTrainRows && (m.umChall == nil || m.umLC.challObs() >= m.cfg.MinHoldout) {
		ver := m.umLC.nextVer
		m.umLC.nextVer++
		quantile := 1 / (1 + m.cfg.OverPenalty)
		seed := m.cfg.Seed + int64(ver)*7919 + 1
		m.umChall = predict.TrainGBMUntouched(m.umX, m.umY, quantile, seed)
		m.umLC.challVer = ver
		m.umMeta[ver] = trainMeta{Ver: ver, AtSec: now, Rows: len(m.umX)}
		out = append(out, m.event(now, FamilyUM, EventRetrain, ver, len(m.umX), 0, 0, 0))
	}
	return out
}

func (m *Manager) tickInsens(now float64) []Event {
	var out []Event

	if m.insFb != nil {
		if champ, fb, n := m.insLC.pairLoss("fb"); n >= m.cfg.MinHoldout && fb < champ*(1-m.cfg.PromoteMargin) {
			m.insChamp, m.insFb = m.insFb, nil
			m.insChampThr, m.insFbThr = m.insFbThr, 0
			m.insLC.champVer, m.insLC.fbVer = m.insLC.fbVer, -1
			m.swapLocked()
			m.pushThresholdLocked()
			out = append(out, m.event(now, FamilyInsens, EventDemote, m.insLC.champVer, 0, champ, fb, n))
		}
	}

	if len(out) == 0 && m.insChall != nil {
		if champ, chall, n := m.insLC.pairLoss("chall"); n >= m.cfg.MinHoldout && chall < champ*(1-m.cfg.PromoteMargin) {
			m.insFb, m.insChamp, m.insChall = m.insChamp, m.insChall, nil
			m.insFbThr, m.insChampThr, m.insChallThr = m.insChampThr, m.insChallThr, 0
			m.insLC.fbVer, m.insLC.champVer, m.insLC.challVer = m.insLC.champVer, m.insLC.challVer, -1
			m.swapLocked()
			m.pushThresholdLocked()
			out = append(out, m.event(now, FamilyInsens, EventPromote, m.insLC.champVer, 0, champ, chall, n))
		}
	}

	// The insensitivity label is heavily imbalanced on small windows;
	// require both classes before fitting a classifier.
	if len(m.insX) >= m.cfg.MinTrainRows && bothClasses(m.insY) &&
		(m.insChall == nil || m.insLC.challObs() >= m.cfg.MinHoldout) {
		ver := m.insLC.nextVer
		m.insLC.nextVer++
		seed := m.cfg.Seed + int64(ver)*7919 + 2
		rf := predict.TrainForest(m.insX, m.insY, seed)
		scores := make([]float64, len(m.insX))
		for i, x := range m.insX {
			var v pmu.Vector
			copy(v[:], x)
			scores[i] = rf.Score(v)
		}
		// Serve at the label-rate operating point, but never below the
		// highest score any known-sensitive training row achieved: an
		// all-pool misplacement costs a QoS violation, so the serving
		// threshold errs conservative.
		thr := predict.ThresholdForLabelRate(scores, m.cfg.LabelRate)
		for i, s := range scores {
			if m.insY[i] == 0 && s >= thr {
				thr = s + 1e-9
			}
		}
		m.insChall = rf
		m.insChallThr = thr
		m.insLC.challVer = ver
		m.insMeta[ver] = trainMeta{Ver: ver, AtSec: now, Rows: len(m.insX)}
		out = append(out, m.event(now, FamilyInsens, EventRetrain, ver, len(m.insX), 0, 0, 0))
	}
	return out
}

func (m *Manager) event(at float64, family, kind string, ver, rows int, champ, chall float64, n int) Event {
	return Event{Cell: m.cell, AtSec: at, Family: family, Kind: kind,
		Ver: ver, Rows: rows, ChampLoss: champ, ChallLoss: chall, N: n}
}

func (m *Manager) swapLocked() {
	if m.srv != nil {
		m.srv.Swap(m.insChamp, m.umChamp)
	}
}

func (m *Manager) pushThresholdLocked() {
	if m.onThreshold != nil {
		m.onThreshold(m.insChampThr)
	}
}

// Quality is the end-of-run model-quality summary of one Manager.
type Quality struct {
	Retrains, Promotions, Demotions int
	// UMChampVer / InsensChampVer are the serving model versions at the
	// end of the run (0 = the bootstrap model was never replaced).
	UMChampVer, InsensChampVer int
	// UMLossMean is the serving untouched-memory model's mean asymmetric
	// loss over every completed VM; UMLossFinal the same over the final
	// rolling window — the end-of-run prediction error.
	UMLossMean, UMLossFinal float64
	// InsensLossMean / InsensLossFinal mirror the above for the
	// insensitivity score against ground-truth labels.
	InsensLossMean, InsensLossFinal float64
	// Outcomes counts completed VMs that closed an untouched-memory
	// shadow score.
	Outcomes int
}

// Quality summarizes the lifecycle so far.
func (m *Manager) Quality() Quality {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := Quality{
		UMChampVer:      m.umLC.champVer,
		InsensChampVer:  m.insLC.champVer,
		UMLossMean:      m.umLC.champMeanLoss(),
		UMLossFinal:     m.umLC.champWindowLoss(),
		InsensLossMean:  m.insLC.champMeanLoss(),
		InsensLossFinal: m.insLC.champWindowLoss(),
		Outcomes:        m.umLC.outcomes,
	}
	for _, e := range m.events {
		switch e.Kind {
		case EventRetrain:
			q.Retrains++
		case EventPromote:
			q.Promotions++
		case EventDemote:
			q.Demotions++
		}
	}
	return q
}

// Events returns the lifecycle history in occurrence order.
func (m *Manager) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

func bothClasses(y []float64) bool {
	pos, neg := false, false
	for _, v := range y {
		if v > 0.5 {
			pos = true
		} else {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}

// appendCapped appends to a FIFO buffer bounded at limit entries,
// evicting the oldest when full.
func appendCapped[T any](buf []T, v T, limit int) []T {
	if len(buf) >= limit {
		copy(buf, buf[1:])
		buf = buf[:len(buf)-1]
	}
	return append(buf, v)
}
