// Package fleetpipeline is the fleet-level counterpart to the per-cell
// lifecycle of internal/mlops: the central ML pipeline of Pond §5, which
// trains on telemetry from the whole fleet and distributes models to
// hosts. One Manager owns the fleet's untouched-memory model release
// train. At every retrain boundary it pools (admission-features,
// outcome) rows from every cell into a single training corpus, trains
// one fleet-wide challenger, and deploys it through a staged rollout:
//
//  1. canary — the challenger is pinned onto a configurable fraction of
//     cells (one deployment ring; rings partition the fleet and rotate
//     per release, spreading bake exposure across cells) while the rest
//     of the fleet keeps the champion;
//  2. bake — every cell shadow-scores both contenders on departing VMs
//     for BakeWindowSec seconds of simulated time;
//  3. verdict — the challenger's pooled rolling-holdout loss over the
//     canary cells either beats the champion's by PromoteMargin and the
//     release fans out fleet-wide, or the canaries roll back to the
//     champion and the challenger is discarded.
//
// After a fleet-wide promotion the previous champion is retained as a
// fallback and shadow-scored everywhere; a fallback that beats the new
// champion on the fleet-wide window forces a demotion, mirroring the
// per-cell lifecycle's regression guard.
//
// Everything is deterministic: the driver ticks the Manager serially at
// barrier times with per-cell inputs in cell order, training seeds
// derive from the configured seed and the release version, and no map is
// iterated — the rollout event stream is byte-identical for any worker
// count.
package fleetpipeline

import (
	"fmt"

	"pond/internal/mlops"
	"pond/internal/predict"
)

// Config tunes the fleet pipeline. Zero fields fall back to the
// Default values.
type Config struct {
	// Cells is the fleet size in cells; canary sets are fractions of it.
	Cells int
	// CanaryFraction is the fraction of cells a new release reaches
	// first, rounded up to at least one cell.
	CanaryFraction float64
	// BakeWindowSec is how long (simulated seconds) canaries bake before
	// the promote-or-rollback verdict.
	BakeWindowSec float64
	// MinTrainRows is the minimum pooled rows before a challenger is
	// trained; MaxTrainRows caps the fleet corpus (most recent kept).
	MinTrainRows int
	MaxTrainRows int
	// HoldoutWindow caps each cell's rolling shadow-score window;
	// MinHoldout is the minimum pooled canary observations before a
	// verdict (the bake extends until it is met).
	HoldoutWindow int
	MinHoldout    int
	// PromoteMargin is the fractional loss improvement a challenger must
	// show over the champion on the canary holdout to fan out (and a
	// fallback to force a demotion).
	PromoteMargin float64
	// OverPenalty weights overprediction in the asymmetric loss; the
	// training quantile is 1/(1+OverPenalty), as in internal/mlops.
	OverPenalty float64
	// Seed roots every challenger's training RNG.
	Seed int64
}

// DefaultConfig returns the fleet-pipeline defaults for a fleet of the
// given cell count.
func DefaultConfig(cells int) Config {
	d := mlops.DefaultConfig()
	if cells <= 0 {
		cells = 1
	}
	return Config{
		Cells:          cells,
		CanaryFraction: 0.25,
		BakeWindowSec:  0, // driver default: 2x the retrain cadence
		MinTrainRows:   d.MinTrainRows,
		MaxTrainRows:   d.MaxTrainRows * cells,
		HoldoutWindow:  d.HoldoutWindow,
		MinHoldout:     d.MinHoldout,
		PromoteMargin:  d.PromoteMargin,
		OverPenalty:    d.OverPenalty,
		Seed:           d.Seed,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Cells)
	if c.CanaryFraction <= 0 {
		c.CanaryFraction = d.CanaryFraction
	}
	if c.MinTrainRows <= 0 {
		c.MinTrainRows = d.MinTrainRows
	}
	if c.MaxTrainRows <= 0 {
		c.MaxTrainRows = d.MaxTrainRows
	}
	if c.HoldoutWindow <= 0 {
		c.HoldoutWindow = d.HoldoutWindow
	}
	if c.MinHoldout <= 0 {
		c.MinHoldout = d.MinHoldout
	}
	if c.PromoteMargin <= 0 {
		c.PromoteMargin = d.PromoteMargin
	}
	if c.OverPenalty <= 0 {
		c.OverPenalty = d.OverPenalty
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Cells <= 0 {
		c.Cells = 1
	}
	return c
}

// Rollout stages.
const (
	// StageSteady: one champion serves every cell; no release in flight.
	StageSteady = "steady"
	// StageCanary: a challenger serves the canary cells and is baking.
	StageCanary = "canary"
)

// Rollout event kinds, in the order a release can experience them.
const (
	EventRetrain     = "retrain"      // challenger trained from the pooled corpus
	EventCanaryStart = "canary-start" // challenger pinned onto the canary cells
	EventHold        = "hold"         // bake extended: too few canary observations
	EventPromote     = "promote"      // challenger fanned out fleet-wide
	EventRollback    = "rollback"     // canaries re-pinned to the champion
	EventDemote      = "demote"       // fallback reinstated after a bad fan-out
)

// Event is one stage transition of the release train.
type Event struct {
	AtSec float64 `json:"at_sec"`
	Kind  string  `json:"kind"`
	// Ver is the release version acted on: the trained challenger for
	// retrain/canary-start/hold/rollback, the newly serving champion for
	// promote/demote.
	Ver int `json:"version"`
	// Rows is the pooled training-corpus size (retrain only).
	Rows int `json:"rows,omitempty"`
	// CanaryLo..CanaryHi is the canary cell range (canary-start only).
	CanaryLo int `json:"canary_lo,omitempty"`
	CanaryHi int `json:"canary_hi,omitempty"`
	// ChampLoss and ChallLoss are the pooled rolling-holdout losses that
	// decided a verdict, over N shared observations.
	ChampLoss float64 `json:"champ_loss,omitempty"`
	ChallLoss float64 `json:"chall_loss,omitempty"`
	N         int     `json:"n,omitempty"`
}

// String renders the event as one deterministic log line (no time
// prefix; the fleet loop adds its own).
func (e Event) String() string {
	switch e.Kind {
	case EventRetrain:
		return fmt.Sprintf("fleetpipeline retrain ver=%d rows=%d", e.Ver, e.Rows)
	case EventCanaryStart:
		return fmt.Sprintf("fleetpipeline canary-start ver=%d cells=%d-%d", e.Ver, e.CanaryLo, e.CanaryHi)
	case EventHold:
		return fmt.Sprintf("fleetpipeline hold ver=%d n=%d", e.Ver, e.N)
	case EventRollback:
		if e.N == 0 {
			// Not a bake verdict: the fallback regression guard demoted
			// the champion this release was baking against, taking the
			// canary down with it.
			return fmt.Sprintf("fleetpipeline rollback ver=%d aborted-by-demotion", e.Ver)
		}
		return fmt.Sprintf("fleetpipeline rollback ver=%d loss=%.4f champ-loss=%.4f n=%d",
			e.Ver, e.ChallLoss, e.ChampLoss, e.N)
	default: // promote | demote
		return fmt.Sprintf("fleetpipeline %s ver=%d loss=%.4f champ-loss=%.4f n=%d",
			e.Kind, e.Ver, e.ChallLoss, e.ChampLoss, e.N)
	}
}

// Assignment is what one cell serves and shadow-scores after a barrier.
type Assignment struct {
	// Champ/Chall/Fb are the shadow-scoring slots with their release
	// versions (-1 = slot empty). Every cell shadow-scores all live
	// contenders; only canary membership decides which one serves.
	Champ, Chall, Fb          predict.Untouched
	ChampVer, ChallVer, FbVer int

	// Serve is the model on the cell's request path, with its version
	// and role ("champion" on control cells, "canary" while the cell
	// serves a baking challenger).
	Serve    predict.Untouched
	ServeVer int
	Role     string
}

// Manager owns the fleet release train. The fleet driver ticks it
// serially at retrain barriers; it is not safe for concurrent use.
type Manager struct {
	cfg Config

	champ, chall, fb          predict.Untouched
	champVer, challVer, fbVer int
	nextVer                   int

	stage      string
	canaryLo   int // canary cell range [canaryLo, canaryHi], valid in StageCanary
	canaryHi   int
	bakeEndSec float64

	// Pooled training corpus, FIFO-capped at MaxTrainRows; newRows
	// counts arrivals since the last training, so a release is only ever
	// trained on a corpus that moved.
	x       [][]float64
	y       []float64
	newRows int

	// win[cell] is the cell's rolling shadow-score window.
	win [][]Obs

	// meta records training provenance per release version.
	meta map[int]trainMeta

	events []Event
}

// NewManager builds the fleet pipeline around the bootstrap champion
// (version 0: the offline model or heuristic every cell starts with).
func NewManager(cfg Config, bootstrap predict.Untouched) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:      cfg,
		champ:    bootstrap,
		champVer: 0,
		challVer: -1,
		fbVer:    -1,
		nextVer:  1,
		stage:    StageSteady,
		win:      make([][]Obs, cfg.Cells),
		meta:     make(map[int]trainMeta),
	}
}

// Config returns the resolved configuration (defaults applied).
func (m *Manager) Config() Config { return m.cfg }

// Stage returns the current rollout stage.
func (m *Manager) Stage() string { return m.stage }

// ChampionVer returns the fleet champion's release version.
func (m *Manager) ChampionVer() int { return m.champVer }

// Events returns the rollout history in occurrence order.
func (m *Manager) Events() []Event { return append([]Event(nil), m.events...) }

// CanaryCells returns the canary cell indices of the in-flight release
// (nil in steady state).
func (m *Manager) CanaryCells() []int {
	if m.stage != StageCanary {
		return nil
	}
	out := make([]int, 0, m.canaryHi-m.canaryLo+1)
	for c := m.canaryLo; c <= m.canaryHi; c++ {
		out = append(out, c)
	}
	return out
}

// canaryCount resolves the canary set size: CanaryFraction of the fleet,
// rounded up, at least one cell, at most the whole fleet.
func (m *Manager) canaryCount() int {
	n := int(m.cfg.CanaryFraction*float64(m.cfg.Cells) + 0.999999)
	if n < 1 {
		n = 1
	}
	if n > m.cfg.Cells {
		n = m.cfg.Cells
	}
	return n
}

// ringFor returns the canary cell range of a release: the fleet is
// partitioned into ceil(cells/canaryCount) contiguous deployment rings
// and release ver bakes on ring (ver-1) mod ringCount, so successive
// releases rotate bake exposure across the whole fleet instead of always
// pinning the lowest indices. The last ring may be narrower when the
// fleet does not divide evenly.
func (m *Manager) ringFor(ver int) (lo, hi int) {
	count := m.canaryCount()
	rings := (m.cfg.Cells + count - 1) / count
	ring := (ver - 1) % rings
	if ring < 0 {
		ring = 0
	}
	lo = ring * count
	hi = lo + count - 1
	if hi >= m.cfg.Cells {
		hi = m.cfg.Cells - 1
	}
	return lo, hi
}

// isCanary reports whether cell is in the in-flight release's canary set.
func (m *Manager) isCanary(cell int) bool {
	return m.stage == StageCanary && cell >= m.canaryLo && cell <= m.canaryHi
}

// AssignmentFor returns what the given cell serves and shadow-scores
// right now.
func (m *Manager) AssignmentFor(cell int) Assignment {
	a := Assignment{
		Champ: m.champ, Chall: m.chall, Fb: m.fb,
		ChampVer: m.champVer, ChallVer: m.challVer, FbVer: m.fbVer,
		Serve: m.champ, ServeVer: m.champVer, Role: "champion",
	}
	if m.isCanary(cell) {
		a.Serve, a.ServeVer, a.Role = m.chall, m.challVer, "canary"
	}
	return a
}

// Tick runs one retrain barrier. rows and obs carry each cell's newly
// drained telemetry since the previous barrier, indexed by cell; both
// must have exactly cfg.Cells entries. It returns the stage transitions
// it produced, in order, for the caller's event log; the caller then
// re-reads AssignmentFor for every cell.
func (m *Manager) Tick(nowSec float64, rows [][]Row, obs [][]Obs) ([]Event, error) {
	if len(rows) != m.cfg.Cells || len(obs) != m.cfg.Cells {
		return nil, fmt.Errorf("fleetpipeline: tick got %d row sets and %d obs sets for %d cells",
			len(rows), len(obs), m.cfg.Cells)
	}

	// Pool the corpus in cell order: bulk-append, then truncate to the
	// FIFO cap once — per-row front-shifting would be O(rows x cap) on
	// this benchmark-gated path once the corpus saturates.
	for _, cellRows := range rows {
		for _, r := range cellRows {
			m.x = append(m.x, r.Feats)
			m.y = append(m.y, r.Label)
			m.newRows++
		}
	}
	if drop := len(m.x) - m.cfg.MaxTrainRows; drop > 0 {
		m.x = append(m.x[:0], m.x[drop:]...)
		m.y = append(m.y[:0], m.y[drop:]...)
	}
	for cell, cellObs := range obs {
		for _, o := range cellObs {
			m.win[cell] = appendCapped(m.win[cell], o, m.cfg.HoldoutWindow)
		}
	}

	var out []Event

	// Verdict on a baked canary release.
	if m.stage == StageCanary && nowSec >= m.bakeEndSec {
		champ, chall, n := m.pooledPairLoss(m.canaryLo, m.canaryHi, "chall")
		switch {
		case n < m.cfg.MinHoldout:
			// Too few canary departures to judge: extend the bake to the
			// next barrier rather than promoting blind.
			out = append(out, Event{AtSec: nowSec, Kind: EventHold, Ver: m.challVer, N: n})
		case chall < champ*(1-m.cfg.PromoteMargin):
			// Fan out fleet-wide; the displaced champion stays as the
			// fallback regression guard.
			m.fb, m.fbVer = m.champ, m.champVer
			m.champ, m.champVer = m.chall, m.challVer
			m.chall, m.challVer = nil, -1
			m.stage = StageSteady
			out = append(out, Event{AtSec: nowSec, Kind: EventPromote, Ver: m.champVer,
				ChampLoss: champ, ChallLoss: chall, N: n})
		default:
			// Roll back: every canary cell re-pins the champion.
			ver := m.challVer
			m.chall, m.challVer = nil, -1
			m.stage = StageSteady
			out = append(out, Event{AtSec: nowSec, Kind: EventRollback, Ver: ver,
				ChampLoss: champ, ChallLoss: chall, N: n})
		}
	}

	// Regression guard: a fallback that beats the champion fleet-wide
	// forces a demotion (the canary verdict was wrong for the fleet). A
	// release already baking on top of the regressed champion is rolled
	// back with it — its verdict would compare against a champion that no
	// longer serves.
	if m.fb != nil {
		if champ, fb, n := m.pooledPairLoss(0, m.cfg.Cells-1, "fb"); n >= m.cfg.MinHoldout && fb < champ*(1-m.cfg.PromoteMargin) {
			if m.stage == StageCanary {
				out = append(out, Event{AtSec: nowSec, Kind: EventRollback, Ver: m.challVer})
				m.chall, m.challVer = nil, -1
				m.stage = StageSteady
			}
			m.champ, m.champVer = m.fb, m.fbVer
			m.fb, m.fbVer = nil, -1
			out = append(out, Event{AtSec: nowSec, Kind: EventDemote, Ver: m.champVer,
				ChampLoss: champ, ChallLoss: fb, N: n})
		}
	}

	// Train the next release from the pooled corpus and open its canary.
	// Fresh rows are required: retraining on an unchanged corpus would
	// ship an identical model through a pointless bake.
	if m.stage == StageSteady && m.chall == nil && len(m.x) >= m.cfg.MinTrainRows && m.newRows > 0 {
		ver := m.nextVer
		m.nextVer++
		quantile := 1 / (1 + m.cfg.OverPenalty)
		seed := m.cfg.Seed + int64(ver)*7919 + 3
		m.chall = predict.TrainGBMUntouched(m.x, m.y, quantile, seed)
		m.challVer = ver
		m.newRows = 0
		m.meta[ver] = trainMeta{AtSec: nowSec, Rows: len(m.x)}
		out = append(out, Event{AtSec: nowSec, Kind: EventRetrain, Ver: ver, Rows: len(m.x)})

		m.canaryLo, m.canaryHi = m.ringFor(ver)
		m.bakeEndSec = nowSec + m.cfg.BakeWindowSec
		m.stage = StageCanary
		out = append(out, Event{AtSec: nowSec, Kind: EventCanaryStart, Ver: ver,
			CanaryLo: m.canaryLo, CanaryHi: m.canaryHi})
	}

	m.events = append(m.events, out...)
	return out, nil
}

// pooledPairLoss pools window entries over cells [lo, hi] where the
// current champion and the given contender slot were both shadow-scored
// live, returning their mean losses and the shared observation count.
func (m *Manager) pooledPairLoss(lo, hi int, contender string) (champ, other float64, n int) {
	for cell := lo; cell <= hi && cell < len(m.win); cell++ {
		for _, o := range m.win[cell] {
			if o.ChampVer != m.champVer {
				continue
			}
			switch contender {
			case "chall":
				if m.challVer < 0 || o.ChallVer != m.challVer {
					continue
				}
				other += o.ChallLoss
			case "fb":
				if m.fbVer < 0 || o.FbVer != m.fbVer {
					continue
				}
				other += o.FbLoss
			}
			champ += o.ChampLoss
			n++
		}
	}
	if n > 0 {
		champ /= float64(n)
		other /= float64(n)
	}
	return champ, other, n
}

// Counts tallies the rollout history by kind.
type Counts struct {
	Retrains, Promotions, Rollbacks, Demotions, Holds int
}

// Counts summarizes the rollout history.
func (m *Manager) Counts() Counts {
	var c Counts
	for _, e := range m.events {
		switch e.Kind {
		case EventRetrain:
			c.Retrains++
		case EventPromote:
			c.Promotions++
		case EventRollback:
			c.Rollbacks++
		case EventDemote:
			c.Demotions++
		case EventHold:
			c.Holds++
		}
	}
	return c
}

// appendCapped appends to a FIFO buffer bounded at limit entries,
// evicting the oldest when full.
func appendCapped[T any](buf []T, v T, limit int) []T {
	if len(buf) >= limit {
		copy(buf, buf[1:])
		buf = buf[:len(buf)-1]
	}
	return append(buf, v)
}
