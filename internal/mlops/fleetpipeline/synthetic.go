package fleetpipeline

import (
	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/pmu"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/workload"
)

// SyntheticRollout drives a standalone fleet pipeline — cells Collectors
// feeding one Manager — through barriers retrain boundaries with
// perCellPerBarrier (decision, outcome) pairs per cell between each:
// the staged-rollout hot path (shadow scoring, corpus pooling, canary
// bookkeeping, challenger training, verdicts) without the surrounding
// fleet loop. BenchmarkRolloutLoop and the CI benchmark gate time
// exactly this; the work is fixed and deterministic for a given
// (cells, barriers, perCellPerBarrier, cfg.Seed).
func SyntheticRollout(cells, barriers, perCellPerBarrier int, cfg Config) Counts {
	cfg.Cells = cells
	cfg = cfg.withDefaults()
	if cfg.BakeWindowSec <= 0 {
		cfg.BakeWindowSec = 2 // two barriers at the unit cadence below
	}
	bootstrap := predict.HistoryQuantileUM{}
	m := NewManager(cfg, bootstrap)
	cols := make([]*Collector, cells)
	for c := range cols {
		cols[c] = NewCollector(c, bootstrap, nil, 1.82, 0.05, cfg.OverPenalty, cfg.HoldoutWindow)
	}
	r := stats.NewRand(cfg.Seed)
	catalogue := workload.Catalogue()
	types := cluster.VMTypes()

	id := 0
	for b := 1; b <= barriers; b++ {
		for c, col := range cols {
			for i := 0; i < perCellPerBarrier; i++ {
				id++
				w := catalogue[id%len(catalogue)]
				base := 0.2 + 0.6*float64((id+c)%8)/8
				uf := stats.Clamp(base+r.Bounded(-0.05, 0.05), 0, 1)
				vm := cluster.VMRequest{
					ID:       cluster.VMID(id),
					Customer: cluster.CustomerID(1 + id%16),
					Type:     types[id%len(types)],
					GroundTruth: cluster.VMGroundTruth{
						UntouchedFrac: uf,
						Workload:      w,
					},
				}
				feats := []float64{
					vm.Type.MemoryGB, float64(vm.Type.Cores), vm.Type.GBPerCore(),
					1, 1, float64(id % 64), 5, base - 0.1, base, base, base + 0.05, base + 0.1,
				}
				col.ObserveDecision(vm, nil, feats, core.Decision{})
				col.ObserveOutcome(vm, pmu.Sample(w, r), true)
			}
		}
		rows := make([][]Row, cells)
		obs := make([][]Obs, cells)
		for c, col := range cols {
			rows[c], obs[c] = col.Drain()
		}
		if _, err := m.Tick(float64(b), rows, obs); err != nil {
			panic(err)
		}
		for c, col := range cols {
			col.Install(m.AssignmentFor(c))
		}
	}
	return m.Counts()
}
