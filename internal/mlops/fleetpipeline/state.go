package fleetpipeline

import (
	"fmt"
	"sort"

	"pond/internal/cluster"
	"pond/internal/mlops"
)

// MetaState is one release version's training provenance.
type MetaState struct {
	Ver   int     `json:"ver"`
	AtSec float64 `json:"at_sec"`
	Rows  int     `json:"rows"`
}

// ObsState is one departed VM's shadow-scoring result.
type ObsState struct {
	ChampVer  int     `json:"champ_ver"`
	ChallVer  int     `json:"chall_ver"`
	FbVer     int     `json:"fb_ver"`
	ChampLoss float64 `json:"champ_loss"`
	ChallLoss float64 `json:"chall_loss"`
	FbLoss    float64 `json:"fb_loss"`
}

// RowState is one pooled training example.
type RowState struct {
	Feats []float64 `json:"feats"`
	Label float64   `json:"label"`
}

// ManagerState is the serializable state of the fleet release train:
// the live release slots (wire-form models plus versions), rollout
// stage, pooled corpus, per-cell holdout windows, provenance, and the
// event history. Config is wiring, rebuilt by the restoring caller.
type ManagerState struct {
	Champ *mlops.UMModelState `json:"champ,omitempty"`
	Chall *mlops.UMModelState `json:"chall,omitempty"`
	Fb    *mlops.UMModelState `json:"fb,omitempty"`

	ChampVer int `json:"champ_ver"`
	ChallVer int `json:"chall_ver"`
	FbVer    int `json:"fb_ver"`
	NextVer  int `json:"next_ver"`

	Stage      string  `json:"stage"`
	CanaryLo   int     `json:"canary_lo,omitempty"`
	CanaryHi   int     `json:"canary_hi,omitempty"`
	BakeEndSec float64 `json:"bake_end_sec,omitempty"`

	X       [][]float64 `json:"x,omitempty"`
	Y       []float64   `json:"y,omitempty"`
	NewRows int         `json:"new_rows,omitempty"`

	Win [][]ObsState `json:"win,omitempty"`

	Meta   []MetaState `json:"meta,omitempty"`
	Events []Event     `json:"events,omitempty"`
}

func obsStates(in []Obs) []ObsState {
	var out []ObsState
	for _, o := range in {
		out = append(out, ObsState{
			ChampVer: o.ChampVer, ChallVer: o.ChallVer, FbVer: o.FbVer,
			ChampLoss: o.ChampLoss, ChallLoss: o.ChallLoss, FbLoss: o.FbLoss,
		})
	}
	return out
}

func obsFromStates(in []ObsState) []Obs {
	var out []Obs
	for _, o := range in {
		out = append(out, Obs{
			ChampVer: o.ChampVer, ChallVer: o.ChallVer, FbVer: o.FbVer,
			ChampLoss: o.ChampLoss, ChallLoss: o.ChallLoss, FbLoss: o.FbLoss,
		})
	}
	return out
}

// State captures the release train's full state for serialization.
func (m *Manager) State() (ManagerState, error) {
	var s ManagerState
	var err error
	if s.Champ, err = mlops.UMState(m.champ); err != nil {
		return ManagerState{}, err
	}
	if s.Chall, err = mlops.UMState(m.chall); err != nil {
		return ManagerState{}, err
	}
	if s.Fb, err = mlops.UMState(m.fb); err != nil {
		return ManagerState{}, err
	}
	s.ChampVer, s.ChallVer, s.FbVer, s.NextVer = m.champVer, m.challVer, m.fbVer, m.nextVer
	s.Stage, s.CanaryLo, s.CanaryHi, s.BakeEndSec = m.stage, m.canaryLo, m.canaryHi, m.bakeEndSec
	for _, x := range m.x {
		s.X = append(s.X, append([]float64(nil), x...))
	}
	s.Y = append([]float64(nil), m.y...)
	s.NewRows = m.newRows
	s.Win = make([][]ObsState, len(m.win))
	for c, w := range m.win {
		s.Win[c] = obsStates(w)
	}
	vers := make([]int, 0, len(m.meta))
	for v := range m.meta {
		vers = append(vers, v)
	}
	sort.Ints(vers)
	for _, v := range vers {
		tm := m.meta[v]
		s.Meta = append(s.Meta, MetaState{Ver: v, AtSec: tm.AtSec, Rows: tm.Rows})
	}
	s.Events = append([]Event(nil), m.events...)
	return s, nil
}

// SetState restores a state captured by State onto a freshly built
// manager with the same config.
func (m *Manager) SetState(s ManagerState) error {
	if len(s.Win) != 0 && len(s.Win) != len(m.win) {
		return fmt.Errorf("fleetpipeline: state has %d cell windows, manager has %d", len(s.Win), len(m.win))
	}
	var err error
	if m.champ, err = mlops.LoadUMState(s.Champ); err != nil {
		return err
	}
	if m.chall, err = mlops.LoadUMState(s.Chall); err != nil {
		return err
	}
	if m.fb, err = mlops.LoadUMState(s.Fb); err != nil {
		return err
	}
	m.champVer, m.challVer, m.fbVer, m.nextVer = s.ChampVer, s.ChallVer, s.FbVer, s.NextVer
	m.stage, m.canaryLo, m.canaryHi, m.bakeEndSec = s.Stage, s.CanaryLo, s.CanaryHi, s.BakeEndSec
	m.x = nil
	for _, x := range s.X {
		m.x = append(m.x, append([]float64(nil), x...))
	}
	m.y = append([]float64(nil), s.Y...)
	m.newRows = s.NewRows
	for c := range m.win {
		m.win[c] = nil
	}
	for c, w := range s.Win {
		m.win[c] = obsFromStates(w)
	}
	m.meta = make(map[int]trainMeta, len(s.Meta))
	for _, ms := range s.Meta {
		m.meta[ms.Ver] = trainMeta{AtSec: ms.AtSec, Rows: ms.Rows}
	}
	m.events = append([]Event(nil), s.Events...)
	return nil
}

// AssignmentForServeVer rebuilds a cell's barrier assignment from the
// manager's current slots, picking the serving model by version.
// Restores use it to re-pin collectors without replaying the barrier
// that installed them.
func (m *Manager) AssignmentForServeVer(serveVer int) (Assignment, error) {
	a := Assignment{
		Champ: m.champ, Chall: m.chall, Fb: m.fb,
		ChampVer: m.champVer, ChallVer: m.challVer, FbVer: m.fbVer,
		ServeVer: serveVer, Role: "champion",
	}
	switch serveVer {
	case m.champVer:
		a.Serve = m.champ
	case m.challVer:
		a.Serve = m.chall
		a.Role = "canary"
	case m.fbVer:
		a.Serve = m.fb
	default:
		return Assignment{}, fmt.Errorf("fleetpipeline: serving version %d matches no live slot (champ=%d chall=%d fb=%d)",
			serveVer, m.champVer, m.challVer, m.fbVer)
	}
	return a, nil
}

// PendingState is one in-flight VM's shadow scores.
type PendingState struct {
	VM       cluster.VMID `json:"vm"`
	Feats    []float64    `json:"feats"`
	Champ    float64      `json:"champ"`
	Chall    float64      `json:"chall"`
	Fb       float64      `json:"fb"`
	Serve    float64      `json:"serve"`
	ChampVer int          `json:"champ_ver"`
	ChallVer int          `json:"chall_ver"`
	FbVer    int          `json:"fb_ver"`
}

// CollectorState is the serializable state of one cell's collector. The
// model slots themselves are re-pinned by the restoring caller via
// Install (see AssignmentFor); this carries the versions for that
// lookup plus everything the collector accumulated.
type CollectorState struct {
	ChampVer int `json:"champ_ver"`
	ChallVer int `json:"chall_ver"`
	FbVer    int `json:"fb_ver"`
	ServeVer int `json:"serve_ver"`

	Pending []PendingState `json:"pending,omitempty"`
	Rows    []RowState     `json:"rows,omitempty"`
	Obs     []ObsState     `json:"obs,omitempty"`

	SumServeLoss float64   `json:"sum_serve_loss,omitempty"`
	Outcomes     int       `json:"outcomes,omitempty"`
	ServeWindow  []float64 `json:"serve_window,omitempty"`

	SumInsLoss float64 `json:"sum_ins_loss,omitempty"`
	InsN       int     `json:"ins_n,omitempty"`
}

// State captures the collector's accumulated state for serialization.
func (c *Collector) State() CollectorState {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CollectorState{
		ChampVer: c.champVer, ChallVer: c.challVer, FbVer: c.fbVer, ServeVer: c.serveVer,
		SumServeLoss: c.sumServeLoss, Outcomes: c.outcomes,
		ServeWindow: append([]float64(nil), c.serveWindow...),
		SumInsLoss:  c.sumInsLoss, InsN: c.insN,
	}
	ids := make([]cluster.VMID, 0, len(c.pending))
	for id := range c.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := c.pending[id]
		s.Pending = append(s.Pending, PendingState{
			VM: id, Feats: append([]float64(nil), p.feats...),
			Champ: p.champ, Chall: p.chall, Fb: p.fb, Serve: p.serve,
			ChampVer: p.champVer, ChallVer: p.challVer, FbVer: p.fbVer,
		})
	}
	for _, r := range c.rows {
		s.Rows = append(s.Rows, RowState{Feats: append([]float64(nil), r.Feats...), Label: r.Label})
	}
	s.Obs = obsStates(c.obs)
	return s
}

// SetState restores a state captured by State onto a freshly built
// collector. Call Install first to re-pin the model slots; SetState
// checks the versions line up.
func (c *Collector) SetState(s CollectorState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.champVer != s.ChampVer || c.challVer != s.ChallVer || c.fbVer != s.FbVer || c.serveVer != s.ServeVer {
		return fmt.Errorf("fleetpipeline: cell %d collector slots (%d,%d,%d serve %d) do not match state (%d,%d,%d serve %d)",
			c.cell, c.champVer, c.challVer, c.fbVer, c.serveVer, s.ChampVer, s.ChallVer, s.FbVer, s.ServeVer)
	}
	c.pending = make(map[cluster.VMID]pendingScore, len(s.Pending))
	for _, p := range s.Pending {
		c.pending[p.VM] = pendingScore{
			feats: append([]float64(nil), p.Feats...),
			champ: p.Champ, chall: p.Chall, fb: p.Fb, serve: p.Serve,
			champVer: p.ChampVer, challVer: p.ChallVer, fbVer: p.FbVer,
		}
	}
	c.rows = nil
	for _, r := range s.Rows {
		c.rows = append(c.rows, Row{Feats: append([]float64(nil), r.Feats...), Label: r.Label})
	}
	c.obs = obsFromStates(s.Obs)
	c.sumServeLoss = s.SumServeLoss
	c.outcomes = s.Outcomes
	c.serveWindow = append([]float64(nil), s.ServeWindow...)
	c.sumInsLoss = s.SumInsLoss
	c.insN = s.InsN
	return nil
}
