package fleetpipeline

import (
	"testing"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/pmu"
	"pond/internal/predict"
)

// fixedUM predicts a constant fraction.
type fixedUM float64

func (f fixedUM) PredictUntouchedFrac([]float64) float64 { return float64(f) }
func (f fixedUM) Name() string                           { return "Fixed" }

// testConfig is a tiny pipeline that trains and bakes within a few
// barriers.
func testConfig(cells int) Config {
	cfg := DefaultConfig(cells)
	cfg.MinTrainRows = 8
	cfg.MinHoldout = 4
	cfg.HoldoutWindow = 32
	cfg.BakeWindowSec = 2
	cfg.PromoteMargin = 0.05
	return cfg
}

// feed returns n rows/obs where the champion (version champVer, constant
// champPred) and challenger (challVer, challPred) score VMs whose true
// label is truth.
func feed(n int, champVer int, champPred float64, challVer int, challPred, truth float64) ([]Row, []Obs) {
	rows := make([]Row, n)
	obs := make([]Obs, n)
	for i := range rows {
		rows[i] = Row{Feats: []float64{float64(i)}, Label: truth}
		o := Obs{ChampVer: champVer, ChallVer: challVer, FbVer: -1}
		o.ChampLoss = lossOf(champPred, truth)
		if challVer >= 0 {
			o.ChallLoss = lossOf(challPred, truth)
		}
		obs[i] = o
	}
	return rows, obs
}

func lossOf(pred, truth float64) float64 {
	if pred > truth {
		return 3 * (pred - truth)
	}
	return truth - pred
}

func TestTickRejectsWrongCellCount(t *testing.T) {
	m := NewManager(testConfig(2), fixedUM(0.5))
	if _, err := m.Tick(1, make([][]Row, 1), make([][]Obs, 2)); err == nil {
		t.Fatal("short row set should error")
	}
	if _, err := m.Tick(1, make([][]Row, 2), make([][]Obs, 3)); err == nil {
		t.Fatal("long obs set should error")
	}
}

func TestRetrainOpensCanaryOnLowestCells(t *testing.T) {
	cfg := testConfig(4)
	cfg.CanaryFraction = 0.25
	m := NewManager(cfg, fixedUM(0.5))
	rows, obs := feed(8, 0, 0.5, -1, 0, 0.5)
	evs, err := m.Tick(1, [][]Row{rows, nil, nil, nil}, [][]Obs{obs, nil, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != EventRetrain || evs[1].Kind != EventCanaryStart {
		t.Fatalf("events = %v, want retrain + canary-start", evs)
	}
	if m.Stage() != StageCanary {
		t.Fatalf("stage = %s", m.Stage())
	}
	if got := m.CanaryCells(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("canary cells = %v, want [0]", got)
	}
	// Canary cell serves the challenger; control cells keep the champion.
	if a := m.AssignmentFor(0); a.Role != "canary" || a.ServeVer != 1 {
		t.Fatalf("cell 0 assignment = %+v", a)
	}
	if a := m.AssignmentFor(3); a.Role != "champion" || a.ServeVer != 0 {
		t.Fatalf("cell 3 assignment = %+v", a)
	}
	// Control cells still shadow-score the challenger.
	if a := m.AssignmentFor(3); a.ChallVer != 1 || a.Chall == nil {
		t.Fatalf("cell 3 must shadow the challenger: %+v", a)
	}
}

func TestCanaryFractionRounding(t *testing.T) {
	for _, tc := range []struct {
		cells int
		frac  float64
		want  int
	}{
		{4, 0.25, 1}, {4, 0.26, 2}, {4, 1, 4}, {8, 0.5, 4}, {3, 0.1, 1}, {1, 0.25, 1},
	} {
		cfg := testConfig(tc.cells)
		cfg.CanaryFraction = tc.frac
		m := NewManager(cfg, fixedUM(0.5))
		if got := m.canaryCount(); got != tc.want {
			t.Errorf("canaryCount(cells=%d frac=%g) = %d, want %d", tc.cells, tc.frac, got, tc.want)
		}
	}
}

// driveToCanary trains a challenger so the verdict paths can be tested.
func driveToCanary(t *testing.T, m *Manager, cells int) {
	t.Helper()
	rows, obs := feed(8, 0, 0.5, -1, 0, 0.5)
	perRow := make([][]Row, cells)
	perObs := make([][]Obs, cells)
	perRow[0], perObs[0] = rows, obs
	if _, err := m.Tick(1, perRow, perObs); err != nil {
		t.Fatal(err)
	}
	if m.Stage() != StageCanary {
		t.Fatal("pipeline did not open a canary")
	}
}

func TestBadChallengerRollsBackFromCanary(t *testing.T) {
	cfg := testConfig(4)
	cfg.CanaryFraction = 0.25
	m := NewManager(cfg, fixedUM(0.5))
	driveToCanary(t, m, 4)
	challVer := m.AssignmentFor(0).ChallVer

	// Canary cell observes the challenger losing badly to the champion
	// (truth 0.5: champion predicts 0.5, challenger way over at 0.9).
	perRow := make([][]Row, 4)
	perObs := make([][]Obs, 4)
	_, perObs[0] = feed(8, 0, 0.5, challVer, 0.9, 0.5)
	evs, err := m.Tick(3, perRow, perObs) // past bakeEnd = 1 + 2
	if err != nil {
		t.Fatal(err)
	}
	var rolledBack bool
	for _, e := range evs {
		if e.Kind == EventRollback && e.Ver == challVer {
			rolledBack = true
		}
	}
	if !rolledBack {
		t.Fatalf("events = %v, want rollback of ver %d", evs, challVer)
	}
	// Everyone serves the champion again; the challenger slot is empty.
	for cell := 0; cell < 4; cell++ {
		a := m.AssignmentFor(cell)
		if a.ServeVer != 0 || a.Role != "champion" || a.ChallVer != -1 {
			t.Fatalf("cell %d post-rollback assignment = %+v", cell, a)
		}
	}
}

func TestGoodChallengerPromotesFleetWide(t *testing.T) {
	cfg := testConfig(4)
	cfg.CanaryFraction = 0.5
	m := NewManager(cfg, fixedUM(0.1))
	driveToCanary(t, m, 4)
	challVer := m.AssignmentFor(0).ChallVer

	// Both canary cells see the challenger beating the stale champion.
	perRow := make([][]Row, 4)
	perObs := make([][]Obs, 4)
	_, perObs[0] = feed(4, 0, 0.1, challVer, 0.45, 0.5)
	_, perObs[1] = feed(4, 0, 0.1, challVer, 0.45, 0.5)
	evs, err := m.Tick(3, perRow, perObs)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Kind != EventPromote || evs[0].Ver != challVer {
		t.Fatalf("events = %v, want promote of ver %d", evs, challVer)
	}
	for cell := 0; cell < 4; cell++ {
		a := m.AssignmentFor(cell)
		if a.ServeVer != challVer || a.Role != "champion" {
			t.Fatalf("cell %d post-promotion assignment = %+v", cell, a)
		}
		// The displaced champion stays as the fallback regression guard.
		if a.FbVer != 0 || a.Fb == nil {
			t.Fatalf("cell %d lost the fallback: %+v", cell, a)
		}
	}
	if m.ChampionVer() != challVer {
		t.Fatalf("champion ver = %d", m.ChampionVer())
	}
}

func TestInsufficientCanaryHoldoutExtendsBake(t *testing.T) {
	cfg := testConfig(4)
	cfg.CanaryFraction = 0.25
	m := NewManager(cfg, fixedUM(0.5))
	driveToCanary(t, m, 4)
	challVer := m.AssignmentFor(0).ChallVer

	// Past the bake window but only 2 canary observations (< MinHoldout).
	perRow := make([][]Row, 4)
	perObs := make([][]Obs, 4)
	_, perObs[0] = feed(2, 0, 0.5, challVer, 0.9, 0.5)
	evs, err := m.Tick(3, perRow, perObs)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != EventHold {
		t.Fatalf("events = %v, want a single hold", evs)
	}
	if m.Stage() != StageCanary {
		t.Fatal("hold must keep the canary baking")
	}
	// The canary still serves the challenger during the extended bake.
	if a := m.AssignmentFor(0); a.ServeVer != challVer {
		t.Fatalf("canary assignment = %+v", a)
	}
}

func TestRegressedFanOutDemotesToFallback(t *testing.T) {
	cfg := testConfig(2)
	cfg.CanaryFraction = 1
	m := NewManager(cfg, fixedUM(0.1))
	driveToCanary(t, m, 2)
	challVer := m.AssignmentFor(0).ChallVer

	// Promote on strong canary data...
	perRow := make([][]Row, 2)
	perObs := make([][]Obs, 2)
	_, perObs[0] = feed(8, 0, 0.1, challVer, 0.45, 0.5)
	if _, err := m.Tick(3, perRow, perObs); err != nil {
		t.Fatal(err)
	}
	if m.ChampionVer() != challVer {
		t.Fatal("promotion did not happen")
	}
	// ...then the fleet-wide window shows the fallback was better all
	// along (labels moved back under the old model).
	perObs = make([][]Obs, 2)
	fbObs := make([]Obs, 8)
	for i := range fbObs {
		fbObs[i] = Obs{ChampVer: challVer, ChallVer: -1, FbVer: 0,
			ChampLoss: lossOf(0.45, 0.1), FbLoss: lossOf(0.1, 0.1)}
	}
	perObs[0] = fbObs
	evs, err := m.Tick(4, make([][]Row, 2), perObs)
	if err != nil {
		t.Fatal(err)
	}
	var demoted bool
	for _, e := range evs {
		if e.Kind == EventDemote && e.Ver == 0 {
			demoted = true
		}
	}
	if !demoted {
		t.Fatalf("events = %v, want demote back to ver 0", evs)
	}
	if m.ChampionVer() != 0 {
		t.Fatalf("champion ver = %d after demotion", m.ChampionVer())
	}
}

func TestEventStrings(t *testing.T) {
	for _, tc := range []struct {
		e    Event
		want string
	}{
		{Event{Kind: EventRetrain, Ver: 2, Rows: 96}, "fleetpipeline retrain ver=2 rows=96"},
		{Event{Kind: EventCanaryStart, Ver: 2, CanaryLo: 0, CanaryHi: 1}, "fleetpipeline canary-start ver=2 cells=0-1"},
		{Event{Kind: EventHold, Ver: 2, N: 3}, "fleetpipeline hold ver=2 n=3"},
		{Event{Kind: EventPromote, Ver: 2, ChampLoss: 0.5, ChallLoss: 0.25, N: 30},
			"fleetpipeline promote ver=2 loss=0.2500 champ-loss=0.5000 n=30"},
		{Event{Kind: EventRollback, Ver: 2, ChampLoss: 0.2, ChallLoss: 0.4, N: 30},
			"fleetpipeline rollback ver=2 loss=0.4000 champ-loss=0.2000 n=30"},
		// A rollback with no observations is the demotion-abort path, not
		// a verdict; it must not render as a zero-loss verdict.
		{Event{Kind: EventRollback, Ver: 3}, "fleetpipeline rollback ver=3 aborted-by-demotion"},
	} {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("Event.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestCollectorRoundTrip(t *testing.T) {
	col := NewCollector(0, fixedUM(0.3), nil, 1.82, 0.05, 3, 16)
	types := cluster.VMTypes()
	vm := cluster.VMRequest{ID: 7, Customer: 1, Type: types[0],
		GroundTruth: cluster.VMGroundTruth{UntouchedFrac: 0.6}}
	feats := []float64{1, 2, 3}
	col.ObserveDecision(vm, nil, feats, core.Decision{})
	col.ObserveOutcome(vm, pmu.Vector{}, false)

	rows, obs := col.Drain()
	if len(rows) != 1 || rows[0].Label != 0.6 || len(rows[0].Feats) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if len(obs) != 1 || obs[0].ChampVer != 0 || obs[0].ChallVer != -1 {
		t.Fatalf("obs = %+v", obs)
	}
	// UMLoss(0.3, 0.6) underpredicts: loss 0.3.
	if got := obs[0].ChampLoss; got < 0.299 || got > 0.301 {
		t.Fatalf("champ loss = %g", got)
	}
	// Drain clears.
	if rows, obs := col.Drain(); rows != nil || obs != nil {
		t.Fatal("second drain not empty")
	}
	q := col.Quality()
	if q.Outcomes != 1 || q.ServeVer != 0 || q.ServeLossMean < 0.299 || q.ServeLossMean > 0.301 {
		t.Fatalf("quality = %+v", q)
	}
}

func TestCollectorForgetDropsPending(t *testing.T) {
	col := NewCollector(0, fixedUM(0.3), nil, 1.82, 0.05, 3, 16)
	vm := cluster.VMRequest{ID: 9, Type: cluster.VMTypes()[0],
		GroundTruth: cluster.VMGroundTruth{UntouchedFrac: 0.6}}
	col.ObserveDecision(vm, nil, []float64{1}, core.Decision{})
	col.ForgetVM(vm.ID)
	col.ObserveOutcome(vm, pmu.Vector{}, false)
	if rows, obs := col.Drain(); len(rows) != 0 || len(obs) != 0 {
		t.Fatalf("forgotten VM still produced rows=%v obs=%v", rows, obs)
	}
}

func TestCollectorNilFeaturesIgnored(t *testing.T) {
	col := NewCollector(0, fixedUM(0.3), nil, 1.82, 0.05, 3, 16)
	vm := cluster.VMRequest{ID: 1, Type: cluster.VMTypes()[0]}
	col.ObserveDecision(vm, nil, nil, core.Decision{})
	col.ObserveOutcome(vm, pmu.Vector{}, false)
	if rows, obs := col.Drain(); len(rows) != 0 || len(obs) != 0 {
		t.Fatal("nil features must not produce telemetry")
	}
}

func TestCollectorServingChallengerQuality(t *testing.T) {
	// On a canary cell the serving loss must be the challenger's, not the
	// champion's.
	col := NewCollector(0, fixedUM(0.3), nil, 1.82, 0.05, 3, 16)
	chall := fixedUM(0.55)
	col.Install(Assignment{
		Champ: fixedUM(0.3), ChampVer: 0,
		Chall: chall, ChallVer: 1, FbVer: -1,
		Serve: chall, ServeVer: 1, Role: "canary",
	})
	vm := cluster.VMRequest{ID: 2, Type: cluster.VMTypes()[0],
		GroundTruth: cluster.VMGroundTruth{UntouchedFrac: 0.6}}
	col.ObserveDecision(vm, nil, []float64{1}, core.Decision{})
	col.ObserveOutcome(vm, pmu.Vector{}, false)
	q := col.Quality()
	// Challenger loss = 0.6-0.55 = 0.05; champion's would be 0.3.
	if q.ServeLossMean < 0.049 || q.ServeLossMean > 0.051 {
		t.Fatalf("serving loss = %g, want the challenger's 0.05", q.ServeLossMean)
	}
	if q.ServeVer != 1 {
		t.Fatalf("serve ver = %d", q.ServeVer)
	}
}

func TestSyntheticRolloutTrainsAndResolves(t *testing.T) {
	counts := SyntheticRollout(4, 8, 24, DefaultConfig(4))
	if counts.Retrains == 0 {
		t.Fatal("synthetic rollout never trained a challenger")
	}
	if counts.Promotions+counts.Rollbacks == 0 {
		t.Fatal("synthetic rollout never reached a verdict")
	}
}

func TestSyntheticRolloutDeterministic(t *testing.T) {
	a := SyntheticRollout(3, 6, 16, DefaultConfig(3))
	b := SyntheticRollout(3, 6, 16, DefaultConfig(3))
	if a != b {
		t.Fatalf("synthetic rollout not deterministic: %+v vs %+v", a, b)
	}
}

// BenchmarkRolloutLoop times the staged-rollout hot path; cmd/benchgate
// gates rollout_ns_per_op on the same work.
func BenchmarkRolloutLoop(b *testing.B) {
	cfg := DefaultConfig(4)
	cfg.MinTrainRows = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := SyntheticRollout(4, 8, 24, cfg); c.Retrains == 0 {
			b.Fatal("no retrain happened")
		}
	}
}

func TestPinServesPerCellGenerations(t *testing.T) {
	// Two cells' servers pinned to different release versions serve
	// different predictions concurrently — the staged-rollout serving
	// contract.
	canary := predict.NewServer(nil, fixedUM(0.9))
	control := predict.NewServer(nil, fixedUM(0.1))
	canary.Pin(1, nil, fixedUM(0.9))
	control.Pin(0, nil, fixedUM(0.1))
	if canary.Generation() == control.Generation() {
		t.Fatal("cells must pin distinct generations")
	}
	got, err := canary.PredictUntouched(1, []float64{0})
	if err != nil || got != 0.9 {
		t.Fatalf("canary served %g (%v)", got, err)
	}
	got, err = control.PredictUntouched(1, []float64{0})
	if err != nil || got != 0.1 {
		t.Fatalf("control served %g (%v)", got, err)
	}
	// Re-pinning the same generation keeps the cache warm.
	control.Pin(0, nil, fixedUM(0.5))
	got, _ = control.PredictUntouched(1, []float64{0})
	if got != 0.1 {
		t.Fatalf("same-generation re-pin must be a no-op, served %g", got)
	}
	// A new generation installs and invalidates.
	control.Pin(2, nil, fixedUM(0.5))
	got, _ = control.PredictUntouched(1, []float64{0})
	if got != 0.5 {
		t.Fatalf("new-generation pin must swap models, served %g", got)
	}
}

func TestCanaryRingRotatesPerRelease(t *testing.T) {
	// Five releases over a four-cell fleet at one canary cell each must
	// bake on rings 0, 1, 2, 3, then wrap back to 0 — bake exposure is
	// spread across the fleet instead of always pinning cell 0.
	cfg := testConfig(4)
	cfg.CanaryFraction = 0.25
	m := NewManager(cfg, fixedUM(0.5))

	var starts []Event
	lo, hi := -1, -1
	now := 0.0
	for release := 1; release <= 5; release++ {
		now += 10 // comfortably past every bake window
		rows := make([][]Row, 4)
		obs := make([][]Obs, 4)
		for c := 0; c < 4; c++ {
			r, _ := feed(8, 0, 0.5, -1, 0, 0.5)
			rows[c] = r
		}
		if lo >= 0 {
			// The baking challenger loses badly on its canary cells, so
			// every release rolls back and the champion stays version 0.
			for c := lo; c <= hi; c++ {
				_, o := feed(8, 0, 0.5, release-1, 0.95, 0.5)
				obs[c] = o
			}
		}
		evs, err := m.Tick(now, rows, obs)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			if e.Kind == EventCanaryStart {
				starts = append(starts, e)
				lo, hi = e.CanaryLo, e.CanaryHi
			}
		}
	}

	want := [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {0, 0}}
	if len(starts) != len(want) {
		t.Fatalf("saw %d canary starts, want %d: %v", len(starts), len(want), starts)
	}
	for i, e := range starts {
		if e.Ver != i+1 {
			t.Fatalf("canary start %d is release %d, want %d", i, e.Ver, i+1)
		}
		if e.CanaryLo != want[i][0] || e.CanaryHi != want[i][1] {
			t.Fatalf("release %d baked on cells %d-%d, want %d-%d",
				e.Ver, e.CanaryLo, e.CanaryHi, want[i][0], want[i][1])
		}
	}
}

func TestRingForUnevenFleet(t *testing.T) {
	// Five cells at two canary cells per ring: rings are [0,1], [2,3],
	// and the clamped [4,4]; release numbers rotate through them.
	cfg := testConfig(5)
	cfg.CanaryFraction = 0.4
	m := NewManager(cfg, fixedUM(0.5))
	for _, tc := range []struct{ ver, lo, hi int }{
		{1, 0, 1}, {2, 2, 3}, {3, 4, 4}, {4, 0, 1}, {5, 2, 3}, {6, 4, 4},
	} {
		lo, hi := m.ringFor(tc.ver)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("ringFor(%d) = %d-%d, want %d-%d", tc.ver, lo, hi, tc.lo, tc.hi)
		}
	}
}
