package fleetpipeline

import (
	"encoding/json"

	"pond/internal/mlops"
	"pond/internal/predict"
)

// trainMeta records how a release version was produced.
type trainMeta struct {
	AtSec float64
	Rows  int
}

// SnapshotJSON dumps the release train's live models — champion first —
// in the same auditable wire form as the per-cell lifecycle dumps
// (internal/mlops), with Cell set to -1: fleet releases belong to no
// single cell.
func (m *Manager) SnapshotJSON() (json.RawMessage, error) {
	slots := []struct {
		role  string
		model predict.Untouched
		ver   int
	}{
		{"champion", m.champ, m.champVer},
		{"challenger", m.chall, m.challVer},
		{"fallback", m.fb, m.fbVer},
	}
	var out []mlops.ModelSnapshot
	for _, s := range slots {
		if s.model == nil {
			continue
		}
		raw, err := mlops.MarshalUM(s.model)
		if err != nil {
			return nil, err
		}
		snap := mlops.ModelSnapshot{
			Cell: -1, Family: mlops.FamilyUM, Role: s.role,
			Ver: s.ver, Name: s.model.Name(), Model: raw,
		}
		if meta, ok := m.meta[s.ver]; ok {
			snap.TrainedAtSec = meta.AtSec
			snap.Rows = meta.Rows
		}
		out = append(out, snap)
	}
	return json.MarshalIndent(out, "", "  ")
}
