package fleetpipeline

import (
	"sync"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/mlops"
	"pond/internal/pmu"
	"pond/internal/predict"
)

// Row is one (admission-features, outcome) training example, the unit
// the fleet corpus pools across cells.
type Row struct {
	Feats []float64
	Label float64
}

// Obs is one departed VM's shadow-scoring result, stamped with the
// release versions that actually predicted at admission — a model must
// be judged by what it said, not by whichever release is live when the
// VM departs.
type Obs struct {
	ChampVer, ChallVer, FbVer    int
	ChampLoss, ChallLoss, FbLoss float64
}

// pendingScore holds a placed VM's admission features and shadow
// predictions until departure.
type pendingScore struct {
	feats                     []float64
	champ, chall, fb          float64
	champVer, challVer, fbVer int
	serve                     float64
}

// Collector is the fleet pipeline's agent inside one cell: it
// shadow-scores every admission with the distributed contenders, turns
// departures into training rows and holdout observations, and hands both
// to the fleet Manager at each retrain barrier via Drain. It also tracks
// the cell's serving-model quality (the model actually on the request
// path — the challenger on canary cells), so canary and control cells
// report comparable prediction-error metrics.
//
// It is safe for concurrent use; the fleet's discrete-event loop drives
// it sequentially for determinism.
type Collector struct {
	mu sync.Mutex

	cell        int
	overPenalty float64
	windowCap   int

	// Distributed slots (installed at barriers via Install).
	champ, chall, fb          predict.Untouched
	champVer, challVer, fbVer int
	serve                     predict.Untouched
	serveVer                  int

	pending map[cluster.VMID]pendingScore

	// Drained at each barrier.
	rows []Row
	obs  []Obs

	// Whole-run serving quality.
	sumServeLoss float64
	outcomes     int
	serveWindow  []float64 // rolling, capped at windowCap

	// Frozen insensitivity monitoring (the fleet pipeline manages the
	// untouched-memory family; the insensitivity bootstrap keeps serving
	// and is scored here so reports stay comparable with cell scope).
	insens     predict.Insensitivity
	ratio, pdm float64
	sumInsLoss float64
	insN       int
}

// NewCollector builds a cell's collector around the bootstrap release
// (version 0) and the cell's frozen insensitivity model. overPenalty and
// windowCap mirror the fleet Manager's Config so losses agree.
func NewCollector(cell int, bootstrap predict.Untouched, insens predict.Insensitivity,
	ratio, pdm, overPenalty float64, windowCap int) *Collector {
	return &Collector{
		cell:        cell,
		overPenalty: overPenalty,
		windowCap:   windowCap,
		champ:       bootstrap,
		champVer:    0,
		challVer:    -1,
		fbVer:       -1,
		serve:       bootstrap,
		serveVer:    0,
		pending:     make(map[cluster.VMID]pendingScore),
		insens:      insens,
		ratio:       ratio,
		pdm:         pdm,
	}
}

// Install pins a barrier assignment: the shadow slots every outcome will
// score and the model serving this cell's request path.
func (c *Collector) Install(a Assignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.champ, c.champVer = a.Champ, a.ChampVer
	c.chall, c.challVer = a.Chall, a.ChallVer
	c.fb, c.fbVer = a.Fb, a.FbVer
	c.serve, c.serveVer = a.Serve, a.ServeVer
}

// ServeVer returns the release version on the cell's request path.
func (c *Collector) ServeVer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serveVer
}

// ObserveDecision shadow-scores one admission with every live contender.
// It satisfies core.ShadowHook, so the fleet loop registers it directly
// on the scheduling pipeline.
func (c *Collector) ObserveDecision(vm cluster.VMRequest, _ *pmu.Vector, umFeatures []float64, _ core.Decision) {
	if umFeatures == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := pendingScore{
		feats:    append([]float64(nil), umFeatures...),
		champVer: -1, challVer: -1, fbVer: -1,
	}
	if c.champ != nil {
		p.champ = c.champ.PredictUntouchedFrac(p.feats)
		p.champVer = c.champVer
	}
	if c.chall != nil {
		p.chall = c.chall.PredictUntouchedFrac(p.feats)
		p.challVer = c.challVer
	}
	if c.fb != nil {
		p.fb = c.fb.PredictUntouchedFrac(p.feats)
		p.fbVer = c.fbVer
	}
	if c.serve != nil {
		p.serve = c.serve.PredictUntouchedFrac(p.feats)
	}
	c.pending[vm.ID] = p
}

// ObserveOutcome records a departed VM's ground truth, closing its
// pending shadow scores into a holdout observation and a labeled
// training row. The counters argument mirrors the per-cell lifecycle's
// signature, so the fleet loop drives either observer identically.
func (c *Collector) ObserveOutcome(vm cluster.VMRequest, counters pmu.Vector, haveCounters bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if p, ok := c.pending[vm.ID]; ok {
		delete(c.pending, vm.ID)
		label := vm.GroundTruth.UntouchedFrac
		c.rows = append(c.rows, Row{Feats: p.feats, Label: label})
		o := Obs{ChampVer: p.champVer, ChallVer: p.challVer, FbVer: p.fbVer}
		if p.champVer >= 0 {
			o.ChampLoss = mlops.UMLoss(p.champ, label, c.overPenalty)
		}
		if p.challVer >= 0 {
			o.ChallLoss = mlops.UMLoss(p.chall, label, c.overPenalty)
		}
		if p.fbVer >= 0 {
			o.FbLoss = mlops.UMLoss(p.fb, label, c.overPenalty)
		}
		c.obs = append(c.obs, o)

		serveLoss := mlops.UMLoss(p.serve, label, c.overPenalty)
		c.sumServeLoss += serveLoss
		c.outcomes++
		c.serveWindow = appendCapped(c.serveWindow, serveLoss, c.windowCap)
	}

	if haveCounters && c.insens != nil && vm.GroundTruth.Workload.Name != "" {
		label := 0.0
		if vm.GroundTruth.Workload.Slowdown(c.ratio, 1) <= c.pdm {
			label = 1
		}
		c.sumInsLoss += mlops.UMLoss(c.insens.Score(counters), label, c.overPenalty)
		c.insN++
	}
}

// ForgetVM drops a VM's pending shadow scores — rejected admissions and
// VMs lost to failures never produce an outcome or a training row.
func (c *Collector) ForgetVM(id cluster.VMID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, id)
}

// Drain returns the training rows and holdout observations recorded
// since the previous barrier, clearing both. VMs still in flight stay
// pending and surface at a later barrier, after they depart.
func (c *Collector) Drain() ([]Row, []Obs) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, obs := c.rows, c.obs
	c.rows, c.obs = nil, nil
	return rows, obs
}

// Quality is the cell's end-of-run serving-quality summary.
type Quality struct {
	// ServeVer is the release version on the request path at run end.
	ServeVer int
	// ServeLossMean is the serving model's mean asymmetric loss over
	// every completed VM; ServeLossFinal the same over the final rolling
	// window — the end-of-run prediction error.
	ServeLossMean, ServeLossFinal float64
	// InsensLossMean scores the frozen insensitivity bootstrap.
	InsensLossMean float64
	// Outcomes counts completed VMs that closed a shadow score.
	Outcomes int
}

// Quality summarizes the cell's serving quality so far.
func (c *Collector) Quality() Quality {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := Quality{ServeVer: c.serveVer, Outcomes: c.outcomes}
	if c.outcomes > 0 {
		q.ServeLossMean = c.sumServeLoss / float64(c.outcomes)
	}
	if len(c.serveWindow) > 0 {
		var sum float64
		for _, v := range c.serveWindow {
			sum += v
		}
		q.ServeLossFinal = sum / float64(len(c.serveWindow))
	}
	if c.insN > 0 {
		q.InsensLossMean = c.sumInsLoss / float64(c.insN)
	}
	return q
}
