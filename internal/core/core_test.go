package core

import (
	"math"
	"strings"
	"testing"

	"pond/internal/cluster"
	"pond/internal/host"
	"pond/internal/pmu"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/telemetry"
	"pond/internal/workload"
)

// fixedScore is a stub insensitivity model returning a constant.
type fixedScore float64

func (f fixedScore) Score(pmu.Vector) float64 { return float64(f) }
func (f fixedScore) Name() string             { return "fixed" }

func testVM(id cluster.VMID, cust cluster.CustomerID, memGB float64, wname string) cluster.VMRequest {
	w, ok := workload.ByName(wname)
	if !ok {
		panic("unknown workload " + wname)
	}
	return cluster.VMRequest{
		ID:       id,
		Customer: cust,
		Type:     cluster.VMType{Name: "T", Cores: 4, MemoryGB: memGB},
		GroundTruth: cluster.VMGroundTruth{
			UntouchedFrac: 0.5,
			Workload:      w,
		},
	}
}

func TestDecideAllPoolForInsensitive(t *testing.T) {
	p := NewPipeline(DefaultConfig(), fixedScore(0.95), predict.FixedUntouched{Frac: 0.3}, nil)
	vm := testVM(1, 1, 16, "541.leela_r")
	var v pmu.Vector
	d := p.Decide(vm, &v, predict.UMFeatures(vm, telemetry.History{}))
	if d.Kind != AllPool || d.PoolGB != 16 || d.LocalGB != 0 {
		t.Fatalf("decision = %+v, want all-pool", d)
	}
	if d.Score != 0.95 {
		t.Fatalf("score = %v", d.Score)
	}
}

func TestDecideZNUMAWhenSensitive(t *testing.T) {
	p := NewPipeline(DefaultConfig(), fixedScore(0.2), predict.FixedUntouched{Frac: 0.3}, nil)
	vm := testVM(1, 1, 16, "505.mcf_r")
	var v pmu.Vector
	d := p.Decide(vm, &v, predict.UMFeatures(vm, telemetry.History{}))
	if d.Kind != ZNUMA {
		t.Fatalf("decision = %+v, want zNUMA", d)
	}
	// 0.3 * 16 = 4.8 -> 4 GB aligned down.
	if d.PoolGB != 4 || d.LocalGB != 12 {
		t.Fatalf("split = %g/%g, want 12/4", d.LocalGB, d.PoolGB)
	}
}

func TestDecideNoHistorySkipsInsensitivePath(t *testing.T) {
	p := NewPipeline(DefaultConfig(), fixedScore(0.99), predict.FixedUntouched{Frac: 0.25}, nil)
	vm := testVM(1, 1, 16, "505.mcf_r")
	d := p.Decide(vm, nil, predict.UMFeatures(vm, telemetry.History{}))
	if d.Kind == AllPool {
		t.Fatal("no-history VM placed all-pool; Figure 13 requires the UM path")
	}
}

func TestDecideAllLocalOnZeroUM(t *testing.T) {
	p := NewPipeline(DefaultConfig(), nil, predict.FixedUntouched{Frac: 0}, nil)
	vm := testVM(1, 1, 16, "505.mcf_r")
	d := p.Decide(vm, nil, predict.UMFeatures(vm, telemetry.History{}))
	if d.Kind != AllLocal || d.LocalGB != 16 {
		t.Fatalf("decision = %+v, want all-local", d)
	}
}

func TestDecideNilModelsAllLocal(t *testing.T) {
	p := NewPipeline(DefaultConfig(), nil, nil, nil)
	vm := testVM(1, 1, 8, "505.mcf_r")
	d := p.Decide(vm, nil, nil)
	if d.Kind != AllLocal {
		t.Fatalf("decision = %+v", d)
	}
}

func TestKnownSensitiveCustomerSkipsAllPool(t *testing.T) {
	store := telemetry.NewStore()
	store.MarkSensitive(7)
	p := NewPipeline(DefaultConfig(), fixedScore(0.99), predict.FixedUntouched{Frac: 0.25}, store)
	vm := testVM(1, 7, 16, "505.mcf_r")
	var v pmu.Vector
	d := p.Decide(vm, &v, predict.UMFeatures(vm, telemetry.History{}))
	if d.Kind == AllPool {
		t.Fatal("QoS-flagged customer went all-pool again")
	}
}

func TestEvaluateAllLocalNeverExceeds(t *testing.T) {
	p := NewPipeline(DefaultConfig(), nil, nil, nil)
	vm := testVM(1, 1, 16, "505.mcf_r")
	out := p.Evaluate(vm, Decision{Kind: AllLocal, LocalGB: 16})
	if out.ExceedsPDM || out.SlowdownFrac != 0 || out.Mitigated {
		t.Fatalf("all-local outcome = %+v", out)
	}
}

func TestEvaluateAllPoolSensitiveExceedsAndMitigates(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPipeline(cfg, nil, nil, nil)
	vm := testVM(1, 9, 16, "505.mcf_r") // 34% slowdown at 182%
	vm.ArrivalSec = 1000
	out := p.Evaluate(vm, Decision{Kind: AllPool, PoolGB: 16})
	if !out.ExceedsPDM || !out.Mitigated {
		t.Fatalf("outcome = %+v, want exceed+mitigate", out)
	}
	if out.MitigateAtSec != 1000+cfg.MonitorDelaySec {
		t.Fatalf("mitigate at %v", out.MitigateAtSec)
	}
	if !p.Store().KnownSensitive(9) {
		t.Fatal("customer not flagged sensitive after mitigation")
	}
}

func TestEvaluateAllPoolInsensitiveFine(t *testing.T) {
	p := NewPipeline(DefaultConfig(), nil, nil, nil)
	vm := testVM(1, 1, 16, "541.leela_r") // ~0.5% slowdown
	out := p.Evaluate(vm, Decision{Kind: AllPool, PoolGB: 16})
	if out.ExceedsPDM || out.Mitigated {
		t.Fatalf("insensitive all-pool outcome = %+v", out)
	}
}

func TestEvaluateZNUMACorrectPredictionFine(t *testing.T) {
	p := NewPipeline(DefaultConfig(), nil, nil, nil)
	vm := testVM(1, 1, 16, "505.mcf_r") // untouched 0.5 => touched 8
	// local 10 GB >= touched 8: no spill beyond metadata.
	out := p.Evaluate(vm, Decision{Kind: ZNUMA, LocalGB: 10, PoolGB: 6})
	if out.SpilledGB != 0 {
		t.Fatalf("spilled = %v", out.SpilledGB)
	}
	if out.ExceedsPDM {
		t.Fatalf("correctly sized zNUMA exceeded PDM: %+v", out)
	}
}

func TestEvaluateZNUMAOverpredictionSpills(t *testing.T) {
	p := NewPipeline(DefaultConfig(), nil, nil, nil)
	vm := testVM(1, 1, 16, "505.mcf_r") // touched 8 GB
	out := p.Evaluate(vm, Decision{Kind: ZNUMA, LocalGB: 4, PoolGB: 12})
	if out.SpilledGB != 4 {
		t.Fatalf("spilled = %v, want 4", out.SpilledGB)
	}
	if !out.ExceedsPDM || !out.Mitigated {
		t.Fatalf("mcf spilling half its footprint must exceed PDM: %+v", out)
	}
}

func TestDecisionKindStrings(t *testing.T) {
	if AllLocal.String() != "all-local" || ZNUMA.String() != "zNUMA" || AllPool.String() != "all-pool" {
		t.Fatal("kind names wrong")
	}
	if DecisionKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestDecisionPoolFrac(t *testing.T) {
	d := Decision{LocalGB: 12, PoolGB: 4}
	if d.PoolFrac() != 0.25 {
		t.Fatalf("pool frac = %v", d.PoolFrac())
	}
	if (Decision{}).PoolFrac() != 0 {
		t.Fatal("empty decision pool frac")
	}
}

func TestPlanTraceEndToEnd(t *testing.T) {
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = 2
	cfg.Days = 25
	cfg.ServersPerCluster = 8
	traces := cluster.Generate(cfg)

	// Train a real UM model on a separate trace set.
	trainCfg := cfg
	trainCfg.Seed = 99
	trainTraces := cluster.Generate(trainCfg)
	ds := predict.BuildUMDataset(trainTraces)
	um := predict.TrainGBMUntouched(ds.X, ds.TrueUntouched, 0.05, 1)

	sens := predict.BuildSensitivityDataset(workload.Ratio182, 0.05, 2, 1)
	rf := predict.TrainForest(sens.X, sens.Insensitive, 1)
	thr := predict.ThresholdForLabelRate(predict.DatasetScores(rf, sens), 0.30)

	pcfg := DefaultConfig()
	pcfg.InsensScoreThreshold = thr
	p := NewPipeline(pcfg, rf, um, nil)

	plan, st := p.PlanTrace(&traces[0], stats.NewRand(5))
	if st.VMs != len(traces[0].VMs) {
		t.Fatalf("stats cover %d of %d VMs", st.VMs, len(traces[0].VMs))
	}
	if len(plan.PoolFrac) != st.VMs {
		t.Fatal("plan length mismatch")
	}
	if st.AllPoolN == 0 {
		t.Error("no VM placed all-pool; insensitivity path inactive")
	}
	if st.ZNUMAN == 0 {
		t.Error("no VM got a zNUMA node; UM path inactive")
	}
	if st.PoolGBShare < 0.1 || st.PoolGBShare > 0.8 {
		t.Errorf("pool share = %v, implausible", st.PoolGBShare)
	}
	// Misprediction rate should be low single digits: the whole point
	// of the pipeline.
	if st.MispredictFrac() > 0.08 {
		t.Errorf("mispredictions = %.3f, want <= 0.08", st.MispredictFrac())
	}
	// Every mitigation lands within the plan.
	for i, at := range plan.MitigateAtSec {
		if at < traces[0].VMs[i].ArrivalSec {
			t.Fatalf("mitigation before arrival for VM %d", i)
		}
	}
}

func TestQoSMonitorAllLocalNeverMitigates(t *testing.T) {
	q := NewQoSMonitor(DefaultConfig(), fixedScore(0))
	p := &host.Placement{LocalGB: 16}
	v := q.Check(p, 16, pmu.Vector{})
	if v.NeedsMitigation || v.Overpredicted {
		t.Fatalf("all-local verdict = %+v", v)
	}
}

func TestQoSMonitorZNUMARequiresBothConditions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InsensScoreThreshold = 0.5
	p := &host.Placement{LocalGB: 12, PoolGB: 4}

	// Overpredicted but insensitive: keep monitoring.
	q := NewQoSMonitor(cfg, fixedScore(0.9))
	if v := q.Check(p, 14, pmu.Vector{}); !v.Overpredicted || v.NeedsMitigation {
		t.Fatalf("insensitive spill verdict = %+v", v)
	}
	// Overpredicted and sensitive: mitigate.
	q = NewQoSMonitor(cfg, fixedScore(0.1))
	if v := q.Check(p, 14, pmu.Vector{}); !v.NeedsMitigation {
		t.Fatalf("sensitive spill verdict = %+v", v)
	}
	// Not overpredicted: no mitigation even if sensitive.
	if v := q.Check(p, 10, pmu.Vector{}); v.NeedsMitigation {
		t.Fatalf("no-spill verdict = %+v", v)
	}
}

func TestQoSMonitorFullyPooledSensitiveMitigates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InsensScoreThreshold = 0.5
	p := &host.Placement{LocalGB: 0, PoolGB: 16}
	q := NewQoSMonitor(cfg, fixedScore(0.1))
	if v := q.Check(p, 8, pmu.Vector{}); !v.NeedsMitigation {
		t.Fatalf("sensitive all-pool verdict = %+v", v)
	}
	q = NewQoSMonitor(cfg, fixedScore(0.9))
	if v := q.Check(p, 8, pmu.Vector{}); v.NeedsMitigation {
		t.Fatalf("insensitive all-pool verdict = %+v", v)
	}
}

func TestMitigationManagerAppliesReconfiguration(t *testing.T) {
	spec := cluster.ServerSpec{Sockets: 2, CoresPerSock: 24, MemGBPerSock: 192}
	h := host.New(1, spec, host.Config{})
	h.AddPoolCapacity(8)
	vm := testVM(42, 1, 16, "505.mcf_r")
	if _, err := h.PlaceVM(vm, 8, 8, nil); err != nil {
		t.Fatal(err)
	}
	m := NewMitigationManager(h)
	ran, dur, err := m.Apply(42, QoSVerdict{NeedsMitigation: true})
	if err != nil || !ran {
		t.Fatalf("apply = %v %v", ran, err)
	}
	if math.Abs(dur-8*host.ReconfigSecPerGB) > 1e-9 {
		t.Fatalf("duration = %v", dur)
	}
	if m.Mitigations() != 1 || m.CopySeconds() != dur {
		t.Fatal("counters wrong")
	}
	// A no-mitigation verdict is a no-op.
	ran, _, err = m.Apply(42, QoSVerdict{})
	if ran || err != nil {
		t.Fatal("no-op verdict ran")
	}
}

func TestPlanStatsString(t *testing.T) {
	st := PlanStats{VMs: 100, AllPoolN: 20, ZNUMAN: 50, AllLocalN: 30, ExceedPDMN: 2, MitigatedN: 2, PoolGBShare: 0.4}
	if st.String() == "" || st.MispredictFrac() != 0.02 {
		t.Fatal("stats rendering wrong")
	}
	if (PlanStats{}).MispredictFrac() != 0 || (PlanStats{}).MitigatedFrac() != 0 {
		t.Fatal("empty stats divide by zero")
	}
}

func TestExplainBranches(t *testing.T) {
	p := NewPipeline(DefaultConfig(), fixedScore(0.95), predict.FixedUntouched{Frac: 0.3}, nil)
	vm := testVM(1, 1, 16, "541.leela_r")

	// No history.
	s := p.Explain(vm, nil, predict.UMFeatures(vm, telemetry.History{}))
	if !strings.Contains(s, "no workload history") {
		t.Fatalf("missing history branch: %s", s)
	}
	// With history, high score: all-pool.
	var v pmu.Vector
	s = p.Explain(vm, &v, predict.UMFeatures(vm, telemetry.History{}))
	if !strings.Contains(s, "all-pool") || !strings.Contains(s, "score 0.950") {
		t.Fatalf("missing score branch: %s", s)
	}
	// QoS-flagged customer.
	p.Store().MarkSensitive(vm.Customer)
	s = p.Explain(vm, &v, predict.UMFeatures(vm, telemetry.History{}))
	if !strings.Contains(s, "QoS-flagged") {
		t.Fatalf("missing flagged branch: %s", s)
	}
	// No UM model: all-local.
	p2 := NewPipeline(DefaultConfig(), nil, nil, nil)
	s = p2.Explain(vm, nil, nil)
	if !strings.Contains(s, "all-local") {
		t.Fatalf("missing all-local branch: %s", s)
	}
}

func TestPipelineServesThroughServer(t *testing.T) {
	// The pipeline must consult the server's models, not the ones it was
	// built with: swapping the server changes decisions without touching
	// the pipeline.
	p := NewPipeline(DefaultConfig(), nil, nil, nil)
	srv := predict.NewServer(nil, predict.FixedUntouched{Frac: 0.5})
	p.UseServer(srv)
	vm := testVM(50, 9, 16, "541.leela_r")
	feats := make([]float64, 12)
	d := p.Decide(vm, nil, feats)
	if d.Kind != ZNUMA || d.PoolGB != 8 {
		t.Fatalf("served decision = %+v, want 8 GB zNUMA", d)
	}
	srv.Swap(nil, predict.FixedUntouched{Frac: 0})
	if d := p.Decide(vm, nil, feats); d.Kind != AllLocal {
		t.Fatalf("decision after swap = %+v, want all-local", d)
	}
}

func TestPipelineServerWithoutModelFallsBackLocal(t *testing.T) {
	p := NewPipeline(DefaultConfig(), fixedScore(0.99), predict.FixedUntouched{Frac: 0.5}, nil)
	p.UseServer(predict.NewServer(nil, nil))
	// The server overrides the direct models; with none installed the VM
	// stays local.
	v := pmu.Vector{}
	if d := p.Decide(testVM(51, 9, 16, "541.leela_r"), &v, make([]float64, 12)); d.Kind != AllLocal {
		t.Fatalf("decision = %+v, want all-local when the server is empty", d)
	}
}

func TestShadowHookSeesEveryDecision(t *testing.T) {
	p := NewPipeline(DefaultConfig(), nil, predict.FixedUntouched{Frac: 0.25}, nil)
	var got []Decision
	p.SetShadowHook(func(_ cluster.VMRequest, _ *pmu.Vector, _ []float64, d Decision) {
		got = append(got, d)
	})
	d1 := p.Decide(testVM(52, 9, 16, "541.leela_r"), nil, make([]float64, 12))
	d2 := p.Decide(testVM(53, 9, 32, "541.leela_r"), nil, nil)
	if len(got) != 2 || got[0] != d1 || got[1] != d2 {
		t.Fatalf("shadow hook observed %v, want [%v %v]", got, d1, d2)
	}
	p.SetShadowHook(nil)
	p.Decide(testVM(54, 9, 16, "541.leela_r"), nil, nil)
	if len(got) != 2 {
		t.Fatal("removed hook still fired")
	}
}

func TestSetInsensThreshold(t *testing.T) {
	p := NewPipeline(DefaultConfig(), fixedScore(0.8), nil, nil)
	v := pmu.Vector{}
	if d := p.Decide(testVM(55, 9, 8, "541.leela_r"), &v, nil); d.Kind == AllPool {
		t.Fatal("score 0.8 below the default threshold should not go all-pool")
	}
	p.SetInsensThreshold(0.7)
	if d := p.Decide(testVM(55, 9, 8, "541.leela_r"), &v, nil); d.Kind != AllPool {
		t.Fatalf("decision = %+v, want all-pool after lowering the threshold", d)
	}
}
