package core

import (
	"pond/internal/cluster"
	"pond/internal/host"
	"pond/internal/pmu"
	"pond/internal/predict"
)

// QoSVerdict is the monitor's conclusion for one VM (Figure 13 B).
type QoSVerdict struct {
	// Overpredicted is set for zNUMA VMs whose guest has committed more
	// memory than the local vNUMA node holds — the untouched-memory
	// prediction was too optimistic and the VM is spilling.
	Overpredicted bool

	// Sensitive is set when the live counters classify the workload as
	// latency-sensitive.
	Sensitive bool

	// NeedsMitigation requests the one-time reconfiguration to
	// all-local memory.
	NeedsMitigation bool
}

// QoSMonitor implements the runtime monitoring flow (B1-B3 in Figure 11):
// it inspects hypervisor and hardware counters for every running VM and
// asks the mitigation manager to reconfigure VMs whose performance impact
// exceeds the PDM.
type QoSMonitor struct {
	cfg    Config
	insens predict.Insensitivity
}

// NewQoSMonitor builds a monitor sharing the pipeline's configuration.
func NewQoSMonitor(cfg Config, insens predict.Insensitivity) *QoSMonitor {
	return &QoSMonitor{cfg: cfg, insens: insens}
}

// Check evaluates one VM. committedGB is the hypervisor's guest-committed
// counter; counters are the VM's recent mean PMU telemetry.
//
// Decision logic per Figure 13 (B): a VM using no pool memory never needs
// mitigation. A zNUMA VM needs mitigation only when it both spilled
// (overpredicted untouched memory) and its workload is latency-sensitive.
// A fully pool-backed VM needs mitigation whenever it is sensitive.
func (q *QoSMonitor) Check(p *host.Placement, committedGB float64, counters pmu.Vector) QoSVerdict {
	var v QoSVerdict
	if p.PoolGB == 0 {
		return v
	}
	fullyPooled := p.LocalGB == 0
	if !fullyPooled {
		v.Overpredicted = committedGB > p.LocalGB
	}
	if q.insens != nil {
		v.Sensitive = q.insens.Score(counters) < q.cfg.InsensScoreThreshold
	}
	if fullyPooled {
		v.NeedsMitigation = v.Sensitive
	} else {
		v.NeedsMitigation = v.Overpredicted && v.Sensitive
	}
	return v
}

// MitigationManager applies verdicts to a host (B2-B3): it triggers the
// hypervisor's one-time reconfiguration and tallies activity.
type MitigationManager struct {
	host        *host.Host
	mitigations int
	copySeconds float64
}

// NewMitigationManager wraps a host.
func NewMitigationManager(h *host.Host) *MitigationManager {
	return &MitigationManager{host: h}
}

// Apply reconfigures the VM when the verdict requires it. It returns
// whether a mitigation ran and the copy duration in seconds.
func (m *MitigationManager) Apply(id cluster.VMID, v QoSVerdict) (bool, float64, error) {
	if !v.NeedsMitigation {
		return false, 0, nil
	}
	dur, _, err := m.host.Reconfigure(id)
	if err != nil {
		return false, 0, err
	}
	m.mitigations++
	m.copySeconds += dur
	return true, dur, nil
}

// Mitigations returns how many reconfigurations ran.
func (m *MitigationManager) Mitigations() int { return m.mitigations }

// CopySeconds returns the total time spent copying pool memory to local.
func (m *MitigationManager) CopySeconds() float64 { return m.copySeconds }
