package core

import "fmt"

// SchedulerState is the serializable dynamic state of a
// ClusterScheduler: the maintenance-drain flags and the pool-fallback
// counter (the censored-demand signal the capacity controller reads).
// Hosts and the pool manager are wiring, rebuilt by the restoring
// caller.
type SchedulerState struct {
	Drained   []bool `json:"drained,omitempty"`
	Fallbacks int64  `json:"fallbacks,omitempty"`
}

// State captures the scheduler's current state for serialization.
func (cs *ClusterScheduler) State() SchedulerState {
	return SchedulerState{
		Drained:   append([]bool(nil), cs.drained...),
		Fallbacks: cs.fallbacks,
	}
}

// SetState restores a state captured by State onto a freshly built
// scheduler over the same host set.
func (cs *ClusterScheduler) SetState(s SchedulerState) error {
	if len(s.Drained) != 0 && len(s.Drained) != len(cs.hosts) {
		return fmt.Errorf("core: state has %d drain flags for %d hosts", len(s.Drained), len(cs.hosts))
	}
	for i := range cs.drained {
		cs.drained[i] = false
	}
	copy(cs.drained, s.Drained)
	cs.fallbacks = s.Fallbacks
	return nil
}
