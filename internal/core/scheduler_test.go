package core

import (
	"errors"
	"testing"

	"pond/internal/cluster"
	"pond/internal/emc"
	"pond/internal/host"
	"pond/internal/pool"
	"pond/internal/stats"
)

// schedVM builds a VM with explicit cores (unlike testVM, whose second
// argument is the customer id).
func schedVM(id cluster.VMID, cores int, memGB float64, wname string) cluster.VMRequest {
	vm := testVM(id, 1, memGB, wname)
	vm.Type.Cores = cores
	return vm
}

func newTestScheduler(t *testing.T, hosts int, poolGB int) (*ClusterScheduler, *pool.Manager) {
	t.Helper()
	spec := cluster.ServerSpec{Sockets: 2, CoresPerSock: 8, MemGBPerSock: 64}
	hs := make([]*host.Host, hosts)
	for i := range hs {
		hs[i] = host.New(emc.HostID(i), spec, host.Config{})
	}
	var pm *pool.Manager
	if poolGB > 0 {
		pm = pool.NewManager([]*emc.Device{emc.NewDevice("emc0", poolGB, hosts)}, stats.NewRand(1))
	}
	return NewClusterScheduler(hs, pm), pm
}

func TestSchedulerPanicsWithoutHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClusterScheduler(nil, nil)
}

func TestSchedulerPlacesAllLocal(t *testing.T) {
	cs, _ := newTestScheduler(t, 2, 64)
	vm := schedVM(1, 4, 16, "P5-web")
	res, err := cs.Place(vm, Decision{Kind: AllLocal, LocalGB: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostIndex < 0 || res.Placement.PoolGB != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSchedulerTightPacking(t *testing.T) {
	cs, _ := newTestScheduler(t, 2, 0)
	// First VM makes host 0 the tighter host; the second should follow.
	r1, err := cs.Place(schedVM(1, 4, 16, "P5-web"), Decision{Kind: AllLocal, LocalGB: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cs.Place(schedVM(2, 4, 16, "P5-web"), Decision{Kind: AllLocal, LocalGB: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.HostIndex != r2.HostIndex {
		t.Fatalf("tight packing violated: %d vs %d", r1.HostIndex, r2.HostIndex)
	}
}

func TestSchedulerOnlinesPoolCapacity(t *testing.T) {
	cs, pm := newTestScheduler(t, 2, 64)
	vm := schedVM(1, 4, 32, "P2-database")
	res, err := cs.Place(vm, Decision{Kind: ZNUMA, LocalGB: 20, PoolGB: 12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.PoolGB != 12 || len(res.Placement.Slices) != 12 {
		t.Fatalf("pool backing = %g GB, %d slices", res.Placement.PoolGB, len(res.Placement.Slices))
	}
	if pm.FreeGB(0) != 52 {
		t.Fatalf("pool free = %d, want 52", pm.FreeGB(0))
	}
	if cs.Hosts()[res.HostIndex].OnlinePoolGB() != 12 {
		t.Fatal("host did not online the capacity")
	}
}

func TestSchedulerFallsBackWhenPoolExhausted(t *testing.T) {
	cs, _ := newTestScheduler(t, 1, 4)
	vm := schedVM(1, 2, 32, "P2-database")
	res, err := cs.Place(vm, Decision{Kind: ZNUMA, LocalGB: 16, PoolGB: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBackToLocal {
		t.Fatal("expected all-local fallback")
	}
	if res.Placement.PoolGB != 0 || res.Placement.LocalGB != 32 {
		t.Fatalf("fallback placement = %+v", res.Placement)
	}
}

func TestSchedulerFallsBackWithoutManager(t *testing.T) {
	cs, _ := newTestScheduler(t, 1, 0)
	res, err := cs.Place(schedVM(1, 2, 16, "P5-web"), Decision{Kind: ZNUMA, LocalGB: 8, PoolGB: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBackToLocal || res.Placement.PoolGB != 0 {
		t.Fatalf("no-manager fallback = %+v", res)
	}
}

func TestSchedulerNoHostFits(t *testing.T) {
	cs, _ := newTestScheduler(t, 1, 0)
	_, err := cs.Place(schedVM(1, 64, 16, "P5-web"), Decision{Kind: AllLocal, LocalGB: 16}, 0)
	if !errors.Is(err, ErrNoHost) {
		t.Fatalf("err = %v, want ErrNoHost", err)
	}
}

func TestSchedulerPoolHeavyRetriesAllLocal(t *testing.T) {
	// A decision with more local than any host has free must retry as
	// all-local if that fits... here it cannot, so the error surfaces.
	cs, _ := newTestScheduler(t, 1, 64)
	vm := schedVM(1, 2, 200, "P5-web")
	if _, err := cs.Place(vm, Decision{Kind: ZNUMA, LocalGB: 190, PoolGB: 10}, 0); err == nil {
		t.Fatal("oversized VM accepted")
	}
}

func TestSchedulerRelease(t *testing.T) {
	cs, pm := newTestScheduler(t, 2, 64)
	vm := schedVM(1, 4, 32, "P2-database")
	res, err := cs.Place(vm, Decision{Kind: ZNUMA, LocalGB: 24, PoolGB: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Release(res.HostIndex, 1, 10); err != nil {
		t.Fatal(err)
	}
	// Slices drain back asynchronously.
	if free := pm.FreeGB(11); free != 64 {
		t.Fatalf("pool free after drain = %d, want 64", free)
	}
	if cs.Hosts()[res.HostIndex].OnlinePoolGB() != 0 {
		t.Fatal("host kept pool capacity online")
	}
	if _, err := cs.Release(99, 1, 0); err == nil {
		t.Fatal("bad host index accepted")
	}
}

func TestSchedulerHandleHostFailure(t *testing.T) {
	cs, pm := newTestScheduler(t, 2, 64)
	for i := 1; i <= 3; i++ {
		vm := schedVM(cluster.VMID(i), 2, 16, "P2-database")
		if _, err := cs.Place(vm, Decision{Kind: ZNUMA, LocalGB: 12, PoolGB: 4}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Tight packing put all three on one host; fail it.
	lost, reclaimed, err := cs.HandleHostFailure(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 3 {
		t.Fatalf("lost %d VMs, want 3", len(lost))
	}
	if reclaimed != 12 {
		t.Fatalf("reclaimed %d GB, want 12", reclaimed)
	}
	// The reclaimed capacity is immediately reusable by host 1.
	if free := pm.FreeGB(0); free != 64 {
		t.Fatalf("pool free = %d, want 64", free)
	}
	if _, _, err := cs.HandleHostFailure(9); err == nil {
		t.Fatal("bad host index accepted")
	}
}

func TestSchedulerSkipsDrainedHosts(t *testing.T) {
	cs, _ := newTestScheduler(t, 2, 0)
	if err := cs.SetDrained(0, true); err != nil {
		t.Fatal(err)
	}
	if !cs.Drained(0) || cs.Drained(1) {
		t.Fatal("drain flags wrong")
	}
	for i := 0; i < 3; i++ {
		vm := schedVM(cluster.VMID(100+i), 4, 16, "P5-web")
		res, err := cs.Place(vm, Decision{Kind: AllLocal, LocalGB: 16}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.HostIndex != 1 {
			t.Fatalf("placement landed on drained host %d", res.HostIndex)
		}
	}
	// Undrain restores the host.
	if err := cs.SetDrained(0, false); err != nil {
		t.Fatal(err)
	}
	if cs.Drained(0) {
		t.Fatal("host 0 still drained")
	}
	if err := cs.SetDrained(5, true); err == nil {
		t.Fatal("out-of-range drain should fail")
	}
}

func TestSchedulerAllDrainedRejects(t *testing.T) {
	cs, _ := newTestScheduler(t, 1, 0)
	_ = cs.SetDrained(0, true)
	vm := schedVM(200, 2, 8, "P5-web")
	if _, err := cs.Place(vm, Decision{Kind: AllLocal, LocalGB: 8}, 0); !errors.Is(err, ErrNoHost) {
		t.Fatalf("want ErrNoHost, got %v", err)
	}
}

func TestDrainHostTriesAllCandidates(t *testing.T) {
	// Host 1 fits the 12 GB VM in aggregate (8+8 free) but on no single
	// NUMA node; host 2 has a whole node free. The drain must fall
	// through host 1's failed LiveMigrate and land the VM on host 2.
	cs, _ := newTestScheduler(t, 3, 0)
	hs := cs.Hosts()
	target := schedVM(1, 1, 12, "P5-web")
	if _, err := hs[0].PlaceVM(target, 12, 0, nil); err != nil {
		t.Fatal(err)
	}
	for i, fill := range []cluster.VMID{10, 11} {
		if _, err := hs[1].PlaceVM(schedVM(fill, 1, 56, "P5-web"), 56, 0, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := hs[2].PlaceVM(schedVM(12, 1, 56, "P5-web"), 56, 0, nil); err != nil {
		t.Fatal(err)
	}

	migrations, remaining, err := cs.DrainHost(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != 0 {
		t.Fatalf("VM left on draining host: remaining=%v", remaining)
	}
	if len(migrations) != 1 || migrations[0].VM != 1 || migrations[0].Target != 2 {
		t.Fatalf("migrations = %+v, want VM 1 -> host 2", migrations)
	}
}
