// Package core implements Pond's distributed control plane (§4.3,
// Figures 11 and 13): the prediction-driven VM scheduling path (A) that
// decides each VM's local/pool memory split, and the QoS monitoring path
// (B) that detects mispredictions and triggers the one-time memory
// reconfiguration.
//
// The pipeline composes the substrates built elsewhere in this repo: the
// latency-insensitivity and untouched-memory models from
// internal/predict, telemetry from internal/telemetry, the workload
// performance model for ground-truth evaluation, and the cluster
// simulator's SplitPlan as its output format.
package core

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"pond/internal/cluster"
	"pond/internal/pmu"
	"pond/internal/predict"
	"pond/internal/sim"
	"pond/internal/stats"
	"pond/internal/telemetry"
)

// Config sets Pond's two externally visible knobs — the performance
// degradation margin (PDM) and the target tail percentage (TP) — plus the
// operating-point parameters the Eq. (1) optimizer chooses.
type Config struct {
	// Ratio is the pool latency level (e.g. 1.82 for a 182% increase).
	Ratio float64

	// PDM is the allowed slowdown fraction (0.05 = 5%).
	PDM float64

	// TP is the fraction of VMs that must stay within the PDM (0.98).
	TP float64

	// InsensScoreThreshold gates the all-pool path: VMs whose
	// insensitivity score reaches it go entirely onto pool DRAM.
	InsensScoreThreshold float64

	// UMMargin is the safety margin subtracted from untouched-memory
	// predictions.
	UMMargin float64

	// MonitorDelaySec is how long the QoS monitor takes to detect a
	// misprediction and trigger mitigation.
	MonitorDelaySec float64
}

// DefaultConfig returns the paper's headline configuration: PDM = 5%,
// TP = 98%, at the 182% latency level, with a conservative insensitivity
// threshold.
func DefaultConfig() Config {
	return Config{
		Ratio:                1.82,
		PDM:                  0.05,
		TP:                   0.98,
		InsensScoreThreshold: 0.85,
		UMMargin:             0,
		MonitorDelaySec:      600,
	}
}

// DecisionKind is the Figure 13 scheduling outcome.
type DecisionKind int

// The three allocation outcomes of Figure 13 (A).
const (
	AllLocal DecisionKind = iota // entirely socket-local DRAM
	ZNUMA                        // local vNUMA + pool-backed zNUMA
	AllPool                      // entirely pool DRAM (latency-insensitive)
)

// String names the decision kind.
func (k DecisionKind) String() string {
	switch k {
	case AllLocal:
		return "all-local"
	case ZNUMA:
		return "zNUMA"
	case AllPool:
		return "all-pool"
	default:
		return fmt.Sprintf("DecisionKind(%d)", int(k))
	}
}

// Decision is the scheduler's memory split for one VM.
type Decision struct {
	Kind    DecisionKind
	LocalGB float64
	PoolGB  float64
	// Score is the insensitivity score when the model ran (else 0).
	Score float64
}

// PoolFrac returns the pool share of the VM's memory.
func (d Decision) PoolFrac() float64 {
	total := d.LocalGB + d.PoolGB
	if total == 0 {
		return 0
	}
	return d.PoolGB / total
}

// ShadowHook observes every scheduling decision with its model inputs.
// The mlops lifecycle registers one to shadow-score each admission with
// champion and challenger models (A/B validation before promotion).
type ShadowHook func(vm cluster.VMRequest, counters *pmu.Vector, umFeatures []float64, d Decision)

// Pipeline wires the prediction models and telemetry into the scheduling
// and monitoring flows.
type Pipeline struct {
	cfg    Config
	insens predict.Insensitivity
	um     predict.Untouched
	store  *telemetry.Store

	// srv, when set, routes inference through the serving layer so
	// retrained models hot-swap via predict.Server.Swap (§5).
	srv    *predict.Server
	shadow ShadowHook

	// insensThr is the live all-pool gate, stored atomically so a
	// promotion can move it while decisions are being served.
	insensThr atomic.Uint64
}

// NewPipeline builds the control plane. Either model may be nil: a nil
// insensitivity model disables the all-pool path, a nil untouched model
// makes every non-LI VM all-local.
func NewPipeline(cfg Config, insens predict.Insensitivity, um predict.Untouched, store *telemetry.Store) *Pipeline {
	if store == nil {
		store = telemetry.NewStore()
	}
	p := &Pipeline{cfg: cfg, insens: insens, um: um, store: store}
	p.insensThr.Store(math.Float64bits(cfg.InsensScoreThreshold))
	return p
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Store returns the telemetry store backing the pipeline.
func (p *Pipeline) Store() *telemetry.Store { return p.store }

// UseServer routes all model inference through the inference server: the
// models installed there (not the ones passed to NewPipeline) serve every
// decision, repeated requests hit its per-generation cache, and
// Server.Swap hot-swaps retrained models without rebuilding the pipeline.
func (p *Pipeline) UseServer(s *predict.Server) { p.srv = s }

// Server returns the attached inference server (nil when inference runs
// from the directly held models). The fleet pipeline pins per-cell model
// generations through it during staged rollouts.
func (p *Pipeline) Server() *predict.Server { return p.srv }

// SetShadowHook registers fn to observe every Decide call after the
// decision is made. Pass nil to remove.
func (p *Pipeline) SetShadowHook(fn ShadowHook) { p.shadow = fn }

// SetInsensThreshold updates the all-pool gate at runtime: a promoted
// insensitivity model serves at its own operating point. Safe to call
// concurrently with Decide (the gate is read atomically).
func (p *Pipeline) SetInsensThreshold(t float64) { p.insensThr.Store(math.Float64bits(t)) }

// InsensThreshold returns the live all-pool gate.
func (p *Pipeline) InsensThreshold() float64 { return math.Float64frombits(p.insensThr.Load()) }

// Decide runs the Figure 13 scheduling flow for one VM.
//
// counters carries the workload-history PMU telemetry (nil when the VM's
// customer has no prior observed VMs); umFeatures is the Figure 14
// metadata feature vector. The decision order matches the paper: known
// latency-sensitive customers skip the all-pool path; with history, an
// insensitivity score above the threshold places the VM entirely on pool
// DRAM; otherwise the untouched-memory prediction sizes a zNUMA node
// (rounded down to whole GB), and a zero prediction keeps the VM local.
func (p *Pipeline) Decide(vm cluster.VMRequest, counters *pmu.Vector, umFeatures []float64) Decision {
	d := p.decide(vm, counters, umFeatures)
	if p.shadow != nil {
		p.shadow(vm, counters, umFeatures, d)
	}
	return d
}

func (p *Pipeline) decide(vm cluster.VMRequest, counters *pmu.Vector, umFeatures []float64) Decision {
	mem := vm.Type.MemoryGB

	if counters != nil && !p.store.KnownSensitive(vm.Customer) {
		if score, ok := p.scoreInsens(vm, counters); ok {
			if score >= p.InsensThreshold() {
				return Decision{Kind: AllPool, PoolGB: mem, Score: score}
			}
			// Fall through to the untouched-memory path with the score
			// recorded for observability.
			d := p.decideUM(vm, umFeatures)
			d.Score = score
			return d
		}
	}
	return p.decideUM(vm, umFeatures)
}

// scoreInsens serves the latency-insensitivity score — through the
// inference server when one is attached (per-(customer, workload) cache,
// hot-swapped models), else from the directly held model.
func (p *Pipeline) scoreInsens(vm cluster.VMRequest, v *pmu.Vector) (float64, bool) {
	if p.srv != nil {
		score, err := p.srv.ScoreInsensitivity(insensCacheKey(vm, v), *v)
		return score, err == nil
	}
	if p.insens == nil {
		return 0, false
	}
	return p.insens.Score(*v), true
}

// insensCacheKey identifies the (customer, workload) pair, as the
// serving contract requires. Opaque VMs carry no workload identity, so
// their key mixes the sampled counters and every VM scores fresh rather
// than inheriting another workload's cached score. Keys are folded
// through the streaming digest so the miss path allocates nothing.
func insensCacheKey(vm cluster.VMRequest, v *pmu.Vector) int64 {
	d := stats.NewDigest().Word(uint64(vm.Customer)).Word(hashString(vm.WorkloadName))
	if vm.WorkloadName == "" {
		for _, c := range v {
			d = d.Word(math.Float64bits(c))
		}
	}
	return d.Sum()
}

// predictUM serves the untouched-memory fraction. The server cache key
// hashes the full feature vector: identical requests hit, any change in
// the customer's history recomputes.
func (p *Pipeline) predictUM(vm cluster.VMRequest, features []float64) (float64, bool) {
	if features == nil {
		return 0, false
	}
	if p.srv != nil {
		frac, err := p.srv.PredictUntouched(umCacheKey(vm, features), features)
		return frac, err == nil
	}
	if p.um == nil {
		return 0, false
	}
	return p.um.PredictUntouchedFrac(features), true
}

func (p *Pipeline) decideUM(vm cluster.VMRequest, umFeatures []float64) Decision {
	mem := vm.Type.MemoryGB
	frac, ok := p.predictUM(vm, umFeatures)
	if !ok {
		return Decision{Kind: AllLocal, LocalGB: mem}
	}
	frac -= p.cfg.UMMargin
	if frac < 0 {
		frac = 0
	}
	poolGB := float64(int(frac * mem)) // GB-aligned, rounded down (§4.4)
	if poolGB <= 0 {
		return Decision{Kind: AllLocal, LocalGB: mem}
	}
	return Decision{Kind: ZNUMA, LocalGB: mem - poolGB, PoolGB: poolGB}
}

// umCacheKey folds the customer and feature vector into a serving-cache
// key, allocation-free via the streaming digest.
func umCacheKey(vm cluster.VMRequest, features []float64) int64 {
	d := stats.NewDigest().Word(uint64(vm.Customer))
	for _, f := range features {
		d = d.Word(math.Float64bits(f))
	}
	return d.Sum()
}

// hashString digests a string with FNV-1a (empty hashes to a distinct
// "unknown" value). The fold is inlined — identical to hash/fnv's
// 64-bit variant — so key construction never allocates.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Outcome is the ground-truth consequence of a decision, as the QoS
// monitor would observe it.
type Outcome struct {
	// SlowdownFrac is the VM's realized slowdown versus all-local.
	SlowdownFrac float64

	// ExceedsPDM marks a scheduling misprediction.
	ExceedsPDM bool

	// SpilledGB is the touched memory that landed on the zNUMA node.
	SpilledGB float64

	// Mitigated is set when the QoS monitor detects the problem and
	// schedules the one-time reconfiguration.
	Mitigated     bool
	MitigateAtSec float64
}

// Evaluate computes the decision's outcome from the VM's hidden ground
// truth (the simulator's stand-in for actually running the workload).
// Detected mispredictions are flagged for mitigation after the monitoring
// delay, and the customer is recorded as latency-sensitive so future VMs
// skip the all-pool path (§4.4).
func (p *Pipeline) Evaluate(vm cluster.VMRequest, d Decision) Outcome {
	w := vm.GroundTruth.Workload
	var out Outcome
	switch d.Kind {
	case AllPool:
		out.SlowdownFrac = w.Slowdown(p.cfg.Ratio, 1)
		out.SpilledGB = vm.TouchedGB()
	case ZNUMA:
		touched := vm.TouchedGB()
		spilled := touched - d.LocalGB
		if spilled < 0 {
			spilled = 0
		}
		out.SpilledGB = spilled
		if touched > 0 {
			out.SlowdownFrac = w.SpillSlowdown(p.cfg.Ratio, stats.Clamp(spilled/touched, 0, 1))
		}
	default:
		// All-local VMs run at baseline speed.
	}
	out.ExceedsPDM = out.SlowdownFrac > p.cfg.PDM
	if out.ExceedsPDM && d.PoolGB > 0 {
		out.Mitigated = true
		out.MitigateAtSec = vm.ArrivalSec + p.cfg.MonitorDelaySec
		p.store.MarkSensitive(vm.Customer)
	}
	return out
}

// PlanStats aggregates a trace replay.
type PlanStats struct {
	VMs        int
	AllPoolN   int
	ZNUMAN     int
	AllLocalN  int
	ExceedPDMN int
	MitigatedN int

	// PoolGBShare is the GB-weighted share of memory placed on pools at
	// scheduling time.
	PoolGBShare float64
}

// MispredictFrac returns the fraction of VMs exceeding the PDM.
func (s PlanStats) MispredictFrac() float64 {
	if s.VMs == 0 {
		return 0
	}
	return float64(s.ExceedPDMN) / float64(s.VMs)
}

// MitigatedFrac returns the fraction of VMs the QoS monitor reconfigured.
func (s PlanStats) MitigatedFrac() float64 {
	if s.VMs == 0 {
		return 0
	}
	return float64(s.MitigatedN) / float64(s.VMs)
}

// String renders the stats.
func (s PlanStats) String() string {
	return fmt.Sprintf("vms=%d all-pool=%d zNUMA=%d all-local=%d pool-share=%.1f%% mispredict=%.2f%% mitigated=%.2f%%",
		s.VMs, s.AllPoolN, s.ZNUMAN, s.AllLocalN, 100*s.PoolGBShare,
		100*s.MispredictFrac(), 100*s.MitigatedFrac())
}

// PlanTrace replays one cluster trace through the full control plane and
// returns the simulator split plan plus statistics. The RNG drives the
// PMU sampling noise the scheduler sees. History features are built
// causally from the trace itself, exactly as the nightly production
// pipeline would have them.
func (p *Pipeline) PlanTrace(tr *cluster.Trace, r *stats.Rand) (sim.SplitPlan, PlanStats) {
	ds := predict.BuildUMDataset([]cluster.Trace{*tr})
	plan := sim.SplitPlan{
		PoolFrac:      make([]float64, len(tr.VMs)),
		MitigateAtSec: make(map[int]float64),
	}
	var st PlanStats
	var poolGB, totalGB float64
	for i := range tr.VMs {
		vm := tr.VMs[i]
		st.VMs++

		// Workload history exists once the customer has completed VMs.
		var counters *pmu.Vector
		if ds.X[i][6] > 0 { // history count feature
			v := pmu.Sample(vm.GroundTruth.Workload, r)
			counters = &v
		}
		d := p.Decide(vm, counters, ds.X[i])
		switch d.Kind {
		case AllPool:
			st.AllPoolN++
		case ZNUMA:
			st.ZNUMAN++
		default:
			st.AllLocalN++
		}
		plan.PoolFrac[i] = d.PoolFrac()
		poolGB += d.PoolGB
		totalGB += vm.Type.MemoryGB

		out := p.Evaluate(vm, d)
		if out.ExceedsPDM {
			st.ExceedPDMN++
		}
		if out.Mitigated {
			st.MitigatedN++
			plan.MitigateAtSec[i] = out.MitigateAtSec
		}

		// Departure telemetry feeds future history (the dataset already
		// encodes causality; this records QoS outcomes).
		p.store.RecordOutcome(vm.Customer, vm.DepartureSec(), vm.GroundTruth.UntouchedFrac)
	}
	if totalGB > 0 {
		st.PoolGBShare = poolGB / totalGB
	}
	return plan, st
}

// Explain renders the reasoning behind a decision for operators: which
// Figure 13 branch fired and with what inputs. Decision audit trails are
// how a platform team debugs "why did this VM get pool memory".
func (p *Pipeline) Explain(vm cluster.VMRequest, counters *pmu.Vector, umFeatures []float64) string {
	// The inner decide skips the shadow hook: an audit must not register
	// pending shadow scores (or re-stamp a running VM's) in the mlops
	// lifecycle.
	d := p.decide(vm, counters, umFeatures)
	var b strings.Builder
	fmt.Fprintf(&b, "VM %d (%d cores, %g GB, customer %d): %s",
		vm.ID, vm.Type.Cores, vm.Type.MemoryGB, vm.Customer, d.Kind)
	// Availability reflects whatever serves the decision — the inference
	// server's installed models when one is attached, the directly held
	// models otherwise — probed without running (and accounting) real
	// inference.
	switch {
	case counters == nil:
		b.WriteString("\n  no workload history: latency-insensitivity path skipped")
	case p.store.KnownSensitive(vm.Customer):
		b.WriteString("\n  customer previously QoS-flagged: all-pool path skipped")
	default:
		if !p.hasInsensModel() {
			b.WriteString("\n  no insensitivity model: all-pool path skipped")
		} else {
			fmt.Fprintf(&b, "\n  insensitivity score %.3f vs threshold %.3f", d.Score, p.InsensThreshold())
		}
	}
	if d.Kind != AllPool {
		if !p.hasUMModel() || umFeatures == nil {
			b.WriteString("\n  no untouched-memory model: all-local")
		} else {
			fmt.Fprintf(&b, "\n  untouched-memory prediction => %g GB zNUMA / %g GB local", d.PoolGB, d.LocalGB)
		}
	}
	return b.String()
}

func (p *Pipeline) hasInsensModel() bool {
	if p.srv != nil {
		insens, _ := p.srv.Installed()
		return insens
	}
	return p.insens != nil
}

func (p *Pipeline) hasUMModel() bool {
	if p.srv != nil {
		_, um := p.srv.Installed()
		return um
	}
	return p.um != nil
}
