package core

import (
	"errors"
	"fmt"
	"sort"

	"pond/internal/cluster"
	"pond/internal/emc"
	"pond/internal/host"
	"pond/internal/pool"
)

// ClusterScheduler packs VMs onto the hosts of one pool group with pool
// memory as an additional bin-packing dimension (§5: "Azure's VM
// scheduler incorporates zNUMA requests and pool memory as an additional
// dimension into its bin packing").
//
// Placement policy: among hosts that fit the VM's cores and local memory,
// pick the one with the fewest free cores (tight packing, like the
// production Protean allocator). Pool capacity is onlined through the
// Pool Manager before the VM starts; if the pool is exhausted the VM
// falls back to an all-local allocation rather than failing (§4.3).
type ClusterScheduler struct {
	hosts   []*host.Host
	manager *pool.Manager

	// drained marks hosts excluded from new placements (maintenance
	// drain): resident VMs keep running but arrivals route elsewhere.
	drained []bool

	// fallbacks counts pool-heavy decisions downgraded to all-local
	// because the pool had no reachable capacity — the censoring signal
	// the elastic-pool controller reads as "demand exceeded capacity".
	fallbacks int64
}

// ErrNoHost is returned when no host fits the VM.
var ErrNoHost = errors.New("core: no host with sufficient capacity")

// noHostError is the rejection error Place returns. Rendering the
// message lazily keeps the fleet's reject path (which only does
// errors.Is(err, ErrNoHost) and logs its own line) down to one
// allocation instead of fmt.Errorf's several.
type noHostError struct {
	cores   int
	localGB float64
}

func (e *noHostError) Error() string {
	return fmt.Sprintf("%v: %d cores / %g GB local", ErrNoHost, e.cores, e.localGB)
}

func (e *noHostError) Unwrap() error { return ErrNoHost }

// NewClusterScheduler wires hosts and the pool manager.
func NewClusterScheduler(hosts []*host.Host, manager *pool.Manager) *ClusterScheduler {
	if len(hosts) == 0 {
		panic("core: scheduler needs at least one host")
	}
	return &ClusterScheduler{hosts: hosts, manager: manager, drained: make([]bool, len(hosts))}
}

// Hosts returns the managed hosts.
func (cs *ClusterScheduler) Hosts() []*host.Host { return cs.hosts }

// SetDrained marks a host in or out of maintenance drain.
func (cs *ClusterScheduler) SetDrained(hostIndex int, drained bool) error {
	if hostIndex < 0 || hostIndex >= len(cs.hosts) {
		return fmt.Errorf("core: host index %d out of range", hostIndex)
	}
	cs.drained[hostIndex] = drained
	return nil
}

// Drained reports whether a host is excluded from new placements.
func (cs *ClusterScheduler) Drained(hostIndex int) bool {
	return hostIndex >= 0 && hostIndex < len(cs.hosts) && cs.drained[hostIndex]
}

// Migration records one VM moved off a draining host.
type Migration struct {
	VM     cluster.VMID
	Target int
}

// DrainHost marks a host drained and live-migrates its resident VMs to
// hosts with all-local headroom, releasing their pool slices back to the
// manager. VMs that fit nowhere stay put and are returned as remaining.
// Migration proceeds in VM-id order so a seed fully determines the
// outcome.
func (cs *ClusterScheduler) DrainHost(hostIndex int, now float64) (migrations []Migration, remaining []cluster.VMID, err error) {
	if err := cs.SetDrained(hostIndex, true); err != nil {
		return nil, nil, err
	}
	src := cs.hosts[hostIndex]
	ids := src.VMs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p, ok := src.Placement(id)
		if !ok {
			continue
		}
		moved := false
		for t, h := range cs.hosts {
			if t == hostIndex || cs.drained[t] {
				continue
			}
			if h.FreeCores() < p.VM.Type.Cores || h.FreeLocalGB() < p.VM.Type.MemoryGB {
				continue
			}
			_, slices, merr := host.LiveMigrate(src, h, id)
			if merr != nil {
				// Aggregate capacity fit but no single NUMA node did;
				// keep trying the remaining hosts.
				continue
			}
			if len(slices) > 0 && cs.manager != nil {
				cs.manager.ReleaseCapacity(emc.HostID(hostIndex), slices, now)
			}
			migrations = append(migrations, Migration{VM: id, Target: t})
			moved = true
			break
		}
		if !moved {
			remaining = append(remaining, id)
		}
	}
	return migrations, remaining, nil
}

// PlaceResult reports where a VM landed.
type PlaceResult struct {
	HostIndex int
	Placement *host.Placement
	// FellBackToLocal is set when the pool was exhausted and the
	// decision was downgraded to all-local.
	FellBackToLocal bool
}

// Place admits a VM under the given decision at the given time.
func (cs *ClusterScheduler) Place(vm cluster.VMRequest, d Decision, now float64) (PlaceResult, error) {
	res := PlaceResult{HostIndex: -1}

	// Host selection: tightest fit by free cores among hosts that fit
	// cores and local memory.
	bestCores := 1 << 30
	for i, h := range cs.hosts {
		if cs.drained[i] {
			continue
		}
		if h.FreeCores() >= vm.Type.Cores && h.FreeLocalGB() >= d.LocalGB && h.FreeCores() < bestCores {
			bestCores = h.FreeCores()
			res.HostIndex = i
		}
	}
	if res.HostIndex < 0 {
		// A pool-heavy decision may still fit somewhere as all-local.
		if d.PoolGB > 0 {
			return cs.Place(vm, Decision{Kind: AllLocal, LocalGB: vm.Type.MemoryGB}, now)
		}
		return res, &noHostError{cores: vm.Type.Cores, localGB: d.LocalGB}
	}

	var slices []pool.SliceRef
	localGB, poolGB := d.LocalGB, d.PoolGB
	if poolGB > 0 && cs.manager != nil {
		add, err := cs.manager.AddCapacity(emc.HostID(res.HostIndex), int(poolGB), now)
		if err != nil {
			// Pool exhausted: fall back to all-local (§4.3). The host
			// chosen above may lack the extra local memory; re-select —
			// and keep the fallback flag on the recursive result, so
			// callers (the QoS record, the capacity controller's
			// censored-demand signal) see this placement for what it is.
			cs.fallbacks++
			if cs.hosts[res.HostIndex].FreeLocalGB() < vm.Type.MemoryGB {
				r, rerr := cs.Place(vm, Decision{Kind: AllLocal, LocalGB: vm.Type.MemoryGB}, now)
				if rerr == nil {
					r.FellBackToLocal = true
				}
				return r, rerr
			}
			localGB, poolGB = vm.Type.MemoryGB, 0
			res.FellBackToLocal = true
		} else {
			slices = add.Slices
			cs.hosts[res.HostIndex].AddPoolCapacity(float64(len(slices)))
		}
	} else if poolGB > 0 {
		localGB, poolGB = vm.Type.MemoryGB, 0
		res.FellBackToLocal = true
	}

	p, err := cs.hosts[res.HostIndex].PlaceVM(vm, localGB, poolGB, slices)
	if err != nil {
		// Undo the pool grant before surfacing the error.
		if len(slices) > 0 {
			_ = cs.hosts[res.HostIndex].RemovePoolCapacity(float64(len(slices)))
			cs.manager.ReleaseCapacity(emc.HostID(res.HostIndex), slices, now)
		}
		return res, err
	}
	res.Placement = p
	return res, nil
}

// Fallbacks returns how many placements were downgraded from a pool
// split to all-local because the pool had no reachable capacity.
func (cs *ClusterScheduler) Fallbacks() int64 { return cs.fallbacks }

// Release stops a VM on the given host, returning its pool slices to the
// manager for asynchronous offline.
func (cs *ClusterScheduler) Release(hostIndex int, id cluster.VMID, now float64) (*host.Placement, error) {
	if hostIndex < 0 || hostIndex >= len(cs.hosts) {
		return nil, fmt.Errorf("core: host index %d out of range", hostIndex)
	}
	p, err := cs.hosts[hostIndex].ReleaseVM(id)
	if err != nil {
		return nil, err
	}
	if len(p.Slices) > 0 {
		if err := cs.hosts[hostIndex].RemovePoolCapacity(float64(len(p.Slices))); err != nil {
			return nil, err
		}
		if cs.manager != nil {
			cs.manager.ReleaseCapacity(emc.HostID(hostIndex), p.Slices, now)
		}
	}
	return p, nil
}

// HandleHostFailure reclaims a dead host's pool memory (§4.2): its VMs
// are gone with it, and every slice it owned returns to the pool for
// reallocation to other hosts. It returns the lost VM ids and reclaimed
// capacity.
func (cs *ClusterScheduler) HandleHostFailure(hostIndex int) (lost []cluster.VMID, reclaimedGB int, err error) {
	if hostIndex < 0 || hostIndex >= len(cs.hosts) {
		return nil, 0, fmt.Errorf("core: host index %d out of range", hostIndex)
	}
	h := cs.hosts[hostIndex]
	lost = h.VMs()
	for _, id := range lost {
		if _, rerr := h.ReleaseVM(id); rerr != nil {
			return lost, 0, rerr
		}
	}
	if cs.manager != nil {
		reclaimedGB = cs.manager.ReclaimHost(emc.HostID(hostIndex))
	}
	return lost, reclaimedGB, nil
}
