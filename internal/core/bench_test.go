package core

import (
	"testing"

	"pond/internal/pmu"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/telemetry"
)

// BenchmarkDecideMiss measures the pipeline's prediction-disabled path:
// no insensitivity model, no untouched-memory model, so every VM falls
// through to the all-local default. This is the fleet event loop's
// per-admission cost when predictions are off (the benchgate smoke
// configuration) and must stay allocation-free — a Decision is returned
// by value and no feature vectors or errors may escape to the heap.
func BenchmarkDecideMiss(b *testing.B) {
	p := NewPipeline(DefaultConfig(), nil, nil, telemetry.NewStore())
	vm := testVM(1, 7, 32, "541.leela_r")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := p.Decide(vm, nil, nil)
		if d.Kind != AllLocal {
			b.Fatalf("decision = %+v, want all-local", d)
		}
	}
}

// BenchmarkDecideScored measures the full scored path — insensitivity
// model consulted on the counters, then the untouched-memory split —
// with the models attached directly (no serving layer).
func BenchmarkDecideScored(b *testing.B) {
	store := telemetry.NewStore()
	p := NewPipeline(DefaultConfig(), fixedScore(0.2), predict.FixedUntouched{Frac: 0.3}, store)
	vm := testVM(1, 7, 32, "505.mcf_r")
	counters := pmu.Sample(vm.GroundTruth.Workload, stats.NewRand(1))
	feats := predict.UMFeatures(vm, telemetry.History{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := p.Decide(vm, &counters, feats)
		if d.Kind != ZNUMA {
			b.Fatalf("decision = %+v, want zNUMA", d)
		}
	}
}
