// Package cliutil holds the flag validation shared by the cmd/ tools.
// Bad -workers or -seed values used to be silently clamped deep inside
// the engine; the tools now reject them up front with a usage message and
// a non-zero exit so automation notices the mistake.
package cliutil

import (
	"fmt"
	"os"
)

// ValidateWorkers rejects negative worker counts (0 means GOMAXPROCS and
// stays valid).
func ValidateWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	return nil
}

// ValidateSeed rejects non-positive seeds: every deterministic stream in
// the repo derives from a positive root seed, and 0 is reserved for
// "use the default" in the public API.
func ValidateSeed(seed int64) error {
	if seed <= 0 {
		return fmt.Errorf("-seed must be a positive integer, got %d", seed)
	}
	return nil
}

// Fatal prints "<tool>: <error>", points at -h for usage, and exits 2 —
// the conventional flag-error exit code.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\nrun '%s -h' for usage\n", tool, err, tool)
	os.Exit(2)
}

// MustValidateRun checks the two flags every engine-driven tool shares
// and exits via Fatal on the first violation.
func MustValidateRun(tool string, workers int, seed int64) {
	if err := ValidateWorkers(workers); err != nil {
		Fatal(tool, err)
	}
	if err := ValidateSeed(seed); err != nil {
		Fatal(tool, err)
	}
}
