package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// ApplyEnv layers environment variables under an already-parsed
// FlagSet: every flag the command line did not set explicitly is looked
// up as PREFIX_FLAGNAME (the flag name upper-cased, dashes to
// underscores) and, when the variable is present and non-empty, set
// from its value. Flags given on the command line always win. The
// aliases map adds extra variable suffixes for flags whose env name
// should differ from the flag name (e.g. CHECKPOINT -> -state); an
// alias is only consulted when the primary variable is absent.
//
// Call after fs.Parse — flag.Visit only reports explicitly-set flags
// once parsing has happened. A malformed value reports the variable
// name so the error points at the environment, not at a flag.
func ApplyEnv(fs *flag.FlagSet, prefix string, aliases map[string]string) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	fromEnv := func(name, suffix string) error {
		key := prefix + "_" + suffix
		v, ok := os.LookupEnv(key)
		if !ok || v == "" {
			return nil
		}
		if err := fs.Set(name, v); err != nil {
			return fmt.Errorf("%s=%q: %w", key, v, err)
		}
		set[name] = true
		return nil
	}

	var err error
	fs.VisitAll(func(f *flag.Flag) {
		if err != nil || set[f.Name] {
			return
		}
		suffix := strings.ToUpper(strings.ReplaceAll(f.Name, "-", "_"))
		err = fromEnv(f.Name, suffix)
	})
	if err != nil {
		return err
	}
	for _, a := range sortedAliases(aliases) {
		if set[a.flag] {
			continue
		}
		if err := fromEnv(a.flag, a.suffix); err != nil {
			return err
		}
	}
	return nil
}

type envAlias struct{ suffix, flag string }

// sortedAliases fixes the alias application order so two aliases for
// the same flag resolve deterministically.
func sortedAliases(aliases map[string]string) []envAlias {
	out := make([]envAlias, 0, len(aliases))
	for suffix, name := range aliases {
		out = append(out, envAlias{suffix: suffix, flag: name})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].suffix < out[j-1].suffix; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
