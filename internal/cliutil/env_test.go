package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func newTestSet() (*flag.FlagSet, *string, *int, *float64) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", ":8080", "")
	retain := fs.Int("retain-done", 0, "")
	every := fs.Float64("metrics-every", 0, "")
	return fs, addr, retain, every
}

func TestApplyEnvFillsUnsetFlags(t *testing.T) {
	t.Setenv("PONDTEST_ADDR", ":9999")
	t.Setenv("PONDTEST_RETAIN_DONE", "7")
	t.Setenv("PONDTEST_METRICS_EVERY", "2.5")
	fs, addr, retain, every := newTestSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := ApplyEnv(fs, "PONDTEST", nil); err != nil {
		t.Fatal(err)
	}
	if *addr != ":9999" || *retain != 7 || *every != 2.5 {
		t.Fatalf("env not applied: addr=%q retain=%d every=%g", *addr, *retain, *every)
	}
}

func TestApplyEnvFlagsWin(t *testing.T) {
	t.Setenv("PONDTEST_ADDR", ":9999")
	t.Setenv("PONDTEST_RETAIN_DONE", "7")
	fs, addr, retain, _ := newTestSet()
	if err := fs.Parse([]string{"-addr", ":1234"}); err != nil {
		t.Fatal(err)
	}
	if err := ApplyEnv(fs, "PONDTEST", nil); err != nil {
		t.Fatal(err)
	}
	if *addr != ":1234" {
		t.Fatalf("explicit flag overridden by env: addr=%q", *addr)
	}
	if *retain != 7 {
		t.Fatalf("unset flag should still come from env: retain=%d", *retain)
	}
}

func TestApplyEnvAlias(t *testing.T) {
	t.Setenv("PONDTEST_CHECKPOINT", "/tmp/cp.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	state := fs.String("state", "", "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := ApplyEnv(fs, "PONDTEST", map[string]string{"CHECKPOINT": "state"}); err != nil {
		t.Fatal(err)
	}
	if *state != "/tmp/cp.json" {
		t.Fatalf("alias not applied: state=%q", *state)
	}
}

func TestApplyEnvAliasLosesToPrimaryAndFlag(t *testing.T) {
	t.Setenv("PONDTEST_STATE", "/primary.json")
	t.Setenv("PONDTEST_CHECKPOINT", "/alias.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	state := fs.String("state", "", "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := ApplyEnv(fs, "PONDTEST", map[string]string{"CHECKPOINT": "state"}); err != nil {
		t.Fatal(err)
	}
	if *state != "/primary.json" {
		t.Fatalf("primary env var should beat alias: state=%q", *state)
	}
}

func TestApplyEnvBadValue(t *testing.T) {
	t.Setenv("PONDTEST_RETAIN_DONE", "not-a-number")
	fs, _, _, _ := newTestSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := ApplyEnv(fs, "PONDTEST", nil)
	if err == nil {
		t.Fatal("expected error for malformed env value")
	}
	if !strings.Contains(err.Error(), "PONDTEST_RETAIN_DONE") {
		t.Fatalf("error should name the variable: %v", err)
	}
}
