package cliutil

import (
	"flag"

	"pond"
)

// Per-group flag registration: each Register*Flags call wires one
// grouped pond option struct onto a FlagSet, using the struct's current
// values as the flag defaults. Commands seed the struct (normally from
// pond.Defaults()), register the groups they expose, and parse — the
// same declarative types then flow unchanged into RunFleet or
// StartFleet. Flag names and usage strings live here once, shared by
// every command, and the usage text inherits its defaults from
// Defaults() instead of restating numbers that can drift.

// RegisterClusterFlags registers the cluster-sizing flags. The
// -topology flag is not registered here: commands that accept a
// topology list (pondfleet's comparison mode) handle it themselves.
func RegisterClusterFlags(fs *flag.FlagSet, c *pond.ClusterOpts) {
	fs.IntVar(&c.Hosts, "hosts", c.Hosts, "hosts per cell")
	fs.IntVar(&c.EMCs, "emcs", c.EMCs, "EMCs per cell")
	fs.IntVar(&c.PoolGB, "pool", c.PoolGB, "pool capacity per cell (GB)")
	fs.IntVar(&c.PodDegree, "degree", c.PodDegree, "per-host EMC connections under the sparse topology")
	fs.IntVar(&c.Cells, "cells", c.Cells, "independent pool groups (engine shards)")
	fs.Float64Var(&c.DurationSec, "duration", c.DurationSec, "simulated horizon per cell (seconds)")
}

// RegisterModelFlags registers the prediction-pipeline and
// model-lifecycle flags.
func RegisterModelFlags(fs *flag.FlagSet, m *pond.ModelOpts) {
	fs.BoolVar(&m.Disabled, "no-predictions", m.Disabled, "disable the ML pipeline (all-local baseline)")
	fs.Float64Var(&m.RetrainEverySec, "retrain-every", m.RetrainEverySec, "online model retrain cadence in seconds (0 = frozen models)")
	fs.StringVar(&m.Scope, "model-scope", m.Scope, `retraining scope: "cell" (per-cell lifecycle) or "fleet" (pooled telemetry, staged canary rollout)`)
	fs.Float64Var(&m.CanaryFraction, "canary", m.CanaryFraction, "fraction of cells a fleet-scoped release reaches first (0 = default 0.25)")
	fs.Float64Var(&m.BakeWindowSec, "bake", m.BakeWindowSec, "canary bake window in seconds before the promote-or-rollback verdict (0 = 2x retrain cadence)")
	fs.Float64Var(&m.PromoteMargin, "promote-margin", m.PromoteMargin, "fractional rolling-loss improvement required to promote a challenger (0 = default 5%)")
	fs.IntVar(&m.HoldoutWindow, "holdout", m.HoldoutWindow, "rolling holdout window in completed VMs (0 = default)")
	fs.IntVar(&m.MinTrainRows, "min-rows", m.MinTrainRows, "minimum completed VMs before a challenger trains (0 = default)")
}

// RegisterCapacityFlags registers the elastic capacity-planning flags.
func RegisterCapacityFlags(fs *flag.FlagSet, c *pond.CapacityOpts) {
	fs.BoolVar(&c.Elastic, "elastic", c.Elastic, "enable the elastic pool: re-plan each cell's capacity from observed demand at every planning barrier")
	fs.Float64Var(&c.PlanEverySec, "plan-every", c.PlanEverySec, "elastic planning cadence in seconds (0 = an eighth of the horizon)")
	fs.Float64Var(&c.TargetQoS, "target-qos", c.TargetQoS, "tolerated fraction of time pool demand may exceed capacity (0 = default 0.01)")
}

// RegisterEngineFlags registers the execution flags. Neither changes
// results: the event log is byte-identical for any worker count.
func RegisterEngineFlags(fs *flag.FlagSet, e *pond.EngineOpts) {
	fs.IntVar(&e.Workers, "workers", e.Workers, "engine worker pool size (0 = GOMAXPROCS); results are identical for any value")
	fs.Int64Var(&e.Seed, "seed", e.Seed, "root seed for every cell stream")
	fs.Float64Var(&e.MetricsEverySec, "metrics-every", e.MetricsEverySec, "sim-time metrics sampling cadence in simulated seconds (0 = off); never changes results")
}
