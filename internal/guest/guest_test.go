package guest

import (
	"errors"
	"math"
	"testing"

	"pond/internal/host"
	"pond/internal/workload"
)

func topoWithZNUMA(localGB, poolGB float64) host.Topology {
	return host.NewTopology(4, localGB, poolGB, 1.82)
}

func TestBootPinsMetadataOnEveryNode(t *testing.T) {
	m := Boot(topoWithZNUMA(24, 8), LocalPreferred)
	zones := m.Zones()
	if len(zones) != 2 {
		t.Fatalf("zones = %d", len(zones))
	}
	for _, z := range zones {
		if z.MetaGB <= 0 {
			t.Fatalf("node %d has no metadata; zNUMA traffic would be zero", z.Node)
		}
		if z.UsedGB != z.MetaGB {
			t.Fatalf("node %d used %g != meta %g at boot", z.Node, z.UsedGB, z.MetaGB)
		}
	}
	if !zones[1].ZNUMA {
		t.Fatal("second node should be zNUMA")
	}
}

func TestLocalPreferredFillsLocalFirst(t *testing.T) {
	m := Boot(topoWithZNUMA(24, 8), LocalPreferred)
	if err := m.Allocate(10); err != nil {
		t.Fatal(err)
	}
	if got := m.SpilledGB(); got != 0 {
		t.Fatalf("spilled %g GB with local space free", got)
	}
}

func TestLocalPreferredSpillsOnlyWhenExhausted(t *testing.T) {
	m := Boot(topoWithZNUMA(24, 8), LocalPreferred)
	localFree := m.Zones()[0].FreeGB()
	if err := m.Allocate(localFree + 3); err != nil {
		t.Fatal(err)
	}
	if got := m.SpilledGB(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("spilled = %g, want 3", got)
	}
}

func TestAllocateOutOfMemory(t *testing.T) {
	m := Boot(topoWithZNUMA(8, 4), LocalPreferred)
	if err := m.Allocate(100); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestAllocateNegativeRejected(t *testing.T) {
	m := Boot(topoWithZNUMA(8, 4), LocalPreferred)
	if err := m.Allocate(-1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestInterleavedSpreadsProportionally(t *testing.T) {
	m := Boot(topoWithZNUMA(24, 8), Interleaved)
	if err := m.Allocate(16); err != nil {
		t.Fatal(err)
	}
	zones := m.Zones()
	localShare := zones[0].UsedGB - zones[0].MetaGB
	poolShare := zones[1].UsedGB - zones[1].MetaGB
	if poolShare < 2 {
		t.Fatalf("interleaved pool share = %g, want proportional (~4)", poolShare)
	}
	if math.Abs(localShare+poolShare-16) > 1e-6 {
		t.Fatalf("allocation lost: %g + %g != 16", localShare, poolShare)
	}
}

func TestAccessProfileNoZNUMA(t *testing.T) {
	m := Boot(host.NewTopology(4, 16, 0, 1.82), LocalPreferred)
	w, _ := workload.ByName("P1-video")
	st := m.AccessProfile(w)
	if st.ZNUMAFrac != 0 || st.LocalFrac != 1 {
		t.Fatalf("no-zNUMA profile = %+v", st)
	}
}

func TestFigure15MetadataOnlyTraffic(t *testing.T) {
	// §6.2: with a correctly sized local node, zNUMA traffic collapses
	// to the per-workload metadata constant (0.06%-0.38%).
	for _, w := range workload.InternalWorkloads() {
		local := w.FootprintGB * 1.2 // correct prediction: room to spare
		m := Boot(topoWithZNUMA(local, 8), LocalPreferred)
		st, err := m.RunWorkload(w, w.FootprintGB)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.ZNUMAFrac-w.MetadataTraffic) > 1e-9 {
			t.Fatalf("%s: zNUMA traffic = %v, want metadata %v", w.Name, st.ZNUMAFrac, w.MetadataTraffic)
		}
		if st.ZNUMAFrac < 0.0005 || st.ZNUMAFrac > 0.004 {
			t.Fatalf("%s: traffic %v outside Figure 15's 0.06-0.38%% band", w.Name, st.ZNUMAFrac)
		}
	}
}

func TestSpillIncreasesZNUMATraffic(t *testing.T) {
	w, _ := workload.ByName("gapbs-bc-twitter") // 18 GB footprint
	// Local node undersized by 25% of footprint.
	m := Boot(topoWithZNUMA(w.FootprintGB*0.75, w.FootprintGB), LocalPreferred)
	st, err := m.RunWorkload(w, w.FootprintGB)
	if err != nil {
		t.Fatal(err)
	}
	if st.ZNUMAFrac < 0.3 {
		t.Fatalf("undersized local node: zNUMA traffic %v, want substantial (skewed workload)", st.ZNUMAFrac)
	}
}

func TestInterleavedAblationSendsProportionalTraffic(t *testing.T) {
	// The ablation: with uniform interleaving, even an idle-footprint
	// workload sends a capacity share of accesses to the pool —
	// untouched memory cannot be exploited.
	w, _ := workload.ByName("P1-video")
	local, poolGB := 24.0, 8.0
	m := Boot(topoWithZNUMA(local, poolGB), Interleaved)
	st, err := m.RunWorkload(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := poolGB / (local + poolGB)
	if math.Abs(st.ZNUMAFrac-want) > 0.01 {
		t.Fatalf("interleaved traffic = %v, want ~%v", st.ZNUMAFrac, want)
	}
	// zNUMA with the same split keeps traffic at metadata level: the
	// paper's headline comparison.
	mz := Boot(topoWithZNUMA(local, poolGB), LocalPreferred)
	stz, _ := mz.RunWorkload(w, 10)
	if stz.ZNUMAFrac >= st.ZNUMAFrac/10 {
		t.Fatalf("zNUMA (%v) should beat interleaving (%v) by >10x", stz.ZNUMAFrac, st.ZNUMAFrac)
	}
}

func TestPolicyString(t *testing.T) {
	if LocalPreferred.String() != "local-preferred" || Interleaved.String() != "interleaved" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestZonesCopy(t *testing.T) {
	m := Boot(topoWithZNUMA(8, 4), LocalPreferred)
	z := m.Zones()
	z[0].UsedGB = 999
	if m.Zones()[0].UsedGB == 999 {
		t.Fatal("Zones aliases internal state")
	}
}

func TestTotalFreeAccounting(t *testing.T) {
	m := Boot(topoWithZNUMA(8, 4), LocalPreferred)
	before := m.TotalFreeGB()
	if err := m.Allocate(5); err != nil {
		t.Fatal(err)
	}
	after := m.TotalFreeGB()
	if math.Abs(before-after-5) > 1e-9 {
		t.Fatalf("free accounting: %g -> %g", before, after)
	}
}

func TestInterleavedExhaustion(t *testing.T) {
	m := Boot(topoWithZNUMA(8, 4), Interleaved)
	free := m.TotalFreeGB()
	if err := m.Allocate(free); err != nil {
		t.Fatal(err)
	}
	if m.TotalFreeGB() > 1e-6 {
		t.Fatalf("free after full allocation = %g", m.TotalFreeGB())
	}
	if err := m.Allocate(0.1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-allocation = %v", err)
	}
}
