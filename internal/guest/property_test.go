package guest

import (
	"math"
	"testing"
	"testing/quick"

	"pond/internal/host"
)

// Property: under any sequence of allocations that fits, total used
// memory equals metadata plus the allocated amounts, and no zone exceeds
// its size.
func TestAllocationConservationProperty(t *testing.T) {
	f := func(rawLocal, rawPool uint8, allocs []uint8) bool {
		localGB := 8 + float64(rawLocal%64)
		poolGB := float64(rawPool % 32)
		m := Boot(host.NewTopology(4, localGB, poolGB, 1.82), LocalPreferred)

		var meta, wanted float64
		for _, z := range m.Zones() {
			meta += z.MetaGB
		}
		for _, a := range allocs {
			gb := float64(a%16) / 2
			if gb > m.TotalFreeGB() {
				continue
			}
			if err := m.Allocate(gb); err != nil {
				return false
			}
			wanted += gb
		}
		var used float64
		for _, z := range m.Zones() {
			if z.UsedGB > z.SizeGB+1e-9 {
				return false
			}
			used += z.UsedGB
		}
		return math.Abs(used-(meta+wanted)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: local-preferred never spills while local space remains.
func TestNoSpillWhileLocalFreeProperty(t *testing.T) {
	f := func(rawLocal uint8, allocs []uint8) bool {
		localGB := 16 + float64(rawLocal%64)
		m := Boot(host.NewTopology(4, localGB, 32, 1.82), LocalPreferred)
		for _, a := range allocs {
			gb := float64(a % 8)
			if gb > m.TotalFreeGB() {
				continue
			}
			if err := m.Allocate(gb); err != nil {
				return false
			}
			zones := m.Zones()
			localFree := zones[0].FreeGB()
			if m.SpilledGB() > 1e-9 && localFree > 1e-9 {
				return false // spilled while local space remained
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the interleaved ablation's zNUMA share approaches the
// capacity ratio regardless of allocation sizes.
func TestInterleavedShareProperty(t *testing.T) {
	f := func(allocs []uint8) bool {
		const localGB, poolGB = 48.0, 16.0
		m := Boot(host.NewTopology(4, localGB, poolGB, 1.82), Interleaved)
		for _, a := range allocs {
			gb := float64(a % 8)
			if gb > m.TotalFreeGB() {
				continue
			}
			if err := m.Allocate(gb); err != nil {
				return false
			}
		}
		zones := m.Zones()
		usedLocal := zones[0].UsedGB - zones[0].MetaGB
		usedPool := zones[1].UsedGB - zones[1].MetaGB
		total := usedLocal + usedPool
		if total < 4 {
			return true // too little signal
		}
		share := usedPool / total
		want := poolGB / (localGB + poolGB)
		return math.Abs(share-want) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
