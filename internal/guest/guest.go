// Package guest models the memory manager of an unmodified guest OS
// running on a Pond zNUMA topology (§4.2, §6.2).
//
// The central mechanism Pond relies on: Linux's default local allocation
// policy fills the NUMA node the allocating CPU belongs to before falling
// back to other nodes. A zNUMA node has no CPUs, so no allocation prefers
// it — the guest drains its local vNUMA node first and touches the zNUMA
// node only when local memory is exhausted (or for the small per-node
// allocator metadata the OS pins on every node, which is what produces
// the 0.06–0.38% residual traffic of Figure 15).
//
// The package also implements the uniform interleaved placement assumed
// by prior disaggregation work, as the ablation baseline showing why
// zNUMA is necessary: interleaving sends a capacity-proportional share of
// every workload's accesses to the pool.
package guest

import (
	"errors"
	"fmt"

	"pond/internal/host"
	"pond/internal/workload"
)

// Policy selects the guest allocation behaviour.
type Policy int

const (
	// LocalPreferred is Linux's default: fill the local node, then
	// fall back to remote nodes in SLIT-distance order.
	LocalPreferred Policy = iota

	// Interleaved spreads allocations across nodes proportionally to
	// node size (the prior-work baseline Pond argues against).
	Interleaved
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LocalPreferred:
		return "local-preferred"
	case Interleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MetadataFracPerNode is the fraction of each node's memory the guest OS
// pins for allocator metadata (struct pages, zone structures) at boot.
const MetadataFracPerNode = 0.004

// ErrOutOfMemory is returned when an allocation exceeds guest memory.
var ErrOutOfMemory = errors.New("guest: out of memory")

// Zone is the per-node allocation state.
type Zone struct {
	Node   int
	SizeGB float64
	UsedGB float64 // includes metadata
	MetaGB float64
	ZNUMA  bool
}

// FreeGB returns the zone's remaining capacity.
func (z Zone) FreeGB() float64 { return z.SizeGB - z.UsedGB }

// MemoryManager is the guest's NUMA-aware allocator.
type MemoryManager struct {
	policy Policy
	zones  []Zone
}

// Boot initializes the allocator from the hypervisor-provided topology,
// pinning metadata on every node — including the zNUMA node, which is why
// a perfectly sized local node still sees a trickle of pool traffic.
func Boot(topo host.Topology, policy Policy) *MemoryManager {
	m := &MemoryManager{policy: policy}
	for i, n := range topo.Nodes {
		meta := n.MemGB * MetadataFracPerNode
		m.zones = append(m.zones, Zone{
			Node:   i,
			SizeGB: n.MemGB,
			UsedGB: meta,
			MetaGB: meta,
			ZNUMA:  n.IsZNUMA(),
		})
	}
	return m
}

// Policy returns the active allocation policy.
func (m *MemoryManager) Policy() Policy { return m.policy }

// Zones returns a copy of the per-node state.
func (m *MemoryManager) Zones() []Zone {
	return append([]Zone(nil), m.zones...)
}

// TotalFreeGB returns free memory across zones.
func (m *MemoryManager) TotalFreeGB() float64 {
	var g float64
	for _, z := range m.zones {
		g += z.FreeGB()
	}
	return g
}

// Allocate satisfies a gb-sized allocation under the active policy.
func (m *MemoryManager) Allocate(gb float64) error {
	if gb < 0 {
		return fmt.Errorf("guest: negative allocation %g GB", gb)
	}
	if gb > m.TotalFreeGB()+1e-9 {
		return fmt.Errorf("%w: %g GB requested, %g free", ErrOutOfMemory, gb, m.TotalFreeGB())
	}
	switch m.policy {
	case Interleaved:
		// Proportional spread over remaining capacity.
		total := m.TotalFreeGB()
		remaining := gb
		for i := range m.zones {
			share := gb * m.zones[i].FreeGB() / total
			if share > m.zones[i].FreeGB() {
				share = m.zones[i].FreeGB()
			}
			m.zones[i].UsedGB += share
			remaining -= share
		}
		// Numerical crumbs go to the first zone with room.
		for i := range m.zones {
			if remaining <= 1e-9 {
				break
			}
			take := remaining
			if take > m.zones[i].FreeGB() {
				take = m.zones[i].FreeGB()
			}
			m.zones[i].UsedGB += take
			remaining -= take
		}
		return nil
	default: // LocalPreferred: zones in node order = SLIT order.
		remaining := gb
		for i := range m.zones {
			if remaining <= 1e-9 {
				break
			}
			take := remaining
			if take > m.zones[i].FreeGB() {
				take = m.zones[i].FreeGB()
			}
			m.zones[i].UsedGB += take
			remaining -= take
		}
		return nil
	}
}

// SpilledGB returns the application memory (beyond OS metadata) that
// landed on the zNUMA node.
func (m *MemoryManager) SpilledGB() float64 {
	var g float64
	for _, z := range m.zones {
		if z.ZNUMA {
			g += z.UsedGB - z.MetaGB
		}
	}
	return g
}

// AccessStats summarizes where a workload's memory accesses land.
type AccessStats struct {
	LocalFrac float64
	ZNUMAFrac float64
}

// AccessProfile computes the fraction of the workload's accesses served
// by the zNUMA node given the current allocation state. Under
// local-preferred allocation this follows the workload's spill curve plus
// its metadata traffic; under interleaving every access is spread
// capacity-proportionally — the reason prior-work uniform address spaces
// cannot exploit untouched memory (§1, insight 3).
func (m *MemoryManager) AccessProfile(w workload.Workload) AccessStats {
	var localSize, znumaSize, znumaUsed float64
	for _, z := range m.zones {
		if z.ZNUMA {
			znumaSize += z.SizeGB
			znumaUsed += z.UsedGB
		} else {
			localSize += z.SizeGB
		}
	}
	if znumaSize == 0 {
		return AccessStats{LocalFrac: 1}
	}
	switch m.policy {
	case Interleaved:
		frac := znumaSize / (localSize + znumaSize)
		return AccessStats{LocalFrac: 1 - frac, ZNUMAFrac: frac}
	default:
		spillFrac := 0.0
		if w.FootprintGB > 0 {
			spillFrac = m.SpilledGB() / w.FootprintGB
			if spillFrac > 1 {
				spillFrac = 1
			}
		}
		frac := w.RemoteAccessFraction(spillFrac)
		return AccessStats{LocalFrac: 1 - frac, ZNUMAFrac: frac}
	}
}

// RunWorkload boots the allocator's view of a workload: it allocates the
// workload's touched footprint and returns the resulting access profile.
// This is the whole §6.2/§6.3 experiment in one call: size the local node
// right and the zNUMA fraction collapses to metadata noise; undersize it
// and the workload spills.
func (m *MemoryManager) RunWorkload(w workload.Workload, touchedGB float64) (AccessStats, error) {
	if err := m.Allocate(touchedGB); err != nil {
		return AccessStats{}, err
	}
	return m.AccessProfile(w), nil
}
