package ml

import (
	"testing"

	"pond/internal/stats"
)

func TestPermutationImportanceFindsSignal(t *testing.T) {
	// y depends only on features 0 and 1; 2..9 are noise.
	X, y, truth := synthClassification(600, 10, 21)
	cfg := DefaultForestConfig()
	cfg.Tree.FeatureFrac = 0.5
	f := FitForest(X, y, cfg)
	imp := PermutationImportance(f.PredictProb, X, truth, 0.5, 1)
	if len(imp) != 10 {
		t.Fatalf("importances = %d", len(imp))
	}
	top := TopFeatures(imp, 2)
	seen := map[int]bool{top[0].Feature: true, top[1].Feature: true}
	if !seen[0] || !seen[1] {
		t.Fatalf("top features = %v, want {0,1}", top)
	}
	// Noise features should score near zero.
	for _, im := range imp {
		if im.Feature >= 2 && im.Drop > 0.08 {
			t.Errorf("noise feature %d scored %v", im.Feature, im.Drop)
		}
	}
}

func TestPermutationImportanceDeterministic(t *testing.T) {
	X, y, truth := synthClassification(300, 6, 22)
	f := FitForest(X, y, DefaultForestConfig())
	a := PermutationImportance(f.PredictProb, X, truth, 0.5, 7)
	b := PermutationImportance(f.PredictProb, X, truth, 0.5, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("importance not deterministic")
		}
	}
}

func TestPermutationImportancePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PermutationImportance(func([]float64) float64 { return 0 }, nil, nil, 0.5, 1)
}

func TestTopFeaturesOrderingAndBounds(t *testing.T) {
	imp := []Importance{{0, 0.1}, {1, 0.5}, {2, 0.5}, {3, 0.0}}
	top := TopFeatures(imp, 3)
	if top[0].Feature != 1 || top[1].Feature != 2 || top[2].Feature != 0 {
		t.Fatalf("ordering = %v", top)
	}
	if got := TopFeatures(imp, 99); len(got) != 4 {
		t.Fatalf("clamp failed: %d", len(got))
	}
	// Input must not be reordered.
	if imp[0].Feature != 0 {
		t.Fatal("TopFeatures mutated input")
	}
}

func TestImportanceOnLinearSignal(t *testing.T) {
	// A model that only reads feature 3.
	r := stats.NewRand(5)
	X := make([][]float64, 400)
	truth := make([]bool, 400)
	for i := range X {
		X[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		truth[i] = X[i][3] > 0.5
	}
	predict := func(x []float64) float64 { return x[3] }
	imp := PermutationImportance(predict, X, truth, 0.5, 1)
	if TopFeatures(imp, 1)[0].Feature != 3 {
		t.Fatalf("importance missed the only signal: %v", imp)
	}
}
