// Package ml implements the two model families Pond's control plane uses
// (§5), from scratch on the standard library: CART decision trees,
// bootstrap-aggregated random forests (the scikit-learn RandomForest
// stand-in for latency-insensitivity classification), and gradient-boosted
// regression trees with pinball loss (the LightGBM quantile-GBM stand-in
// for untouched-memory prediction).
//
// Every fit is deterministic given its seed; the experiment harness relies
// on that for reproducible figures.
package ml

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"slices"

	"pond/internal/stats"
)

// Criterion selects the split quality measure.
type Criterion int

const (
	// Variance minimizes within-node sum of squared errors (regression).
	Variance Criterion = iota
	// Gini minimizes within-node Gini impurity (binary classification
	// with 0/1 targets).
	Gini
)

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int
	MinLeaf     int     // minimum samples per leaf
	FeatureFrac float64 // fraction of features considered per split (1.0 = all)
	Criterion   Criterion
}

// DefaultTreeConfig returns a sane regression-tree configuration.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 6, MinLeaf: 5, FeatureFrac: 1.0, Criterion: Variance}
}

// node is one tree node; leaves carry a value, internal nodes a split.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	leafID    int
	value     float64
}

// Tree is a fitted CART tree.
type Tree struct {
	root     *node
	leaves   []*node
	features int
}

// Presort carries per-feature argsort orders over a fixed training
// matrix, plus column-major value copies for scan locality. Building it
// costs one sort per feature; every tree grown from it finds splits by
// linear scans of the presorted orders instead of re-sorting at each
// node, and partitions the orders down the tree. A gradient-boosting run
// fits all its stages on the same rows, so one Presort amortizes over
// the whole ensemble — this is where the experiment suite's GBM training
// time goes from minutes to seconds.
type Presort struct {
	order [][]int32   // order[f] = row indexes ascending by X[_][f]
	cols  [][]float64 // cols[f][i] = X[i][f]
}

// columns transposes the row-major training matrix into per-feature
// columns.
func columns(X [][]float64) [][]float64 {
	cols := make([][]float64, len(X[0]))
	for f := range cols {
		col := make([]float64, len(X))
		for i := range X {
			col[i] = X[i][f]
		}
		cols[f] = col
	}
	return cols
}

// NewPresort argsorts every feature column of X.
func NewPresort(X [][]float64) *Presort {
	if len(X) == 0 {
		panic("ml: presort of empty matrix")
	}
	cols := columns(X)
	ps := &Presort{order: make([][]int32, len(cols)), cols: cols}
	for f, col := range cols {
		ord := make([]int32, len(X))
		for i := range ord {
			ord[i] = int32(i)
		}
		slices.SortFunc(ord, func(a, b int32) int { return cmp.Compare(col[a], col[b]) })
		ps.order[f] = ord
	}
	return ps
}

// FitTree grows a tree on rows X (all of equal length) with targets y.
// The RNG drives per-split feature subsampling; pass a fresh fork per
// tree for forests.
//
// Two growth strategies cover the two model families: with a small
// FeatureFrac (forests examine ~sqrt of hundreds of counters per split)
// each node sorts just its candidate features; with a large FeatureFrac
// (the GBM examines most features at every split) presorted per-feature
// orders are partitioned down the tree instead.
func FitTree(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d rows, %d targets", len(X), len(y)))
	}
	if cfg.FeatureFrac > 0 && cfg.FeatureFrac < sparseFracThreshold {
		return fitTreeSparse(X, y, cfg, r)
	}
	return FitTreePresorted(X, y, cfg, r, NewPresort(X))
}

// sparseFracThreshold selects between the sparse (sort candidates per
// node) and dense (partition presorted lists) growth strategies.
const sparseFracThreshold = 0.5

// fitTreeSparse grows a tree sorting candidate features at each node —
// cheaper than maintaining presorted lists when splits examine only a
// small feature subset.
func fitTreeSparse(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand) *Tree {
	g := newSparseGrower(columns(X), nil, y, cfg)
	return g.fit(len(X), r)
}

// splitPair is one (value, target) sample during a candidate-feature
// scan.
type splitPair struct{ x, y float64 }

// sparseGrower carries the per-fit state of the sparse strategy. All
// scratch buffers (sort, partition, feature subset) are reused across
// nodes — and, for forests, across trees — so growing a tree allocates
// only its nodes.
type sparseGrower struct {
	cols [][]float64
	// rowOf maps a working row index to its row in cols; nil means the
	// identity. Forests grow each tree over a bootstrap index list through
	// this indirection instead of materializing resampled matrices.
	rowOf []int32
	y     []float64
	cfg   TreeConfig

	pairs, pairsAlt []splitPair
	idx, part       []int32
	perm            []int

	// Rank tables (built by buildRanks for multi-tree fits): ord[f][k] is
	// the matrix row at position k of feature f's ascending order, and
	// xSorted[f][k] the value there. With them, and a shared per-node
	// multiplicity array (cnt) over matrix rows, a candidate scan walks
	// the precomputed order directly — no per-node sorting at all. yRow
	// holds targets by matrix row (for forests, the pre-bootstrap y). nil
	// ord falls back to fill-and-sort.
	ord     [][]int32
	xSorted [][]float64
	yRow    []float64
	cnt     []int32
	// binaryY records that every target is exactly 0 or 1 (classification
	// forests), unlocking the collapsed-multiplicity scan.
	binaryY bool
	// packed[f][k] compresses rank k of feature f into one word — matrix
	// row in bits 0..14, the 0/1 target in bit 15, and the equal-x group
	// index in the high 16 bits — so the hot candidate walk streams one
	// 4-byte array per rank instead of separate row/value/target loads.
	// Built only for binary targets and fewer than 32768 rows.
	packed [][]uint32
	// rankOf[f][row] inverts ord: the rank of a matrix row under feature
	// f. With it, sparse nodes scatter their rows into occ (a rank
	// bitmap, kept all-zero between scans) and visit set bits instead of
	// walking every rank. rowsU is the per-node unique-row scratch.
	rankOf [][]uint16
	occ    []uint64
	rowsU  []int32
}

// newSparseGrower builds a grower with normalized limits and scratch
// buffers sized for n working rows.
func newSparseGrower(cols [][]float64, rowOf []int32, y []float64, cfg TreeConfig) *sparseGrower {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	n := len(y)
	return &sparseGrower{
		cols:     cols,
		rowOf:    rowOf,
		y:        y,
		cfg:      cfg,
		pairs:    make([]splitPair, n),
		pairsAlt: make([]splitPair, n),
		idx:      make([]int32, n),
		part:     make([]int32, 0, n),
	}
}

// fit grows one tree over the first n working rows. It resets the shared
// row-index buffer, so a forest can call it once per tree.
func (g *sparseGrower) fit(n int, r *stats.Rand) *Tree {
	idx := g.idx[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	t := &Tree{features: len(g.cols)}
	t.root = t.growSparse(g, idx, 0, r)
	return t
}

// growSparse recursively builds the subtree over the rows in idx. The
// split partitions idx in place (stably, via the grower's scratch
// buffer); the children recurse on disjoint subslices of it.
func (t *Tree) growSparse(g *sparseGrower, idx []int32, depth int, r *stats.Rand) *node {
	if depth >= g.cfg.MaxDepth || len(idx) < 2*g.cfg.MinLeaf || pure(g.y, idx) {
		return t.makeLeaf(g.y, idx)
	}
	feat, thr, ok := bestSplitSparse(g, idx, r)
	if !ok {
		return t.makeLeaf(g.y, idx)
	}
	col := g.cols[feat]
	nl := 0
	part := g.part[:0]
	if g.rowOf == nil {
		for _, i := range idx {
			if col[i] <= thr {
				idx[nl] = i
				nl++
			} else {
				part = append(part, i)
			}
		}
	} else {
		for _, i := range idx {
			if col[g.rowOf[i]] <= thr {
				idx[nl] = i
				nl++
			} else {
				part = append(part, i)
			}
		}
	}
	g.part = part
	copy(idx[nl:], part)
	left, right := idx[:nl], idx[nl:]
	if len(left) < g.cfg.MinLeaf || len(right) < g.cfg.MinLeaf {
		return t.makeLeaf(g.y, idx)
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.growSparse(g, left, depth+1, r),
		right:     t.growSparse(g, right, depth+1, r),
	}
}

// bestSplitSparse sorts each candidate feature's rows and scans the
// thresholds with the same prefix statistics as the dense strategy.
func bestSplitSparse(g *sparseGrower, idx []int32, r *stats.Rand) (feat int, thr float64, ok bool) {
	candidates := featureSubsetInto(g.perm, len(g.cols), g.cfg.FeatureFrac, r)
	g.perm = candidates
	y := g.y
	var totSum, totSq float64
	if g.cfg.Criterion == Gini {
		// Gini scores never read the squared-sum statistics.
		for _, i := range idx {
			totSum += y[i]
		}
	} else {
		for _, i := range idx {
			totSum += y[i]
			totSq += y[i] * y[i]
		}
	}
	if g.ord != nil && len(idx) >= countingSortMin {
		return bestSplitCounted(g, idx, candidates, totSum, totSq)
	}
	pairs := g.pairs[:len(idx)]
	bestScore := infinity
	n := float64(len(idx))
	for _, f := range candidates {
		g.sortedPairs(f, idx, pairs)
		var lSum, lSq float64
		for k := 0; k < len(pairs)-1; k++ {
			lSum += pairs[k].y
			lSq += pairs[k].y * pairs[k].y
			if pairs[k].x == pairs[k+1].x {
				continue // cannot split between equal values
			}
			ln := float64(k + 1)
			rn := n - ln
			if int(ln) < g.cfg.MinLeaf || int(rn) < g.cfg.MinLeaf {
				continue
			}
			score := splitScore(g.cfg.Criterion, lSum, lSq, totSum, totSq, ln, rn)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (pairs[k].x + pairs[k+1].x) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// bestSplitCounted is bestSplitSparse's scan over the precomputed
// feature orders: one multiplicity array over matrix rows (shared by
// every candidate) replaces per-candidate sorting, and each candidate is
// a single walk of its global order. Prefix sums accumulate one sample
// at a time in the exact order the sorted-pairs scan would, so the
// chosen split is identical bit for bit.
func bestSplitCounted(g *sparseGrower, idx []int32, candidates []int, totSum, totSq float64) (feat int, thr float64, ok bool) {
	mult := g.cnt
	clear(mult)
	rowsU := g.rowsU[:0]
	if g.rowOf == nil {
		for _, i := range idx {
			if mult[i] == 0 {
				rowsU = append(rowsU, i)
			}
			mult[i]++
		}
	} else {
		for _, i := range idx {
			row := g.rowOf[i]
			if mult[row] == 0 {
				rowsU = append(rowsU, row)
			}
			mult[row]++
		}
	}
	g.rowsU = rowsU
	yRow := g.yRow
	minLeaf := g.cfg.MinLeaf
	crit := g.cfg.Criterion
	n := float64(len(idx))
	bestScore := infinity
	// With 0/1 targets every prefix statistic is an exact small integer,
	// so candidate splits can be pre-screened in exact rational
	// arithmetic: the Gini score is 2N/D with N = a(l-a)r + b(r-b)l and
	// D = l*r over integer left-sum a, left-count l, right-sum b,
	// right-count r. A candidate whose rational score exceeds the current
	// best's by more than a 2^-40 relative margin cannot win the float
	// comparison (the float evaluation's rounding slop is < 2^-49
	// relative; when the cross products are below 2^40 the integer gap of
	// >= 1 itself guarantees the margin), so only potential winners pay
	// the two-division float score — which still decides, keeping the
	// fitted tree bit-identical. int64 cross products stay in range for
	// node sizes up to 4096.
	gini01 := crit == Gini && g.binaryY && g.packed != nil && len(idx) <= 4096
	nI := int64(len(idx))
	totI := int64(totSum)
	minL := int64(minLeaf)
	var bestN, bestD int64 // rational value of bestScore; bestD == 0 means unset
	for _, f := range candidates {
		var lSum, lSq, count float64
		prevX := 0.0
		started := false
		if gini01 {
			// Gini ignores the squared-sum prefix, and m repeated
			// additions of a 0/1 target equal one float64(m) addition bit
			// for bit, so the inner multiplicity loop collapses too. The
			// walk streams the packed words; x values load only inside the
			// rare passed-filter branch, and the boundary test compares
			// group ids (identical grouping to x != prevX by
			// construction).
			pk := g.packed[f]
			xs := g.xSorted[f]
			var lSumI, countI int64
			prevGrp := int64(-1)
			prevR := 0
			if 2*len(rowsU) < len(pk) {
				// Sparse node: visiting set bits of a rank bitmap beats
				// testing every rank. The walk zeroes each word it
				// drains, restoring occ's all-zero invariant.
				rof := g.rankOf[f]
				occ := g.occ
				for _, row := range rowsU {
					rk := rof[row]
					occ[rk>>6] |= 1 << (rk & 63)
				}
				nW := (len(pk) + 63) >> 6
			occWalk:
				for wi := 0; wi < nW; wi++ {
					w64 := occ[wi]
					if w64 == 0 {
						continue
					}
					occ[wi] = 0
					base := wi << 6
					for w64 != 0 {
						r := base + bits.TrailingZeros64(w64)
						w64 &= w64 - 1
						w := pk[r]
						m := int64(mult[w&0x7fff])
						grp := int64(w >> 16)
						if grp != prevGrp && prevGrp >= 0 {
							l := countI
							rr := nI - countI
							if l >= minL && rr >= minL {
								a := lSumI
								b := totI - a
								nk := a*(l-a)*rr + b*(rr-b)*l
								dk := l * rr
								if rhs := bestN * dk; bestD == 0 || nk*bestD <= rhs+(rhs>>40) {
									score := splitScore(Gini, float64(a), 0, totSum, 0, float64(l), float64(rr))
									if score < bestScore {
										bestScore = score
										bestN, bestD = nk, dk
										feat = f
										thr = (xs[prevR] + xs[r]) / 2
										ok = true
									}
								}
							}
						}
						if w&(1<<15) != 0 {
							lSumI += m
						}
						countI += m
						if countI == nI {
							break occWalk
						}
						prevGrp = grp
						prevR = r
					}
				}
				continue
			}
			for r, w := range pk {
				m := int64(mult[w&0x7fff])
				if m == 0 {
					continue
				}
				grp := int64(w >> 16)
				if grp != prevGrp && prevGrp >= 0 {
					l := countI
					rr := nI - countI
					if l >= minL && rr >= minL {
						a := lSumI
						b := totI - a
						nk := a*(l-a)*rr + b*(rr-b)*l
						dk := l * rr
						if rhs := bestN * dk; bestD == 0 || nk*bestD <= rhs+(rhs>>40) {
							score := splitScore(Gini, float64(a), 0, totSum, 0, float64(l), float64(rr))
							if score < bestScore {
								bestScore = score
								bestN, bestD = nk, dk
								feat = f
								thr = (xs[prevR] + xs[r]) / 2
								ok = true
							}
						}
					}
				}
				if w&(1<<15) != 0 {
					lSumI += m
				}
				countI += m
				if countI == nI {
					// All node rows consumed: no boundary can follow, so
					// the remaining ranks are all skips.
					break
				}
				prevGrp = grp
				prevR = r
			}
			continue
		}
		ord := g.ord[f]
		xs := g.xSorted[f]
		for r, row := range ord {
			m := mult[row]
			if m == 0 {
				continue
			}
			x := xs[r]
			if started && x != prevX {
				ln := count
				rn := n - ln
				if int(ln) >= minLeaf && int(rn) >= minLeaf {
					score := splitScore(crit, lSum, lSq, totSum, totSq, ln, rn)
					if score < bestScore {
						bestScore = score
						feat = f
						thr = (prevX + x) / 2
						ok = true
					}
				}
			}
			yv := yRow[row]
			for k := int32(0); k < m; k++ {
				lSum += yv
				lSq += yv * yv
			}
			count += float64(m)
			if count == n {
				break
			}
			prevX = x
			started = true
		}
	}
	return feat, thr, ok
}

// countingSortMin is the node size above which the precomputed-order
// walk of bestSplitCounted beats sorting the node's pairs (the walk
// costs one pass over the whole matrix regardless of node size).
const countingSortMin = 48

// sortedPairs fills pairs with the node's (x, y) samples for feature f,
// ascending by x, comparison-sorting through the grower's scratch.
func (g *sparseGrower) sortedPairs(f int, idx []int32, pairs []splitPair) {
	y := g.y
	col := g.cols[f]
	if g.rowOf == nil {
		for k, i := range idx {
			pairs[k] = splitPair{x: col[i], y: y[i]}
		}
	} else {
		for k, i := range idx {
			pairs[k] = splitPair{x: col[g.rowOf[i]], y: y[i]}
		}
	}
	sortPairsByX(pairs, g.pairsAlt[:len(pairs)])
}

// buildRanks precomputes the per-feature ascending orders that switch
// large-node scans to bestSplitCounted. yRow must hold targets by matrix
// row. Worth its one radix sort per feature only when many trees will
// grow over the same matrix (forests).
func (g *sparseGrower) buildRanks(yRow []float64) {
	n := len(g.cols[0])
	g.ord = make([][]int32, len(g.cols))
	g.xSorted = make([][]float64, len(g.cols))
	g.yRow = yRow
	g.cnt = make([]int32, n)
	ordBuf := make([]int32, len(g.cols)*n)
	xBuf := make([]float64, len(g.cols)*n)
	pairs := make([]splitPair, n)
	scratch := make([]splitPair, n)
	for f, col := range g.cols {
		for i, x := range col {
			pairs[i] = splitPair{x: x, y: float64(i)}
		}
		sortPairsByX(pairs, scratch)
		ord := ordBuf[f*n : (f+1)*n]
		xs := xBuf[f*n : (f+1)*n]
		for k, p := range pairs {
			xs[k] = p.x
			ord[k] = int32(p.y)
		}
		g.ord[f] = ord
		g.xSorted[f] = xs
	}
	g.binaryY = true
	for _, v := range yRow {
		if v != 0 && v != 1 {
			g.binaryY = false
			break
		}
	}
	if !g.binaryY || n >= 1<<15 {
		return
	}
	g.packed = make([][]uint32, len(g.cols))
	g.rankOf = make([][]uint16, len(g.cols))
	packBuf := make([]uint32, len(g.cols)*n)
	rankBuf := make([]uint16, len(g.cols)*n)
	for f := range g.cols {
		ord := g.ord[f]
		xs := g.xSorted[f]
		pk := packBuf[f*n : (f+1)*n]
		rof := rankBuf[f*n : (f+1)*n]
		grp := uint32(0)
		for k, row := range ord {
			if k > 0 && xs[k] != xs[k-1] {
				grp++
			}
			w := uint32(row) | grp<<16
			if yRow[row] != 0 {
				w |= 1 << 15
			}
			pk[k] = w
			rof[row] = uint16(k)
		}
		g.packed[f] = pk
		g.rankOf[f] = rof
	}
	g.occ = make([]uint64, (n+63)/64)
	g.rowsU = make([]int32, 0, n)
}

// sortKey maps a float64 to a uint64 whose unsigned order matches the
// float's ascending order (sign bit flipped for positives, all bits for
// negatives) — the standard radix-sortable transform.
func sortKey(x float64) uint64 {
	u := math.Float64bits(x)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

// sortPairsByX sorts pairs ascending by x without a comparison closure:
// insertion sort for small nodes, byte-wise LSD radix sort (through
// scratch, which must have the same length) for large ones. Tie order
// among equal x differs from a comparison sort, which is harmless: the
// threshold scan never splits inside a run of equal values, so every
// evaluated prefix contains whole runs regardless of their internal
// order. (With 0/1 targets — the forest's case — prefix sums are exact
// integers, making the resulting tree bit-identical too.)
func sortPairsByX(pairs, scratch []splitPair) {
	n := len(pairs)
	if n < 2 {
		return
	}
	if n <= 64 {
		for i := 1; i < n; i++ {
			p := pairs[i]
			j := i - 1
			for j >= 0 && p.x < pairs[j].x {
				pairs[j+1] = pairs[j]
				j--
			}
			pairs[j+1] = p
		}
		return
	}
	// One pass builds the histograms of every byte position; passes whose
	// byte is constant across the node are skipped (common for the
	// exponent bytes of same-scale features).
	var hist [8][256]int32
	for i := range pairs {
		u := sortKey(pairs[i].x)
		hist[0][u&0xff]++
		hist[1][(u>>8)&0xff]++
		hist[2][(u>>16)&0xff]++
		hist[3][(u>>24)&0xff]++
		hist[4][(u>>32)&0xff]++
		hist[5][(u>>40)&0xff]++
		hist[6][(u>>48)&0xff]++
		hist[7][(u>>56)&0xff]++
	}
	src, dst := pairs, scratch
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		h := &hist[pass]
		if h[(sortKey(src[0].x)>>shift)&0xff] == int32(n) {
			continue // all keys share this byte
		}
		var off [256]int32
		sum := int32(0)
		for i, c := range h {
			off[i] = sum
			sum += c
		}
		for i := range src {
			b := (sortKey(src[i].x) >> shift) & 0xff
			dst[off[b]] = src[i]
			off[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

// splitScore evaluates a candidate split from its left-prefix and node
// totals.
func splitScore(c Criterion, lSum, lSq, totSum, totSq, ln, rn float64) float64 {
	switch c {
	case Gini:
		lp := lSum / ln
		rp := (totSum - lSum) / rn
		return ln*2*lp*(1-lp) + rn*2*rp*(1-rp)
	default: // Variance: SSE = sq - sum^2/n
		rSum := totSum - lSum
		return (lSq - lSum*lSum/ln) + ((totSq - lSq) - rSum*rSum/rn)
	}
}

// FitTreePresorted grows a tree using an existing presort of X. The
// presort must have been built over exactly these rows; it is read-only
// here, so one presort can serve many trees over the same matrix.
func FitTreePresorted(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand, ps *Presort) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d rows, %d targets", len(X), len(y)))
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.FeatureFrac <= 0 || cfg.FeatureFrac > 1 {
		cfg.FeatureFrac = 1
	}
	return fitPresorted(X, y, cfg, r, ps, &denseScratch{})
}

// fitPresorted is FitTreePresorted with an explicit scratch, so ensemble
// fits (the GBM's stage loop) can reuse one arena across every tree.
func fitPresorted(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand, ps *Presort, scratch *denseScratch) *Tree {
	n := len(y)
	nf := len(ps.order)
	if len(scratch.work) != nf {
		scratch.work = make([][]int32, nf)
		scratch.xsw = make([][]float64, nf)
		scratch.ysw = make([][]float64, nf)
	}
	for f, ord := range ps.order {
		if cap(scratch.work[f]) < n {
			scratch.work[f] = make([]int32, n)
			scratch.xsw[f] = make([]float64, n)
			scratch.ysw[f] = make([]float64, n)
		}
		w := scratch.work[f][:n]
		xs := scratch.xsw[f][:n]
		ys := scratch.ysw[f][:n]
		col := ps.cols[f]
		for k, i := range ord {
			w[k] = i
			xs[k] = col[i]
			ys[k] = y[i]
		}
		scratch.work[f], scratch.xsw[f], scratch.ysw[f] = w, xs, ys
	}
	if cap(scratch.part) < n {
		scratch.part = make([]int32, 0, n)
		scratch.xpart = make([]float64, 0, n)
		scratch.ypart = make([]float64, 0, n)
	}
	t := &Tree{features: len(X[0])}
	t.root = t.grow(ps.cols, y, scratch.work, 0, n, cfg, 0, r, scratch)
	return t
}

// denseScratch holds the dense strategy's per-fit reusable state: the
// feature-subset buffer, a working copy of the presorted orders that is
// partitioned in place down the tree, and the stable-partition scratch.
// One scratch serves every stage of a GBM fit, so growing a tree
// allocates only its nodes.
type denseScratch struct {
	perm []int
	work [][]int32
	part []int32
	// xsw/ysw mirror work: xsw[f][k] and ysw[f][k] are the x value and
	// target of row work[f][k]. Partitions maintain them alongside the
	// orders, so candidate scans stream three flat arrays instead of
	// gathering values through row indices. xpart/ypart are the matching
	// stable-partition scratches.
	xsw, ysw     [][]float64
	xpart, ypart []float64
	// side flags the left-going rows of the node being split (1 = left);
	// always all-zero between partitions.
	side []byte
	// leafOf, when non-nil, receives each training row's leaf id as
	// leaves are made — the rows land there during growth for free,
	// sparing ensemble fits a per-row tree traversal afterwards. Row
	// routing at predict time uses the same `<= threshold` comparison as
	// the training partition, so the recorded ids match LeafID exactly.
	leafOf []int
}

// grow recursively builds the subtree over the rows in work[_][lo:hi]
// (the node's membership, presorted per feature; every feature's window
// holds the same rows). cols is the column-major view of the training
// matrix. Splitting stably partitions each window in place, so the
// children recurse on disjoint subwindows and no per-node lists are
// allocated.
func (t *Tree) grow(cols [][]float64, y []float64, work [][]int32, lo, hi int, cfg TreeConfig, depth int, r *stats.Rand, scratch *denseScratch) *node {
	rows := work[0][lo:hi]
	if depth >= cfg.MaxDepth || len(rows) < 2*cfg.MinLeaf || pure(y, rows) {
		return t.makeLeafRecorded(y, rows, scratch)
	}
	feat, thr, ok := bestSplit(cols, y, work, lo, hi, cfg, r, scratch)
	if !ok {
		return t.makeLeafRecorded(y, rows, scratch)
	}
	// Check split feasibility before touching the arena: a leaf's value is
	// a target sum in row order, so rows must stay untouched on this path.
	// The split feature's window is sorted, so the left count is a binary
	// search for the first value above the threshold.
	xsFeat := scratch.xsw[feat][lo:hi]
	a, b := 0, len(xsFeat)
	for a < b {
		mid := int(uint(a+b) >> 1)
		if xsFeat[mid] <= thr {
			a = mid + 1
		} else {
			b = mid
		}
	}
	nl := a
	if nl < cfg.MinLeaf || len(rows)-nl < cfg.MinLeaf {
		return t.makeLeafRecorded(y, rows, scratch)
	}
	// Flag the left-going rows once (the split feature's sorted window
	// makes them its first nl entries), then route every other feature's
	// window by the flag — a byte load instead of a column gather.
	if len(scratch.side) < len(cols[0]) {
		scratch.side = make([]byte, len(cols[0]))
	}
	side := scratch.side
	leftRows := work[feat][lo : lo+nl]
	for _, i := range leftRows {
		side[i] = 1
	}
	for f, ord := range work {
		if f == feat {
			continue // already partitioned: its window is sorted by x
		}
		seg := ord[lo:hi]
		xseg := scratch.xsw[f][lo:hi]
		yseg := scratch.ysw[f][lo:hi]
		part := scratch.part[:0]
		xpart := scratch.xpart[:0]
		ypart := scratch.ypart[:0]
		w := 0
		for k, i := range seg {
			if side[i] != 0 {
				seg[w] = i
				xseg[w] = xseg[k]
				yseg[w] = yseg[k]
				w++
			} else {
				part = append(part, i)
				xpart = append(xpart, xseg[k])
				ypart = append(ypart, yseg[k])
			}
		}
		copy(seg[w:], part)
		copy(xseg[w:], xpart)
		copy(yseg[w:], ypart)
	}
	for _, i := range leftRows {
		side[i] = 0
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.grow(cols, y, work, lo, lo+nl, cfg, depth+1, r, scratch),
		right:     t.grow(cols, y, work, lo+nl, hi, cfg, depth+1, r, scratch),
	}
}

// makeLeafRecorded is makeLeaf plus leaf-id recording for the dense
// strategy's ensemble fits.
func (t *Tree) makeLeafRecorded(y []float64, rows []int32, scratch *denseScratch) *node {
	leaf := t.makeLeaf(y, rows)
	if scratch.leafOf != nil {
		for _, i := range rows {
			scratch.leafOf[i] = leaf.leafID
		}
	}
	return leaf
}

// makeLeaf creates a leaf whose value is the target mean (probability for
// 0/1 targets).
func (t *Tree) makeLeaf(y []float64, rows []int32) *node {
	var sum float64
	for _, i := range rows {
		sum += y[i]
	}
	n := &node{leaf: true, leafID: len(t.leaves), value: sum / float64(len(rows))}
	t.leaves = append(t.leaves, n)
	return n
}

// pure reports whether all targets in rows are identical.
func pure(y []float64, rows []int32) bool {
	for _, i := range rows[1:] {
		if y[i] != y[rows[0]] {
			return false
		}
	}
	return true
}

// bestSplit scans a feature subset for the impurity-minimizing threshold.
// Each candidate feature's rows arrive presorted, so all thresholds are
// evaluated in one O(n) prefix-statistics pass with no sorting.
func bestSplit(cols [][]float64, y []float64, work [][]int32, lo, hi int, cfg TreeConfig, r *stats.Rand, scratch *denseScratch) (feat int, thr float64, ok bool) {
	candidates := featureSubsetInto(scratch.perm, len(work), cfg.FeatureFrac, r)
	scratch.perm = candidates
	// The node's total target statistics are feature-independent: one
	// pass here instead of one per candidate feature. Feature 0's target
	// mirror visits rows in the same order work[0] does.
	var totSum, totSq float64
	for _, yv := range scratch.ysw[0][lo:hi] {
		totSum += yv
		totSq += yv * yv
	}
	bestScore := infinity
	for _, f := range candidates {
		xs := scratch.xsw[f][lo:hi]
		ys := scratch.ysw[f][lo:hi]
		var lSum, lSq float64
		n := float64(len(xs))
		for k := 0; k < len(xs)-1; k++ {
			yk := ys[k]
			lSum += yk
			lSq += yk * yk
			xk := xs[k]
			xk1 := xs[k+1]
			if xk == xk1 {
				continue // cannot split between equal values
			}
			ln := float64(k + 1)
			rn := n - ln
			if int(ln) < cfg.MinLeaf || int(rn) < cfg.MinLeaf {
				continue
			}
			score := splitScore(cfg.Criterion, lSum, lSq, totSum, totSq, ln, rn)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (xk + xk1) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

const infinity = 1e308

// featureSubsetInto samples ceil(frac*n) distinct feature indices into
// buf (grown as needed), consuming exactly the draws of math/rand's Perm
// so scratch reuse never shifts the stream. The result aliases the
// buffer; callers store it back for the next node.
func featureSubsetInto(buf []int, n int, frac float64, r *stats.Rand) []int {
	k := int(frac*float64(n) + 0.999999)
	if k >= n || r == nil {
		if cap(buf) < n {
			buf = make([]int, n)
		}
		all := buf[:n]
		for i := range all {
			all[i] = i
		}
		return all
	}
	if k < 1 {
		k = 1
	}
	return r.PermInto(n, buf)[:k]
}

// Predict returns the tree's output for one row.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// LeafID returns the index of the leaf x lands in (stable for the tree's
// lifetime); the quantile GBM uses it to re-fit leaf values.
func (t *Tree) LeafID(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafID
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return len(t.leaves) }

// LeafValue returns the current output of a leaf by id.
func (t *Tree) LeafValue(leafID int) float64 { return t.leaves[leafID].value }

// SetLeafValue overwrites a leaf's output (quantile GBM leaf adjustment).
func (t *Tree) SetLeafValue(leafID int, v float64) {
	t.leaves[leafID].value = v
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
