// Package ml implements the two model families Pond's control plane uses
// (§5), from scratch on the standard library: CART decision trees,
// bootstrap-aggregated random forests (the scikit-learn RandomForest
// stand-in for latency-insensitivity classification), and gradient-boosted
// regression trees with pinball loss (the LightGBM quantile-GBM stand-in
// for untouched-memory prediction).
//
// Every fit is deterministic given its seed; the experiment harness relies
// on that for reproducible figures.
package ml

import (
	"fmt"
	"sort"

	"pond/internal/stats"
)

// Criterion selects the split quality measure.
type Criterion int

const (
	// Variance minimizes within-node sum of squared errors (regression).
	Variance Criterion = iota
	// Gini minimizes within-node Gini impurity (binary classification
	// with 0/1 targets).
	Gini
)

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int
	MinLeaf     int     // minimum samples per leaf
	FeatureFrac float64 // fraction of features considered per split (1.0 = all)
	Criterion   Criterion
}

// DefaultTreeConfig returns a sane regression-tree configuration.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 6, MinLeaf: 5, FeatureFrac: 1.0, Criterion: Variance}
}

// node is one tree node; leaves carry a value, internal nodes a split.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	leafID    int
	value     float64
}

// Tree is a fitted CART tree.
type Tree struct {
	root     *node
	leaves   []*node
	features int
}

// FitTree grows a tree on rows X (all of equal length) with targets y.
// The RNG drives per-split feature subsampling; pass a fresh fork per
// tree for forests.
func FitTree(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d rows, %d targets", len(X), len(y)))
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.FeatureFrac <= 0 || cfg.FeatureFrac > 1 {
		cfg.FeatureFrac = 1
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{features: len(X[0])}
	t.root = t.grow(X, y, idx, cfg, 0, r)
	return t
}

// grow recursively builds the subtree over the sample indices idx.
func (t *Tree) grow(X [][]float64, y []float64, idx []int, cfg TreeConfig, depth int, r *stats.Rand) *node {
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || pure(y, idx) {
		return t.makeLeaf(y, idx)
	}
	feat, thr, ok := bestSplit(X, y, idx, cfg, r)
	if !ok {
		return t.makeLeaf(y, idx)
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return t.makeLeaf(y, idx)
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.grow(X, y, left, cfg, depth+1, r),
		right:     t.grow(X, y, right, cfg, depth+1, r),
	}
}

// makeLeaf creates a leaf whose value is the target mean (probability for
// 0/1 targets).
func (t *Tree) makeLeaf(y []float64, idx []int) *node {
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	n := &node{leaf: true, leafID: len(t.leaves), value: sum / float64(len(idx))}
	t.leaves = append(t.leaves, n)
	return n
}

// pure reports whether all targets in idx are identical.
func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// bestSplit scans a feature subset for the impurity-minimizing threshold.
func bestSplit(X [][]float64, y []float64, idx []int, cfg TreeConfig, r *stats.Rand) (feat int, thr float64, ok bool) {
	nFeatures := len(X[idx[0]])
	candidates := featureSubset(nFeatures, cfg.FeatureFrac, r)

	type pair struct{ x, y float64 }
	pairs := make([]pair, len(idx))
	bestScore := infinity
	for _, f := range candidates {
		for k, i := range idx {
			pairs[k] = pair{X[i][f], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })

		// Prefix statistics allow O(n) evaluation of all thresholds.
		var lSum, lSq float64
		var rSum, rSq float64
		for _, p := range pairs {
			rSum += p.y
			rSq += p.y * p.y
		}
		n := float64(len(pairs))
		for k := 0; k < len(pairs)-1; k++ {
			lSum += pairs[k].y
			lSq += pairs[k].y * pairs[k].y
			rSum -= pairs[k].y
			rSq -= pairs[k].y * pairs[k].y
			if pairs[k].x == pairs[k+1].x {
				continue // cannot split between equal values
			}
			ln := float64(k + 1)
			rn := n - ln
			if int(ln) < cfg.MinLeaf || int(rn) < cfg.MinLeaf {
				continue
			}
			var score float64
			switch cfg.Criterion {
			case Gini:
				lp := lSum / ln
				rp := rSum / rn
				score = ln*2*lp*(1-lp) + rn*2*rp*(1-rp)
			default: // Variance: SSE = sq - sum^2/n
				score = (lSq - lSum*lSum/ln) + (rSq - rSum*rSum/rn)
			}
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (pairs[k].x + pairs[k+1].x) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

const infinity = 1e308

// featureSubset samples ceil(frac*n) distinct feature indices.
func featureSubset(n int, frac float64, r *stats.Rand) []int {
	k := int(frac*float64(n) + 0.999999)
	if k >= n || r == nil {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if k < 1 {
		k = 1
	}
	perm := r.Perm(n)
	return perm[:k]
}

// Predict returns the tree's output for one row.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// LeafID returns the index of the leaf x lands in (stable for the tree's
// lifetime); the quantile GBM uses it to re-fit leaf values.
func (t *Tree) LeafID(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafID
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return len(t.leaves) }

// SetLeafValue overwrites a leaf's output (quantile GBM leaf adjustment).
func (t *Tree) SetLeafValue(leafID int, v float64) {
	t.leaves[leafID].value = v
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
