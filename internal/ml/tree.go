// Package ml implements the two model families Pond's control plane uses
// (§5), from scratch on the standard library: CART decision trees,
// bootstrap-aggregated random forests (the scikit-learn RandomForest
// stand-in for latency-insensitivity classification), and gradient-boosted
// regression trees with pinball loss (the LightGBM quantile-GBM stand-in
// for untouched-memory prediction).
//
// Every fit is deterministic given its seed; the experiment harness relies
// on that for reproducible figures.
package ml

import (
	"cmp"
	"fmt"
	"slices"

	"pond/internal/stats"
)

// Criterion selects the split quality measure.
type Criterion int

const (
	// Variance minimizes within-node sum of squared errors (regression).
	Variance Criterion = iota
	// Gini minimizes within-node Gini impurity (binary classification
	// with 0/1 targets).
	Gini
)

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int
	MinLeaf     int     // minimum samples per leaf
	FeatureFrac float64 // fraction of features considered per split (1.0 = all)
	Criterion   Criterion
}

// DefaultTreeConfig returns a sane regression-tree configuration.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 6, MinLeaf: 5, FeatureFrac: 1.0, Criterion: Variance}
}

// node is one tree node; leaves carry a value, internal nodes a split.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	leafID    int
	value     float64
}

// Tree is a fitted CART tree.
type Tree struct {
	root     *node
	leaves   []*node
	features int
}

// Presort carries per-feature argsort orders over a fixed training
// matrix, plus column-major value copies for scan locality. Building it
// costs one sort per feature; every tree grown from it finds splits by
// linear scans of the presorted orders instead of re-sorting at each
// node, and partitions the orders down the tree. A gradient-boosting run
// fits all its stages on the same rows, so one Presort amortizes over
// the whole ensemble — this is where the experiment suite's GBM training
// time goes from minutes to seconds.
type Presort struct {
	order [][]int32   // order[f] = row indexes ascending by X[_][f]
	cols  [][]float64 // cols[f][i] = X[i][f]
}

// columns transposes the row-major training matrix into per-feature
// columns.
func columns(X [][]float64) [][]float64 {
	cols := make([][]float64, len(X[0]))
	for f := range cols {
		col := make([]float64, len(X))
		for i := range X {
			col[i] = X[i][f]
		}
		cols[f] = col
	}
	return cols
}

// NewPresort argsorts every feature column of X.
func NewPresort(X [][]float64) *Presort {
	if len(X) == 0 {
		panic("ml: presort of empty matrix")
	}
	cols := columns(X)
	ps := &Presort{order: make([][]int32, len(cols)), cols: cols}
	for f, col := range cols {
		ord := make([]int32, len(X))
		for i := range ord {
			ord[i] = int32(i)
		}
		slices.SortFunc(ord, func(a, b int32) int { return cmp.Compare(col[a], col[b]) })
		ps.order[f] = ord
	}
	return ps
}

// FitTree grows a tree on rows X (all of equal length) with targets y.
// The RNG drives per-split feature subsampling; pass a fresh fork per
// tree for forests.
//
// Two growth strategies cover the two model families: with a small
// FeatureFrac (forests examine ~sqrt of hundreds of counters per split)
// each node sorts just its candidate features; with a large FeatureFrac
// (the GBM examines most features at every split) presorted per-feature
// orders are partitioned down the tree instead.
func FitTree(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d rows, %d targets", len(X), len(y)))
	}
	if cfg.FeatureFrac > 0 && cfg.FeatureFrac < sparseFracThreshold {
		return fitTreeSparse(X, y, cfg, r)
	}
	return FitTreePresorted(X, y, cfg, r, NewPresort(X))
}

// sparseFracThreshold selects between the sparse (sort candidates per
// node) and dense (partition presorted lists) growth strategies.
const sparseFracThreshold = 0.5

// fitTreeSparse grows a tree sorting candidate features at each node —
// cheaper than maintaining presorted lists when splits examine only a
// small feature subset.
func fitTreeSparse(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand) *Tree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	cols := columns(X)
	idx := make([]int32, len(X))
	for i := range idx {
		idx[i] = int32(i)
	}
	t := &Tree{features: len(cols)}
	g := &sparseGrower{cols: cols, y: y, cfg: cfg, pairs: make([]splitPair, len(X))}
	t.root = t.growSparse(g, idx, 0, r)
	return t
}

// splitPair is one (value, target) sample during a candidate-feature
// scan.
type splitPair struct{ x, y float64 }

// sparseGrower carries the per-fit state of the sparse strategy,
// including the reusable sort buffer.
type sparseGrower struct {
	cols  [][]float64
	y     []float64
	cfg   TreeConfig
	pairs []splitPair
}

// growSparse recursively builds the subtree over the rows in idx.
func (t *Tree) growSparse(g *sparseGrower, idx []int32, depth int, r *stats.Rand) *node {
	if depth >= g.cfg.MaxDepth || len(idx) < 2*g.cfg.MinLeaf || pure(g.y, idx) {
		return t.makeLeaf(g.y, idx)
	}
	feat, thr, ok := bestSplitSparse(g, idx, r)
	if !ok {
		return t.makeLeaf(g.y, idx)
	}
	col := g.cols[feat]
	var left, right []int32
	for _, i := range idx {
		if col[i] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < g.cfg.MinLeaf || len(right) < g.cfg.MinLeaf {
		return t.makeLeaf(g.y, idx)
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.growSparse(g, left, depth+1, r),
		right:     t.growSparse(g, right, depth+1, r),
	}
}

// bestSplitSparse sorts each candidate feature's rows and scans the
// thresholds with the same prefix statistics as the dense strategy.
func bestSplitSparse(g *sparseGrower, idx []int32, r *stats.Rand) (feat int, thr float64, ok bool) {
	candidates := featureSubset(len(g.cols), g.cfg.FeatureFrac, r)
	y := g.y
	var totSum, totSq float64
	for _, i := range idx {
		totSum += y[i]
		totSq += y[i] * y[i]
	}
	pairs := g.pairs[:len(idx)]
	bestScore := infinity
	n := float64(len(idx))
	for _, f := range candidates {
		col := g.cols[f]
		for k, i := range idx {
			pairs[k] = splitPair{x: col[i], y: y[i]}
		}
		slices.SortFunc(pairs, func(a, b splitPair) int { return cmp.Compare(a.x, b.x) })
		var lSum, lSq float64
		for k := 0; k < len(pairs)-1; k++ {
			lSum += pairs[k].y
			lSq += pairs[k].y * pairs[k].y
			if pairs[k].x == pairs[k+1].x {
				continue // cannot split between equal values
			}
			ln := float64(k + 1)
			rn := n - ln
			if int(ln) < g.cfg.MinLeaf || int(rn) < g.cfg.MinLeaf {
				continue
			}
			score := splitScore(g.cfg.Criterion, lSum, lSq, totSum, totSq, ln, rn)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (pairs[k].x + pairs[k+1].x) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// splitScore evaluates a candidate split from its left-prefix and node
// totals.
func splitScore(c Criterion, lSum, lSq, totSum, totSq, ln, rn float64) float64 {
	switch c {
	case Gini:
		lp := lSum / ln
		rp := (totSum - lSum) / rn
		return ln*2*lp*(1-lp) + rn*2*rp*(1-rp)
	default: // Variance: SSE = sq - sum^2/n
		rSum := totSum - lSum
		return (lSq - lSum*lSum/ln) + ((totSq - lSq) - rSum*rSum/rn)
	}
}

// FitTreePresorted grows a tree using an existing presort of X. The
// presort must have been built over exactly these rows; it is read-only
// here, so one presort can serve many trees over the same matrix.
func FitTreePresorted(X [][]float64, y []float64, cfg TreeConfig, r *stats.Rand, ps *Presort) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d rows, %d targets", len(X), len(y)))
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.FeatureFrac <= 0 || cfg.FeatureFrac > 1 {
		cfg.FeatureFrac = 1
	}
	t := &Tree{features: len(X[0])}
	t.root = t.grow(ps.cols, y, ps.order, cfg, 0, r)
	return t
}

// grow recursively builds the subtree over the rows held by lists (the
// node's membership, presorted per feature; every lists[f] holds the same
// rows). cols is the column-major view of the training matrix.
func (t *Tree) grow(cols [][]float64, y []float64, lists [][]int32, cfg TreeConfig, depth int, r *stats.Rand) *node {
	rows := lists[0]
	if depth >= cfg.MaxDepth || len(rows) < 2*cfg.MinLeaf || pure(y, rows) {
		return t.makeLeaf(y, rows)
	}
	feat, thr, ok := bestSplit(cols, y, lists, cfg, r)
	if !ok {
		return t.makeLeaf(y, rows)
	}
	left, right := partition(cols[feat], lists, thr)
	if len(left[0]) < cfg.MinLeaf || len(right[0]) < cfg.MinLeaf {
		return t.makeLeaf(y, rows)
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.grow(cols, y, left, cfg, depth+1, r),
		right:     t.grow(cols, y, right, cfg, depth+1, r),
	}
}

// makeLeaf creates a leaf whose value is the target mean (probability for
// 0/1 targets).
func (t *Tree) makeLeaf(y []float64, rows []int32) *node {
	var sum float64
	for _, i := range rows {
		sum += y[i]
	}
	n := &node{leaf: true, leafID: len(t.leaves), value: sum / float64(len(rows))}
	t.leaves = append(t.leaves, n)
	return n
}

// pure reports whether all targets in rows are identical.
func pure(y []float64, rows []int32) bool {
	for _, i := range rows[1:] {
		if y[i] != y[rows[0]] {
			return false
		}
	}
	return true
}

// bestSplit scans a feature subset for the impurity-minimizing threshold.
// Each candidate feature's rows arrive presorted, so all thresholds are
// evaluated in one O(n) prefix-statistics pass with no sorting.
func bestSplit(cols [][]float64, y []float64, lists [][]int32, cfg TreeConfig, r *stats.Rand) (feat int, thr float64, ok bool) {
	candidates := featureSubset(len(lists), cfg.FeatureFrac, r)
	// The node's total target statistics are feature-independent: one
	// pass here instead of one per candidate feature.
	var totSum, totSq float64
	for _, i := range lists[0] {
		totSum += y[i]
		totSq += y[i] * y[i]
	}
	bestScore := infinity
	for _, f := range candidates {
		ord := lists[f]
		col := cols[f]
		var lSum, lSq float64
		n := float64(len(ord))
		for k := 0; k < len(ord)-1; k++ {
			yk := y[ord[k]]
			lSum += yk
			lSq += yk * yk
			xk := col[ord[k]]
			xk1 := col[ord[k+1]]
			if xk == xk1 {
				continue // cannot split between equal values
			}
			ln := float64(k + 1)
			rn := n - ln
			if int(ln) < cfg.MinLeaf || int(rn) < cfg.MinLeaf {
				continue
			}
			score := splitScore(cfg.Criterion, lSum, lSq, totSum, totSq, ln, rn)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (xk + xk1) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// partition splits every feature's presorted order into the rows left and
// right of the chosen threshold, preserving sort order on both sides.
func partition(col []float64, lists [][]int32, thr float64) (left, right [][]int32) {
	nl := 0
	for _, i := range lists[0] {
		if col[i] <= thr {
			nl++
		}
	}
	n := len(lists[0])
	left = make([][]int32, len(lists))
	right = make([][]int32, len(lists))
	// One backing array per side for all features: fewer, larger
	// allocations keep each node's lists contiguous.
	lbuf := make([]int32, 0, nl*len(lists))
	rbuf := make([]int32, 0, (n-nl)*len(lists))
	for f, ord := range lists {
		ls, rs := len(lbuf), len(rbuf)
		for _, i := range ord {
			if col[i] <= thr {
				lbuf = append(lbuf, i)
			} else {
				rbuf = append(rbuf, i)
			}
		}
		left[f] = lbuf[ls:len(lbuf):len(lbuf)]
		right[f] = rbuf[rs:len(rbuf):len(rbuf)]
	}
	return left, right
}

const infinity = 1e308

// featureSubset samples ceil(frac*n) distinct feature indices.
func featureSubset(n int, frac float64, r *stats.Rand) []int {
	k := int(frac*float64(n) + 0.999999)
	if k >= n || r == nil {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if k < 1 {
		k = 1
	}
	perm := r.Perm(n)
	return perm[:k]
}

// Predict returns the tree's output for one row.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// LeafID returns the index of the leaf x lands in (stable for the tree's
// lifetime); the quantile GBM uses it to re-fit leaf values.
func (t *Tree) LeafID(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafID
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return len(t.leaves) }

// LeafValue returns the current output of a leaf by id.
func (t *Tree) LeafValue(leafID int) float64 { return t.leaves[leafID].value }

// SetLeafValue overwrites a leaf's output (quantile GBM leaf adjustment).
func (t *Tree) SetLeafValue(leafID int, v float64) {
	t.leaves[leafID].value = v
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
