package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model serialization. The paper's pipeline trains models centrally,
// exports them (to ONNX), and serves them from a low-latency inference
// system on the VM request path (§5). The JSON forms here play the ONNX
// role: a trained forest or GBM round-trips through an opaque byte
// stream, and the serving side rebuilds an identical predictor.

// jsonNode is the wire form of one tree node, flattened depth-first.
type jsonNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"` // index into the node array, -1 for none
	Right     int     `json:"r"`
	Leaf      bool    `json:"leaf"`
	LeafID    int     `json:"id,omitempty"`
	Value     float64 `json:"v"`
}

// jsonTree is the wire form of a Tree.
type jsonTree struct {
	Nodes    []jsonNode `json:"nodes"`
	Features int        `json:"features"`
	Leaves   int        `json:"leaves"`
}

func flattenTree(t *Tree) jsonTree {
	jt := jsonTree{Features: t.features, Leaves: len(t.leaves)}
	var walk func(n *node) int
	walk = func(n *node) int {
		idx := len(jt.Nodes)
		jt.Nodes = append(jt.Nodes, jsonNode{})
		jn := jsonNode{
			Feature:   n.feature,
			Threshold: n.threshold,
			Left:      -1,
			Right:     -1,
			Leaf:      n.leaf,
			LeafID:    n.leafID,
			Value:     n.value,
		}
		if !n.leaf {
			jn.Left = walk(n.left)
			jn.Right = walk(n.right)
		}
		jt.Nodes[idx] = jn
		return idx
	}
	walk(t.root)
	return jt
}

func rebuildTree(jt jsonTree) (*Tree, error) {
	if len(jt.Nodes) == 0 {
		return nil, fmt.Errorf("ml: empty tree")
	}
	t := &Tree{features: jt.Features, leaves: make([]*node, jt.Leaves)}
	var build func(idx int) (*node, error)
	build = func(idx int) (*node, error) {
		if idx < 0 || idx >= len(jt.Nodes) {
			return nil, fmt.Errorf("ml: node index %d out of range", idx)
		}
		jn := jt.Nodes[idx]
		n := &node{
			feature:   jn.Feature,
			threshold: jn.Threshold,
			leaf:      jn.Leaf,
			leafID:    jn.LeafID,
			value:     jn.Value,
		}
		if n.leaf {
			if n.leafID < 0 || n.leafID >= len(t.leaves) {
				return nil, fmt.Errorf("ml: leaf id %d out of range", n.leafID)
			}
			t.leaves[n.leafID] = n
			return n, nil
		}
		var err error
		if n.left, err = build(jn.Left); err != nil {
			return nil, err
		}
		if n.right, err = build(jn.Right); err != nil {
			return nil, err
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	t.root = root
	for i, leaf := range t.leaves {
		if leaf == nil {
			return nil, fmt.Errorf("ml: leaf %d missing", i)
		}
	}
	return t, nil
}

// jsonForest is the wire form of a Forest.
type jsonForest struct {
	Kind  string     `json:"kind"`
	Trees []jsonTree `json:"trees"`
}

// ExportForest writes the forest to w.
func ExportForest(w io.Writer, f *Forest) error {
	jf := jsonForest{Kind: "forest"}
	for _, t := range f.trees {
		jf.Trees = append(jf.Trees, flattenTree(t))
	}
	return json.NewEncoder(w).Encode(jf)
}

// ImportForest reads a forest written by ExportForest.
func ImportForest(r io.Reader) (*Forest, error) {
	var jf jsonForest
	if err := json.NewDecoder(r).Decode(&jf); err != nil {
		return nil, fmt.Errorf("ml: decoding forest: %w", err)
	}
	if jf.Kind != "forest" {
		return nil, fmt.Errorf("ml: expected forest, got %q", jf.Kind)
	}
	if len(jf.Trees) == 0 {
		return nil, fmt.Errorf("ml: forest has no trees")
	}
	f := &Forest{}
	for _, jt := range jf.Trees {
		t, err := rebuildTree(jt)
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}

// jsonGBM is the wire form of a GBM.
type jsonGBM struct {
	Kind     string     `json:"kind"`
	Init     float64    `json:"init"`
	LR       float64    `json:"lr"`
	Quantile float64    `json:"quantile"`
	Trees    []jsonTree `json:"trees"`
}

// ExportGBM writes the model to w.
func ExportGBM(w io.Writer, m *GBM) error {
	jg := jsonGBM{Kind: "gbm", Init: m.init, LR: m.lr, Quantile: m.quantile}
	for _, t := range m.trees {
		jg.Trees = append(jg.Trees, flattenTree(t))
	}
	return json.NewEncoder(w).Encode(jg)
}

// ImportGBM reads a model written by ExportGBM.
func ImportGBM(r io.Reader) (*GBM, error) {
	var jg jsonGBM
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("ml: decoding gbm: %w", err)
	}
	if jg.Kind != "gbm" {
		return nil, fmt.Errorf("ml: expected gbm, got %q", jg.Kind)
	}
	m := &GBM{init: jg.Init, lr: jg.LR, quantile: jg.Quantile}
	for _, jt := range jg.Trees {
		t, err := rebuildTree(jt)
		if err != nil {
			return nil, err
		}
		m.trees = append(m.trees, t)
	}
	return m, nil
}
