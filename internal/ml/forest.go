package ml

import (
	"fmt"

	"pond/internal/stats"
)

// ForestConfig parameterizes a random forest.
type ForestConfig struct {
	NTrees int
	Tree   TreeConfig
	Seed   int64
}

// DefaultForestConfig mirrors scikit-learn's defaults at a scale suited to
// hundreds of training rows: 60 trees, sqrt-features per split.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{
		NTrees: 60,
		Tree: TreeConfig{
			MaxDepth:    8,
			MinLeaf:     2,
			FeatureFrac: 0.08, // ~sqrt(200)/200
			Criterion:   Gini,
		},
		Seed: 1,
	}
}

// Forest is a bagged ensemble of CART trees. For 0/1 targets its
// prediction is the fraction of trees voting 1 — a probability usable
// with a decision threshold, which is how the latency-insensitivity model
// trades label rate against false positives (Figure 17).
type Forest struct {
	trees []*Tree
}

// FitForest trains the ensemble with bootstrap sampling.
//
// The training matrix is transposed to feature columns exactly once;
// each tree then grows over its bootstrap *index* list through the
// grower's row indirection instead of copying and re-transposing
// resampled rows. The per-tree RNG streams (one fork, n index draws,
// then the growth draws) are identical to a row-copying bootstrap, so
// fitted forests are unchanged.
func FitForest(X [][]float64, y []float64, cfg ForestConfig) *Forest {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d rows, %d targets", len(X), len(y)))
	}
	if cfg.NTrees <= 0 {
		cfg.NTrees = 60
	}
	root := stats.NewRand(cfg.Seed)
	f := &Forest{trees: make([]*Tree, cfg.NTrees)}
	n := len(X)
	if cfg.Tree.FeatureFrac <= 0 || cfg.Tree.FeatureFrac >= sparseFracThreshold {
		// Dense-strategy trees presort per tree; fall back to row copies.
		for t := range f.trees {
			r := root.Fork(int64(t + 1))
			bx := make([][]float64, n)
			by := make([]float64, n)
			for i := 0; i < n; i++ {
				j := r.Intn(n)
				bx[i] = X[j]
				by[i] = y[j]
			}
			f.trees[t] = FitTree(bx, by, cfg.Tree, r)
		}
		return f
	}
	cols := columns(X)
	boot := make([]int32, n)
	by := make([]float64, n)
	g := newSparseGrower(cols, boot, by, cfg.Tree)
	g.buildRanks(y)
	for t := range f.trees {
		r := root.Fork(int64(t + 1))
		for i := 0; i < n; i++ {
			j := r.Intn(n)
			boot[i] = int32(j)
			by[i] = y[j]
		}
		f.trees[t] = g.fit(n, r)
	}
	return f
}

// PredictProb returns the ensemble mean output for one row.
func (f *Forest) PredictProb(x []float64) float64 {
	var sum float64
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.trees))
}

// Predict applies a decision threshold to the probability.
func (f *Forest) Predict(x []float64, threshold float64) bool {
	return f.PredictProb(x) >= threshold
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }
