package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestForestRoundTrip(t *testing.T) {
	X, y, _ := synthClassification(400, 8, 41)
	cfg := DefaultForestConfig()
	cfg.NTrees = 15
	f := FitForest(X, y, cfg)

	var buf bytes.Buffer
	if err := ExportForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ImportForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trees() != f.Trees() {
		t.Fatalf("trees = %d, want %d", got.Trees(), f.Trees())
	}
	for i := 0; i < 200; i++ {
		if got.PredictProb(X[i%len(X)]) != f.PredictProb(X[i%len(X)]) {
			t.Fatal("round-tripped forest predicts differently")
		}
	}
}

func TestGBMRoundTrip(t *testing.T) {
	X, y := synthRegression(500, 5, 42)
	cfg := DefaultGBMConfig()
	cfg.NTrees = 20
	m := FitGBM(X, y, cfg)

	var buf bytes.Buffer
	if err := ExportGBM(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ImportGBM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Quantile() != m.Quantile() || got.Stages() != m.Stages() {
		t.Fatal("metadata lost")
	}
	for i := 0; i < 200; i++ {
		if got.Predict(X[i%len(X)]) != m.Predict(X[i%len(X)]) {
			t.Fatal("round-tripped GBM predicts differently")
		}
	}
}

func TestImportForestRejectsGarbage(t *testing.T) {
	if _, err := ImportForest(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ImportForest(strings.NewReader(`{"kind":"gbm","trees":[]}`)); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := ImportForest(strings.NewReader(`{"kind":"forest","trees":[]}`)); err == nil {
		t.Fatal("empty forest accepted")
	}
}

func TestImportGBMRejectsGarbage(t *testing.T) {
	if _, err := ImportGBM(strings.NewReader(`{"kind":"forest"}`)); err == nil {
		t.Fatal("wrong kind accepted")
	}
	// Corrupt node indices must not crash the importer.
	bad := `{"kind":"gbm","init":0,"lr":0.1,"quantile":0.5,` +
		`"trees":[{"nodes":[{"f":0,"t":0.5,"l":99,"r":1,"leaf":false}],"features":1,"leaves":0}]}`
	if _, err := ImportGBM(strings.NewReader(bad)); err == nil {
		t.Fatal("corrupt tree accepted")
	}
}

func TestImportForestDetectsMissingLeaves(t *testing.T) {
	// A tree claiming 2 leaves but containing 1 must be rejected.
	bad := `{"kind":"forest","trees":[{"nodes":[{"leaf":true,"id":0,"v":1}],"features":1,"leaves":2}]}`
	if _, err := ImportForest(strings.NewReader(bad)); err == nil {
		t.Fatal("missing leaf accepted")
	}
}
