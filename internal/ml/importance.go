package ml

import (
	"sort"

	"pond/internal/stats"
)

// FeatureImportance ranks features by their contribution to a fitted
// model, via permutation importance: shuffle one feature column across
// the evaluation set and measure how much the model's accuracy drops.
// The paper's latency-insensitivity model consumes 200 counters of which
// a handful carry signal (Figure 12); importance analysis is how such a
// model is audited in practice.

// Importance is one feature's score.
type Importance struct {
	Feature int
	// Drop is the accuracy lost when the feature is permuted; higher
	// means more important. Noise features score near zero.
	Drop float64
}

// PermutationImportance computes importance of every feature of a binary
// classifier over the given evaluation set. The model is consulted
// through its probability function. Deterministic given the seed.
func PermutationImportance(predict func([]float64) float64, X [][]float64, truth []bool, threshold float64, seed int64) []Importance {
	if len(X) == 0 || len(X) != len(truth) {
		panic("ml: bad evaluation set")
	}
	r := stats.NewRand(seed)
	base := accuracyOf(predict, X, truth, threshold)

	nFeatures := len(X[0])
	out := make([]Importance, nFeatures)

	// Reusable buffers: a shuffled copy of one column and row views
	// that splice it in.
	column := make([]float64, len(X))
	row := make([]float64, nFeatures)
	for f := 0; f < nFeatures; f++ {
		for i := range X {
			column[i] = X[i][f]
		}
		r.Shuffle(len(column), func(a, b int) { column[a], column[b] = column[b], column[a] })
		correct := 0
		for i := range X {
			copy(row, X[i])
			row[f] = column[i]
			pred := predict(row) >= threshold
			if pred == truth[i] {
				correct++
			}
		}
		permuted := float64(correct) / float64(len(X))
		out[f] = Importance{Feature: f, Drop: base - permuted}
	}
	return out
}

// TopFeatures returns the k most important features, sorted by
// descending drop (ties broken by feature index for determinism).
func TopFeatures(imp []Importance, k int) []Importance {
	sorted := append([]Importance(nil), imp...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Drop != sorted[j].Drop {
			return sorted[i].Drop > sorted[j].Drop
		}
		return sorted[i].Feature < sorted[j].Feature
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

func accuracyOf(predict func([]float64) float64, X [][]float64, truth []bool, threshold float64) float64 {
	correct := 0
	for i := range X {
		if (predict(X[i]) >= threshold) == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
