package ml

import (
	"math"

	"pond/internal/stats"
)

// Logistic regression: a linear baseline between the single-counter
// thresholds and the random forest on the Figure 17 task. Trained with
// batch gradient descent on standardized features and L2 regularization.
// Its failure mode on the insensitivity problem is instructive: the
// decision surface is linear in counter space, so the deceptive
// store-bound workloads (Finding 4) cost it more than they cost the
// forest.

// LogisticConfig parameterizes training.
type LogisticConfig struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         int64
}

// DefaultLogisticConfig returns settings suited to a few hundred rows.
func DefaultLogisticConfig() LogisticConfig {
	return LogisticConfig{Epochs: 500, LearningRate: 0.5, L2: 0.02, Seed: 1}
}

// Logistic is a fitted model.
type Logistic struct {
	weights []float64
	bias    float64
	mean    []float64
	scale   []float64
}

// FitLogistic trains on rows X with 0/1 targets y.
func FitLogistic(X [][]float64, y []float64, cfg LogisticConfig) *Logistic {
	if len(X) == 0 || len(X) != len(y) {
		panic("ml: bad training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 300
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.5
	}
	n := len(X)
	d := len(X[0])

	m := &Logistic{
		weights: make([]float64, d),
		mean:    make([]float64, d),
		scale:   make([]float64, d),
	}
	// Standardize features: gradient descent on raw counter scales
	// (0..120 GB/s next to 0..1 fractions) would crawl.
	for j := 0; j < d; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += X[i][j]
		}
		m.mean[j] = sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			diff := X[i][j] - m.mean[j]
			ss += diff * diff
		}
		m.scale[j] = math.Sqrt(ss/float64(n)) + 1e-9
	}
	std := make([][]float64, n)
	for i := range std {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = (X[i][j] - m.mean[j]) / m.scale[j]
		}
		std[i] = row
	}

	r := stats.NewRand(cfg.Seed)
	for j := range m.weights {
		m.weights[j] = 0.01 * r.NormFloat64()
	}
	gradW := make([]float64, d)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for j := range gradW {
			gradW[j] = cfg.L2 * m.weights[j]
		}
		gradB := 0.0
		for i := 0; i < n; i++ {
			p := m.probStd(std[i])
			err := p - y[i]
			for j := 0; j < d; j++ {
				gradW[j] += err * std[i][j] / float64(n)
			}
			gradB += err / float64(n)
		}
		for j := 0; j < d; j++ {
			m.weights[j] -= cfg.LearningRate * gradW[j]
		}
		m.bias -= cfg.LearningRate * gradB
	}
	return m
}

// probStd scores an already-standardized row.
func (m *Logistic) probStd(row []float64) float64 {
	z := m.bias
	for j, w := range m.weights {
		z += w * row[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// PredictProb returns P(y=1 | x).
func (m *Logistic) PredictProb(x []float64) float64 {
	z := m.bias
	for j, w := range m.weights {
		z += w * (x[j] - m.mean[j]) / m.scale[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// Weights returns a copy of the (standardized-space) weights.
func (m *Logistic) Weights() []float64 {
	return append([]float64(nil), m.weights...)
}
