package ml

import (
	"math"
	"testing"

	"pond/internal/stats"
)

// synthRegression builds y = 3*x0 + noise with distractor features.
func synthRegression(n, features int, seed int64) ([][]float64, []float64) {
	r := stats.NewRand(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, features)
		for j := range row {
			row[j] = r.Float64()
		}
		X[i] = row
		y[i] = 3*row[0] + 0.05*r.NormFloat64()
	}
	return X, y
}

// synthClassification labels rows by a nonlinear rule on two features.
func synthClassification(n, features int, seed int64) ([][]float64, []float64, []bool) {
	r := stats.NewRand(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	truth := make([]bool, n)
	for i := range X {
		row := make([]float64, features)
		for j := range row {
			row[j] = r.Float64()
		}
		X[i] = row
		pos := row[0] > 0.5 && row[1] < 0.6
		truth[i] = pos
		if pos {
			y[i] = 1
		}
	}
	return X, y, truth
}

func TestTreeFitsSimpleStep(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {0.2}, {0.8}, {0.9}, {1.0}}
	y := []float64{0, 0, 0, 1, 1, 1}
	tree := FitTree(X, y, TreeConfig{MaxDepth: 3, MinLeaf: 1, FeatureFrac: 1, Criterion: Variance}, stats.NewRand(1))
	if got := tree.Predict([]float64{0.05}); got != 0 {
		t.Fatalf("predict(0.05) = %v", got)
	}
	if got := tree.Predict([]float64{0.95}); got != 1 {
		t.Fatalf("predict(0.95) = %v", got)
	}
}

func TestTreePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitTree(nil, nil, DefaultTreeConfig(), stats.NewRand(1))
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	X, y := synthRegression(500, 5, 1)
	tree := FitTree(X, y, TreeConfig{MaxDepth: 3, MinLeaf: 1, FeatureFrac: 1}, stats.NewRand(1))
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth = %d, want <= 3", d)
	}
}

func TestTreeRegressionAccuracy(t *testing.T) {
	X, y := synthRegression(800, 8, 2)
	tree := FitTree(X, y, TreeConfig{MaxDepth: 8, MinLeaf: 5, FeatureFrac: 1}, stats.NewRand(1))
	Xt, yt := synthRegression(200, 8, 3)
	if got := MAE(yt, predictAll(tree, Xt)); got > 0.25 {
		t.Fatalf("tree MAE = %v, want < 0.25", got)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	tree := FitTree(X, y, DefaultTreeConfig(), stats.NewRand(1))
	if tree.Leaves() != 1 {
		t.Fatalf("constant target grew %d leaves", tree.Leaves())
	}
	if tree.Predict([]float64{99}) != 7 {
		t.Fatal("constant tree mispredicts")
	}
}

func TestTreeLeafIDsStable(t *testing.T) {
	X, y := synthRegression(300, 4, 4)
	tree := FitTree(X, y, DefaultTreeConfig(), stats.NewRand(1))
	for i := 0; i < 50; i++ {
		id := tree.LeafID(X[i])
		if id < 0 || id >= tree.Leaves() {
			t.Fatalf("leaf id %d out of range [0,%d)", id, tree.Leaves())
		}
	}
}

func TestTreeSetLeafValue(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{0, 1}
	tree := FitTree(X, y, TreeConfig{MaxDepth: 2, MinLeaf: 1, FeatureFrac: 1}, stats.NewRand(1))
	id := tree.LeafID([]float64{0})
	tree.SetLeafValue(id, 42)
	if tree.Predict([]float64{0}) != 42 {
		t.Fatal("SetLeafValue not reflected in Predict")
	}
}

func TestTreeDeterministicGivenSeed(t *testing.T) {
	X, y := synthRegression(300, 6, 5)
	cfg := TreeConfig{MaxDepth: 6, MinLeaf: 2, FeatureFrac: 0.5}
	t1 := FitTree(X, y, cfg, stats.NewRand(9))
	t2 := FitTree(X, y, cfg, stats.NewRand(9))
	for i := 0; i < 50; i++ {
		if t1.Predict(X[i]) != t2.Predict(X[i]) {
			t.Fatal("same seed, different trees")
		}
	}
}

func TestForestClassification(t *testing.T) {
	X, y, truth := synthClassification(600, 10, 6)
	cfg := DefaultForestConfig()
	cfg.Tree.FeatureFrac = 0.5
	f := FitForest(X, y, cfg)
	c := Confuse(predictAllForest(f, X), truth, 0.5)
	if acc := c.Accuracy(); acc < 0.93 {
		t.Fatalf("forest training accuracy = %v, want >= 0.93", acc)
	}
}

func TestForestGeneralizes(t *testing.T) {
	X, y, _ := synthClassification(800, 10, 7)
	cfg := DefaultForestConfig()
	cfg.Tree.FeatureFrac = 0.5
	f := FitForest(X, y, cfg)
	Xt, _, truthT := synthClassification(300, 10, 8)
	c := Confuse(predictAllForest(f, Xt), truthT, 0.5)
	if acc := c.Accuracy(); acc < 0.88 {
		t.Fatalf("forest test accuracy = %v, want >= 0.88", acc)
	}
}

func TestForestProbabilitiesInUnitInterval(t *testing.T) {
	X, y, _ := synthClassification(300, 6, 9)
	f := FitForest(X, y, DefaultForestConfig())
	for i := 0; i < 100; i++ {
		p := f.PredictProb(X[i])
		if p < 0 || p > 1 {
			t.Fatalf("probability %v outside [0,1]", p)
		}
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y, _ := synthClassification(300, 6, 10)
	cfg := DefaultForestConfig()
	f1 := FitForest(X, y, cfg)
	f2 := FitForest(X, y, cfg)
	for i := 0; i < 50; i++ {
		if f1.PredictProb(X[i]) != f2.PredictProb(X[i]) {
			t.Fatal("same config, different forests")
		}
	}
}

func TestForestTreesCount(t *testing.T) {
	X, y, _ := synthClassification(100, 4, 11)
	cfg := DefaultForestConfig()
	cfg.NTrees = 7
	if got := FitForest(X, y, cfg).Trees(); got != 7 {
		t.Fatalf("trees = %d", got)
	}
}

func TestGBMQuantileCoverage(t *testing.T) {
	// For y ~ x + noise, a q=0.1 model should under-predict ~90% of
	// samples: the overprediction rate should be near 10%.
	r := stats.NewRand(12)
	n := 3000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := r.Float64()
		X[i] = []float64{x0, r.Float64()}
		y[i] = x0 + 0.2*r.NormFloat64()
	}
	cfg := DefaultGBMConfig()
	cfg.Quantile = 0.10
	m := FitGBM(X, y, cfg)
	op := OverpredictionRate(y, predictAllGBM(m, X))
	if math.Abs(op-0.10) > 0.05 {
		t.Fatalf("overprediction rate = %v, want ~0.10", op)
	}
}

func TestGBMQuantileOrdering(t *testing.T) {
	// A higher-quantile model must predict above a lower-quantile one
	// on average.
	r := stats.NewRand(13)
	n := 1500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := r.Float64()
		X[i] = []float64{x0}
		y[i] = x0 + 0.3*r.NormFloat64()
	}
	lo := FitGBM(X, y, GBMConfig{NTrees: 40, LearningRate: 0.1, Tree: DefaultTreeConfig(), Quantile: 0.1, Seed: 1})
	hi := FitGBM(X, y, GBMConfig{NTrees: 40, LearningRate: 0.1, Tree: DefaultTreeConfig(), Quantile: 0.9, Seed: 1})
	var loMean, hiMean float64
	for i := 0; i < 200; i++ {
		loMean += lo.Predict(X[i])
		hiMean += hi.Predict(X[i])
	}
	if loMean >= hiMean {
		t.Fatalf("q=0.1 mean %v not below q=0.9 mean %v", loMean/200, hiMean/200)
	}
}

func TestGBMBeatsConstantBaseline(t *testing.T) {
	r := stats.NewRand(14)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0, x1 := r.Float64(), r.Float64()
		X[i] = []float64{x0, x1, r.Float64()}
		y[i] = 2*x0 - x1 + 0.1*r.NormFloat64()
	}
	cfg := DefaultGBMConfig()
	cfg.Quantile = 0.5
	m := FitGBM(X, y, cfg)
	pred := predictAllGBM(m, X)
	constPred := make([]float64, n)
	med := stats.Quantile(y, 0.5)
	for i := range constPred {
		constPred[i] = med
	}
	if PinballLoss(y, pred, 0.5) >= PinballLoss(y, constPred, 0.5)/2 {
		t.Fatal("GBM did not substantially beat constant median")
	}
}

func TestGBMPanicsOnBadQuantile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	X, y := synthRegression(10, 2, 15)
	cfg := DefaultGBMConfig()
	cfg.Quantile = 1.5
	FitGBM(X, y, cfg)
}

func TestGBMStages(t *testing.T) {
	X, y := synthRegression(100, 3, 16)
	cfg := DefaultGBMConfig()
	cfg.NTrees = 12
	if got := FitGBM(X, y, cfg).Stages(); got != 12 {
		t.Fatalf("stages = %d", got)
	}
}

func TestConfuseCounts(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []bool{true, false, true, false}
	c := Confuse(scores, truth, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %v", c)
	}
	if c.FPRate() != 0.25 || c.PositiveRate() != 0.5 || c.Accuracy() != 0.5 {
		t.Fatalf("rates wrong: %v %v %v", c.FPRate(), c.PositiveRate(), c.Accuracy())
	}
}

func TestConfuseMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Confuse([]float64{1}, []bool{true, false}, 0.5)
}

func TestSweepMonotone(t *testing.T) {
	scores := []float64{0.1, 0.4, 0.6, 0.6, 0.9}
	truth := []bool{false, false, true, false, true}
	pts := Sweep(scores, truth)
	// As threshold rises, positive rate must not increase.
	for i := 1; i < len(pts); i++ {
		if pts[i].PositiveRate > pts[i-1].PositiveRate {
			t.Fatalf("positive rate increased with threshold: %+v", pts)
		}
	}
	last := pts[len(pts)-1]
	if last.PositiveRate != 0 || last.FPRate != 0 {
		t.Fatalf("endpoint should label nothing: %+v", last)
	}
}

func TestPinballLossAsymmetry(t *testing.T) {
	// Under-prediction at q=0.9 costs 9x more than over-prediction.
	under := PinballLoss([]float64{1}, []float64{0}, 0.9)
	over := PinballLoss([]float64{0}, []float64{1}, 0.9)
	if math.Abs(under/over-9) > 1e-9 {
		t.Fatalf("asymmetry = %v, want 9", under/over)
	}
}

func TestOverpredictionRate(t *testing.T) {
	got := OverpredictionRate([]float64{1, 1, 1, 1}, []float64{0.5, 1.5, 2, 1})
	if got != 0.5 {
		t.Fatalf("OP = %v, want 0.5", got)
	}
}

func TestSplitIndicesPartition(t *testing.T) {
	train, test := SplitIndices(100, 0.7, stats.NewRand(1))
	if len(train) != 70 || len(test) != 30 {
		t.Fatalf("split sizes = %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
}

func TestSelect(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{10, 20, 30}
	sx, sy := Select(X, y, []int{2, 0})
	if sx[0][0] != 3 || sy[1] != 10 {
		t.Fatalf("Select wrong: %v %v", sx, sy)
	}
}

func predictAll(t *Tree, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = t.Predict(x)
	}
	return out
}

func predictAllForest(f *Forest, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = f.PredictProb(x)
	}
	return out
}

func predictAllGBM(m *GBM, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

func TestLogisticSeparatesLinearData(t *testing.T) {
	r := stats.NewRand(31)
	n := 600
	X := make([][]float64, n)
	y := make([]float64, n)
	truth := make([]bool, n)
	for i := range X {
		X[i] = []float64{r.Float64() * 100, r.Float64()} // mixed scales
		pos := X[i][0]/100+X[i][1] > 1
		truth[i] = pos
		if pos {
			y[i] = 1
		}
	}
	m := FitLogistic(X, y, DefaultLogisticConfig())
	scores := make([]float64, n)
	for i := range X {
		scores[i] = m.PredictProb(X[i])
	}
	if acc := Confuse(scores, truth, 0.5).Accuracy(); acc < 0.9 {
		t.Fatalf("logistic accuracy = %v on linearly separable data", acc)
	}
}

func TestLogisticProbabilitiesBounded(t *testing.T) {
	X, y, _ := synthClassification(300, 6, 32)
	m := FitLogistic(X, y, DefaultLogisticConfig())
	for i := 0; i < 100; i++ {
		p := m.PredictProb(X[i])
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v", p)
		}
	}
}

func TestLogisticDeterministic(t *testing.T) {
	X, y, _ := synthClassification(200, 5, 33)
	a := FitLogistic(X, y, DefaultLogisticConfig())
	b := FitLogistic(X, y, DefaultLogisticConfig())
	for i := 0; i < 50; i++ {
		if a.PredictProb(X[i]) != b.PredictProb(X[i]) {
			t.Fatal("same config, different models")
		}
	}
}

func TestLogisticPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitLogistic(nil, nil, DefaultLogisticConfig())
}

func TestLogisticWeightsCopy(t *testing.T) {
	X, y, _ := synthClassification(100, 4, 34)
	m := FitLogistic(X, y, DefaultLogisticConfig())
	w := m.Weights()
	w[0] = 999
	if m.Weights()[0] == 999 {
		t.Fatal("Weights aliases internals")
	}
}
