package ml

import (
	"fmt"
	"sort"

	"pond/internal/stats"
)

// GBMConfig parameterizes gradient-boosted quantile regression.
type GBMConfig struct {
	NTrees       int
	LearningRate float64
	Tree         TreeConfig
	// Quantile is the target quantile q in (0,1). Pond predicts a *low*
	// quantile of untouched memory (e.g. q = 0.05) so that the true
	// untouched amount exceeds the prediction for ~95% of VMs — the
	// overprediction-rate knob of §4.4.
	Quantile float64
	Seed     int64
}

// DefaultGBMConfig mirrors LightGBM-ish defaults at simulator scale.
func DefaultGBMConfig() GBMConfig {
	return GBMConfig{
		NTrees:       80,
		LearningRate: 0.1,
		Tree: TreeConfig{
			MaxDepth:    5,
			MinLeaf:     20,
			FeatureFrac: 0.8,
			Criterion:   Variance,
		},
		Quantile: 0.05,
		Seed:     1,
	}
}

// GBM is a fitted gradient-boosted quantile regressor.
type GBM struct {
	init     float64
	lr       float64
	quantile float64
	trees    []*Tree
}

// FitGBM trains the model with pinball (quantile) loss: each stage fits a
// tree to the loss gradient, then re-fits every leaf to the q-quantile of
// its residuals — the standard quantile-boosting leaf adjustment.
func FitGBM(X [][]float64, y []float64, cfg GBMConfig) *GBM {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d rows, %d targets", len(X), len(y)))
	}
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		panic(fmt.Sprintf("ml: quantile %v outside (0,1)", cfg.Quantile))
	}
	if cfg.NTrees <= 0 {
		cfg.NTrees = 80
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	root := stats.NewRand(cfg.Seed)

	m := &GBM{
		init:     stats.Quantile(y, cfg.Quantile),
		lr:       cfg.LearningRate,
		quantile: cfg.Quantile,
	}
	// Every stage trains on the same rows, so one presort of the feature
	// columns serves the whole ensemble.
	ps := NewPresort(X)
	scratch := &denseScratch{}
	treeCfg := cfg.Tree
	if treeCfg.MaxDepth <= 0 {
		treeCfg.MaxDepth = 6
	}
	if treeCfg.MinLeaf <= 0 {
		treeCfg.MinLeaf = 1
	}
	if treeCfg.FeatureFrac <= 0 || treeCfg.FeatureFrac > 1 {
		treeCfg.FeatureFrac = 1
	}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.init
	}
	grad := make([]float64, len(y))
	leafOf := make([]int, len(y))
	scratch.leafOf = leafOf
	for stage := 0; stage < cfg.NTrees; stage++ {
		r := root.Fork(int64(stage + 1))
		// Pinball-loss gradient: q when under-predicting, q-1 when
		// over-predicting.
		for i := range y {
			if y[i] > pred[i] {
				grad[i] = cfg.Quantile
			} else {
				grad[i] = cfg.Quantile - 1
			}
		}
		tree := fitPresorted(X, grad, treeCfg, r, ps, scratch)

		// Leaf adjustment: the pinball-optimal constant per leaf is the
		// q-quantile of the residuals y - pred landing in that leaf. The
		// fit recorded each row's leaf id as its leaves were made, so no
		// per-row tree traversal is needed here.
		residuals := make([][]float64, tree.Leaves())
		for i := range y {
			residuals[leafOf[i]] = append(residuals[leafOf[i]], y[i]-pred[i])
		}
		for leaf, res := range residuals {
			if len(res) == 0 {
				tree.SetLeafValue(leaf, 0)
				continue
			}
			sort.Float64s(res)
			tree.SetLeafValue(leaf, stats.QuantileSorted(res, cfg.Quantile))
		}
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.LeafValue(leafOf[i])
		}
		m.trees = append(m.trees, tree)
	}
	return m
}

// Predict returns the fitted conditional quantile for one row.
func (m *GBM) Predict(x []float64) float64 {
	out := m.init
	for _, t := range m.trees {
		out += m.lr * t.Predict(x)
	}
	return out
}

// Quantile returns the target quantile the model was fit for.
func (m *GBM) Quantile() float64 { return m.quantile }

// Stages returns the number of boosting stages.
func (m *GBM) Stages() int { return len(m.trees) }
