package ml

import (
	"fmt"
	"sort"

	"pond/internal/stats"
)

// Confusion summarizes binary classification outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Total returns the number of classified samples.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// FPRate returns false positives over all samples. This matches the
// paper's Figure 17 definition: the share of *all* workloads incorrectly
// labeled latency-insensitive, not the share of positives.
func (c Confusion) FPRate() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.Total())
}

// PositiveRate returns the share of samples labeled positive.
func (c Confusion) PositiveRate() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.FP) / float64(c.Total())
}

// Accuracy returns the share of correct labels.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d", c.TP, c.FP, c.TN, c.FN)
}

// Confuse classifies scores against a threshold and compares with truth
// (true = positive class).
func Confuse(scores []float64, truth []bool, threshold float64) Confusion {
	if len(scores) != len(truth) {
		panic("ml: scores and truth length mismatch")
	}
	var c Confusion
	for i, s := range scores {
		pred := s >= threshold
		switch {
		case pred && truth[i]:
			c.TP++
		case pred && !truth[i]:
			c.FP++
		case !pred && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// OperatingPoint is one threshold's tradeoff: how many samples get the
// positive label versus how many of those are wrong (as a share of all).
type OperatingPoint struct {
	Threshold    float64
	PositiveRate float64
	FPRate       float64
}

// Sweep evaluates the positive-rate/FP-rate tradeoff over thresholds,
// producing the curve of Figure 17. Thresholds are taken from the score
// distribution so every achievable operating point appears once.
func Sweep(scores []float64, truth []bool) []OperatingPoint {
	uniq := map[float64]bool{}
	for _, s := range scores {
		uniq[s] = true
	}
	thresholds := make([]float64, 0, len(uniq)+1)
	for s := range uniq {
		thresholds = append(thresholds, s)
	}
	thresholds = append(thresholds, 2) // "label nothing" endpoint
	sort.Float64s(thresholds)

	out := make([]OperatingPoint, 0, len(thresholds))
	for _, th := range thresholds {
		c := Confuse(scores, truth, th)
		out = append(out, OperatingPoint{
			Threshold:    th,
			PositiveRate: c.PositiveRate(),
			FPRate:       c.FPRate(),
		})
	}
	return out
}

// PinballLoss returns the mean quantile loss of predictions at quantile q.
func PinballLoss(yTrue, yPred []float64, q float64) float64 {
	if len(yTrue) != len(yPred) {
		panic("ml: length mismatch")
	}
	var sum float64
	for i := range yTrue {
		diff := yTrue[i] - yPred[i]
		if diff >= 0 {
			sum += q * diff
		} else {
			sum += (q - 1) * diff
		}
	}
	return sum / float64(len(yTrue))
}

// OverpredictionRate returns the share of samples where the prediction
// exceeds the truth — for untouched memory, the VMs that would spill into
// their zNUMA node (§4.4).
func OverpredictionRate(yTrue, yPred []float64) float64 {
	if len(yTrue) != len(yPred) {
		panic("ml: length mismatch")
	}
	n := 0
	for i := range yTrue {
		if yPred[i] > yTrue[i] {
			n++
		}
	}
	return float64(n) / float64(len(yTrue))
}

// MAE returns mean absolute error.
func MAE(yTrue, yPred []float64) float64 {
	if len(yTrue) != len(yPred) {
		panic("ml: length mismatch")
	}
	var sum float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(yTrue))
}

// SplitIndices returns a random train/test index split with the given
// train fraction.
func SplitIndices(n int, trainFrac float64, r *stats.Rand) (train, test []int) {
	perm := r.Perm(n)
	cut := int(trainFrac * float64(n))
	return perm[:cut], perm[cut:]
}

// Select gathers the rows of X (and y) at the given indices.
func Select(X [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	sx := make([][]float64, len(idx))
	sy := make([]float64, len(idx))
	for k, i := range idx {
		sx[k] = X[i]
		sy[k] = y[i]
	}
	return sx, sy
}
