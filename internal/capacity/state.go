package capacity

// DemandState is the serializable form of a Demand distribution.
type DemandState struct {
	SecAt    []float64 `json:"sec_at,omitempty"`
	PeakGB   int       `json:"peak_gb,omitempty"`
	TotalSec float64   `json:"total_sec,omitempty"`
}

// State captures the distribution for serialization.
func (d *Demand) State() DemandState {
	return DemandState{
		SecAt:    append([]float64(nil), d.secAt...),
		PeakGB:   d.peakGB,
		TotalSec: d.totalSec,
	}
}

// SetState restores a distribution captured by State.
func (d *Demand) SetState(s DemandState) {
	d.secAt = append(d.secAt[:0], s.SecAt...)
	d.peakGB = s.PeakGB
	d.totalSec = s.TotalSec
}
