// Package capacity closes Pond's provisioning loop: from observed fleet
// telemetry to DRAM savings. The paper's headline result (§7) is that a
// pool sized against the cluster's *observed* demand — untouched memory,
// stranding, and the time-multiplexed pool draw — needs 7-9% less DRAM
// than static per-host provisioning; Aquifer-style production studies
// put 25-35% of fleet memory in the strandable band. This package
// supplies both halves of the loop:
//
//   - an offline planner (PlanWaterfall) that turns per-cell pool-demand
//     distributions into a DRAM-savings waterfall across candidate pool
//     sizes and picks the minimal configuration meeting a QoS target;
//   - an online controller (Controller) that re-plans each cell's pool
//     at fixed barriers and emits grow/shrink targets the Pool Manager
//     applies mid-run — the elastic-pool control plane of the fleet
//     simulator.
//
// Everything is plain arithmetic over deterministic inputs: the same
// telemetry always yields the same plan, which is what lets the fleet's
// event log stay byte-identical across worker counts.
package capacity

// Demand is a time-weighted distribution of pool memory in use, bucketed
// at 1 GB granularity: secAt[g] is the simulated time spent with exactly
// g GB drawn from the pool. It is the planner's core telemetry input —
// peak and percentile pool demand fall out of it directly.
type Demand struct {
	secAt    []float64
	peakGB   int
	totalSec float64
}

// NewDemand returns an empty distribution.
func NewDemand() *Demand { return &Demand{} }

// Observe accumulates dt seconds at the given pool draw. Fractional GB
// round to the nearest bucket (pool grants are whole slices, so real
// draws are already integral).
func (d *Demand) Observe(dt, gb float64) {
	if dt <= 0 {
		return
	}
	g := int(gb + 0.5)
	if g < 0 {
		g = 0
	}
	for len(d.secAt) <= g {
		d.secAt = append(d.secAt, 0)
	}
	d.secAt[g] += dt
	d.totalSec += dt
	if g > d.peakGB {
		d.peakGB = g
	}
}

// ObserveSamples folds equally-weighted demand samples (e.g. the hourly
// pool-demand series of internal/sim's trace replay) into the
// distribution, one unit of time per sample.
func (d *Demand) ObserveSamples(samples []float64) {
	for _, s := range samples {
		d.Observe(1, s)
	}
}

// PeakGB returns the maximum observed pool draw.
func (d *Demand) PeakGB() int { return d.peakGB }

// TotalSec returns the observed time mass.
func (d *Demand) TotalSec() float64 { return d.totalSec }

// QuantileGB returns the smallest capacity K with demand <= K for at
// least fraction q of the observed time (the provisioning quantile of
// internal/sim, here over the online event stream). An empty
// distribution returns 0.
func (d *Demand) QuantileGB(q float64) int {
	if d.totalSec <= 0 {
		return 0
	}
	if q >= 1 {
		return d.peakGB
	}
	need := q * d.totalSec
	cum := 0.0
	for g, sec := range d.secAt {
		cum += sec
		if cum >= need {
			return g
		}
	}
	return d.peakGB
}

// OverflowFrac returns the fraction of observed time demand exceeded gb
// — the QoS-risk estimate for a candidate pool size: time above the pool
// is time the scheduler would have fallen back to local allocation or
// rejected.
func (d *Demand) OverflowFrac(gb int) float64 {
	if d.totalSec <= 0 {
		return 0
	}
	over := 0.0
	for g := gb + 1; g < len(d.secAt); g++ {
		over += d.secAt[g]
	}
	return over / d.totalSec
}

// Merge folds another distribution into this one.
func (d *Demand) Merge(o *Demand) {
	if o == nil {
		return
	}
	for g, sec := range o.secAt {
		if sec > 0 {
			d.Observe(sec, float64(g))
		}
	}
}

// Reset clears the distribution (the controller's per-epoch window).
func (d *Demand) Reset() {
	d.secAt = d.secAt[:0]
	d.peakGB = 0
	d.totalSec = 0
}
