package capacity

import (
	"testing"

	"pond/internal/cluster"
	"pond/internal/sim"
	"pond/internal/stats"
)

// TestPlanWaterfallFromSimTraceDemand is the offline bridge the planner
// documents: a trace replay's per-group pool-demand profile
// (sim.PoolDemand) folds into Demand via ObserveSamples and drives the
// savings waterfall — the §7 provisioning argument without the online
// fleet loop.
func TestPlanWaterfallFromSimTraceDemand(t *testing.T) {
	gen := cluster.DefaultGenConfig()
	gen.Days = 2
	gen.ServersPerCluster = 8
	tr := cluster.GenerateCluster(gen, 0, stats.NewRand(1))
	s := sim.BuildSchedule(&tr)

	groups, poolShare := sim.PoolDemand(s, 16, sim.UniformPlan(len(tr.VMs), 0.3))
	if len(groups) == 0 {
		t.Fatal("trace replay produced no pool groups")
	}
	if !(poolShare > 0 && poolShare <= 0.3+1e-9) {
		t.Fatalf("pool share %g outside (0, 0.3]", poolShare)
	}

	demands := make([]*Demand, 0, len(groups))
	static := 0
	for _, g := range groups {
		d := NewDemand()
		d.ObserveSamples(g.Samples)
		demands = append(demands, d)
		if int(g.PeakGB) > static {
			static = int(g.PeakGB)
		}
		if g.PeakGB > 0 && d.PeakGB() == 0 && len(g.Samples) > 0 {
			// A sampled peak below the true peak is fine (samples are
			// hourly), but a non-empty profile must not read as empty.
			nonZero := false
			for _, v := range g.Samples {
				if v > 0 {
					nonZero = true
					break
				}
			}
			if nonZero {
				t.Fatal("ObserveSamples dropped a non-zero demand profile")
			}
		}
	}
	// Provision the waterfall against double the worst observed peak —
	// the oversized-SKU baseline right-sizing shrinks from.
	static *= 2
	if static == 0 {
		t.Fatal("degenerate trace: no pool demand at all")
	}
	plan := PlanWaterfall("flat", static, demands, PlanConfig{TargetQoS: 0.01})
	if plan.ChosenGB <= 0 || plan.ChosenGB > static {
		t.Fatalf("chosen %d GB outside (0, %d]", plan.ChosenGB, static)
	}
	if plan.SavedGBPerCell <= 0 {
		t.Fatalf("right-sizing a 2x-peak baseline saved nothing: %+v", plan)
	}
	// The chosen size must actually meet the target on the folded
	// demand: every group's overflow at ChosenGB within TargetQoS.
	for i, d := range demands {
		if f := d.OverflowFrac(plan.ChosenGB); f > 0.01 {
			t.Fatalf("group %d overflows the chosen pool %.2f%% of the time", i, 100*f)
		}
	}
}
