package capacity

import (
	"fmt"
	"strings"
)

// PlanConfig tunes the offline planner. Zero fields take defaults.
type PlanConfig struct {
	// TargetQoS is the tolerated fraction of time pool demand may exceed
	// the provisioned pool (demand above it falls back to local
	// allocation, §4.3). Default 0.01.
	TargetQoS float64
	// SliceGB is the provisioning granularity (the EMC slice size).
	// Default 1.
	SliceGB int
	// MinPoolGB is the smallest admissible pool (e.g. one slice per EMC
	// so no device goes empty). Default SliceGB.
	MinPoolGB int
	// Steps is the number of waterfall rows between the static pool and
	// MinPoolGB. Default 8.
	Steps int
}

func (c PlanConfig) withDefaults() PlanConfig {
	if c.TargetQoS <= 0 {
		c.TargetQoS = 0.01
	}
	if c.SliceGB <= 0 {
		c.SliceGB = 1
	}
	if c.MinPoolGB <= 0 {
		c.MinPoolGB = c.SliceGB
	}
	if c.Steps <= 0 {
		c.Steps = 8
	}
	return c
}

// Candidate is one row of the DRAM-savings waterfall: a candidate
// per-cell pool size with its QoS risk and savings versus the static
// provisioning.
type Candidate struct {
	PoolGB int
	// OverflowFrac is the worst cell's fraction of time demand exceeded
	// this pool size (the conservative QoS-risk estimate).
	OverflowFrac float64
	// SavedGB is the per-cell DRAM saved versus the static pool.
	SavedGB int
	// SavedPct is SavedGB relative to the static pool.
	SavedPct float64
	// Meets reports whether OverflowFrac is within the QoS target.
	Meets bool
}

// Plan is the planner's outcome for one topology: the savings waterfall
// and the chosen minimal configuration.
type Plan struct {
	Topology     string
	Cells        int
	StaticPoolGB int
	TargetQoS    float64
	// Candidates is the waterfall, descending pool size.
	Candidates []Candidate
	// ChosenGB is the minimal per-cell pool meeting the target across
	// every cell, aligned up to the slice granularity and clamped to
	// MinPoolGB.
	ChosenGB int
	// SavedGBPerCell and FleetSavedGB are the DRAM savings of the chosen
	// configuration (negative if demand outgrew the static pool).
	SavedGBPerCell int
	FleetSavedGB   int
}

// PlanWaterfall computes the DRAM-savings waterfall for one topology
// from per-cell pool-demand distributions observed at the static pool
// size. Candidate sizes step down from the static pool to the floor;
// each row's QoS risk is the worst cell's overflow fraction, so a
// configuration "meets" the target only if every cell does. The chosen
// size is exact — the worst cell's demand quantile at 1-TargetQoS plus
// one slice of headroom — not merely the smallest passing row.
func PlanWaterfall(topology string, staticPoolGB int, cells []*Demand, cfg PlanConfig) Plan {
	cfg = cfg.withDefaults()
	p := Plan{
		Topology:     topology,
		Cells:        len(cells),
		StaticPoolGB: staticPoolGB,
		TargetQoS:    cfg.TargetQoS,
	}

	// Exact minimal size: every cell's 1-TargetQoS demand quantile must
	// fit, plus one slice so the paper's never-wait buffer survives.
	required := 0
	for _, d := range cells {
		if q := d.QuantileGB(1 - cfg.TargetQoS); q > required {
			required = q
		}
	}
	required += cfg.SliceGB
	p.ChosenGB = alignUp(required, cfg.SliceGB)
	if p.ChosenGB < cfg.MinPoolGB {
		p.ChosenGB = cfg.MinPoolGB
	}
	p.SavedGBPerCell = staticPoolGB - p.ChosenGB
	p.FleetSavedGB = p.SavedGBPerCell * len(cells)

	// Waterfall rows: static down to the floor in Steps even steps, the
	// chosen size spliced in so the table always shows the selection.
	step := alignUp((staticPoolGB-cfg.MinPoolGB+cfg.Steps-1)/cfg.Steps, cfg.SliceGB)
	if step < cfg.SliceGB {
		step = cfg.SliceGB
	}
	sizes := []int{}
	for gb := staticPoolGB; gb > cfg.MinPoolGB; gb -= step {
		sizes = append(sizes, gb)
	}
	sizes = append(sizes, cfg.MinPoolGB)
	if p.ChosenGB <= staticPoolGB {
		sizes = insertSorted(sizes, p.ChosenGB)
	}
	for _, gb := range sizes {
		worst := 0.0
		for _, d := range cells {
			if f := d.OverflowFrac(gb); f > worst {
				worst = f
			}
		}
		p.Candidates = append(p.Candidates, Candidate{
			PoolGB:       gb,
			OverflowFrac: worst,
			SavedGB:      staticPoolGB - gb,
			SavedPct:     100 * float64(staticPoolGB-gb) / float64(max(staticPoolGB, 1)),
			Meets:        worst <= cfg.TargetQoS,
		})
	}
	return p
}

// Table renders the Pond-style savings table: one row per candidate,
// the chosen configuration marked.
func (p Plan) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity plan: topology=%s cells=%d static-pool=%dGB/cell target-qos=%.2f%%\n",
		p.Topology, p.Cells, p.StaticPoolGB, 100*p.TargetQoS)
	fmt.Fprintf(&b, "  %8s %10s %10s %8s %6s\n", "pool-GB", "overflow%", "saved-GB", "saved%", "meets")
	for _, c := range p.Candidates {
		mark := " "
		if c.PoolGB == p.ChosenGB {
			mark = "*"
		}
		meets := "no"
		if c.Meets {
			meets = "yes"
		}
		fmt.Fprintf(&b, "  %7d%s %10.2f %10d %7.1f%% %6s\n",
			c.PoolGB, mark, 100*c.OverflowFrac, c.SavedGB, c.SavedPct, meets)
	}
	fmt.Fprintf(&b, "  chosen: %dGB/cell -> fleet DRAM saved %dGB (%.1f%% of the pool)",
		p.ChosenGB, p.FleetSavedGB, 100*float64(p.SavedGBPerCell)/float64(max(p.StaticPoolGB, 1)))
	return b.String()
}

// alignUp rounds n up to a multiple of step.
func alignUp(n, step int) int {
	if step <= 1 {
		return n
	}
	return (n + step - 1) / step * step
}

// insertSorted splices v into a descending size list, deduplicating.
func insertSorted(sizes []int, v int) []int {
	for i, s := range sizes {
		if s == v {
			return sizes
		}
		if s < v {
			return append(sizes[:i], append([]int{v}, sizes[i:]...)...)
		}
	}
	return append(sizes, v)
}
