package capacity

import (
	"fmt"

	"pond/internal/emc"
	"pond/internal/pool"
	"pond/internal/stats"
)

// Summary tallies a synthetic planning run.
type Summary struct {
	Plans, Grows, Shrinks int
	GrownGB, ShrunkGB     int
	FinalPoolGB           int
}

// SyntheticPlan drives the elastic-capacity hot path — demand
// accumulation, controller targeting, and Pool Manager grow/shrink
// against real EMC devices — through barriers planning rounds per cell,
// with samplesPerBarrier demand observations between rounds following a
// deterministic wave (so every round actually resizes). BenchmarkPlanLoop
// and the CI benchmark gate time exactly this; the work is fixed for a
// given (cells, barriers, samplesPerBarrier, seed).
func SyntheticPlan(cells, barriers, samplesPerBarrier int, seed int64) Summary {
	const (
		emcsPerCell = 4
		perEMCGB    = 32
	)
	var sum Summary
	for c := 0; c < cells; c++ {
		r := stats.NewRand(stats.ShardSeed(seed, c))
		devs := make([]*emc.Device, emcsPerCell)
		for i := range devs {
			devs[i] = emc.NewDevice(fmt.Sprintf("p%d-emc%d", c, i), perEMCGB, 4)
		}
		m := pool.NewManager(devs, r.Fork(1))
		ctrl := NewController(ControllerConfig{SliceGB: emc.SliceGB, MinPoolGB: emcsPerCell})
		static := m.PoolGB()
		epoch := NewDemand()
		rs := r.Fork(2)
		now := 0.0
		for b := 1; b <= barriers; b++ {
			// Demand wave: alternating low/high epochs with jitter, so the
			// controller shrinks and grows on every other round.
			level := float64(static) * 0.15
			if b%2 == 0 {
				level = float64(static) * 0.6
			}
			for i := 0; i < samplesPerBarrier; i++ {
				now += 1
				epoch.Observe(1, level+rs.Bounded(-4, 4))
			}
			cur := m.PoolGB()
			target := ctrl.Target(epoch, m.AssignedGB(now), 0, 0, cur)
			switch {
			case target > cur:
				sum.Grows++
				sum.GrownGB += m.Grow(target - cur)
			case target < cur:
				sum.Shrinks++
				sum.ShrunkGB += m.Shrink(cur-target, now)
			}
			sum.Plans++
			epoch.Reset()
		}
		sum.FinalPoolGB += m.PoolGB()
	}
	return sum
}
