package capacity

import (
	"strings"
	"testing"
)

func TestDemandQuantileAndOverflow(t *testing.T) {
	d := NewDemand()
	// 90 s at 10 GB, 9 s at 50 GB, 1 s at 100 GB.
	d.Observe(90, 10)
	d.Observe(9, 50)
	d.Observe(1, 100)

	if got := d.PeakGB(); got != 100 {
		t.Fatalf("peak = %d, want 100", got)
	}
	if got := d.TotalSec(); got != 100 {
		t.Fatalf("total = %g, want 100", got)
	}
	if got := d.QuantileGB(0.90); got != 10 {
		t.Fatalf("q90 = %d, want 10", got)
	}
	if got := d.QuantileGB(0.99); got != 50 {
		t.Fatalf("q99 = %d, want 50", got)
	}
	if got := d.QuantileGB(1); got != 100 {
		t.Fatalf("q100 = %d, want 100", got)
	}
	if got := d.OverflowFrac(10); got != 0.10 {
		t.Fatalf("overflow(10) = %g, want 0.10", got)
	}
	if got := d.OverflowFrac(50); got != 0.01 {
		t.Fatalf("overflow(50) = %g, want 0.01", got)
	}
	if got := d.OverflowFrac(100); got != 0 {
		t.Fatalf("overflow(100) = %g, want 0", got)
	}
}

func TestDemandEmptyAndReset(t *testing.T) {
	d := NewDemand()
	if d.QuantileGB(0.99) != 0 || d.OverflowFrac(0) != 0 || d.PeakGB() != 0 {
		t.Fatal("empty distribution must read as zero")
	}
	d.Observe(10, 42)
	d.Reset()
	if d.TotalSec() != 0 || d.PeakGB() != 0 || d.QuantileGB(0.5) != 0 {
		t.Fatal("Reset did not clear the distribution")
	}
}

func TestDemandMerge(t *testing.T) {
	a, b := NewDemand(), NewDemand()
	a.Observe(50, 10)
	b.Observe(50, 30)
	a.Merge(b)
	if a.TotalSec() != 100 || a.PeakGB() != 30 {
		t.Fatalf("merge: total=%g peak=%d", a.TotalSec(), a.PeakGB())
	}
	if got := a.QuantileGB(0.5); got != 10 {
		t.Fatalf("merged q50 = %d, want 10", got)
	}
}

func TestControllerShrinksIdleAndGrowsOnFallbacks(t *testing.T) {
	ctrl := NewController(ControllerConfig{TargetQoS: 0.01, SliceGB: 1, MinPoolGB: 4})

	// Idle epoch at a fat pool: shrink toward quantile + headroom.
	epoch := NewDemand()
	epoch.Observe(100, 16)
	target := ctrl.Target(epoch, 0, 0, 0, 512)
	if target >= 512 {
		t.Fatalf("idle epoch did not shrink: target %d", target)
	}
	if target < 16 {
		t.Fatalf("target %d below observed demand 16", target)
	}

	// Fallbacks force growth beyond the current (censored) capacity.
	grown := ctrl.Target(epoch, 0, 3, 0, 32)
	if grown <= 32 {
		t.Fatalf("fallbacks did not grow the pool: target %d", grown)
	}

	// A known attempted draw jumps the pool straight past it instead of
	// crawling up by the multiplicative backstop.
	jumped := ctrl.Target(epoch, 0, 1, 90, 32)
	if jumped <= 90 {
		t.Fatalf("attempted draw of 90 did not lift the target past it: %d", jumped)
	}

	// The assigned floor wins over the demand read.
	floored := ctrl.Target(epoch, 200, 0, 0, 512)
	if floored < 200 {
		t.Fatalf("target %d below assigned floor 200", floored)
	}

	// Empty epochs keep the current size.
	if got := ctrl.Target(NewDemand(), 0, 0, 0, 64); got != 64 {
		t.Fatalf("empty epoch changed the target to %d", got)
	}

	// MinPoolGB is respected even when demand reads zero.
	quiet := NewDemand()
	quiet.Observe(100, 0)
	if got := ctrl.Target(quiet, 0, 0, 0, 64); got < 4 {
		t.Fatalf("target %d fell below the 4 GB floor", got)
	}
}

func TestPlanWaterfallChoosesMinimalMeetingConfig(t *testing.T) {
	// Two cells: one peaks at 40 GB briefly, one stays at 20 GB.
	hot, cold := NewDemand(), NewDemand()
	hot.Observe(990, 20)
	hot.Observe(10, 40) // 1% of time at 40
	cold.Observe(1000, 20)

	p := PlanWaterfall("flat", 128, []*Demand{hot, cold}, PlanConfig{TargetQoS: 0.02, SliceGB: 1, MinPoolGB: 4})
	// q98 of the hot cell is 20 GB; chosen = 20 + 1 slice headroom.
	if p.ChosenGB != 21 {
		t.Fatalf("chosen = %d, want 21", p.ChosenGB)
	}
	if p.SavedGBPerCell != 128-21 || p.FleetSavedGB != 2*(128-21) {
		t.Fatalf("savings: per-cell %d fleet %d", p.SavedGBPerCell, p.FleetSavedGB)
	}
	// The waterfall is descending, includes the chosen size, and its
	// overflow column is monotonically non-decreasing as pools shrink.
	sawChosen := false
	for i, c := range p.Candidates {
		if c.PoolGB == p.ChosenGB {
			sawChosen = true
			if !c.Meets {
				t.Fatalf("chosen candidate %d marked as not meeting the target", c.PoolGB)
			}
		}
		if i > 0 {
			if c.PoolGB >= p.Candidates[i-1].PoolGB {
				t.Fatalf("waterfall not descending at row %d", i)
			}
			if c.OverflowFrac < p.Candidates[i-1].OverflowFrac {
				t.Fatalf("overflow not monotone at row %d", i)
			}
		}
	}
	if !sawChosen {
		t.Fatalf("waterfall omits the chosen size %d: %+v", p.ChosenGB, p.Candidates)
	}
	if !strings.Contains(p.Table(), "chosen: 21GB/cell") {
		t.Fatalf("table missing the chosen line:\n%s", p.Table())
	}
}

func TestPlanWaterfallDemandAboveStatic(t *testing.T) {
	// Demand above the static pool: savings go negative, never panic.
	hot := NewDemand()
	hot.Observe(1000, 96)
	p := PlanWaterfall("flat", 64, []*Demand{hot}, PlanConfig{TargetQoS: 0.01, SliceGB: 1})
	if p.ChosenGB <= 96 {
		t.Fatalf("chosen %d does not cover demand 96", p.ChosenGB)
	}
	if p.SavedGBPerCell >= 0 {
		t.Fatalf("expected negative savings, got %d", p.SavedGBPerCell)
	}
}

func TestPlanEventString(t *testing.T) {
	e := PlanEvent{Cell: 2, AtSec: 100, PoolGB: 64, TargetGB: 24, NewPoolGB: 24,
		PeakGB: 18, QGB: 16, ShrunkGB: 40}
	want := "plan pool=64 peak=18 q=16 target=24 grow=0 shrink=40 new-pool=24 fallbacks=0"
	if e.String() != want {
		t.Fatalf("String() = %q, want %q", e.String(), want)
	}
	e.Fallbacks, e.AttemptedGB = 2, 30
	if got := e.String(); !strings.Contains(got, "fallbacks=2 attempted=30") {
		t.Fatalf("String() = %q, want the attempted draw rendered", got)
	}
}

func TestSyntheticPlanResizes(t *testing.T) {
	s := SyntheticPlan(2, 8, 16, 1)
	if s.Plans != 16 {
		t.Fatalf("plans = %d, want 16", s.Plans)
	}
	if s.Grows == 0 || s.Shrinks == 0 {
		t.Fatalf("synthetic wave never exercised both directions: %+v", s)
	}
	if s.FinalPoolGB <= 0 {
		t.Fatalf("final pool %d", s.FinalPoolGB)
	}
	// Deterministic for a fixed seed.
	if again := SyntheticPlan(2, 8, 16, 1); again != s {
		t.Fatalf("synthetic plan not deterministic: %+v vs %+v", again, s)
	}
}

func BenchmarkPlanLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := SyntheticPlan(4, 16, 32, 1); s.Plans == 0 {
			b.Fatal("synthetic plan did nothing")
		}
	}
}
