package capacity

import "fmt"

// ControllerConfig tunes the online elastic-pool controller. Zero fields
// take defaults.
type ControllerConfig struct {
	// TargetQoS is the tolerated fraction of epoch time pool demand may
	// exceed capacity. Default 0.01.
	TargetQoS float64
	// SliceGB is the resize granularity. Default 1.
	SliceGB int
	// MinPoolGB is the floor the controller never shrinks below (keep at
	// least one slice per EMC so no topology pod goes dark). Default
	// SliceGB.
	MinPoolGB int
	// HeadroomFrac is the slack provisioned above the demand quantile —
	// the paper's buffer of unallocated pool memory that keeps VM starts
	// from ever waiting on offlining (Finding 10). Default 0.25.
	HeadroomFrac float64
	// GrowBoostFrac is the multiplicative growth applied when the pool
	// ran dry during the epoch (scheduler fallbacks observed): measured
	// demand is censored at capacity, so the controller over-grows and
	// lets the next epoch's telemetry settle the size. Default 0.5.
	GrowBoostFrac float64
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.TargetQoS <= 0 {
		c.TargetQoS = 0.01
	}
	if c.SliceGB <= 0 {
		c.SliceGB = 1
	}
	if c.MinPoolGB <= 0 {
		c.MinPoolGB = c.SliceGB
	}
	if c.HeadroomFrac <= 0 {
		c.HeadroomFrac = 0.25
	}
	if c.GrowBoostFrac <= 0 {
		c.GrowBoostFrac = 0.5
	}
	return c
}

// Controller is the online half of the capacity loop: at every planning
// barrier it turns one epoch of demand telemetry into a pool-size target
// the Pool Manager grows or shrinks toward. It is pure arithmetic —
// deterministic for identical telemetry — and per cell: each pool group
// plans against its own demand.
type Controller struct {
	cfg ControllerConfig
}

// NewController builds a controller with defaults applied.
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Target computes the next-epoch pool size from the last epoch's demand
// distribution. assignedGB is capacity currently held by hosts or
// draining (the shrink floor); fallbacks counts pool-exhaustion
// downgrades during the epoch and attemptedGB the largest pool draw that
// *wanted* to happen (in-use plus the failed request) — the censoring
// signals that demand exceeded what the pool could show; curGB is the
// current pool size. An epoch with no time mass keeps the current size
// (nothing was learned).
func (c *Controller) Target(epoch *Demand, assignedGB, fallbacks, attemptedGB, curGB int) int {
	if epoch == nil || epoch.TotalSec() <= 0 {
		return curGB
	}
	q := epoch.QuantileGB(1 - c.cfg.TargetQoS)
	head := int(float64(q)*c.cfg.HeadroomFrac + 0.999999)
	if head < c.cfg.SliceGB {
		head = c.cfg.SliceGB
	}
	target := q + head
	if fallbacks > 0 {
		// The pool ran dry: the epoch's demand reads are capped at
		// capacity. Jump to the observed attempted draw (plus headroom)
		// when known; the multiplicative boost is the backstop, so the
		// pool re-measures from above either way.
		if censored := attemptedGB + head; censored > target {
			target = censored
		}
		if boosted := curGB + int(float64(curGB)*c.cfg.GrowBoostFrac+0.999999); boosted > target {
			target = boosted
		}
	}
	if target < assignedGB {
		target = assignedGB
	}
	if target < c.cfg.MinPoolGB {
		target = c.cfg.MinPoolGB
	}
	return alignUp(target, c.cfg.SliceGB)
}

// PlanEvent records one planning barrier's decision for a cell — the
// elastic-pool counterpart of the mlops lifecycle events, rendered into
// the deterministic event log.
type PlanEvent struct {
	Cell  int     `json:"cell"`
	AtSec float64 `json:"at_sec"`
	// PoolGB is the capacity before the resize, NewPoolGB after it (the
	// shrink path can fall short of TargetGB when capacity is assigned
	// or draining).
	PoolGB, TargetGB, NewPoolGB int
	// PeakGB and QGB summarize the epoch's demand (peak and the
	// provisioning quantile).
	PeakGB, QGB int
	// Fallbacks counts the epoch's pool-exhaustion downgrades;
	// AttemptedGB is the largest pool draw that wanted to happen during
	// one (in-use plus the failed request).
	Fallbacks   int
	AttemptedGB int
	// GrewGB and ShrunkGB are the applied resize.
	GrewGB, ShrunkGB int
}

// String renders the event as one deterministic log line (no time or
// cell prefix; the fleet loop adds its own).
func (e PlanEvent) String() string {
	s := fmt.Sprintf("plan pool=%d peak=%d q=%d target=%d grow=%d shrink=%d new-pool=%d fallbacks=%d",
		e.PoolGB, e.PeakGB, e.QGB, e.TargetGB, e.GrewGB, e.ShrunkGB, e.NewPoolGB, e.Fallbacks)
	if e.Fallbacks > 0 {
		s += fmt.Sprintf(" attempted=%d", e.AttemptedGB)
	}
	return s
}
