package predict

import (
	"sort"

	"pond/internal/ml"
)

// CacheEntryState is one cached prediction, keyed by the serving cache
// key (a (customer, workload) or (customer, features) hash).
type CacheEntryState struct {
	Key        int64   `json:"key"`
	Generation int     `json:"gen"`
	Value      float64 `json:"value"`
}

// ServerState is the serializable state of a serving Server: the pinned
// generation, the request accounting, and both prediction caches.
// Models are installed separately (via Pin, from the mlops/fleetpipeline
// model snapshots). The caches are semantic state, not a recomputable
// memo: a cache key identifies a (customer, workload) pair while the
// inputs (sampled counters, evolving history features) change between
// requests, so within a generation the server intentionally serves the
// score computed at the pair's FIRST request. Restoring the caches
// empty would re-score later arrivals against their own fresher inputs
// and diverge from the uninterrupted run.
type ServerState struct {
	Generation       int               `json:"generation"`
	Requests         int64             `json:"requests,omitempty"`
	CacheHits        int64             `json:"cache_hits,omitempty"`
	ServedCostMicros float64           `json:"served_cost_micros,omitempty"`
	SensCache        []CacheEntryState `json:"sens_cache,omitempty"`
	UMCache          []CacheEntryState `json:"um_cache,omitempty"`
}

// cacheState flattens a prediction cache into a key-sorted slice so the
// encoding is stable across map iteration orders.
func cacheState(m map[int64]cachedScore) []CacheEntryState {
	if len(m) == 0 {
		return nil
	}
	out := make([]CacheEntryState, 0, len(m))
	for k, c := range m {
		out = append(out, CacheEntryState{Key: k, Generation: c.generation, Value: c.value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func restoreCache(entries []CacheEntryState) map[int64]cachedScore {
	m := make(map[int64]cachedScore, len(entries))
	for _, e := range entries {
		m[e.Key] = cachedScore{generation: e.Generation, value: e.Value}
	}
	return m
}

// State captures the server's counters and caches for serialization.
func (s *Server) State() ServerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerState{
		Generation:       s.generation,
		Requests:         s.requests,
		CacheHits:        s.cacheHits,
		ServedCostMicros: s.servedCost,
		SensCache:        cacheState(s.sensCache),
		UMCache:          cacheState(s.umCache),
	}
}

// SetState restores the state captured by State. Call it after the
// models have been re-installed with Pin. Restoring the full cache
// contents also preserves the map sizes, so the wholesale eviction at
// maxCacheEntries keeps firing at the same requests it would have in
// the uninterrupted run.
func (s *Server) SetState(st ServerState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.generation = st.Generation
	s.requests = st.Requests
	s.cacheHits = st.CacheHits
	s.servedCost = st.ServedCostMicros
	s.sensCache = restoreCache(st.SensCache)
	s.umCache = restoreCache(st.UMCache)
}

// WrapForestModel adopts a deserialized forest as the insensitivity
// model, mirroring WrapGBMUntouched for the untouched-memory side —
// the restore path that round-trips models through ml/serialize uses
// both.
func WrapForestModel(f *ml.Forest) *ForestModel {
	return &ForestModel{forest: f}
}
