package predict

import (
	"pond/internal/ml"
	"pond/internal/pmu"
)

// CounterImportance audits a trained insensitivity forest: which of the
// 200 hardware counters actually drive its decisions. The paper's model
// design (Figure 12) leans on the TMA memory hierarchy — DRAM-bound,
// store-bound, memory-bound — and this analysis verifies the trained
// model agrees, the way a production ML-for-systems team would validate
// a model before deployment.
type CounterImportance struct {
	Counter string
	Index   int
	Drop    float64
}

// TopCounters returns the k most influential counters of the model on
// the dataset, by permutation importance.
func TopCounters(m *ForestModel, ds SensitivityDataset, k int, seed int64) []CounterImportance {
	truth := make([]bool, len(ds.Sensitive))
	for i, s := range ds.Sensitive {
		truth[i] = !s // positive class = insensitive
	}
	imp := ml.PermutationImportance(m.forest.PredictProb, ds.X, truth, 0.5, seed)
	top := ml.TopFeatures(imp, k)
	out := make([]CounterImportance, len(top))
	for i, t := range top {
		out[i] = CounterImportance{
			Counter: pmu.CounterName(t.Feature),
			Index:   t.Feature,
			Drop:    t.Drop,
		}
	}
	return out
}
